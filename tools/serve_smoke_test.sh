#!/usr/bin/env bash
# End-to-end smoke test for the query server: generate a tiny corpus, train a
# throwaway model, start neutraj_server on an ephemeral port, exercise every
# endpoint with neutraj_client, then check that SIGTERM drains to exit 0.
#
# Usage: tools/serve_smoke_test.sh <build-dir>
set -euo pipefail

BUILD="${1:-build}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

CLI="${BUILD}/tools/neutraj_cli"
SERVER="${BUILD}/tools/neutraj_server"
CLIENT="${BUILD}/tools/neutraj_client"
for bin in "${CLI}" "${SERVER}" "${CLIENT}"; do
  [[ -x "${bin}" ]] || { echo "missing binary: ${bin}" >&2; exit 1; }
done

echo "== generate + train a tiny model =="
"${CLI}" generate --preset porto --scale 0.05 --seed 7 --out "${WORK}/corpus.csv"
"${CLI}" train --data "${WORK}/corpus.csv" --epochs 2 --dim 16 \
  --out "${WORK}/model.ntj"

echo "== start server =="
"${SERVER}" --model "${WORK}/model.ntj" --data "${WORK}/corpus.csv" \
  --port 0 --port-file "${WORK}/port" --threads 2 \
  --save-db "${WORK}/final.embdb" >"${WORK}/server.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  if [[ -s "${WORK}/port" ]]; then PORT="$(cat "${WORK}/port")"; break; fi
  kill -0 "${SERVER_PID}" 2>/dev/null || {
    echo "server died during startup:" >&2; cat "${WORK}/server.log" >&2; exit 1
  }
  sleep 0.1
done
[[ -n "${PORT}" ]] || { echo "server never wrote port file" >&2; exit 1; }
echo "server up on port ${PORT}"

TRAJ="0.0,0.0;30.0,40.0;60.0,80.0;90.0,120.0"

echo "== exercise every endpoint =="
"${CLIENT}" health --port "${PORT}"
"${CLIENT}" encode --port "${PORT}" --traj "${TRAJ}" >/dev/null
"${CLIENT}" pairsim --port "${PORT}" --a "${TRAJ}" --b "0.0,0.0;10.0,0.0"
"${CLIENT}" topk --port "${PORT}" --data "${WORK}/corpus.csv" --id 0 --k 5
"${CLIENT}" insert --port "${PORT}" --traj "${TRAJ}" | tee "${WORK}/insert.out"
grep -q "inserted as id" "${WORK}/insert.out"
"${CLIENT}" stats --port "${PORT}" | tee "${WORK}/stats.out"
grep -q "topk" "${WORK}/stats.out"

echo "== graceful drain on SIGTERM =="
kill -TERM "${SERVER_PID}"
RC=0
wait "${SERVER_PID}" || RC=$?
SERVER_PID=""
if [[ "${RC}" -ne 0 ]]; then
  echo "server exited with ${RC} after SIGTERM:" >&2
  cat "${WORK}/server.log" >&2
  exit 1
fi
grep -q "drained" "${WORK}/server.log"
[[ -s "${WORK}/final.embdb" ]] || { echo "missing saved db" >&2; exit 1; }

echo "serve smoke test: OK"
