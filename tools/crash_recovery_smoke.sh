#!/usr/bin/env bash
# End-to-end crash-recovery smoke test for the durable serving corpus:
# train a throwaway model, start neutraj_server with --data-dir, SIGKILL it
# in the middle of an insert burst, restart from the data directory alone,
# and assert that every insert the client saw acknowledged survived.
#
# This is the out-of-process counterpart to tests/store_faultinject_test.cc:
# the unit harness proves recovery at every simulated kill point; this script
# proves the same property against a real SIGKILL, real sockets, and a real
# filesystem.
#
# Usage: tools/crash_recovery_smoke.sh <build-dir>
set -euo pipefail

BUILD="${1:-build}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

CLI="${BUILD}/tools/neutraj_cli"
SERVER="${BUILD}/tools/neutraj_server"
CLIENT="${BUILD}/tools/neutraj_client"
for bin in "${CLI}" "${SERVER}" "${CLIENT}"; do
  [[ -x "${bin}" ]] || { echo "missing binary: ${bin}" >&2; exit 1; }
done

DATA_DIR="${WORK}/data"
TRAJ="0.0,0.0;30.0,40.0;60.0,80.0;90.0,120.0"

start_server() {  # args: extra server flags...
  rm -f "${WORK}/port"
  "${SERVER}" --model "${WORK}/model.ntj" --data-dir "${DATA_DIR}" \
    --port 0 --port-file "${WORK}/port" --threads 2 --compact-every 16 \
    "$@" >>"${WORK}/server.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    if [[ -s "${WORK}/port" ]]; then PORT="$(cat "${WORK}/port")"; break; fi
    kill -0 "${SERVER_PID}" 2>/dev/null || {
      echo "server died during startup:" >&2; cat "${WORK}/server.log" >&2
      exit 1
    }
    sleep 0.1
  done
  [[ -n "${PORT}" ]] || { echo "server never wrote port file" >&2; exit 1; }
}

corpus_size() {  # prints the corpus size reported by health
  "${CLIENT}" health --port "${PORT}" --retries 5 \
    | sed -n 's/.*corpus: \([0-9]*\).*/\1/p'
}

echo "== generate + train a tiny model =="
"${CLI}" generate --preset porto --scale 0.05 --seed 7 --out "${WORK}/corpus.csv"
"${CLI}" train --data "${WORK}/corpus.csv" --epochs 2 --dim 16 \
  --out "${WORK}/model.ntj"

echo "== run 1: seed the durable corpus from the CSV =="
start_server --data "${WORK}/corpus.csv"
BASELINE="$(corpus_size)"
[[ "${BASELINE}" -gt 0 ]] || { echo "empty baseline corpus" >&2; exit 1; }
echo "baseline corpus: ${BASELINE}"

echo "== insert burst, SIGKILL mid-flight =="
ACKED=0
: >"${WORK}/acked.log"
(
  for i in $(seq 1 200); do
    "${CLIENT}" insert --port "${PORT}" --traj "${TRAJ}" \
      >>"${WORK}/acked.log" 2>/dev/null || exit 0
  done
) &
BURST_PID=$!
# Let some inserts land, then kill the server with no warning.
for _ in $(seq 1 100); do
  [[ "$(grep -c 'inserted as id' "${WORK}/acked.log" || true)" -ge 5 ]] && break
  sleep 0.05
done
kill -KILL "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""
wait "${BURST_PID}" 2>/dev/null || true
ACKED="$(grep -c 'inserted as id' "${WORK}/acked.log" || true)"
[[ "${ACKED}" -ge 1 ]] || { echo "no insert was acknowledged before the kill" >&2; exit 1; }
echo "acknowledged before SIGKILL: ${ACKED}"

echo "== run 2: recover from --data-dir alone =="
start_server
grep -q "durable store" "${WORK}/server.log"
RECOVERED="$(corpus_size)"
echo "recovered corpus: ${RECOVERED} (need >= $((BASELINE + ACKED)))"
if [[ "${RECOVERED}" -lt $((BASELINE + ACKED)) ]]; then
  echo "acknowledged inserts were lost across the crash" >&2
  cat "${WORK}/server.log" >&2
  exit 1
fi

echo "== recovered corpus still answers queries and accepts inserts =="
"${CLIENT}" topk --port "${PORT}" --data "${WORK}/corpus.csv" --id 0 --k 5
"${CLIENT}" insert --port "${PORT}" --traj "${TRAJ}" | grep -q "inserted as id"

echo "== graceful drain on SIGTERM =="
kill -TERM "${SERVER_PID}"
RC=0
wait "${SERVER_PID}" || RC=$?
SERVER_PID=""
if [[ "${RC}" -ne 0 ]]; then
  echo "server exited with ${RC} after SIGTERM:" >&2
  cat "${WORK}/server.log" >&2
  exit 1
fi

echo "== run 3: the drained state reopens clean =="
start_server
FINAL="$(corpus_size)"
[[ "${FINAL}" -ge $((RECOVERED + 1)) ]] || {
  echo "post-drain reopen lost rows (${FINAL} < $((RECOVERED + 1)))" >&2
  exit 1
}
kill -TERM "${SERVER_PID}"
wait "${SERVER_PID}" || true
SERVER_PID=""

echo "crash recovery smoke test: OK"
