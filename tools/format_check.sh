#!/usr/bin/env bash
# Verifies that every C++ file conforms to .clang-format without modifying
# anything (clang-format --dry-run --Werror). CI runs this on every push;
# run it locally before sending a change, or run
#   clang-format -i $(git ls-files 'src/**/*' 'tests/*' 'tools/*' 'bench/*' | grep -E '\.(cc|h)$')
# to fix everything in place.
#
# Exits 0 when clean, 1 on formatting violations, and 0 with a notice when
# clang-format is not installed (local convenience; the CI image has it).
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
  echo "format_check.sh: clang-format not found; skipping (CI enforces this)" >&2
  exit 0
fi

mapfile -t files < <(find src tests tools bench -name '*.cc' -o -name '*.h' | sort)
if [[ "${#files[@]}" -eq 0 ]]; then
  echo "format_check.sh: no C++ sources found" >&2
  exit 1
fi

clang-format --dry-run --Werror "${files[@]}"
echo "format_check.sh: OK (${#files[@]} files)"
