// neutraj_server — long-lived similarity-search server over a trained model.
//
// Loads a model plus a corpus (CSV trajectories or a prebuilt .embdb), binds
// a loopback/TCP port, and serves the binary wire protocol of src/serve/:
// Encode, PairSim, TopK, Insert (live corpus appends), Stats, Health.
// Encoding is micro-batched across a thread pool; SIGTERM/SIGINT trigger a
// graceful drain (in-flight requests finish, new work is refused) and a
// zero exit code.
//
// Usage:
//   neutraj_server --model model.ntj [--data corpus.csv | --db corpus.embdb]
//                  [--host H] [--port P] [--port-file F]
//                  [--threads N] [--batch B] [--batch-wait-us U]
//                  [--save-db F] [--data-dir D] [--compact-every N]
//                  [--idle-timeout-ms MS]
//                  [--retrieval exact|ivf] [--ivf-nlist N] [--ivf-nprobe N]
//                  [--ivf-seed S]
//                  [--trace-sample-every N] [--slow-query-log F]
//                  [--slow-query-threshold-us U]
//
// --port 0 (default) picks an ephemeral port; --port-file writes the bound
// port for scripts (see tools/serve_smoke_test.sh). --save-db persists the
// final corpus embeddings (including live inserts) on shutdown.
//
// --retrieval ivf answers TopK through an IVF ANN index (src/retrieval/):
// built deterministically over the corpus after load/recovery (so a
// restarted --data-dir server probes the exact same index a fresh build
// would produce), probing --ivf-nprobe of --ivf-nlist cells and exactly
// re-ranking the survivors — returned distances are bit-identical to
// --retrieval exact; only recall is approximate. Clients can widen one
// query's probe breadth with the request's nprobe knob. Requires a
// non-empty corpus at startup; live inserts are indexed as they arrive.
//
// --data-dir turns on durability: every Insert is written to a CRC-framed
// write-ahead log before it is acknowledged, and the corpus is periodically
// compacted into <data-dir>/snapshot.embdb. On restart the directory is
// recovered (snapshot + WAL tail) — pass --data-dir WITHOUT --data/--db to
// resume a prior corpus; seeding flags are only for the first run, when the
// directory is empty. A corrupt snapshot aborts startup with the corrupt
// section and offset; a torn WAL tail is truncated and reported.
//
// --trace-sample-every N traces 1 request in N with a per-stage span tree
// (pull recent trees with `neutraj_client trace`); --slow-query-log F
// appends a JSONL line with the per-stage breakdown for every traced
// request slower than --slow-query-threshold-us (default 10000). Client
// requests carrying --trace-id are traced regardless of the sampling rate.

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "neutraj.h"
#include "common/errors.h"
#include "common/file_util.h"

namespace {

using namespace neutraj;

struct Args {
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::stoll(it->second);
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Require(const std::string& key) const {
    auto it = flags.find(key);
    if (it == flags.end()) {
      throw std::runtime_error("missing required flag --" + key);
    }
    return it->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument: " + token);
    }
    token = token.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      const std::string value = argv[++i];
      args.flags[token] = value;
    } else {
      args.flags[token] = std::string("1");
    }
  }
  return args;
}

void PrintUsage() {
  std::printf(
      "neutraj_server --model M [--data F.csv | --db F.embdb]\n"
      "               [--host H] [--port P] [--port-file F]\n"
      "               [--threads N] [--batch B] [--batch-wait-us U]\n"
      "               [--save-db F] [--data-dir D] [--compact-every N]\n"
      "               [--idle-timeout-ms MS]\n"
      "               [--retrieval exact|ivf] [--ivf-nlist N]\n"
      "               [--ivf-nprobe N] [--ivf-seed S]\n"
      "               [--trace-sample-every N] [--slow-query-log F]\n"
      "               [--slow-query-threshold-us U]\n");
}

int Run(const Args& args) {
  if (args.Has("help")) {
    PrintUsage();
    return 0;
  }
  const NeuTrajModel model = NeuTrajModel::Load(args.Require("model"));
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 4));

  EmbeddingDatabase db;
  if (args.Has("db")) {
    db = EmbeddingDatabase::Load(args.Get("db"));
    std::printf("loaded %zu embeddings (d=%zu) from %s\n", db.size(), db.dim(),
                args.Get("db").c_str());
  } else if (args.Has("data")) {
    size_t dropped = 0;
    const auto corpus =
        DropEmptyTrajectories(LoadTrajectories(args.Get("data")), &dropped);
    if (dropped > 0) {
      std::fprintf(stderr, "warning: dropped %zu empty trajectories\n", dropped);
    }
    Stopwatch sw;
    db = EmbeddingDatabase::Build(model, corpus, threads);
    std::printf("embedded %zu trajectories (d=%zu) in %.2fs\n", db.size(),
                db.dim(), sw.ElapsedSeconds());
  } else {
    std::printf("starting with an empty corpus (populate via Insert)\n");
  }

  std::unique_ptr<store::DurableStore> durable;
  if (args.Has("data-dir")) {
    store::DurableStore::Options store_opts;
    store_opts.data_dir = args.Get("data-dir");
    store_opts.compact_every =
        static_cast<size_t>(args.GetInt("compact-every", 1024));
    durable = std::make_unique<store::DurableStore>(&db, store_opts);
    const store::DurableStore::RecoveryInfo info = durable->Open();
    std::printf(
        "durable store %s: snapshot %zu records, wal replayed %zu "
        "(skipped %zu), tail %s%s%s\n",
        args.Get("data-dir").c_str(), info.snapshot_records, info.replayed,
        info.skipped, store::WalTailName(info.tail),
        info.tail_detail.empty() ? "" : " — ", info.tail_detail.c_str());
    std::printf("corpus after recovery: %zu embeddings\n", db.size());
  }

  serve::MicroBatcher::Options batch_opts;
  batch_opts.threads = threads;
  batch_opts.max_batch = static_cast<size_t>(args.GetInt("batch", 32));
  batch_opts.max_wait_micros = args.GetInt("batch-wait-us", 200);
  serve::QueryService service(model, &db, batch_opts, durable.get());

  std::unique_ptr<retrieval::IvfBackend> ivf;
  const std::string mode = args.Get("retrieval", "exact");
  if (mode == "ivf") {
    if (db.empty()) {
      throw std::runtime_error(
          "--retrieval ivf requires a non-empty corpus at startup "
          "(seed one with --data/--db or recover via --data-dir)");
    }
    retrieval::IvfIndex::Options ivf_opts;
    ivf_opts.nlist = static_cast<size_t>(args.GetInt("ivf-nlist", 64));
    ivf_opts.default_nprobe =
        static_cast<size_t>(args.GetInt("ivf-nprobe", 8));
    ivf_opts.seed = static_cast<uint64_t>(args.GetInt("ivf-seed", 42));
    // Built here — after any --data-dir recovery — so a restarted server
    // deterministically reproduces the index of a fresh build over the
    // recovered corpus (pinned by tests/retrieval_recovery_test.cc).
    ivf = std::make_unique<retrieval::IvfBackend>(&db, ivf_opts);
    Stopwatch ivf_sw;
    ivf->Build(threads);
    std::printf("ivf index built in %.2fs: %zu cells over %zu rows "
                "(nprobe=%zu, seed=%llu, int8 kernel=%s)\n",
                ivf_sw.ElapsedSeconds(), ivf->index().nlist(),
                ivf->index().size(), ivf_opts.default_nprobe,
                static_cast<unsigned long long>(ivf_opts.seed),
                retrieval::QuantizedKernelName());
    service.set_retrieval_backend(ivf.get());
  } else if (mode != "exact") {
    throw std::runtime_error("unknown --retrieval mode: " + mode +
                             " (expected exact or ivf)");
  }

  serve::ServerOptions server_opts;
  server_opts.host = args.Get("host", "127.0.0.1");
  server_opts.port = static_cast<uint16_t>(args.GetInt("port", 0));
  server_opts.idle_timeout_ms =
      static_cast<uint32_t>(args.GetInt("idle-timeout-ms", 0));
  server_opts.trace.sample_every =
      static_cast<uint32_t>(args.GetInt("trace-sample-every", 0));
  server_opts.trace.slow_log_path = args.Get("slow-query-log");
  server_opts.trace.slow_threshold_us =
      static_cast<double>(args.GetInt("slow-query-threshold-us", 10000));
  if (server_opts.trace.sample_every != 0 ||
      !server_opts.trace.slow_log_path.empty()) {
    std::printf("request tracing: sample 1-in-%u%s%s\n",
                server_opts.trace.sample_every,
                server_opts.trace.slow_log_path.empty() ? ""
                                                        : ", slow-query log ",
                server_opts.trace.slow_log_path.c_str());
  }
  serve::Server server(&service, server_opts);
  server.Start();
  serve::InstallStopSignalHandlers(&server);

  std::printf("listening on %s:%u (threads=%zu, batch=%zu, wait=%lldus)\n",
              server_opts.host.c_str(), server.port(), threads,
              batch_opts.max_batch,
              static_cast<long long>(batch_opts.max_wait_micros));
  std::fflush(stdout);
  if (args.Has("port-file")) {
    WriteFileAtomic(args.Get("port-file"), std::to_string(server.port()) + "\n");
  }

  server.Wait();  // Returns after a SIGTERM/SIGINT-triggered drain.
  serve::InstallStopSignalHandlers(nullptr);

  const serve::StatsSnapshot stats = service.Snapshot();
  std::printf("drained; final stats:\n%s", stats.ToString().c_str());
  if (durable != nullptr && durable->read_only()) {
    std::fprintf(stderr, "warning: store degraded to read-only: %s\n",
                 durable->degraded_reason().c_str());
  }
  if (args.Has("save-db")) {
    db.Save(args.Get("save-db"));
    std::printf("saved %zu embeddings to %s\n", db.size(),
                args.Get("save-db").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(ParseArgs(argc, argv));
  } catch (const neutraj::CorruptionError& e) {
    // Corrupt persistent state is an operational problem, not a usage one:
    // report the typed context (source file, section, byte offset) and stop.
    std::fprintf(stderr, "error: corrupt store: %s\n", e.what());
    return 1;
  } catch (const neutraj::store::StoreError& e) {
    std::fprintf(stderr, "error: store: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    PrintUsage();
    return 1;
  }
}
