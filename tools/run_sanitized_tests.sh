#!/usr/bin/env bash
# Runs the tier-1 test suite under AddressSanitizer, UndefinedBehavior-
# Sanitizer, or ThreadSanitizer via the NEUTRAJ_SANITIZE CMake option.
#
# Usage:
#   tools/run_sanitized_tests.sh [address|undefined|address,undefined|thread] [-- ctest-args...]
#
# The sanitizer defaults to "address". Everything after a literal `--` is
# passed to ctest verbatim, so ctest flags can never be mistaken for a
# sanitizer name:
#   tools/run_sanitized_tests.sh thread -- -L parallel
#   tools/run_sanitized_tests.sh -- -R TrainerTest     # default sanitizer
#
# Parallelism: build and test use $NPROC if set (falls back to nproc);
# ctest additionally honors an exported CTEST_PARALLEL_LEVEL over both.
#
# Each sanitizer combination uses its own build directory (build-asan,
# build-ubsan, build-asan-ubsan, build-tsan) so sanitized and regular builds
# never mix objects. TSan cannot combine with ASan, hence the separate
# option value; use it to vet the parallel trainer and parallel embedding
# paths (thread_pool_test, parallel_trainer_test).
set -euo pipefail

SAN="address"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  SAN="$1"
  shift
fi
if [[ $# -gt 0 ]]; then
  if [[ "$1" != "--" ]]; then
    echo "error: unexpected argument '$1' (ctest args go after a literal --)" >&2
    exit 2
  fi
  shift  # Drop the separator; the rest goes to ctest.
fi

case "$SAN" in
  address)            BUILD_DIR="build-asan" ;;
  undefined)          BUILD_DIR="build-ubsan" ;;
  address,undefined)  BUILD_DIR="build-asan-ubsan" ;;
  thread)             BUILD_DIR="build-tsan" ;;
  *)
    echo "error: unknown sanitizer '$SAN' (use address, undefined, address,undefined, or thread)" >&2
    exit 2
    ;;
esac

NPROC="${NPROC:-$(nproc)}"
CTEST_J="${CTEST_PARALLEL_LEVEL:-$NPROC}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNEUTRAJ_SANITIZE="$SAN" \
  -DNEUTRAJ_BUILD_BENCHMARKS=OFF \
  -DNEUTRAJ_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$NPROC"

# Make UBSan failures fatal and print stacks; halt_on_error keeps ASan exits
# crisp under ctest.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$CTEST_J" "$@"
