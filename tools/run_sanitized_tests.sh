#!/usr/bin/env bash
# Runs the tier-1 test suite under AddressSanitizer, UndefinedBehavior-
# Sanitizer, or ThreadSanitizer via the NEUTRAJ_SANITIZE CMake option.
#
# Usage:
#   tools/run_sanitized_tests.sh [address|undefined|address,undefined|thread] [ctest-args...]
#
# Defaults to "address". Each sanitizer combination uses its own build
# directory (build-asan, build-ubsan, build-asan-ubsan, build-tsan) so
# sanitized and regular builds never mix objects. TSan cannot combine with
# ASan, hence the separate option value; use it to vet the parallel trainer
# and parallel embedding paths (thread_pool_test, parallel_trainer_test).
set -euo pipefail

SAN="${1:-address}"
shift || true

case "$SAN" in
  address)            BUILD_DIR="build-asan" ;;
  undefined)          BUILD_DIR="build-ubsan" ;;
  address,undefined)  BUILD_DIR="build-asan-ubsan" ;;
  thread)             BUILD_DIR="build-tsan" ;;
  *)
    echo "error: unknown sanitizer '$SAN' (use address, undefined, address,undefined, or thread)" >&2
    exit 2
    ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNEUTRAJ_SANITIZE="$SAN" \
  -DNEUTRAJ_BUILD_BENCHMARKS=OFF \
  -DNEUTRAJ_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Make UBSan failures fatal and print stacks; halt_on_error keeps ASan exits
# crisp under ctest.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
