// neutraj_client — command-line client for neutraj_server.
//
// Subcommands (all take --host H (default 127.0.0.1) and --port P):
//   health                                    liveness + corpus shape
//   stats [--prometheus]                      per-endpoint latency/QPS table
//                                             (or Prometheus text format)
//   encode   --traj "x,y;x,y;..."             embed one trajectory
//   pairsim  --a "..." --b "..."              distance + similarity
//   topk     --traj "..." [--k K] [--exclude I] [--nprobe N]
//   insert   --traj "..."                     append to the live corpus
//   trace    [--out trace.json] [--max N]     pull the server's recent
//                                             sampled span trees as a
//                                             chrome://tracing JSON file
//
// Trajectories can come inline via --traj/--a/--b (the corpus CSV line
// format) or from a file: --data corpus.csv --id N picks line N.
//
// Robustness knobs (all optional):
//   --connect-timeout-ms MS   bound the TCP connect (default: OS default)
//   --io-timeout-ms MS        bound each send/recv (default: unbounded)
//   --retries N               retry transient connect failures up to N
//                             attempts with exponential backoff (default 1,
//                             i.e. no retry) — lets scripts start the client
//                             before the server has bound its port.
//   --trace-id N              attach trace id N (nonzero, decimal or 0x hex)
//                             to each request sent by this invocation and
//                             force it to be traced server-side; pull the
//                             span tree afterwards with the trace command.

#include <cstdio>
#include <map>
#include <string>

#include "common/file_util.h"
#include "neutraj.h"

namespace {

using namespace neutraj;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::stoll(it->second);
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Require(const std::string& key) const {
    auto it = flags.find(key);
    if (it == flags.end()) {
      throw std::runtime_error("missing required flag --" + key);
    }
    return it->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 2) throw std::runtime_error("no subcommand given");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument: " + token);
    }
    token = token.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      const std::string value = argv[++i];
      args.flags[token] = value;
    } else {
      args.flags[token] = std::string("1");
    }
  }
  return args;
}

void PrintUsage() {
  std::printf(
      "neutraj_client <command> [--host H] [--port P] [flags]\n"
      "  (global: --connect-timeout-ms MS --io-timeout-ms MS --retries N)\n"
      "  health\n"
      "  stats   [--prometheus]\n"
      "  encode  --traj \"x,y;x,y;...\" | --data F --id N\n"
      "  pairsim --a \"...\" --b \"...\"\n"
      "  topk    --traj \"...\" [--k K] [--exclude I] [--nprobe N]\n"
      "  insert  --traj \"...\"\n"
      "  trace   [--out trace.json] [--max N]\n"
      "  (any request command also takes --trace-id N to force tracing)\n");
}

/// Resolves a trajectory argument: inline CSV under `key`, or --data + --id.
Trajectory GetTrajectory(const Args& args, const std::string& key) {
  if (args.Has(key)) {
    const auto trajs = ParseTrajectories(args.Get(key));
    if (trajs.size() != 1) {
      throw std::runtime_error("--" + key + " must hold exactly one trajectory");
    }
    return trajs.front();
  }
  if (args.Has("data")) {
    const auto corpus = LoadTrajectories(args.Get("data"));
    const size_t id = static_cast<size_t>(args.GetInt("id", 0));
    if (id >= corpus.size()) {
      throw std::runtime_error("--id out of range (corpus has " +
                               std::to_string(corpus.size()) + " trajectories)");
    }
    return corpus[id];
  }
  throw std::runtime_error("need --" + key + " or --data F --id N");
}

serve::Client Connect(const Args& args) {
  serve::Client client;
  client.set_connect_timeout_ms(
      static_cast<uint32_t>(args.GetInt("connect-timeout-ms", 0)));
  client.set_io_timeout_ms(
      static_cast<uint32_t>(args.GetInt("io-timeout-ms", 0)));
  serve::RetryPolicy retry;
  retry.max_attempts = static_cast<uint32_t>(args.GetInt("retries", 1));
  client.set_retry_policy(retry);
  if (args.Has("trace-id")) {
    // std::stoull with base 0 accepts decimal and 0x-prefixed hex — handy
    // for pasting ids back out of the slow-query log.
    const uint64_t id = std::stoull(args.Get("trace-id"), nullptr, 0);
    if (id == 0) throw std::runtime_error("--trace-id must be nonzero");
    client.set_trace_context({id, /*sampled=*/true});
  }
  client.Connect(args.Get("host", "127.0.0.1"),
                 static_cast<uint16_t>(args.GetInt("port", 0)));
  return client;
}

int Run(const Args& args) {
  if (args.command == "help" || args.command == "--help") {
    PrintUsage();
    return 0;
  }
  serve::Client client = Connect(args);

  if (args.command == "health") {
    const serve::HealthResponse h = client.Health();
    std::printf("status: %s  corpus: %llu (d=%u)\n", h.status.c_str(),
                static_cast<unsigned long long>(h.corpus_size), h.dim);
    return h.ok ? 0 : 1;
  }
  if (args.command == "stats") {
    const serve::StatsSnapshot snap = client.Stats();
    std::printf("%s", args.Has("prometheus") ? snap.ToPrometheus().c_str()
                                             : snap.ToString().c_str());
    return 0;
  }
  if (args.command == "encode") {
    const nn::Vector e = client.Encode(GetTrajectory(args, "traj"));
    for (size_t i = 0; i < e.size(); ++i) {
      std::printf("%s%.8g", i > 0 ? " " : "", e[i]);
    }
    std::printf("\n");
    return 0;
  }
  if (args.command == "pairsim") {
    const serve::PairSimResponse r =
        client.PairSim(GetTrajectory(args, "a"), GetTrajectory(args, "b"));
    std::printf("distance %.6f  similarity %.6f\n", r.distance, r.similarity);
    return 0;
  }
  if (args.command == "topk") {
    const serve::TopKResponse r =
        client.TopK(GetTrajectory(args, "traj"),
                    static_cast<uint32_t>(args.GetInt("k", 10)),
                    args.GetInt("exclude", -1),
                    static_cast<uint32_t>(args.GetInt("nprobe", 0)));
    for (size_t i = 0; i < r.ids.size(); ++i) {
      std::printf("%2zu. trajectory %-6llu dist %.6f\n", i + 1,
                  static_cast<unsigned long long>(r.ids[i]), r.dists[i]);
    }
    return 0;
  }
  if (args.command == "insert") {
    const serve::InsertResponse r = client.Insert(GetTrajectory(args, "traj"));
    std::printf("inserted as id %llu (corpus size %llu)\n",
                static_cast<unsigned long long>(r.id),
                static_cast<unsigned long long>(r.corpus_size));
    return 0;
  }
  if (args.command == "trace") {
    const serve::TraceDumpResponse r =
        client.TraceDump(static_cast<uint32_t>(args.GetInt("max", 0)));
    const std::string json = obs::RenderChromeTrace(r.traces);
    if (args.Has("out")) {
      WriteFileAtomic(args.Get("out"), json);
      std::printf("wrote %zu trace(s) to %s — open in chrome://tracing\n",
                  r.traces.size(), args.Get("out").c_str());
    } else {
      std::printf("%s\n", json.c_str());
    }
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n\n", args.command.c_str());
  PrintUsage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(ParseArgs(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
