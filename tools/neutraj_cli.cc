// neutraj_cli — command-line front end for the NeuTraj library.
//
// Subcommands:
//   generate  --preset porto|geolife --scale S --out corpus.csv [--seed N]
//   train     --data corpus.csv --out model.ntj [--measure M] [--variant V]
//             [--epochs N] [--dim D] [--width W] [--seed-fraction F]
//             [--threads T] [--metrics-out run.jsonl] [--trace]
//   embed     --model model.ntj --data corpus.csv --out embeds.txt [--threads T]
//   search    --model model.ntj --data corpus.csv --query I [--k K] [--rerank]
//             [--threads T]
//   cluster   --model model.ntj --data corpus.csv --eps E [--min-pts P]
//   distance  --data corpus.csv --i A --j B [--measure M]
//
// Corpora are line-based CSV ("x1,y1;x2,y2;..."); models are the library's
// text format. Every command prints to stdout and exits non-zero on error.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "neutraj.h"
#include "common/file_util.h"

namespace {

using namespace neutraj;

/// Parsed "--key value" flags plus the positional subcommand.
struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::stod(it->second);
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::stoll(it->second);
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }

  /// Requires a flag to be present; throws with a usage hint otherwise.
  std::string Require(const std::string& key) const {
    auto it = flags.find(key);
    if (it == flags.end()) {
      throw std::runtime_error("missing required flag --" + key);
    }
    return it->second;
  }
};

/// Loads a corpus with the empty-trajectory ingestion guard: empty lines in
/// hand-edited CSVs become a warning, not an encoder crash mid-run.
std::vector<Trajectory> LoadCorpusGuarded(const std::string& path) {
  size_t dropped = 0;
  auto corpus = DropEmptyTrajectories(LoadTrajectories(path), &dropped);
  if (dropped > 0) {
    std::fprintf(stderr, "warning: dropped %zu empty trajectories from %s\n",
                 dropped, path.c_str());
  }
  return corpus;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 2) throw std::runtime_error("no subcommand given");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument: " + token);
    }
    token = token.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // Assign through a named std::string: the const char* overload of
      // operator= trips a GCC 12 -Wrestrict false positive (PR 105329)
      // when inlined at -O3.
      const std::string value = argv[++i];
      args.flags[token] = value;
    } else {
      args.flags[token] = std::string("1");  // Boolean flag.
    }
  }
  return args;
}

void PrintUsage() {
  std::printf(
      "neutraj_cli <command> [flags]\n"
      "  generate  --preset porto|geolife --out F [--scale S] [--seed N]\n"
      "  train     --data F --out M [--measure m] [--variant neutraj|siamese|"
      "no-sam|no-ws]\n"
      "            [--epochs N] [--dim D] [--width W] [--seed-fraction F]\n"
      "            [--checkpoint-dir D [--checkpoint-every N] [--resume]]\n"
      "            [--threads T] [--metrics-out run.jsonl] [--trace]\n"
      "  embed     --model M --data F --out E [--threads T]\n"
      "  search    --model M --data F --query I [--k K] [--rerank] "
      "[--threads T]\n"
      "  cluster   --model M --data F --eps E [--min-pts P]\n"
      "  distance  --data F --i A --j B [--measure m]\n");
}

int CmdGenerate(const Args& args) {
  const std::string preset = args.Get("preset", "porto");
  const double scale = args.GetDouble("scale", 1.0);
  GeneratorConfig cfg =
      preset == "geolife" ? GeolifeLikeConfig(scale) : PortoLikeConfig(scale);
  if (args.Has("seed")) cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 13));
  const TrajectoryDataset db = preset == "geolife" ? GenerateGeolifeLike(cfg)
                                                   : GeneratePortoLike(cfg);
  SaveTrajectories(args.Require("out"), db.trajectories);
  std::printf("wrote %zu trajectories (mean length %.1f) to %s\n", db.size(),
              db.MeanLength(), args.Get("out").c_str());
  return 0;
}

NeuTrajConfig VariantFromName(const std::string& name) {
  if (name == "neutraj") return NeuTrajConfig::NeuTraj();
  if (name == "siamese") return NeuTrajConfig::Siamese();
  if (name == "no-sam") return NeuTrajConfig::NoSam();
  if (name == "no-ws") return NeuTrajConfig::NoWs();
  throw std::runtime_error("unknown variant: " + name);
}

int CmdTrain(const Args& args) {
  TrajectoryDataset db;
  db.trajectories = LoadCorpusGuarded(args.Require("data"));
  db.RecomputeRegion();
  if (db.size() < 10) throw std::runtime_error("corpus too small to train on");

  NeuTrajConfig cfg = VariantFromName(args.Get("variant", "neutraj"));
  cfg.measure = MeasureFromName(args.Get("measure", "frechet"));
  cfg.embedding_dim = static_cast<size_t>(args.GetInt("dim", 32));
  cfg.scan_width = static_cast<int32_t>(args.GetInt("width", 2));
  cfg.epochs = static_cast<size_t>(args.GetInt("epochs", 25));
  cfg.checkpoint_dir = args.Get("checkpoint-dir", "");
  cfg.checkpoint_every =
      static_cast<size_t>(args.GetInt("checkpoint-every", 1));
  // Training is bit-for-bit identical for every thread count, so --threads
  // is a pure wall-clock knob.
  cfg.threads = static_cast<size_t>(args.GetInt("threads", 1));

  const double frac = args.GetDouble("seed-fraction", 0.2);
  DatasetSplit split = SplitDataset(db, frac, 0.0);
  std::printf("training %s on %zu seeds (measure %s, d=%zu, w=%d, %zu epochs)\n",
              cfg.VariantName().c_str(), split.seeds.size(),
              MeasureName(cfg.measure).c_str(), cfg.embedding_dim,
              cfg.scan_width, cfg.epochs);

  // --trace turns on coarse spans (trainer/epoch, nn/encode, nn/backward);
  // the collected timing histograms are printed in Prometheus text format
  // after training so a run can be profiled without a scraper.
  if (args.Has("trace")) {
    obs::SetTraceLevel(obs::TraceLevel::kCoarse);
  }

  Stopwatch sw;
  DistanceMatrix d = ComputePairwiseDistances(split.seeds, cfg.measure);
  std::printf("seed distances: %.1fs\n", sw.ElapsedSeconds());
  Grid grid(db.region.Inflated(50.0), 100.0);
  sw.Restart();
  Trainer trainer(cfg, grid, split.seeds, d);

  // --metrics-out streams one JSON line of telemetry per epoch (loss, grad
  // norm, sampler stats, throughput) for live tailing or offline plotting.
  std::unique_ptr<obs::JsonlSink> metrics;
  if (args.Has("metrics-out")) {
    metrics = std::make_unique<obs::JsonlSink>(args.Get("metrics-out"));
    trainer.SetMetricsSink(metrics.get());
  }
  if (args.Has("resume")) {
    const std::string ckpt = cfg.checkpoint_dir.empty()
                                 ? args.Get("resume")
                                 : cfg.checkpoint_dir + "/neutraj.ckpt";
    trainer.ResumeFrom(ckpt);
    std::printf("resumed from %s at epoch %zu\n", ckpt.c_str(),
                trainer.next_epoch());
  }
  const TrainResult tr = trainer.Train([](const EpochStats& e, NeuTrajModel&) {
    std::printf("  epoch %3zu  loss %.5f  grad %.3g  (%.1fs, %.0f traj/s)\n",
                e.epoch, e.mean_loss, e.grad_norm, e.seconds, e.trajs_per_sec);
    return true;
  });
  for (const DivergenceEvent& ev : tr.divergence_events) {
    std::printf("  watchdog: epoch %zu rolled back (%s), lr -> %g\n", ev.epoch,
                ev.reason.c_str(), ev.new_learning_rate);
  }
  if (tr.diverged) {
    std::fprintf(stderr,
                 "warning: training diverged and was stopped at the last "
                 "good checkpointed state\n");
  }
  std::printf("training: %.1fs\n", sw.ElapsedSeconds());
  trainer.TakeModel().Save(args.Require("out"));
  std::printf("model written to %s\n", args.Get("out").c_str());
  if (metrics != nullptr) {
    std::printf("epoch telemetry written to %s\n", metrics->path().c_str());
  }
  if (args.Has("trace")) {
    std::printf("--- collected metrics (Prometheus text format) ---\n%s",
                obs::RenderPrometheus(obs::MetricsRegistry::Global().Snapshot())
                    .c_str());
  }
  return 0;
}

int CmdEmbed(const Args& args) {
  const NeuTrajModel model = NeuTrajModel::Load(args.Require("model"));
  const auto corpus = LoadCorpusGuarded(args.Require("data"));
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));
  Stopwatch sw;
  const auto embeds = threads > 1 ? model.EmbedAllParallel(corpus, threads)
                                  : model.EmbedAll(corpus);
  std::string out;
  char buf[32];
  for (const auto& e : embeds) {
    for (size_t k = 0; k < e.size(); ++k) {
      std::snprintf(buf, sizeof(buf), "%.8g", e[k]);
      if (k > 0) out += ' ';
      out += buf;
    }
    out += '\n';
  }
  WriteFileAtomic(args.Require("out"), out);
  std::printf("embedded %zu trajectories (d=%zu) in %.2fs -> %s\n",
              embeds.size(), model.config().embedding_dim, sw.ElapsedSeconds(),
              args.Get("out").c_str());
  return 0;
}

int CmdSearch(const Args& args) {
  const NeuTrajModel model = NeuTrajModel::Load(args.Require("model"));
  const auto corpus = LoadCorpusGuarded(args.Require("data"));
  const size_t query = static_cast<size_t>(args.GetInt("query", 0));
  const size_t k = static_cast<size_t>(args.GetInt("k", 10));
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));
  if (query >= corpus.size()) throw std::runtime_error("query id out of range");

  Stopwatch sw;
  const EmbeddingDatabase db = EmbeddingDatabase::Build(model, corpus, threads);
  const double embed_s = sw.ElapsedSeconds();
  sw.Restart();
  SearchResult result =
      db.TopK(db.at(query), std::max(k, 50ul), static_cast<int64_t>(query));
  if (args.Has("rerank")) {
    result = RerankByExact(corpus, corpus[query], result.ids,
                           ExactDistanceFn(model.config().measure), k);
  }
  const double query_ms = sw.ElapsedMillis();
  std::printf("top-%zu for query %zu (embed corpus %.2fs, query %.2fms):\n", k,
              query, embed_s, query_ms);
  for (size_t i = 0; i < std::min(k, result.size()); ++i) {
    std::printf("  %2zu. trajectory %-6zu dist %.6f\n", i + 1, result.ids[i],
                result.dists[i]);
  }
  return 0;
}

int CmdCluster(const Args& args) {
  const NeuTrajModel model = NeuTrajModel::Load(args.Require("model"));
  const auto corpus = LoadCorpusGuarded(args.Require("data"));
  const double eps = args.GetDouble("eps", 1.0);
  const size_t min_pts = static_cast<size_t>(args.GetInt("min-pts", 5));
  const auto embeds = model.EmbedAll(corpus);
  std::vector<double> dists(corpus.size() * corpus.size(), 0.0);
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = 0; j < corpus.size(); ++j) {
      dists[i * corpus.size() + j] = nn::L2Distance(embeds[i], embeds[j]);
    }
  }
  const Clustering c = Dbscan(dists, corpus.size(), eps, min_pts);
  std::printf("DBSCAN(eps=%.3f, min_pts=%zu) on embedding distances: %d "
              "clusters, %zu noise\n",
              eps, min_pts, c.num_clusters, c.num_noise);
  for (size_t i = 0; i < c.labels.size(); ++i) {
    std::printf("%zu %d\n", i, c.labels[i]);
  }
  return 0;
}

int CmdDistance(const Args& args) {
  const auto corpus = LoadCorpusGuarded(args.Require("data"));
  const size_t i = static_cast<size_t>(args.GetInt("i", 0));
  const size_t j = static_cast<size_t>(args.GetInt("j", 1));
  if (i >= corpus.size() || j >= corpus.size()) {
    throw std::runtime_error("trajectory id out of range");
  }
  const Measure m = MeasureFromName(args.Get("measure", "frechet"));
  std::printf("%s(%zu, %zu) = %.6f\n", MeasureName(m).c_str(), i, j,
              ExactDistanceFn(m)(corpus[i], corpus[j]));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = ParseArgs(argc, argv);
    if (args.command == "generate") return CmdGenerate(args);
    if (args.command == "train") return CmdTrain(args);
    if (args.command == "embed") return CmdEmbed(args);
    if (args.command == "search") return CmdSearch(args);
    if (args.command == "cluster") return CmdCluster(args);
    if (args.command == "distance") return CmdDistance(args);
    if (args.command == "help" || args.command == "--help") {
      PrintUsage();
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s\n\n", args.command.c_str());
    PrintUsage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    PrintUsage();
    return 1;
  }
}
