// Prints the finite-difference gradient audit as a table.
//
// Runs the same battery as tests/nn_gradcheck_test.cc (every backbone,
// every parameter at gate-block resolution, attention and loss paths) and
// prints one line per audited block with its max relative error. Exits
// non-zero if any block exceeds the tolerance, so it can serve as a CI gate
// or a quick local smoke test after touching a backward pass.
//
// Usage: gradcheck [max_checks_per_block] [tolerance]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/gradcheck.h"

int main(int argc, char** argv) {
  neutraj::eval::GradAuditOptions opts;
  double tolerance = 1e-4;
  if (argc > 1) opts.max_checks = static_cast<size_t>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) tolerance = std::strtod(argv[2], nullptr);
  if (opts.max_checks == 0 || !(tolerance > 0.0)) {
    std::fprintf(stderr, "usage: %s [max_checks_per_block] [tolerance]\n",
                 argv[0]);
    return 2;
  }

  const std::vector<neutraj::eval::GradAuditRecord> records =
      neutraj::eval::RunGradientAudit(opts);
  std::fputs(neutraj::eval::FormatGradAuditTable(records).c_str(), stdout);

  size_t failures = 0;
  double worst = 0.0;
  std::string worst_block;
  for (const auto& r : records) {
    if (r.max_rel_err > worst) {
      worst = r.max_rel_err;
      worst_block = r.case_name + " " + r.block;
    }
    if (r.max_rel_err >= tolerance) ++failures;
  }
  std::printf("\n%zu blocks audited, worst %.3e (%s), tolerance %.1e: %s\n",
              records.size(), worst, worst_block.c_str(), tolerance,
              failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}
