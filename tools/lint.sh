#!/usr/bin/env bash
# Project-specific lint rules that grep can enforce — fast, dependency-free,
# and runnable in any environment (CI runs it on every push).
#
#   1. No nondeterminism in src/: rand()/srand()/time(), random_device,
#      wall-clock seeding. Reproducibility is a core design goal (training
#      must be bit-for-bit repeatable across thread counts and resumes);
#      all randomness must flow through common/random.h's seeded Rng and all
#      timing through common/stopwatch.h (steady_clock).
#   2. No raw new/delete in src/: ownership goes through containers and
#      smart pointers; the nn hot paths use caller-owned workspaces.
#   3. No float in the nn kernels: the numerical core is double-precision
#      end to end (see DESIGN.md); a stray float silently truncates
#      gradients and breaks the finite-difference audit.
#   4. Every src/ .cc has a matching test reference: each implementation
#      stem must be mentioned by at least one tests/*.cc, so new subsystems
#      cannot land untested.
#   5. No raw stderr/stdout telemetry in src/core, src/nn, src/serve: ad-hoc
#      printf debugging does not survive review. Telemetry flows through
#      src/obs/ (metrics registry, trace spans, JSONL sink); the only
#      sanctioned stderr paths are common/check.cc's contract-failure
#      reporting and the flight recorder's crash dump. The same rule bans
#      ad-hoc std::chrono timing in src/serve and src/retrieval: request
#      timing flows through Stopwatch / DeadlineAfterMicros / SleepForMillis
#      (common/stopwatch.h) and the obs span types, so every measurement a
#      request sees also lands in its trace — a raw steady_clock::now() pair
#      is latency the span tree cannot attribute.
#   6. No raw POSIX I/O in src/store outside store/file.cc: every durability
#      write must flow through the File/FileFactory seam so the fault
#      harness can intercept it and so short writes / EINTR are handled in
#      exactly one place. An unchecked write()/fsync() elsewhere is a
#      durability hole the crash tests cannot see.
#   7. No raw std:: locking primitives in src/ outside common/sync.{h,cc}:
#      every mutex must be a neutraj::Mutex / SharedMutex so it carries the
#      Clang Thread Safety capability annotations and a lock rank. A raw
#      std::mutex is invisible to both enforcement layers — the static
#      analysis cannot see what it guards and the runtime rank checker
#      cannot order it. common/sync.cc itself is exempt: it wraps the std
#      primitives (including CondVar's internal std::unique_lock adoption,
#      which is how a wrapped mutex waits on a std::condition_variable).
#   8. No hand-rolled float distance math in src/retrieval outside
#      retrieval/kernels.{h,cc}: the retrieval subsystem's answers are
#      bit-identical to the exact scan only because every float distance
#      flows through the kernel seam (whose accumulation order mirrors
#      nn::L2Distance) or through the core scan itself. A stray
#      nn::L2Distance call or sqrt in a shard/IVF scan loop is a second
#      accumulation order waiting to diverge. (Raw std:: locking in
#      src/retrieval is already banned repo-wide by rule 7.)
#
# Usage: tools/lint.sh   (from anywhere; exits non-zero on any violation)

set -u
cd "$(dirname "$0")/.."

fail=0
report() {
  echo "lint.sh: $1" >&2
  echo "$2" | sed 's/^/    /' >&2
  fail=1
}

# -- Rule 1: nondeterminism --------------------------------------------------
# \brand( also catches srand(; time( catches time(nullptr)/time(0) seeding.
pattern='\brand\(|\bsrand\(|[^_a-zA-Z]time\(|std::random_device|system_clock'
hits=$(grep -rnE "$pattern" src/ --include='*.cc' --include='*.h' || true)
if [[ -n "$hits" ]]; then
  report "nondeterminism in src/ (use the seeded Rng / Stopwatch instead)" "$hits"
fi

# -- Rule 2: raw new/delete --------------------------------------------------
hits=$(grep -rnE '\bnew +[A-Za-z_]|\bdelete +[A-Za-z_*]|\bdelete\[\]' \
    src/ --include='*.cc' --include='*.h' \
    | grep -vE '= *delete|//.*\b(new|delete)\b' || true)
if [[ -n "$hits" ]]; then
  report "raw new/delete in src/ (use containers or smart pointers)" "$hits"
fi

# -- Rule 3: float in the nn kernels ----------------------------------------
hits=$(grep -rnE '\bfloat\b' src/nn/ || true)
if [[ -n "$hits" ]]; then
  report "float in src/nn/ (the numerical core is double-precision only)" "$hits"
fi

# -- Rule 4: every src/ .cc has a test reference ----------------------------
missing=""
for cc in $(find src -name '*.cc' | sort); do
  stem=$(basename "$cc" .cc)
  if ! grep -rql "$stem" tests/ --include='*.cc' --include='*.h'; then
    missing+="$cc"$'\n'
  fi
done
if [[ -n "$missing" ]]; then
  report "src/ files with no reference from any test" "$missing"
fi

# -- Rule 5: no raw telemetry in core/nn/serve ------------------------------
# All printf/cerr reporting in the numerical core and the serving layer must
# go through src/obs/ so it is structured, rate-controlled and testable.
hits=$(grep -rnE 'std::cerr|std::cout|\bprintf\(|\bfprintf\(' \
    src/core/ src/nn/ src/serve/ --include='*.cc' --include='*.h' \
    | grep -vE '^[^:]*:[0-9]+: *//' || true)
if [[ -n "$hits" ]]; then
  report "raw stderr/stdout telemetry in src/core|nn|serve (use src/obs/)" "$hits"
fi
# Ad-hoc std::chrono timing in the serving/retrieval layers: all request
# timing goes through common/stopwatch.h (Stopwatch, DeadlineAfterMicros,
# SleepForMillis) or the obs span types so the trace spans see it too.
hits=$(grep -rnE 'std::chrono|steady_clock|high_resolution_clock' \
    src/serve/ src/retrieval/ --include='*.cc' --include='*.h' \
    | grep -vE '^[^:]*:[0-9]+: *(//|\*)' || true)
if [[ -n "$hits" ]]; then
  report "ad-hoc std::chrono timing in src/serve|retrieval (use common/stopwatch.h)" "$hits"
fi

# -- Rule 6: raw POSIX I/O in src/store outside the File seam ----------------
# store/file.cc is the single sanctioned syscall site; everything else in
# src/store must go through File/FileFactory so FaultyFile can intercept it.
hits=$(grep -rnE '::write\(|::pwrite\(|::fsync\(|::fdatasync\(|::ftruncate\(|::rename\(|\bfwrite\(|\bfopen\(' \
    src/store/ --include='*.cc' --include='*.h' \
    | grep -v '^src/store/file\.cc:' \
    | grep -vE '^[^:]*:[0-9]+: *//' || true)
if [[ -n "$hits" ]]; then
  report "raw POSIX I/O in src/store outside store/file.cc (use the File seam)" "$hits"
fi

# -- Rule 7: raw std:: locking primitives outside common/sync ----------------
# All locking goes through the annotated wrappers in common/sync.h so the
# thread-safety analysis and the lock-rank checker both see every mutex.
hits=$(grep -rnE 'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)\b' \
    src/ --include='*.cc' --include='*.h' \
    | grep -vE '^src/common/sync\.(h|cc):' \
    | grep -vE '^[^:]*:[0-9]+: *(//|\*)' || true)
if [[ -n "$hits" ]]; then
  report "raw std:: locking primitive in src/ (use common/sync.h wrappers)" "$hits"
fi

# -- Rule 8: retrieval distance math outside the kernel seam -----------------
# retrieval/kernels.{h,cc} is the single sanctioned float-distance site in
# src/retrieval; everything else delegates to it (or to the core scan, which
# it mirrors bit for bit). See DESIGN.md "Retrieval architecture".
hits=$(grep -rnE 'nn::L2Distance|std::sqrt\(|std::hypot\(|std::pow\(' \
    src/retrieval/ --include='*.cc' --include='*.h' \
    | grep -vE '^src/retrieval/kernels\.(h|cc):' \
    | grep -vE '^[^:]*:[0-9]+: *(//|\*)' || true)
if [[ -n "$hits" ]]; then
  report "float distance math in src/retrieval outside kernels.{h,cc}" "$hits"
fi

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "lint.sh: OK"
