// Quickstart: train NeuTraj on a small synthetic corpus and use it to
// approximate the Fréchet distance in linear time.
//
//   $ ./quickstart
//
// Walks through the full pipeline: data -> seeds -> exact seed distances ->
// training -> O(L) similarity queries, and prints approximation quality.

#include <cstdio>

#include "neutraj.h"

int main() {
  using namespace neutraj;

  // 1. A city-like trajectory corpus (offline stand-in for Porto taxi data).
  GeneratorConfig gen = PortoLikeConfig(/*scale=*/0.6);
  gen.point_spacing = 40.0;  // Denser sampling: ~90-point trajectories.
  gen.max_points = 96;
  TrajectoryDataset db = GeneratePortoLike(gen);
  std::printf("Corpus: %zu trajectories, mean length %.1f points\n",
              db.size(), db.MeanLength());

  // 2. Split: 20%% seeds (training guidance), 10%% validation, 70%% test.
  DatasetSplit split = SplitDataset(db, 0.3, 0.1);
  std::printf("Seeds: %zu, test: %zu\n", split.seeds.size(), split.test.size());

  // 3. Exact pairwise distances of the seeds — the only quadratic-cost step,
  //    paid once per database.
  Stopwatch sw;
  DistanceMatrix seed_dists =
      ComputePairwiseDistances(split.seeds, Measure::kFrechet);
  std::printf("Seed distance matrix (%zux%zu): %.2fs\n", seed_dists.size(),
              seed_dists.size(), sw.ElapsedSeconds());

  // 4. Train the model.
  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.measure = Measure::kFrechet;
  cfg.embedding_dim = 32;
  cfg.epochs = 20;
  Grid grid(db.region.Inflated(50.0), /*cell_size=*/100.0);
  sw.Restart();
  Trainer trainer(cfg, grid, split.seeds, seed_dists);
  trainer.Train([](const EpochStats& e, NeuTrajModel&) {
    if (e.epoch % 5 == 0) {
      std::printf("  epoch %2zu  loss %.4f  (%.1fs)\n", e.epoch, e.mean_loss,
                  e.seconds);
    }
    return true;
  });
  NeuTrajModel model = trainer.TakeModel();
  std::printf("Training: %.1fs, %zu parameters\n", sw.ElapsedSeconds(),
              model.NumParameters());

  // 5. Linear-time similarity for ad-hoc pairs, versus the exact measure.
  std::printf("\n%-8s %-14s %-14s\n", "pair", "exact Frechet", "embed dist");
  for (size_t i = 0; i + 1 < 12; i += 2) {
    const Trajectory& a = split.test[i];
    const Trajectory& b = split.test[i + 1];
    std::printf("(%2zu,%2zu)  %10.1f m   %10.4f\n", i, i + 1,
                FrechetDistance(a, b), model.Distance(a, b));
  }

  // 6. Search throughput, the paper's protocol: corpus embeddings are
  //    computed once offline; a query costs one O(L) embedding plus an
  //    O(N*d) scan, versus N quadratic-time exact computations.
  const auto& corpus = split.test;
  auto embeds = model.EmbedAll(corpus);  // Offline, once per corpus.
  const size_t num_queries = 20;
  double sink = 0;
  sw.Restart();
  for (size_t q = 0; q < num_queries; ++q) {
    for (const Trajectory& t : corpus) sink += FrechetDistance(corpus[q], t);
  }
  const double exact_time = sw.ElapsedSeconds();
  sw.Restart();
  for (size_t q = 0; q < num_queries; ++q) {
    const nn::Vector qe = model.Embed(corpus[q]);
    for (const auto& e : embeds) sink += nn::L2Distance(qe, e);
  }
  const double neutraj_time = sw.ElapsedSeconds();
  std::printf("\n%zu queries x %zu corpus: exact %.3fs vs NeuTraj %.3fs "
              "(%.0fx speedup)\n",
              num_queries, corpus.size(), exact_time, neutraj_time,
              exact_time / neutraj_time);
  (void)sink;
  return 0;
}
