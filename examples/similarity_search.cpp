// Top-k trajectory similarity search with NeuTraj, compared against brute
// force and the approximate-algorithm baseline, with and without a spatial
// index — the paper's flagship application.
//
//   $ ./similarity_search [measure]      (default: hausdorff)

#include <cstdio>
#include <string>

#include "neutraj.h"

int main(int argc, char** argv) {
  using namespace neutraj;
  const Measure measure =
      argc > 1 ? MeasureFromName(argv[1]) : Measure::kHausdorff;
  std::printf("== Top-k similarity search under %s ==\n",
              MeasureName(measure).c_str());

  TrajectoryDataset db = GeneratePortoLike(PortoLikeConfig(0.8));
  DatasetSplit split = SplitDataset(db, 0.3, 0.1);
  const DistanceFn exact = ExactDistanceFn(measure);

  // Train (cached across runs in ./neutraj_cache).
  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.measure = measure;
  cfg.embedding_dim = 32;
  cfg.epochs = 20;
  Grid grid(db.region.Inflated(50.0), 100.0);
  DistanceMatrix seed_dists = CachedPairwiseDistances(split.seeds, measure);
  std::printf("Training/loading NeuTraj on %zu seeds...\n", split.seeds.size());
  TrainedModel trained = TrainOrLoadModel(cfg, grid, split.seeds, seed_dists);
  std::printf("  %s (%.1fs training)\n",
              trained.from_cache ? "loaded from cache" : "trained fresh",
              trained.stats.total_seconds);

  // Evaluate search quality on the test corpus.
  const auto& corpus = split.test;
  TopKWorkload workload(corpus, exact, /*num_queries=*/60);
  const TopKQuality q = workload.EvaluateModel(trained.model);
  std::printf("\nQuality over %zu queries (corpus %zu):\n", q.num_queries,
              corpus.size());
  std::printf("  HR@10 %.3f   HR@50 %.3f   R10@50 %.3f   dH10 %.0fm\n", q.hr10,
              q.hr50, q.r10_at_50, q.delta_h10);

  // Latency: brute force vs NeuTraj scan (+ exact re-rank of the top-50).
  const auto embeds = trained.model.EmbedAll(corpus);
  const Trajectory& query = corpus[0];
  Stopwatch sw;
  SearchResult brute = ExactTopK(corpus, query, exact, 10, 0);
  const double brute_ms = sw.ElapsedMillis();
  sw.Restart();
  const nn::Vector qe = trained.model.Embed(query);
  SearchResult approx = EmbeddingTopK(embeds, qe, 50, 0);
  SearchResult reranked = RerankByExact(corpus, query, approx.ids, exact, 10);
  const double neutraj_ms = sw.ElapsedMillis();
  std::printf("\nSingle query latency: brute force %.2fms, NeuTraj %.2fms "
              "(%.0fx speedup)\n",
              brute_ms, neutraj_ms, brute_ms / neutraj_ms);
  size_t overlap = 0;
  for (size_t id : reranked.ids) {
    for (size_t gt : brute.ids) {
      if (id == gt) ++overlap;
    }
  }
  std::printf("Top-10 overlap with ground truth after re-rank: %zu/10\n",
              overlap);

  // Index-assisted search: R-tree prefilter, then NeuTraj within candidates.
  RTree rtree = RTree::ForTrajectories(corpus);
  const BoundingBox qbox = query.Bounds().Inflated(1500.0);
  const std::vector<size_t> candidates = rtree.Query(qbox);
  std::printf("\nR-tree prefilter: %zu of %zu candidates\n", candidates.size(),
              corpus.size());
  sw.Restart();
  std::vector<double> cand_dists(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    cand_dists[i] = nn::L2Distance(embeds[candidates[i]], qe);
  }
  std::printf("Index + embedding scan: %.2fms\n", sw.ElapsedMillis());
  return 0;
}
