// Trajectory clustering with DBSCAN on NeuTraj embedding distances versus
// exact distances — the paper's pair-wise-similarity application (Fig. 9).
//
//   $ ./trajectory_clustering

#include <cstdio>

#include "neutraj.h"

int main() {
  using namespace neutraj;
  TrajectoryDataset db = GeneratePortoLike(PortoLikeConfig(0.6));
  DatasetSplit split = SplitDataset(db, 0.3, 0.1);
  const Measure measure = Measure::kFrechet;

  // Train (cached) and embed the clustering corpus.
  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.measure = measure;
  cfg.embedding_dim = 32;
  cfg.epochs = 20;
  Grid grid(db.region.Inflated(50.0), 100.0);
  DistanceMatrix seed_dists = CachedPairwiseDistances(split.seeds, measure);
  TrainedModel trained = TrainOrLoadModel(cfg, grid, split.seeds, seed_dists);

  const auto& corpus = split.test;
  std::printf("Clustering %zu trajectories under %s\n", corpus.size(),
              MeasureName(measure).c_str());

  // Exact pair-wise distances: the quadratic ground truth.
  Stopwatch sw;
  DistanceMatrix exact = CachedPairwiseDistances(corpus, measure);
  std::printf("Exact pairwise distances: %.1fs\n", sw.ElapsedSeconds());

  // Embedding distances: linear embedding + O(d) pairs.
  sw.Restart();
  const auto embeds = trained.model.EmbedAll(corpus);
  std::vector<double> approx(corpus.size() * corpus.size(), 0.0);
  // Calibrate the embedding scale to meters with the seed guidance alpha:
  // ||E_i - E_j|| ~ alpha * D_ij by construction of the training target.
  const double scale = 1.0 / SimilarityMatrix(seed_dists, cfg).alpha();
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = 0; j < corpus.size(); ++j) {
      approx[i * corpus.size() + j] =
          scale * nn::L2Distance(embeds[i], embeds[j]);
    }
  }
  std::printf("Embedding-based distances: %.1fs\n", sw.ElapsedSeconds());

  // Sweep DBSCAN eps and compare the clusterings.
  std::printf("\n%-10s %-18s %-18s %-6s %-6s %-6s %-6s\n", "eps(m)",
              "clusters(exact)", "clusters(embed)", "Homog", "Compl", "V-meas",
              "ARI");
  const size_t min_pts = 5;
  for (double eps : {200.0, 400.0, 600.0, 800.0, 1200.0}) {
    const Clustering truth = Dbscan(exact, eps, min_pts);
    const Clustering pred = Dbscan(approx, corpus.size(), eps, min_pts);
    const ClusterAgreement a = CompareClusterings(truth.labels, pred.labels);
    std::printf("%-10.0f %-18d %-18d %.3f  %.3f  %.3f  %.3f\n", eps,
                truth.num_clusters, pred.num_clusters, a.homogeneity,
                a.completeness, a.v_measure, a.adjusted_rand_index);
  }
  return 0;
}
