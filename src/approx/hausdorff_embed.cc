#include "approx/hausdorff_embed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace neutraj {

HausdorffEmbedder::HausdorffEmbedder(const Grid& grid, double cap)
    : grid_(grid), cap_(cap) {
  if (cap_ <= 0.0) {
    const double diag = std::hypot(grid.region().Width(), grid.region().Height());
    cap_ = diag / 2.0;
  }
}

std::vector<double> HausdorffEmbedder::Embed(const Trajectory& t) const {
  if (t.empty()) throw std::invalid_argument("HausdorffEmbedder: empty trajectory");
  const int32_t cols = grid_.num_cols();
  const int32_t rows = grid_.num_rows();
  const size_t cells = static_cast<size_t>(cols) * rows;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(cells, kInf);

  // Seed occupied cells with the exact distance from the cell center to the
  // nearest seeding point (better than 0: keeps sub-cell information).
  for (const Point& p : t) {
    const GridCell c = grid_.CellOf(p);
    const size_t idx = static_cast<size_t>(grid_.FlatIndex(c));
    const double d = EuclideanDistance(grid_.CellCenter(c), p);
    dist[idx] = std::min(dist[idx], d);
  }

  // Two-pass chamfer distance transform with 8-neighborhood step costs.
  const double dx = grid_.cell_width();
  const double dy = grid_.cell_height();
  const double diag = std::hypot(dx, dy);
  auto at = [&](int32_t col, int32_t row) -> double& {
    return dist[static_cast<size_t>(row) * cols + col];
  };
  auto relax = [](double& target, double source, double step) {
    if (source + step < target) target = source + step;
  };
  // Forward pass (top-left to bottom-right).
  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t c = 0; c < cols; ++c) {
      double& v = at(c, r);
      if (c > 0) relax(v, at(c - 1, r), dx);
      if (r > 0) relax(v, at(c, r - 1), dy);
      if (c > 0 && r > 0) relax(v, at(c - 1, r - 1), diag);
      if (c + 1 < cols && r > 0) relax(v, at(c + 1, r - 1), diag);
    }
  }
  // Backward pass (bottom-right to top-left).
  for (int32_t r = rows - 1; r >= 0; --r) {
    for (int32_t c = cols - 1; c >= 0; --c) {
      double& v = at(c, r);
      if (c + 1 < cols) relax(v, at(c + 1, r), dx);
      if (r + 1 < rows) relax(v, at(c, r + 1), dy);
      if (c + 1 < cols && r + 1 < rows) relax(v, at(c + 1, r + 1), diag);
      if (c > 0 && r + 1 < rows) relax(v, at(c - 1, r + 1), diag);
    }
  }
  for (double& v : dist) v = std::min(v, cap_);
  return dist;
}

double HausdorffEmbedder::EmbeddingDistance(const std::vector<double>& a,
                                            const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("EmbeddingDistance: size mismatch");
  }
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double HausdorffEmbedder::ApproxHausdorff(const Trajectory& a,
                                          const Trajectory& b) const {
  return EmbeddingDistance(Embed(a), Embed(b));
}

}  // namespace neutraj
