// FastDTW (Salvador & Chan, 2007): linear-time approximate dynamic time
// warping by multilevel coarsening, path projection and radius-constrained
// refinement.

#ifndef NEUTRAJ_APPROX_FAST_DTW_H_
#define NEUTRAJ_APPROX_FAST_DTW_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "geo/trajectory.h"

namespace neutraj {

/// A warp path: aligned index pairs (i into a, j into b), monotone
/// non-decreasing in both coordinates, from (0,0) to (n-1, m-1).
using WarpPath = std::vector<std::pair<size_t, size_t>>;

/// Result of a (windowed) DTW evaluation.
struct DtwResult {
  double distance = 0.0;
  WarpPath path;
};

/// Exact DTW restricted to a window of allowed cells; `window[i]` is the
/// inclusive [lo, hi] column range of row i (must be non-empty per row and
/// connected). Used by FastDTW's refinement step and directly testable.
DtwResult WindowedDtw(const Trajectory& a, const Trajectory& b,
                      const std::vector<std::pair<size_t, size_t>>& window);

/// Full exact DTW with path recovery (O(n*m) time and memory).
DtwResult DtwWithPath(const Trajectory& a, const Trajectory& b);

/// FastDTW approximate distance. `radius` controls the refinement band
/// (larger = more accurate, slower); the classic default is 1.
/// Throws std::invalid_argument on empty inputs.
double FastDtwDistance(const Trajectory& a, const Trajectory& b, int radius = 1);

/// Sakoe–Chiba banded DTW: the DP is restricted to a diagonal band covering
/// `band_fraction` of the shorter side (in [0, 1]; 1 = exact DTW). The
/// classic O(n * band) constrained approximation; never underestimates the
/// exact distance. Throws std::invalid_argument on empty inputs or a
/// fraction outside [0, 1].
double BandedDtwDistance(const Trajectory& a, const Trajectory& b,
                         double band_fraction);

}  // namespace neutraj

#endif  // NEUTRAJ_APPROX_FAST_DTW_H_
