// Approximate Fréchet distance via grid-snapped curve simplification
// (Driemel & Silvestri, SoCG'17 signature curves).

#ifndef NEUTRAJ_APPROX_FRECHET_APPROX_H_
#define NEUTRAJ_APPROX_FRECHET_APPROX_H_

#include "geo/trajectory.h"

namespace neutraj {

/// Discrete Fréchet distance computed on `cell_size`-snapped signature
/// curves; the signatures are typically much shorter than the originals, so
/// the quadratic DP runs on small inputs. Additive error is bounded by
/// sqrt(2) * cell_size.
double ApproxFrechetDistance(const Trajectory& a, const Trajectory& b,
                             double cell_size);

}  // namespace neutraj

#endif  // NEUTRAJ_APPROX_FRECHET_APPROX_H_
