// Grid-snapping curve simplification — the signature step of
// Driemel & Silvestri's locality-sensitive hashing of curves (SoCG'17).
//
// Each point is snapped to the center of a randomly-shiftable uniform grid
// and consecutive duplicate cells are collapsed. The snapped curve is within
// Fréchet distance delta*sqrt(2)/2 of the original, so measures computed on
// snapped curves approximate the originals while being much shorter.

#ifndef NEUTRAJ_APPROX_GRID_SNAP_H_
#define NEUTRAJ_APPROX_GRID_SNAP_H_

#include "geo/trajectory.h"

namespace neutraj {

/// Snaps every point of `t` to the center of its `cell_size` grid cell
/// (grid anchored at `shift`) and removes consecutive duplicates.
/// The result is never empty for a non-empty input.
Trajectory SnapToGrid(const Trajectory& t, double cell_size,
                      const Point& shift = Point(0.0, 0.0));

}  // namespace neutraj

#endif  // NEUTRAJ_APPROX_GRID_SNAP_H_
