#include "approx/fast_dtw.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace neutraj {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Halves a trajectory's resolution by averaging adjacent point pairs.
Trajectory Coarsen(const Trajectory& t) {
  Trajectory out;
  for (size_t i = 0; i + 1 < t.size(); i += 2) {
    out.Append(Point((t[i].x + t[i + 1].x) / 2.0, (t[i].y + t[i + 1].y) / 2.0));
  }
  if (t.size() % 2 == 1) out.Append(t[t.size() - 1]);
  return out;
}

/// Projects a low-resolution warp path to the next resolution and expands it
/// by `radius` cells in every direction, producing per-row column ranges.
std::vector<std::pair<size_t, size_t>> ExpandWindow(const WarpPath& low_path,
                                                    size_t n, size_t m,
                                                    int radius) {
  const int64_t in = static_cast<int64_t>(n);
  const int64_t im = static_cast<int64_t>(m);
  std::vector<std::pair<int64_t, int64_t>> range(
      n, {std::numeric_limits<int64_t>::max(), std::numeric_limits<int64_t>::min()});
  auto mark = [&](int64_t i, int64_t lo, int64_t hi) {
    if (i < 0 || i >= in) return;
    range[static_cast<size_t>(i)].first = std::min(range[static_cast<size_t>(i)].first, lo);
    range[static_cast<size_t>(i)].second = std::max(range[static_cast<size_t>(i)].second, hi);
  };
  for (const auto& [li, lj] : low_path) {
    // Each low-res cell (li, lj) covers rows {2li, 2li+1} and
    // columns {2lj, 2lj+1} at the finer resolution.
    const int64_t i0 = static_cast<int64_t>(2 * li);
    const int64_t j0 = static_cast<int64_t>(2 * lj);
    for (int64_t di = -radius; di <= 1 + radius; ++di) {
      mark(i0 + di, j0 - radius, j0 + 1 + radius);
    }
  }
  std::vector<std::pair<size_t, size_t>> window(n);
  int64_t prev_hi = 0;
  for (size_t i = 0; i < n; ++i) {
    int64_t lo = range[i].first;
    int64_t hi = range[i].second;
    if (lo > hi) {  // Row not covered (short low-res path); bridge it.
      lo = prev_hi;
      hi = prev_hi;
    }
    lo = std::clamp<int64_t>(lo, 0, im - 1);
    hi = std::clamp<int64_t>(hi, 0, im - 1);
    // Keep the window column-monotone so the DP recurrence stays connected.
    lo = std::min(lo, prev_hi);
    window[i] = {static_cast<size_t>(lo), static_cast<size_t>(hi)};
    prev_hi = hi;
  }
  window[0].first = 0;
  window[n - 1].second = static_cast<size_t>(im - 1);
  return window;
}

}  // namespace

DtwResult WindowedDtw(const Trajectory& a, const Trajectory& b,
                      const std::vector<std::pair<size_t, size_t>>& window) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) throw std::invalid_argument("WindowedDtw: empty input");
  if (window.size() != n) {
    throw std::invalid_argument("WindowedDtw: window rows != |a|");
  }
  // Full DP table (windowed rows only are finite); needed for path recovery.
  std::vector<double> dp(n * m, kInf);
  auto at = [&](size_t i, size_t j) -> double& { return dp[i * m + j]; };
  for (size_t i = 0; i < n; ++i) {
    const auto [lo, hi] = window[i];
    if (lo > hi || hi >= m) throw std::invalid_argument("WindowedDtw: bad window");
    for (size_t j = lo; j <= hi; ++j) {
      const double cost = EuclideanDistance(a[i], b[j]);
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, at(i - 1, j));
        if (j > 0) best = std::min(best, at(i, j - 1));
        if (i > 0 && j > 0) best = std::min(best, at(i - 1, j - 1));
      }
      at(i, j) = cost + best;
    }
  }
  DtwResult result;
  result.distance = at(n - 1, m - 1);
  // Path recovery by greedy backtracking over the three predecessors.
  size_t i = n - 1, j = m - 1;
  result.path.emplace_back(i, j);
  while (i > 0 || j > 0) {
    double best = kInf;
    size_t bi = i, bj = j;
    if (i > 0 && j > 0 && at(i - 1, j - 1) < best) {
      best = at(i - 1, j - 1);
      bi = i - 1;
      bj = j - 1;
    }
    if (i > 0 && at(i - 1, j) < best) {
      best = at(i - 1, j);
      bi = i - 1;
      bj = j;
    }
    if (j > 0 && at(i, j - 1) < best) {
      bi = i;
      bj = j - 1;
    }
    i = bi;
    j = bj;
    result.path.emplace_back(i, j);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

DtwResult DtwWithPath(const Trajectory& a, const Trajectory& b) {
  std::vector<std::pair<size_t, size_t>> full(a.size(), {0, b.size() - 1});
  return WindowedDtw(a, b, full);
}

namespace {

DtwResult FastDtwRecursive(const Trajectory& a, const Trajectory& b, int radius) {
  const size_t min_size = static_cast<size_t>(radius) + 2;
  if (a.size() <= min_size || b.size() <= min_size) {
    return DtwWithPath(a, b);
  }
  const Trajectory ca = Coarsen(a);
  const Trajectory cb = Coarsen(b);
  const DtwResult low = FastDtwRecursive(ca, cb, radius);
  const auto window = ExpandWindow(low.path, a.size(), b.size(), radius);
  return WindowedDtw(a, b, window);
}

}  // namespace

double FastDtwDistance(const Trajectory& a, const Trajectory& b, int radius) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("FastDtwDistance: empty input");
  }
  if (radius < 0) throw std::invalid_argument("FastDtwDistance: radius < 0");
  return FastDtwRecursive(a, b, radius).distance;
}

double BandedDtwDistance(const Trajectory& a, const Trajectory& b,
                         double band_fraction) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("BandedDtwDistance: empty input");
  }
  if (band_fraction < 0.0 || band_fraction > 1.0) {
    throw std::invalid_argument("BandedDtwDistance: band_fraction not in [0,1]");
  }
  const size_t n = a.size();
  const size_t m = b.size();
  // Band half-width in columns, slope-adjusted so the diagonal from (0,0)
  // to (n-1, m-1) is always inside the window.
  const int64_t band = std::max<int64_t>(
      1, static_cast<int64_t>(band_fraction * static_cast<double>(std::min(n, m))));
  std::vector<std::pair<size_t, size_t>> window(n);
  int64_t prev_hi = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t center = n > 1 ? static_cast<int64_t>(
                                       i * (m - 1) / (n - 1))
                                 : 0;
    int64_t lo = std::clamp<int64_t>(center - band, 0,
                                     static_cast<int64_t>(m) - 1);
    const int64_t hi = std::clamp<int64_t>(center + band, 0,
                                           static_cast<int64_t>(m) - 1);
    lo = std::min(lo, prev_hi);  // Keep the window connected between rows.
    window[i] = {static_cast<size_t>(lo), static_cast<size_t>(hi)};
    prev_hi = hi;
  }
  window[0].first = 0;
  window[n - 1].second = m - 1;
  return WindowedDtw(a, b, window).distance;
}

}  // namespace neutraj
