#include "approx/approx_registry.h"

#include <cmath>
#include <stdexcept>

#include "approx/fast_dtw.h"
#include "approx/grid_snap.h"
#include "approx/hausdorff_embed.h"

namespace neutraj {

namespace {

/// Sketch holding a (possibly simplified) trajectory.
class TrajSketch : public ApproxDistance::Sketch {
 public:
  explicit TrajSketch(Trajectory t) : traj(std::move(t)) {}
  Trajectory traj;
};

/// Sketch holding a distance-transform embedding vector.
class VectorSketch : public ApproxDistance::Sketch {
 public:
  explicit VectorSketch(std::vector<double> v) : values(std::move(v)) {}
  std::vector<double> values;
};

class FrechetSnapApprox : public ApproxDistance {
 public:
  explicit FrechetSnapApprox(double cell_size) : cell_size_(cell_size) {
    if (cell_size <= 0.0) {
      throw std::invalid_argument("FrechetSnapApprox: cell_size <= 0");
    }
  }

  std::string name() const override { return "frechet-grid-snap"; }

  std::unique_ptr<Sketch> Prepare(const Trajectory& t) const override {
    return std::make_unique<TrajSketch>(SnapToGrid(t, cell_size_));
  }

  double Distance(const Sketch& a, const Sketch& b) const override {
    return FrechetDistance(static_cast<const TrajSketch&>(a).traj,
                           static_cast<const TrajSketch&>(b).traj);
  }

 private:
  double cell_size_;
};

class FastDtwApprox : public ApproxDistance {
 public:
  explicit FastDtwApprox(int radius) : radius_(radius) {}

  std::string name() const override { return "fast-dtw"; }

  std::unique_ptr<Sketch> Prepare(const Trajectory& t) const override {
    return std::make_unique<TrajSketch>(t);
  }

  double Distance(const Sketch& a, const Sketch& b) const override {
    return FastDtwDistance(static_cast<const TrajSketch&>(a).traj,
                           static_cast<const TrajSketch&>(b).traj, radius_);
  }

 private:
  int radius_;
};

class HausdorffEmbedApprox : public ApproxDistance {
 public:
  HausdorffEmbedApprox(const BoundingBox& region, int32_t cols, int32_t rows)
      : embedder_(Grid(region, cols, rows)) {}

  std::string name() const override { return "hausdorff-dt-embedding"; }

  std::unique_ptr<Sketch> Prepare(const Trajectory& t) const override {
    return std::make_unique<VectorSketch>(embedder_.Embed(t));
  }

  double Distance(const Sketch& a, const Sketch& b) const override {
    return HausdorffEmbedder::EmbeddingDistance(
        static_cast<const VectorSketch&>(a).values,
        static_cast<const VectorSketch&>(b).values);
  }

 private:
  HausdorffEmbedder embedder_;
};

}  // namespace

ApproxParams ApproxParams::ForRegion(const BoundingBox& region) {
  ApproxParams p;
  p.region = region;
  const double diag = std::hypot(region.Width(), region.Height());
  p.frechet_cell_size = diag > 0 ? diag / 64.0 : 1.0;
  return p;
}

double ApproxDistance::Distance(const Trajectory& a, const Trajectory& b) const {
  return Distance(*Prepare(a), *Prepare(b));
}

std::vector<std::unique_ptr<ApproxDistance::Sketch>> ApproxDistance::PrepareCorpus(
    const std::vector<Trajectory>& corpus) const {
  std::vector<std::unique_ptr<Sketch>> out;
  out.reserve(corpus.size());
  for (const Trajectory& t : corpus) out.push_back(Prepare(t));
  return out;
}

SearchResult ApproxDistance::TopK(
    const std::vector<std::unique_ptr<Sketch>>& corpus, const Trajectory& query,
    size_t k, int64_t exclude) const {
  const std::unique_ptr<Sketch> q = Prepare(query);
  std::vector<double> dists(corpus.size(), 0.0);
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (exclude >= 0 && i == static_cast<size_t>(exclude)) continue;
    dists[i] = Distance(*q, *corpus[i]);
  }
  return TopKByDistance(dists, k, exclude);
}

std::unique_ptr<ApproxDistance> ApproxDistance::Create(Measure m,
                                                       const ApproxParams& params) {
  switch (m) {
    case Measure::kFrechet: {
      double cell = params.frechet_cell_size;
      if (cell <= 0.0) {
        const double diag =
            std::hypot(params.region.Width(), params.region.Height());
        cell = diag > 0 ? diag / 64.0 : 1.0;
      }
      return std::make_unique<FrechetSnapApprox>(cell);
    }
    case Measure::kDtw:
      return std::make_unique<FastDtwApprox>(params.fastdtw_radius);
    case Measure::kHausdorff:
      if (params.region.IsEmpty()) {
        throw std::invalid_argument(
            "ApproxDistance::Create(Hausdorff): region required");
      }
      return std::make_unique<HausdorffEmbedApprox>(
          params.region, params.hausdorff_grid_cols, params.hausdorff_grid_rows);
    case Measure::kErp:
    case Measure::kEdr:
    case Measure::kLcss:
      return nullptr;  // No approximate algorithm (paper Table II "-").
  }
  return nullptr;
}

}  // namespace neutraj
