#include "approx/grid_snap.h"

#include <cmath>
#include <stdexcept>

namespace neutraj {

Trajectory SnapToGrid(const Trajectory& t, double cell_size, const Point& shift) {
  if (cell_size <= 0.0) throw std::invalid_argument("SnapToGrid: cell_size <= 0");
  Trajectory out;
  for (const Point& p : t) {
    const double cx =
        (std::floor((p.x - shift.x) / cell_size) + 0.5) * cell_size + shift.x;
    const double cy =
        (std::floor((p.y - shift.y) / cell_size) + 0.5) * cell_size + shift.y;
    const Point snapped(cx, cy);
    if (out.empty() || !(out[out.size() - 1] == snapped)) {
      out.Append(snapped);
    }
  }
  return out;
}

}  // namespace neutraj
