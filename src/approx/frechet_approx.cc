#include "approx/frechet_approx.h"

#include "approx/grid_snap.h"
#include "distance/measures.h"

namespace neutraj {

double ApproxFrechetDistance(const Trajectory& a, const Trajectory& b,
                             double cell_size) {
  return FrechetDistance(SnapToGrid(a, cell_size), SnapToGrid(b, cell_size));
}

}  // namespace neutraj
