// Grid distance-transform embedding for the Hausdorff distance, in the
// spirit of Farach-Colton & Indyk (FOCS'99) / Backurs & Sidiropoulos
// (APPROX'16): each point set is embedded as the vector of (capped)
// distances from every grid-cell center to the set, and
//   Hausdorff(A, B) ~= Linf(embed(A), embed(B)).
// The identity is exact in the continuous limit; the grid resolution and
// the cap bound the distortion.

#ifndef NEUTRAJ_APPROX_HAUSDORFF_EMBED_H_
#define NEUTRAJ_APPROX_HAUSDORFF_EMBED_H_

#include <vector>

#include "geo/grid.h"
#include "geo/trajectory.h"

namespace neutraj {

/// Embeds trajectories into R^{P*Q} distance-transform vectors.
class HausdorffEmbedder {
 public:
  /// `grid` fixes the embedding cells; `cap` truncates cell-to-set distances
  /// (<= 0 selects half the region diagonal).
  explicit HausdorffEmbedder(const Grid& grid, double cap = 0.0);

  /// The distance-transform vector of `t` (size grid cells), computed by a
  /// two-pass chamfer sweep over the grid in O(points + cells) time.
  std::vector<double> Embed(const Trajectory& t) const;

  /// Linf distance between two embeddings — the Hausdorff approximation.
  static double EmbeddingDistance(const std::vector<double>& a,
                                  const std::vector<double>& b);

  /// Convenience: embeds both sides and compares.
  double ApproxHausdorff(const Trajectory& a, const Trajectory& b) const;

  const Grid& grid() const { return grid_; }
  double cap() const { return cap_; }

 private:
  Grid grid_;
  double cap_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_APPROX_HAUSDORFF_EMBED_H_
