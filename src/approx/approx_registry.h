// Unified interface over the approximate algorithms — the "AP" baseline of
// the paper's experiments.
//
// Each method splits work into a per-trajectory Sketch (computed once per
// corpus item) and a sketch-to-sketch distance, mirroring how these
// algorithms amortize preprocessing in practice. ERP has no published
// approximate algorithm (Table II reports "-"), so Create() returns null
// for it.

#ifndef NEUTRAJ_APPROX_APPROX_REGISTRY_H_
#define NEUTRAJ_APPROX_APPROX_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/search.h"
#include "distance/measures.h"
#include "geo/grid.h"

namespace neutraj {

/// Tuning knobs of the approximate algorithms.
struct ApproxParams {
  /// Snap resolution for the Fréchet signature (meters). <= 0 selects
  /// 1/64 of the region diagonal.
  double frechet_cell_size = 0.0;
  /// FastDTW refinement radius.
  int fastdtw_radius = 1;
  /// Grid resolution of the Hausdorff distance-transform embedding.
  int32_t hausdorff_grid_cols = 24;
  int32_t hausdorff_grid_rows = 24;
  /// The region all trajectories live in (required for Hausdorff).
  BoundingBox region = BoundingBox::Empty();

  /// Fills region-dependent defaults from `region`.
  static ApproxParams ForRegion(const BoundingBox& region);
};

/// An approximate trajectory-distance algorithm.
class ApproxDistance {
 public:
  /// Opaque per-trajectory preprocessing result.
  class Sketch {
   public:
    virtual ~Sketch() = default;
  };

  virtual ~ApproxDistance() = default;

  virtual std::string name() const = 0;

  /// Builds the per-trajectory summary (signature curve, DT embedding, ...).
  virtual std::unique_ptr<Sketch> Prepare(const Trajectory& t) const = 0;

  /// Approximate distance between two prepared sketches.
  virtual double Distance(const Sketch& a, const Sketch& b) const = 0;

  /// Convenience one-shot distance (prepares both sides).
  double Distance(const Trajectory& a, const Trajectory& b) const;

  /// Prepares a whole corpus.
  std::vector<std::unique_ptr<Sketch>> PrepareCorpus(
      const std::vector<Trajectory>& corpus) const;

  /// Top-k search of `query` against a prepared corpus.
  SearchResult TopK(const std::vector<std::unique_ptr<Sketch>>& corpus,
                    const Trajectory& query, size_t k,
                    int64_t exclude = -1) const;

  /// Factory: the paper's AP baseline for `m`, or nullptr for ERP (no
  /// approximate algorithm exists).
  static std::unique_ptr<ApproxDistance> Create(Measure m, const ApproxParams& params);
};

}  // namespace neutraj

#endif  // NEUTRAJ_APPROX_APPROX_REGISTRY_H_
