// Micro-batched trajectory encoding for the query server.
//
// Every serving endpoint that needs an embedding (Encode, PairSim, TopK,
// Insert) funnels through one MicroBatcher instead of calling
// NeuTrajModel::Embed directly. Callers enqueue whole groups of
// trajectories and block on one future per group; a dedicated batcher
// thread coalesces whatever has queued up — waiting at most
// `max_wait_micros` for stragglers once the first item arrives — and
// executes the batch across a persistent ThreadPool with one
// CellWorkspace per worker. Under load this amortizes wake-ups,
// scheduling, synchronization, and workspace locality over many requests;
// an idle server degenerates to batch-size 1 with at most one wait-window
// of added latency. The per-group (not per-item) promise matters on the
// hot path: a pipelined 64-request burst costs one future, not 64.
//
// Batching is an execution detail, not a semantic one: each trajectory is
// embedded independently with read-only inference, so results are
// bit-for-bit identical to a direct Embed() no matter how requests get
// grouped or split across batches.

#ifndef NEUTRAJ_SERVE_MICRO_BATCHER_H_
#define NEUTRAJ_SERVE_MICRO_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/model.h"
#include "nn/workspace.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"

namespace neutraj::serve {

/// Coalesces queued encode requests into ThreadPool-executed batches.
class MicroBatcher {
 public:
  struct Options {
    size_t threads = 1;          ///< ThreadPool workers per batch.
    size_t max_batch = 32;       ///< Hard cap on one batch's size.
    int64_t max_wait_micros = 200;  ///< Straggler window after the first
                                    ///< item of a batch arrives; 0 = none.
    /// Where batcher metrics (batch-size distribution, straggler waits,
    /// request/batch counters) register. nullptr = the process-global
    /// registry; QueryService points this at its own instance.
    obs::MetricsRegistry* registry = nullptr;
  };

  struct Stats {
    uint64_t requests = 0;  ///< Trajectories submitted.
    uint64_t batches = 0;   ///< Batches executed.
    uint64_t max_batch = 0;  ///< Largest batch seen.

    double mean_batch_size() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(requests) /
                                static_cast<double>(batches);
    }
  };

  /// Outcome of one submitted group. embeddings[i] is valid iff
  /// errors[i].empty(); bad_input[i] != 0 marks failures caused by the
  /// trajectory itself (invalid_argument) rather than internal errors, so
  /// the service can map them to the right error code.
  struct BatchResult {
    std::vector<nn::Vector> embeddings;
    std::vector<std::string> errors;
    std::vector<uint8_t> bad_input;
  };

  /// The model must use read-only inference (throws std::logic_error when
  /// cfg.update_memory_at_inference is set, mirroring EmbedAllParallel).
  MicroBatcher(const NeuTrajModel& model, const Options& opts);

  /// Drains the queue (pending futures complete), then joins.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues a group of trajectories; the future yields one BatchResult
  /// for the whole group once every item has been embedded. Items of one
  /// group may be split across batches (and coalesced with other groups)
  /// freely. Per-item failures land in BatchResult::errors, never as a
  /// future exception. Throws std::runtime_error after Shutdown().
  ///
  /// `traces` (optional) carries one obs::RequestTrace* per trajectory
  /// (nullptr entries fine, shorter vectors padded): sampled items get
  /// "queue_wait" and "encode" spans recorded from the worker threads. The
  /// pointed-to traces must stay alive until the future resolves — the
  /// caller holds them across .get(), so raw pointers are safe here.
  std::future<BatchResult> SubmitBatch(
      std::vector<Trajectory> trajs,
      std::vector<obs::RequestTrace*> traces = {}) NEUTRAJ_EXCLUDES(mu_);

  /// Submit-one + wait: the blocking form used by simple handlers. Per-item
  /// failure is rethrown (std::invalid_argument for bad input).
  nn::Vector Encode(const Trajectory& traj,
                    obs::RequestTrace* trace = nullptr) NEUTRAJ_EXCLUDES(mu_);

  /// Stops accepting work, finishes everything queued, joins the batcher
  /// thread. Idempotent; also run by the destructor.
  void Shutdown() NEUTRAJ_EXCLUDES(mu_, join_mu_);

  Stats stats() const NEUTRAJ_EXCLUDES(mu_);

 private:
  /// One submitted group; shared by its queued items, completed (promise
  /// fulfilled) by whichever worker finishes the last item.
  struct Group {
    std::vector<Trajectory> trajs;
    /// Parallel to trajs; nullptr = item not traced. Borrowed from the
    /// submitter, valid until the promise fires.
    std::vector<obs::RequestTrace*> traces;
    /// Trace-relative submit time per item — the "queue_wait" span start.
    std::vector<double> submit_us;
    BatchResult result;
    std::atomic<size_t> remaining{0};
    std::promise<BatchResult> promise;
  };

  struct Item {
    std::shared_ptr<Group> group;
    size_t index = 0;
  };

  void BatcherLoop() NEUTRAJ_EXCLUDES(mu_);
  void RunBatch(std::vector<Item>* batch);

  const NeuTrajModel& model_;
  const Options opts_;

  mutable Mutex mu_{lock_rank::kBatcher};
  Mutex join_mu_{lock_rank::kBatcherJoin};  ///< Serializes Shutdown()'s join.
  CondVar work_ready_;
  std::deque<Item> queue_ NEUTRAJ_GUARDED_BY(mu_);
  bool shutdown_ NEUTRAJ_GUARDED_BY(mu_) = false;
  Stats stats_ NEUTRAJ_GUARDED_BY(mu_);

  // Registry-owned metrics, resolved once in the constructor. batch_size_
  // records how many items each executed batch carried; wait_us_ records the
  // straggler window actually spent per batch (0 when the queue was already
  // full or the window is disabled).
  obs::ConcurrentHistogram* batch_size_hist_;
  obs::ConcurrentHistogram* wait_us_hist_;
  obs::Counter* requests_counter_;
  obs::Counter* batches_counter_;

  // Batch execution resources, touched only by the batcher thread.
  ThreadPool pool_;
  std::vector<nn::CellWorkspace> workspaces_;

  // Written once by the constructor before any other thread exists, joined
  // under join_mu_; not lock-annotated because the constructor-time write
  // needs no lock.
  std::thread batcher_;
};

}  // namespace neutraj::serve

#endif  // NEUTRAJ_SERVE_MICRO_BATCHER_H_
