// POSIX-socket query server over a QueryService.
//
// Dependency-free TCP serving: an accept thread plus one handler thread
// per connection (serving-scale fan-in is bounded by `max_connections`).
// Each connection reads length-prefixed wire frames (common/framing.h),
// dispatches complete frames through QueryService::Handle, and writes the
// response frame back. Frame-level failures (bad magic/version, oversized
// declaration, CRC mismatch) get a typed kError reply and a disconnect —
// after a framing error the byte stream cannot be trusted to resync.
//
// Shutdown: RequestStop() is async-signal-safe (one write to a self-pipe),
// so InstallStopSignalHandlers wires SIGTERM/SIGINT straight to it. The
// drain sequence is: stop accepting; flip the service into draining mode
// (new work is refused with kShuttingDown); shut down connection sockets
// for reading so blocked handlers wake at EOF — a handler that registers
// after that pass sees the stop flag and shuts its own socket down. Handler
// threads run detached and count themselves out of a latch as they finish
// writing their in-flight response (so a long-lived server reclaims thread
// resources as connections close, not at shutdown); Wait() blocks until
// the latch reaches zero, then the batcher joins via the service's
// destructor order.

#ifndef NEUTRAJ_SERVE_SERVER_H_
#define NEUTRAJ_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>

#include "common/sync.h"
#include "serve/service.h"

namespace neutraj::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< Bind address.
  uint16_t port = 0;               ///< 0 = pick an ephemeral port.
  size_t max_connections = 64;     ///< Concurrent connection cap.
  /// Cap on an inbound frame's declared payload size. Values above
  /// kWireMaxPayload — the protocol-wide encoder limit, which replies are
  /// also held to — are clamped, so a default-configured Client can decode
  /// everything any server sends.
  size_t max_frame_payload = kWireMaxPayload;
  /// Per-connection idle/read timeout in milliseconds (SO_RCVTIMEO on the
  /// handler socket). A connection that sends nothing for this long is
  /// closed, so stalled or half-dead peers cannot pin handler slots against
  /// max_connections forever. 0 disables the timeout (block indefinitely).
  uint32_t idle_timeout_ms = 0;
  /// Request-tracing knobs (sampling rate, trace ring, slow-query log).
  /// Applied to the service's tracer at construction only when non-default,
  /// so tests that call QueryService::ConfigureTracing directly are not
  /// clobbered; client-forced traces (--trace-id) work even at defaults.
  obs::ReqTraceOptions trace;
};

/// A long-lived loopback/TCP server bound to one QueryService.
class Server {
 public:
  /// `service` must outlive the server.
  Server(QueryService* service, const ServerOptions& opts);

  /// Stops and joins if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and launches the accept thread. Throws
  /// std::runtime_error on socket/bind failure.
  void Start();

  /// The bound port (resolves port 0 after Start()).
  uint16_t port() const { return port_; }

  /// Async-signal-safe stop trigger; returns immediately.
  void RequestStop();

  /// Blocks until a requested stop has fully drained: no accepts, all
  /// connection threads joined, all in-flight responses written.
  void Wait() NEUTRAJ_EXCLUDES(wait_mu_, conn_mu_);

  /// RequestStop() + Wait().
  void Stop() NEUTRAJ_EXCLUDES(wait_mu_, conn_mu_);

  bool running() const { return running_.load(); }

  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const { return accepted_.load(); }

 private:
  void AcceptLoop() NEUTRAJ_EXCLUDES(conn_mu_);
  void ConnectionLoop(int fd) NEUTRAJ_EXCLUDES(conn_mu_);

  QueryService* service_;
  ServerOptions opts_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< [read, write]; write end is the trigger.
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> accepted_{0};

  std::thread accept_thread_;
  /// Serializes Wait()/Stop() joins; ranked below conn_mu_ because Wait()
  /// blocks on the handler latch while holding it.
  Mutex wait_mu_{lock_rank::kServerWait};

  // Connection bookkeeping, all guarded by conn_mu_. Handler threads run
  // detached; live_handlers_ is the completion latch Wait() blocks on, and
  // live fds are tracked so a drain can shutdown(SHUT_RD) blocked readers
  // awake. A handler that registers its fd after the drain's SHUT_RD pass
  // detects stop_requested_ under conn_mu_ and shuts itself down.
  Mutex conn_mu_{lock_rank::kConn};
  CondVar conn_cv_;
  size_t live_handlers_ NEUTRAJ_GUARDED_BY(conn_mu_) = 0;
  std::set<int> conn_fds_ NEUTRAJ_GUARDED_BY(conn_mu_);
};

/// Routes SIGTERM and SIGINT to server->RequestStop(). One server per
/// process; passing nullptr restores the default disposition.
void InstallStopSignalHandlers(Server* server);

}  // namespace neutraj::serve

#endif  // NEUTRAJ_SERVE_SERVER_H_
