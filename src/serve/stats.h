// Serving-side observability: per-endpoint latency histograms and QPS.
//
// The server records one (endpoint, latency, ok/error) sample per request
// under a single mutex — sampling is two array increments, so contention is
// negligible next to an encode. Snapshot() freezes everything into a plain
// struct that the protocol layer ships to clients over kStatsRequest.
//
// Latencies use log2 microsecond buckets: bucket i counts samples in
// (2^(i-1), 2^i] µs, so 28 buckets span 1 µs to ~134 s with ≤ 2x relative
// error on reported percentiles — plenty for spotting a batching or
// locking regression. All timing flows through Stopwatch (steady_clock);
// nothing here reads the wall clock.

#ifndef NEUTRAJ_SERVE_STATS_H_
#define NEUTRAJ_SERVE_STATS_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace neutraj::serve {

/// The service's request kinds, indexing the per-endpoint counters.
enum class Endpoint : size_t {
  kEncode = 0,
  kPairSim,
  kTopK,
  kInsert,
  kStats,
  kHealth,
  kCount,  ///< Sentinel; not an endpoint.
};

const char* EndpointName(Endpoint e);

/// Log2-bucketed latency histogram over microseconds.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 28;

  void Record(double micros);

  uint64_t count() const { return count_; }
  double mean_micros() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double max_micros() const { return max_; }

  /// Latency below which fraction `p` (in [0, 1]) of samples fall; reported
  /// as the upper bound of the containing bucket. 0 with no samples.
  double PercentileMicros(double p) const;

  const std::array<uint64_t, kNumBuckets>& buckets() const { return buckets_; }

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// One endpoint's frozen counters inside a StatsSnapshot.
struct EndpointSnapshot {
  std::string name;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double qps = 0.0;  ///< requests / uptime seconds.
  double mean_micros = 0.0;
  double p50_micros = 0.0;
  double p90_micros = 0.0;
  double p99_micros = 0.0;
  double max_micros = 0.0;
};

/// Everything a kStatsResponse carries; plain data, protocol-serializable.
struct StatsSnapshot {
  double uptime_seconds = 0.0;
  uint64_t corpus_size = 0;
  uint32_t dim = 0;
  // Micro-batcher counters: how well encode work is being coalesced.
  uint64_t batched_requests = 0;
  uint64_t batches = 0;
  double mean_batch_size = 0.0;
  std::vector<EndpointSnapshot> endpoints;

  /// Human-readable multi-line rendering (client CLI, logs).
  std::string ToString() const;
};

/// Thread-safe registry of per-endpoint histograms + error counts.
class ServerStats {
 public:
  void Record(Endpoint e, double micros, bool error);

  /// Frozen endpoint counters; the caller fills the corpus/batcher fields.
  StatsSnapshot Snapshot() const;

 private:
  struct PerEndpoint {
    LatencyHistogram hist;
    uint64_t errors = 0;
  };

  mutable std::mutex mu_;
  Stopwatch uptime_;  ///< Started at construction = server start.
  std::array<PerEndpoint, static_cast<size_t>(Endpoint::kCount)> per_{};
};

}  // namespace neutraj::serve

#endif  // NEUTRAJ_SERVE_STATS_H_
