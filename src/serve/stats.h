// Serving-side observability, built on the src/obs metrics primitives.
//
// ServerStats is a thin per-endpoint view over an obs::MetricsRegistry: each
// endpoint resolves its latency histogram ("serve/<name>/latency_us") and
// error counter ("serve/<name>/errors") once at construction, so Record is
// entirely lock-free — per-endpoint atomic increments, no shared mutex. That
// removes the single-lock contention the old implementation put on every
// request when many handler threads record concurrently.
//
// The histogram type itself (log2 microsecond buckets, bucket 0 = [0, 1] µs
// inclusive, bucket i >= 1 = (2^(i-1), 2^i] µs) now lives in obs/metrics.h so
// trainer and database timings share the serving bucket layout; the alias
// below keeps existing serve-side call sites compiling unchanged.
//
// All timing flows through Stopwatch (steady_clock); nothing here reads the
// wall clock.

#ifndef NEUTRAJ_SERVE_STATS_H_
#define NEUTRAJ_SERVE_STATS_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace neutraj::serve {

/// The histogram moved to obs/metrics.h; serve code keeps its old name.
using LatencyHistogram = obs::LatencyHistogram;

/// The service's request kinds, indexing the per-endpoint counters.
enum class Endpoint : size_t {
  kEncode = 0,
  kPairSim,
  kTopK,
  kInsert,
  kStats,
  kHealth,
  kTraceDump,
  kCount,  ///< Sentinel; not an endpoint.
};

const char* EndpointName(Endpoint e);

/// One endpoint's frozen counters inside a StatsSnapshot.
struct EndpointSnapshot {
  std::string name;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double qps = 0.0;  ///< requests / uptime seconds.
  double mean_micros = 0.0;
  double p50_micros = 0.0;
  double p90_micros = 0.0;
  double p99_micros = 0.0;
  double max_micros = 0.0;
};

/// Everything a kStatsResponse carries; plain data, protocol-serializable.
struct StatsSnapshot {
  double uptime_seconds = 0.0;
  uint64_t corpus_size = 0;
  uint32_t dim = 0;
  // Micro-batcher counters: how well encode work is being coalesced.
  uint64_t batched_requests = 0;
  uint64_t batches = 0;
  double mean_batch_size = 0.0;
  std::vector<EndpointSnapshot> endpoints;
  /// Flattened registry metrics (batcher wait/batch-size distributions,
  /// embedding-DB timings, corpus gauge, ...). Serialized as an optional
  /// trailing wire section, so old clients parse everything above this field
  /// and new clients get the full registry.
  std::vector<std::pair<std::string, double>> metrics;

  /// Human-readable multi-line rendering (client CLI, logs).
  std::string ToString() const;

  /// Prometheus text exposition rendering of the flattened metrics plus the
  /// endpoint counters, for scraping via `neutraj_client stats --prometheus`.
  std::string ToPrometheus() const;
};

/// Per-endpoint latency/error view over a MetricsRegistry. Record is
/// lock-free: each endpoint's histogram and error counter are resolved once
/// at construction and shared with the registry, so a stats snapshot sees
/// them under their registry names too.
class ServerStats {
 public:
  /// Metrics are registered in (and owned by) `registry`, which must outlive
  /// this object. nullptr uses the process-global registry.
  explicit ServerStats(obs::MetricsRegistry* registry = nullptr);
  ServerStats(const ServerStats&) = delete;
  ServerStats& operator=(const ServerStats&) = delete;

  void Record(Endpoint e, double micros, bool error);

  /// Frozen endpoint counters; the caller fills the corpus/batcher/metrics
  /// fields.
  StatsSnapshot Snapshot() const;

 private:
  struct PerEndpoint {
    obs::ConcurrentHistogram* hist = nullptr;  ///< Owned by the registry.
    obs::Counter* errors = nullptr;            ///< Owned by the registry.
  };

  Stopwatch uptime_;  ///< Started at construction = server start.
  std::array<PerEndpoint, static_cast<size_t>(Endpoint::kCount)> per_{};
};

}  // namespace neutraj::serve

#endif  // NEUTRAJ_SERVE_STATS_H_
