// The query service: request dispatch over a model + live corpus.
//
// QueryService is the socket-independent heart of src/serve/: it owns the
// trained model, the live EmbeddingDatabase, the MicroBatcher, and the
// ServerStats, and maps one request frame to one response frame. The
// Server (server.h) feeds it frames read from sockets; tests feed it
// frames directly — the protocol semantics are fully exercisable without
// ever opening a socket.
//
// Locking discipline: encoding runs in the batcher with no corpus lock
// held; EmbeddingDatabase takes its reader lock inside TopK and its writer
// lock inside Insert. Handle() itself holds no lock across an encode, so
// inserts never stall queries for the duration of an embedding.

#ifndef NEUTRAJ_SERVE_SERVICE_H_
#define NEUTRAJ_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <optional>

#include "common/framing.h"
#include "common/stopwatch.h"
#include "core/embedding_db.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "retrieval/backend.h"
#include "serve/micro_batcher.h"
#include "serve/protocol.h"
#include "serve/stats.h"
#include "store/durable_store.h"

namespace neutraj::serve {

/// Dispatches decoded request frames against a model + live corpus.
class QueryService {
 public:
  /// Both references must outlive the service. `db` may start empty and be
  /// populated purely through Insert requests.
  ///
  /// `store` (optional, must outlive the service, already Open()ed, and
  /// wrapping the same `db`) makes Insert durable: the WAL record is
  /// fsync'd before the reply is sent, and a store that has degraded to
  /// read-only turns Insert into a typed kDegraded error while every query
  /// endpoint keeps serving.
  QueryService(const NeuTrajModel& model, EmbeddingDatabase* db,
               const MicroBatcher::Options& batch_opts,
               store::DurableStore* store = nullptr);

  /// Maps one request frame to its response frame. Never throws: parse
  /// failures, unknown types, and handler exceptions all become kError
  /// replies. Thread-safe — called concurrently from connection handlers.
  ///
  /// When this request is sampled for tracing, `trace_out` (if non-null)
  /// receives the live trace so the transport can record the "reply" span
  /// around the socket write and then call tracer().Finish(). With a null
  /// `trace_out` (tests, socketless callers) the service finishes the trace
  /// itself — no reply span, everything else identical.
  WireFrame Handle(const WireFrame& request,
                   std::shared_ptr<obs::RequestTrace>* trace_out = nullptr);

  /// Convenience for frame-level failures discovered by the transport:
  /// builds the kError reply matching a FrameStatus.
  static WireFrame FrameErrorReply(FrameStatus status);

  /// A group of Encode requests dispatched to the micro-batcher whose
  /// replies have not been produced yet. Move-only.
  struct PendingEncodes {
    std::future<MicroBatcher::BatchResult> fut;
    Stopwatch sw;  ///< Started at dispatch; FinishEncodes records latency.
    size_t count = 0;
    /// Parallel to the group (nullptr = unsampled). Keeps the traces alive
    /// while batcher workers record into them; the transport moves these
    /// out before FinishEncodes to add reply spans and finish them.
    std::vector<std::shared_ptr<obs::RequestTrace>> traces;
  };

  /// Pipelining fast path, step 1: if `request` is a well-formed Encode
  /// request and the service is accepting work, appends its trajectory to
  /// *group and returns true. Returns false for every other frame (and
  /// for malformed/draining cases, where Handle() produces the precise
  /// error reply). `traces` (if non-null) gets one entry per collected
  /// item — the sampling decision for that request, nullptr when unsampled
  /// — so it stays index-aligned with *group.
  bool CollectEncode(
      const WireFrame& request, std::vector<Trajectory>* group,
      std::vector<std::shared_ptr<obs::RequestTrace>>* traces = nullptr);

  /// Step 2: dispatches a collected group to the batcher as one unit —
  /// one future for the whole burst, so a pipelined connection fills a
  /// batch by itself at per-group (not per-request) synchronization cost.
  /// Returns nullopt for an empty group. `traces` must be empty or
  /// index-aligned with `group` (CollectEncode's output).
  std::optional<PendingEncodes> BeginEncodes(
      std::vector<Trajectory> group,
      std::vector<std::shared_ptr<obs::RequestTrace>> traces = {});

  /// Step 3: waits for a dispatched group and builds one reply frame per
  /// item, in submission order (kError on per-item failure). Never
  /// throws; records Encode endpoint stats per item.
  std::vector<WireFrame> FinishEncodes(PendingEncodes pending);

  /// While draining, every request except Health and Stats is refused with
  /// kShuttingDown so in-flight connections wind down crisply.
  void SetDraining(bool draining) { draining_.store(draining); }
  bool draining() const { return draining_.load(); }

  /// Routes TopK through `backend` (must outlive the service; typically a
  /// retrieval::IvfBackend already Build()t over this service's database).
  /// Inserts keep landing in the database/store first and are then mirrored
  /// to the backend via NotifyInsert, so the backend stays a view of the
  /// durable corpus. The backend's metrics re-register into this service's
  /// registry. Pass nullptr (the default state) for the plain exact scan.
  /// Not thread-safe against in-flight requests — call before serving.
  void set_retrieval_backend(retrieval::RetrievalBackend* backend) {
    backend_ = backend;
    if (backend_ != nullptr) backend_->AttachMetrics(&registry_);
  }
  retrieval::RetrievalBackend* retrieval_backend() { return backend_; }

  /// Applies tracing knobs (sampling rate, ring size, slow-query log) to
  /// this service's tracer. Not thread-safe against in-flight requests —
  /// call before serving.
  void ConfigureTracing(const obs::ReqTraceOptions& opts) {
    tracer_.Configure(opts);
  }
  obs::RequestTracer& tracer() { return tracer_; }

  /// Endpoint counters plus corpus/batcher gauges and the flattened
  /// registry metrics, ready to serialize.
  StatsSnapshot Snapshot() const;

  const NeuTrajModel& model() const { return model_; }
  EmbeddingDatabase& db() { return *db_; }
  MicroBatcher& batcher() { return batcher_; }
  obs::MetricsRegistry& registry() { return registry_; }
  store::DurableStore* durable_store() { return store_; }

 private:
  WireFrame Dispatch(const WireFrame& request, Endpoint* endpoint,
                     std::shared_ptr<obs::RequestTrace>* trace);

  const NeuTrajModel& model_;
  EmbeddingDatabase* db_;
  store::DurableStore* store_;  ///< Nullable: no durability configured.
  /// Nullable: no ANN backend configured — TopK scans db_ directly.
  retrieval::RetrievalBackend* backend_ = nullptr;
  /// Per-service registry (declared before the members that register into
  /// it): two services in one process — routine in tests — never share
  /// counters, and a stats snapshot covers exactly this server's traffic.
  obs::MetricsRegistry registry_;
  /// Request tracing (sampling gate, trace ring, slow-query log). Declared
  /// after registry_ — its rollup metrics register there.
  obs::RequestTracer tracer_{&registry_};
  MicroBatcher batcher_;
  ServerStats stats_;
  std::atomic<bool> draining_{false};
};

}  // namespace neutraj::serve

#endif  // NEUTRAJ_SERVE_SERVICE_H_
