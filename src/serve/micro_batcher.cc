#include "serve/micro_batcher.h"

#include <algorithm>
#include <stdexcept>

#include "common/stopwatch.h"

namespace neutraj::serve {

MicroBatcher::MicroBatcher(const NeuTrajModel& model, const Options& opts)
    : model_(model),
      opts_(opts),
      pool_(std::max<size_t>(1, opts.threads)),
      workspaces_(std::max<size_t>(1, opts.threads)) {
  obs::MetricsRegistry& reg = opts_.registry != nullptr
                                  ? *opts_.registry
                                  : obs::MetricsRegistry::Global();
  batch_size_hist_ = &reg.GetHistogram("serve/batcher/batch_size");
  wait_us_hist_ = &reg.GetHistogram("serve/batcher/wait_us");
  requests_counter_ = &reg.GetCounter("serve/batcher/requests");
  batches_counter_ = &reg.GetCounter("serve/batcher/batches");
  if (model.config().update_memory_at_inference) {
    throw std::logic_error(
        "MicroBatcher: memory-updating inference cannot be batched across "
        "threads");
  }
  if (opts_.max_batch == 0) {
    throw std::invalid_argument("MicroBatcher: max_batch must be >= 1");
  }
  batcher_ = std::thread([this] { BatcherLoop(); });
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<MicroBatcher::BatchResult> MicroBatcher::SubmitBatch(
    std::vector<Trajectory> trajs, std::vector<obs::RequestTrace*> traces) {
  auto group = std::make_shared<Group>();
  group->trajs = std::move(trajs);
  const size_t n = group->trajs.size();
  group->traces = std::move(traces);
  group->traces.resize(n, nullptr);
  group->submit_us.resize(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (group->traces[i] != nullptr) {
      group->submit_us[i] = group->traces[i]->ElapsedMicros();
    }
  }
  group->result.embeddings.resize(n);
  group->result.errors.resize(n);
  group->result.bad_input.resize(n, 0);
  group->remaining.store(n);
  std::future<BatchResult> fut = group->promise.get_future();
  if (n == 0) {
    group->promise.set_value(std::move(group->result));
    return fut;
  }
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      throw std::runtime_error("MicroBatcher: submit after shutdown");
    }
    for (size_t i = 0; i < n; ++i) queue_.push_back(Item{group, i});
    stats_.requests += n;
  }
  requests_counter_->Add(n);
  work_ready_.NotifyOne();
  return fut;
}

nn::Vector MicroBatcher::Encode(const Trajectory& traj,
                                obs::RequestTrace* trace) {
  std::vector<Trajectory> one;
  one.push_back(traj);
  BatchResult r = SubmitBatch(std::move(one), {trace}).get();
  if (!r.errors[0].empty()) {
    if (r.bad_input[0] != 0) throw std::invalid_argument(r.errors[0]);
    throw std::runtime_error(r.errors[0]);
  }
  return std::move(r.embeddings[0]);
}

void MicroBatcher::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  MutexLock join_lock(join_mu_);
  if (batcher_.joinable()) batcher_.join();
}

MicroBatcher::Stats MicroBatcher::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void MicroBatcher::BatcherLoop() {
  std::vector<Item> batch;
  while (true) {
    batch.clear();
    double waited_us = 0.0;
    size_t take = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_ready_.Wait(mu_);
      if (queue_.empty() && shutdown_) return;

      // Straggler window: once work exists, give concurrent submitters a
      // short chance to join this batch. Bounded by max_batch so a firehose
      // never waits, and skipped entirely during shutdown (drain fast).
      if (opts_.max_wait_micros > 0 && !shutdown_ &&
          queue_.size() < opts_.max_batch) {
        const Stopwatch wait_sw;
        const auto deadline = DeadlineAfterMicros(opts_.max_wait_micros);
        while (queue_.size() < opts_.max_batch && !shutdown_) {
          if (!work_ready_.WaitUntil(mu_, deadline)) break;
        }
        waited_us = wait_sw.ElapsedMicros();
      }

      take = std::min(queue_.size(), opts_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, take);
    }
    batches_counter_->Increment();
    batch_size_hist_->Record(static_cast<double>(take));
    wait_us_hist_->Record(waited_us);
    RunBatch(&batch);
  }
}

void MicroBatcher::RunBatch(std::vector<Item>* batch) {
  const size_t n = batch->size();
  // Per-item execution with per-item error capture: one bad trajectory
  // (e.g. empty) fails only its own BatchResult slot, never the whole
  // group. Workers write disjoint indices; the group's promise fires when
  // the last item — possibly in a later batch — lands.
  auto run_item = [this](Item* item, nn::CellWorkspace* ws) {
    Group& g = *item->group;
    const size_t i = item->index;
    obs::RequestTrace* trace = g.traces[i];
    if (trace != nullptr) {
      // queue_wait = submit → the moment a worker picks the item up. The
      // span is recorded from this worker, so its tid names who dequeued.
      trace->Record("queue_wait", g.submit_us[i],
                    trace->ElapsedMicros() - g.submit_us[i]);
    }
    obs::StageSpan encode_span(trace, "encode");
    try {
      g.result.embeddings[i] = model_.Embed(g.trajs[i], ws);
    } catch (const std::invalid_argument& e) {
      g.result.errors[i] = e.what();
      g.result.bad_input[i] = 1;
    } catch (const std::exception& e) {
      g.result.errors[i] = e.what();
    }
    // The span must close BEFORE the promise can fire: once set_value runs,
    // the submitter may wake and hand the trace to RequestTracer::Finish,
    // and a late Record would race the finalize read.
    encode_span.Stop();
    if (g.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      g.promise.set_value(std::move(g.result));
    }
  };

  const size_t workers = std::min(workspaces_.size(), n);
  if (workers <= 1) {
    for (Item& item : *batch) run_item(&item, &workspaces_[0]);
    return;
  }
  // Contiguous chunks, one workspace per chunk; ThreadPool::Wait is a
  // barrier, so workspaces are never shared across batches either.
  const size_t chunk = (n + workers - 1) / workers;
  size_t widx = 0;
  for (size_t start = 0; start < n; start += chunk, ++widx) {
    const size_t end = std::min(start + chunk, n);
    nn::CellWorkspace* ws = &workspaces_[widx];
    Item* items = batch->data();
    pool_.Submit([run_item, items, start, end, ws] {
      for (size_t i = start; i < end; ++i) run_item(&items[i], ws);
    });
  }
  pool_.Wait();
}

}  // namespace neutraj::serve
