// Binary message protocol of the NeuTraj query service.
//
// Every request and response travels as the payload of one wire frame
// (common/framing.h); the frame's 16-bit type field carries the MsgType.
// Payloads are little-endian and fixed-layout: integers as uint8/32/64,
// doubles as IEEE-754 bit patterns in a uint64, strings and repeated
// groups length-prefixed with a uint32. Parsers are bounds-checked and
// return false on any truncation, trailing garbage, or implausible count —
// a malformed payload can never crash the server or allocate unbounded
// memory (element counts are validated against the bytes actually present
// before any allocation).
//
// Request → response pairs (server replies kError on any failure):
//   kEncodeRequest   → kEncodeResponse     embed one trajectory
//   kPairSimRequest  → kPairSimResponse    distance + similarity of a pair
//   kTopKRequest     → kTopKResponse       top-k ids over the live corpus
//   kInsertRequest   → kInsertResponse     append to the live corpus
//   kStatsRequest    → kStatsResponse      per-endpoint latency/QPS counters
//   kHealthRequest   → kHealthResponse     liveness + corpus shape
//   kTraceDumpRequest→ kTraceDumpResponse  recently finished request traces
//
// Request tracing: Encode/PairSim/TopK/Insert requests may carry an
// OPTIONAL trailing trace section (u64 trace id + u8 flags, bit 0 =
// sampled) following the same compat pattern as TopK's trailing nprobe —
// serialized only when the id is non-zero, so pre-tracing payloads are
// byte-identical and still parse. A present section with a zero id or
// unknown flag bits fails the parse (kBadRequest; the connection stays
// open).

#ifndef NEUTRAJ_SERVE_PROTOCOL_H_
#define NEUTRAJ_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/framing.h"
#include "geo/trajectory.h"
#include "nn/matrix.h"
#include "obs/reqtrace.h"
#include "serve/stats.h"

namespace neutraj::serve {

/// Wire-frame type values. Requests are odd, their responses even (request
/// + 1), kError is the universal failure reply.
enum class MsgType : uint16_t {
  kError = 0,
  kEncodeRequest = 1,
  kEncodeResponse = 2,
  kPairSimRequest = 3,
  kPairSimResponse = 4,
  kTopKRequest = 5,
  kTopKResponse = 6,
  kInsertRequest = 7,
  kInsertResponse = 8,
  kStatsRequest = 9,
  kStatsResponse = 10,
  kHealthRequest = 11,
  kHealthResponse = 12,
  kTraceDumpRequest = 13,
  kTraceDumpResponse = 14,
};

/// Error codes carried by kError replies.
enum class ErrorCode : uint32_t {
  kMalformedFrame = 1,   ///< Frame-level failure (bad magic/version/CRC).
  kOversizedFrame = 2,   ///< Declared frame payload above the server limit.
  kBadRequest = 3,       ///< Frame ok, payload failed to parse or validate.
  kUnknownType = 4,      ///< Frame type is not a known request.
  kInternal = 5,         ///< Handler threw; message carries e.what().
  kShuttingDown = 6,     ///< Server is draining and rejects new work.
  kDegraded = 7,         ///< Durable store lost its log device; the server
                         ///< is read-only and refuses Insert (queries over
                         ///< the already-durable corpus keep working).
};

const char* ErrorCodeName(ErrorCode c);

// -- Message structs ---------------------------------------------------------

struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct EncodeRequest {
  Trajectory traj;
  /// Optional client-supplied trace context (trailing wire section, present
  /// only when trace_id != 0). When absent the server decides sampling.
  obs::TraceContext trace = {};
};
struct EncodeResponse {
  nn::Vector embedding;
};

struct PairSimRequest {
  Trajectory a, b;
  obs::TraceContext trace = {};  ///< Optional trailing section; see EncodeRequest.
};
struct PairSimResponse {
  double distance = 0.0;    ///< ||E(a) - E(b)||.
  double similarity = 0.0;  ///< exp(-distance).
};

struct TopKRequest {
  Trajectory query;
  uint32_t k = 10;
  int64_t exclude = -1;  ///< Corpus id to omit, or -1.
  /// ANN probe breadth (cells scanned by an IVF backend; see
  /// src/retrieval/). 0 = server default; exact backends ignore it. Wire
  /// compatibility: serialized as an OPTIONAL trailing section only when
  /// non-zero (the same pattern as kStatsResponse's metrics section), so
  /// old clients' payloads still parse and old servers reject new payloads
  /// cleanly rather than misreading them.
  uint32_t nprobe = 0;
  /// Optional trace context, a second trailing section AFTER nprobe. The
  /// remaining-byte count disambiguates the four layouts (0 = neither,
  /// 4 = nprobe, 9 = trace, 13 = both); a non-default trace forces nprobe
  /// onto the wire even at its default so the layouts stay distinct.
  obs::TraceContext trace = {};
};
struct TopKResponse {
  std::vector<uint64_t> ids;
  std::vector<double> dists;
};

/// Hard cap on the result count of one kTopKResponse: the uint32 count
/// prefix plus 16 bytes per (id, dist) pair must fit a kWireMaxPayload
/// frame. The service clamps a request's k to this before searching, so no
/// well-formed request — however large its k or the corpus — can produce a
/// reply the frame encoder refuses.
inline constexpr uint32_t kMaxTopKResults = static_cast<uint32_t>(
    (kWireMaxPayload - sizeof(uint32_t)) / (sizeof(uint64_t) + sizeof(double)));

struct InsertRequest {
  Trajectory traj;
  obs::TraceContext trace = {};  ///< Optional trailing section; see EncodeRequest.
};
struct InsertResponse {
  uint64_t id = 0;           ///< Assigned corpus id (dense, insert order).
  uint64_t corpus_size = 0;  ///< Corpus size after the insert.
};

// Stats/Health requests have empty payloads and no struct.

struct StatsResponse {
  StatsSnapshot stats;
};

struct HealthResponse {
  bool ok = false;
  uint64_t corpus_size = 0;
  uint32_t dim = 0;
  std::string status;  ///< "serving" or "draining".
};

struct TraceDumpRequest {
  /// Max traces to return, newest kept. 0 = server default (a reply-size
  /// conscious cap); the server additionally clamps to what its ring holds.
  uint32_t max_traces = 0;
};

struct TraceDumpResponse {
  std::vector<obs::FinishedTrace> traces;  ///< Oldest first.
};

// -- Serialization -----------------------------------------------------------
// SerializeX renders the payload bytes (not the wire frame); ParseX decodes
// them, returning false on malformed input with *out unspecified.

std::string SerializeError(const ErrorReply& m);
bool ParseError(const std::string& in, ErrorReply* out);

std::string SerializeEncodeRequest(const EncodeRequest& m);
bool ParseEncodeRequest(const std::string& in, EncodeRequest* out);
std::string SerializeEncodeResponse(const EncodeResponse& m);
bool ParseEncodeResponse(const std::string& in, EncodeResponse* out);

std::string SerializePairSimRequest(const PairSimRequest& m);
bool ParsePairSimRequest(const std::string& in, PairSimRequest* out);
std::string SerializePairSimResponse(const PairSimResponse& m);
bool ParsePairSimResponse(const std::string& in, PairSimResponse* out);

std::string SerializeTopKRequest(const TopKRequest& m);
bool ParseTopKRequest(const std::string& in, TopKRequest* out);
std::string SerializeTopKResponse(const TopKResponse& m);
bool ParseTopKResponse(const std::string& in, TopKResponse* out);

std::string SerializeInsertRequest(const InsertRequest& m);
bool ParseInsertRequest(const std::string& in, InsertRequest* out);
std::string SerializeInsertResponse(const InsertResponse& m);
bool ParseInsertResponse(const std::string& in, InsertResponse* out);

std::string SerializeStatsResponse(const StatsResponse& m);
bool ParseStatsResponse(const std::string& in, StatsResponse* out);

std::string SerializeHealthResponse(const HealthResponse& m);
bool ParseHealthResponse(const std::string& in, HealthResponse* out);

std::string SerializeTraceDumpRequest(const TraceDumpRequest& m);
bool ParseTraceDumpRequest(const std::string& in, TraceDumpRequest* out);
std::string SerializeTraceDumpResponse(const TraceDumpResponse& m);
bool ParseTraceDumpResponse(const std::string& in, TraceDumpResponse* out);

}  // namespace neutraj::serve

#endif  // NEUTRAJ_SERVE_PROTOCOL_H_
