#include "serve/service.h"

#include <exception>
#include <future>
#include <stdexcept>
#include <utility>

#include "core/similarity.h"

namespace neutraj::serve {

namespace {

WireFrame ErrorFrame(ErrorCode code, const std::string& message) {
  WireFrame f;
  f.type = static_cast<uint16_t>(MsgType::kError);
  f.payload = SerializeError({code, message});
  return f;
}

WireFrame Reply(MsgType type, std::string payload) {
  WireFrame f;
  f.type = static_cast<uint16_t>(type);
  f.payload = std::move(payload);
  return f;
}

/// Shared request validation: the encoder rejects empty trajectories, but
/// the service refuses them up front with a precise message instead of an
/// internal error.
void CheckTrajectory(const Trajectory& t, const char* what) {
  if (t.empty()) {
    throw std::invalid_argument(std::string(what) + " is empty");
  }
}

/// The batcher must register into the service's own registry, whatever the
/// caller put (or left unset) in the options.
MicroBatcher::Options WithRegistry(MicroBatcher::Options opts,
                                   obs::MetricsRegistry* registry) {
  opts.registry = registry;
  return opts;
}

}  // namespace

QueryService::QueryService(const NeuTrajModel& model, EmbeddingDatabase* db,
                           const MicroBatcher::Options& batch_opts,
                           store::DurableStore* store)
    : model_(model),
      db_(db),
      store_(store),
      batcher_(model, WithRegistry(batch_opts, &registry_)),
      stats_(&registry_) {
  if (db == nullptr) {
    throw std::invalid_argument("QueryService: null EmbeddingDatabase");
  }
  // Route the live corpus's build/insert/TopK timings into this service's
  // registry so kStatsRequest ships them alongside the endpoint latencies.
  db_->AttachMetrics(&registry_);
  // Likewise the WAL/snapshot/recovery counters when durability is on.
  if (store_ != nullptr) store_->AttachMetrics(&registry_);
}

WireFrame QueryService::FrameErrorReply(FrameStatus status) {
  const ErrorCode code = status == FrameStatus::kOversized
                             ? ErrorCode::kOversizedFrame
                             : ErrorCode::kMalformedFrame;
  return ErrorFrame(code, std::string("frame error: ") + FrameStatusName(status));
}

bool QueryService::CollectEncode(
    const WireFrame& request, std::vector<Trajectory>* group,
    std::vector<std::shared_ptr<obs::RequestTrace>>* traces) {
  if (static_cast<MsgType>(request.type) != MsgType::kEncodeRequest ||
      draining_.load()) {
    return false;
  }
  EncodeRequest req;
  if (!ParseEncodeRequest(request.payload, &req) || req.traj.empty()) {
    return false;  // Handle() will build the precise error reply.
  }
  group->push_back(std::move(req.traj));
  if (traces != nullptr) {
    traces->push_back(tracer_.Begin(req.trace, "encode"));
  }
  return true;
}

std::optional<QueryService::PendingEncodes> QueryService::BeginEncodes(
    std::vector<Trajectory> group,
    std::vector<std::shared_ptr<obs::RequestTrace>> traces) {
  if (group.empty()) return std::nullopt;
  PendingEncodes pending;
  pending.count = group.size();
  traces.resize(pending.count);
  std::vector<obs::RequestTrace*> raw;
  raw.reserve(pending.count);
  for (const auto& t : traces) raw.push_back(t.get());
  pending.traces = std::move(traces);
  pending.fut = batcher_.SubmitBatch(std::move(group), std::move(raw));
  return pending;
}

std::vector<WireFrame> QueryService::FinishEncodes(PendingEncodes pending) {
  std::vector<WireFrame> replies;
  replies.reserve(pending.count);
  MicroBatcher::BatchResult result;
  std::string group_error;
  try {
    result = pending.fut.get();
  } catch (const std::exception& e) {
    group_error = e.what();  // Unreachable in practice; fail every slot.
  }
  const double micros = pending.sw.ElapsedMillis() * 1e3;
  for (size_t i = 0; i < pending.count; ++i) {
    if (!group_error.empty()) {
      replies.push_back(ErrorFrame(ErrorCode::kInternal, group_error));
    } else if (!result.errors[i].empty()) {
      replies.push_back(ErrorFrame(result.bad_input[i] != 0
                                       ? ErrorCode::kBadRequest
                                       : ErrorCode::kInternal,
                                   result.errors[i]));
    } else {
      EncodeResponse resp;
      resp.embedding = std::move(result.embeddings[i]);
      replies.push_back(
          Reply(MsgType::kEncodeResponse, SerializeEncodeResponse(resp)));
    }
    stats_.Record(Endpoint::kEncode, micros,
                  replies.back().type == static_cast<uint16_t>(MsgType::kError));
  }
  return replies;
}

StatsSnapshot QueryService::Snapshot() const {
  StatsSnapshot snap = stats_.Snapshot();
  snap.corpus_size = db_->size();
  snap.dim = static_cast<uint32_t>(db_->dim());
  const MicroBatcher::Stats bs = batcher_.stats();
  snap.batched_requests = bs.requests;
  snap.batches = bs.batches;
  snap.mean_batch_size = bs.mean_batch_size();
  snap.metrics = registry_.Snapshot().Flatten();
  return snap;
}

WireFrame QueryService::Handle(const WireFrame& request,
                               std::shared_ptr<obs::RequestTrace>* trace_out) {
  Stopwatch sw;
  Endpoint endpoint = Endpoint::kCount;
  std::shared_ptr<obs::RequestTrace> trace;
  WireFrame reply;
  try {
    reply = Dispatch(request, &endpoint, &trace);
  } catch (const std::invalid_argument& e) {
    reply = ErrorFrame(ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    reply = ErrorFrame(ErrorCode::kInternal, e.what());
  }
  if (endpoint != Endpoint::kCount) {
    const bool is_error =
        reply.type == static_cast<uint16_t>(MsgType::kError);
    stats_.Record(endpoint, sw.ElapsedMillis() * 1e3, is_error);
  }
  if (trace_out != nullptr) {
    *trace_out = std::move(trace);  // Transport adds the reply span.
  } else {
    tracer_.Finish(trace);  // Socketless caller: finalize without one.
  }
  return reply;
}

WireFrame QueryService::Dispatch(const WireFrame& request, Endpoint* endpoint,
                                 std::shared_ptr<obs::RequestTrace>* trace) {
  const auto type = static_cast<MsgType>(request.type);
  switch (type) {
    case MsgType::kHealthRequest: {
      *endpoint = Endpoint::kHealth;
      HealthResponse resp;
      resp.ok = true;
      resp.corpus_size = db_->size();
      resp.dim = static_cast<uint32_t>(db_->dim());
      resp.status = draining_.load() ? "draining"
                    : store_ != nullptr && store_->read_only()
                        ? "degraded"
                        : "serving";
      return Reply(MsgType::kHealthResponse, SerializeHealthResponse(resp));
    }

    case MsgType::kStatsRequest: {
      *endpoint = Endpoint::kStats;
      StatsResponse resp;
      resp.stats = Snapshot();
      return Reply(MsgType::kStatsResponse, SerializeStatsResponse(resp));
    }

    case MsgType::kEncodeRequest: {
      *endpoint = Endpoint::kEncode;
      if (draining_.load()) {
        return ErrorFrame(ErrorCode::kShuttingDown, "server is draining");
      }
      EncodeRequest req;
      if (!ParseEncodeRequest(request.payload, &req)) {
        return ErrorFrame(ErrorCode::kBadRequest, "malformed encode request");
      }
      *trace = tracer_.Begin(req.trace, "encode");
      CheckTrajectory(req.traj, "trajectory");
      EncodeResponse resp;
      resp.embedding = batcher_.Encode(req.traj, trace->get());
      return Reply(MsgType::kEncodeResponse, SerializeEncodeResponse(resp));
    }

    case MsgType::kPairSimRequest: {
      *endpoint = Endpoint::kPairSim;
      if (draining_.load()) {
        return ErrorFrame(ErrorCode::kShuttingDown, "server is draining");
      }
      PairSimRequest req;
      if (!ParsePairSimRequest(request.payload, &req)) {
        return ErrorFrame(ErrorCode::kBadRequest, "malformed pairsim request");
      }
      *trace = tracer_.Begin(req.trace, "pairsim");
      CheckTrajectory(req.a, "trajectory a");
      CheckTrajectory(req.b, "trajectory b");
      // One two-item group: both trajectories share a batch (and one
      // future) instead of paying two straggler windows. Both items record
      // into the one request trace (two encode spans, possibly two threads).
      std::vector<Trajectory> pair;
      pair.reserve(2);
      pair.push_back(std::move(req.a));
      pair.push_back(std::move(req.b));
      MicroBatcher::BatchResult r =
          batcher_
              .SubmitBatch(std::move(pair), {trace->get(), trace->get()})
              .get();
      for (size_t i = 0; i < 2; ++i) {
        if (r.errors[i].empty()) continue;
        if (r.bad_input[i] != 0) throw std::invalid_argument(r.errors[i]);
        throw std::runtime_error(r.errors[i]);
      }
      PairSimResponse resp;
      resp.distance = EmbeddingDistance(r.embeddings[0], r.embeddings[1]);
      resp.similarity = EmbeddingSimilarity(r.embeddings[0], r.embeddings[1]);
      return Reply(MsgType::kPairSimResponse, SerializePairSimResponse(resp));
    }

    case MsgType::kTopKRequest: {
      *endpoint = Endpoint::kTopK;
      if (draining_.load()) {
        return ErrorFrame(ErrorCode::kShuttingDown, "server is draining");
      }
      TopKRequest req;
      if (!ParseTopKRequest(request.payload, &req)) {
        return ErrorFrame(ErrorCode::kBadRequest, "malformed topk request");
      }
      *trace = tracer_.Begin(req.trace, "topk");
      obs::RequestTrace* t = trace->get();
      CheckTrajectory(req.query, "query trajectory");
      if (req.k == 0) {
        return ErrorFrame(ErrorCode::kBadRequest, "k must be >= 1");
      }
      if (req.k > kMaxTopKResults) req.k = kMaxTopKResults;
      const nn::Vector query = batcher_.Encode(req.query, t);
      // The backend (when configured) owns the scan strategy; its exact
      // re-rank keeps scores bit-identical to the direct db_ path.
      SearchResult r;
      if (backend_ != nullptr) {
        r = backend_->TopK(query, req.k, req.exclude, req.nprobe, t);
      } else {
        obs::StageSpan scan_span(t, "scan");
        r = db_->TopK(query, req.k, req.exclude);
      }
      TopKResponse resp;
      resp.ids.assign(r.ids.begin(), r.ids.end());
      resp.dists = r.dists;
      return Reply(MsgType::kTopKResponse, SerializeTopKResponse(resp));
    }

    case MsgType::kInsertRequest: {
      *endpoint = Endpoint::kInsert;
      if (draining_.load()) {
        return ErrorFrame(ErrorCode::kShuttingDown, "server is draining");
      }
      InsertRequest req;
      if (!ParseInsertRequest(request.payload, &req)) {
        return ErrorFrame(ErrorCode::kBadRequest, "malformed insert request");
      }
      *trace = tracer_.Begin(req.trace, "insert");
      obs::RequestTrace* t = trace->get();
      CheckTrajectory(req.traj, "trajectory");
      // A degraded store refuses before the (expensive) encode, not after.
      if (store_ != nullptr && store_->read_only()) {
        return ErrorFrame(ErrorCode::kDegraded,
                          "store is read-only: " + store_->degraded_reason());
      }
      const nn::Vector embedding = batcher_.Encode(req.traj, t);
      InsertResponse resp;
      if (store_ != nullptr) {
        try {
          // Durable ack: the WAL record is on stable storage before this
          // returns, so the reply below is a promise recovery can keep.
          resp.id = store_->Insert(embedding, t);
        } catch (const store::StoreError& e) {
          return ErrorFrame(ErrorCode::kDegraded, e.what());
        }
      } else {
        resp.id = db_->Insert(embedding);
      }
      // Mirror into the ANN backend only after the row is in the primary
      // (and durable) corpus: a query racing this insert may briefly miss
      // the row, but can never surface an id the database cannot re-rank.
      if (backend_ != nullptr) backend_->NotifyInsert(resp.id, embedding);
      // id+1, not db_->size(): a concurrent insert may land between the two
      // calls, and the reply should be a consistent snapshot of *this* op.
      resp.corpus_size = resp.id + 1;
      return Reply(MsgType::kInsertResponse, SerializeInsertResponse(resp));
    }

    case MsgType::kTraceDumpRequest: {
      *endpoint = Endpoint::kTraceDump;
      // Read-only diagnostics, allowed while draining (like Stats/Health):
      // a drain is exactly when the last traces are most interesting.
      TraceDumpRequest req;
      if (!ParseTraceDumpRequest(request.payload, &req)) {
        return ErrorFrame(ErrorCode::kBadRequest,
                          "malformed tracedump request");
      }
      // Cap the reply: at kMaxSpans spans of ~40 bytes a trace serializes
      // to ~2 KB, so 512 traces stay far below kWireMaxPayload.
      constexpr uint32_t kDefaultDump = 32;
      constexpr uint32_t kMaxDump = 512;
      const uint32_t want = req.max_traces == 0 ? kDefaultDump : req.max_traces;
      TraceDumpResponse resp;
      resp.traces = tracer_.Dump(std::min(want, kMaxDump));
      return Reply(MsgType::kTraceDumpResponse,
                   SerializeTraceDumpResponse(resp));
    }

    case MsgType::kError:
    case MsgType::kEncodeResponse:
    case MsgType::kPairSimResponse:
    case MsgType::kTopKResponse:
    case MsgType::kInsertResponse:
    case MsgType::kStatsResponse:
    case MsgType::kHealthResponse:
    case MsgType::kTraceDumpResponse:
      break;
  }
  return ErrorFrame(ErrorCode::kUnknownType,
                    "unknown request type " + std::to_string(request.type));
}

}  // namespace neutraj::serve
