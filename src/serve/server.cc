#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace neutraj::serve {

namespace {

/// Writes the whole buffer, retrying on EINTR and short writes.
/// MSG_NOSIGNAL: a peer that hung up yields an error, not SIGPIPE.
bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Encodes one reply frame. A reply whose payload exceeds the wire limit
/// (a handler bug — request-side caps keep every legitimate reply under
/// it) degrades to a kInternal error frame and flags the connection for
/// disconnect; letting std::length_error escape here would unwind a
/// detached handler thread and terminate the whole process.
std::string EncodeReplyFrame(const WireFrame& reply, bool* oversize) {
  try {
    return EncodeWireFrame(reply.type, reply.payload);
  } catch (const std::length_error&) {
    *oversize = true;
    const ErrorReply err{ErrorCode::kInternal,
                         "reply exceeds the wire frame payload limit"};
    return EncodeWireFrame(static_cast<uint16_t>(MsgType::kError),
                           SerializeError(err));
  }
}

/// The one server the process-wide stop signals are routed to.
std::atomic<Server*> g_signal_server{nullptr};

void StopSignalHandler(int /*signum*/) {
  Server* s = g_signal_server.load();
  if (s != nullptr) s->RequestStop();  // One self-pipe write; signal-safe.
}

}  // namespace

Server::Server(QueryService* service, const ServerOptions& opts)
    : service_(service), opts_(opts) {
  if (service == nullptr) {
    throw std::invalid_argument("Server: null QueryService");
  }
  // Replies are encoded under the protocol-wide kWireMaxPayload, so an
  // inbound cap above it could only admit frames whose replies the peer
  // cannot be guaranteed to accept; clamp rather than reject.
  if (opts_.max_frame_payload > kWireMaxPayload) {
    opts_.max_frame_payload = kWireMaxPayload;
  }
  // Forward tracing knobs only when the caller set any: a default-options
  // server leaves the service's tracer alone (tests may have configured it
  // directly), and client-forced traces work without any configuration.
  if (opts_.trace.sample_every != 0 || !opts_.trace.slow_log_path.empty()) {
    service_->ConfigureTracing(opts_.trace);
  }
}

Server::~Server() {
  if (running_.load() || accept_thread_.joinable()) Stop();
  for (int fd : {stop_pipe_[0], stop_pipe_[1], listen_fd_}) {
    if (fd >= 0) ::close(fd);
  }
}

void Server::Start() {
  if (accept_thread_.joinable()) {
    throw std::logic_error("Server::Start: already started");
  }
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error(std::string("Server: pipe failed: ") +
                             ErrnoMessage(errno));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("Server: socket failed: ") +
                             ErrnoMessage(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("Server: bad bind address '" + opts_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("Server: cannot bind " + opts_.host + ":" +
                             std::to_string(opts_.port) + ": " +
                             ErrnoMessage(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    throw std::runtime_error(std::string("Server: listen failed: ") +
                             ErrnoMessage(errno));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw std::runtime_error(std::string("Server: getsockname failed: ") +
                             ErrnoMessage(errno));
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::RequestStop() {
  stop_requested_.store(true);
  if (stop_pipe_[1] >= 0) {
    // A single byte wakes the accept loop's poll; result deliberately
    // ignored — the pipe being full already means a wake-up is pending.
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], "x", 1);
  }
}

void Server::Wait() {
  MutexLock lock(wait_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited and no new handlers can be spawned.
  // Handlers run detached and wake from blocked reads via the SHUT_RD
  // issued during the accept loop teardown (or their own late-registration
  // check); each counts itself out of the latch after writing its
  // in-flight response.
  {
    MutexLock conn_lock(conn_mu_);
    while (live_handlers_ != 0) conn_cv_.Wait(conn_mu_);
  }
  running_.store(false);
}

void Server::Stop() {
  RequestStop();
  Wait();
}

void Server::AcceptLoop() {
  while (!stop_requested_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || stop_requested_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    ++accepted_;
    {
      MutexLock lock(conn_mu_);
      if (live_handlers_ >= opts_.max_connections) {
        // Over the connection cap: close immediately — the client sees EOF
        // and can retry — rather than spawn unbounded handler threads.
        ::close(fd);
        continue;
      }
      ++live_handlers_;
    }
    try {
      std::thread([this, fd] { ConnectionLoop(fd); }).detach();
    } catch (const std::system_error&) {
      // Thread creation failed (resource exhaustion): shed this connection
      // and keep serving the ones already up.
      ::close(fd);
      MutexLock lock(conn_mu_);
      --live_handlers_;
    }
  }

  // Drain: stop accepting, refuse new work, wake blocked readers. The flag
  // store is authoritative even when the loop broke on a poll/accept error,
  // and it is what a handler still between spawn and fd registration checks
  // to shut itself down after missing this SHUT_RD pass.
  stop_requested_.store(true);
  ::close(listen_fd_);
  listen_fd_ = -1;
  service_->SetDraining(true);
  MutexLock lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
}

void Server::ConnectionLoop(int fd) {
  if (opts_.idle_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = opts_.idle_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(opts_.idle_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  {
    MutexLock lock(conn_mu_);
    conn_fds_.insert(fd);
    // Registration can lose the race with the drain's SHUT_RD pass (spawn
    // happens-before the pass, insertion after). The pass could not see
    // this fd, so wake the reads below ourselves or the drain waits on a
    // recv() nothing will interrupt.
    if (stop_requested_.load()) ::shutdown(fd, SHUT_RD);
  }

  std::string buf;
  size_t offset = 0;
  char chunk[64 * 1024];
  bool open = true;
  while (open) {
    // Drain every complete frame already buffered before reading more.
    // Encode requests in the burst are collected and dispatched to the
    // micro-batcher as ONE group before any frame is answered, so a
    // pipelined client fills a batch from a single connection; replies
    // keep request order and go out as one write.
    struct Slot {
      bool is_encode = false;
      size_t encode_index = 0;  ///< Into the group, when is_encode.
      WireFrame request;        ///< Deferred to Handle(), when !is_encode.
      /// Live trace of a sampled request; the reply span and Finish happen
      /// here, after the socket write.
      std::shared_ptr<obs::RequestTrace> trace;
      double reply_start_us = 0.0;
    };
    std::vector<Slot> burst;
    std::vector<Trajectory> group;
    std::vector<std::shared_ptr<obs::RequestTrace>> group_traces;
    FrameStatus stream_status = FrameStatus::kIncomplete;
    while (true) {
      WireFrame request;
      stream_status =
          DecodeWireFrame(buf, &offset, &request, opts_.max_frame_payload);
      if (stream_status != FrameStatus::kOk) break;
      Slot slot;
      if (service_->CollectEncode(request, &group, &group_traces)) {
        slot.is_encode = true;
        slot.encode_index = group.size() - 1;
      } else {
        slot.request = std::move(request);
      }
      burst.push_back(std::move(slot));
    }
    // Dispatch the encode group first: other handlers in the burst (TopK,
    // Insert, PairSim) block on their own embeddings and would otherwise
    // delay the group past the straggler window.
    auto pending =
        service_->BeginEncodes(std::move(group), std::move(group_traces));
    std::string out;
    std::vector<WireFrame> encode_replies;
    std::vector<std::shared_ptr<obs::RequestTrace>> encode_traces;
    if (pending.has_value()) {
      // Traces outlive FinishEncodes (which consumes the PendingEncodes):
      // the batcher has already recorded into them by the time the future
      // resolves, and the reply span is still to come.
      encode_traces = std::move(pending->traces);
      encode_replies = service_->FinishEncodes(std::move(*pending));
    }
    for (Slot& slot : burst) {
      if (slot.is_encode) {
        slot.trace = std::move(encode_traces[slot.encode_index]);
      }
    }
    bool oversize = false;
    for (Slot& slot : burst) {
      const WireFrame reply = slot.is_encode
                                  ? std::move(encode_replies[slot.encode_index])
                                  : service_->Handle(slot.request, &slot.trace);
      out += EncodeReplyFrame(reply, &oversize);
      // Dropping the rest of the burst is fine: the connection is closed
      // below, so the peer sees the error frame and then EOF.
      if (oversize) break;
    }
    // Hard framing error: typed error reply, then drop the connection — a
    // stream that failed magic/version/CRC cannot be resynchronized.
    const bool hard_error = stream_status != FrameStatus::kIncomplete;
    if (hard_error && !oversize) {
      const WireFrame reply = QueryService::FrameErrorReply(stream_status);
      out += EncodeReplyFrame(reply, &oversize);
    }
    // Reply spans bracket the burst's single socket write. Start marks are
    // per trace (each trace's clock began at its own Begin).
    for (Slot& slot : burst) {
      if (slot.trace != nullptr) {
        slot.reply_start_us = slot.trace->ElapsedMicros();
      }
    }
    if (!out.empty() && !SendAll(fd, out)) open = false;
    for (Slot& slot : burst) {
      if (slot.trace == nullptr) continue;
      slot.trace->Record("reply", slot.reply_start_us,
                         slot.trace->ElapsedMicros() - slot.reply_start_us);
      service_->tracer().Finish(slot.trace);
    }
    if (hard_error || oversize || !open) break;
    if (offset > 0) {
      buf.erase(0, offset);
      offset = 0;
    }

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN/EWOULDBLOCK here is the SO_RCVTIMEO idle timeout firing:
    // the peer went silent between requests, so drop the connection and
    // free its handler slot (falls through the n < 0 break).
    if (n <= 0) break;  // EOF (peer close or drain SHUT_RD) or error.
    buf.append(chunk, static_cast<size_t>(n));
  }

  {
    MutexLock lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
  // Last touch of *this. Notify under the lock: Wait() may return — and
  // the Server be destroyed — the moment the latch hits zero, so the
  // notify must land before any waiter can observe the new count.
  MutexLock lock(conn_mu_);
  --live_handlers_;
  conn_cv_.NotifyAll();
}

void InstallStopSignalHandlers(Server* server) {
  g_signal_server.store(server);
  void (*handler)(int) = server != nullptr ? &StopSignalHandler : SIG_DFL;
  std::signal(SIGTERM, handler);
  std::signal(SIGINT, handler);
}

}  // namespace neutraj::serve
