#include "serve/protocol.h"

#include <bit>

namespace neutraj::serve {

namespace {

// -- Little-endian payload writer/reader ------------------------------------
// The reader is fully bounds-checked and sticky-failing: after the first
// short read every further Get returns false, so parse functions can chain
// reads and test ok() once. Element counts are validated against the bytes
// actually remaining before any container is sized, so a hostile count
// cannot trigger a huge allocation.

class PayloadWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int s = 0; s < 32; s += 8) buf_.push_back(static_cast<char>((v >> s) & 0xff));
  }
  void U64(uint64_t v) {
    for (int s = 0; s < 64; s += 8) buf_.push_back(static_cast<char>((v >> s) & 0xff));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_ += s;
  }
  void Traj(const Trajectory& t) {
    U32(static_cast<uint32_t>(t.size()));
    for (const Point& p : t) {
      F64(p.x);
      F64(p.y);
    }
  }
  void Vec(const nn::Vector& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (double x : v) F64(x);
  }

  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class PayloadReader {
 public:
  explicit PayloadReader(const std::string& in) : in_(in) {}

  bool U8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(in_[pos_++]);
    return true;
  }
  bool U32(uint32_t* v) {
    if (!Need(4)) return false;
    uint32_t out = 0;
    for (int s = 0; s < 32; s += 8) {
      out |= static_cast<uint32_t>(static_cast<unsigned char>(in_[pos_++])) << s;
    }
    *v = out;
    return true;
  }
  bool U64(uint64_t* v) {
    if (!Need(8)) return false;
    uint64_t out = 0;
    for (int s = 0; s < 64; s += 8) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(in_[pos_++])) << s;
    }
    *v = out;
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u = 0;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool F64(double* v) {
    uint64_t u = 0;
    if (!U64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || !Need(n)) return false;
    s->assign(in_, pos_, n);
    pos_ += n;
    return true;
  }
  bool Traj(Trajectory* t) {
    uint32_t n = 0;
    if (!U32(&n) || !Need(static_cast<size_t>(n) * 16)) return false;
    std::vector<Point> pts(n);
    for (Point& p : pts) {
      if (!F64(&p.x) || !F64(&p.y)) return false;
    }
    *t = Trajectory(std::move(pts));
    return true;
  }
  bool Vec(nn::Vector* v) {
    uint32_t n = 0;
    if (!U32(&n) || !Need(static_cast<size_t>(n) * 8)) return false;
    v->resize(n);
    for (double& x : *v) {
      if (!F64(&x)) return false;
    }
    return true;
  }

  /// True iff every read succeeded and the payload had no trailing bytes.
  bool Done() const { return ok_ && pos_ == in_.size(); }

  /// Bytes not yet consumed; 0 once a read has failed (sticky-fail). Lets
  /// parsers with MULTIPLE optional trailing sections (TopK: nprobe then
  /// trace) pick the layout by length before committing to reads.
  size_t Remaining() const { return ok_ ? in_.size() - pos_ : 0; }

 private:
  bool Need(size_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// -- Optional trailing trace section ----------------------------------------
// 9 bytes: u64 trace id + u8 flags (bit 0 = sampled). Written only when the
// id is non-zero so untraced payloads stay byte-identical to the pre-tracing
// format; on the read side the section must be the LAST thing in the
// payload, its id must be non-zero (a zero id with the section present is
// an encoder bug, not "no trace"), and unknown flag bits are rejected so a
// future flag cannot be silently dropped by an old server.

void WriteTrace(PayloadWriter& w, const obs::TraceContext& t) {
  w.U64(t.trace_id);
  w.U8(t.sampled ? 1 : 0);
}

bool ParseTrailingTrace(PayloadReader& r, obs::TraceContext* out) {
  uint64_t id = 0;
  uint8_t flags = 0;
  if (!r.U64(&id) || !r.U8(&flags) || !r.Done()) return false;
  if (id == 0 || (flags & ~static_cast<uint8_t>(1)) != 0) return false;
  out->trace_id = id;
  out->sampled = (flags & 1) != 0;
  return true;
}

}  // namespace

const char* ErrorCodeName(ErrorCode c) {
  switch (c) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kOversizedFrame: return "oversized-frame";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnknownType: return "unknown-type";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kDegraded: return "degraded";
  }
  return "unknown";
}

std::string SerializeError(const ErrorReply& m) {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(m.code));
  w.Str(m.message);
  return w.Take();
}

bool ParseError(const std::string& in, ErrorReply* out) {
  PayloadReader r(in);
  uint32_t code = 0;
  if (!r.U32(&code) || !r.Str(&out->message) || !r.Done()) return false;
  out->code = static_cast<ErrorCode>(code);
  return true;
}

std::string SerializeEncodeRequest(const EncodeRequest& m) {
  PayloadWriter w;
  w.Traj(m.traj);
  if (m.trace.valid()) WriteTrace(w, m.trace);
  return w.Take();
}

bool ParseEncodeRequest(const std::string& in, EncodeRequest* out) {
  PayloadReader r(in);
  if (!r.Traj(&out->traj)) return false;
  out->trace = obs::TraceContext{};
  if (r.Done()) return true;  // Pre-tracing payload: valid, no context.
  return ParseTrailingTrace(r, &out->trace);
}

std::string SerializeEncodeResponse(const EncodeResponse& m) {
  PayloadWriter w;
  w.Vec(m.embedding);
  return w.Take();
}

bool ParseEncodeResponse(const std::string& in, EncodeResponse* out) {
  PayloadReader r(in);
  return r.Vec(&out->embedding) && r.Done();
}

std::string SerializePairSimRequest(const PairSimRequest& m) {
  PayloadWriter w;
  w.Traj(m.a);
  w.Traj(m.b);
  if (m.trace.valid()) WriteTrace(w, m.trace);
  return w.Take();
}

bool ParsePairSimRequest(const std::string& in, PairSimRequest* out) {
  PayloadReader r(in);
  if (!r.Traj(&out->a) || !r.Traj(&out->b)) return false;
  out->trace = obs::TraceContext{};
  if (r.Done()) return true;  // Pre-tracing payload: valid, no context.
  return ParseTrailingTrace(r, &out->trace);
}

std::string SerializePairSimResponse(const PairSimResponse& m) {
  PayloadWriter w;
  w.F64(m.distance);
  w.F64(m.similarity);
  return w.Take();
}

bool ParsePairSimResponse(const std::string& in, PairSimResponse* out) {
  PayloadReader r(in);
  return r.F64(&out->distance) && r.F64(&out->similarity) && r.Done();
}

std::string SerializeTopKRequest(const TopKRequest& m) {
  PayloadWriter w;
  w.Traj(m.query);
  w.U32(m.k);
  w.I64(m.exclude);
  // Optional trailing sections: nprobe (4 bytes), then trace (9 bytes).
  // Each is omitted at its default so default-knob payloads stay
  // byte-identical to older formats — but a present trace forces nprobe
  // onto the wire even when 0, keeping the four trailing lengths
  // (0 / 4 / 9 / 13) unambiguous.
  if (m.nprobe != 0 || m.trace.valid()) w.U32(m.nprobe);
  if (m.trace.valid()) WriteTrace(w, m.trace);
  return w.Take();
}

bool ParseTopKRequest(const std::string& in, TopKRequest* out) {
  PayloadReader r(in);
  if (!r.Traj(&out->query) || !r.U32(&out->k) || !r.I64(&out->exclude)) {
    return false;
  }
  out->nprobe = 0;
  out->trace = obs::TraceContext{};
  if (r.Done()) return true;  // Pre-nprobe payload: valid, all defaults.
  const size_t rem = r.Remaining();
  if (rem == 4 || rem == 13) {
    if (!r.U32(&out->nprobe)) return false;
    if (r.Done()) return true;  // nprobe only, no trace.
  }
  return ParseTrailingTrace(r, &out->trace);
}

std::string SerializeTopKResponse(const TopKResponse& m) {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(m.ids.size()));
  for (size_t i = 0; i < m.ids.size(); ++i) {
    w.U64(m.ids[i]);
    w.F64(m.dists[i]);
  }
  return w.Take();
}

bool ParseTopKResponse(const std::string& in, TopKResponse* out) {
  PayloadReader r(in);
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  out->ids.clear();
  out->dists.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    double d = 0.0;
    if (!r.U64(&id) || !r.F64(&d)) return false;
    out->ids.push_back(id);
    out->dists.push_back(d);
  }
  return r.Done();
}

std::string SerializeInsertRequest(const InsertRequest& m) {
  PayloadWriter w;
  w.Traj(m.traj);
  if (m.trace.valid()) WriteTrace(w, m.trace);
  return w.Take();
}

bool ParseInsertRequest(const std::string& in, InsertRequest* out) {
  PayloadReader r(in);
  if (!r.Traj(&out->traj)) return false;
  out->trace = obs::TraceContext{};
  if (r.Done()) return true;  // Pre-tracing payload: valid, no context.
  return ParseTrailingTrace(r, &out->trace);
}

std::string SerializeInsertResponse(const InsertResponse& m) {
  PayloadWriter w;
  w.U64(m.id);
  w.U64(m.corpus_size);
  return w.Take();
}

bool ParseInsertResponse(const std::string& in, InsertResponse* out) {
  PayloadReader r(in);
  return r.U64(&out->id) && r.U64(&out->corpus_size) && r.Done();
}

std::string SerializeStatsResponse(const StatsResponse& m) {
  PayloadWriter w;
  const StatsSnapshot& s = m.stats;
  w.F64(s.uptime_seconds);
  w.U64(s.corpus_size);
  w.U32(s.dim);
  w.U64(s.batched_requests);
  w.U64(s.batches);
  w.F64(s.mean_batch_size);
  w.U32(static_cast<uint32_t>(s.endpoints.size()));
  for (const EndpointSnapshot& e : s.endpoints) {
    w.Str(e.name);
    w.U64(e.requests);
    w.U64(e.errors);
    w.F64(e.qps);
    w.F64(e.mean_micros);
    w.F64(e.p50_micros);
    w.F64(e.p90_micros);
    w.F64(e.p99_micros);
    w.F64(e.max_micros);
  }
  // Optional trailing registry-metrics section (added after the original
  // format froze). Old parsers required Done() right after the endpoints,
  // so new servers talking to old clients would fail — but the compat
  // direction that matters is new CLIENT / old SERVER, and there the old
  // payload simply ends early and the parser below accepts it.
  w.U32(static_cast<uint32_t>(s.metrics.size()));
  for (const auto& [name, value] : s.metrics) {
    w.Str(name);
    w.F64(value);
  }
  return w.Take();
}

bool ParseStatsResponse(const std::string& in, StatsResponse* out) {
  PayloadReader r(in);
  StatsSnapshot& s = out->stats;
  uint32_t n = 0;
  if (!r.F64(&s.uptime_seconds) || !r.U64(&s.corpus_size) || !r.U32(&s.dim) ||
      !r.U64(&s.batched_requests) || !r.U64(&s.batches) ||
      !r.F64(&s.mean_batch_size) || !r.U32(&n)) {
    return false;
  }
  s.endpoints.clear();
  for (uint32_t i = 0; i < n; ++i) {
    EndpointSnapshot e;
    if (!r.Str(&e.name) || !r.U64(&e.requests) || !r.U64(&e.errors) ||
        !r.F64(&e.qps) || !r.F64(&e.mean_micros) || !r.F64(&e.p50_micros) ||
        !r.F64(&e.p90_micros) || !r.F64(&e.p99_micros) ||
        !r.F64(&e.max_micros)) {
      return false;
    }
    s.endpoints.push_back(std::move(e));
  }
  s.metrics.clear();
  if (r.Done()) return true;  // Pre-metrics payload: valid, no registry data.
  uint32_t m_count = 0;
  if (!r.U32(&m_count)) return false;
  for (uint32_t i = 0; i < m_count; ++i) {
    std::string name;
    double value = 0.0;
    if (!r.Str(&name) || !r.F64(&value)) return false;
    s.metrics.emplace_back(std::move(name), value);
  }
  return r.Done();
}

std::string SerializeHealthResponse(const HealthResponse& m) {
  PayloadWriter w;
  w.U8(m.ok ? 1 : 0);
  w.U64(m.corpus_size);
  w.U32(m.dim);
  w.Str(m.status);
  return w.Take();
}

bool ParseHealthResponse(const std::string& in, HealthResponse* out) {
  PayloadReader r(in);
  uint8_t ok = 0;
  if (!r.U8(&ok) || !r.U64(&out->corpus_size) || !r.U32(&out->dim) ||
      !r.Str(&out->status) || !r.Done()) {
    return false;
  }
  out->ok = ok != 0;
  return true;
}

std::string SerializeTraceDumpRequest(const TraceDumpRequest& m) {
  PayloadWriter w;
  w.U32(m.max_traces);
  return w.Take();
}

bool ParseTraceDumpRequest(const std::string& in, TraceDumpRequest* out) {
  PayloadReader r(in);
  return r.U32(&out->max_traces) && r.Done();
}

std::string SerializeTraceDumpResponse(const TraceDumpResponse& m) {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(m.traces.size()));
  for (const obs::FinishedTrace& t : m.traces) {
    w.U64(t.trace_id);
    w.Str(t.endpoint);
    w.F64(t.total_us);
    w.U64(t.spans_dropped);
    w.U32(static_cast<uint32_t>(t.spans.size()));
    for (const obs::FinishedSpan& s : t.spans) {
      w.Str(s.stage);
      w.F64(s.start_us);
      w.F64(s.dur_us);
      w.U32(s.tid);
    }
  }
  return w.Take();
}

bool ParseTraceDumpResponse(const std::string& in, TraceDumpResponse* out) {
  PayloadReader r(in);
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  out->traces.clear();
  for (uint32_t i = 0; i < n; ++i) {
    obs::FinishedTrace t;
    uint32_t nspans = 0;
    if (!r.U64(&t.trace_id) || !r.Str(&t.endpoint) || !r.F64(&t.total_us) ||
        !r.U64(&t.spans_dropped) || !r.U32(&nspans)) {
      return false;
    }
    for (uint32_t s = 0; s < nspans; ++s) {
      obs::FinishedSpan span;
      if (!r.Str(&span.stage) || !r.F64(&span.start_us) ||
          !r.F64(&span.dur_us) || !r.U32(&span.tid)) {
        return false;
      }
      t.spans.push_back(std::move(span));
    }
    out->traces.push_back(std::move(t));
  }
  return r.Done();
}

}  // namespace neutraj::serve
