#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/framing.h"

namespace neutraj::serve {

namespace {

void SendAllOrThrow(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("Client: send failed: ") +
                               std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rx_(std::move(other.rx_)),
      rx_offset_(other.rx_offset_),
      max_frame_payload_(other.max_frame_payload_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    rx_ = std::move(other.rx_);
    rx_offset_ = other.rx_offset_;
    max_frame_payload_ = other.max_frame_payload_;
  }
  return *this;
}

void Client::set_max_frame_payload(size_t bytes) {
  max_frame_payload_ = std::min(bytes, kWireMaxPayload);
}

void Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("Client: socket failed: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw std::runtime_error("Client: bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    Close();
    throw std::runtime_error("Client: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + err);
  }
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
  rx_offset_ = 0;
}

WireFrame Client::RoundTrip(MsgType type, const std::string& payload) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  SendAllOrThrow(fd_, EncodeWireFrame(static_cast<uint16_t>(type), payload,
                                      max_frame_payload_));
  return RecvFrame();
}

WireFrame Client::RecvFrame() {
  char chunk[64 * 1024];
  while (true) {
    WireFrame reply;
    const FrameStatus status =
        DecodeWireFrame(rx_, &rx_offset_, &reply, max_frame_payload_);
    if (status == FrameStatus::kOk) {
      if (rx_offset_ == rx_.size()) {
        rx_.clear();
        rx_offset_ = 0;
      }
      return reply;
    }
    if (status != FrameStatus::kIncomplete) {
      Close();
      throw std::runtime_error(std::string("Client: corrupt reply frame (") +
                               FrameStatusName(status) + ")");
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      throw std::runtime_error("Client: connection closed by server");
    }
    rx_.append(chunk, static_cast<size_t>(n));
  }
}

void Client::ExpectType(const WireFrame& reply, MsgType expected) {
  if (reply.type == static_cast<uint16_t>(expected)) return;
  if (reply.type == static_cast<uint16_t>(MsgType::kError)) {
    ErrorReply err;
    if (ParseError(reply.payload, &err)) throw ServeError(err.code, err.message);
    throw std::runtime_error("Client: unparseable error reply");
  }
  throw std::runtime_error("Client: unexpected reply type " +
                           std::to_string(reply.type));
}

nn::Vector Client::Encode(const Trajectory& traj) {
  const WireFrame reply =
      RoundTrip(MsgType::kEncodeRequest, SerializeEncodeRequest({traj}));
  ExpectType(reply, MsgType::kEncodeResponse);
  EncodeResponse resp;
  if (!ParseEncodeResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed encode response");
  }
  return std::move(resp.embedding);
}

std::vector<nn::Vector> Client::EncodeMany(
    const std::vector<Trajectory>& trajs) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  std::string out;
  for (const Trajectory& traj : trajs) {
    out += EncodeWireFrame(static_cast<uint16_t>(MsgType::kEncodeRequest),
                           SerializeEncodeRequest({traj}), max_frame_payload_);
  }
  SendAllOrThrow(fd_, out);

  // Consume every reply before surfacing any failure, so a mid-burst error
  // does not desynchronize the request/response stream.
  std::vector<WireFrame> replies;
  replies.reserve(trajs.size());
  for (size_t i = 0; i < trajs.size(); ++i) replies.push_back(RecvFrame());

  std::vector<nn::Vector> results;
  results.reserve(trajs.size());
  for (const WireFrame& reply : replies) {
    ExpectType(reply, MsgType::kEncodeResponse);
    EncodeResponse resp;
    if (!ParseEncodeResponse(reply.payload, &resp)) {
      throw std::runtime_error("Client: malformed encode response");
    }
    results.push_back(std::move(resp.embedding));
  }
  return results;
}

PairSimResponse Client::PairSim(const Trajectory& a, const Trajectory& b) {
  const WireFrame reply =
      RoundTrip(MsgType::kPairSimRequest, SerializePairSimRequest({a, b}));
  ExpectType(reply, MsgType::kPairSimResponse);
  PairSimResponse resp;
  if (!ParsePairSimResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed pairsim response");
  }
  return resp;
}

TopKResponse Client::TopK(const Trajectory& query, uint32_t k,
                          int64_t exclude) {
  TopKRequest req;
  req.query = query;
  req.k = k;
  req.exclude = exclude;
  const WireFrame reply =
      RoundTrip(MsgType::kTopKRequest, SerializeTopKRequest(req));
  ExpectType(reply, MsgType::kTopKResponse);
  TopKResponse resp;
  if (!ParseTopKResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed topk response");
  }
  return resp;
}

InsertResponse Client::Insert(const Trajectory& traj) {
  const WireFrame reply =
      RoundTrip(MsgType::kInsertRequest, SerializeInsertRequest({traj}));
  ExpectType(reply, MsgType::kInsertResponse);
  InsertResponse resp;
  if (!ParseInsertResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed insert response");
  }
  return resp;
}

StatsSnapshot Client::Stats() {
  const WireFrame reply = RoundTrip(MsgType::kStatsRequest, "");
  ExpectType(reply, MsgType::kStatsResponse);
  StatsResponse resp;
  if (!ParseStatsResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed stats response");
  }
  return std::move(resp.stats);
}

HealthResponse Client::Health() {
  const WireFrame reply = RoundTrip(MsgType::kHealthRequest, "");
  ExpectType(reply, MsgType::kHealthResponse);
  HealthResponse resp;
  if (!ParseHealthResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed health response");
  }
  return resp;
}

}  // namespace neutraj::serve
