#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/framing.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace neutraj::serve {

namespace {

/// Closes the wrapped fd on scope exit unless released — keeps the
/// multi-exit connect path leak-free.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int Release() { return std::exchange(fd_, -1); }

 private:
  int fd_;
};

/// Connect failures worth retrying: the server not being up yet or the
/// network transiently dropping the handshake. Address/config errors are
/// permanent and retrying them only hides the bug.
bool IsTransientConnectErrno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == ETIMEDOUT ||
         err == ENETUNREACH || err == EHOSTUNREACH || err == EAGAIN ||
         err == EINTR;
}

void SetNonBlocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  ::fcntl(fd, F_SETFL, want);
}

void SendAllOrThrow(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("Client: send timed out");
      }
      throw std::runtime_error(std::string("Client: send failed: ") +
                               ErrnoMessage(errno));
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rx_(std::move(other.rx_)),
      rx_offset_(other.rx_offset_),
      max_frame_payload_(other.max_frame_payload_),
      connect_timeout_ms_(other.connect_timeout_ms_),
      io_timeout_ms_(other.io_timeout_ms_),
      retry_(other.retry_),
      trace_(other.trace_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    rx_ = std::move(other.rx_);
    rx_offset_ = other.rx_offset_;
    max_frame_payload_ = other.max_frame_payload_;
    connect_timeout_ms_ = other.connect_timeout_ms_;
    io_timeout_ms_ = other.io_timeout_ms_;
    retry_ = other.retry_;
    trace_ = other.trace_;
  }
  return *this;
}

void Client::set_max_frame_payload(size_t bytes) {
  max_frame_payload_ = std::min(bytes, kWireMaxPayload);
}

int Client::ConnectOnce(const std::string& host, uint16_t port,
                        bool* transient) {
  *transient = false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("Client: bad address '" + host + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("Client: socket failed: ") +
                             ErrnoMessage(errno));
  }
  FdGuard guard(fd);

  const auto fail = [&](const std::string& what, bool is_transient) -> int {
    *transient = is_transient;
    throw std::runtime_error("Client: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + what);
  };

  if (connect_timeout_ms_ == 0) {
    // Historic path: blocking connect, OS-default timeout.
    while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) != 0) {
      if (errno == EINTR) continue;
      fail(ErrnoMessage(errno), IsTransientConnectErrno(errno));
    }
  } else {
    // Non-blocking connect bounded by poll(), then back to blocking mode so
    // the send/recv paths keep their plain semantics.
    SetNonBlocking(fd, true);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (errno != EINPROGRESS && errno != EINTR) {
        fail(ErrnoMessage(errno), IsTransientConnectErrno(errno));
      }
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(connect_timeout_ms_));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) fail("connect timed out", true);
      if (rc < 0) fail(ErrnoMessage(errno), false);
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
        fail(ErrnoMessage(errno), false);
      }
      if (soerr != 0) {
        fail(ErrnoMessage(soerr), IsTransientConnectErrno(soerr));
      }
    }
    SetNonBlocking(fd, false);
  }

  if (io_timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = io_timeout_ms_ / 1000;
    tv.tv_usec = static_cast<suseconds_t>(io_timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return guard.Release();
}

void Client::Connect(const std::string& host, uint16_t port) {
  Close();
  Rng jitter(retry_.jitter_seed);
  const uint32_t attempts = std::max<uint32_t>(retry_.max_attempts, 1);
  for (uint32_t attempt = 1;; ++attempt) {
    bool transient = false;
    try {
      fd_ = ConnectOnce(host, port, &transient);
      return;
    } catch (const std::runtime_error&) {
      if (!transient || attempt >= attempts) throw;
    }
    // Bounded exponential backoff with uniform jitter: base << (attempt-1),
    // capped, plus up to the same again — deterministic per jitter_seed.
    const uint32_t shift = std::min<uint32_t>(attempt - 1, 20);
    const uint64_t raw = static_cast<uint64_t>(retry_.backoff_base_ms) << shift;
    const uint64_t capped = std::min<uint64_t>(raw, retry_.backoff_max_ms);
    const uint64_t delay_ms =
        capped + static_cast<uint64_t>(jitter.Uniform(0.0, 1.0) *
                                       static_cast<double>(capped));
    SleepForMillis(delay_ms);
  }
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
  rx_offset_ = 0;
}

WireFrame Client::RoundTrip(MsgType type, const std::string& payload) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  SendAllOrThrow(fd_, EncodeWireFrame(static_cast<uint16_t>(type), payload,
                                      max_frame_payload_));
  return RecvFrame();
}

WireFrame Client::RecvFrame() {
  char chunk[64 * 1024];
  while (true) {
    WireFrame reply;
    const FrameStatus status =
        DecodeWireFrame(rx_, &rx_offset_, &reply, max_frame_payload_);
    if (status == FrameStatus::kOk) {
      if (rx_offset_ == rx_.size()) {
        rx_.clear();
        rx_offset_ = 0;
      }
      return reply;
    }
    if (status != FrameStatus::kIncomplete) {
      Close();
      throw std::runtime_error(std::string("Client: corrupt reply frame (") +
                               FrameStatusName(status) + ")");
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO fired mid-reply. The stream may now hold a partial
      // frame, so the connection cannot be reused — close and report.
      Close();
      throw std::runtime_error("Client: receive timed out");
    }
    if (n <= 0) {
      Close();
      throw std::runtime_error("Client: connection closed by server");
    }
    rx_.append(chunk, static_cast<size_t>(n));
  }
}

void Client::ExpectType(const WireFrame& reply, MsgType expected) {
  if (reply.type == static_cast<uint16_t>(expected)) return;
  if (reply.type == static_cast<uint16_t>(MsgType::kError)) {
    ErrorReply err;
    if (ParseError(reply.payload, &err)) throw ServeError(err.code, err.message);
    throw std::runtime_error("Client: unparseable error reply");
  }
  throw std::runtime_error("Client: unexpected reply type " +
                           std::to_string(reply.type));
}

nn::Vector Client::Encode(const Trajectory& traj) {
  EncodeRequest req;
  req.traj = traj;
  req.trace = trace_;
  const WireFrame reply =
      RoundTrip(MsgType::kEncodeRequest, SerializeEncodeRequest(req));
  ExpectType(reply, MsgType::kEncodeResponse);
  EncodeResponse resp;
  if (!ParseEncodeResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed encode response");
  }
  return std::move(resp.embedding);
}

std::vector<nn::Vector> Client::EncodeMany(
    const std::vector<Trajectory>& trajs) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  std::string out;
  for (const Trajectory& traj : trajs) {
    EncodeRequest req;
    req.traj = traj;
    req.trace = trace_;
    out += EncodeWireFrame(static_cast<uint16_t>(MsgType::kEncodeRequest),
                           SerializeEncodeRequest(req), max_frame_payload_);
  }
  SendAllOrThrow(fd_, out);

  // Consume every reply before surfacing any failure, so a mid-burst error
  // does not desynchronize the request/response stream.
  std::vector<WireFrame> replies;
  replies.reserve(trajs.size());
  for (size_t i = 0; i < trajs.size(); ++i) replies.push_back(RecvFrame());

  std::vector<nn::Vector> results;
  results.reserve(trajs.size());
  for (const WireFrame& reply : replies) {
    ExpectType(reply, MsgType::kEncodeResponse);
    EncodeResponse resp;
    if (!ParseEncodeResponse(reply.payload, &resp)) {
      throw std::runtime_error("Client: malformed encode response");
    }
    results.push_back(std::move(resp.embedding));
  }
  return results;
}

PairSimResponse Client::PairSim(const Trajectory& a, const Trajectory& b) {
  PairSimRequest req;
  req.a = a;
  req.b = b;
  req.trace = trace_;
  const WireFrame reply =
      RoundTrip(MsgType::kPairSimRequest, SerializePairSimRequest(req));
  ExpectType(reply, MsgType::kPairSimResponse);
  PairSimResponse resp;
  if (!ParsePairSimResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed pairsim response");
  }
  return resp;
}

TopKResponse Client::TopK(const Trajectory& query, uint32_t k,
                          int64_t exclude, uint32_t nprobe) {
  TopKRequest req;
  req.query = query;
  req.k = k;
  req.exclude = exclude;
  req.nprobe = nprobe;
  req.trace = trace_;
  const WireFrame reply =
      RoundTrip(MsgType::kTopKRequest, SerializeTopKRequest(req));
  ExpectType(reply, MsgType::kTopKResponse);
  TopKResponse resp;
  if (!ParseTopKResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed topk response");
  }
  return resp;
}

InsertResponse Client::Insert(const Trajectory& traj) {
  InsertRequest req;
  req.traj = traj;
  req.trace = trace_;
  const WireFrame reply =
      RoundTrip(MsgType::kInsertRequest, SerializeInsertRequest(req));
  ExpectType(reply, MsgType::kInsertResponse);
  InsertResponse resp;
  if (!ParseInsertResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed insert response");
  }
  return resp;
}

StatsSnapshot Client::Stats() {
  const WireFrame reply = RoundTrip(MsgType::kStatsRequest, "");
  ExpectType(reply, MsgType::kStatsResponse);
  StatsResponse resp;
  if (!ParseStatsResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed stats response");
  }
  return std::move(resp.stats);
}

HealthResponse Client::Health() {
  const WireFrame reply = RoundTrip(MsgType::kHealthRequest, "");
  ExpectType(reply, MsgType::kHealthResponse);
  HealthResponse resp;
  if (!ParseHealthResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed health response");
  }
  return resp;
}

TraceDumpResponse Client::TraceDump(uint32_t max_traces) {
  const WireFrame reply = RoundTrip(MsgType::kTraceDumpRequest,
                                    SerializeTraceDumpRequest({max_traces}));
  ExpectType(reply, MsgType::kTraceDumpResponse);
  TraceDumpResponse resp;
  if (!ParseTraceDumpResponse(reply.payload, &resp)) {
    throw std::runtime_error("Client: malformed tracedump response");
  }
  return resp;
}

}  // namespace neutraj::serve
