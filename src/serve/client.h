// Client library for the NeuTraj query server.
//
// A Client owns one blocking TCP connection and exposes one method per
// endpoint; requests and responses are the wire frames of
// serve/protocol.h. Server-side kError replies surface as ServeError
// exceptions carrying the typed code; transport failures (connect, EOF,
// framing corruption) throw std::runtime_error. A Client is not
// thread-safe — the serving protocol is strictly request/response per
// connection, so concurrent callers must each open their own Client
// (connections are cheap; the server multiplexes them).
//
// Robustness knobs (all off by default, preserving historic blocking
// behavior): set_connect_timeout_ms bounds connection establishment,
// set_io_timeout_ms bounds each send/recv, and set_retry_policy makes
// Connect() retry transient failures (ECONNREFUSED while a server is
// still starting, timeouts, EINTR races) with bounded exponential backoff
// and deterministic seeded jitter.

#ifndef NEUTRAJ_SERVE_CLIENT_H_
#define NEUTRAJ_SERVE_CLIENT_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/framing.h"
#include "serve/protocol.h"

namespace neutraj::serve {

/// A typed error reply from the server.
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(ErrorCodeName(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Bounded-exponential-backoff schedule for Connect() retries.
///
/// Attempt n (1-based) that fails with a transient error sleeps
/// `min(backoff_base_ms << (n - 1), backoff_max_ms)` plus a uniform jitter
/// in [0, that delay) drawn from a generator seeded with `jitter_seed` —
/// deterministic per Client, decorrelated across clients that pick
/// different seeds. Non-transient failures (bad address, protocol errors)
/// are never retried.
struct RetryPolicy {
  uint32_t max_attempts = 1;     ///< Total tries; 1 = no retries.
  uint32_t backoff_base_ms = 50;
  uint32_t backoff_max_ms = 2000;
  uint64_t jitter_seed = 42;
};

/// One blocking request/response connection to a query server.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port, honoring the connect timeout and retry policy.
  /// Throws std::runtime_error on (final) failure.
  void Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Per-frame payload cap applied to sent requests and received replies,
  /// mirroring ServerOptions::max_frame_payload. Values above
  /// kWireMaxPayload (the protocol-wide encoder limit both sides are held
  /// to) are clamped, matching the server-side clamp — so the default is
  /// always enough to decode any conforming server's replies. The cap
  /// survives Connect()/Close().
  void set_max_frame_payload(size_t bytes);
  size_t max_frame_payload() const { return max_frame_payload_; }

  /// Bounds connection establishment (non-blocking connect + poll). 0 (the
  /// default) blocks on the OS's own connect timeout. Survives
  /// Connect()/Close(); applies to the next Connect().
  void set_connect_timeout_ms(uint32_t ms) { connect_timeout_ms_ = ms; }
  uint32_t connect_timeout_ms() const { return connect_timeout_ms_; }

  /// Bounds each send/recv on the connection (SO_SNDTIMEO/SO_RCVTIMEO). A
  /// request whose reply does not arrive in time throws std::runtime_error
  /// and closes the connection (a timed-out stream cannot be resynced). 0
  /// (the default) blocks indefinitely. Applies to the next Connect().
  void set_io_timeout_ms(uint32_t ms) { io_timeout_ms_ = ms; }
  uint32_t io_timeout_ms() const { return io_timeout_ms_; }

  /// Retry schedule for Connect(). Default: one attempt, no retries.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Attaches a trace context to every subsequent request (Encode,
  /// EncodeMany, PairSim, TopK, Insert) as the optional trailing wire
  /// field. A valid context with `sampled` set forces the server to trace
  /// those requests regardless of its sampling rate — this is how
  /// `neutraj_client --trace-id` lights up one request end to end. Pass a
  /// default-constructed context to detach. Survives Connect()/Close().
  void set_trace_context(const obs::TraceContext& ctx) { trace_ = ctx; }
  const obs::TraceContext& trace_context() const { return trace_; }

  /// Embeds one trajectory server-side.
  nn::Vector Encode(const Trajectory& traj);

  /// Pipelined bulk encode: sends every request in one write, then reads
  /// the replies in order. The server dispatches the whole burst to its
  /// micro-batcher before replying, so one EncodeMany call can fill a
  /// batch by itself — this is the high-throughput encoding path. Results
  /// match per-call Encode() exactly. If any item failed server-side, the
  /// first failure is thrown (as ServeError) after all replies have been
  /// consumed, leaving the connection usable.
  std::vector<nn::Vector> EncodeMany(const std::vector<Trajectory>& trajs);

  /// Embedding distance + similarity of a pair.
  PairSimResponse PairSim(const Trajectory& a, const Trajectory& b);

  /// Top-k over the server's live corpus. `nprobe` tunes an ANN-backed
  /// server's probe breadth (0 = server default; ignored — and omitted from
  /// the wire payload — for exact servers, so old servers stay compatible).
  TopKResponse TopK(const Trajectory& query, uint32_t k, int64_t exclude = -1,
                    uint32_t nprobe = 0);

  /// Appends a trajectory to the live corpus; returns the assigned id and
  /// the corpus size after the insert.
  InsertResponse Insert(const Trajectory& traj);

  StatsSnapshot Stats();
  HealthResponse Health();

  /// Pulls the server's most recent sampled span trees (oldest first).
  /// `max_traces` = 0 asks for the server's default window. Feed the result
  /// to obs::RenderChromeTrace for a chrome://tracing-loadable file.
  TraceDumpResponse TraceDump(uint32_t max_traces = 0);

 private:
  /// Sends one request frame and reads exactly one response frame.
  WireFrame RoundTrip(MsgType type, const std::string& payload);

  /// Reads exactly one frame off the connection (blocking).
  WireFrame RecvFrame();

  /// Checks a reply against the expected type; decodes and throws
  /// ServeError if the server replied kError.
  static void ExpectType(const WireFrame& reply, MsgType expected);

  /// One connection attempt. Returns a connected fd, or throws; transient
  /// failures are marked for the retry loop via *transient.
  int ConnectOnce(const std::string& host, uint16_t port, bool* transient);

  int fd_ = -1;
  std::string rx_;      ///< Receive buffer (bytes not yet framed).
  size_t rx_offset_ = 0;
  size_t max_frame_payload_ = kWireMaxPayload;
  uint32_t connect_timeout_ms_ = 0;
  uint32_t io_timeout_ms_ = 0;
  RetryPolicy retry_;
  obs::TraceContext trace_;  ///< Applied to every request when valid().
};

}  // namespace neutraj::serve

#endif  // NEUTRAJ_SERVE_CLIENT_H_
