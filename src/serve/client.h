// Client library for the NeuTraj query server.
//
// A Client owns one blocking TCP connection and exposes one method per
// endpoint; requests and responses are the wire frames of
// serve/protocol.h. Server-side kError replies surface as ServeError
// exceptions carrying the typed code; transport failures (connect, EOF,
// framing corruption) throw std::runtime_error. A Client is not
// thread-safe — the serving protocol is strictly request/response per
// connection, so concurrent callers must each open their own Client
// (connections are cheap; the server multiplexes them).

#ifndef NEUTRAJ_SERVE_CLIENT_H_
#define NEUTRAJ_SERVE_CLIENT_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/framing.h"
#include "serve/protocol.h"

namespace neutraj::serve {

/// A typed error reply from the server.
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(ErrorCodeName(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One blocking request/response connection to a query server.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port. Throws std::runtime_error on failure.
  void Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Per-frame payload cap applied to sent requests and received replies,
  /// mirroring ServerOptions::max_frame_payload. Values above
  /// kWireMaxPayload (the protocol-wide encoder limit both sides are held
  /// to) are clamped, matching the server-side clamp — so the default is
  /// always enough to decode any conforming server's replies. The cap
  /// survives Connect()/Close().
  void set_max_frame_payload(size_t bytes);
  size_t max_frame_payload() const { return max_frame_payload_; }

  /// Embeds one trajectory server-side.
  nn::Vector Encode(const Trajectory& traj);

  /// Pipelined bulk encode: sends every request in one write, then reads
  /// the replies in order. The server dispatches the whole burst to its
  /// micro-batcher before replying, so one EncodeMany call can fill a
  /// batch by itself — this is the high-throughput encoding path. Results
  /// match per-call Encode() exactly. If any item failed server-side, the
  /// first failure is thrown (as ServeError) after all replies have been
  /// consumed, leaving the connection usable.
  std::vector<nn::Vector> EncodeMany(const std::vector<Trajectory>& trajs);

  /// Embedding distance + similarity of a pair.
  PairSimResponse PairSim(const Trajectory& a, const Trajectory& b);

  /// Top-k over the server's live corpus.
  TopKResponse TopK(const Trajectory& query, uint32_t k, int64_t exclude = -1);

  /// Appends a trajectory to the live corpus; returns the assigned id and
  /// the corpus size after the insert.
  InsertResponse Insert(const Trajectory& traj);

  StatsSnapshot Stats();
  HealthResponse Health();

 private:
  /// Sends one request frame and reads exactly one response frame.
  WireFrame RoundTrip(MsgType type, const std::string& payload);

  /// Reads exactly one frame off the connection (blocking).
  WireFrame RecvFrame();

  /// Checks a reply against the expected type; decodes and throws
  /// ServeError if the server replied kError.
  static void ExpectType(const WireFrame& reply, MsgType expected);

  int fd_ = -1;
  std::string rx_;      ///< Receive buffer (bytes not yet framed).
  size_t rx_offset_ = 0;
  size_t max_frame_payload_ = kWireMaxPayload;
};

}  // namespace neutraj::serve

#endif  // NEUTRAJ_SERVE_CLIENT_H_
