#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace neutraj::serve {

const char* EndpointName(Endpoint e) {
  switch (e) {
    case Endpoint::kEncode: return "encode";
    case Endpoint::kPairSim: return "pairsim";
    case Endpoint::kTopK: return "topk";
    case Endpoint::kInsert: return "insert";
    case Endpoint::kStats: return "stats";
    case Endpoint::kHealth: return "health";
    case Endpoint::kTraceDump: return "tracedump";
    case Endpoint::kCount: break;
  }
  return "unknown";
}

ServerStats::ServerStats(obs::MetricsRegistry* registry) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Global();
  for (size_t i = 0; i < per_.size(); ++i) {
    const std::string base =
        std::string("serve/") + EndpointName(static_cast<Endpoint>(i));
    per_[i].hist = &reg.GetHistogram(base + "/latency_us");
    per_[i].errors = &reg.GetCounter(base + "/errors");
  }
}

void ServerStats::Record(Endpoint e, double micros, bool error) {
  const PerEndpoint& pe = per_[static_cast<size_t>(e)];
  pe.hist->Record(micros);
  if (error) pe.errors->Increment();
}

StatsSnapshot ServerStats::Snapshot() const {
  StatsSnapshot snap;
  snap.uptime_seconds = uptime_.ElapsedSeconds();
  const double uptime = std::max(snap.uptime_seconds, 1e-9);
  for (size_t i = 0; i < per_.size(); ++i) {
    const LatencyHistogram hist = per_[i].hist->Snapshot();
    EndpointSnapshot es;
    es.name = EndpointName(static_cast<Endpoint>(i));
    es.requests = hist.count();
    es.errors = per_[i].errors->Value();
    es.qps = static_cast<double>(es.requests) / uptime;
    es.mean_micros = hist.mean_micros();
    es.p50_micros = hist.PercentileMicros(0.50);
    es.p90_micros = hist.PercentileMicros(0.90);
    es.p99_micros = hist.PercentileMicros(0.99);
    es.max_micros = hist.max_micros();
    snap.endpoints.push_back(std::move(es));
  }
  return snap;
}

std::string StatsSnapshot::ToString() const {
  std::string out = StrFormat(
      "uptime %.1fs  corpus %llu (d=%u)  encode batches %llu/%llu "
      "(mean batch %.2f)\n",
      uptime_seconds, static_cast<unsigned long long>(corpus_size), dim,
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batched_requests), mean_batch_size);
  out += StrFormat("%-8s %9s %7s %9s %10s %10s %10s %10s\n", "endpoint",
                   "requests", "errors", "qps", "mean_us", "p50_us", "p99_us",
                   "max_us");
  for (const EndpointSnapshot& e : endpoints) {
    out += StrFormat("%-8s %9llu %7llu %9.2f %10.1f %10.0f %10.0f %10.1f\n",
                     e.name.c_str(), static_cast<unsigned long long>(e.requests),
                     static_cast<unsigned long long>(e.errors), e.qps,
                     e.mean_micros, e.p50_micros, e.p99_micros, e.max_micros);
  }
  if (!metrics.empty()) {
    out += "metrics:\n";
    for (const auto& [name, value] : metrics) {
      out += StrFormat("  %-44s %.6g\n", name.c_str(), value);
    }
  }
  return out;
}

std::string StatsSnapshot::ToPrometheus() const {
  std::string out;
  {
    const std::string p = obs::PrometheusName("serve/uptime_seconds");
    out += StrFormat("# TYPE %s gauge\n%s %.17g\n", p.c_str(), p.c_str(),
                     uptime_seconds);
  }
  {
    const std::string p = obs::PrometheusName("serve/corpus_size");
    out += StrFormat("# TYPE %s gauge\n%s %llu\n", p.c_str(), p.c_str(),
                     static_cast<unsigned long long>(corpus_size));
  }
  for (const EndpointSnapshot& e : endpoints) {
    const std::string base = "serve/" + e.name;
    const std::string req = obs::PrometheusName(base + "/requests");
    out += StrFormat("# TYPE %s counter\n%s %llu\n", req.c_str(), req.c_str(),
                     static_cast<unsigned long long>(e.requests));
    const std::string err = obs::PrometheusName(base + "/errors");
    out += StrFormat("# TYPE %s counter\n%s %llu\n", err.c_str(), err.c_str(),
                     static_cast<unsigned long long>(e.errors));
  }
  // The flattened registry metrics (already name/value pairs) as gauges; the
  // full-resolution histogram buckets are available server-side via
  // RenderPrometheus over the registry, but a remote scrape only sees the
  // snapshot the wire carries.
  for (const auto& [name, value] : metrics) {
    const std::string p = obs::PrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n%s %.17g\n", p.c_str(), p.c_str(),
                     value);
  }
  return out;
}

}  // namespace neutraj::serve
