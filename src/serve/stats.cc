#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace neutraj::serve {

const char* EndpointName(Endpoint e) {
  switch (e) {
    case Endpoint::kEncode: return "encode";
    case Endpoint::kPairSim: return "pairsim";
    case Endpoint::kTopK: return "topk";
    case Endpoint::kInsert: return "insert";
    case Endpoint::kStats: return "stats";
    case Endpoint::kHealth: return "health";
    case Endpoint::kCount: break;
  }
  return "unknown";
}

void LatencyHistogram::Record(double micros) {
  const double m = std::max(0.0, micros);
  // Bucket i covers (2^(i-1), 2^i] µs; everything above the last bound
  // lands in the final bucket.
  size_t b = 0;
  while (b + 1 < kNumBuckets && m > static_cast<double>(1ull << b)) ++b;
  ++buckets_[b];
  ++count_;
  sum_ += m;
  max_ = std::max(max_, m);
}

double LatencyHistogram::PercentileMicros(double p) const {
  if (count_ == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 1.0) * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(1ull << b);
    }
  }
  return static_cast<double>(1ull << (kNumBuckets - 1));
}

void ServerStats::Record(Endpoint e, double micros, bool error) {
  const size_t i = static_cast<size_t>(e);
  std::lock_guard<std::mutex> lock(mu_);
  per_[i].hist.Record(micros);
  if (error) ++per_[i].errors;
}

StatsSnapshot ServerStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snap;
  snap.uptime_seconds = uptime_.ElapsedSeconds();
  const double uptime = std::max(snap.uptime_seconds, 1e-9);
  for (size_t i = 0; i < per_.size(); ++i) {
    const PerEndpoint& pe = per_[i];
    EndpointSnapshot es;
    es.name = EndpointName(static_cast<Endpoint>(i));
    es.requests = pe.hist.count();
    es.errors = pe.errors;
    es.qps = static_cast<double>(es.requests) / uptime;
    es.mean_micros = pe.hist.mean_micros();
    es.p50_micros = pe.hist.PercentileMicros(0.50);
    es.p90_micros = pe.hist.PercentileMicros(0.90);
    es.p99_micros = pe.hist.PercentileMicros(0.99);
    es.max_micros = pe.hist.max_micros();
    snap.endpoints.push_back(std::move(es));
  }
  return snap;
}

std::string StatsSnapshot::ToString() const {
  std::string out = StrFormat(
      "uptime %.1fs  corpus %llu (d=%u)  encode batches %llu/%llu "
      "(mean batch %.2f)\n",
      uptime_seconds, static_cast<unsigned long long>(corpus_size), dim,
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batched_requests), mean_batch_size);
  out += StrFormat("%-8s %9s %7s %9s %10s %10s %10s %10s\n", "endpoint",
                   "requests", "errors", "qps", "mean_us", "p50_us", "p99_us",
                   "max_us");
  for (const EndpointSnapshot& e : endpoints) {
    out += StrFormat("%-8s %9llu %7llu %9.2f %10.1f %10.0f %10.0f %10.1f\n",
                     e.name.c_str(), static_cast<unsigned long long>(e.requests),
                     static_cast<unsigned long long>(e.errors), e.qps,
                     e.mean_micros, e.p50_micros, e.p99_micros, e.max_micros);
  }
  return out;
}

}  // namespace neutraj::serve
