// NeuTraj configuration and the model variants evaluated in the paper.

#ifndef NEUTRAJ_CORE_CONFIG_H_
#define NEUTRAJ_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "distance/measures.h"
#include "nn/encoder.h"

namespace neutraj {

/// How the raw distance matrix D is turned into the similarity guidance S
/// (paper Sec. V-B).
enum class SimilarityTransform {
  /// S_ij = exp(-alpha * D_ij). Matches the fit target g = exp(-L2) and the
  /// reference implementation; the default.
  kExp,
  /// S_ij = exp(-alpha * D_ij) / sum_n exp(-alpha * D_in): the
  /// row-normalized form written in the paper. Asymmetric.
  kRowSoftmax,
};

/// How training pairs are drawn for an anchor (paper Sec. V-B).
enum class SamplingStrategy {
  kDistanceWeighted,  ///< Importance sampling by S (NeuTraj).
  kRandom,            ///< Uniform sampling (NT-No-WS, Siamese).
};

/// Loss applied to sampled pairs.
enum class LossKind {
  /// Rank-weighted regression on similar pairs + rank-weighted margin on
  /// dissimilar pairs (Eqs. 8-9; NeuTraj, NT-No-WS, NT-No-SAM).
  kWeightedRanking,
  /// Plain mean-squared error on all sampled pairs (Siamese baseline).
  kMse,
};

/// Full training/model configuration.
///
/// Defaults follow the paper (d = 128, w = 2, n = 10, batch 20) scaled for
/// CPU-only training; see the presets below for the evaluated variants.
struct NeuTrajConfig {
  Measure measure = Measure::kFrechet;

  // -- Guidance -------------------------------------------------------------
  SimilarityTransform transform = SimilarityTransform::kExp;
  /// alpha of the similarity transform; <= 0 calibrates it from the seed
  /// pool so that similarity 0.5 sits at the mean sampling_num-th
  /// nearest-neighbor distance (see SimilarityMatrix). `alpha_factor`
  /// scales the calibrated value (1.0 = the calibration point).
  double alpha = 0.0;
  double alpha_factor = 1.0;

  // -- Architecture ----------------------------------------------------------
  nn::Backbone backbone = nn::Backbone::kSamLstm;
  size_t embedding_dim = 64;  ///< d: hidden size = embedding size.
  int32_t scan_width = 2;     ///< w: SAM window half-width.

  // -- Sampling & loss --------------------------------------------------------
  SamplingStrategy sampling = SamplingStrategy::kDistanceWeighted;
  LossKind loss = LossKind::kWeightedRanking;
  size_t sampling_num = 10;  ///< n: similar and dissimilar samples per anchor.

  // -- Optimization -----------------------------------------------------------
  size_t batch_size = 20;  ///< Anchors per Adam step.
  size_t epochs = 20;
  double learning_rate = 1e-3;
  double clip_norm = 5.0;
  /// Early stopping: stop after `patience` epochs without relative loss
  /// improvement better than `early_stop_tol` (0 disables).
  double early_stop_tol = 0.0;
  size_t patience = 5;

  uint64_t rng_seed = 42;

  /// Worker threads for training batches and bulk corpus encoding (>= 1).
  /// Training is bit-for-bit identical for every value: anchors in a batch
  /// read a shared memory snapshot, record their SAM writes into per-anchor
  /// logs and accumulate gradients into per-anchor buffers; the trainer
  /// commits both in a fixed anchor order. Because the result is
  /// thread-count-invariant, `threads` is deliberately excluded from
  /// Fingerprint() — a checkpoint taken at one thread count resumes at any
  /// other.
  size_t threads = 1;

  /// Whether inference-time encodings also write the spatial memory.
  /// The default (false) keeps the model deterministic after training.
  bool update_memory_at_inference = false;

  // -- Fault tolerance --------------------------------------------------------
  /// Directory for crash-safe training checkpoints; empty disables them.
  /// When set, the Trainer writes `checkpoint_dir`/neutraj.ckpt atomically
  /// after every `checkpoint_every`-th completed epoch, and ResumeFrom()
  /// continues an interrupted run bit-for-bit.
  std::string checkpoint_dir;
  /// Epochs between checkpoint writes (>= 1).
  size_t checkpoint_every = 1;
  /// Divergence watchdog: scan per-anchor losses and post-step parameters
  /// for NaN/Inf; on trip, roll back to the last good epoch state, decay the
  /// learning rate and retry instead of training on garbage.
  bool watchdog = true;
  /// Anchor-loss explosion threshold; a finite anchor loss above it also
  /// trips the watchdog. <= 0 disables the explosion check (NaN/Inf is
  /// always checked while the watchdog is on).
  double divergence_loss_threshold = 0.0;
  /// Learning-rate multiplier applied on each watchdog rollback, in (0, 1].
  double divergence_lr_decay = 0.5;
  /// Rollbacks before the watchdog gives up and aborts the run.
  size_t max_divergence_rollbacks = 3;

  // -- Presets for the paper's methods ---------------------------------------
  /// Full NeuTraj: SAM backbone + weighted sampling + ranking loss.
  static NeuTrajConfig NeuTraj();
  /// NT-No-SAM ablation: standard LSTM backbone, everything else NeuTraj.
  static NeuTrajConfig NoSam();
  /// NT-No-WS ablation: random sampling, everything else NeuTraj.
  static NeuTrajConfig NoWs();
  /// Siamese baseline: LSTM backbone, random sampling, plain MSE loss.
  static NeuTrajConfig Siamese();

  /// Short name of the configured variant ("NeuTraj", "NT-No-SAM", ...).
  std::string VariantName() const;

  /// Stable textual fingerprint of every field that affects training; used
  /// to key the experiment model cache.
  std::string Fingerprint() const;

  /// Validates ranges; throws std::invalid_argument on nonsense configs.
  void Validate() const;
};

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_CONFIG_H_
