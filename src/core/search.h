// Top-k similarity search primitives.
//
// The paper's online protocol: embed the corpus once, answer a query by a
// linear scan in embedding space (O(|corpus| * d)), optionally re-rank the
// top candidates with the exact measure.

#ifndef NEUTRAJ_CORE_SEARCH_H_
#define NEUTRAJ_CORE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "distance/measures.h"
#include "nn/matrix.h"

namespace neutraj {

/// Result of a top-k query: ids and their distances, ascending by distance.
struct SearchResult {
  std::vector<size_t> ids;
  std::vector<double> dists;

  size_t size() const { return ids.size(); }
};

/// Top-k smallest entries of a distance vector (ties broken by lower id).
/// `exclude` (if >= 0) removes one id — typically the query itself.
SearchResult TopKByDistance(const std::vector<double>& dists, size_t k,
                            int64_t exclude = -1);

/// Top-k nearest corpus embeddings to `query` under L2.
SearchResult EmbeddingTopK(const std::vector<nn::Vector>& corpus,
                           const nn::Vector& query, size_t k,
                           int64_t exclude = -1);

/// EmbeddingTopK restricted to `candidates` — the exact re-rank step behind
/// an ANN prefilter (src/retrieval/). Distances and the (distance, then
/// ascending id) tie-break are computed exactly as EmbeddingTopK computes
/// them, so when `candidates` contains the true top-k the result is
/// bit-identical to the full scan. Duplicate candidate ids are scored once.
SearchResult EmbeddingTopKOf(const std::vector<nn::Vector>& corpus,
                             const nn::Vector& query,
                             const std::vector<size_t>& candidates, size_t k,
                             int64_t exclude = -1);

/// Top-k nearest corpus trajectories to `query` under the exact measure —
/// the BruteForce baseline and the experiments' ground truth.
SearchResult ExactTopK(const std::vector<Trajectory>& corpus,
                       const Trajectory& query, const DistanceFn& fn, size_t k,
                       int64_t exclude = -1);

/// Computes exact distances for `candidates` only and returns their top-k —
/// the re-ranking step applied after an embedding (or index) prefilter.
SearchResult RerankByExact(const std::vector<Trajectory>& corpus,
                           const Trajectory& query,
                           const std::vector<size_t>& candidates,
                           const DistanceFn& fn, size_t k);

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_SEARCH_H_
