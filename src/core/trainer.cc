#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/file_util.h"
#include "common/framing.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/loss.h"
#include "geo/traj_io.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neutraj {

namespace {

constexpr char kCheckpointKind[] = "checkpoint";
constexpr char kCheckpointFile[] = "neutraj.ckpt";

/// Shannon entropy (nats) of an attention weight vector; masked rows are
/// exact zeros and contribute nothing.
double AttentionEntropy(const nn::Vector& a) {
  double h = 0.0;
  for (const double p : a) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

nn::AdamOptions MakeAdamOptions(const NeuTrajConfig& cfg) {
  nn::AdamOptions o;
  o.learning_rate = cfg.learning_rate;
  o.clip_norm = cfg.clip_norm;
  return o;
}

std::string SerializeMemory(const nn::Encoder& enc) {
  std::ostringstream out;
  out.precision(17);
  if (!enc.has_memory()) {
    out << "0\n";
    return out.str();
  }
  const auto& mem = enc.memory().values();
  out << mem.size() << '\n';
  for (size_t i = 0; i < mem.size(); ++i) {
    if (i > 0) out << ' ';
    out << mem[i];
  }
  out << '\n';
  return out.str();
}

void DeserializeMemory(const std::string& text, nn::Encoder* enc,
                       const std::string& source) {
  std::istringstream in(text);
  size_t count = 0;
  if (!(in >> count)) {
    throw std::runtime_error(source + ": bad memory section");
  }
  if (!enc->has_memory()) {
    if (count != 0) {
      throw std::runtime_error(source + ": unexpected memory block");
    }
    return;
  }
  auto& mem = enc->memory().values();
  if (count != mem.size()) {
    throw std::runtime_error(source + ": memory size mismatch");
  }
  for (double& v : mem) {
    if (!(in >> v)) {
      throw std::runtime_error(source + ": truncated memory values");
    }
  }
  enc->memory().RecomputeWrittenFlags();
}

}  // namespace

Trainer::Trainer(const NeuTrajConfig& cfg, const Grid& grid,
                 std::vector<Trajectory> seeds, const DistanceMatrix& seed_dists)
    : cfg_(cfg),
      seeds_(std::move(seeds)),
      guidance_(seed_dists, cfg),
      model_(cfg, grid),
      rng_(cfg.rng_seed),
      adam_(model_.encoder().Params(), MakeAdamOptions(cfg)) {
  cfg_.Validate();
  if (seeds_.size() < 2) {
    throw std::invalid_argument("Trainer: need at least 2 seed trajectories");
  }
  if (seed_dists.size() != seeds_.size()) {
    throw std::invalid_argument("Trainer: distance matrix size mismatch");
  }
  for (size_t i = 0; i < seeds_.size(); ++i) {
    if (seeds_[i].empty()) {
      throw std::invalid_argument(
          StrFormat("Trainer: seed trajectory %zu is empty", i));
    }
  }
  for (size_t i = 0; i < seed_dists.size(); ++i) {
    for (size_t j = i + 1; j < seed_dists.size(); ++j) {
      const double d = seed_dists.At(i, j);
      if (!std::isfinite(d) || d < 0.0) {
        throw std::invalid_argument(StrFormat(
            "Trainer: seed distance (%zu, %zu) is %g — distances must be "
            "finite and non-negative",
            i, j, d));
      }
    }
  }
  model_.InitializeWeights(&rng_);
}

Trainer::AnchorStats Trainer::ProcessAnchor(size_t anchor, Rng* rng,
                                            nn::GradBuffer* sink,
                                            nn::MemoryWriteLog* write_log,
                                            AnchorScratch* scratch) {
  NEUTRAJ_DCHECK_MSG(anchor < seeds_.size(), "ProcessAnchor: anchor id range");
  AnchorStats out;
  const AnchorSample sample = SampleAnchorPairs(
      guidance_, anchor, cfg_.sampling_num, cfg_.sampling, rng);
  out.pairs = sample.similar.size() + sample.dissimilar.size();

  // Deduplicate the trajectories involved so each is encoded once.
  std::vector<size_t>& ids = scratch->ids;
  ids.clear();
  ids.push_back(anchor);
  auto add_unique = [&ids](size_t id) {
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
  };
  for (size_t id : sample.similar) add_unique(id);
  for (size_t id : sample.dissimilar) add_unique(id);
  if (ids.size() < 2) return out;

  nn::Encoder& enc = model_.encoder();
  // Grow-only: shrinking would destroy warmed-up tape capacity.
  if (scratch->tapes.size() < ids.size()) scratch->tapes.resize(ids.size());
  if (scratch->embeds.size() < ids.size()) {
    scratch->embeds.resize(ids.size());
    scratch->grads.resize(ids.size());
  }
  std::vector<nn::EncodeTape>& tapes = scratch->tapes;
  std::vector<nn::Vector>& embeds = scratch->embeds;
  std::vector<nn::Vector>& grads = scratch->grads;
  for (size_t k = 0; k < ids.size(); ++k) {
    embeds[k] = enc.Encode(seeds_[ids[k]], /*update_memory=*/true, &tapes[k],
                           &scratch->ws, write_log);
    grads[k].assign(cfg_.embedding_dim, 0.0);
  }
  out.encodes = ids.size();
  if (metrics_sink_ != nullptr) {
    // SAM read-attention entropy off the tapes just recorded. Gated on the
    // sink: a log per attention weight per step is too hot to always pay,
    // and the aggregate is only surfaced through the JSONL record.
    for (size_t k = 0; k < ids.size(); ++k) {
      const size_t steps = tapes[k].length;
      for (size_t t = 0; t < steps; ++t) {
        const nn::AttentionTape* att = nullptr;
        if (t < tapes[k].sam_steps.size() && tapes[k].sam_steps[t].used_memory) {
          att = &tapes[k].sam_steps[t].att;
        } else if (t < tapes[k].gru_steps.size() &&
                   tapes[k].gru_steps[t].used_memory) {
          att = &tapes[k].gru_steps[t].att;
        }
        if (att == nullptr || att->all_masked) continue;
        out.entropy_sum += AttentionEntropy(att->a);
        ++out.entropy_steps;
      }
    }
  }
  // seed id -> local index; the id lists are ~2n entries, linear scan wins
  // over a hash map and allocates nothing.
  auto slot = [&ids](size_t id) {
    return static_cast<size_t>(
        std::find(ids.begin(), ids.end(), id) - ids.begin());
  };

  const nn::Vector& e_a = embeds[0];
  double total_loss = 0.0;
  auto apply_pair = [&](size_t other_id, double rank_weight, bool similar_pair) {
    const size_t k = slot(other_id);
    const double f = guidance_.At(anchor, other_id);
    const double g = EmbeddingSimilarity(e_a, embeds[k]);
    PairLoss pl;
    if (cfg_.loss == LossKind::kMse) {
      pl = MsePairLoss(g, f, rank_weight);
    } else if (similar_pair) {
      pl = SimilarPairLoss(g, f, rank_weight);
    } else {
      pl = DissimilarPairLoss(g, f, rank_weight);
    }
    total_loss += pl.loss;
    if (pl.dg != 0.0) {
      BackpropPairSimilarity(e_a, embeds[k], g, pl.dg, &grads[0], &grads[k]);
    }
  };

  if (cfg_.loss == LossKind::kMse) {
    // Siamese: every sampled pair weighted equally.
    const size_t pairs = sample.similar.size() + sample.dissimilar.size();
    const double w = pairs > 0 ? 1.0 / static_cast<double>(pairs) : 0.0;
    for (size_t id : sample.similar) apply_pair(id, w, true);
    for (size_t id : sample.dissimilar) apply_pair(id, w, false);
  } else {
    const std::vector<double> r_sim = RankingWeights(sample.similar.size());
    const std::vector<double> r_dis = RankingWeights(sample.dissimilar.size());
    for (size_t l = 0; l < sample.similar.size(); ++l) {
      apply_pair(sample.similar[l], r_sim[l], true);
    }
    for (size_t l = 0; l < sample.dissimilar.size(); ++l) {
      apply_pair(sample.dissimilar[l], r_dis[l], false);
    }
  }

  for (size_t k = 0; k < ids.size(); ++k) {
    if (nn::SquaredNorm(grads[k]) > 0.0) {
      enc.Backward(tapes[k], grads[k], sink, &scratch->ws);
    }
  }
  out.loss = total_loss;
  return out;
}

std::string Trainer::RunFingerprint() const {
  const Grid& g = model_.grid();
  std::ostringstream grid_sig;
  grid_sig.precision(17);
  grid_sig << g.region().min_x << ',' << g.region().min_y << ','
           << g.region().max_x << ',' << g.region().max_y << ','
           << g.num_cols() << 'x' << g.num_rows();
  return cfg_.Fingerprint() + "|grid=" + grid_sig.str() +
         StrFormat("|seeds=%016llx-%zu",
                   static_cast<unsigned long long>(
                       Fnv1aHash(SerializeTrajectories(seeds_))),
                   seeds_.size());
}

std::string Trainer::SerializeState() const {
  SectionWriter w(kCheckpointKind);
  w.Add("run", RunFingerprint());

  std::ostringstream progress;
  progress.precision(17);
  // Infinity does not round-trip through operator>>, so best_loss travels as
  // a (flag, value) pair; the flag is 0 until the first epoch completes.
  const bool have_best = std::isfinite(best_loss_);
  progress << next_epoch_ << ' ' << stall_ << ' '
           << adam_.options().learning_rate << ' ' << (have_best ? 1 : 0)
           << ' ' << (have_best ? best_loss_ : 0.0);
  w.Add("progress", progress.str());

  std::ostringstream hist;
  hist.precision(17);
  hist << history_.size() << '\n';
  for (const EpochStats& e : history_) {
    hist << e.epoch << ' ' << e.mean_loss << ' ' << e.seconds << '\n';
  }
  w.Add("history", hist.str());

  nn::Encoder& enc = const_cast<NeuTrajModel&>(model_).encoder();
  std::vector<const nn::Param*> params;
  for (nn::Param* p : enc.Params()) params.push_back(p);
  w.Add("params", nn::SerializeParams(params));
  w.Add("memory", SerializeMemory(enc));
  w.Add("adam", adam_.SerializeState());
  w.Add("rng", rng_.SaveState());
  return w.Finish();
}

void Trainer::RestoreState(const std::string& contents,
                           const std::string& source) {
  const SectionReader r(contents, kCheckpointKind, source);
  if (r.Get("run") != RunFingerprint()) {
    throw std::runtime_error(
        source +
        ": checkpoint belongs to a different run (config, grid or seed pool "
        "mismatch)");
  }

  // Parse everything into locals first so a malformed checkpoint cannot
  // leave the trainer half-restored.
  std::istringstream progress(r.Get("progress"));
  size_t next_epoch = 0, stall = 0;
  double lr = 0.0, best_value = 0.0;
  int have_best = 0;
  if (!(progress >> next_epoch >> stall >> lr >> have_best >> best_value) ||
      lr <= 0.0) {
    throw std::runtime_error(source + ": bad progress section");
  }

  std::istringstream hist(r.Get("history"));
  size_t n = 0;
  if (!(hist >> n) || n != next_epoch) {
    throw std::runtime_error(source + ": bad history section");
  }
  std::vector<EpochStats> history(n);
  for (EpochStats& e : history) {
    if (!(hist >> e.epoch >> e.mean_loss >> e.seconds)) {
      throw std::runtime_error(source + ": truncated history section");
    }
  }

  nn::Encoder& enc = model_.encoder();
  nn::DeserializeParams(r.Get("params"), enc.Params());
  DeserializeMemory(r.Get("memory"), &enc, source);
  adam_.DeserializeState(r.Get("adam"));
  rng_.LoadState(r.Get("rng"));

  next_epoch_ = next_epoch;
  stall_ = stall;
  best_loss_ = have_best ? best_value : std::numeric_limits<double>::infinity();
  history_ = std::move(history);
  adam_.set_learning_rate(lr);
}

void Trainer::SaveCheckpoint(const std::string& path) const {
  WriteFileAtomic(path, SerializeState());
}

void Trainer::ResumeFrom(const std::string& path) {
  RestoreState(ReadFile(path), "Trainer::ResumeFrom: " + path);
  resumed_ = true;
}

TrainResult Trainer::Train(const EpochCallback& callback) {
  TrainResult result;
  Stopwatch total;
  if (!resumed_) {
    model_.encoder().ResetMemory();
  }
  result.epochs = history_;

  const std::string checkpoint_path =
      cfg_.checkpoint_dir.empty()
          ? std::string()
          : cfg_.checkpoint_dir + "/" + kCheckpointFile;
  if (!checkpoint_path.empty()) EnsureDirectory(cfg_.checkpoint_dir);

  // The watchdog rolls back to this in-memory snapshot of the last good
  // epoch boundary (same format as the on-disk checkpoint).
  std::string last_good;
  if (cfg_.watchdog) last_good = SerializeState();

  // The watchdog must be the one to observe non-finite losses/parameters so
  // it can roll back; with it armed, checked-build finiteness contracts would
  // abort first, so they are suspended for the duration of training.
  const ScopedSuspendFiniteChecks finite_guard(cfg_.watchdog);

  std::vector<size_t> anchors(seeds_.size());

  // -- Parallel batch machinery ---------------------------------------------
  //
  // A batch is defined as: every anchor samples its pairs from a private RNG
  // stream (seeded by one master-stream draw per anchor, taken in anchor
  // order), encodes against the memory state at the batch start, accumulates
  // its gradients into a private GradBuffer and records its SAM writes into
  // a private log. After all anchors finish, gradients are reduced and
  // memory writes applied in anchor order. Every number is therefore a pure
  // function of the (checkpointed) master RNG stream and the batch start
  // state — never of thread interleaving — so 1 thread and N threads are
  // bit-for-bit identical and cfg_.threads can change across a
  // checkpoint/resume boundary.
  const size_t nthreads = std::max<size_t>(1, cfg_.threads);
  std::unique_ptr<ThreadPool> pool;
  if (nthreads > 1) pool = std::make_unique<ThreadPool>(nthreads);
  std::vector<AnchorScratch> scratches(nthreads);
  const std::vector<nn::Param*> params = model_.encoder().Params();
  std::vector<nn::GradBuffer> anchor_grads;
  anchor_grads.reserve(cfg_.batch_size);
  for (size_t k = 0; k < cfg_.batch_size; ++k) anchor_grads.emplace_back(params);
  std::vector<nn::MemoryWriteLog> anchor_writes(cfg_.batch_size);
  std::vector<AnchorStats> anchor_stats(cfg_.batch_size);
  std::vector<uint64_t> anchor_seeds(cfg_.batch_size, 0);

  // Global-registry training gauges/counters, resolved once. These mirror
  // the per-epoch EpochStats for processes that scrape the registry
  // (RenderPrometheus) instead of reading the JSONL stream.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Gauge& g_epoch = reg.GetGauge("train/epoch");
  obs::Gauge& g_loss = reg.GetGauge("train/mean_loss");
  obs::Gauge& g_grad_norm = reg.GetGauge("train/grad_norm");
  obs::Gauge& g_lr = reg.GetGauge("train/learning_rate");
  obs::Gauge& g_tps = reg.GetGauge("train/trajs_per_sec");
  obs::Counter& c_epochs = reg.GetCounter("train/epochs_completed");
  obs::Counter& c_pairs = reg.GetCounter("train/sampled_pairs");
  obs::Counter& c_encodes = reg.GetCounter("train/encoded_trajs");
  obs::Counter& c_rollbacks = reg.GetCounter("train/watchdog_rollbacks");

  size_t rollbacks = 0;          // Total watchdog trips this Train() call.
  size_t consecutive_trips = 0;  // Trips since the last clean epoch.
  while (next_epoch_ < cfg_.epochs) {
    NEUTRAJ_TRACE_SPAN("trainer/epoch");
    const size_t epoch = next_epoch_;
    Stopwatch sw;
    // The anchor order must be a pure function of the checkpointed RNG
    // stream: start from the identity each epoch (rather than shuffling the
    // previous epoch's order in place) so a resumed run visits anchors in
    // exactly the order the uninterrupted run would have.
    std::iota(anchors.begin(), anchors.end(), size_t{0});
    rng_.Shuffle(&anchors);
    double epoch_loss = 0.0;
    size_t processed = 0;
    uint64_t epoch_pairs = 0;
    uint64_t epoch_encodes = 0;
    double entropy_sum = 0.0;
    uint64_t entropy_steps = 0;
    double grad_norm_sum = 0.0;
    size_t opt_steps = 0;
    std::string trip;  // Non-empty once the watchdog fires.
    for (size_t start = 0; start < anchors.size() && trip.empty();
         start += cfg_.batch_size) {
      const size_t end = std::min(start + cfg_.batch_size, anchors.size());
      const size_t bs = end - start;

      // Per-anchor RNG streams, seeded from the master stream in anchor
      // order (the only master draws of the batch).
      for (size_t k = 0; k < bs; ++k) anchor_seeds[k] = rng_.engine()();
      for (size_t k = 0; k < bs; ++k) {
        anchor_grads[k].Zero();
        anchor_writes[k].clear();
      }

      auto run_range = [&](size_t lo, size_t hi, AnchorScratch* scratch) {
        for (size_t k = lo; k < hi; ++k) {
          Rng anchor_rng(anchor_seeds[k]);
          anchor_stats[k] =
              ProcessAnchor(anchors[start + k], &anchor_rng, &anchor_grads[k],
                            &anchor_writes[k], scratch);
        }
      };
      if (pool != nullptr && bs > 1) {
        const size_t workers = std::min(nthreads, bs);
        const size_t chunk = (bs + workers - 1) / workers;
        size_t widx = 0;
        for (size_t lo = 0; lo < bs; lo += chunk, ++widx) {
          const size_t hi = std::min(lo + chunk, bs);
          AnchorScratch* scratch = &scratches[widx];
          pool->Submit([&run_range, lo, hi, scratch] { run_range(lo, hi, scratch); });
        }
        pool->Wait();  // Rethrows the first worker exception, if any.
      } else {
        run_range(0, bs, &scratches[0]);
      }

      // Ordered commit: watchdog checks, gradient reduction and memory
      // writes all happen in anchor order, on one thread.
      for (size_t k = 0; k < bs && trip.empty(); ++k) {
        const double loss = anchor_stats[k].loss;
        if (cfg_.watchdog && !std::isfinite(loss)) {
          trip = StrFormat("non-finite loss %g for anchor %zu", loss,
                           anchors[start + k]);
        } else if (cfg_.watchdog && cfg_.divergence_loss_threshold > 0.0 &&
                   loss > cfg_.divergence_loss_threshold) {
          trip = StrFormat("anchor %zu loss %g exceeds threshold %g",
                           anchors[start + k], loss,
                           cfg_.divergence_loss_threshold);
        }
      }
      if (!trip.empty()) break;  // Rollback discards the whole epoch anyway.
      nn::ZeroGrads(params);
      for (size_t k = 0; k < bs; ++k) {
        anchor_grads[k].AddTo(params);
        if (model_.encoder().has_memory()) {
          model_.encoder().memory().ApplyWrites(anchor_writes[k]);
        }
        epoch_loss += anchor_stats[k].loss;
        epoch_pairs += anchor_stats[k].pairs;
        epoch_encodes += anchor_stats[k].encodes;
        entropy_sum += anchor_stats[k].entropy_sum;
        entropy_steps += anchor_stats[k].entropy_steps;
        ++processed;
      }
      // Average gradients over the anchors in the batch.
      const double inv = 1.0 / static_cast<double>(bs);
      for (nn::Param* p : params) {
        for (double& g : p->grad.values()) g *= inv;
      }
      grad_norm_sum += adam_.Step();
      ++opt_steps;
      if (cfg_.watchdog && nn::HasNonFiniteValues(params)) {
        trip = "non-finite parameter after optimizer step";
      }
    }

    if (!trip.empty()) {
      DivergenceEvent ev;
      ev.epoch = epoch;
      ev.reason = trip;
      c_rollbacks.Increment();
      obs::FlightRecorder::Global().RecordEvent("trainer/watchdog_rollback",
                                               static_cast<double>(epoch));
      obs::FlightRecorder::Global().DumpToStderr("divergence watchdog rollback");
      // Roll back to the last good epoch boundary; the abandoned epoch's
      // gradients, memory writes and RNG draws are all discarded.
      RestoreState(last_good, "Trainer watchdog rollback");
      if (rollbacks >= cfg_.max_divergence_rollbacks) {
        ev.new_learning_rate = adam_.options().learning_rate;
        result.divergence_events.push_back(std::move(ev));
        result.diverged = true;
        break;
      }
      ++rollbacks;
      ++consecutive_trips;
      // The snapshot predates any decay applied since the last clean epoch,
      // so compound the decay over the consecutive trips from it.
      const double lr =
          adam_.options().learning_rate *
          std::pow(cfg_.divergence_lr_decay,
                   static_cast<double>(consecutive_trips));
      adam_.set_learning_rate(lr);
      ev.new_learning_rate = lr;
      result.divergence_events.push_back(std::move(ev));
      continue;
    }
    consecutive_trips = 0;

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = processed > 0 ? epoch_loss / static_cast<double>(processed) : 0.0;
    stats.seconds = sw.ElapsedSeconds();
    stats.grad_norm =
        opt_steps > 0 ? grad_norm_sum / static_cast<double>(opt_steps) : 0.0;
    stats.learning_rate = adam_.options().learning_rate;
    stats.sampled_pairs = epoch_pairs;
    stats.encoded_trajs = epoch_encodes;
    stats.trajs_per_sec =
        stats.seconds > 0.0
            ? static_cast<double>(epoch_encodes) / stats.seconds
            : 0.0;
    const uint64_t requested_pairs =
        static_cast<uint64_t>(processed) * 2 * cfg_.sampling_num;
    stats.sampler_fill =
        requested_pairs > 0 ? static_cast<double>(epoch_pairs) /
                                  static_cast<double>(requested_pairs)
                            : 0.0;
    stats.sam_attention_entropy =
        entropy_steps > 0 ? entropy_sum / static_cast<double>(entropy_steps)
                          : 0.0;

    g_epoch.Set(static_cast<double>(epoch));
    g_loss.Set(stats.mean_loss);
    g_grad_norm.Set(stats.grad_norm);
    g_lr.Set(stats.learning_rate);
    g_tps.Set(stats.trajs_per_sec);
    c_epochs.Increment();
    c_pairs.Add(epoch_pairs);
    c_encodes.Add(epoch_encodes);

    if (metrics_sink_ != nullptr) {
      metrics_sink_->Write({
          {"epoch", static_cast<double>(stats.epoch)},
          {"mean_loss", stats.mean_loss},
          {"seconds", stats.seconds},
          {"grad_norm", stats.grad_norm},
          {"learning_rate", stats.learning_rate},
          {"sampled_pairs", static_cast<double>(stats.sampled_pairs)},
          {"encoded_trajs", static_cast<double>(stats.encoded_trajs)},
          {"trajs_per_sec", stats.trajs_per_sec},
          {"sampler_fill", stats.sampler_fill},
          {"sam_attention_entropy", stats.sam_attention_entropy},
      });
    }

    result.epochs.push_back(stats);
    history_.push_back(stats);
    ++next_epoch_;

    // Early-stop bookkeeping happens before the snapshot/checkpoint so a
    // resumed run replays the plateau detector bit-for-bit; the actual stop
    // is deferred below so the callback still sees the final epoch.
    bool plateau_stop = false;
    if (cfg_.early_stop_tol > 0.0) {
      if (stats.mean_loss < best_loss_ * (1.0 - cfg_.early_stop_tol)) {
        best_loss_ = stats.mean_loss;
        stall_ = 0;
      } else if (++stall_ >= cfg_.patience) {
        plateau_stop = true;
      }
    }
    best_loss_ = std::min(best_loss_, stats.mean_loss);

    if (cfg_.watchdog) last_good = SerializeState();
    if (!checkpoint_path.empty() && next_epoch_ % cfg_.checkpoint_every == 0) {
      SaveCheckpoint(checkpoint_path);
    }

    if (callback && !callback(stats, model_)) {
      result.early_stopped = true;
      break;
    }
    if (plateau_stop) {
      result.early_stopped = true;
      break;
    }
  }
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace neutraj
