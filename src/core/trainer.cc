#include "core/trainer.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "common/stopwatch.h"
#include "core/loss.h"

namespace neutraj {

namespace {

nn::AdamOptions MakeAdamOptions(const NeuTrajConfig& cfg) {
  nn::AdamOptions o;
  o.learning_rate = cfg.learning_rate;
  o.clip_norm = cfg.clip_norm;
  return o;
}

}  // namespace

Trainer::Trainer(const NeuTrajConfig& cfg, const Grid& grid,
                 std::vector<Trajectory> seeds, const DistanceMatrix& seed_dists)
    : cfg_(cfg),
      seeds_(std::move(seeds)),
      guidance_(seed_dists, cfg),
      model_(cfg, grid),
      rng_(cfg.rng_seed),
      adam_(model_.encoder().Params(), MakeAdamOptions(cfg)) {
  cfg_.Validate();
  if (seeds_.size() < 2) {
    throw std::invalid_argument("Trainer: need at least 2 seed trajectories");
  }
  if (seed_dists.size() != seeds_.size()) {
    throw std::invalid_argument("Trainer: distance matrix size mismatch");
  }
  model_.InitializeWeights(&rng_);
}

double Trainer::ProcessAnchor(size_t anchor) {
  const AnchorSample sample = SampleAnchorPairs(
      guidance_, anchor, cfg_.sampling_num, cfg_.sampling, &rng_);

  // Deduplicate the trajectories involved so each is encoded once.
  std::vector<size_t> ids;
  ids.push_back(anchor);
  auto add_unique = [&ids](size_t id) {
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
  };
  for (size_t id : sample.similar) add_unique(id);
  for (size_t id : sample.dissimilar) add_unique(id);
  if (ids.size() < 2) return 0.0;

  nn::Encoder& enc = model_.encoder();
  std::unordered_map<size_t, size_t> slot;  // seed id -> local index
  std::vector<nn::EncodeTape> tapes(ids.size());
  std::vector<nn::Vector> embeds(ids.size());
  std::vector<nn::Vector> grads(ids.size());
  for (size_t k = 0; k < ids.size(); ++k) {
    slot[ids[k]] = k;
    embeds[k] = enc.Encode(seeds_[ids[k]], /*update_memory=*/true, &tapes[k]);
    grads[k].assign(cfg_.embedding_dim, 0.0);
  }

  const nn::Vector& e_a = embeds[0];
  double total_loss = 0.0;
  auto apply_pair = [&](size_t other_id, double rank_weight, bool similar_pair) {
    const size_t k = slot[other_id];
    const double f = guidance_.At(anchor, other_id);
    const double g = EmbeddingSimilarity(e_a, embeds[k]);
    PairLoss pl;
    if (cfg_.loss == LossKind::kMse) {
      pl = MsePairLoss(g, f, rank_weight);
    } else if (similar_pair) {
      pl = SimilarPairLoss(g, f, rank_weight);
    } else {
      pl = DissimilarPairLoss(g, f, rank_weight);
    }
    total_loss += pl.loss;
    if (pl.dg != 0.0) {
      BackpropPairSimilarity(e_a, embeds[k], g, pl.dg, &grads[0], &grads[k]);
    }
  };

  if (cfg_.loss == LossKind::kMse) {
    // Siamese: every sampled pair weighted equally.
    const size_t pairs = sample.similar.size() + sample.dissimilar.size();
    const double w = pairs > 0 ? 1.0 / static_cast<double>(pairs) : 0.0;
    for (size_t id : sample.similar) apply_pair(id, w, true);
    for (size_t id : sample.dissimilar) apply_pair(id, w, false);
  } else {
    const std::vector<double> r_sim = RankingWeights(sample.similar.size());
    const std::vector<double> r_dis = RankingWeights(sample.dissimilar.size());
    for (size_t l = 0; l < sample.similar.size(); ++l) {
      apply_pair(sample.similar[l], r_sim[l], true);
    }
    for (size_t l = 0; l < sample.dissimilar.size(); ++l) {
      apply_pair(sample.dissimilar[l], r_dis[l], false);
    }
  }

  for (size_t k = 0; k < ids.size(); ++k) {
    if (nn::SquaredNorm(grads[k]) > 0.0) enc.Backward(tapes[k], grads[k]);
  }
  return total_loss;
}

TrainResult Trainer::Train(const EpochCallback& callback) {
  TrainResult result;
  Stopwatch total;
  model_.encoder().ResetMemory();

  std::vector<size_t> anchors(seeds_.size());
  std::iota(anchors.begin(), anchors.end(), size_t{0});

  double best_loss = std::numeric_limits<double>::infinity();
  size_t stall = 0;
  for (size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    Stopwatch sw;
    rng_.Shuffle(&anchors);
    double epoch_loss = 0.0;
    size_t processed = 0;
    for (size_t start = 0; start < anchors.size(); start += cfg_.batch_size) {
      const size_t end = std::min(start + cfg_.batch_size, anchors.size());
      nn::ZeroGrads(model_.encoder().Params());
      for (size_t k = start; k < end; ++k) {
        epoch_loss += ProcessAnchor(anchors[k]);
        ++processed;
      }
      // Average gradients over the anchors in the batch.
      const double inv = 1.0 / static_cast<double>(end - start);
      for (nn::Param* p : model_.encoder().Params()) {
        for (double& g : p->grad.values()) g *= inv;
      }
      adam_.Step();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = processed > 0 ? epoch_loss / static_cast<double>(processed) : 0.0;
    stats.seconds = sw.ElapsedSeconds();
    result.epochs.push_back(stats);

    if (callback && !callback(stats, model_)) {
      result.early_stopped = true;
      break;
    }
    if (cfg_.early_stop_tol > 0.0) {
      if (stats.mean_loss < best_loss * (1.0 - cfg_.early_stop_tol)) {
        best_loss = stats.mean_loss;
        stall = 0;
      } else if (++stall >= cfg_.patience) {
        result.early_stopped = true;
        break;
      }
    }
    best_loss = std::min(best_loss, stats.mean_loss);
  }
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace neutraj
