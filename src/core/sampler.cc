#include "core/sampler.h"

#include <algorithm>

#include "common/check.h"

namespace neutraj {

namespace {

/// Sorts `ids` by similarity to the anchor row; ascending if `ascending`.
void SortBySimilarity(const SimilarityMatrix& s, size_t anchor,
                      std::vector<size_t>* ids, bool ascending) {
  const double* row = s.Row(anchor);
  std::sort(ids->begin(), ids->end(), [&](size_t a, size_t b) {
    return ascending ? row[a] < row[b] : row[a] > row[b];
  });
}

}  // namespace

AnchorSample SampleAnchorPairs(const SimilarityMatrix& s, size_t anchor,
                               size_t n, SamplingStrategy strategy, Rng* rng) {
  const size_t pool = s.size();
  NEUTRAJ_DCHECK_MSG(anchor < pool, "SampleAnchorPairs: anchor id range");
  AnchorSample out;
  out.anchor = anchor;
  if (pool < 2 || n == 0) return out;

  if (strategy == SamplingStrategy::kDistanceWeighted) {
    // Importance weights I_a = S[a, .], anchor zeroed out.
    std::vector<double> w_sim = s.RowVector(anchor);
    w_sim[anchor] = 0.0;
    out.similar = rng->WeightedSampleWithoutReplacement(w_sim, n);

    // Dissimilar weights 1 - S[a, .]; exclude anchor and the similar picks.
    std::vector<double> w_dis(pool);
    const double* row = s.Row(anchor);
    for (size_t j = 0; j < pool; ++j) w_dis[j] = std::max(0.0, 1.0 - row[j]);
    w_dis[anchor] = 0.0;
    for (size_t j : out.similar) w_dis[j] = 0.0;
    out.dissimilar = rng->WeightedSampleWithoutReplacement(w_dis, n);
  } else {
    // Uniform: draw 2n distinct non-anchor indices, split in half.
    const size_t want = std::min(2 * n, pool - 1);
    std::vector<size_t> draw = rng->SampleIndices(pool - 1, want);
    // Map [0, pool-2] onto [0, pool-1] \ {anchor}.
    for (size_t& idx : draw) {
      if (idx >= anchor) ++idx;
    }
    const size_t half = std::min(n, draw.size());
    out.similar.assign(draw.begin(), draw.begin() + static_cast<long>(half));
    out.dissimilar.assign(draw.begin() + static_cast<long>(half), draw.end());
  }

  SortBySimilarity(s, anchor, &out.similar, /*ascending=*/false);
  SortBySimilarity(s, anchor, &out.dissimilar, /*ascending=*/true);
  return out;
}

std::vector<double> RankingWeights(size_t n) {
  std::vector<double> r(n);
  double total = 0.0;
  for (size_t l = 0; l < n; ++l) {
    r[l] = 1.0 / static_cast<double>(l + 1);
    total += r[l];
  }
  for (double& v : r) v /= total;
  return r;
}

}  // namespace neutraj
