#include "core/loss.h"

#include <cmath>

#include "common/check.h"

namespace neutraj {

PairLoss SimilarPairLoss(double g, double f, double r) {
  const double diff = g - f;
  return PairLoss{r * diff * diff, 2.0 * r * diff};
}

PairLoss DissimilarPairLoss(double g, double f, double r) {
  const double diff = g - f;
  if (diff <= 0.0) return PairLoss{0.0, 0.0};
  return PairLoss{r * diff * diff, 2.0 * r * diff};
}

PairLoss MsePairLoss(double g, double f, double w) {
  const double diff = g - f;
  return PairLoss{w * diff * diff, 2.0 * w * diff};
}

void BackpropPairSimilarity(const nn::Vector& e_a, const nn::Vector& e_b,
                            double g, double dg, nn::Vector* de_a,
                            nn::Vector* de_b) {
  NEUTRAJ_DCHECK_MSG(e_a.size() == e_b.size(),
                     "BackpropPairSimilarity: embedding widths must match");
  NEUTRAJ_DCHECK_MSG(de_a != nullptr && de_a->size() == e_a.size() &&
                         de_b != nullptr && de_b->size() == e_b.size(),
                     "BackpropPairSimilarity: gradient accumulators must be "
                     "pre-sized");
  // g = exp(-dist), dist = ||e_a - e_b||.
  // dL/de_a = dg * dg/ddist * ddist/de_a = dg * (-g) * (e_a - e_b) / dist.
  const double dist = nn::L2Distance(e_a, e_b);
  if (dist < 1e-12) return;  // Gradient direction undefined; skip.
  const double scale = -dg * g / dist;
  for (size_t k = 0; k < e_a.size(); ++k) {
    const double diff = e_a[k] - e_b[k];
    (*de_a)[k] += scale * diff;
    (*de_b)[k] -= scale * diff;
  }
}

}  // namespace neutraj
