#include "core/embedding_db.h"

#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/errors.h"
#include "common/file_util.h"
#include "common/framing.h"
#include "common/stopwatch.h"

namespace neutraj {

namespace {

constexpr char kDbKind[] = "embdb";

}  // namespace

EmbeddingDatabase::EmbeddingDatabase() {
  AttachMetrics(&obs::MetricsRegistry::Global());
}

EmbeddingDatabase::EmbeddingDatabase(EmbeddingDatabase&& other) noexcept
    : dim_(other.dim_),
      embeddings_(std::move(other.embeddings_)),
      build_us_(other.build_us_),
      insert_us_(other.insert_us_),
      topk_us_(other.topk_us_),
      corpus_size_(other.corpus_size_) {}

EmbeddingDatabase& EmbeddingDatabase::operator=(
    EmbeddingDatabase&& other) noexcept NEUTRAJ_NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    dim_ = other.dim_;
    embeddings_ = std::move(other.embeddings_);
    build_us_ = other.build_us_;
    insert_us_ = other.insert_us_;
    topk_us_ = other.topk_us_;
    corpus_size_ = other.corpus_size_;
  }
  return *this;
}

void EmbeddingDatabase::AttachMetrics(obs::MetricsRegistry* registry) {
  build_us_ = &registry->GetHistogram("db/build_us");
  insert_us_ = &registry->GetHistogram("db/insert_us");
  topk_us_ = &registry->GetHistogram("db/topk_us");
  corpus_size_ = &registry->GetGauge("db/corpus_size");
  size_t count = 0;
  {
    ReaderLock lock(mu_);
    count = embeddings_.size();
  }
  corpus_size_->Set(static_cast<double>(count));
}

EmbeddingDatabase EmbeddingDatabase::Build(const NeuTrajModel& model,
                                           const std::vector<Trajectory>& corpus,
                                           size_t threads) {
  Stopwatch sw;
  // Encode into locals, then publish under the writer lock: the database is
  // not shared yet, but static member functions are inside the thread-safety
  // analysis boundary, so the guarded members are only touched while their
  // capability is held.
  std::vector<nn::Vector> embeddings = threads > 1
                                           ? model.EmbedAllParallel(corpus, threads)
                                           : model.EmbedAll(corpus);
  const size_t dim = embeddings.empty() ? 0 : embeddings.front().size();
  const size_t count = embeddings.size();
  EmbeddingDatabase db;
  {
    WriterLock lock(db.mu_);
    db.embeddings_ = std::move(embeddings);
    db.dim_ = dim;
  }
  db.build_us_->Record(sw.ElapsedMillis() * 1e3);
  db.corpus_size_->Set(static_cast<double>(count));
  return db;
}

size_t EmbeddingDatabase::size() const {
  ReaderLock lock(mu_);
  return embeddings_.size();
}

size_t EmbeddingDatabase::dim() const {
  ReaderLock lock(mu_);
  return dim_;
}

size_t EmbeddingDatabase::Insert(const nn::Vector& embedding) {
  if (embedding.empty()) {
    throw std::invalid_argument("EmbeddingDatabase::Insert: empty embedding");
  }
  NEUTRAJ_DCHECK_FINITE(embedding);
  Stopwatch sw;
  size_t id = 0;
  size_t new_size = 0;
  {
    WriterLock lock(mu_);
    if (embeddings_.empty()) {
      dim_ = embedding.size();
    } else if (embedding.size() != dim_) {
      throw std::invalid_argument(
          "EmbeddingDatabase::Insert: embedding dimension " +
          std::to_string(embedding.size()) + " != database dimension " +
          std::to_string(dim_));
    }
    embeddings_.push_back(embedding);
    new_size = embeddings_.size();
    id = new_size - 1;
  }
  insert_us_->Record(sw.ElapsedMillis() * 1e3);
  corpus_size_->Set(static_cast<double>(new_size));
  return id;
}

size_t EmbeddingDatabase::Insert(const NeuTrajModel& model,
                                 const Trajectory& traj) {
  // Embed before taking the writer lock: encoding is the expensive part and
  // must not serialize against concurrent readers.
  return Insert(model.Embed(traj));
}

SearchResult EmbeddingDatabase::TopK(const nn::Vector& query, size_t k,
                                     int64_t exclude) const {
  Stopwatch sw;
  ReaderLock lock(mu_);
  if (!embeddings_.empty() && query.size() != dim_) {
    throw std::invalid_argument("EmbeddingDatabase::TopK: query dimension " +
                                std::to_string(query.size()) +
                                " != database dimension " +
                                std::to_string(dim_));
  }
  // EmbeddingTopK resolves distance ties by ascending id (see
  // core/search.cc TopKImpl), so results are deterministic for a fixed
  // corpus state regardless of duplicate embeddings.
  SearchResult result = EmbeddingTopK(embeddings_, query, k, exclude);
  topk_us_->Record(sw.ElapsedMillis() * 1e3);
  return result;
}

SearchResult EmbeddingDatabase::TopK(const NeuTrajModel& model,
                                     const Trajectory& query, size_t k,
                                     int64_t exclude) const {
  return TopK(model.Embed(query), k, exclude);
}

SearchResult EmbeddingDatabase::TopKOf(const nn::Vector& query,
                                       const std::vector<size_t>& candidates,
                                       size_t k, int64_t exclude) const {
  Stopwatch sw;
  ReaderLock lock(mu_);
  if (!embeddings_.empty() && query.size() != dim_) {
    throw std::invalid_argument(
        "EmbeddingDatabase::TopKOf: query dimension " +
        std::to_string(query.size()) + " != database dimension " +
        std::to_string(dim_));
  }
  for (const size_t id : candidates) {
    if (id >= embeddings_.size()) {
      throw std::out_of_range("EmbeddingDatabase::TopKOf: candidate id " +
                              std::to_string(id) + " >= corpus size " +
                              std::to_string(embeddings_.size()));
    }
  }
  SearchResult result = EmbeddingTopKOf(embeddings_, query, candidates, k,
                                        exclude);
  topk_us_->Record(sw.ElapsedMillis() * 1e3);
  return result;
}

std::string EmbeddingDatabase::Serialize() const {
  ReaderLock lock(mu_);
  SectionWriter w(kDbKind);
  std::ostringstream head;
  head << embeddings_.size() << ' ' << dim_;
  w.Add("shape", head.str());

  std::ostringstream data;
  data.precision(17);
  for (const nn::Vector& e : embeddings_) {
    for (size_t k = 0; k < e.size(); ++k) {
      if (k > 0) data << ' ';
      data << e[k];
    }
    data << '\n';
  }
  w.Add("embeddings", data.str());
  return w.Finish();
}

void EmbeddingDatabase::Save(const std::string& path) const {
  WriteFileAtomic(path, Serialize());
}

EmbeddingDatabase EmbeddingDatabase::Deserialize(const std::string& contents,
                                                 const std::string& source) {
  const SectionReader r(contents, kDbKind, source);

  std::istringstream head(r.Get("shape"));
  size_t count = 0, dim = 0;
  if (!(head >> count >> dim) || (count > 0 && dim == 0)) {
    throw CorruptionError(source, "shape", 0,
                          "bad shape '" + r.Get("shape") + "'");
  }

  // Same shape as Build: parse into locals, publish under the writer lock.
  std::vector<nn::Vector> embeddings(count, nn::Vector(dim));
  std::istringstream data(r.Get("embeddings"));
  for (size_t i = 0; i < embeddings.size(); ++i) {
    nn::Vector& e = embeddings[i];
    for (double& v : e) {
      if (!(data >> v)) {
        throw CorruptionError(source, "embeddings", i,
                              "truncated values (at embedding " +
                                  std::to_string(i) + " of " +
                                  std::to_string(count) + ")");
      }
    }
    NEUTRAJ_DCHECK_FINITE(e);
  }
  EmbeddingDatabase db;
  {
    WriterLock lock(db.mu_);
    db.dim_ = dim;
    db.embeddings_ = std::move(embeddings);
  }
  db.corpus_size_->Set(static_cast<double>(count));
  return db;
}

EmbeddingDatabase EmbeddingDatabase::Load(const std::string& path) {
  return Deserialize(ReadFile(path), "EmbeddingDatabase::Load: " + path);
}

}  // namespace neutraj
