#include "core/embedding_db.h"

#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/file_util.h"
#include "common/framing.h"

namespace neutraj {

namespace {

constexpr char kDbKind[] = "embdb";

}  // namespace

EmbeddingDatabase EmbeddingDatabase::Build(const NeuTrajModel& model,
                                           const std::vector<Trajectory>& corpus,
                                           size_t threads) {
  EmbeddingDatabase db;
  db.embeddings_ = threads > 1 ? model.EmbedAllParallel(corpus, threads)
                               : model.EmbedAll(corpus);
  db.dim_ = db.embeddings_.empty() ? 0 : db.embeddings_.front().size();
  return db;
}

SearchResult EmbeddingDatabase::TopK(const nn::Vector& query, size_t k,
                                     int64_t exclude) const {
  if (!embeddings_.empty() && query.size() != dim_) {
    throw std::invalid_argument("EmbeddingDatabase::TopK: query dimension " +
                                std::to_string(query.size()) +
                                " != database dimension " +
                                std::to_string(dim_));
  }
  return EmbeddingTopK(embeddings_, query, k, exclude);
}

SearchResult EmbeddingDatabase::TopK(const NeuTrajModel& model,
                                     const Trajectory& query, size_t k,
                                     int64_t exclude) const {
  return TopK(model.Embed(query), k, exclude);
}

void EmbeddingDatabase::Save(const std::string& path) const {
  SectionWriter w(kDbKind);
  std::ostringstream head;
  head << embeddings_.size() << ' ' << dim_;
  w.Add("shape", head.str());

  std::ostringstream data;
  data.precision(17);
  for (const nn::Vector& e : embeddings_) {
    for (size_t k = 0; k < e.size(); ++k) {
      if (k > 0) data << ' ';
      data << e[k];
    }
    data << '\n';
  }
  w.Add("embeddings", data.str());
  WriteFileAtomic(path, w.Finish());
}

EmbeddingDatabase EmbeddingDatabase::Load(const std::string& path) {
  const std::string source = "EmbeddingDatabase::Load: " + path;
  const SectionReader r(ReadFile(path), kDbKind, source);

  std::istringstream head(r.Get("shape"));
  size_t count = 0, dim = 0;
  if (!(head >> count >> dim) || (count > 0 && dim == 0)) {
    throw std::runtime_error(source + ": bad shape section");
  }

  EmbeddingDatabase db;
  db.dim_ = dim;
  db.embeddings_.assign(count, nn::Vector(dim));
  std::istringstream data(r.Get("embeddings"));
  for (nn::Vector& e : db.embeddings_) {
    for (double& v : e) {
      if (!(data >> v)) {
        throw std::runtime_error(source + ": truncated embedding values");
      }
    }
    NEUTRAJ_DCHECK_FINITE(e);
  }
  return db;
}

}  // namespace neutraj
