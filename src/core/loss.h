// Pair-wise losses (paper Eqs. 8-9) and their derivatives w.r.t. the
// predicted similarity g.

#ifndef NEUTRAJ_CORE_LOSS_H_
#define NEUTRAJ_CORE_LOSS_H_

#include "nn/matrix.h"

namespace neutraj {

/// Loss value and its derivative dL/dg for one pair.
struct PairLoss {
  double loss = 0.0;
  double dg = 0.0;
};

/// Similar-pair term (Eq. 8): r * (g - f)^2.
PairLoss SimilarPairLoss(double g, double f, double r);

/// Dissimilar-pair margin term (Eq. 9): r * ReLU(g - f)^2. Zero (and flat)
/// when the predicted similarity is already below the ground truth.
PairLoss DissimilarPairLoss(double g, double f, double r);

/// Plain weighted MSE term for the Siamese baseline: w * (g - f)^2.
PairLoss MsePairLoss(double g, double f, double w);

/// Backpropagates a pair similarity: given g = exp(-||e_a - e_b||) and
/// dL/dg, adds dL/de_a into `de_a` and dL/de_b into `de_b` (both pre-sized).
/// Numerically safe at e_a == e_b (gradient treated as zero there).
void BackpropPairSimilarity(const nn::Vector& e_a, const nn::Vector& e_b,
                            double g, double dg, nn::Vector* de_a,
                            nn::Vector* de_b);

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_LOSS_H_
