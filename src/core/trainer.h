// Seed-guided metric-learning trainer (paper Sec. V).
//
// Takes the seed pool, its exact distance matrix and a config; iterates
// anchors with the configured sampling strategy and loss, backpropagates
// through time, and optimizes with Adam. The same trainer realizes NeuTraj,
// both ablations and the Siamese baseline via NeuTrajConfig presets.

#ifndef NEUTRAJ_CORE_TRAINER_H_
#define NEUTRAJ_CORE_TRAINER_H_

#include <functional>
#include <vector>

#include "core/model.h"
#include "core/sampler.h"
#include "nn/adam.h"

namespace neutraj {

/// Per-epoch training telemetry.
struct EpochStats {
  size_t epoch = 0;        ///< 0-based epoch index.
  double mean_loss = 0.0;  ///< Mean anchor loss over the epoch.
  double seconds = 0.0;    ///< Wall-clock epoch time.
};

/// Full training run telemetry.
struct TrainResult {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;
  bool early_stopped = false;
};

/// Called after every epoch with the stats and the in-training model (e.g.
/// to compute validation HR for convergence curves). Returning false stops
/// training.
using EpochCallback = std::function<bool(const EpochStats&, NeuTrajModel&)>;

/// Trains one model over a fixed seed pool.
class Trainer {
 public:
  /// `seed_dists` must be the exact pairwise distances of `seeds` under
  /// cfg.measure. Throws std::invalid_argument on size mismatch or a pool
  /// smaller than 2.
  Trainer(const NeuTrajConfig& cfg, const Grid& grid,
          std::vector<Trajectory> seeds, const DistanceMatrix& seed_dists);

  /// Runs up to cfg.epochs epochs (with optional early stopping).
  TrainResult Train(const EpochCallback& callback = nullptr);

  NeuTrajModel& model() { return model_; }
  const std::vector<Trajectory>& seeds() const { return seeds_; }
  const SimilarityMatrix& guidance() const { return guidance_; }

  /// Releases the trained model (trainer is unusable afterwards).
  NeuTrajModel TakeModel() { return std::move(model_); }

 private:
  /// Processes one anchor: samples pairs, encodes, computes the loss and
  /// accumulates gradients. Returns the anchor's loss.
  double ProcessAnchor(size_t anchor);

  NeuTrajConfig cfg_;
  std::vector<Trajectory> seeds_;
  SimilarityMatrix guidance_;
  NeuTrajModel model_;
  Rng rng_;
  nn::Adam adam_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_TRAINER_H_
