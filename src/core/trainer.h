// Seed-guided metric-learning trainer (paper Sec. V).
//
// Takes the seed pool, its exact distance matrix and a config; iterates
// anchors with the configured sampling strategy and loss, backpropagates
// through time, and optimizes with Adam. The same trainer realizes NeuTraj,
// both ablations and the Siamese baseline via NeuTrajConfig presets.
//
// Parallelism: cfg.threads > 1 spreads each batch's anchors across a thread
// pool. Batch semantics make the result independent of the interleaving —
// every anchor samples from a private RNG stream seeded by the master stream
// in anchor order, encodes against the batch-start memory snapshot, and its
// gradients/SAM writes are committed in anchor order — so training is
// bit-for-bit identical for every thread count (see DESIGN.md, "Threading
// model").
//
// Fault tolerance: when cfg.checkpoint_dir is set, a versioned, checksummed
// checkpoint (model params + SAM memory + Adam moments + RNG stream + epoch
// progress) is written atomically every cfg.checkpoint_every epochs, and
// ResumeFrom() continues an interrupted run bit-for-bit. When cfg.watchdog
// is on, NaN/Inf anchor losses, exploding losses and non-finite parameters
// roll training back to the last good epoch with a decayed learning rate
// instead of silently poisoning the model and the SAM memory.

#ifndef NEUTRAJ_CORE_TRAINER_H_
#define NEUTRAJ_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/sampler.h"
#include "nn/adam.h"
#include "nn/workspace.h"
#include "obs/jsonl.h"

namespace neutraj {

/// Per-epoch training telemetry.
///
/// Only epoch / mean_loss / seconds are checkpointed (they existed before
/// the observability layer); the remaining fields are live-run telemetry and
/// read zero for epochs restored from a checkpoint.
struct EpochStats {
  size_t epoch = 0;        ///< 0-based epoch index.
  double mean_loss = 0.0;  ///< Mean anchor loss over the epoch.
  double seconds = 0.0;    ///< Wall-clock epoch time.
  double grad_norm = 0.0;  ///< Mean pre-clip global gradient norm per step.
  double learning_rate = 0.0;   ///< LR in effect when the epoch completed.
  uint64_t sampled_pairs = 0;   ///< Similar + dissimilar pairs drawn.
  uint64_t encoded_trajs = 0;   ///< Trajectory encodes (deduplicated).
  double trajs_per_sec = 0.0;   ///< encoded_trajs / seconds.
  /// Fraction of requested pairs (2 * sampling_num per anchor) the sampler
  /// actually produced; < 1 when neighborhoods run dry.
  double sampler_fill = 0.0;
  /// Mean SAM read-attention entropy (nats) over memory-reading steps.
  /// Computed only when a metrics sink is attached (it costs a log per
  /// attention weight); 0 otherwise and for non-SAM backbones.
  double sam_attention_entropy = 0.0;
};

/// One divergence-watchdog trip.
struct DivergenceEvent {
  size_t epoch = 0;       ///< Epoch that was abandoned and rolled back.
  std::string reason;     ///< What tripped the watchdog.
  double new_learning_rate = 0.0;  ///< LR after the rollback decay.
};

/// Full training run telemetry.
struct TrainResult {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;
  bool early_stopped = false;
  /// Watchdog trips (epoch rolled back, LR decayed); empty on a clean run.
  std::vector<DivergenceEvent> divergence_events;
  /// True if the watchdog exhausted cfg.max_divergence_rollbacks and gave
  /// up; the model holds the last good (pre-divergence) state.
  bool diverged = false;
};

/// Called after every epoch with the stats and the in-training model (e.g.
/// to compute validation HR for convergence curves). Returning false stops
/// training.
using EpochCallback = std::function<bool(const EpochStats&, NeuTrajModel&)>;

/// Trains one model over a fixed seed pool.
class Trainer {
 public:
  /// `seed_dists` must be the exact pairwise distances of `seeds` under
  /// cfg.measure. Throws std::invalid_argument on size mismatch, a pool
  /// smaller than 2, an empty seed trajectory, or a non-finite / negative
  /// distance entry.
  Trainer(const NeuTrajConfig& cfg, const Grid& grid,
          std::vector<Trajectory> seeds, const DistanceMatrix& seed_dists);

  /// Runs up to cfg.epochs epochs (with optional early stopping). After
  /// ResumeFrom(), continues from the checkpointed epoch; the returned
  /// result includes the restored epoch history, so the loss trajectory of
  /// an interrupted-and-resumed run matches the uninterrupted one.
  TrainResult Train(const EpochCallback& callback = nullptr);

  /// Writes the full training state to `path` atomically (CRC-checksummed
  /// sections; see common/framing.h). Can be called at any point, including
  /// from an epoch callback.
  void SaveCheckpoint(const std::string& path) const;

  /// Restores a checkpoint written by SaveCheckpoint for the *same* config
  /// and seed pool (verified via fingerprints). Throws std::runtime_error
  /// on corruption, truncation or a mismatched run.
  void ResumeFrom(const std::string& path);

  NeuTrajModel& model() { return model_; }
  const std::vector<Trajectory>& seeds() const { return seeds_; }
  const SimilarityMatrix& guidance() const { return guidance_; }

  /// Epoch the next Train() call starts at (> 0 after a resume).
  size_t next_epoch() const { return next_epoch_; }

  /// Releases the trained model (trainer is unusable afterwards).
  NeuTrajModel TakeModel() { return std::move(model_); }

  /// Streams one JSON line of telemetry per completed epoch to `sink`
  /// (which must outlive training; nullptr detaches). Attaching a sink also
  /// enables the per-step SAM attention-entropy aggregation, which is too
  /// hot to compute when nobody is listening. Telemetry never feeds back
  /// into training: losses, gradients and RNG draws are bit-for-bit
  /// identical with and without a sink.
  void SetMetricsSink(obs::JsonlSink* sink) { metrics_sink_ = sink; }

 private:
  /// Reusable per-worker buffers for ProcessAnchor: the cell workspace plus
  /// the tapes/embeddings/gradient vectors of one anchor's trajectory set.
  /// One scratch serves one thread.
  struct AnchorScratch {
    nn::CellWorkspace ws;
    std::vector<size_t> ids;
    std::vector<nn::EncodeTape> tapes;
    std::vector<nn::Vector> embeds;
    std::vector<nn::Vector> grads;
  };

  /// What one anchor contributed: the loss the watchdog inspects plus the
  /// telemetry the epoch record aggregates.
  struct AnchorStats {
    double loss = 0.0;
    uint64_t pairs = 0;          ///< Sampled similar + dissimilar pairs.
    uint64_t encodes = 0;        ///< Deduplicated trajectory encodes.
    double entropy_sum = 0.0;    ///< Σ read-attention entropies (nats).
    uint64_t entropy_steps = 0;  ///< Steps contributing to entropy_sum.
  };

  /// Processes one anchor: samples pairs (drawing only from `rng`), encodes
  /// against the current memory snapshot (SAM writes recorded into
  /// `write_log`, not applied), computes the loss and accumulates gradients
  /// into `sink`. Safe to call concurrently for distinct (rng, sink,
  /// write_log, scratch) tuples: every shared input — parameters, guidance,
  /// seeds, memory — is only read.
  AnchorStats ProcessAnchor(size_t anchor, Rng* rng, nn::GradBuffer* sink,
                            nn::MemoryWriteLog* write_log,
                            AnchorScratch* scratch);

  /// Identity of this run (config fingerprint + seed-pool hash); guards
  /// checkpoints against being resumed into a different run.
  std::string RunFingerprint() const;

  /// Serializes the complete mutable training state to checkpoint contents.
  std::string SerializeState() const;

  /// Restores state produced by SerializeState. `source` names the origin
  /// for error messages.
  void RestoreState(const std::string& contents, const std::string& source);

  NeuTrajConfig cfg_;
  std::vector<Trajectory> seeds_;
  SimilarityMatrix guidance_;
  NeuTrajModel model_;
  Rng rng_;
  nn::Adam adam_;

  // Resumable training progress.
  size_t next_epoch_ = 0;
  double best_loss_ = std::numeric_limits<double>::infinity();
  size_t stall_ = 0;
  std::vector<EpochStats> history_;
  bool resumed_ = false;

  obs::JsonlSink* metrics_sink_ = nullptr;  ///< Not owned; may be null.
};

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_TRAINER_H_
