// Training-pair sampling (paper Sec. V-B).
//
// For an anchor seed T_a, the distance-weighted sampler draws n similar
// neighbors with probability proportional to S[a, .] and n dissimilar
// neighbors with probability proportional to (1 - S[a, .]); both lists are
// ranked (similar by decreasing similarity, dissimilar by increasing) so the
// ranking loss can apply reciprocal-rank weights. The random sampler (used
// by NT-No-WS and Siamese) draws both lists uniformly.

#ifndef NEUTRAJ_CORE_SAMPLER_H_
#define NEUTRAJ_CORE_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "core/similarity.h"

namespace neutraj {

/// One anchor's sampled training lists. Both lists hold seed indices and
/// are ranked as required by the ranking loss.
struct AnchorSample {
  size_t anchor = 0;
  std::vector<size_t> similar;    ///< Decreasing S[a, j].
  std::vector<size_t> dissimilar; ///< Increasing S[a, j].
};

/// Samples the training lists for `anchor`.
///
/// Draws up to `n` per list (fewer if the pool is small); the anchor itself
/// is excluded, and the dissimilar list excludes indices already drawn as
/// similar.
AnchorSample SampleAnchorPairs(const SimilarityMatrix& s, size_t anchor,
                               size_t n, SamplingStrategy strategy, Rng* rng);

/// Reciprocal-rank weights r = (1, 1/2, ..., 1/n), normalized to sum to 1.
/// Returns an empty vector for n == 0.
std::vector<double> RankingWeights(size_t n);

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_SAMPLER_H_
