#include "core/config.h"

#include <sstream>
#include <stdexcept>

namespace neutraj {

NeuTrajConfig NeuTrajConfig::NeuTraj() { return NeuTrajConfig{}; }

NeuTrajConfig NeuTrajConfig::NoSam() {
  NeuTrajConfig c;
  c.backbone = nn::Backbone::kLstm;
  return c;
}

NeuTrajConfig NeuTrajConfig::NoWs() {
  NeuTrajConfig c;
  c.sampling = SamplingStrategy::kRandom;
  return c;
}

NeuTrajConfig NeuTrajConfig::Siamese() {
  NeuTrajConfig c;
  c.backbone = nn::Backbone::kLstm;
  c.sampling = SamplingStrategy::kRandom;
  c.loss = LossKind::kMse;
  return c;
}

std::string NeuTrajConfig::VariantName() const {
  const bool sam = backbone == nn::Backbone::kSamLstm;
  const bool ws = sampling == SamplingStrategy::kDistanceWeighted;
  const bool rank = loss == LossKind::kWeightedRanking;
  if (sam && ws && rank) return "NeuTraj";
  if (!sam && ws && rank) return "NT-No-SAM";
  if (sam && !ws && rank) return "NT-No-WS";
  if (!sam && !ws && !rank) return "Siamese";
  return "Custom";
}

std::string NeuTrajConfig::Fingerprint() const {
  std::ostringstream out;
  out.precision(17);
  out << "measure=" << MeasureName(measure)
      << ";transform=" << static_cast<int>(transform) << ";alpha=" << alpha
      << ";alpha_factor=" << alpha_factor
      << ";backbone=" << static_cast<int>(backbone) << ";d=" << embedding_dim
      << ";w=" << scan_width << ";sampling=" << static_cast<int>(sampling)
      << ";loss=" << static_cast<int>(loss) << ";n=" << sampling_num
      << ";batch=" << batch_size << ";epochs=" << epochs
      << ";lr=" << learning_rate << ";clip=" << clip_norm
      << ";estop=" << early_stop_tol << ";patience=" << patience
      << ";seed=" << rng_seed
      << ";memo_inf=" << update_memory_at_inference;
  // Watchdog knobs can change the training trajectory (rollbacks decay the
  // learning rate), so they key the cache; checkpoint_dir/checkpoint_every
  // are pure side effects and deliberately excluded. `threads` is also
  // excluded: the parallel epoch is bit-for-bit identical for every thread
  // count, so checkpoints must resume across thread-count changes.
  out << ";wd=" << watchdog << ";wd_thresh=" << divergence_loss_threshold
      << ";wd_decay=" << divergence_lr_decay
      << ";wd_max=" << max_divergence_rollbacks;
  return out.str();
}

void NeuTrajConfig::Validate() const {
  if (embedding_dim == 0) throw std::invalid_argument("config: embedding_dim == 0");
  if (scan_width < 0) throw std::invalid_argument("config: scan_width < 0");
  if (sampling_num == 0) throw std::invalid_argument("config: sampling_num == 0");
  if (batch_size == 0) throw std::invalid_argument("config: batch_size == 0");
  if (learning_rate <= 0) throw std::invalid_argument("config: learning_rate <= 0");
  if (alpha <= 0 && alpha_factor <= 0) {
    throw std::invalid_argument("config: need alpha > 0 or alpha_factor > 0");
  }
  if (threads == 0) throw std::invalid_argument("config: threads == 0");
  if (checkpoint_every == 0) {
    throw std::invalid_argument("config: checkpoint_every == 0");
  }
  if (divergence_lr_decay <= 0.0 || divergence_lr_decay > 1.0) {
    throw std::invalid_argument("config: divergence_lr_decay outside (0, 1]");
  }
}

}  // namespace neutraj
