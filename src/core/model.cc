#include "core/model.h"

#include <sstream>
#include <stdexcept>

#include "common/file_util.h"
#include "common/framing.h"
#include "common/thread_pool.h"

namespace neutraj {

NeuTrajModel::NeuTrajModel(const NeuTrajConfig& cfg, const Grid& grid)
    : config_(cfg),
      encoder_(std::make_unique<nn::Encoder>(cfg.backbone, grid,
                                             cfg.embedding_dim, cfg.scan_width)) {
  config_.Validate();
}

void NeuTrajModel::InitializeWeights(Rng* rng) { encoder_->Initialize(rng); }

nn::Vector NeuTrajModel::Embed(const Trajectory& traj) const {
  return encoder_->Encode(traj, config_.update_memory_at_inference);
}

nn::Vector NeuTrajModel::Embed(const Trajectory& traj,
                               nn::CellWorkspace* ws) const {
  return encoder_->Encode(traj, config_.update_memory_at_inference,
                          /*tape=*/nullptr, ws);
}

std::vector<nn::Vector> NeuTrajModel::EmbedAll(
    const std::vector<Trajectory>& corpus) const {
  std::vector<nn::Vector> out;
  out.reserve(corpus.size());
  nn::CellWorkspace ws;
  for (const Trajectory& t : corpus) out.push_back(Embed(t, &ws));
  return out;
}

std::vector<nn::Vector> NeuTrajModel::EmbedAllParallel(
    const std::vector<Trajectory>& corpus, size_t num_threads) const {
  if (config_.update_memory_at_inference) {
    throw std::logic_error(
        "EmbedAllParallel: memory-updating inference cannot run in parallel");
  }
  const size_t n = corpus.size();
  std::vector<nn::Vector> out(n);
  if (num_threads <= 1 || n <= 1) {
    nn::CellWorkspace ws;
    for (size_t i = 0; i < n; ++i) out[i] = Embed(corpus[i], &ws);
    return out;
  }
  // Contiguous chunks, one workspace per chunk: workers share the encoder
  // read-only and never share scratch.
  const size_t workers = std::min(num_threads, n);
  std::vector<nn::CellWorkspace> wss(workers);
  ThreadPool pool(workers);
  const size_t chunk = (n + workers - 1) / workers;
  size_t widx = 0;
  for (size_t start = 0; start < n; start += chunk, ++widx) {
    const size_t end = std::min(start + chunk, n);
    nn::CellWorkspace* ws = &wss[widx];
    pool.Submit([this, &corpus, &out, start, end, ws] {
      for (size_t i = start; i < end; ++i) out[i] = Embed(corpus[i], ws);
    });
  }
  pool.Wait();
  return out;
}

double NeuTrajModel::Similarity(const Trajectory& t1, const Trajectory& t2) const {
  return EmbeddingSimilarity(Embed(t1), Embed(t2));
}

double NeuTrajModel::Distance(const Trajectory& t1, const Trajectory& t2) const {
  return EmbeddingDistance(Embed(t1), Embed(t2));
}

size_t NeuTrajModel::NumParameters() const {
  size_t total = 0;
  for (const nn::Param* p : const_cast<nn::Encoder&>(*encoder_).Params()) {
    total += p->value.size();
  }
  return total;
}

void NeuTrajModel::Save(const std::string& path) const {
  // Model files use the shared length-prefixed, CRC-checksummed section
  // framing (common/framing.h) so truncation and bit flips are detected at
  // load time instead of being half-parsed.
  SectionWriter w("model");

  std::ostringstream cfg_out;
  cfg_out.precision(17);
  // Config fields needed to reconstruct the encoder and inference behavior.
  cfg_out << MeasureName(config_.measure) << ' '
          << static_cast<int>(config_.transform) << ' ' << config_.alpha << ' '
          << config_.alpha_factor << ' ' << static_cast<int>(config_.backbone)
          << ' ' << config_.embedding_dim << ' ' << config_.scan_width << ' '
          << static_cast<int>(config_.sampling) << ' '
          << static_cast<int>(config_.loss) << ' ' << config_.sampling_num
          << ' ' << config_.batch_size << ' ' << config_.epochs << ' '
          << config_.learning_rate << ' ' << config_.clip_norm << ' '
          << config_.early_stop_tol << ' ' << config_.patience << ' '
          << config_.rng_seed << ' ' << config_.update_memory_at_inference;
  w.Add("config", cfg_out.str());

  const Grid& g = grid();
  std::ostringstream grid_out;
  grid_out.precision(17);
  grid_out << g.region().min_x << ' ' << g.region().min_y << ' '
           << g.region().max_x << ' ' << g.region().max_y << ' '
           << g.num_cols() << ' ' << g.num_rows();
  w.Add("grid", grid_out.str());

  std::vector<const nn::Param*> params;
  for (nn::Param* p : const_cast<nn::Encoder&>(*encoder_).Params()) {
    params.push_back(p);
  }
  w.Add("params", nn::SerializeParams(params));

  // SAM memory (inference reads it).
  std::ostringstream mem_out;
  mem_out.precision(17);
  if (encoder_->has_memory()) {
    const auto& mem = encoder_->memory().values();
    mem_out << mem.size() << '\n';
    for (size_t i = 0; i < mem.size(); ++i) {
      if (i > 0) mem_out << ' ';
      mem_out << mem[i];
    }
  } else {
    mem_out << 0 << '\n';
  }
  w.Add("memory", mem_out.str());

  WriteFileAtomic(path, w.Finish());
}

NeuTrajModel NeuTrajModel::Load(const std::string& path) {
  const std::string source = "NeuTrajModel::Load: " + path;
  const SectionReader r(ReadFile(path), "model", source);

  std::istringstream in(r.Get("config"));
  NeuTrajConfig cfg;
  std::string measure;
  int transform = 0, backbone = 0, sampling = 0, loss = 0;
  int update_inference = 0;
  if (!(in >> measure >> transform >> cfg.alpha >> cfg.alpha_factor >>
        backbone >> cfg.embedding_dim >> cfg.scan_width >> sampling >> loss >>
        cfg.sampling_num >> cfg.batch_size >> cfg.epochs >>
        cfg.learning_rate >> cfg.clip_norm >> cfg.early_stop_tol >>
        cfg.patience >> cfg.rng_seed >> update_inference)) {
    throw std::runtime_error(source + ": bad config section");
  }
  cfg.measure = MeasureFromName(measure);
  cfg.transform = static_cast<SimilarityTransform>(transform);
  cfg.backbone = static_cast<nn::Backbone>(backbone);
  cfg.sampling = static_cast<SamplingStrategy>(sampling);
  cfg.loss = static_cast<LossKind>(loss);
  cfg.update_memory_at_inference = update_inference != 0;

  std::istringstream grid_in(r.Get("grid"));
  BoundingBox region;
  int32_t cols = 0, rows = 0;
  if (!(grid_in >> region.min_x >> region.min_y >> region.max_x >>
        region.max_y >> cols >> rows)) {
    throw std::runtime_error(source + ": bad grid section");
  }
  NeuTrajModel model(cfg, Grid(region, cols, rows));
  nn::DeserializeParams(r.Get("params"), model.encoder_->Params());

  std::istringstream mem_in(r.Get("memory"));
  size_t count = 0;
  if (!(mem_in >> count)) {
    throw std::runtime_error(source + ": bad memory section");
  }
  if (model.encoder_->has_memory()) {
    auto& mem = model.encoder_->memory().values();
    if (count != mem.size()) {
      throw std::runtime_error(source + ": memory size mismatch");
    }
    for (double& v : mem) {
      if (!(mem_in >> v)) {
        throw std::runtime_error(source + ": truncated memory values");
      }
    }
    model.encoder_->memory().RecomputeWrittenFlags();
  } else if (count != 0) {
    throw std::runtime_error(source + ": unexpected memory block");
  }
  return model;
}

}  // namespace neutraj
