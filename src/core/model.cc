#include "core/model.h"

#include <sstream>
#include <stdexcept>

#include "common/file_util.h"
#include "common/thread_pool.h"

namespace neutraj {

NeuTrajModel::NeuTrajModel(const NeuTrajConfig& cfg, const Grid& grid)
    : config_(cfg),
      encoder_(std::make_unique<nn::Encoder>(cfg.backbone, grid,
                                             cfg.embedding_dim, cfg.scan_width)) {
  config_.Validate();
}

void NeuTrajModel::InitializeWeights(Rng* rng) { encoder_->Initialize(rng); }

nn::Vector NeuTrajModel::Embed(const Trajectory& traj) const {
  return encoder_->Encode(traj, config_.update_memory_at_inference);
}

std::vector<nn::Vector> NeuTrajModel::EmbedAll(
    const std::vector<Trajectory>& corpus) const {
  std::vector<nn::Vector> out;
  out.reserve(corpus.size());
  for (const Trajectory& t : corpus) out.push_back(Embed(t));
  return out;
}

std::vector<nn::Vector> NeuTrajModel::EmbedAllParallel(
    const std::vector<Trajectory>& corpus, size_t num_threads) const {
  if (config_.update_memory_at_inference) {
    throw std::logic_error(
        "EmbedAllParallel: memory-updating inference cannot run in parallel");
  }
  std::vector<nn::Vector> out(corpus.size());
  ParallelFor(corpus.size(), num_threads,
              [&](size_t i) { out[i] = Embed(corpus[i]); });
  return out;
}

double NeuTrajModel::Similarity(const Trajectory& t1, const Trajectory& t2) const {
  return EmbeddingSimilarity(Embed(t1), Embed(t2));
}

double NeuTrajModel::Distance(const Trajectory& t1, const Trajectory& t2) const {
  return EmbeddingDistance(Embed(t1), Embed(t2));
}

size_t NeuTrajModel::NumParameters() const {
  size_t total = 0;
  for (const nn::Param* p : const_cast<nn::Encoder&>(*encoder_).Params()) {
    total += p->value.size();
  }
  return total;
}

void NeuTrajModel::Save(const std::string& path) const {
  std::ostringstream out;
  out.precision(17);
  out << "NEUTRAJ-MODEL v1\n";
  // Config fields needed to reconstruct the encoder and inference behavior.
  out << MeasureName(config_.measure) << ' '
      << static_cast<int>(config_.transform) << ' ' << config_.alpha << ' '
      << config_.alpha_factor << ' ' << static_cast<int>(config_.backbone)
      << ' ' << config_.embedding_dim << ' ' << config_.scan_width << ' '
      << static_cast<int>(config_.sampling) << ' '
      << static_cast<int>(config_.loss) << ' ' << config_.sampling_num << ' '
      << config_.batch_size << ' ' << config_.epochs << ' '
      << config_.learning_rate << ' ' << config_.clip_norm << ' '
      << config_.early_stop_tol << ' ' << config_.patience << ' '
      << config_.rng_seed << ' ' << config_.update_memory_at_inference << '\n';
  const Grid& g = grid();
  out << g.region().min_x << ' ' << g.region().min_y << ' '
      << g.region().max_x << ' ' << g.region().max_y << ' ' << g.num_cols()
      << ' ' << g.num_rows() << '\n';
  std::vector<const nn::Param*> params;
  for (nn::Param* p : const_cast<nn::Encoder&>(*encoder_).Params()) {
    params.push_back(p);
  }
  out << nn::SerializeParams(params);
  // SAM memory (inference reads it).
  if (encoder_->has_memory()) {
    const auto& mem = encoder_->memory().values();
    out << "MEMORY " << mem.size() << '\n';
    for (size_t i = 0; i < mem.size(); ++i) {
      if (i > 0) out << ' ';
      out << mem[i];
    }
    out << '\n';
  } else {
    out << "MEMORY 0\n\n";
  }
  WriteFileAtomic(path, out.str());
}

NeuTrajModel NeuTrajModel::Load(const std::string& path) {
  std::istringstream in(ReadFile(path));
  std::string line;
  if (!std::getline(in, line) || line != "NEUTRAJ-MODEL v1") {
    throw std::runtime_error("NeuTrajModel::Load: bad header in " + path);
  }
  NeuTrajConfig cfg;
  std::string measure;
  int transform = 0, backbone = 0, sampling = 0, loss = 0;
  int update_inference = 0;
  if (!(in >> measure >> transform >> cfg.alpha >> cfg.alpha_factor >>
        backbone >> cfg.embedding_dim >> cfg.scan_width >> sampling >> loss >>
        cfg.sampling_num >> cfg.batch_size >> cfg.epochs >>
        cfg.learning_rate >> cfg.clip_norm >> cfg.early_stop_tol >>
        cfg.patience >> cfg.rng_seed >> update_inference)) {
    throw std::runtime_error("NeuTrajModel::Load: bad config in " + path);
  }
  cfg.measure = MeasureFromName(measure);
  cfg.transform = static_cast<SimilarityTransform>(transform);
  cfg.backbone = static_cast<nn::Backbone>(backbone);
  cfg.sampling = static_cast<SamplingStrategy>(sampling);
  cfg.loss = static_cast<LossKind>(loss);
  cfg.update_memory_at_inference = update_inference != 0;

  BoundingBox region;
  int32_t cols = 0, rows = 0;
  if (!(in >> region.min_x >> region.min_y >> region.max_x >> region.max_y >>
        cols >> rows)) {
    throw std::runtime_error("NeuTrajModel::Load: bad grid in " + path);
  }
  NeuTrajModel model(cfg, Grid(region, cols, rows));
  // The remainder of the stream: params then memory.
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const size_t mem_pos = rest.find("MEMORY ");
  if (mem_pos == std::string::npos) {
    throw std::runtime_error("NeuTrajModel::Load: missing memory block in " + path);
  }
  nn::DeserializeParams(rest.substr(0, mem_pos), model.encoder_->Params());
  std::istringstream mem_in(rest.substr(mem_pos));
  std::string tag;
  size_t count = 0;
  if (!(mem_in >> tag >> count) || tag != "MEMORY") {
    throw std::runtime_error("NeuTrajModel::Load: bad memory header in " + path);
  }
  if (model.encoder_->has_memory()) {
    auto& mem = model.encoder_->memory().values();
    if (count != mem.size()) {
      throw std::runtime_error("NeuTrajModel::Load: memory size mismatch in " + path);
    }
    for (double& v : mem) {
      if (!(mem_in >> v)) {
        throw std::runtime_error("NeuTrajModel::Load: truncated memory in " + path);
      }
    }
    model.encoder_->memory().RecomputeWrittenFlags();
  } else if (count != 0) {
    throw std::runtime_error("NeuTrajModel::Load: unexpected memory block in " + path);
  }
  return model;
}

}  // namespace neutraj
