#include "core/similarity.h"

#include <algorithm>
#include <cmath>

namespace neutraj {

namespace {

/// Mean k-th nearest-neighbor distance over the pool (0 if degenerate).
double MeanKnnDistance(const DistanceMatrix& d, size_t k) {
  if (d.size() < 2) return 0.0;
  const size_t kk = std::min(k, d.size() - 1);
  double total = 0.0;
  std::vector<double> row;
  for (size_t i = 0; i < d.size(); ++i) {
    row.assign(d.Row(i), d.Row(i) + d.size());
    row.erase(row.begin() + static_cast<long>(i));  // Drop self-distance.
    std::nth_element(row.begin(), row.begin() + static_cast<long>(kk - 1),
                     row.end());
    total += row[kk - 1];
  }
  return total / static_cast<double>(d.size());
}

}  // namespace

SimilarityMatrix::SimilarityMatrix(const DistanceMatrix& d,
                                   const NeuTrajConfig& cfg) {
  n_ = d.size();
  data_.assign(n_ * n_, 0.0);
  if (cfg.alpha > 0) {
    alpha_ = cfg.alpha;
  } else {
    const double knn = MeanKnnDistance(d, cfg.sampling_num);
    alpha_ = knn > 0 ? cfg.alpha_factor * std::log(2.0) / knn : 1.0;
  }
  for (size_t i = 0; i < n_; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < n_; ++j) {
      const double s = std::exp(-alpha_ * d.At(i, j));
      data_[i * n_ + j] = s;
      row_sum += s;
    }
    if (cfg.transform == SimilarityTransform::kRowSoftmax && row_sum > 0.0) {
      for (size_t j = 0; j < n_; ++j) data_[i * n_ + j] /= row_sum;
    }
  }
}

std::vector<double> SimilarityMatrix::RowVector(size_t i) const {
  return std::vector<double>(Row(i), Row(i) + n_);
}

double EmbeddingSimilarity(const nn::Vector& e1, const nn::Vector& e2) {
  return std::exp(-nn::L2Distance(e1, e2));
}

double EmbeddingDistance(const nn::Vector& e1, const nn::Vector& e2) {
  return nn::L2Distance(e1, e2);
}

}  // namespace neutraj
