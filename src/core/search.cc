#include "core/search.h"

#include <algorithm>
#include <numeric>

#include "core/similarity.h"

namespace neutraj {

namespace {

/// Shared partial-sort driver over (id, distance) pairs.
SearchResult TopKImpl(size_t n, size_t k, int64_t exclude,
                      const std::vector<double>& dists) {
  std::vector<size_t> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (exclude >= 0 && i == static_cast<size_t>(exclude)) continue;
    ids.push_back(i);
  }
  const size_t kk = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(kk), ids.end(),
                    [&](size_t a, size_t b) {
                      if (dists[a] != dists[b]) return dists[a] < dists[b];
                      return a < b;
                    });
  ids.resize(kk);
  SearchResult r;
  r.ids = std::move(ids);
  r.dists.reserve(kk);
  for (size_t id : r.ids) r.dists.push_back(dists[id]);
  return r;
}

}  // namespace

SearchResult TopKByDistance(const std::vector<double>& dists, size_t k,
                            int64_t exclude) {
  return TopKImpl(dists.size(), k, exclude, dists);
}

SearchResult EmbeddingTopK(const std::vector<nn::Vector>& corpus,
                           const nn::Vector& query, size_t k, int64_t exclude) {
  std::vector<double> dists(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    dists[i] = nn::L2Distance(corpus[i], query);
  }
  return TopKImpl(corpus.size(), k, exclude, dists);
}

SearchResult EmbeddingTopKOf(const std::vector<nn::Vector>& corpus,
                             const nn::Vector& query,
                             const std::vector<size_t>& candidates, size_t k,
                             int64_t exclude) {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates.size());
  for (const size_t id : candidates) {
    if (exclude >= 0 && id == static_cast<size_t>(exclude)) continue;
    // nn::L2Distance — the same call EmbeddingTopK makes, so the scores
    // (and therefore the merged ordering) are bit-identical to the scan.
    scored.emplace_back(nn::L2Distance(corpus[id], query), id);
  }
  std::sort(scored.begin(), scored.end());
  scored.erase(std::unique(scored.begin(), scored.end()), scored.end());
  const size_t kk = std::min(k, scored.size());
  SearchResult r;
  r.ids.reserve(kk);
  r.dists.reserve(kk);
  for (size_t i = 0; i < kk; ++i) {
    r.ids.push_back(scored[i].second);
    r.dists.push_back(scored[i].first);
  }
  return r;
}

SearchResult ExactTopK(const std::vector<Trajectory>& corpus,
                       const Trajectory& query, const DistanceFn& fn, size_t k,
                       int64_t exclude) {
  std::vector<double> dists(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (exclude >= 0 && i == static_cast<size_t>(exclude)) {
      dists[i] = 0.0;  // Excluded by TopKImpl anyway.
      continue;
    }
    dists[i] = fn(corpus[i], query);
  }
  return TopKImpl(corpus.size(), k, exclude, dists);
}

SearchResult RerankByExact(const std::vector<Trajectory>& corpus,
                           const Trajectory& query,
                           const std::vector<size_t>& candidates,
                           const DistanceFn& fn, size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates.size());
  for (size_t id : candidates) {
    scored.emplace_back(fn(corpus[id], query), id);
  }
  const size_t kk = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(kk),
                    scored.end());
  SearchResult r;
  r.ids.reserve(kk);
  r.dists.reserve(kk);
  for (size_t i = 0; i < kk; ++i) {
    r.ids.push_back(scored[i].second);
    r.dists.push_back(scored[i].first);
  }
  return r;
}

}  // namespace neutraj
