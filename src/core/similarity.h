// Distance-to-similarity guidance (paper Sec. V-B) and the embedding-space
// similarity g(.,.).

#ifndef NEUTRAJ_CORE_SIMILARITY_H_
#define NEUTRAJ_CORE_SIMILARITY_H_

#include <vector>

#include "core/config.h"
#include "distance/pairwise.h"
#include "nn/matrix.h"

namespace neutraj {

/// Normalized similarity matrix S built from the seed distance matrix D.
///
/// The transform smooths the (often power-law) raw distance distribution
/// into [0, 1]: S = exp(-alpha * D), optionally row-normalized.
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;

  /// Builds S from D. When `cfg.alpha <= 0`, alpha is calibrated from the
  /// seed pool's neighborhood scale:
  ///   alpha = cfg.alpha_factor * ln(2) / mean_i(d_i^(k)),
  /// where d_i^(k) is seed i's k-th nearest-neighbor distance and
  /// k = cfg.sampling_num. This places the similarity value 0.5 at the
  /// typical k-NN radius, so the targets are informative exactly in the
  /// distance range that top-k ranking must resolve.
  SimilarityMatrix(const DistanceMatrix& d, const NeuTrajConfig& cfg);

  size_t size() const { return n_; }
  double alpha() const { return alpha_; }

  double At(size_t i, size_t j) const { return data_[i * n_ + j]; }

  /// Row i (length size()); the importance vector I_a of anchor a.
  const double* Row(size_t i) const { return data_.data() + i * n_; }

  /// Copies row i into a std::vector (convenience for samplers).
  std::vector<double> RowVector(size_t i) const;

 private:
  size_t n_ = 0;
  double alpha_ = 1.0;
  std::vector<double> data_;
};

/// g(Ti, Tj) = exp(-||Ei - Ej||_2): the learned similarity (paper Eq. 7).
double EmbeddingSimilarity(const nn::Vector& e1, const nn::Vector& e2);

/// -log g = ||Ei - Ej||_2: the corresponding embedding-space distance used
/// for ranking (monotone in g).
double EmbeddingDistance(const nn::Vector& e1, const nn::Vector& e2);

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_SIMILARITY_H_
