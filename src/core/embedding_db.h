// Precomputed embedding database for repeated top-k search.
//
// The paper's online protocol embeds the corpus once and answers every
// query with an O(|corpus| * d) scan in embedding space. EmbeddingDatabase
// packages that corpus-side state: a threaded bulk-encoding build, top-k
// queries (by embedding or by raw trajectory), and a checksummed on-disk
// format so the O(N * L * d^2) encoding cost is paid once per corpus, not
// once per process.

#ifndef NEUTRAJ_CORE_EMBEDDING_DB_H_
#define NEUTRAJ_CORE_EMBEDDING_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/search.h"

namespace neutraj {

/// Corpus embeddings plus the query primitives over them.
class EmbeddingDatabase {
 public:
  EmbeddingDatabase() = default;

  /// Embeds `corpus` with `model` over `threads` workers (results identical
  /// for every thread count) and returns the database. The model must use
  /// read-only inference when threads > 1 (see EmbedAllParallel).
  static EmbeddingDatabase Build(const NeuTrajModel& model,
                                 const std::vector<Trajectory>& corpus,
                                 size_t threads = 1);

  size_t size() const { return embeddings_.size(); }
  bool empty() const { return embeddings_.empty(); }
  /// Embedding width d; 0 for an empty database.
  size_t dim() const { return dim_; }
  const nn::Vector& at(size_t i) const { return embeddings_[i]; }
  const std::vector<nn::Vector>& embeddings() const { return embeddings_; }

  /// Top-k nearest stored embeddings to `query` under L2 (ties broken by
  /// lower id). `exclude` (if >= 0) removes one id — typically the query
  /// itself when it is part of the corpus.
  SearchResult TopK(const nn::Vector& query, size_t k,
                    int64_t exclude = -1) const;

  /// Embeds `query` with `model` and runs TopK. The model must be the one
  /// the database was built with for the distances to be meaningful.
  SearchResult TopK(const NeuTrajModel& model, const Trajectory& query,
                    size_t k, int64_t exclude = -1) const;

  /// Serializes the embeddings to `path` (CRC-checksummed sections; see
  /// common/framing.h), written atomically.
  void Save(const std::string& path) const;

  /// Restores a database saved by Save(). Throws std::runtime_error on
  /// malformed or truncated files.
  static EmbeddingDatabase Load(const std::string& path);

 private:
  size_t dim_ = 0;
  std::vector<nn::Vector> embeddings_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_EMBEDDING_DB_H_
