// Precomputed embedding database for repeated top-k search.
//
// The paper's online protocol embeds the corpus once and answers every
// query with an O(|corpus| * d) scan in embedding space. EmbeddingDatabase
// packages that corpus-side state: a threaded bulk-encoding build, top-k
// queries (by embedding or by raw trajectory), live incremental inserts
// under a reader/writer discipline, and a checksummed on-disk format so the
// O(N * L * d^2) encoding cost is paid once per corpus, not once per
// process.
//
// Concurrency: TopK/Save/size take a shared (reader) lock and Insert takes
// an exclusive (writer) lock, so a live serving corpus (src/serve/) can
// answer queries while trajectories stream in. The unlocked accessors
// (at, embeddings) hand out references into the store and are only safe
// when no Insert can run concurrently — i.e. single-threaded use or an
// externally quiesced database.

#ifndef NEUTRAJ_CORE_EMBEDDING_DB_H_
#define NEUTRAJ_CORE_EMBEDDING_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "core/model.h"
#include "core/search.h"
#include "obs/metrics.h"

namespace neutraj {

/// Corpus embeddings plus the query primitives over them.
class EmbeddingDatabase {
 public:
  EmbeddingDatabase();

  // The internal reader/writer lock is not movable; moves transfer only the
  // data and require that no other thread touches either operand (the usual
  // build-then-serve lifecycle).
  EmbeddingDatabase(EmbeddingDatabase&& other) noexcept;
  // Analysis disabled deliberately: a move writes this->dim_/embeddings_ and
  // reads other's without either lock, which is exactly the documented
  // contract above — both operands must be externally quiesced. Taking both
  // locks here would suggest a concurrency guarantee moves do not provide.
  EmbeddingDatabase& operator=(EmbeddingDatabase&& other) noexcept
      NEUTRAJ_NO_THREAD_SAFETY_ANALYSIS;
  EmbeddingDatabase(const EmbeddingDatabase&) = delete;
  EmbeddingDatabase& operator=(const EmbeddingDatabase&) = delete;

  /// Embeds `corpus` with `model` over `threads` workers (results identical
  /// for every thread count) and returns the database. The model must use
  /// read-only inference when threads > 1 (see EmbedAllParallel).
  static EmbeddingDatabase Build(const NeuTrajModel& model,
                                 const std::vector<Trajectory>& corpus,
                                 size_t threads = 1);

  size_t size() const NEUTRAJ_EXCLUDES(mu_);
  bool empty() const { return size() == 0; }
  /// Embedding width d; 0 for an empty database.
  size_t dim() const NEUTRAJ_EXCLUDES(mu_);

  // Unlocked accessors; see the header comment for when they are safe.
  // Analysis disabled deliberately: these hand out references into guarded
  // state for the single-threaded / externally-quiesced lifecycle (offline
  // experiments, post-build serving setup), where holding the reader lock
  // for the reference's lifetime is impossible by design.
  const nn::Vector& at(size_t i) const NEUTRAJ_NO_THREAD_SAFETY_ANALYSIS {
    return embeddings_[i];
  }
  const std::vector<nn::Vector>& embeddings() const
      NEUTRAJ_NO_THREAD_SAFETY_ANALYSIS {
    return embeddings_;
  }

  /// Appends one embedding under the writer lock and returns its id (ids
  /// are dense indices in insertion order, continuing the build order).
  /// The first insert into an empty database fixes the dimension; later
  /// inserts must match it or throw std::invalid_argument.
  size_t Insert(const nn::Vector& embedding) NEUTRAJ_EXCLUDES(mu_);

  /// Embeds `traj` with `model` (outside the lock) and appends it.
  size_t Insert(const NeuTrajModel& model, const Trajectory& traj)
      NEUTRAJ_EXCLUDES(mu_);

  /// Top-k nearest stored embeddings to `query` under L2. Deterministic
  /// under distance ties: equal distances are broken by ascending id. That
  /// tie-break is a pinned API contract (tests/core_test.cc) — the sharded
  /// and ANN retrieval paths (src/retrieval/) reproduce it to stay
  /// bit-identical with this scan, so changing it is a breaking change.
  /// `exclude` (if >= 0) removes one id — typically the query itself when
  /// it is part of the corpus. Takes the reader lock.
  SearchResult TopK(const nn::Vector& query, size_t k,
                    int64_t exclude = -1) const NEUTRAJ_EXCLUDES(mu_);

  /// TopK restricted to `candidates` — the exact re-rank behind an ANN
  /// prefilter (see EmbeddingTopKOf). Scores and tie-breaks are
  /// bit-identical to TopK whenever `candidates` covers the true top-k.
  /// Candidate ids must be < size() (throws std::out_of_range otherwise);
  /// duplicates are scored once. Takes the reader lock.
  SearchResult TopKOf(const nn::Vector& query,
                      const std::vector<size_t>& candidates, size_t k,
                      int64_t exclude = -1) const NEUTRAJ_EXCLUDES(mu_);

  /// Embeds `query` with `model` and runs TopK. The model must be the one
  /// the database was built with for the distances to be meaningful.
  SearchResult TopK(const NeuTrajModel& model, const Trajectory& query,
                    size_t k, int64_t exclude = -1) const;

  /// Serializes the embeddings to `path` (CRC-checksummed sections; see
  /// common/framing.h), written atomically. Takes the reader lock.
  void Save(const std::string& path) const NEUTRAJ_EXCLUDES(mu_);

  /// The serialized container bytes Save() would write; takes the reader
  /// lock. The durability layer (src/store/) uses this to route snapshot
  /// writes through its own checked, fault-injectable I/O path.
  std::string Serialize() const NEUTRAJ_EXCLUDES(mu_);

  /// Restores a database saved by Save(). Throws CorruptionError
  /// (common/errors.h, with section/offset context) on malformed,
  /// truncated, or bit-flipped files.
  static EmbeddingDatabase Load(const std::string& path);

  /// Load() over in-memory container bytes; `source` names the artifact in
  /// error messages.
  static EmbeddingDatabase Deserialize(const std::string& contents,
                                       const std::string& source);

  /// Re-points this database's telemetry (db/build_us, db/insert_us,
  /// db/topk_us histograms; db/corpus_size gauge) at `registry`. The
  /// constructor attaches the process-global registry; the serve layer
  /// re-attaches its per-service one. `registry` must outlive the database.
  /// Not thread-safe against concurrent operations — call before serving
  /// traffic.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  mutable SharedMutex mu_{lock_rank::kDb};
  size_t dim_ NEUTRAJ_GUARDED_BY(mu_) = 0;
  std::vector<nn::Vector> embeddings_ NEUTRAJ_GUARDED_BY(mu_);

  // Registry-owned; re-resolved by AttachMetrics, copied by moves (both
  // operands end up recording to the same registry, which is correct for
  // the build-then-move-then-serve lifecycle).
  obs::ConcurrentHistogram* build_us_ = nullptr;
  obs::ConcurrentHistogram* insert_us_ = nullptr;
  obs::ConcurrentHistogram* topk_us_ = nullptr;
  obs::Gauge* corpus_size_ = nullptr;
};

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_EMBEDDING_DB_H_
