// The trained NeuTraj model: an O(L)-time trajectory embedder.

#ifndef NEUTRAJ_CORE_MODEL_H_
#define NEUTRAJ_CORE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/similarity.h"
#include "geo/grid.h"
#include "nn/encoder.h"

namespace neutraj {

/// A NeuTraj model: configuration + grid + trained encoder (+ SAM memory).
///
/// Embedding a trajectory of length L costs O(L * d^2); comparing two
/// embeddings costs O(d) — the paper's linear-time similarity primitive.
class NeuTrajModel {
 public:
  /// Constructs an *untrained* model (weights uninitialized); used by the
  /// Trainer and by Load().
  NeuTrajModel(const NeuTrajConfig& cfg, const Grid& grid);

  NeuTrajModel(NeuTrajModel&&) = default;
  NeuTrajModel& operator=(NeuTrajModel&&) = default;

  /// Random weight initialization.
  void InitializeWeights(Rng* rng);

  /// Embeds one trajectory (inference). Whether the SAM memory is updated
  /// follows cfg.update_memory_at_inference (default: read-only).
  nn::Vector Embed(const Trajectory& traj) const;

  /// Hot-path overload for bulk encoding: uses caller-owned scratch so
  /// repeated embeds stop allocating after warm-up. One workspace serves
  /// one thread.
  nn::Vector Embed(const Trajectory& traj, nn::CellWorkspace* ws) const;

  /// Embeds a corpus; equivalent to calling Embed per trajectory.
  std::vector<nn::Vector> EmbedAll(const std::vector<Trajectory>& corpus) const;

  /// Parallel corpus embedding over `num_threads` workers, each with its
  /// own workspace. Requires read-only inference (throws std::logic_error
  /// when cfg.update_memory_at_inference is set, since concurrent memory
  /// writes would race). Results are identical to EmbedAll.
  std::vector<nn::Vector> EmbedAllParallel(const std::vector<Trajectory>& corpus,
                                           size_t num_threads) const;

  /// g(t1, t2) = exp(-||E1 - E2||): the approximate similarity.
  double Similarity(const Trajectory& t1, const Trajectory& t2) const;

  /// ||E1 - E2||: the approximate distance (monotone inverse of g).
  double Distance(const Trajectory& t1, const Trajectory& t2) const;

  const NeuTrajConfig& config() const { return config_; }
  const Grid& grid() const { return encoder_->grid(); }
  nn::Encoder& encoder() { return *encoder_; }
  const nn::Encoder& encoder() const { return *encoder_; }

  /// Total number of trainable scalars.
  size_t NumParameters() const;

  /// Serializes config, grid, weights and SAM memory to `path`.
  void Save(const std::string& path) const;

  /// Restores a model saved by Save(). Throws std::runtime_error on
  /// malformed files.
  static NeuTrajModel Load(const std::string& path);

 private:
  NeuTrajConfig config_;
  // unique_ptr so the model stays cheaply movable; Encode() mutates tapes
  // and (optionally) memory, hence the mutable indirection for const Embed.
  std::unique_ptr<nn::Encoder> encoder_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_CORE_MODEL_H_
