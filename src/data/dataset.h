// Trajectory corpus container shared by generators, experiments and
// examples.

#ifndef NEUTRAJ_DATA_DATASET_H_
#define NEUTRAJ_DATA_DATASET_H_

#include <string>
#include <vector>

#include "geo/trajectory.h"

namespace neutraj {

/// A named trajectory corpus plus the region it lives in.
struct TrajectoryDataset {
  std::string name;
  std::vector<Trajectory> trajectories;
  BoundingBox region = BoundingBox::Empty();

  size_t size() const { return trajectories.size(); }

  /// Recomputes `region` as the union of all trajectory bounds.
  void RecomputeRegion();

  /// Drops trajectories with fewer than `min_points` records (the paper
  /// removes trajectories with < 10 records).
  void FilterShort(size_t min_points);

  /// Mean points per trajectory (0 when empty).
  double MeanLength() const;
};

}  // namespace neutraj

#endif  // NEUTRAJ_DATA_DATASET_H_
