#include "data/road_network.h"

#include <algorithm>
#include <stdexcept>

namespace neutraj {

RoadNetwork::RoadNetwork(const RoadNetworkConfig& cfg) {
  if (cfg.grid_cols < 2 || cfg.grid_rows < 2) {
    throw std::invalid_argument("RoadNetwork: lattice must be at least 2x2");
  }
  Rng rng(cfg.seed);
  const size_t n = static_cast<size_t>(cfg.grid_cols) * cfg.grid_rows;
  nodes_.reserve(n);
  for (int32_t r = 0; r < cfg.grid_rows; ++r) {
    for (int32_t c = 0; c < cfg.grid_cols; ++c) {
      nodes_.emplace_back(
          c * cfg.spacing + rng.Uniform(-cfg.jitter, cfg.jitter),
          r * cfg.spacing + rng.Uniform(-cfg.jitter, cfg.jitter));
    }
  }
  adj_.assign(n, {});
  auto id = [&](int32_t c, int32_t r) {
    return static_cast<size_t>(r) * cfg.grid_cols + c;
  };
  auto connect = [&](size_t a, size_t b) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  };
  for (int32_t r = 0; r < cfg.grid_rows; ++r) {
    for (int32_t c = 0; c < cfg.grid_cols; ++c) {
      if (c + 1 < cfg.grid_cols && rng.Bernoulli(cfg.edge_keep_prob)) {
        connect(id(c, r), id(c + 1, r));
      }
      if (r + 1 < cfg.grid_rows && rng.Bernoulli(cfg.edge_keep_prob)) {
        connect(id(c, r), id(c, r + 1));
      }
    }
  }
}

BoundingBox RoadNetwork::Bounds() const {
  BoundingBox b = BoundingBox::Empty();
  for (const Point& p : nodes_) b.Extend(p);
  return b;
}

std::vector<size_t> RoadNetwork::RandomRoute(size_t hops, Rng* rng) const {
  std::vector<size_t> route;
  size_t current = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(nodes_.size()) - 1));
  // Restart from a connected node if the start is isolated.
  for (int tries = 0; adj_[current].empty() && tries < 64; ++tries) {
    current = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(nodes_.size()) - 1));
  }
  route.push_back(current);
  size_t prev = nodes_.size();  // Sentinel: no previous node yet.
  for (size_t h = 0; h < hops; ++h) {
    const auto& nb = adj_[current];
    if (nb.empty()) break;
    // Prefer not to backtrack.
    std::vector<size_t> options;
    for (size_t cand : nb) {
      if (cand != prev) options.push_back(cand);
    }
    if (options.empty()) options = nb;
    const size_t next = options[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(options.size()) - 1))];
    prev = current;
    current = next;
    route.push_back(current);
  }
  return route;
}

Trajectory RoadNetwork::RouteToTrajectory(const std::vector<size_t>& route,
                                          double point_spacing,
                                          double noise_std, Rng* rng) const {
  if (route.empty()) return Trajectory();
  if (point_spacing <= 0.0) {
    throw std::invalid_argument("RouteToTrajectory: point_spacing <= 0");
  }
  Trajectory out;
  auto emit = [&](const Point& p) {
    out.Append(Point(p.x + rng->Gaussian(0.0, noise_std),
                     p.y + rng->Gaussian(0.0, noise_std)));
  };
  emit(nodes_[route[0]]);
  double carry = 0.0;  // Distance already covered toward the next sample.
  for (size_t i = 1; i < route.size(); ++i) {
    const Point& a = nodes_[route[i - 1]];
    const Point& b = nodes_[route[i]];
    const double seg = EuclideanDistance(a, b);
    if (seg <= 0.0) continue;
    double along = point_spacing - carry;
    while (along < seg) {
      const double frac = along / seg;
      emit(Point(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)));
      along += point_spacing;
    }
    carry = seg - (along - point_spacing);
  }
  emit(nodes_[route.back()]);
  return out;
}

}  // namespace neutraj
