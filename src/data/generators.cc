#include "data/generators.h"

#include <algorithm>
#include <cmath>

namespace neutraj {

namespace {

/// Takes a contiguous sub-route covering at least `min_keep` of the route.
std::vector<size_t> SubRoute(const std::vector<size_t>& route, double min_keep,
                             Rng* rng) {
  if (route.size() <= 2) return route;
  const double keep = rng->Uniform(min_keep, 1.0);
  const size_t len = std::max<size_t>(
      2, static_cast<size_t>(std::llround(keep * static_cast<double>(route.size()))));
  if (len >= route.size()) return route;
  const size_t start = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(route.size() - len)));
  return std::vector<size_t>(route.begin() + static_cast<long>(start),
                             route.begin() + static_cast<long>(start + len));
}

}  // namespace

TrajectoryDataset GenerateCorpus(const std::string& name,
                                 const GeneratorConfig& cfg) {
  Rng rng(cfg.seed);
  RoadNetwork network(cfg.road);

  // Pre-draw the popular route pool.
  std::vector<std::vector<size_t>> popular;
  popular.reserve(cfg.num_popular_routes);
  for (size_t i = 0; i < cfg.num_popular_routes; ++i) {
    const size_t hops = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(cfg.min_hops), static_cast<int64_t>(cfg.max_hops)));
    popular.push_back(network.RandomRoute(hops, &rng));
  }

  TrajectoryDataset out;
  out.name = name;
  out.trajectories.reserve(cfg.num_trajectories);
  size_t attempts = 0;
  const size_t max_attempts = cfg.num_trajectories * 20 + 100;
  while (out.trajectories.size() < cfg.num_trajectories &&
         attempts < max_attempts) {
    ++attempts;
    std::vector<size_t> route;
    if (!popular.empty() && rng.Bernoulli(cfg.popular_fraction)) {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(popular.size()) - 1));
      // Half of the popular trips cover the full route (near-duplicates
      // differing only by GPS noise — the property the paper highlights);
      // the rest are sub-trips of it.
      route = rng.Bernoulli(0.5)
                  ? popular[pick]
                  : SubRoute(popular[pick], cfg.min_keep_fraction, &rng);
    } else {
      const size_t hops = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(cfg.min_hops),
                         static_cast<int64_t>(cfg.max_hops)));
      route = network.RandomRoute(hops, &rng);
    }
    Trajectory t = network.RouteToTrajectory(route, cfg.point_spacing,
                                             cfg.noise_std, &rng);
    if (cfg.max_points > 0) t = t.Downsampled(cfg.max_points);
    if (t.size() < cfg.min_points) continue;  // Paper: drop < 10 records.
    out.trajectories.push_back(std::move(t));
  }
  out.RecomputeRegion();
  return out;
}

GeneratorConfig PortoLikeConfig(double scale) {
  GeneratorConfig cfg;
  cfg.num_trajectories = static_cast<size_t>(std::llround(500 * scale));
  cfg.min_hops = 4;
  cfg.max_hops = 12;
  cfg.point_spacing = 80.0;
  cfg.noise_std = 20.0;
  cfg.num_popular_routes = 30;
  cfg.popular_fraction = 0.6;
  cfg.max_points = 48;
  cfg.seed = 13;
  cfg.road.grid_cols = 18;
  cfg.road.grid_rows = 18;
  cfg.road.spacing = 500.0;
  cfg.road.seed = 101;
  return cfg;
}

GeneratorConfig GeolifeLikeConfig(double scale) {
  GeneratorConfig cfg;
  cfg.num_trajectories = static_cast<size_t>(std::llround(350 * scale));
  cfg.min_hops = 6;
  cfg.max_hops = 20;
  cfg.point_spacing = 120.0;
  cfg.noise_std = 35.0;      // Human GPS is noisier than taxi data.
  cfg.num_popular_routes = 12;
  cfg.popular_fraction = 0.35;
  cfg.max_points = 64;
  cfg.seed = 29;
  cfg.road.grid_cols = 16;
  cfg.road.grid_rows = 16;
  cfg.road.spacing = 600.0;
  cfg.road.jitter = 160.0;
  cfg.road.seed = 202;
  return cfg;
}

TrajectoryDataset GeneratePortoLike(const GeneratorConfig& cfg) {
  return GenerateCorpus("PortoLike", cfg);
}

TrajectoryDataset GenerateGeolifeLike(const GeneratorConfig& cfg) {
  return GenerateCorpus("GeolifeLike", cfg);
}

}  // namespace neutraj
