// Synthetic trajectory corpus generators — the offline substitute for the
// paper's Geolife (human mobility, Beijing) and Porto (taxi) datasets.
//
// Both presets generate road-constrained movement over a synthetic road
// network. The Porto preset concentrates a large fraction of trips on a
// pool of popular routes (with per-trip noise, truncation and re-sampling),
// reproducing the "lots of near-duplicate instances" property the paper
// highlights; the Geolife preset produces fewer, longer, more wandering
// walks. See DESIGN.md ("Substitutions").

#ifndef NEUTRAJ_DATA_GENERATORS_H_
#define NEUTRAJ_DATA_GENERATORS_H_

#include "data/dataset.h"
#include "data/road_network.h"

namespace neutraj {

/// Knobs of the corpus generators.
struct GeneratorConfig {
  size_t num_trajectories = 500;
  /// Route length range, in road-network hops.
  size_t min_hops = 4;
  size_t max_hops = 12;
  /// Meters between consecutive trajectory samples.
  double point_spacing = 80.0;
  /// GPS noise (std-dev per coordinate, meters).
  double noise_std = 20.0;
  /// Number of distinct popular routes shared by many trips.
  size_t num_popular_routes = 30;
  /// Fraction of trips that follow a popular route.
  double popular_fraction = 0.6;
  /// Fraction of a popular route kept by one trip (sub-trip truncation);
  /// drawn uniformly from [min_keep_fraction, 1].
  double min_keep_fraction = 0.6;
  /// Cap on points per trajectory (downsampled above it; 0 = unlimited).
  size_t max_points = 48;
  /// Minimum records per trajectory (shorter ones are re-drawn).
  size_t min_points = 10;
  uint64_t seed = 13;
  RoadNetworkConfig road;
};

/// Taxi-like corpus: route-concentrated, many near-duplicates.
TrajectoryDataset GeneratePortoLike(const GeneratorConfig& cfg);

/// Human-mobility-like corpus: longer wandering walks, few shared routes.
TrajectoryDataset GenerateGeolifeLike(const GeneratorConfig& cfg);

/// Generic generator driven entirely by `cfg` (used by both presets).
TrajectoryDataset GenerateCorpus(const std::string& name,
                                 const GeneratorConfig& cfg);

/// Default preset configs scaled by `scale` (1.0 = the repo's CPU-friendly
/// default size).
GeneratorConfig PortoLikeConfig(double scale = 1.0);
GeneratorConfig GeolifeLikeConfig(double scale = 1.0);

}  // namespace neutraj

#endif  // NEUTRAJ_DATA_GENERATORS_H_
