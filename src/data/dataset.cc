#include "data/dataset.h"

#include <algorithm>

namespace neutraj {

void TrajectoryDataset::RecomputeRegion() {
  region = BoundingBox::Empty();
  for (const Trajectory& t : trajectories) region.Extend(t.Bounds());
}

void TrajectoryDataset::FilterShort(size_t min_points) {
  trajectories.erase(
      std::remove_if(trajectories.begin(), trajectories.end(),
                     [min_points](const Trajectory& t) {
                       return t.size() < min_points;
                     }),
      trajectories.end());
}

double TrajectoryDataset::MeanLength() const {
  if (trajectories.empty()) return 0.0;
  size_t total = 0;
  for (const Trajectory& t : trajectories) total += t.size();
  return static_cast<double>(total) / static_cast<double>(trajectories.size());
}

}  // namespace neutraj
