// Synthetic road network: a jittered lattice graph with random missing
// edges, plus random-walk route generation with coordinate interpolation.
//
// This substrate serves two purposes:
//  1. generating realistic city-like trajectory corpora (the paper's
//     Geolife/Porto datasets are not available offline; see DESIGN.md), and
//  2. the zero-shot experiment (paper Sec. VII-G), which trains NeuTraj on
//     trajectories simulated by "random walk on road node graph and
//     interpolating coordinates between the nodes".

#ifndef NEUTRAJ_DATA_ROAD_NETWORK_H_
#define NEUTRAJ_DATA_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geo/trajectory.h"

namespace neutraj {

/// Parameters of the synthetic road network.
struct RoadNetworkConfig {
  int32_t grid_cols = 20;      ///< Lattice intersections along x.
  int32_t grid_rows = 20;      ///< Lattice intersections along y.
  double spacing = 500.0;      ///< Average block size in meters.
  double jitter = 120.0;       ///< Max node displacement from the lattice.
  double edge_keep_prob = 0.9; ///< Probability a lattice edge exists.
  uint64_t seed = 7;
};

/// An undirected planar road graph.
class RoadNetwork {
 public:
  explicit RoadNetwork(const RoadNetworkConfig& cfg);

  size_t NumNodes() const { return nodes_.size(); }
  const Point& NodePosition(size_t id) const { return nodes_[id]; }
  const std::vector<size_t>& Neighbors(size_t id) const { return adj_[id]; }
  BoundingBox Bounds() const;

  /// A random walk of `hops` edges starting at a random node, avoiding
  /// immediate backtracking when possible. Returns node ids (hops+1 long,
  /// shorter only if the walk gets stuck on an isolated node).
  std::vector<size_t> RandomRoute(size_t hops, Rng* rng) const;

  /// Converts a node route to a trajectory by placing points every
  /// `point_spacing` meters along the polyline, with i.i.d. Gaussian GPS
  /// noise of `noise_std` meters per coordinate.
  Trajectory RouteToTrajectory(const std::vector<size_t>& route,
                               double point_spacing, double noise_std,
                               Rng* rng) const;

 private:
  std::vector<Point> nodes_;
  std::vector<std::vector<size_t>> adj_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_DATA_ROAD_NETWORK_H_
