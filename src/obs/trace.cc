#include "obs/trace.h"

#include <string>

#include "obs/flight_recorder.h"

namespace neutraj::obs {

namespace trace_internal {

std::atomic<int> g_trace_level{static_cast<int>(TraceLevel::kOff)};

SpanSite::SpanSite(const char* name)
    : name_(name),
      hist_(&MetricsRegistry::Global().GetHistogram(
          "trace/" + std::string(name) + "_us")) {}

void ScopedSpan::Finish() {
  const auto end = std::chrono::steady_clock::now();
  const double micros =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          end - start_)
          .count();
  site_->hist().Record(micros);
  FlightRecorder::Global().RecordSpan(site_->name(), micros);
}

}  // namespace trace_internal

void SetTraceLevel(TraceLevel level) {
  trace_internal::g_trace_level.store(static_cast<int>(level),
                                      std::memory_order_relaxed);
  MetricsRegistry::Global()
      .GetGauge("obs/trace_level")
      .Set(static_cast<double>(static_cast<int>(level)));
}

TraceLevel trace_level() {
  return static_cast<TraceLevel>(
      trace_internal::g_trace_level.load(std::memory_order_relaxed));
}

}  // namespace neutraj::obs
