// Request-scoped tracing: per-request span trees across every thread hop.
//
// The aggregate histograms in metrics.h can say that p99 moved; they cannot
// say where any single slow request spent its time. This layer closes that
// gap with explicit context propagation — no thread-locals, because a
// request hops threads at every stage (accept handler → MicroBatcher group
// → ThreadPool workers → retrieval scatter-gather → store WAL → reply
// write) and a thread-local context would silently detach at each hop.
//
// Pieces:
//
//   TraceContext   64-bit trace id + sampled flag. Travels as an OPTIONAL
//                  trailing wire field on request payloads (see
//                  serve/protocol.h) — old payloads still parse — and is
//                  generated server-side when a sampled request arrives
//                  without one. Ids are deterministic (process counter mixed
//                  through splitmix64), per lint rule 1: no wall clocks, no
//                  random_device.
//
//   RequestTrace   One sampled request's bounded lock-free span buffer.
//                  Every stage Record()s (stage name, start offset,
//                  duration, compact thread id) by claiming a slot with one
//                  atomic increment; overflow increments a drop counter
//                  instead of reallocating, so recording never takes a lock
//                  or allocates on another subsystem's thread.
//
//   StageSpan      RAII span recorder; inert on a null trace, which is how
//                  the 1-in-N unsampled majority pays only a pointer test.
//
//   RequestTracer  Owns sampling, the ring of completed trees (served by
//                  the kTraceDump endpoint), the slow-query JSONL log, and
//                  the tail-latency attribution rolled into MetricsRegistry:
//                    reqtrace/total_us            histogram  sampled totals
//                    reqtrace/stage/<stage>_us    histogram  per-stage
//                    reqtrace/traces              counter    trees finished
//                    reqtrace/spans_dropped       counter    buffer overflow
//                    reqtrace/tail/<stage>_us     gauge      µs inside
//                                                            >= p99 requests
//                    reqtrace/p99_share/<stage>   gauge      that stage's
//                                                            share of tail µs
//                  The share gauges are the "why did p99 move" answer: when
//                  rerank_us owns 0.7 of the tail, widening nprobe is what
//                  moved it.
//
//   RenderChromeTrace  Exports finished trees in the Chrome trace_event
//                  JSON format (chrome://tracing, Perfetto); traces are laid
//                  out sequentially on one timeline, spans keep their real
//                  thread ids.
//
// Overhead contract (gated by bench_serving): tracing off — one plain load
// per request; 1-in-64 sampling — ≤2% on the batched serving bench. Tracing
// never touches served bytes: results are computed identically whether or
// not a trace rides along (pinned in serve_server_test).

#ifndef NEUTRAJ_OBS_REQTRACE_H_
#define NEUTRAJ_OBS_REQTRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace neutraj::obs {

/// The wire-portable request identity: carried on request frames, echoed
/// through every stage of the span tree.
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = no context attached.
  bool sampled = false;   ///< Head-based decision; only sampled requests
                          ///< build span trees.

  bool valid() const { return trace_id != 0; }
};

/// Small dense id for the current thread (1, 2, ... in first-use order) —
/// stable for the thread's lifetime, readable in trace viewers, and
/// deterministic enough for tests (no pointer-sized OS handles).
uint32_t CompactThreadId();

/// One recorded stage of a request. Offsets are µs relative to the
/// request's trace start, so a tree is self-contained.
struct FinishedSpan {
  std::string stage;
  double start_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
};

/// A completed span tree, as stored in the tracer ring and served by
/// kTraceDump.
struct FinishedTrace {
  uint64_t trace_id = 0;
  std::string endpoint;
  double total_us = 0.0;
  uint64_t spans_dropped = 0;
  std::vector<FinishedSpan> spans;
};

/// One in-flight sampled request's span buffer. Bounded and lock-free:
/// Record() claims a slot with a single atomic increment and writes it
/// without synchronization (slots are claimed exclusively), so batcher
/// workers, scatter-gather shards and the WAL writer can all record
/// concurrently. The request's own completion edges (future.get(), pool
/// barrier) order those writes before the tracer reads them in Finish().
class RequestTrace {
 public:
  /// Spans above this per-request cap are counted as dropped, never stored
  /// — a runaway stage cannot grow a request's footprint.
  static constexpr size_t kMaxSpans = 48;

  RequestTrace(const TraceContext& ctx, const char* endpoint)
      : ctx_(ctx), endpoint_(endpoint) {}

  /// Records one completed stage. `stage` must have static storage
  /// duration (the fixed stage-name literals). Thread-safe, lock-free.
  void Record(const char* stage, double start_us, double dur_us) {
    const uint32_t idx = size_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxSpans) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Slot& s = spans_[idx];
    s.stage = stage;
    s.start_us = start_us;
    s.dur_us = dur_us;
    s.tid = CompactThreadId();
  }

  /// µs since this trace began — the time base every span offset uses.
  double ElapsedMicros() const { return clock_.ElapsedMicros(); }

  const TraceContext& context() const { return ctx_; }
  const char* endpoint() const { return endpoint_; }

  /// Test hook: pins the total the tracer reports (slow-query golden tests
  /// need a deterministic total). < 0 (the default) = measure.
  void OverrideTotalForTest(double total_us) { total_override_us_ = total_us; }

 private:
  friend class RequestTracer;

  struct Slot {
    const char* stage = nullptr;
    double start_us = 0.0;
    double dur_us = 0.0;
    uint32_t tid = 0;
  };

  TraceContext ctx_;
  const char* endpoint_;
  Stopwatch clock_;
  std::atomic<uint32_t> size_{0};
  std::atomic<uint64_t> dropped_{0};
  std::array<Slot, kMaxSpans> spans_;
  double total_override_us_ = -1.0;
};

/// RAII stage recorder. Null trace = fully inert (one pointer test), which
/// is the unsampled fast path everywhere.
class StageSpan {
 public:
  StageSpan(RequestTrace* trace, const char* stage)
      : trace_(trace),
        stage_(stage),
        start_us_(trace != nullptr ? trace->ElapsedMicros() : 0.0) {}

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  ~StageSpan() { Stop(); }

  /// Ends the span early (idempotent).
  void Stop() {
    if (trace_ == nullptr) return;
    trace_->Record(stage_, start_us_, trace_->ElapsedMicros() - start_us_);
    trace_ = nullptr;
  }

 private:
  RequestTrace* trace_;
  const char* stage_;
  double start_us_;
};

/// Tracing knobs; lives on serve::ServerOptions and is forwarded to the
/// service's tracer before serving.
struct ReqTraceOptions {
  /// Head-based sampling: trace 1 in N contextless requests (the server
  /// generates their ids). 0 = off. A client-supplied sampled TraceContext
  /// (neutraj_client --trace-id) is ALWAYS traced, independent of this.
  uint32_t sample_every = 0;
  /// Completed sampled trees kept for kTraceDump (FIFO eviction).
  size_t ring_capacity = 256;
  /// Slow-query JSONL path; empty = no slow-query log.
  std::string slow_log_path;
  /// A sampled request at least this slow writes one slow-query line.
  double slow_threshold_us = 10000.0;
};

/// Owns the sampling decision and every sink. One per QueryService.
class RequestTracer {
 public:
  /// `registry` must outlive the tracer; rollup metrics register there.
  explicit RequestTracer(MetricsRegistry* registry);
  ~RequestTracer();

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  /// Applies knobs (opens/closes the slow-query log). Not thread-safe
  /// against in-flight requests — call before serving. Throws
  /// std::runtime_error when slow_log_path cannot be created.
  void Configure(const ReqTraceOptions& opts) NEUTRAJ_EXCLUDES(mu_);

  const ReqTraceOptions& options() const { return opts_; }

  /// The per-request sampling gate. Returns a live trace for a sampled
  /// request (client-forced or 1-in-N head-sampled with a server-generated
  /// id) and nullptr — at the cost of one branch — for everything else.
  std::shared_ptr<RequestTrace> Begin(const TraceContext& client_ctx,
                                      const char* endpoint);

  /// Finalizes one trace: rollup histograms and tail attribution, ring
  /// push, slow-query line when over threshold. Null-safe.
  void Finish(const std::shared_ptr<RequestTrace>& trace)
      NEUTRAJ_EXCLUDES(mu_);

  /// The most recent completed trees, oldest first, at most `max_traces`
  /// (0 = everything retained).
  std::vector<FinishedTrace> Dump(size_t max_traces = 0) const
      NEUTRAJ_EXCLUDES(mu_);

 private:
  MetricsRegistry* registry_;
  ReqTraceOptions opts_;
  std::atomic<uint64_t> sample_seq_{0};  ///< Head-sampling counter.
  std::atomic<uint64_t> id_seq_{0};      ///< Server-generated id source.

  // Resolved once; hammered lock-free on the Finish path.
  ConcurrentHistogram* total_us_hist_;
  Counter* traces_counter_;
  Counter* dropped_counter_;

  /// Guards the ring, the slow-log FILE and the tail accumulators. Only
  /// sampled requests ever take it; may resolve registry metrics (kObs)
  /// while held.
  mutable Mutex mu_{lock_rank::kReqTrace};
  std::deque<FinishedTrace> ring_ NEUTRAJ_GUARDED_BY(mu_);
  std::FILE* slow_log_ NEUTRAJ_GUARDED_BY(mu_) NEUTRAJ_PT_GUARDED_BY(mu_) =
      nullptr;
  /// Tail attribution: cumulative µs spent per stage inside requests whose
  /// total was at or above the running p99 estimate.
  std::map<std::string, double> tail_stage_us_ NEUTRAJ_GUARDED_BY(mu_);
  double tail_total_us_ NEUTRAJ_GUARDED_BY(mu_) = 0.0;
};

/// Renders finished trees as a Chrome trace_event JSON document (open with
/// chrome://tracing or Perfetto). Deterministic for a given input: traces
/// are laid end to end on one timeline with a fixed gap, each request's
/// spans nested under one enclosing request-level slice. Pure function —
/// usable by the client CLI on dumped trees.
std::string RenderChromeTrace(const std::vector<FinishedTrace>& traces);

}  // namespace neutraj::obs

#endif  // NEUTRAJ_OBS_REQTRACE_H_
