// Process-wide observability: a thread-safe metrics registry of counters,
// gauges and log2 latency histograms, with exportable snapshots.
//
// Design goals, in order:
//   1. Recording must be cheap enough for serving hot paths: every Record /
//      Add / Set is a handful of relaxed atomic operations — no locks, no
//      allocation. Callers resolve a metric once (GetCounter et al. return a
//      stable reference for the registry's lifetime) and hammer the pointer.
//   2. Reading is rare and may be slow: Snapshot() walks the registry under
//      its registration mutex and copies everything into plain structs that
//      sinks (JSONL, Prometheus text, the wire protocol's StatsSnapshot)
//      serialize without touching live atomics again.
//   3. Telemetry never influences results: nothing here feeds back into
//      training or search, so recording is allowed to be racy-but-exact
//      (integer totals are exact; float sums are order-dependent only in
//      rounding, never in count).
//
// The process-global registry (MetricsRegistry::Global()) is what the
// trainer, encoder and embedding database record into by default; the serve
// layer gives each QueryService its own instance so two servers in one
// process (common in tests) never share counters.

#ifndef NEUTRAJ_OBS_METRICS_H_
#define NEUTRAJ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace neutraj::obs {

/// Log2-bucketed latency histogram over microseconds (plain, not
/// thread-safe — the snapshot/aggregation type; ConcurrentHistogram is the
/// recording type). Promoted out of src/serve/stats.h so training and
/// database timings share one bucket layout with the serving endpoints.
///
/// Bucket 0 covers [0, 1] µs inclusive — sub-microsecond samples (and exact
/// zeros, e.g. a no-op fast path measured below timer resolution) land
/// there, not in an undefined range. Bucket i >= 1 covers (2^(i-1), 2^i] µs.
/// 28 buckets span 1 µs to ~134 s with <= 2x relative error on reported
/// percentiles.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 28;

  void Record(double micros);

  uint64_t count() const { return count_; }
  double mean_micros() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double max_micros() const { return max_; }
  double sum_micros() const { return sum_; }

  /// Latency below which fraction `p` (in [0, 1]) of samples fall,
  /// linearly interpolated within the containing bucket (the Prometheus
  /// histogram_quantile rule) and capped at the tracked max — so two
  /// percentiles landing in one log2 bucket still report distinct values
  /// instead of both snapping to the bucket's upper power of two. 0 with
  /// no samples.
  double PercentileMicros(double p) const;

  const std::array<uint64_t, kNumBuckets>& buckets() const { return buckets_; }

  /// Inclusive upper bound of bucket `b` in µs (1, 2, 4, ...).
  static double BucketUpperMicros(size_t b) {
    return static_cast<double>(1ull << b);
  }

 private:
  friend class ConcurrentHistogram;

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Monotonic event count. All operations are lock-free; totals are exact.
class Counter {
 public:
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written instantaneous value (corpus size, learning rate, ...).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// CAS loop rather than C++20 atomic<double>::fetch_add so the exact same
  /// code compiles under every toolchain the CI matrix uses.
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Thread-safe recording histogram: same bucket layout as LatencyHistogram,
/// all counters atomic. Record is lock-free (bucket increment + count + CAS
/// sum/max); Snapshot copies into a plain LatencyHistogram. Bucket counts
/// and the total are exact under any interleaving; the float sum is exact
/// for integer-valued samples and order-dependent only in rounding
/// otherwise.
class ConcurrentHistogram {
 public:
  void Record(double micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Consistent-enough copy for reporting: buckets may trail count by
  /// in-flight records, which is harmless for telemetry.
  LatencyHistogram Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, LatencyHistogram::kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Everything a registry held at snapshot time, sorted by name (the
/// registry map is ordered), ready for deterministic rendering.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms;

  /// Collapses everything to (name, value) pairs for flat sinks (the wire
  /// StatsSnapshot, JSONL): counters and gauges verbatim, each histogram as
  /// `<name>/count`, `/mean_us`, `/p50_us`, `/p99_us`, `/max_us`.
  std::vector<std::pair<std::string, double>> Flatten() const;
};

/// Named metric registry. Get* registers on first use and returns a
/// reference that stays valid for the registry's lifetime, so hot paths
/// resolve once and record lock-free thereafter. Requesting an existing
/// name as a different kind throws std::invalid_argument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name) NEUTRAJ_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) NEUTRAJ_EXCLUDES(mu_);
  ConcurrentHistogram& GetHistogram(const std::string& name)
      NEUTRAJ_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const NEUTRAJ_EXCLUDES(mu_);

  /// The process-wide default registry (trainer, encoder, embedding DB).
  static MetricsRegistry& Global();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<ConcurrentHistogram> histogram;
  };

  /// Guards registration only; recording goes through the returned
  /// references lock-free. Near-leaf rank: holders may only take the JSONL
  /// sink lock below it, never serve/store/db locks.
  mutable Mutex mu_{lock_rank::kObs};
  /// Ordered: snapshots sort free.
  std::map<std::string, Entry> entries_ NEUTRAJ_GUARDED_BY(mu_);
};

/// Sanitizes a metric name for the Prometheus exposition format:
/// `train/mean_loss` -> `neutraj_train_mean_loss`.
std::string PrometheusName(const std::string& name);

/// Renders a snapshot in the Prometheus text exposition format (counters,
/// gauges, and histograms with cumulative le-buckets). Deterministic for a
/// given snapshot — no timestamps — so it is golden-testable.
std::string RenderPrometheus(const MetricsSnapshot& snap);

}  // namespace neutraj::obs

#endif  // NEUTRAJ_OBS_METRICS_H_
