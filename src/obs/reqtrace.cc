#include "obs/reqtrace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/string_util.h"
#include "obs/jsonl.h"

namespace neutraj::obs {

namespace {

/// Fixed column order of the slow-query log: every stage the serving
/// pipeline emits gets its own key (0 when the request skipped it), so
/// lines are schema-stable and jq/pandas-friendly. Stages outside this
/// list (future subsystems) sum into "other_us".
constexpr const char* kSlowLogStages[] = {
    "queue_wait", "encode", "scan", "probe", "rerank", "wal", "reply",
};

/// splitmix64: spreads a dense counter over the id space so trace ids are
/// visually distinct while staying fully deterministic (lint rule 1: no
/// wall clocks or random_device in src/).
uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string TraceIdHex(uint64_t id) {
  return StrFormat("%016llx", static_cast<unsigned long long>(id));
}

/// %.17g, with JSON-illegal non-finite values as null — the same rendering
/// JsonlSink uses, so the two JSONL sinks stay grep-compatible.
std::string JsonNumber(double v) {
  return std::isfinite(v) ? StrFormat("%.17g", v) : std::string("null");
}

}  // namespace

uint32_t CompactThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

RequestTracer::RequestTracer(MetricsRegistry* registry) : registry_(registry) {
  if (registry == nullptr) {
    throw std::invalid_argument("RequestTracer: null MetricsRegistry");
  }
  total_us_hist_ = &registry_->GetHistogram("reqtrace/total_us");
  traces_counter_ = &registry_->GetCounter("reqtrace/traces");
  dropped_counter_ = &registry_->GetCounter("reqtrace/spans_dropped");
}

RequestTracer::~RequestTracer() {
  MutexLock lock(mu_);
  if (slow_log_ != nullptr) std::fclose(slow_log_);
}

void RequestTracer::Configure(const ReqTraceOptions& opts) {
  MutexLock lock(mu_);
  if (slow_log_ != nullptr) {
    std::fclose(slow_log_);
    slow_log_ = nullptr;
  }
  opts_ = opts;
  if (opts_.ring_capacity == 0) opts_.ring_capacity = 1;
  while (ring_.size() > opts_.ring_capacity) ring_.pop_front();
  if (!opts_.slow_log_path.empty()) {
    slow_log_ = std::fopen(opts_.slow_log_path.c_str(), "w");
    if (slow_log_ == nullptr) {
      throw std::runtime_error("RequestTracer: cannot open slow-query log '" +
                               opts_.slow_log_path + "' for writing");
    }
  }
}

std::shared_ptr<RequestTrace> RequestTracer::Begin(
    const TraceContext& client_ctx, const char* endpoint) {
  TraceContext ctx;
  if (client_ctx.valid()) {
    // A client that attached a context asked for this request specifically;
    // honor it regardless of the server's own sampling rate. An explicitly
    // unsampled context is a deliberate "propagate but don't record".
    if (!client_ctx.sampled) return nullptr;
    ctx = client_ctx;
  } else {
    const uint32_t every = opts_.sample_every;
    if (every == 0) return nullptr;  // Tracing off: one load, one branch.
    if (sample_seq_.fetch_add(1, std::memory_order_relaxed) % every != 0) {
      return nullptr;
    }
    uint64_t id = Splitmix64(id_seq_.fetch_add(1, std::memory_order_relaxed));
    if (id == 0) id = 1;  // 0 is the "no context" sentinel on the wire.
    ctx.trace_id = id;
    ctx.sampled = true;
  }
  return std::make_shared<RequestTrace>(ctx, endpoint);
}

void RequestTracer::Finish(const std::shared_ptr<RequestTrace>& trace) {
  if (trace == nullptr) return;
  const double total = trace->total_override_us_ >= 0.0
                           ? trace->total_override_us_
                           : trace->ElapsedMicros();
  total_us_hist_->Record(total);
  traces_counter_->Increment();
  const uint64_t dropped = trace->dropped_.load(std::memory_order_relaxed);
  if (dropped > 0) dropped_counter_->Add(dropped);

  FinishedTrace ft;
  ft.trace_id = trace->ctx_.trace_id;
  ft.endpoint = trace->endpoint_;
  ft.total_us = total;
  ft.spans_dropped = dropped;
  const size_t n = std::min<size_t>(
      trace->size_.load(std::memory_order_relaxed), RequestTrace::kMaxSpans);
  ft.spans.reserve(n);
  std::map<std::string, double> stage_us;
  for (size_t i = 0; i < n; ++i) {
    const RequestTrace::Slot& s = trace->spans_[i];
    ft.spans.push_back(FinishedSpan{s.stage, s.start_us, s.dur_us, s.tid});
    stage_us[s.stage] += s.dur_us;
    registry_->GetHistogram(std::string("reqtrace/stage/") + s.stage + "_us")
        .Record(s.dur_us);
  }

  // Running p99 estimate over the sampled totals themselves. Cheap (28
  // bucket loads) and self-consistent: a request is "tail" when it is at or
  // above the p99 of everything sampled so far. The warm-up gate keeps the
  // first few dozen requests from all classifying as tail while the
  // estimate is still meaningless.
  constexpr uint64_t kTailMinSamples = 64;
  const LatencyHistogram totals = total_us_hist_->Snapshot();
  const bool is_tail = totals.count() >= kTailMinSamples &&
                       total >= totals.PercentileMicros(0.99);

  MutexLock lock(mu_);
  if (is_tail) {
    tail_total_us_ += total;
    for (const auto& [stage, us] : stage_us) tail_stage_us_[stage] += us;
    for (const auto& [stage, us] : tail_stage_us_) {
      registry_->GetGauge("reqtrace/tail/" + stage + "_us").Set(us);
      registry_->GetGauge("reqtrace/p99_share/" + stage)
          .Set(tail_total_us_ > 0.0 ? us / tail_total_us_ : 0.0);
    }
  }
  if (slow_log_ != nullptr && total >= opts_.slow_threshold_us) {
    std::string line = "{\"endpoint\": \"" + JsonEscape(ft.endpoint) +
                       "\", \"trace_id\": \"" + TraceIdHex(ft.trace_id) +
                       "\", \"total_us\": " + JsonNumber(total);
    double accounted = 0.0;
    for (const char* stage : kSlowLogStages) {
      const auto it = stage_us.find(stage);
      const double us = it != stage_us.end() ? it->second : 0.0;
      accounted += us;
      line += std::string(", \"") + stage + "_us\": " + JsonNumber(us);
    }
    double all = 0.0;
    for (const auto& [stage, us] : stage_us) all += us;
    line += ", \"other_us\": " + JsonNumber(all - accounted);
    line += ", \"spans\": " + std::to_string(ft.spans.size()) + "}\n";
    std::fwrite(line.data(), 1, line.size(), slow_log_);
    std::fflush(slow_log_);
  }
  ring_.push_back(std::move(ft));
  while (ring_.size() > opts_.ring_capacity) ring_.pop_front();
}

std::vector<FinishedTrace> RequestTracer::Dump(size_t max_traces) const {
  MutexLock lock(mu_);
  const size_t n = max_traces == 0 ? ring_.size()
                                   : std::min(max_traces, ring_.size());
  return std::vector<FinishedTrace>(ring_.end() - static_cast<long>(n),
                                    ring_.end());
}

std::string RenderChromeTrace(const std::vector<FinishedTrace>& traces) {
  // Traces are sequential requests, not simultaneous ones; lay them end to
  // end with a fixed gap so the viewer shows a readable timeline. The
  // request-level slice uses tid 0 (no real stage ran on "thread 0":
  // CompactThreadId starts at 1), stages keep their recording thread.
  constexpr double kGapUs = 1000.0;
  std::string out = "{\"traceEvents\": [";
  double base = 0.0;
  bool first = true;
  for (const FinishedTrace& t : traces) {
    const std::string id_hex = TraceIdHex(t.trace_id);
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"" + JsonEscape(t.endpoint) +
           "\", \"cat\": \"request\", \"ph\": \"X\", \"ts\": " +
           JsonNumber(base) + ", \"dur\": " + JsonNumber(t.total_us) +
           ", \"pid\": 1, \"tid\": 0, \"args\": {\"trace_id\": \"" + id_hex +
           "\", \"spans_dropped\": " +
           std::to_string(t.spans_dropped) + "}}";
    for (const FinishedSpan& s : t.spans) {
      out += ",\n  {\"name\": \"" + JsonEscape(s.stage) +
             "\", \"cat\": \"stage\", \"ph\": \"X\", \"ts\": " +
             JsonNumber(base + s.start_us) + ", \"dur\": " +
             JsonNumber(s.dur_us) + ", \"pid\": 1, \"tid\": " +
             std::to_string(s.tid) + ", \"args\": {\"trace_id\": \"" +
             id_hex + "\"}}";
    }
    base += t.total_us + kGapUs;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace neutraj::obs
