// JSONL metrics sink: one flat JSON object per line, flushed after every
// write so a crashed or killed run still leaves parseable telemetry up to
// its last completed epoch. Values are rendered with %.17g (round-trippable
// doubles); NaN and infinities — which JSON cannot represent — become null.
//
// The trainer calls Write once per epoch with the flattened epoch record;
// any consumer that can read newline-delimited JSON (jq, pandas
// `read_json(lines=True)`) can plot a run directly.

#ifndef NEUTRAJ_OBS_JSONL_H_
#define NEUTRAJ_OBS_JSONL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace neutraj::obs {

/// Thread-safe newline-delimited JSON writer over a file.
class JsonlSink {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error when the file
  /// cannot be created.
  explicit JsonlSink(const std::string& path);
  ~JsonlSink();
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Writes one JSON object line {"k": v, ...} and flushes. Keys are emitted
  /// in the order given; duplicate keys are the caller's bug.
  void Write(const std::vector<std::pair<std::string, double>>& fields)
      NEUTRAJ_EXCLUDES(mu_);

  const std::string& path() const { return path_; }

 private:
  /// Leaf of the obs subtree: writers may hold the metrics registry lock
  /// (rank kObs) when flushing a snapshot, never the reverse.
  Mutex mu_{lock_rank::kObsSink};
  std::string path_;
  std::FILE* file_ NEUTRAJ_GUARDED_BY(mu_) NEUTRAJ_PT_GUARDED_BY(mu_);
};

/// Escapes a string for use inside a JSON string literal (quotes not
/// included). Metric names are plain ASCII so this mostly passes through.
std::string JsonEscape(const std::string& s);

}  // namespace neutraj::obs

#endif  // NEUTRAJ_OBS_JSONL_H_
