// Lightweight scoped tracing: RAII spans that feed per-name timing
// histograms in the global metrics registry and the flight recorder.
//
//   void Trainer::Train() {
//     NEUTRAJ_TRACE_SPAN("trainer/epoch");   // one histogram sample / scope
//     ...
//   }
//
// Cost model, so hot paths can carry spans without guilt:
//   - Compiled out (-DNEUTRAJ_OBS_NOTRACE): the macros expand to nothing.
//     Zero code, zero branches — the encode hot loop is bit-identical to an
//     uninstrumented build.
//   - Compiled in, tracing off (the default): one relaxed atomic load and a
//     predictable branch per scope, plus a one-time lazily-initialized
//     static per call site. No clock reads.
//   - Tracing on: two steady_clock reads per scope, one lock-free histogram
//     record, one flight-recorder push. Suitable for per-trajectory /
//     per-epoch scopes; the per-step FINE spans (inside the SAM cell) stay
//     silent unless the level is raised to kFine, because a clock read per
//     recurrence step is measurable.
//
// Span timings land in MetricsRegistry::Global() as histograms named
// `trace/<name>_us`. Levels are process-wide (SetTraceLevel), mirrored in
// the `obs/trace_level` gauge.

#ifndef NEUTRAJ_OBS_TRACE_H_
#define NEUTRAJ_OBS_TRACE_H_

#include <atomic>
#include <chrono>

#include "obs/metrics.h"

namespace neutraj::obs {

enum class TraceLevel : int {
  kOff = 0,     ///< Spans cost one relaxed load each.
  kCoarse = 1,  ///< Per-call / per-epoch spans (NEUTRAJ_TRACE_SPAN).
  kFine = 2,    ///< Also per-step spans (NEUTRAJ_TRACE_FINE_SPAN).
};

void SetTraceLevel(TraceLevel level);
TraceLevel trace_level();

namespace trace_internal {

extern std::atomic<int> g_trace_level;

inline bool TraceActive(TraceLevel required) {
  return g_trace_level.load(std::memory_order_relaxed) >=
         static_cast<int>(required);
}

/// One static call site: resolves its histogram in the global registry once
/// (function-local static init is thread-safe) and hands the span the
/// pointer, so the enabled path never does a name lookup.
class SpanSite {
 public:
  explicit SpanSite(const char* name);

  const char* name() const { return name_; }
  ConcurrentHistogram& hist() const { return *hist_; }

 private:
  const char* name_;
  ConcurrentHistogram* hist_;
};

/// RAII span; inert (a null pointer) when the level is below `required` at
/// construction time.
class ScopedSpan {
 public:
  ScopedSpan(const SpanSite& site, TraceLevel required)
      : site_(TraceActive(required) ? &site : nullptr) {
    if (site_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (site_ != nullptr) Finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Finish();  // Out of line: histogram + flight-recorder record.

  const SpanSite* site_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace trace_internal
}  // namespace neutraj::obs

#ifdef NEUTRAJ_OBS_NOTRACE

// Compiled out entirely: release builds that want provably-zero span cost.
#define NEUTRAJ_TRACE_SPAN(name) \
  do {                           \
  } while (false)
#define NEUTRAJ_TRACE_FINE_SPAN(name) \
  do {                                \
  } while (false)

#else  // !NEUTRAJ_OBS_NOTRACE

#define NEUTRAJ_OBS_CONCAT_INNER(a, b) a##b
#define NEUTRAJ_OBS_CONCAT(a, b) NEUTRAJ_OBS_CONCAT_INNER(a, b)

#define NEUTRAJ_TRACE_SPAN_AT(name, level)                            \
  static const ::neutraj::obs::trace_internal::SpanSite               \
      NEUTRAJ_OBS_CONCAT(neutraj_obs_site_, __LINE__){name};          \
  const ::neutraj::obs::trace_internal::ScopedSpan NEUTRAJ_OBS_CONCAT( \
      neutraj_obs_span_, __LINE__){                                   \
      NEUTRAJ_OBS_CONCAT(neutraj_obs_site_, __LINE__), (level)}

/// Times the enclosing scope into `trace/<name>_us` at coarse level.
#define NEUTRAJ_TRACE_SPAN(name) \
  NEUTRAJ_TRACE_SPAN_AT(name, ::neutraj::obs::TraceLevel::kCoarse)

/// Per-step hot-path span; records only at TraceLevel::kFine.
#define NEUTRAJ_TRACE_FINE_SPAN(name) \
  NEUTRAJ_TRACE_SPAN_AT(name, ::neutraj::obs::TraceLevel::kFine)

#endif  // NEUTRAJ_OBS_NOTRACE

#endif  // NEUTRAJ_OBS_TRACE_H_
