// Bounded in-memory flight recorder: a ring buffer of the most recent spans
// and events, cheap enough to leave on and dumpable when something goes
// wrong — a divergence-watchdog rollback, a fatal NEUTRAJ_ASSERT — so the
// crash report shows what the process was doing just before, not only where
// it died.
//
// Event names must be string literals (or otherwise have static storage
// duration): the ring stores the pointer, never a copy, so recording is one
// short critical section over POD writes. Timestamps are seconds since the
// recorder's construction on the steady clock — never the wall clock.
//
// The global recorder installs itself as the NEUTRAJ_ASSERT failure hook on
// first use: if the process dies on a contract violation after anything was
// recorded, the tail of the ring is printed to stderr before the abort.

#ifndef NEUTRAJ_OBS_FLIGHT_RECORDER_H_
#define NEUTRAJ_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/sync.h"

namespace neutraj::obs {

/// One recorded span completion or point event.
struct FlightEvent {
  double t_seconds = 0.0;     ///< Since recorder construction (steady clock).
  const char* name = "";      ///< Static-storage string, not owned.
  double value = 0.0;         ///< Span: duration µs. Event: caller-defined.
  bool is_span = false;
};

/// Fixed-capacity ring of recent FlightEvents. Thread-safe.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// `name` must have static storage duration (macro span names and the
  /// literal event names used by the trainer qualify).
  void RecordSpan(const char* name, double micros) NEUTRAJ_EXCLUDES(mu_);
  void RecordEvent(const char* name, double value) NEUTRAJ_EXCLUDES(mu_);

  /// Events oldest-to-newest (at most `capacity` of them).
  std::vector<FlightEvent> Snapshot() const NEUTRAJ_EXCLUDES(mu_);

  /// Human-readable dump, one event per line; empty string when nothing was
  /// recorded.
  std::string DumpText() const;

  /// Writes DumpText() to stderr with a reason header; silent when the ring
  /// is empty. This is the only sanctioned stderr telemetry path for
  /// src/core + src/nn + src/serve (see tools/lint.sh rule 5).
  void DumpToStderr(const char* reason) const;

  void Clear() NEUTRAJ_EXCLUDES(mu_);

  /// Lifetime total, including overwritten events.
  uint64_t total_recorded() const NEUTRAJ_EXCLUDES(mu_);

  /// Process-wide recorder; first use installs the NEUTRAJ_ASSERT dump hook.
  static FlightRecorder& Global();

 private:
  void Push(const char* name, double value, bool is_span)
      NEUTRAJ_EXCLUDES(mu_);

  /// Deliberately UNRANKED (default-constructed): the global recorder is the
  /// NEUTRAJ_ASSERT failure hook, so this lock is taken while the process is
  /// dying with arbitrary other locks held. A rank check firing here would
  /// recurse into the very assert machinery that is dumping the ring. The
  /// static analysis layer still covers it in full.
  mutable Mutex mu_;
  Stopwatch clock_ NEUTRAJ_GUARDED_BY(mu_);
  std::vector<FlightEvent> ring_ NEUTRAJ_GUARDED_BY(mu_);
  size_t next_ NEUTRAJ_GUARDED_BY(mu_) = 0;
  uint64_t total_ NEUTRAJ_GUARDED_BY(mu_) = 0;
};

}  // namespace neutraj::obs

#endif  // NEUTRAJ_OBS_FLIGHT_RECORDER_H_
