#include "obs/jsonl.h"

#include <cmath>
#include <stdexcept>

#include "common/string_util.h"

namespace neutraj::obs {

JsonlSink::JsonlSink(const std::string& path)
    : path_(path), file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    throw std::runtime_error("JsonlSink: cannot open '" + path +
                             "' for writing");
  }
}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::Write(
    const std::vector<std::pair<std::string, double>>& fields) {
  std::string line = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) line += ", ";
    first = false;
    line += '"';
    line += JsonEscape(key);
    line += "\": ";
    if (std::isfinite(value)) {
      line += StrFormat("%.17g", value);
    } else {
      line += "null";  // JSON has no NaN/Inf literals.
    }
  }
  line += "}\n";
  MutexLock lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace neutraj::obs
