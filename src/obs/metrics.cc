#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "common/string_util.h"

namespace neutraj::obs {

namespace {

size_t BucketFor(double micros) {
  const double m = std::max(0.0, micros);
  // Bucket 0 is [0, 1] µs inclusive (zeros and sub-µs samples are real:
  // timer resolution, no-op fast paths); bucket i >= 1 is (2^(i-1), 2^i] µs.
  // Everything above the last bound lands in the final bucket.
  size_t b = 0;
  while (b + 1 < LatencyHistogram::kNumBuckets &&
         m > LatencyHistogram::BucketUpperMicros(b)) {
    ++b;
  }
  return b;
}

}  // namespace

void LatencyHistogram::Record(double micros) {
  const double m = std::max(0.0, micros);
  ++buckets_[BucketFor(m)];
  ++count_;
  sum_ += m;
  max_ = std::max(max_, m);
}

double LatencyHistogram::PercentileMicros(double p) const {
  if (count_ == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 1.0) * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[b];
    if (static_cast<double>(seen) < target) continue;
    // Linear interpolation inside the winning bucket (the Prometheus
    // histogram_quantile rule): without it every percentile snaps to the
    // bucket's upper power of two, and a log2 layout reports p50 == p99
    // whenever one bucket holds both — exactly the p50 == p99 == 8192 µs
    // artifact BENCH_serving.json used to show on the batched phase.
    const double lower = b == 0 ? 0.0 : BucketUpperMicros(b - 1);
    const double upper = BucketUpperMicros(b);
    const double frac =
        std::clamp((target - before) / static_cast<double>(buckets_[b]),
                   0.0, 1.0);
    // No sample exceeds the tracked max, so no percentile should either —
    // this also makes single-sample histograms report the sample itself and
    // keeps the open-ended overflow bucket honest.
    return std::min(lower + frac * (upper - lower), max_);
  }
  return std::min(BucketUpperMicros(kNumBuckets - 1), max_);
}

void ConcurrentHistogram::Record(double micros) {
  const double m = std::max(0.0, micros);
  buckets_[BucketFor(m)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + m, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (m > mx &&
         !max_.compare_exchange_weak(mx, m, std::memory_order_relaxed)) {
  }
}

LatencyHistogram ConcurrentHistogram::Snapshot() const {
  LatencyHistogram out;
  uint64_t total = 0;
  for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    out.buckets_[b] = buckets_[b].load(std::memory_order_relaxed);
    total += out.buckets_[b];
  }
  out.count_ = total;  // Bucket-consistent, may trail the live counter.
  out.sum_ = sum_.load(std::memory_order_relaxed);
  out.max_ = max_.load(std::memory_order_relaxed);
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge != nullptr || e.histogram != nullptr) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as a different kind");
  }
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.counter != nullptr || e.histogram != nullptr) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as a different kind");
  }
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

ConcurrentHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.counter != nullptr || e.gauge != nullptr) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as a different kind");
  }
  if (e.histogram == nullptr) e.histogram = std::make_unique<ConcurrentHistogram>();
  return *e.histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      snap.counters.emplace_back(name, entry.counter->Value());
    } else if (entry.gauge != nullptr) {
      snap.gauges.emplace_back(name, entry.gauge->Value());
    } else if (entry.histogram != nullptr) {
      snap.histograms.emplace_back(name, entry.histogram->Snapshot());
    }
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

std::vector<std::pair<std::string, double>> MetricsSnapshot::Flatten() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters.size() + gauges.size() + histograms.size() * 5);
  for (const auto& [name, v] : counters) {
    out.emplace_back(name, static_cast<double>(v));
  }
  for (const auto& [name, v] : gauges) out.emplace_back(name, v);
  for (const auto& [name, h] : histograms) {
    out.emplace_back(name + "/count", static_cast<double>(h.count()));
    out.emplace_back(name + "/mean_us", h.mean_micros());
    out.emplace_back(name + "/p50_us", h.PercentileMicros(0.50));
    out.emplace_back(name + "/p99_us", h.PercentileMicros(0.99));
    out.emplace_back(name + "/max_us", h.max_micros());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "neutraj_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string p = PrometheusName(name);
    out += StrFormat("# TYPE %s counter\n", p.c_str());
    out += StrFormat("%s %llu\n", p.c_str(),
                     static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = PrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n", p.c_str());
    out += StrFormat("%s %.17g\n", p.c_str(), v);
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = PrometheusName(name);
    out += StrFormat("# TYPE %s histogram\n", p.c_str());
    uint64_t cumulative = 0;
    for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      cumulative += h.buckets()[b];
      out += StrFormat("%s_bucket{le=\"%.0f\"} %llu\n", p.c_str(),
                       LatencyHistogram::BucketUpperMicros(b),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", p.c_str(),
                     static_cast<unsigned long long>(h.count()));
    out += StrFormat("%s_sum %.17g\n", p.c_str(), h.sum_micros());
    out += StrFormat("%s_count %llu\n", p.c_str(),
                     static_cast<unsigned long long>(h.count()));
  }
  return out;
}

}  // namespace neutraj::obs
