#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"

namespace neutraj::obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : ring_(std::max<size_t>(1, capacity)) {}

void FlightRecorder::Push(const char* name, double value, bool is_span) {
  MutexLock lock(mu_);
  FlightEvent& slot = ring_[next_];
  slot.t_seconds = clock_.ElapsedSeconds();
  slot.name = name;
  slot.value = value;
  slot.is_span = is_span;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

void FlightRecorder::RecordSpan(const char* name, double micros) {
  Push(name, micros, /*is_span=*/true);
}

void FlightRecorder::RecordEvent(const char* name, double value) {
  Push(name, value, /*is_span=*/false);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<FlightEvent> out;
  const size_t n = std::min<uint64_t>(total_, ring_.size());
  out.reserve(n);
  // Oldest event sits at next_ once the ring has wrapped, at 0 before.
  const size_t start = total_ > ring_.size() ? next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::DumpText() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out;
  for (const FlightEvent& e : events) {
    if (e.is_span) {
      out += StrFormat("%12.6fs  span   %-32s %12.1f us\n", e.t_seconds,
                       e.name, e.value);
    } else {
      out += StrFormat("%12.6fs  event  %-32s %12.6g\n", e.t_seconds, e.name,
                       e.value);
    }
  }
  return out;
}

void FlightRecorder::DumpToStderr(const char* reason) const {
  const std::string text = DumpText();
  if (text.empty()) return;
  std::fprintf(stderr, "flight-recorder dump (%s), %llu events total:\n%s",
               reason, static_cast<unsigned long long>(total_recorded()),
               text.c_str());
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  next_ = 0;
  total_ = 0;
  std::fill(ring_.begin(), ring_.end(), FlightEvent{});
}

uint64_t FlightRecorder::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

FlightRecorder& FlightRecorder::Global() {
  struct GlobalRecorder {
    FlightRecorder recorder;
    GlobalRecorder() {
      // Installed after `recorder` is fully constructed; a later fatal
      // NEUTRAJ_ASSERT prints the ring tail before aborting.
      check_internal::SetCheckFailureHook([] {
        FlightRecorder::Global().DumpToStderr("fatal contract violation");
      });
    }
  };
  static GlobalRecorder holder;
  return holder.recorder;
}

}  // namespace neutraj::obs
