// Clustering-agreement metrics used by the paper's Fig. 9: homogeneity,
// completeness, V-measure (Rosenberg & Hirschberg, 2007) and the adjusted
// Rand index (Hubert & Arabie, 1985).

#ifndef NEUTRAJ_CLUSTER_METRICS_H_
#define NEUTRAJ_CLUSTER_METRICS_H_

#include <vector>

namespace neutraj {

/// The four agreement scores between a reference labeling ("truth", here
/// the exact-distance clustering) and a predicted labeling (embedding-based
/// clustering). Noise labels (-1) are treated as singleton clusters so that
/// two identical clusterings always score 1.0.
struct ClusterAgreement {
  double homogeneity = 0.0;
  double completeness = 0.0;
  double v_measure = 0.0;
  double adjusted_rand_index = 0.0;
};

/// Computes all four metrics. Throws std::invalid_argument on length
/// mismatch or empty inputs.
ClusterAgreement CompareClusterings(const std::vector<int>& truth,
                                    const std::vector<int>& predicted);

}  // namespace neutraj

#endif  // NEUTRAJ_CLUSTER_METRICS_H_
