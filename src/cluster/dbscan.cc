#include "cluster/dbscan.h"

#include <deque>
#include <stdexcept>

namespace neutraj {

namespace {

/// Shared DBSCAN core over an indexable distance accessor.
template <typename DistAt>
Clustering DbscanImpl(size_t n, double eps, size_t min_pts, DistAt dist) {
  if (eps < 0.0) throw std::invalid_argument("Dbscan: eps < 0");
  if (min_pts == 0) throw std::invalid_argument("Dbscan: min_pts == 0");

  constexpr int kUnvisited = -2;
  Clustering out;
  out.labels.assign(n, kUnvisited);

  auto neighbors = [&](size_t i) {
    std::vector<size_t> nb;
    for (size_t j = 0; j < n; ++j) {
      if (dist(i, j) <= eps) nb.push_back(j);  // Includes i itself.
    }
    return nb;
  };

  int cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (out.labels[i] != kUnvisited) continue;
    std::vector<size_t> nb = neighbors(i);
    if (nb.size() < min_pts) {
      out.labels[i] = kNoise;
      continue;
    }
    // Start a new cluster; classic expand-by-queue.
    out.labels[i] = cluster;
    std::deque<size_t> queue(nb.begin(), nb.end());
    while (!queue.empty()) {
      const size_t q = queue.front();
      queue.pop_front();
      if (out.labels[q] == kNoise) out.labels[q] = cluster;  // Border point.
      if (out.labels[q] != kUnvisited) continue;
      out.labels[q] = cluster;
      const std::vector<size_t> qn = neighbors(q);
      if (qn.size() >= min_pts) {
        queue.insert(queue.end(), qn.begin(), qn.end());
      }
    }
    ++cluster;
  }
  out.num_clusters = cluster;
  for (int l : out.labels) {
    if (l == kNoise) ++out.num_noise;
  }
  return out;
}

}  // namespace

Clustering Dbscan(const DistanceMatrix& dists, double eps, size_t min_pts) {
  return DbscanImpl(
      dists.size(), eps, min_pts,
      [&dists](size_t i, size_t j) { return dists.At(i, j); });
}

Clustering Dbscan(const std::vector<double>& dists, size_t n, double eps,
                  size_t min_pts) {
  if (dists.size() != n * n) {
    throw std::invalid_argument("Dbscan: dists size != n*n");
  }
  return DbscanImpl(n, eps, min_pts,
                    [&](size_t i, size_t j) { return dists[i * n + j]; });
}

}  // namespace neutraj
