#include "cluster/metrics.h"

#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace neutraj {

namespace {

/// Remaps labels so noise points (-1) become unique singleton clusters and
/// labels are densely numbered from 0.
std::vector<int> Densify(const std::vector<int>& labels) {
  std::map<int, int> remap;
  std::vector<int> out(labels.size());
  int next = 0;
  // First pass: real clusters.
  for (int l : labels) {
    if (l >= 0 && remap.find(l) == remap.end()) remap[l] = next++;
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    out[i] = labels[i] >= 0 ? remap[labels[i]] : next++;
  }
  return out;
}

double Entropy(const std::vector<double>& counts, double n) {
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) h -= (c / n) * std::log(c / n);
  }
  return h;
}

double LogBinomial2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

ClusterAgreement CompareClusterings(const std::vector<int>& truth,
                                    const std::vector<int>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("CompareClusterings: length mismatch");
  }
  if (truth.empty()) {
    throw std::invalid_argument("CompareClusterings: empty labelings");
  }
  const std::vector<int> t = Densify(truth);
  const std::vector<int> p = Densify(predicted);
  const double n = static_cast<double>(t.size());

  // Contingency table.
  std::map<std::pair<int, int>, double> joint;
  std::map<int, double> t_count, p_count;
  for (size_t i = 0; i < t.size(); ++i) {
    joint[{t[i], p[i]}] += 1.0;
    t_count[t[i]] += 1.0;
    p_count[p[i]] += 1.0;
  }

  std::vector<double> t_sizes, p_sizes;
  for (const auto& [k, v] : t_count) {
    (void)k;
    t_sizes.push_back(v);
  }
  for (const auto& [k, v] : p_count) {
    (void)k;
    p_sizes.push_back(v);
  }

  const double h_t = Entropy(t_sizes, n);
  const double h_p = Entropy(p_sizes, n);
  // Conditional entropies H(T|P) and H(P|T) from the contingency table.
  double h_t_given_p = 0.0;
  double h_p_given_t = 0.0;
  for (const auto& [key, nij] : joint) {
    const double nt = t_count[key.first];
    const double np = p_count[key.second];
    h_t_given_p -= (nij / n) * std::log(nij / np);
    h_p_given_t -= (nij / n) * std::log(nij / nt);
  }

  ClusterAgreement a;
  a.homogeneity = h_t > 0.0 ? 1.0 - h_t_given_p / h_t : 1.0;
  a.completeness = h_p > 0.0 ? 1.0 - h_p_given_t / h_p : 1.0;
  a.v_measure = (a.homogeneity + a.completeness) > 0.0
                    ? 2.0 * a.homogeneity * a.completeness /
                          (a.homogeneity + a.completeness)
                    : 0.0;

  // Adjusted Rand index.
  double sum_comb_joint = 0.0;
  for (const auto& [key, nij] : joint) {
    (void)key;
    sum_comb_joint += LogBinomial2(nij);
  }
  double sum_comb_t = 0.0, sum_comb_p = 0.0;
  for (double c : t_sizes) sum_comb_t += LogBinomial2(c);
  for (double c : p_sizes) sum_comb_p += LogBinomial2(c);
  const double total_pairs = LogBinomial2(n);
  const double expected = sum_comb_t * sum_comb_p / total_pairs;
  const double max_index = (sum_comb_t + sum_comb_p) / 2.0;
  a.adjusted_rand_index =
      max_index - expected > 0.0
          ? (sum_comb_joint - expected) / (max_index - expected)
          : 1.0;
  return a;
}

}  // namespace neutraj
