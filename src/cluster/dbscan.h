// DBSCAN density-based clustering over a precomputed distance matrix —
// the clustering algorithm of the paper's trajectory-clustering experiment
// (Fig. 9), applied to both exact and embedding-based distances.

#ifndef NEUTRAJ_CLUSTER_DBSCAN_H_
#define NEUTRAJ_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "distance/pairwise.h"

namespace neutraj {

/// Label assigned to noise points.
inline constexpr int kNoise = -1;

/// DBSCAN clustering result.
struct Clustering {
  /// Per-point cluster label in [0, num_clusters) or kNoise.
  std::vector<int> labels;
  int num_clusters = 0;
  size_t num_noise = 0;
};

/// Runs DBSCAN with radius `eps` and density threshold `min_pts` (the point
/// itself counts toward min_pts, as in the original formulation).
Clustering Dbscan(const DistanceMatrix& dists, double eps, size_t min_pts);

/// DBSCAN over generic pairwise distances supplied as a dense row-major
/// n*n vector (used for embedding distances without materializing a
/// DistanceMatrix).
Clustering Dbscan(const std::vector<double>& dists, size_t n, double eps,
                  size_t min_pts);

}  // namespace neutraj

#endif  // NEUTRAJ_CLUSTER_DBSCAN_H_
