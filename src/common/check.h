// Invariant-contract macros for the numerical core.
//
// Two tiers:
//
//   NEUTRAJ_ASSERT(cond)            -- always compiled in, every build type.
//   NEUTRAJ_ASSERT_MSG(cond, msg)      For invariants whose violation means
//                                      the process must not continue (a
//                                      corrupted SAM memory write, an
//                                      out-of-bounds memory slot). Prints the
//                                      failed expression with file:line to
//                                      stderr and aborts, so violations are
//                                      loud in production and testable with
//                                      gtest death tests.
//
//   NEUTRAJ_DCHECK(cond)            -- compiled in only when the NEUTRAJ_CHECKS
//   NEUTRAJ_DCHECK_MSG(cond, msg)      CMake option is ON (it defines
//   NEUTRAJ_DCHECK_FINITE(seq)         NEUTRAJ_CHECKS). For per-element and
//   NEUTRAJ_DCHECK_SHAPE(m, r, c)      per-step validation that is too hot for
//                                      release builds: kernel shapes,
//                                      finiteness of activations/gradients,
//                                      SAM window bounds. In release builds
//                                      the condition sits behind `if (false)`,
//                                      so it still type-checks (no bit-rot)
//                                      but is never evaluated and the
//                                      optimizer removes it entirely — zero
//                                      runtime overhead, no unused-variable
//                                      warnings.
//
// Checked-build contract: a NEUTRAJ_CHECKS binary validates dimensions,
// finiteness and memory bounds at every kernel boundary, so a silent gradient
// or shape bug aborts at the first corrupted value instead of degrading
// embedding quality invisibly. CI runs the full test suite in both modes.

#ifndef NEUTRAJ_COMMON_CHECK_H_
#define NEUTRAJ_COMMON_CHECK_H_

#include <cmath>
#include <cstddef>

namespace neutraj::check_internal {

/// Prints "<macro> failed: <expr> (<msg>) at <file>:<line>" to stderr and
/// aborts. Out of line so the macro expansion stays small.
[[noreturn]] void CheckFailed(const char* macro, const char* expr,
                              const char* file, int line, const char* msg);

/// Optional hook invoked once (recursion-guarded) by CheckFailed after the
/// failure message and before abort(). The observability flight recorder
/// installs itself here so a fatal contract violation dumps the last recorded
/// spans/events. The hook must be async-abort-tolerant: keep it simple, it
/// runs while the process is dying.
using FailureHook = void (*)();
void SetCheckFailureHook(FailureHook hook);

/// True when every element of `seq` (any range of doubles) is finite.
template <typename Seq>
bool AllFinite(const Seq& seq) {
  for (const double v : seq) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

inline bool AllFinite(double v) { return std::isfinite(v); }

/// True while at least one ScopedSuspendFiniteChecks is alive.
bool FiniteChecksSuspended();

/// NEUTRAJ_DCHECK_FINITE passes vacuously while suspended.
template <typename Seq>
bool FiniteOrSuspended(const Seq& seq) {
  return FiniteChecksSuspended() || AllFinite(seq);
}

}  // namespace neutraj::check_internal

namespace neutraj {

/// Suspends NEUTRAJ_DCHECK_FINITE for the lifetime of the object (process
/// wide — the divergence watchdog's anchors run on pool threads).
///
/// The trainer's divergence watchdog *intentionally* lets non-finite values
/// flow through a diverged epoch so it can detect them at the batch commit
/// and roll back to the last good state. In a NEUTRAJ_CHECKS build the
/// finiteness contracts would abort at the first NaN activation, before the
/// watchdog ever sees it — so Trainer::Train suspends them while the
/// watchdog is armed. Shape and bounds checks are never suspended.
class ScopedSuspendFiniteChecks {
 public:
  /// `active == false` constructs a no-op guard (watchdog disabled).
  explicit ScopedSuspendFiniteChecks(bool active = true);
  ~ScopedSuspendFiniteChecks();
  ScopedSuspendFiniteChecks(const ScopedSuspendFiniteChecks&) = delete;
  ScopedSuspendFiniteChecks& operator=(const ScopedSuspendFiniteChecks&) = delete;

 private:
  bool active_;
};

}  // namespace neutraj

#define NEUTRAJ_ASSERT_MSG(cond, msg)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::neutraj::check_internal::CheckFailed("NEUTRAJ_ASSERT", #cond,       \
                                             __FILE__, __LINE__, (msg));    \
    }                                                                       \
  } while (false)

#define NEUTRAJ_ASSERT(cond) NEUTRAJ_ASSERT_MSG(cond, "")

#ifdef NEUTRAJ_CHECKS

#define NEUTRAJ_DCHECK_MSG(cond, msg)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::neutraj::check_internal::CheckFailed("NEUTRAJ_DCHECK", #cond,       \
                                             __FILE__, __LINE__, (msg));    \
    }                                                                       \
  } while (false)

#else  // !NEUTRAJ_CHECKS

// `if (false)` keeps the condition compiling (so checked-only expressions
// cannot bit-rot) without ever evaluating it; dead-code elimination removes
// the whole statement in optimized builds.
#define NEUTRAJ_DCHECK_MSG(cond, msg)                                       \
  do {                                                                      \
    if (false) {                                                            \
      static_cast<void>(cond);                                              \
      static_cast<void>(msg);                                               \
    }                                                                       \
  } while (false)

#endif  // NEUTRAJ_CHECKS

#define NEUTRAJ_DCHECK(cond) NEUTRAJ_DCHECK_MSG(cond, "")

/// Every element of `seq` (a range of doubles, or a single double) is finite.
/// Passes vacuously inside a ScopedSuspendFiniteChecks scope (the divergence
/// watchdog owns non-finite detection there).
#define NEUTRAJ_DCHECK_FINITE(seq)                                      \
  NEUTRAJ_DCHECK_MSG(::neutraj::check_internal::FiniteOrSuspended(seq), \
                     #seq " must be finite")

/// Matrix `m` has exactly `r` x `c` entries.
#define NEUTRAJ_DCHECK_SHAPE(m, r, c)                                  \
  NEUTRAJ_DCHECK_MSG((m).rows() == static_cast<size_t>(r) &&           \
                         (m).cols() == static_cast<size_t>(c),         \
                     #m " must be " #r " x " #c)

#endif  // NEUTRAJ_COMMON_CHECK_H_
