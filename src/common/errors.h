// Typed error for damaged on-disk artifacts.
//
// Everything this repo persists (models, checkpoints, embedding databases,
// snapshots) is CRC-framed, so corruption is *detected* at a precise place;
// CorruptionError carries that place — the artifact, the section, and a
// position — so callers can report "file X, section 'embeddings', offset N"
// instead of a bare what() string, and can distinguish a corrupt file from
// every other runtime failure by type. It derives from std::runtime_error,
// so pre-existing catch sites keep working unchanged.

#ifndef NEUTRAJ_COMMON_ERRORS_H_
#define NEUTRAJ_COMMON_ERRORS_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

namespace neutraj {

/// A framed on-disk artifact failed validation (bad header, truncation,
/// checksum mismatch, malformed payload).
class CorruptionError : public std::runtime_error {
 public:
  /// `source` names the artifact (typically "<operation>: <path>");
  /// `section` the framed section involved ("" when the failure precedes
  /// section parsing); `offset` the byte or element position of the damage
  /// (0 when unknown); `detail` the human-readable diagnosis.
  CorruptionError(std::string source, std::string section, size_t offset,
                  const std::string& detail)
      : std::runtime_error(Render(source, section, offset, detail)),
        source_(std::move(source)),
        section_(std::move(section)),
        offset_(offset) {}

  const std::string& source() const { return source_; }
  const std::string& section() const { return section_; }
  size_t offset() const { return offset_; }

 private:
  static std::string Render(const std::string& source,
                            const std::string& section, size_t offset,
                            const std::string& detail) {
    std::string out = source;
    if (!section.empty()) out += ": section '" + section + "'";
    if (offset != 0) out += " (offset " + std::to_string(offset) + ")";
    out += ": " + detail;
    return out;
  }

  std::string source_;
  std::string section_;
  size_t offset_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_ERRORS_H_
