#include "common/string_util.h"

#include <string.h>

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace neutraj {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

uint64_t Fnv1aHash(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

// strerror_r comes in two shapes: GNU (returns char*, may ignore the
// buffer) and XSI (returns int, fills the buffer). Overload resolution
// picks the right adapter for whichever one the libc declared.
inline const char* StrErrorAdapter(char* r, const char* /*buf*/) { return r; }
inline const char* StrErrorAdapter(int r, const char* buf) {
  return r == 0 ? buf : "Unknown error";
}

}  // namespace

std::string ErrnoMessage(int err) {
  char buf[256] = "Unknown error";
  return StrErrorAdapter(strerror_r(err, buf, sizeof(buf)), buf);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace neutraj
