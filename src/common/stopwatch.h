// Wall-clock stopwatch used by the experiment harness and benches.

#ifndef NEUTRAJ_COMMON_STOPWATCH_H_
#define NEUTRAJ_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace neutraj {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// An absolute steady-clock deadline `micros` from now, for
/// CondVar::WaitUntil. This (plus Stopwatch) is the sanctioned way to
/// handle time outside src/obs/ — tools/lint.sh rule 5 bans ad-hoc
/// std::chrono timing in the serving and retrieval layers.
inline std::chrono::steady_clock::time_point DeadlineAfterMicros(
    int64_t micros) {
  return std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
}

/// Blocking sleep for backoff loops (e.g. the client's connect retries) —
/// the sanctioned wrapper that keeps raw std::chrono durations out of the
/// serving layer (tools/lint.sh rule 5).
inline void SleepForMillis(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_STOPWATCH_H_
