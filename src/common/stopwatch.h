// Wall-clock stopwatch used by the experiment harness and benches.

#ifndef NEUTRAJ_COMMON_STOPWATCH_H_
#define NEUTRAJ_COMMON_STOPWATCH_H_

#include <chrono>

namespace neutraj {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_STOPWATCH_H_
