// Compile-time lock discipline for every locked subsystem.
//
// Two enforcement layers, one header:
//
//   1. Clang Thread Safety Analysis (static, every clang build). The
//      NEUTRAJ_GUARDED_BY / NEUTRAJ_REQUIRES / ... macros attach clang's
//      `-Wthread-safety` capability attributes to mutexes, guarded state and
//      lock-taking functions, so an unlocked access to guarded state or a
//      REQUIRES-taking call without the lock is a *compile error* under
//      `-Wthread-safety -Werror` (the CI thread-safety job; no-ops under
//      gcc). The negative-compile suite in tests/negcompile/ pins each
//      annotation as load-bearing.
//
//   2. Runtime lock-rank deadlock detection (dynamic, NEUTRAJ_CHECKS builds
//      only). TSA proves per-mutex discipline but cannot see cross-mutex
//      *ordering*; a Mutex/SharedMutex constructed with a rank participates
//      in a per-thread held-rank stack, and acquiring a lock whose rank is
//      not strictly greater than every rank already held fires the fatal
//      NEUTRAJ_ASSERT path (flight-recorder dump included) at the first
//      out-of-order acquisition — no actual deadlock interleaving required.
//      Release builds compile the rank bookkeeping out entirely
//      (kLockRankChecksEnabled is false and every call sits behind
//      `if constexpr`), so the wrappers cost exactly one std::mutex.
//
// Global rank table (strictly ascending acquisition order; a thread may
// only acquire a lock of higher rank than everything it already holds):
//
//   rank  holder                              constant
//   ----  ----------------------------------  -----------------------
//      5  serve::Server wait_mu_              lock_rank::kServerWait
//     10  serve::Server conn_mu_              lock_rank::kConn
//     20  serve::MicroBatcher mu_             lock_rank::kBatcher
//     21  serve::MicroBatcher join_mu_        lock_rank::kBatcherJoin
//     30  store::DurableStore mu_             lock_rank::kStore
//     35  retrieval::IvfIndex mu_             lock_rank::kRetrieval
//     36  retrieval shard locks (all shards)  lock_rank::kDbShard
//     40  EmbeddingDatabase mu_               lock_rank::kDb
//     49  obs::RequestTracer mu_              lock_rank::kReqTrace
//     50  obs::MetricsRegistry mu_            lock_rank::kObs
//     51  obs::JsonlSink mu_                  lock_rank::kObsSink
//     60  ThreadPool mu_                      lock_rank::kThreadPool
//
// Every shard of a ShardedEmbeddingDatabase shares rank kDbShard: a correct
// scatter-gather holds at most ONE shard lock at a time (each worker locks
// only its own shard), so the checker's equal-rank-nesting abort is exactly
// the discipline — holding two shards at once is a deadlock waiting for the
// opposite acquisition order. kRetrieval sits below kDb because the IVF
// probe may still hold its lock when the exact re-rank enters the
// EmbeddingDatabase reader lock.
//
// (obs::FlightRecorder's mutex is deliberately *unranked*: it is a leaf
// acquired from the NEUTRAJ_ASSERT failure hook while the process is dying,
// where a rank violation report would recurse into the hook itself.)
//
// Raw std::mutex / std::lock_guard / std::unique_lock are banned outside
// this file by tools/lint.sh rule 7 — all locking flows through these
// wrappers so both enforcement layers see every acquisition.

#ifndef NEUTRAJ_COMMON_SYNC_H_
#define NEUTRAJ_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros. Modeled on the reference
// capability spellings (clang >= 3.6); no-ops under every other compiler.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define NEUTRAJ_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define NEUTRAJ_THREAD_ANNOTATION__(x)  // Not clang: annotations vanish.
#endif

/// Declares a class to be a lockable capability (goes between `class` and
/// the class name).
#define NEUTRAJ_CAPABILITY(x) NEUTRAJ_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define NEUTRAJ_SCOPED_CAPABILITY NEUTRAJ_THREAD_ANNOTATION__(scoped_lockable)

/// Member data that may only be touched while `x` is held (reads need at
/// least a shared hold, writes an exclusive one).
#define NEUTRAJ_GUARDED_BY(x) NEUTRAJ_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* may only be touched while `x` is held.
#define NEUTRAJ_PT_GUARDED_BY(x) NEUTRAJ_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function that must be called with the capability held exclusively.
#define NEUTRAJ_REQUIRES(...) \
  NEUTRAJ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function that must be called with at least a shared hold.
#define NEUTRAJ_REQUIRES_SHARED(...) \
  NEUTRAJ_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability exclusively and does not release it.
#define NEUTRAJ_ACQUIRE(...) \
  NEUTRAJ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function that acquires the capability shared and does not release it.
#define NEUTRAJ_ACQUIRE_SHARED(...) \
  NEUTRAJ_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function that releases a held capability (exclusive or shared when
/// called with no argument on a scoped capability's destructor).
#define NEUTRAJ_RELEASE(...) \
  NEUTRAJ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function that releases a shared hold.
#define NEUTRAJ_RELEASE_SHARED(...) \
  NEUTRAJ_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function that may acquire the capability, returning `b` on success.
#define NEUTRAJ_TRY_ACQUIRE(...) \
  NEUTRAJ_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function that must be called *without* the capability held (deadlock
/// guard for public entry points of self-locking classes).
#define NEUTRAJ_EXCLUDES(...) \
  NEUTRAJ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its class.
#define NEUTRAJ_RETURN_CAPABILITY(x) \
  NEUTRAJ_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the access is safe without the lock —
/// blanket suppressions do not pass review (see DESIGN.md "Locking model").
#define NEUTRAJ_NO_THREAD_SAFETY_ANALYSIS \
  NEUTRAJ_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace neutraj {

// ---------------------------------------------------------------------------
// Lock ranks. Strictly ascending acquisition order; see the table above.
// ---------------------------------------------------------------------------

namespace lock_rank {

/// Sentinel: the mutex opts out of rank checking (leaf locks acquired from
/// contexts where ordering is externally guaranteed, e.g. the crash path).
inline constexpr int kNoRank = -1;

inline constexpr int kServerWait = 5;   ///< serve::Server wait_mu_.
inline constexpr int kConn = 10;        ///< serve::Server conn_mu_.
inline constexpr int kBatcher = 20;     ///< serve::MicroBatcher mu_.
inline constexpr int kBatcherJoin = 21; ///< serve::MicroBatcher join_mu_.
inline constexpr int kStore = 30;       ///< store::DurableStore mu_.
inline constexpr int kRetrieval = 35;   ///< retrieval::IvfIndex mu_.
inline constexpr int kDbShard = 36;     ///< Every ShardedEmbeddingDatabase
                                        ///< shard (one-at-a-time discipline).
inline constexpr int kDb = 40;          ///< EmbeddingDatabase mu_.
inline constexpr int kReqTrace = 49;    ///< obs::RequestTracer mu_ (may
                                        ///< resolve registry metrics and
                                        ///< write its slow-query sink while
                                        ///< held, so it sits just below
                                        ///< kObs/kObsSink).
inline constexpr int kObs = 50;         ///< obs::MetricsRegistry mu_.
inline constexpr int kObsSink = 51;     ///< obs::JsonlSink mu_.
inline constexpr int kThreadPool = 60;  ///< ThreadPool mu_ (leaf).

}  // namespace lock_rank

/// True when the runtime lock-rank detector is compiled in (NEUTRAJ_CHECKS
/// builds). Release builds compile every rank operation out behind
/// `if constexpr`, so ranked and unranked mutexes cost the same.
#ifdef NEUTRAJ_CHECKS
inline constexpr bool kLockRankChecksEnabled = true;
#else
inline constexpr bool kLockRankChecksEnabled = false;
#endif

namespace sync_internal {

/// Validates `rank` against the calling thread's held-rank stack (fatal
/// NEUTRAJ_ASSERT on a non-ascending acquisition) and records it as held.
/// No-op for kNoRank. Called *before* blocking on the underlying mutex so a
/// would-deadlock ordering aborts even on interleavings that would have
/// gotten lucky this run.
void RankAcquire(int rank);

/// Removes `rank` from the calling thread's held-rank stack (topmost
/// occurrence; asserts it was held). No-op for kNoRank.
void RankRelease(int rank);

/// Number of ranked locks the calling thread currently holds (test hook).
int HeldRankDepth();

}  // namespace sync_internal

// ---------------------------------------------------------------------------
// Capability-annotated mutex wrappers.
// ---------------------------------------------------------------------------

/// std::mutex with a TSA capability and an optional lock rank.
class NEUTRAJ_CAPABILITY("mutex") Mutex {
 public:
  /// Unranked (rank checking skipped for this mutex).
  Mutex() = default;
  /// Ranked: checked builds validate every acquisition against the global
  /// rank order (see lock_rank).
  explicit Mutex(int rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NEUTRAJ_ACQUIRE() {
    if constexpr (kLockRankChecksEnabled) sync_internal::RankAcquire(rank_);
    mu_.lock();
  }

  void Unlock() NEUTRAJ_RELEASE() {
    mu_.unlock();
    if constexpr (kLockRankChecksEnabled) sync_internal::RankRelease(rank_);
  }

  int rank() const { return rank_; }

 private:
  friend class CondVar;  ///< Waits on the wrapped handle via adopt/release.

  std::mutex mu_;
  int rank_ = lock_rank::kNoRank;
};

/// std::shared_mutex with a TSA capability and an optional lock rank.
/// Shared (reader) acquisitions participate in rank checking exactly like
/// exclusive ones: a reader that acquires out of order can deadlock a
/// writer just as well.
class NEUTRAJ_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank) : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() NEUTRAJ_ACQUIRE() {
    if constexpr (kLockRankChecksEnabled) sync_internal::RankAcquire(rank_);
    mu_.lock();
  }

  void Unlock() NEUTRAJ_RELEASE() {
    mu_.unlock();
    if constexpr (kLockRankChecksEnabled) sync_internal::RankRelease(rank_);
  }

  void LockShared() NEUTRAJ_ACQUIRE_SHARED() {
    if constexpr (kLockRankChecksEnabled) sync_internal::RankAcquire(rank_);
    mu_.lock_shared();
  }

  void UnlockShared() NEUTRAJ_RELEASE_SHARED() {
    mu_.unlock_shared();
    if constexpr (kLockRankChecksEnabled) sync_internal::RankRelease(rank_);
  }

  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  int rank_ = lock_rank::kNoRank;
};

// ---------------------------------------------------------------------------
// Scoped (RAII) lock holders. These are the only sanctioned way to hold a
// lock across statements — manual Lock/Unlock pairs do not survive early
// returns or exceptions and TSA rejects unbalanced paths anyway.
// ---------------------------------------------------------------------------

/// Exclusive RAII hold on a Mutex.
class NEUTRAJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NEUTRAJ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() NEUTRAJ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Exclusive RAII hold on a SharedMutex (the writer side).
class NEUTRAJ_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) NEUTRAJ_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() NEUTRAJ_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Shared RAII hold on a SharedMutex (the reader side).
class NEUTRAJ_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) NEUTRAJ_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() NEUTRAJ_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------------------
// Condition variable over neutraj::Mutex.
// ---------------------------------------------------------------------------

/// Condition variable bound to neutraj::Mutex. Deliberately predicate-free:
/// callers write `while (!cond) cv.Wait(mu);` so the guarded predicate read
/// sits in the calling function, where TSA can see the lock is held (a
/// predicate lambda would be analyzed as an unannotated function and fail
/// the analysis).
///
/// The wrapped mutex is atomically released while blocked and reacquired
/// before Wait returns, exactly like std::condition_variable — which is why
/// Wait's capability contract is REQUIRES, not acquire/release: callers
/// hold the lock before and after. The thread's held-rank stack keeps the
/// mutex recorded across the wait for the same reason.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always loop).
  void Wait(Mutex& mu) NEUTRAJ_REQUIRES(mu);

  /// Blocks until notified or `deadline` (steady clock) passes. Returns
  /// false on timeout. Spurious wakeups possible — always loop.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      NEUTRAJ_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_SYNC_H_
