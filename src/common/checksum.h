// CRC32 checksums for on-disk integrity checks.

#ifndef NEUTRAJ_COMMON_CHECKSUM_H_
#define NEUTRAJ_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace neutraj {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
/// The standard check value holds: Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_CHECKSUM_H_
