// Filesystem helpers for model serialization and the experiment cache.

#ifndef NEUTRAJ_COMMON_FILE_UTIL_H_
#define NEUTRAJ_COMMON_FILE_UTIL_H_

#include <string>

namespace neutraj {

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Creates `path` (and parents) as a directory; no-op if it already exists.
/// Returns false on failure.
bool EnsureDirectory(const std::string& path);

/// Reads a whole file into a string. Throws std::runtime_error on failure.
std::string ReadFile(const std::string& path);

/// Writes `content` to `path` atomically (write tmp + rename).
/// Throws std::runtime_error on failure.
void WriteFileAtomic(const std::string& path, const std::string& content);

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_FILE_UTIL_H_
