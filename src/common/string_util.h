// Small string helpers used by I/O, config hashing and the bench harness.

#ifndef NEUTRAJ_COMMON_STRING_UTIL_H_
#define NEUTRAJ_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace neutraj {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Stable 64-bit FNV-1a hash of a byte string; used to key the model cache.
uint64_t Fnv1aHash(const std::string& s);

/// The system error message for errno value `err`. Thread-safe replacement
/// for std::strerror (whose shared static buffer is flagged by clang-tidy's
/// concurrency-mt-unsafe check and can be clobbered across threads).
std::string ErrnoMessage(int err);

/// Lower-cases ASCII characters.
std::string ToLower(const std::string& s);

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_STRING_UTIL_H_
