#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace neutraj {
namespace {

// Process-wide: the watchdog's anchors run on pool threads, so a
// thread-local flag set by the trainer thread would not reach them.
std::atomic<int> g_finite_checks_suspended{0};

}  // namespace

ScopedSuspendFiniteChecks::ScopedSuspendFiniteChecks(bool active)
    : active_(active) {
  if (active_) {
    g_finite_checks_suspended.fetch_add(1, std::memory_order_relaxed);
  }
}

ScopedSuspendFiniteChecks::~ScopedSuspendFiniteChecks() {
  if (active_) {
    g_finite_checks_suspended.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace neutraj

namespace neutraj::check_internal {

bool FiniteChecksSuspended() {
  return g_finite_checks_suspended.load(std::memory_order_relaxed) != 0;
}

void CheckFailed(const char* macro, const char* expr, const char* file,
                 int line, const char* msg) {
  if (msg != nullptr && msg[0] != '\0') {
    std::fprintf(stderr, "%s failed: %s (%s) at %s:%d\n", macro, expr, msg,
                 file, line);
  } else {
    std::fprintf(stderr, "%s failed: %s at %s:%d\n", macro, expr, file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace neutraj::check_internal
