#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace neutraj {
namespace {

// Process-wide: the watchdog's anchors run on pool threads, so a
// thread-local flag set by the trainer thread would not reach them.
std::atomic<int> g_finite_checks_suspended{0};

}  // namespace

ScopedSuspendFiniteChecks::ScopedSuspendFiniteChecks(bool active)
    : active_(active) {
  if (active_) {
    g_finite_checks_suspended.fetch_add(1, std::memory_order_relaxed);
  }
}

ScopedSuspendFiniteChecks::~ScopedSuspendFiniteChecks() {
  if (active_) {
    g_finite_checks_suspended.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace neutraj

namespace neutraj::check_internal {
namespace {

std::atomic<FailureHook> g_failure_hook{nullptr};

}  // namespace

bool FiniteChecksSuspended() {
  return g_finite_checks_suspended.load(std::memory_order_relaxed) != 0;
}

void SetCheckFailureHook(FailureHook hook) {
  g_failure_hook.store(hook, std::memory_order_release);
}

void CheckFailed(const char* macro, const char* expr, const char* file,
                 int line, const char* msg) {
  if (msg != nullptr && msg[0] != '\0') {
    std::fprintf(stderr, "%s failed: %s (%s) at %s:%d\n", macro, expr, msg,
                 file, line);
  } else {
    std::fprintf(stderr, "%s failed: %s at %s:%d\n", macro, expr, file, line);
  }
  std::fflush(stderr);
  // A hook that itself fails a contract must not recurse forever; run it at
  // most once per process.
  static std::atomic<bool> hook_ran{false};
  if (FailureHook hook = g_failure_hook.load(std::memory_order_acquire);
      hook != nullptr && !hook_ran.exchange(true)) {
    hook();
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace neutraj::check_internal
