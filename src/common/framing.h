// Length-prefixed, checksummed section framing for on-disk artifacts.
//
// Model files and training checkpoints share this container format so a
// truncated or bit-flipped file is rejected with a precise error instead of
// being half-parsed into a corrupt in-memory object:
//
//   NEUTRAJ-FILE v1 <kind>\n
//   SECTION <name> <size-bytes> <crc32-hex>\n
//   <exactly size-bytes payload bytes>\n
//   ... more sections ...
//   END\n
//
// Payloads are opaque byte strings (in practice, the text encodings the
// callers already use). Every section is CRC32-verified at parse time.

#ifndef NEUTRAJ_COMMON_FRAMING_H_
#define NEUTRAJ_COMMON_FRAMING_H_

#include <string>
#include <utility>
#include <vector>

namespace neutraj {

/// Accumulates named sections and renders the framed file contents.
class SectionWriter {
 public:
  /// `kind` tags the artifact type ("model", "checkpoint", ...); readers
  /// verify it so a checkpoint cannot be loaded where a model is expected.
  explicit SectionWriter(std::string kind) : kind_(std::move(kind)) {}

  /// Appends one section. Names must be non-empty and space-free.
  void Add(const std::string& name, const std::string& payload);

  /// Full file contents (header + sections + END marker).
  std::string Finish() const;

 private:
  std::string kind_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Parses and verifies a framed file in one pass.
///
/// Throws std::runtime_error naming `source` on a bad header, a kind
/// mismatch, a truncated section, a checksum mismatch, or a missing END
/// marker. After construction every section is verified.
class SectionReader {
 public:
  SectionReader(const std::string& contents, const std::string& expected_kind,
                const std::string& source);

  bool Has(const std::string& name) const;

  /// Payload of section `name`; throws std::runtime_error if absent.
  const std::string& Get(const std::string& name) const;

 private:
  std::string source_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_FRAMING_H_
