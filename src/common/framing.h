// Length-prefixed, checksummed framing — on-disk sections and wire frames.
//
// Two container formats live here:
//
// 1. On-disk section framing (SectionWriter/SectionReader). Model files and
//    training checkpoints share this text container so a truncated or
//    bit-flipped file is rejected with a precise error instead of being
//    half-parsed into a corrupt in-memory object:
//
//      NEUTRAJ-FILE v1 <kind>\n
//      SECTION <name> <size-bytes> <crc32-hex>\n
//      <exactly size-bytes payload bytes>\n
//      ... more sections ...
//      END\n
//
//    Payloads are opaque byte strings (in practice, the text encodings the
//    callers already use). Every section is CRC32-verified at parse time.
//
// 2. Binary wire frames (EncodeWireFrame/DecodeWireFrame), the unit of
//    exchange on the serving sockets (src/serve/). A frame is a fixed
//    16-byte little-endian header followed by the payload:
//
//      offset  size  field
//      0       4     magic "NTJW"
//      4       2     protocol version (kWireVersion)
//      6       2     message type (opaque to this layer)
//      8       4     payload size in bytes
//      12      4     CRC32 of the payload
//      16      n     payload
//
//    Decoding returns a typed FrameStatus instead of asserting or throwing:
//    a socket reader must distinguish "need more bytes" (kIncomplete) from
//    hard protocol errors (bad magic/version, oversized declaration,
//    checksum mismatch) that warrant an error reply and a disconnect.

#ifndef NEUTRAJ_COMMON_FRAMING_H_
#define NEUTRAJ_COMMON_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace neutraj {

/// Accumulates named sections and renders the framed file contents.
class SectionWriter {
 public:
  /// `kind` tags the artifact type ("model", "checkpoint", ...); readers
  /// verify it so a checkpoint cannot be loaded where a model is expected.
  explicit SectionWriter(std::string kind) : kind_(std::move(kind)) {}

  /// Appends one section. Names must be non-empty and space-free.
  void Add(const std::string& name, const std::string& payload);

  /// Full file contents (header + sections + END marker).
  std::string Finish() const;

 private:
  std::string kind_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Parses and verifies a framed file in one pass.
///
/// Throws CorruptionError (common/errors.h; a std::runtime_error carrying
/// source/section/offset context) on a bad header, a kind mismatch, a
/// truncated section, a checksum mismatch, or a missing END marker. After
/// construction every section is verified.
class SectionReader {
 public:
  SectionReader(const std::string& contents, const std::string& expected_kind,
                const std::string& source);

  bool Has(const std::string& name) const;

  /// Payload of section `name`; throws std::runtime_error if absent.
  const std::string& Get(const std::string& name) const;

 private:
  std::string source_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

// ---------------------------------------------------------------------------
// Binary wire frames.

/// Current wire protocol version; bumped on incompatible header or payload
/// layout changes. Decoders reject every other version.
inline constexpr uint16_t kWireVersion = 1;

/// Size of the fixed frame header preceding the payload.
inline constexpr size_t kWireHeaderSize = 16;

/// Default ceiling on a single frame's payload. A declared size above the
/// limit is rejected as kOversized *before* waiting for the payload bytes,
/// so a corrupt or hostile length field cannot make a reader buffer
/// gigabytes. 16 MiB comfortably fits any request this repo produces
/// (a 100k-point trajectory is ~1.6 MB).
inline constexpr size_t kWireMaxPayload = 16u << 20;

/// Outcome of decoding one wire frame from a byte buffer.
enum class FrameStatus {
  kOk = 0,       ///< A complete, verified frame was decoded.
  kIncomplete,   ///< Buffer ends mid-frame: read more bytes and retry.
  kBadMagic,     ///< First bytes are not "NTJW"; stream is not speaking
                 ///< this protocol (or has lost sync).
  kBadVersion,   ///< Header version != kWireVersion.
  kOversized,    ///< Declared payload size exceeds the caller's limit.
  kBadChecksum,  ///< Payload present but CRC32 mismatch: corruption.
};

/// Human-readable name for a FrameStatus ("ok", "incomplete", ...).
const char* FrameStatusName(FrameStatus s);

/// One decoded wire frame: a message type plus an opaque payload.
struct WireFrame {
  uint16_t type = 0;
  std::string payload;
};

/// Renders a frame (header + payload). Throws std::length_error if
/// `payload` exceeds `max_payload` — the encoder enforces the same limit
/// decoders do, so a conforming sender can never emit an unreadable frame.
std::string EncodeWireFrame(uint16_t type, const std::string& payload,
                            size_t max_payload = kWireMaxPayload);

/// Attempts to decode one frame from `buffer` starting at `*offset`.
///
/// On kOk, fills `*out` and advances `*offset` past the frame. On
/// kIncomplete, leaves `*offset` untouched — append more bytes and retry.
/// On any hard error, `*offset` is left untouched; the stream cannot be
/// resynchronized and should be dropped after an error reply.
FrameStatus DecodeWireFrame(const std::string& buffer, size_t* offset,
                            WireFrame* out,
                            size_t max_payload = kWireMaxPayload);

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_FRAMING_H_
