// Minimal fixed-size thread pool and a parallel-for helper.
//
// The quadratic seed-distance computation and corpus embedding are
// embarrassingly parallel; this pool lets multi-core users amortize them
// (the experiments in this repo run single-threaded for determinism of
// timings, but the drivers below are used by the library API).

#ifndef NEUTRAJ_COMMON_THREAD_POOL_H_
#define NEUTRAJ_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace neutraj {

/// Fixed-size worker pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1 enforced).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Must not be called after destruction begins.
  void Submit(std::function<void()> task) NEUTRAJ_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished executing. If any task
  /// threw, rethrows the first captured exception (later ones are dropped)
  /// and clears it, leaving the pool usable for further submissions. A
  /// worker that throws keeps running — an exception never takes a worker
  /// down or deadlocks Wait().
  void Wait() NEUTRAJ_EXCLUDES(mu_);

 private:
  void WorkerLoop() NEUTRAJ_EXCLUDES(mu_);

  /// Leaf lock: never held while running a task, so task bodies may take
  /// any other lock in the system (rank table in common/sync.h).
  Mutex mu_{lock_rank::kThreadPool};
  CondVar task_ready_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ NEUTRAJ_GUARDED_BY(mu_);
  size_t in_flight_ NEUTRAJ_GUARDED_BY(mu_) = 0;
  bool shutting_down_ NEUTRAJ_GUARDED_BY(mu_) = false;
  /// First task exception since last Wait.
  std::exception_ptr first_error_ NEUTRAJ_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

/// Runs body(i) for i in [0, n), split across `num_threads` workers in
/// contiguous chunks. `body` must be safe to call concurrently for distinct
/// i. num_threads <= 1 runs inline.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& body);

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_THREAD_POOL_H_
