#include "common/framing.h"

#include <algorithm>
#include <stdexcept>

#include "common/checksum.h"
#include "common/errors.h"
#include "common/string_util.h"

namespace neutraj {

namespace {

constexpr char kMagic[] = "NEUTRAJ-FILE v1 ";
constexpr char kEnd[] = "END";

}  // namespace

void SectionWriter::Add(const std::string& name, const std::string& payload) {
  if (name.empty() || name.find_first_of(" \n") != std::string::npos) {
    throw std::invalid_argument("SectionWriter: bad section name '" + name + "'");
  }
  sections_.emplace_back(name, payload);
}

std::string SectionWriter::Finish() const {
  std::string out = kMagic + kind_ + "\n";
  for (const auto& [name, payload] : sections_) {
    out += StrFormat("SECTION %s %zu %08x\n", name.c_str(), payload.size(),
                     Crc32(payload));
    out += payload;
    out += '\n';
  }
  out += kEnd;
  out += '\n';
  return out;
}

SectionReader::SectionReader(const std::string& contents,
                             const std::string& expected_kind,
                             const std::string& source)
    : source_(source) {
  size_t pos = 0;
  auto next_line = [&](std::string* line) -> bool {
    if (pos >= contents.size()) return false;
    const size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      *line = contents.substr(pos);
      pos = contents.size();
    } else {
      *line = contents.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  };

  std::string line;
  if (!next_line(&line) || line.rfind(kMagic, 0) != 0) {
    throw CorruptionError(source_, "", 0,
                          "not a NEUTRAJ-FILE (bad or missing header)");
  }
  const std::string kind = line.substr(sizeof(kMagic) - 1);
  if (kind != expected_kind) {
    throw CorruptionError(source_, "", 0,
                          "wrong artifact kind '" + kind + "' (expected '" +
                              expected_kind + "')");
  }

  bool saw_end = false;
  while (true) {
    const size_t header_pos = pos;
    if (!next_line(&line)) break;
    if (line == kEnd) {
      saw_end = true;
      break;
    }
    const auto fields = Split(line, ' ');
    if (fields.size() != 4 || fields[0] != "SECTION") {
      throw CorruptionError(source_, "", header_pos,
                            "malformed section header '" + line + "'");
    }
    const std::string& name = fields[1];
    size_t size = 0;
    unsigned long stored_crc = 0;
    try {
      size = std::stoull(fields[2]);
      stored_crc = std::stoul(fields[3], nullptr, 16);
    } catch (const std::exception&) {
      throw CorruptionError(source_, name, header_pos,
                            "malformed section header '" + line + "'");
    }
    const size_t payload_pos = pos;
    if (pos + size > contents.size()) {
      throw CorruptionError(source_, name, payload_pos,
                            "truncated (need " + std::to_string(size) +
                                " bytes, have " +
                                std::to_string(contents.size() - pos) + ")");
    }
    std::string payload = contents.substr(pos, size);
    pos += size;
    if (pos >= contents.size() || contents[pos] != '\n') {
      throw CorruptionError(source_, name, payload_pos,
                            "framing error (missing terminator)");
    }
    ++pos;
    const uint32_t crc = Crc32(payload);
    if (crc != static_cast<uint32_t>(stored_crc)) {
      throw CorruptionError(
          source_, name, payload_pos,
          "checksum mismatch (stored " + StrFormat("%08lx", stored_crc) +
              ", computed " + StrFormat("%08x", crc) + ") — file is corrupt");
    }
    sections_.emplace_back(name, std::move(payload));
  }
  if (!saw_end) {
    throw CorruptionError(source_, "", contents.size(),
                          "missing END marker (file truncated)");
  }
}

namespace {

constexpr char kWireMagic[4] = {'N', 'T', 'J', 'W'};

void PutLe16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutLe32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint16_t GetLe16(const unsigned char* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               static_cast<uint16_t>(p[1]) << 8);
}

uint32_t GetLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

const char* FrameStatusName(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kIncomplete: return "incomplete";
    case FrameStatus::kBadMagic: return "bad-magic";
    case FrameStatus::kBadVersion: return "bad-version";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

std::string EncodeWireFrame(uint16_t type, const std::string& payload,
                            size_t max_payload) {
  if (payload.size() > max_payload) {
    throw std::length_error("EncodeWireFrame: payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds the frame limit of " +
                            std::to_string(max_payload));
  }
  std::string out;
  out.reserve(kWireHeaderSize + payload.size());
  out.append(kWireMagic, sizeof(kWireMagic));
  PutLe16(&out, kWireVersion);
  PutLe16(&out, type);
  PutLe32(&out, static_cast<uint32_t>(payload.size()));
  PutLe32(&out, Crc32(payload));
  out += payload;
  return out;
}

FrameStatus DecodeWireFrame(const std::string& buffer, size_t* offset,
                            WireFrame* out, size_t max_payload) {
  const size_t avail = buffer.size() - *offset;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buffer.data()) + *offset;
  // Reject a wrong magic as soon as the divergent byte is visible — a
  // stream that is not speaking this protocol should fail fast, not hang
  // waiting for a full header that will never parse.
  for (size_t i = 0; i < std::min(avail, sizeof(kWireMagic)); ++i) {
    if (static_cast<char>(p[i]) != kWireMagic[i]) return FrameStatus::kBadMagic;
  }
  if (avail < kWireHeaderSize) return FrameStatus::kIncomplete;

  const uint16_t version = GetLe16(p + 4);
  if (version != kWireVersion) return FrameStatus::kBadVersion;
  const uint16_t type = GetLe16(p + 6);
  const uint32_t size = GetLe32(p + 8);
  const uint32_t stored_crc = GetLe32(p + 12);
  // Checked against the limit before requiring the payload bytes, so an
  // absurd declared size is an immediate error, not an endless read.
  if (size > max_payload) return FrameStatus::kOversized;
  if (avail < kWireHeaderSize + size) return FrameStatus::kIncomplete;

  std::string payload(buffer, *offset + kWireHeaderSize, size);
  if (Crc32(payload) != stored_crc) return FrameStatus::kBadChecksum;
  out->type = type;
  out->payload = std::move(payload);
  *offset += kWireHeaderSize + size;
  return FrameStatus::kOk;
}

bool SectionReader::Has(const std::string& name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return true;
  }
  return false;
}

const std::string& SectionReader::Get(const std::string& name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return p;
  }
  throw CorruptionError(source_, name, 0, "missing section");
}

}  // namespace neutraj
