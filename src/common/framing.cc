#include "common/framing.h"

#include <stdexcept>

#include "common/checksum.h"
#include "common/string_util.h"

namespace neutraj {

namespace {

constexpr char kMagic[] = "NEUTRAJ-FILE v1 ";
constexpr char kEnd[] = "END";

}  // namespace

void SectionWriter::Add(const std::string& name, const std::string& payload) {
  if (name.empty() || name.find_first_of(" \n") != std::string::npos) {
    throw std::invalid_argument("SectionWriter: bad section name '" + name + "'");
  }
  sections_.emplace_back(name, payload);
}

std::string SectionWriter::Finish() const {
  std::string out = kMagic + kind_ + "\n";
  for (const auto& [name, payload] : sections_) {
    out += StrFormat("SECTION %s %zu %08x\n", name.c_str(), payload.size(),
                     Crc32(payload));
    out += payload;
    out += '\n';
  }
  out += kEnd;
  out += '\n';
  return out;
}

SectionReader::SectionReader(const std::string& contents,
                             const std::string& expected_kind,
                             const std::string& source)
    : source_(source) {
  size_t pos = 0;
  auto next_line = [&](std::string* line) -> bool {
    if (pos >= contents.size()) return false;
    const size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      *line = contents.substr(pos);
      pos = contents.size();
    } else {
      *line = contents.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  };

  std::string line;
  if (!next_line(&line) || line.rfind(kMagic, 0) != 0) {
    throw std::runtime_error(source_ + ": not a NEUTRAJ-FILE (bad or missing header)");
  }
  const std::string kind = line.substr(sizeof(kMagic) - 1);
  if (kind != expected_kind) {
    throw std::runtime_error(source_ + ": wrong artifact kind '" + kind +
                             "' (expected '" + expected_kind + "')");
  }

  bool saw_end = false;
  while (next_line(&line)) {
    if (line == kEnd) {
      saw_end = true;
      break;
    }
    const auto fields = Split(line, ' ');
    if (fields.size() != 4 || fields[0] != "SECTION") {
      throw std::runtime_error(source_ + ": malformed section header '" + line + "'");
    }
    const std::string& name = fields[1];
    size_t size = 0;
    unsigned long stored_crc = 0;
    try {
      size = std::stoull(fields[2]);
      stored_crc = std::stoul(fields[3], nullptr, 16);
    } catch (const std::exception&) {
      throw std::runtime_error(source_ + ": malformed section header '" + line + "'");
    }
    if (pos + size > contents.size()) {
      throw std::runtime_error(
          source_ + ": section '" + name + "' truncated (need " +
          std::to_string(size) + " bytes, have " +
          std::to_string(contents.size() - pos) + ")");
    }
    std::string payload = contents.substr(pos, size);
    pos += size;
    if (pos >= contents.size() || contents[pos] != '\n') {
      throw std::runtime_error(source_ + ": section '" + name +
                               "' framing error (missing terminator)");
    }
    ++pos;
    const uint32_t crc = Crc32(payload);
    if (crc != static_cast<uint32_t>(stored_crc)) {
      throw std::runtime_error(
          source_ + ": checksum mismatch in section '" + name + "' (stored " +
          StrFormat("%08lx", stored_crc) + ", computed " +
          StrFormat("%08x", crc) + ") — file is corrupt");
    }
    sections_.emplace_back(name, std::move(payload));
  }
  if (!saw_end) {
    throw std::runtime_error(source_ + ": missing END marker (file truncated)");
  }
}

bool SectionReader::Has(const std::string& name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return true;
  }
  return false;
}

const std::string& SectionReader::Get(const std::string& name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return p;
  }
  throw std::runtime_error(source_ + ": missing section '" + name + "'");
}

}  // namespace neutraj
