#include "common/stopwatch.h"

namespace neutraj {

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace neutraj
