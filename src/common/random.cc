#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <sstream>

namespace neutraj {

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Categorical: all weights zero");
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // Floating-point slack: land on last entry.
}

std::vector<size_t> Rng::WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, size_t k) {
  // Efraimidis–Spirakis: key_i = u^(1/w_i); take the k largest keys.
  // Equivalent and numerically safer in log space: key = log(u)/w.
  using Entry = std::pair<double, size_t>;  // (key, index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i];
    if (w < 0.0) {
      throw std::invalid_argument(
          "WeightedSampleWithoutReplacement: negative weight");
    }
    if (w == 0.0) continue;
    double u = Uniform(1e-300, 1.0);
    double key = std::log(u) / w;
    if (heap.size() < k) {
      heap.emplace(key, i);
    } else if (key > heap.top().first) {
      heap.pop();
      heap.emplace(key, i);
    }
  }
  std::vector<size_t> result;
  result.reserve(heap.size());
  while (!heap.empty()) {
    result.push_back(heap.top().second);
    heap.pop();
  }
  std::reverse(result.begin(), result.end());  // Highest key (best) first.
  return result;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  if (k > n) throw std::invalid_argument("SampleIndices: k > n");
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  // Partial Fisher-Yates: the first k slots are a uniform sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::string Rng::SaveState() const {
  std::ostringstream ss;
  ss << engine_;
  return ss.str();
}

void Rng::LoadState(const std::string& state) {
  std::istringstream ss(state);
  std::mt19937_64 restored;
  ss >> restored;
  if (!ss) throw std::runtime_error("Rng::LoadState: malformed engine state");
  engine_ = restored;
}

}  // namespace neutraj
