// Deterministic random utilities shared across the library.
//
// All stochastic components (data generation, weight initialization, pair
// sampling) take an explicit `Rng` so experiments are reproducible from a
// single seed. We deliberately avoid std::rand and global generators.

#ifndef NEUTRAJ_COMMON_RANDOM_H_
#define NEUTRAJ_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace neutraj {

/// A seeded pseudo-random number generator with convenience helpers.
///
/// Wraps std::mt19937_64 and exposes the handful of draw shapes the library
/// needs. Copyable; copies continue the same stream independently.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian with given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Index draw proportional to the non-negative entries of `weights`.
  /// Throws std::invalid_argument if all weights are zero or any is negative.
  size_t Categorical(const std::vector<double>& weights);

  /// Samples `k` distinct indices from [0, n) without replacement, with
  /// probability proportional to `weights` (Efraimidis–Spirakis reservoir).
  /// Entries with zero weight are never selected; if fewer than `k` positive
  /// weights exist, fewer indices are returned.
  std::vector<size_t> WeightedSampleWithoutReplacement(
      const std::vector<double>& weights, size_t k);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices uniformly from [0, n) (k <= n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Serializes the full engine state (for training checkpoints). The helper
  /// methods above construct fresh distribution objects per draw, so the
  /// engine state is the *complete* stream state: LoadState followed by the
  /// same draw sequence reproduces it bit-for-bit.
  std::string SaveState() const;

  /// Restores a state produced by SaveState. Throws std::runtime_error on a
  /// malformed state string.
  void LoadState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_COMMON_RANDOM_H_
