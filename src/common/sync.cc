#include "common/sync.h"

#include <cstdio>

#include "common/check.h"

namespace neutraj {

namespace sync_internal {

namespace {

/// Deepest ranked-lock nesting one thread may reach. Generous: the deepest
/// real chain today is store -> db -> obs (3).
constexpr int kMaxHeldRanks = 64;

/// Per-thread stack of held ranks. Acquisitions keep it strictly ascending
/// by construction; releases may remove from the middle (non-LIFO unlock
/// order is legal locking), which preserves sortedness, so the top is
/// always the maximum rank held.
struct HeldRanks {
  int ranks[kMaxHeldRanks];
  int depth = 0;
};

thread_local HeldRanks tls_held;

}  // namespace

void RankAcquire(int rank) {
  if (rank == lock_rank::kNoRank) return;
  HeldRanks& held = tls_held;
  NEUTRAJ_ASSERT_MSG(held.depth < kMaxHeldRanks,
                     "lock-rank stack overflow (pathological lock nesting)");
  if (held.depth > 0 && rank <= held.ranks[held.depth - 1]) {
    // Stack buffer: CheckFailed uses the message before abort(); the frame
    // stays alive because CheckFailed never returns.
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "lock-rank order violation: acquiring rank %d while "
                  "holding rank %d (acquisition order must be strictly "
                  "ascending; see the table in common/sync.h)",
                  rank, held.ranks[held.depth - 1]);
    NEUTRAJ_ASSERT_MSG(false, msg);
  }
  held.ranks[held.depth++] = rank;
}

void RankRelease(int rank) {
  if (rank == lock_rank::kNoRank) return;
  HeldRanks& held = tls_held;
  // Topmost occurrence: identically-ranked mutexes are distinct objects,
  // but rank bookkeeping only needs the multiset of held ranks.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.ranks[i] == rank) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.ranks[j] = held.ranks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  NEUTRAJ_ASSERT_MSG(false,
                     "lock-rank release of a rank this thread never acquired");
}

int HeldRankDepth() { return tls_held.depth; }

}  // namespace sync_internal

void CondVar::Wait(Mutex& mu) {
  // Adopt the already-held native handle, wait (which atomically releases
  // and reacquires it), then release ownership back to the caller's scoped
  // lock. The held-rank stack deliberately keeps the mutex recorded across
  // the block: the capability contract (REQUIRES) says the caller holds it
  // on both sides of the call, and a blocked waiter acquires nothing else.
  std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
}

bool CondVar::WaitUntil(Mutex& mu,
                        std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(native, deadline);
  native.release();
  return status == std::cv_status::no_timeout;
}

}  // namespace neutraj
