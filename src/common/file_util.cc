#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.h"

namespace neutraj {

namespace fs = std::filesystem;

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

bool EnsureDirectory(const std::string& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) return true;
  return fs::create_directories(path, ec);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ReadFile: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFileAtomic(const std::string& path, const std::string& content) {
  // Per-call unique temp name: concurrent writers of the same path (e.g.
  // parallel bench runs sharing a cache directory) must not clobber each
  // other's in-flight temp file; whoever renames last wins, and both renames
  // install a complete file.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("WriteFileAtomic: cannot open " + tmp + ": " +
                             ErrnoMessage(errno));
  }
  size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("WriteFileAtomic: write failed " + tmp + ": " +
                               ErrnoMessage(err));
    }
    written += static_cast<size_t>(n);
  }
  // fsync before rename: otherwise a crash after the rename can leave the
  // *destination* pointing at a zero-length or partial file.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::runtime_error("WriteFileAtomic: fsync failed " + tmp + ": " +
                             ErrnoMessage(err));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("WriteFileAtomic: close failed " + tmp + ": " +
                             ErrnoMessage(err));
  }

  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("WriteFileAtomic: rename failed " + path + ": " +
                             ec.message());
  }

  // Best-effort durability of the rename itself: fsync the parent directory.
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace neutraj
