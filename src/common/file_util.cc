#include "common/file_util.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace neutraj {

namespace fs = std::filesystem;

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

bool EnsureDirectory(const std::string& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) return true;
  return fs::create_directories(path, ec);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ReadFile: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("WriteFileAtomic: cannot open " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) throw std::runtime_error("WriteFileAtomic: write failed " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) throw std::runtime_error("WriteFileAtomic: rename failed " + path);
}

}  // namespace neutraj
