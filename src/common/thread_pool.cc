#include "common/thread_pool.h"

#include <algorithm>

namespace neutraj {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    while (in_flight_ != 0) all_done_.Wait(mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && tasks_.empty()) task_ready_.Wait(mu_);
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const size_t workers = std::min(num_threads, n);
  ThreadPool pool(workers);
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t start = 0; start < n; start += chunk) {
    const size_t end = std::min(start + chunk, n);
    pool.Submit([start, end, &body] {
      for (size_t i = start; i < end; ++i) body(i);
    });
  }
  pool.Wait();
}

}  // namespace neutraj
