#include "common/thread_pool.h"

#include <algorithm>

namespace neutraj {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const size_t workers = std::min(num_threads, n);
  ThreadPool pool(workers);
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t start = 0; start < n; start += chunk) {
    const size_t end = std::min(start + chunk, n);
    pool.Submit([start, end, &body] {
      for (size_t i = start; i < end; ++i) body(i);
    });
  }
  pool.Wait();
}

}  // namespace neutraj
