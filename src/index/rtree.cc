#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace neutraj {

RTree::RTree(const std::vector<BoundingBox>& boxes) { Build(boxes); }

RTree RTree::ForTrajectories(const std::vector<Trajectory>& corpus) {
  std::vector<BoundingBox> boxes;
  boxes.reserve(corpus.size());
  for (const Trajectory& t : corpus) boxes.push_back(t.Bounds());
  return RTree(boxes);
}

void RTree::Build(const std::vector<BoundingBox>& boxes) {
  nodes_.clear();
  item_boxes_ = boxes;
  num_items_ = boxes.size();
  height_ = 0;
  if (boxes.empty()) return;

  // --- Leaf level: Sort-Tile-Recursive packing. ---
  std::vector<size_t> order(boxes.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return boxes[a].Center().x < boxes[b].Center().x;
  });
  const size_t num_leaves =
      (boxes.size() + kFanout - 1) / kFanout;
  const size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slice_size =
      (boxes.size() + num_slices - 1) / num_slices;
  std::vector<size_t> level;  // Node indices of the level being built.
  for (size_t s = 0; s < boxes.size(); s += slice_size) {
    const size_t slice_end = std::min(s + slice_size, boxes.size());
    std::sort(order.begin() + static_cast<long>(s),
              order.begin() + static_cast<long>(slice_end),
              [&](size_t a, size_t b) {
                return boxes[a].Center().y < boxes[b].Center().y;
              });
    for (size_t i = s; i < slice_end; i += kFanout) {
      Node leaf;
      leaf.leaf = true;
      const size_t end = std::min(i + kFanout, slice_end);
      for (size_t k = i; k < end; ++k) {
        leaf.children.push_back(order[k]);
        leaf.box.Extend(boxes[order[k]]);
      }
      level.push_back(nodes_.size());
      nodes_.push_back(std::move(leaf));
    }
  }
  height_ = 1;

  // --- Internal levels: pack upward until a single root remains. ---
  while (level.size() > 1) {
    std::vector<size_t> next;
    // Re-tile by center-x then center-y of the child boxes.
    std::sort(level.begin(), level.end(), [&](size_t a, size_t b) {
      return nodes_[a].box.Center().x < nodes_[b].box.Center().x;
    });
    const size_t parents = (level.size() + kFanout - 1) / kFanout;
    const size_t slices =
        static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(parents))));
    const size_t ssize = (level.size() + slices - 1) / slices;
    for (size_t s = 0; s < level.size(); s += ssize) {
      const size_t slice_end = std::min(s + ssize, level.size());
      std::sort(level.begin() + static_cast<long>(s),
                level.begin() + static_cast<long>(slice_end),
                [&](size_t a, size_t b) {
                  return nodes_[a].box.Center().y < nodes_[b].box.Center().y;
                });
      for (size_t i = s; i < slice_end; i += kFanout) {
        Node parent;
        parent.leaf = false;
        const size_t end = std::min(i + kFanout, slice_end);
        for (size_t k = i; k < end; ++k) {
          parent.children.push_back(level[k]);
          parent.box.Extend(nodes_[level[k]].box);
        }
        next.push_back(nodes_.size());
        nodes_.push_back(std::move(parent));
      }
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level[0];
}

std::vector<size_t> RTree::Query(const BoundingBox& query) const {
  std::vector<size_t> result;
  if (nodes_.empty()) return result;
  std::vector<size_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.leaf) {
      // Leaf MBR intersection does not imply every item intersects;
      // re-check each item's own box.
      for (size_t id : node.children) {
        if (item_boxes_[id].Intersects(query)) result.push_back(id);
      }
    } else {
      for (size_t child : node.children) stack.push_back(child);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace neutraj
