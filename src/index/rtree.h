// Bounding-box R-tree over trajectory MBRs (STR bulk loading, Leutenegger
// et al.), used by the paper's "similarity search with index" experiment to
// prune the candidate set before any distance computation.

#ifndef NEUTRAJ_INDEX_RTREE_H_
#define NEUTRAJ_INDEX_RTREE_H_

#include <cstddef>
#include <vector>

#include "geo/trajectory.h"

namespace neutraj {

/// Static R-tree built once over a set of rectangles (Sort-Tile-Recursive
/// packing). Query returns the ids of all rectangles intersecting a box.
class RTree {
 public:
  /// Maximum children per node.
  static constexpr size_t kFanout = 16;

  RTree() = default;

  /// Bulk-loads the tree from `boxes`; ids are the input positions.
  explicit RTree(const std::vector<BoundingBox>& boxes);

  /// Builds the MBRs of `corpus` and bulk-loads.
  static RTree ForTrajectories(const std::vector<Trajectory>& corpus);

  size_t size() const { return num_items_; }
  bool empty() const { return num_items_ == 0; }

  /// Ids of all indexed boxes intersecting `query`, in ascending id order.
  std::vector<size_t> Query(const BoundingBox& query) const;

  /// Number of nodes (diagnostics/tests).
  size_t NumNodes() const { return nodes_.size(); }

  /// Tree height (0 for an empty tree, 1 for a single leaf level).
  size_t Height() const { return height_; }

 private:
  struct Node {
    BoundingBox box = BoundingBox::Empty();
    bool leaf = false;
    /// Children node indices (internal) or item ids (leaf).
    std::vector<size_t> children;
  };

  void Build(const std::vector<BoundingBox>& boxes);

  std::vector<BoundingBox> item_boxes_;
  std::vector<Node> nodes_;
  size_t root_ = 0;
  size_t height_ = 0;
  size_t num_items_ = 0;
};

}  // namespace neutraj

#endif  // NEUTRAJ_INDEX_RTREE_H_
