// Grid-based inverted index: cell -> trajectory ids passing through it.
// The second indexing structure of the paper's "search with index"
// experiment; candidates are trajectories sharing at least one (window-
// expanded) cell with the query.

#ifndef NEUTRAJ_INDEX_INVERTED_GRID_H_
#define NEUTRAJ_INDEX_INVERTED_GRID_H_

#include <cstdint>
#include <vector>

#include "geo/grid.h"

namespace neutraj {

/// Static inverted index from grid cells to trajectory ids.
class InvertedGridIndex {
 public:
  /// Indexes `corpus` over `grid`.
  InvertedGridIndex(const Grid& grid, const std::vector<Trajectory>& corpus);

  size_t size() const { return num_items_; }
  const Grid& grid() const { return grid_; }

  /// Ids of trajectories touching any cell within `expand` cells (Chebyshev
  /// radius) of any cell of `query`, ascending and deduplicated.
  std::vector<size_t> Query(const Trajectory& query, int32_t expand = 1) const;

  /// Ids in one exact cell (no expansion), ascending.
  const std::vector<size_t>& CellPostings(const GridCell& cell) const;

 private:
  Grid grid_;
  size_t num_items_ = 0;
  std::vector<std::vector<size_t>> postings_;  // One list per flat cell index.
};

}  // namespace neutraj

#endif  // NEUTRAJ_INDEX_INVERTED_GRID_H_
