#include "index/frechet_lsh.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "approx/grid_snap.h"
#include "common/string_util.h"

namespace neutraj {

FrechetLshIndex::FrechetLshIndex(const std::vector<Trajectory>& corpus,
                                 double delta, size_t num_tables,
                                 uint64_t seed)
    : delta_(delta), num_items_(corpus.size()) {
  if (delta <= 0.0) throw std::invalid_argument("FrechetLshIndex: delta <= 0");
  if (num_tables == 0) {
    throw std::invalid_argument("FrechetLshIndex: num_tables == 0");
  }
  Rng rng(seed);
  tables_.resize(num_tables);
  for (Table& table : tables_) {
    table.shift = Point(rng.Uniform(0.0, delta), rng.Uniform(0.0, delta));
    for (size_t id = 0; id < corpus.size(); ++id) {
      table.buckets[Signature(corpus[id], table.shift)].push_back(id);
    }
  }
}

uint64_t FrechetLshIndex::Signature(const Trajectory& t, const Point& shift) const {
  // The signature is the deduplicated snapped cell sequence, hashed as a
  // byte string of cell indices (FNV over the raw integer pairs).
  const Trajectory snapped = SnapToGrid(t, delta_, shift);
  std::string bytes;
  bytes.reserve(snapped.size() * 16);
  for (const Point& p : snapped) {
    const int64_t cx = static_cast<int64_t>(std::floor((p.x - shift.x) / delta_));
    const int64_t cy = static_cast<int64_t>(std::floor((p.y - shift.y) / delta_));
    bytes.append(reinterpret_cast<const char*>(&cx), sizeof(cx));
    bytes.append(reinterpret_cast<const char*>(&cy), sizeof(cy));
  }
  return Fnv1aHash(bytes);
}

std::vector<size_t> FrechetLshIndex::Candidates(const Trajectory& query) const {
  std::vector<size_t> out;
  for (const Table& table : tables_) {
    const auto it = table.buckets.find(Signature(query, table.shift));
    if (it != table.buckets.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t FrechetLshIndex::NumBuckets() const {
  size_t total = 0;
  for (const Table& table : tables_) total += table.buckets.size();
  return total;
}

}  // namespace neutraj
