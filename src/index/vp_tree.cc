#include "index/vp_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/random.h"

namespace neutraj {

namespace {

/// Max-heap of the k best (distance, id), keeping lowest ids on ties so the
/// result matches the linear-scan tie-breaking of TopKByDistance.
class BestK {
 public:
  explicit BestK(size_t capacity) : capacity_(capacity) {}

  void Offer(double d, size_t id) {
    if (heap_.size() < capacity_) {
      heap_.emplace(d, id);
    } else if (!heap_.empty() &&
               (d < heap_.top().first ||
                (d == heap_.top().first && id < heap_.top().second))) {
      heap_.pop();
      heap_.emplace(d, id);
    }
  }

  /// Current pruning radius: distance of the worst kept candidate, or
  /// +infinity while the heap is not full.
  double Tau() const {
    return heap_.size() < capacity_ ? std::numeric_limits<double>::infinity()
                                    : heap_.top().first;
  }

  std::vector<std::pair<double, size_t>> SortedAscending() {
    std::vector<std::pair<double, size_t>> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    });
    return out;
  }

 private:
  size_t capacity_;
  // Lexicographic pair order: the max element is the worst distance (and,
  // among equals, the highest id) — exactly what Offer should evict.
  std::priority_queue<std::pair<double, size_t>> heap_;
};

}  // namespace

VpTree::VpTree(std::vector<nn::Vector> points, uint64_t seed)
    : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<size_t> ids(points_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  nodes_.reserve(points_.size());
  Rng rng(seed);
  root_ = Build(&ids, 0, ids.size(), &rng);
}

int32_t VpTree::Build(std::vector<size_t>* ids, size_t lo, size_t hi, Rng* rng) {
  if (lo >= hi) return -1;
  // Pick a random vantage point and swap it to the front of the range.
  const size_t pick = lo + static_cast<size_t>(rng->UniformInt(
                               0, static_cast<int64_t>(hi - lo) - 1));
  std::swap((*ids)[lo], (*ids)[pick]);
  const size_t vp = (*ids)[lo];

  const int32_t node_idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{vp, 0.0, -1, -1});
  if (hi - lo == 1) return node_idx;

  // Partition the remaining points by the median distance to the vantage.
  const size_t mid = lo + 1 + (hi - lo - 1) / 2;
  std::nth_element(ids->begin() + static_cast<long>(lo + 1),
                   ids->begin() + static_cast<long>(mid),
                   ids->begin() + static_cast<long>(hi),
                   [&](size_t a, size_t b) {
                     return nn::L2Distance(points_[vp], points_[a]) <
                            nn::L2Distance(points_[vp], points_[b]);
                   });
  nodes_[node_idx].radius = nn::L2Distance(points_[vp], points_[(*ids)[mid]]);
  const int32_t inside = Build(ids, lo + 1, mid + 1, rng);
  const int32_t outside = Build(ids, mid + 1, hi, rng);
  nodes_[node_idx].inside = inside;
  nodes_[node_idx].outside = outside;
  return node_idx;
}

namespace {

struct SearchCtx {
  const nn::Vector* query;
  int64_t exclude;
  size_t visits = 0;
};

}  // namespace

SearchResult VpTree::TopK(const nn::Vector& query, size_t k,
                          int64_t exclude) const {
  last_visits_ = 0;
  SearchResult result;
  if (points_.empty() || k == 0) return result;
  const size_t capacity =
      std::min(k, exclude >= 0 && static_cast<size_t>(exclude) < points_.size()
                      ? points_.size() - 1
                      : points_.size());
  BestK best(capacity);

  // Recursive descent with ball-intersection pruning; tau tightens as better
  // candidates are found, so conditions are evaluated at visit time.
  size_t visits = 0;
  auto search = [&](auto&& self, int32_t idx) -> void {
    if (idx < 0) return;
    const Node& node = nodes_[static_cast<size_t>(idx)];
    const double d = nn::L2Distance(query, points_[node.point]);
    ++visits;
    if (exclude < 0 || node.point != static_cast<size_t>(exclude)) {
      best.Offer(d, node.point);
    }
    if (d <= node.radius) {
      // Query lies in (or on) the vantage ball: matches can always be
      // inside; the outside region is reachable only across the boundary.
      self(self, node.inside);
      if (d + best.Tau() >= node.radius) self(self, node.outside);
    } else {
      self(self, node.outside);
      if (d - best.Tau() <= node.radius) self(self, node.inside);
    }
  };
  search(search, root_);
  last_visits_ = visits;

  for (const auto& [d, id] : best.SortedAscending()) {
    result.ids.push_back(id);
    result.dists.push_back(d);
  }
  return result;
}

}  // namespace neutraj
