// Vantage-point tree over embedding vectors.
//
// NeuTraj's embedding distance is a metric (L2), so after the corpus is
// embedded once, top-k queries can be answered in sub-linear expected time
// with a metric tree instead of the flat O(N*d) scan. This extends the
// paper's "elastic" property (Sec. I): NeuTraj composes with indexing
// structures on either side — spatial indexes over raw trajectories, or
// metric indexes over the learned embeddings.

#ifndef NEUTRAJ_INDEX_VP_TREE_H_
#define NEUTRAJ_INDEX_VP_TREE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/search.h"
#include "nn/matrix.h"

namespace neutraj {

/// Static vantage-point tree on a set of equal-length vectors under L2.
class VpTree {
 public:
  VpTree() = default;

  /// Builds the tree over `points` (ids are input positions). The build is
  /// deterministic given `seed` (vantage points are drawn randomly).
  explicit VpTree(std::vector<nn::Vector> points, uint64_t seed = 17);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Exact k-nearest-neighbor query (ascending by distance). `exclude`
  /// (if >= 0) removes one id — typically the query itself.
  SearchResult TopK(const nn::Vector& query, size_t k, int64_t exclude = -1) const;

  /// Number of distance evaluations spent on the last TopK call
  /// (diagnostics; shows the pruning win over a flat scan).
  size_t last_visit_count() const { return last_visits_; }

 private:
  struct Node {
    size_t point = 0;        ///< Id of the vantage point.
    double radius = 0.0;     ///< Median distance to the subtree points.
    int32_t inside = -1;     ///< Child with dist <= radius.
    int32_t outside = -1;    ///< Child with dist > radius.
  };

  int32_t Build(std::vector<size_t>* ids, size_t lo, size_t hi, Rng* rng);

  std::vector<nn::Vector> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  mutable size_t last_visits_ = 0;
};

}  // namespace neutraj

#endif  // NEUTRAJ_INDEX_VP_TREE_H_
