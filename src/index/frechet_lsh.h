// Locality-sensitive hashing of curves under the Fréchet distance
// (Driemel & Silvestri, SoCG'17).
//
// Each of L tables snaps curves to a randomly-shifted grid of resolution
// delta and uses the deduplicated cell sequence (the curve's "signature")
// as the hash key. Curves within Fréchet distance ~delta/4 collide with
// constant probability per table; curves far apart almost never do. The
// index returns the union of colliding curves over the tables — a candidate
// set for exact (or learned) re-ranking, and the third indexing option of
// the paper's "elastic" story next to the R-tree and the inverted grid.

#ifndef NEUTRAJ_INDEX_FRECHET_LSH_H_
#define NEUTRAJ_INDEX_FRECHET_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "geo/trajectory.h"

namespace neutraj {

/// Multi-table curve LSH index.
class FrechetLshIndex {
 public:
  /// Builds `num_tables` tables of resolution `delta` over `corpus`.
  /// Each table uses an independent uniform grid shift in [0, delta)^2.
  FrechetLshIndex(const std::vector<Trajectory>& corpus, double delta,
                  size_t num_tables = 4, uint64_t seed = 99);

  size_t size() const { return num_items_; }
  double delta() const { return delta_; }
  size_t num_tables() const { return tables_.size(); }

  /// Ids of corpus curves sharing a signature with `query` in at least one
  /// table, ascending and deduplicated.
  std::vector<size_t> Candidates(const Trajectory& query) const;

  /// Number of distinct buckets over all tables (diagnostics).
  size_t NumBuckets() const;

 private:
  struct Table {
    Point shift;
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  };

  uint64_t Signature(const Trajectory& t, const Point& shift) const;

  double delta_ = 0.0;
  size_t num_items_ = 0;
  std::vector<Table> tables_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_INDEX_FRECHET_LSH_H_
