#include "index/inverted_grid.h"

#include <algorithm>

namespace neutraj {

InvertedGridIndex::InvertedGridIndex(const Grid& grid,
                                     const std::vector<Trajectory>& corpus)
    : grid_(grid), num_items_(corpus.size()) {
  postings_.resize(static_cast<size_t>(grid_.NumCells()));
  for (size_t id = 0; id < corpus.size(); ++id) {
    GridCell last{-1, -1};
    for (const Point& p : corpus[id]) {
      const GridCell c = grid_.CellOf(p);
      if (c == last) continue;  // Skip runs within the same cell.
      last = c;
      auto& list = postings_[static_cast<size_t>(grid_.FlatIndex(c))];
      if (list.empty() || list.back() != id) list.push_back(id);
    }
  }
}

std::vector<size_t> InvertedGridIndex::Query(const Trajectory& query,
                                             int32_t expand) const {
  std::vector<char> cell_seen(postings_.size(), 0);
  std::vector<char> id_seen(num_items_, 0);
  std::vector<size_t> result;
  for (const Point& p : query) {
    const GridCell center = grid_.CellOf(p);
    for (const GridCell& c : grid_.ScanWindow(center, expand)) {
      const size_t flat = static_cast<size_t>(grid_.FlatIndex(c));
      if (cell_seen[flat]) continue;
      cell_seen[flat] = 1;
      for (size_t id : postings_[flat]) {
        if (!id_seen[id]) {
          id_seen[id] = 1;
          result.push_back(id);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

const std::vector<size_t>& InvertedGridIndex::CellPostings(
    const GridCell& cell) const {
  return postings_[static_cast<size_t>(grid_.FlatIndex(cell))];
}

}  // namespace neutraj
