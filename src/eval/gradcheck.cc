#include "eval/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

#include "common/random.h"
#include "core/loss.h"
#include "core/similarity.h"
#include "geo/grid.h"
#include "nn/attention.h"
#include "nn/encoder.h"
#include "nn/linear.h"

namespace neutraj::eval {

namespace {

using nn::AttentionTape;
using nn::EncodeTape;
using nn::Encoder;
using nn::Matrix;
using nn::Param;
using nn::Vector;

using LossFn = std::function<double()>;

/// A contiguous flat-index range [begin, end) of one parameter's values.
struct Block {
  std::string name;
  size_t begin = 0;
  size_t end = 0;
};

/// Probes up to opts.max_checks entries of `values[begin, end)` (strided)
/// against central differences of `loss_fn` and appends one record.
void AuditRange(const std::string& case_name, const Block& block,
                std::vector<double>* values, const std::vector<double>& grads,
                const LossFn& loss_fn, const GradAuditOptions& opts,
                std::vector<GradAuditRecord>* out) {
  GradAuditRecord rec;
  rec.case_name = case_name;
  rec.block = block.name;
  const size_t size = block.end - block.begin;
  const size_t stride = std::max<size_t>(1, size / opts.max_checks);
  for (size_t k = block.begin; k < block.end; k += stride) {
    const double saved = (*values)[k];
    (*values)[k] = saved + opts.eps;
    const double up = loss_fn();
    (*values)[k] = saved - opts.eps;
    const double down = loss_fn();
    (*values)[k] = saved;
    const double numeric = (up - down) / (2.0 * opts.eps);
    const double analytic = grads[k];
    const double scale =
        std::max({1.0, std::abs(numeric), std::abs(analytic)});
    rec.max_rel_err =
        std::max(rec.max_rel_err, std::abs(analytic - numeric) / scale);
    rec.max_abs_grad = std::max(rec.max_abs_grad, std::abs(analytic));
    ++rec.checked;
  }
  out->push_back(std::move(rec));
}

/// Audits `params` against `loss_fn`. A parameter whose row count equals
/// `gates.size() * hidden` is stacked gate blocks: it is audited one gate
/// block at a time (named "param[gate]") so an inert or swapped gate is
/// visible in the table instead of averaged away.
void AuditParams(const std::string& case_name,
                 const std::vector<Param*>& params, size_t hidden,
                 const std::vector<std::string>& gates, const LossFn& loss_fn,
                 const GradAuditOptions& opts,
                 std::vector<GradAuditRecord>* out) {
  for (Param* p : params) {
    auto& values = p->value.values();
    const auto& grads = p->grad.values();
    const size_t rows = p->value.rows();
    const size_t cols = p->value.cols();
    if (!gates.empty() && rows == gates.size() * hidden) {
      for (size_t g = 0; g < gates.size(); ++g) {
        Block block;
        block.name = p->name + "[" + gates[g] + "]";
        block.begin = g * hidden * cols;
        block.end = (g + 1) * hidden * cols;
        AuditRange(case_name, block, &values, grads, loss_fn, opts, out);
      }
    } else {
      AuditRange(case_name, {p->name, 0, values.size()}, &values, grads,
                 loss_fn, opts, out);
    }
  }
}

/// Audits a plain input vector (attention query, loss embedding, ...).
void AuditVector(const std::string& case_name, const std::string& name,
                 Vector* x, const Vector& grad, const LossFn& loss_fn,
                 const GradAuditOptions& opts,
                 std::vector<GradAuditRecord>* out) {
  AuditRange(case_name, {name, 0, x->size()}, x, grad, loss_fn, opts, out);
}

Grid AuditGrid() {
  BoundingBox region = BoundingBox::Empty();
  region.Extend(Point(0, 0));
  region.Extend(Point(1000, 1000));
  return Grid(region, 100.0);  // 10 x 10 cells.
}

Trajectory MakeTrajectory(size_t len, Rng* rng) {
  Trajectory t;
  for (size_t i = 0; i < len; ++i) {
    t.Append(Point(rng->Uniform(0.0, 1000.0), rng->Uniform(0.0, 1000.0)));
  }
  return t;
}

const std::vector<std::string> kLstmGates = {"i", "f", "g", "o"};
const std::vector<std::string> kSamLstmGates = {"f", "i", "s", "o"};
const std::vector<std::string> kSamGruGates = {"r", "z", "s"};

/// Shared body of every encoder case: loss L = 0.5 ||E||^2, analytic
/// backward with dL/dE = E, then a per-gate-block parameter audit.
void AuditEncoder(const std::string& case_name, Encoder* enc, size_t hidden,
                  const std::vector<std::string>& gates,
                  const Trajectory& traj, const GradAuditOptions& opts,
                  std::vector<GradAuditRecord>* out) {
  auto loss_fn = [enc, &traj]() {
    return 0.5 * nn::SquaredNorm(enc->Encode(traj, /*update_memory=*/false));
  };
  EncodeTape tape;
  const Vector e = enc->Encode(traj, /*update_memory=*/false, &tape);
  nn::ZeroGrads(enc->Params());
  enc->Backward(tape, e);
  AuditParams(case_name, enc->Params(), hidden, gates, loss_fn, opts, out);
}

void SeedMemory(Encoder* enc, Rng* rng, double stddev) {
  for (double& v : enc->memory().values()) v = rng->Gaussian(0.0, stddev);
  enc->memory().RecomputeWrittenFlags();
}

// -- Battery cases ----------------------------------------------------------

void CaseLinear(const GradAuditOptions& opts,
                std::vector<GradAuditRecord>* out) {
  Rng rng(101);
  nn::Linear layer("lin", /*out_dim=*/4, /*in_dim=*/3);  // Non-square.
  layer.Initialize(&rng);
  Vector x = {0.3, -0.7, 1.2};
  const Vector target = {0.1, 0.2, -0.3, 0.4};
  auto loss_fn = [&layer, &x, &target]() {
    Vector y;
    layer.Forward(x, &y);
    double l = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      l += 0.5 * (y[i] - target[i]) * (y[i] - target[i]);
    }
    return l;
  };
  Vector y;
  layer.Forward(x, &y);
  Vector dy(y.size());
  for (size_t i = 0; i < y.size(); ++i) dy[i] = y[i] - target[i];
  nn::ZeroGrads(layer.Params());
  Vector dx(x.size(), 0.0);
  layer.Backward(x, dy, &dx);
  AuditParams("linear/4x3", layer.Params(), 0, {}, loss_fn, opts, out);
  AuditVector("linear/4x3", "x", &x, dx, loss_fn, opts, out);
}

/// Attention read: dq through mix, with an optional direct dL/dA term and an
/// optional row mask.
void CaseAttention(const std::string& case_name, size_t k, size_t d,
                   bool with_da_direct, const std::vector<char>* mask,
                   uint64_t seed, const GradAuditOptions& opts,
                   std::vector<GradAuditRecord>* out) {
  Rng rng(seed);
  Matrix g(k, d);
  for (double& v : g.values()) v = rng.Gaussian(0.0, 0.5);
  Vector q(d);
  for (double& v : q) v = rng.Gaussian(0.0, 0.5);
  Vector wm(d);  // Weights of the mix term of the loss.
  for (double& v : wm) v = rng.Gaussian(0.0, 1.0);
  Vector wa(k);  // Weights of the direct attention term.
  for (double& v : wa) v = rng.Gaussian(0.0, 1.0);

  auto loss_fn = [&]() {
    AttentionTape tape;
    AttentionForward(g, q, &tape, mask);
    double l = nn::Dot(tape.mix, wm);
    if (with_da_direct) l += nn::Dot(tape.a, wa);
    return l;
  };
  AttentionTape tape;
  AttentionForward(g, q, &tape, mask);
  Vector dq(d, 0.0);
  AttentionBackward(tape, wm, with_da_direct ? &wa : nullptr, &dq);
  AuditVector(case_name, "q", &q, dq, loss_fn, opts, out);
}

void CaseLoss(const std::string& case_name, int kind, double f, double r,
              uint64_t seed, const GradAuditOptions& opts,
              std::vector<GradAuditRecord>* out) {
  Rng rng(seed);
  const size_t d = 8;
  Vector ea(d), eb(d);
  for (double& v : ea) v = rng.Gaussian(0.0, 1.0);
  for (double& v : eb) v = rng.Gaussian(0.0, 1.0);
  auto pair_loss = [kind, f, r](double g) {
    if (kind == 0) return SimilarPairLoss(g, f, r);
    if (kind == 1) return DissimilarPairLoss(g, f, r);
    return MsePairLoss(g, f, r);
  };
  auto loss_fn = [&]() { return pair_loss(EmbeddingSimilarity(ea, eb)).loss; };
  const double g = EmbeddingSimilarity(ea, eb);
  const PairLoss pl = pair_loss(g);
  Vector dea(d, 0.0), deb(d, 0.0);
  BackpropPairSimilarity(ea, eb, g, pl.dg, &dea, &deb);
  AuditVector(case_name, "e_a", &ea, dea, loss_fn, opts, out);
  AuditVector(case_name, "e_b", &eb, deb, loss_fn, opts, out);
}

/// Ranking loss through the full SAM encoder: the composite check.
void CaseEndToEnd(const GradAuditOptions& opts,
                  std::vector<GradAuditRecord>* out) {
  Rng rng(108);
  const size_t hidden = 4;
  Encoder enc(nn::Backbone::kSamLstm, AuditGrid(), hidden, /*scan_width=*/1);
  enc.Initialize(&rng);
  SeedMemory(&enc, &rng, 0.2);
  const Trajectory ta = MakeTrajectory(5, &rng);
  const Trajectory tb = MakeTrajectory(6, &rng);
  const double f = 0.0;  // g > 0 always, so the margin branch stays active.
  const double r = 1.0;
  auto loss_fn = [&]() {
    const Vector ea = enc.Encode(ta, false);
    const Vector eb = enc.Encode(tb, false);
    return DissimilarPairLoss(EmbeddingSimilarity(ea, eb), f, r).loss;
  };
  EncodeTape tape_a, tape_b;
  const Vector ea = enc.Encode(ta, false, &tape_a);
  const Vector eb = enc.Encode(tb, false, &tape_b);
  const double g = EmbeddingSimilarity(ea, eb);
  const PairLoss pl = DissimilarPairLoss(g, f, r);
  Vector dea(hidden, 0.0), deb(hidden, 0.0);
  BackpropPairSimilarity(ea, eb, g, pl.dg, &dea, &deb);
  nn::ZeroGrads(enc.Params());
  enc.Backward(tape_a, dea);
  enc.Backward(tape_b, deb);
  AuditParams("e2e/ranking_sam_lstm", enc.Params(), hidden, kSamLstmGates,
              loss_fn, opts, out);
}

struct EncoderCase {
  const char* name;
  nn::Backbone backbone;
  size_t hidden;
  int32_t scan_width;
  size_t length;
  uint64_t seed;
  // Memory preparation: 0 = none/cleared, 1 = random seed, 2 = populated by
  // encoding a warm-up trajectory with update_memory=true.
  int memory_prep;
};

constexpr EncoderCase kEncoderCases[] = {
    {"lstm/len7_h5", nn::Backbone::kLstm, 5, 0, 7, 201, 0},
    {"lstm/len1", nn::Backbone::kLstm, 5, 0, 1, 202, 0},
    {"lstm/len4_h3", nn::Backbone::kLstm, 3, 0, 4, 203, 0},
    {"gru/len7_h5", nn::Backbone::kGru, 5, 0, 7, 204, 0},
    {"gru/len1", nn::Backbone::kGru, 5, 0, 1, 205, 0},
    {"sam_lstm/frozen_w1", nn::Backbone::kSamLstm, 5, 1, 6, 206, 1},
    {"sam_lstm/w0", nn::Backbone::kSamLstm, 4, 0, 5, 207, 1},
    {"sam_lstm/len1", nn::Backbone::kSamLstm, 4, 1, 1, 208, 1},
    {"sam_lstm/all_masked", nn::Backbone::kSamLstm, 4, 1, 5, 209, 0},
    {"sam_lstm/after_writes", nn::Backbone::kSamLstm, 4, 1, 6, 210, 2},
    {"sam_gru/frozen_w1", nn::Backbone::kSamGru, 5, 1, 6, 211, 1},
    {"sam_gru/w0", nn::Backbone::kSamGru, 4, 0, 5, 212, 1},
    {"sam_gru/len1", nn::Backbone::kSamGru, 4, 1, 1, 213, 1},
    {"sam_gru/all_masked", nn::Backbone::kSamGru, 4, 1, 5, 214, 0},
    {"sam_gru/after_writes", nn::Backbone::kSamGru, 4, 1, 6, 215, 2},
};

const std::vector<std::string>& GatesFor(nn::Backbone b) {
  switch (b) {
    case nn::Backbone::kLstm:
      return kLstmGates;
    case nn::Backbone::kSamLstm:
      return kSamLstmGates;
    case nn::Backbone::kGru:
    case nn::Backbone::kSamGru:
      return kSamGruGates;
  }
  return kLstmGates;  // Unreachable.
}

void RunEncoderCase(const EncoderCase& c, const GradAuditOptions& opts,
                    std::vector<GradAuditRecord>* out) {
  Rng rng(c.seed);
  Encoder enc(c.backbone, AuditGrid(), c.hidden, c.scan_width);
  enc.Initialize(&rng);
  if (enc.has_memory()) {
    if (c.memory_prep == 1) {
      SeedMemory(&enc, &rng, 0.3);
    } else if (c.memory_prep == 2) {
      // Populate the memory through the production write path so the audit
      // reads exactly the state a training run would leave behind.
      const Trajectory warmup = MakeTrajectory(12, &rng);
      enc.Encode(warmup, /*update_memory=*/true);
    }
  }
  const Trajectory traj = MakeTrajectory(c.length, &rng);
  AuditEncoder(c.name, &enc, c.hidden, GatesFor(c.backbone), traj, opts, out);
}

}  // namespace

std::vector<GradAuditRecord> RunGradientAudit(const GradAuditOptions& opts) {
  std::vector<GradAuditRecord> out;
  CaseLinear(opts, &out);
  CaseAttention("attention/read", 9, 6, false, nullptr, 102, opts, &out);
  CaseAttention("attention/da_direct", 9, 6, true, nullptr, 103, opts, &out);
  CaseAttention("attention/k1", 1, 6, true, nullptr, 104, opts, &out);
  {
    // Half the window rows masked out (never-written memory cells).
    std::vector<char> mask = {1, 0, 1, 0, 1, 0, 1, 0, 1};
    CaseAttention("attention/masked", 9, 6, true, &mask, 105, opts, &out);
  }
  CaseLoss("loss/similar", 0, 0.4, 0.7, 106, opts, &out);
  CaseLoss("loss/dissimilar", 1, 0.0, 0.7, 107, opts, &out);
  CaseLoss("loss/mse", 2, 0.4, 0.7, 109, opts, &out);
  for (const EncoderCase& c : kEncoderCases) RunEncoderCase(c, opts, &out);
  CaseEndToEnd(opts, &out);
  return out;
}

std::string FormatGradAuditTable(const std::vector<GradAuditRecord>& records) {
  size_t case_w = 4, block_w = 5;
  for (const GradAuditRecord& r : records) {
    case_w = std::max(case_w, r.case_name.size());
    block_w = std::max(block_w, r.block.size());
  }
  std::ostringstream out;
  auto pad = [&out](const std::string& s, size_t w) {
    out << s;
    for (size_t i = s.size(); i < w + 2; ++i) out << ' ';
  };
  pad("case", case_w);
  pad("block", block_w);
  out << "checked  max|grad|     max rel err\n";
  for (const GradAuditRecord& r : records) {
    pad(r.case_name, case_w);
    pad(r.block, block_w);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%7zu  %9.3e  %14.3e", r.checked,
                  r.max_abs_grad, r.max_rel_err);
    out << buf << '\n';
  }
  return out.str();
}

}  // namespace neutraj::eval
