// Disk cache for trained models and seed distance matrices, shared by the
// bench binaries so repeated runs (and benches sharing a configuration)
// do not retrain or recompute ground truth. Keyed by a hash of the full
// training fingerprint (config + corpus contents); delete the cache
// directory to force recomputation.

#ifndef NEUTRAJ_EVAL_MODEL_CACHE_H_
#define NEUTRAJ_EVAL_MODEL_CACHE_H_

#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"

namespace neutraj {

/// Default cache location (relative to the working directory).
inline constexpr char kDefaultCacheDir[] = "neutraj_cache";

/// Stable fingerprint of a trajectory corpus (content hash).
std::string CorpusFingerprint(const std::vector<Trajectory>& trajs);

/// Computes (or loads from cache) the exact pairwise distance matrix of
/// `trajs` under `m`.
DistanceMatrix CachedPairwiseDistances(const std::vector<Trajectory>& trajs,
                                       Measure m,
                                       const std::string& cache_dir = kDefaultCacheDir);

/// A trained model plus its training telemetry.
struct TrainedModel {
  NeuTrajModel model;
  TrainResult stats;
  bool from_cache = false;
};

/// Trains a model (or loads it from cache). `grid` and the seed distance
/// matrix follow the standard pipeline; `callback` is only invoked on a
/// real (non-cached) training run.
TrainedModel TrainOrLoadModel(const NeuTrajConfig& cfg, const Grid& grid,
                              const std::vector<Trajectory>& seeds,
                              const DistanceMatrix& seed_dists,
                              const std::string& cache_dir = kDefaultCacheDir,
                              const EpochCallback& callback = nullptr);

}  // namespace neutraj

#endif  // NEUTRAJ_EVAL_MODEL_CACHE_H_
