#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/search.h"

namespace neutraj {

double HittingRatio(const std::vector<size_t>& result_topk,
                    const std::vector<size_t>& truth_topk) {
  if (truth_topk.empty()) return 0.0;
  const std::unordered_set<size_t> truth(truth_topk.begin(), truth_topk.end());
  size_t hits = 0;
  for (size_t id : result_topk) {
    if (truth.count(id) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth_topk.size());
}

double RecallOfTruth(const std::vector<size_t>& result_topk,
                     const std::vector<size_t>& truth_topm) {
  if (truth_topm.empty()) return 0.0;
  const std::unordered_set<size_t> result(result_topk.begin(), result_topk.end());
  size_t hits = 0;
  for (size_t id : truth_topm) {
    if (result.count(id) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth_topm.size());
}

double MeanDistanceOf(const std::vector<size_t>& ids,
                      const std::vector<double>& dists) {
  if (ids.empty()) return 0.0;
  double total = 0.0;
  for (size_t id : ids) total += dists[id];
  return total / static_cast<double>(ids.size());
}

TopKQuality EvaluateTopKQuality(const std::vector<QueryJudgement>& queries) {
  TopKQuality q;
  for (const QueryJudgement& query : queries) {
    const std::vector<double>& exact = *query.exact_dists;
    const SearchResult gt10 = TopKByDistance(exact, 10, query.exclude);
    const SearchResult gt50 = TopKByDistance(exact, 50, query.exclude);

    std::vector<size_t> pred10(query.ranked_ids.begin(),
                               query.ranked_ids.begin() +
                                   std::min<size_t>(10, query.ranked_ids.size()));
    std::vector<size_t> pred50(query.ranked_ids.begin(),
                               query.ranked_ids.begin() +
                                   std::min<size_t>(50, query.ranked_ids.size()));

    q.hr10 += HittingRatio(pred10, gt10.ids);
    q.hr50 += HittingRatio(pred50, gt50.ids);
    q.r10_at_50 += RecallOfTruth(pred50, gt10.ids);

    const double gt_mean10 = MeanDistanceOf(gt10.ids, exact);
    q.gt_h10 += gt_mean10;
    q.delta_h10 += std::abs(MeanDistanceOf(pred10, exact) - gt_mean10);

    // Best 10 (by exact distance) among the predicted top-50.
    std::vector<size_t> best10 = pred50;
    std::sort(best10.begin(), best10.end(),
              [&](size_t a, size_t b) { return exact[a] < exact[b]; });
    if (best10.size() > 10) best10.resize(10);
    q.delta_r10 += std::abs(MeanDistanceOf(best10, exact) - gt_mean10);
    ++q.num_queries;
  }
  if (q.num_queries > 0) {
    const double inv = 1.0 / static_cast<double>(q.num_queries);
    q.hr10 *= inv;
    q.hr50 *= inv;
    q.r10_at_50 *= inv;
    q.delta_h10 *= inv;
    q.delta_r10 *= inv;
    q.gt_h10 *= inv;
  }
  return q;
}

}  // namespace neutraj
