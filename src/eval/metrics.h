// Top-k search quality metrics of the paper's evaluation (Sec. VII-A-4):
// hitting ratio HR@k, recall R10@50, and distance distortions
// delta_H10 / delta_R10.

#ifndef NEUTRAJ_EVAL_METRICS_H_
#define NEUTRAJ_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace neutraj {

/// |top-k(result) intersect top-k(truth)| / k. Both lists must already be
/// truncated to their respective k.
double HittingRatio(const std::vector<size_t>& result_topk,
                    const std::vector<size_t>& truth_topk);

/// Fraction of `truth_topm` ids recovered anywhere in `result_topk`
/// (R10@50: m = 10 ground truth, k = 50 results).
double RecallOfTruth(const std::vector<size_t>& result_topk,
                     const std::vector<size_t>& truth_topm);

/// Mean of `dists[id]` over `ids` (0 for an empty list).
double MeanDistanceOf(const std::vector<size_t>& ids,
                      const std::vector<double>& dists);

/// Aggregated top-k search quality over a query workload.
struct TopKQuality {
  double hr10 = 0.0;      ///< HR@10.
  double hr50 = 0.0;      ///< HR@50.
  double r10_at_50 = 0.0; ///< R10@50.
  double delta_h10 = 0.0; ///< Distortion of mean exact distance, top-10 list.
  double delta_r10 = 0.0; ///< Same for the best-10 (by exact distance) of top-50.
  double gt_h10 = 0.0;    ///< Ground-truth mean top-10 distance (context row).
  size_t num_queries = 0;
};

/// Per-query inputs to the aggregate evaluation: the method's ranked ids
/// (at least 50, best first) and the exact distances from the query to
/// every corpus item.
struct QueryJudgement {
  std::vector<size_t> ranked_ids;
  const std::vector<double>* exact_dists = nullptr;
  /// Id to exclude from the ground truth (the query itself), or -1.
  int64_t exclude = -1;
};

/// Computes all metrics averaged over the workload.
TopKQuality EvaluateTopKQuality(const std::vector<QueryJudgement>& queries);

}  // namespace neutraj

#endif  // NEUTRAJ_EVAL_METRICS_H_
