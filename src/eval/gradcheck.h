// Exhaustive finite-difference audit of every hand-written backward pass.
//
// The audit enumerates a battery of cases — every backbone (LSTM, SAM-LSTM,
// GRU, SAM-GRU), every parameter at gate-block resolution, the attention
// read paths (masked, single-row, direct logit gradients), the ranking-loss
// branches, and edge shapes (length-1 trajectories, zero scan width,
// all-masked windows, memory populated by prior writes) — and compares each
// analytic gradient against central finite differences of a recomputed
// scalar loss.
//
// Shared by tests/nn_gradcheck_test.cc (which asserts every record is below
// tolerance and that the blocks designed to be live saw gradient signal)
// and the tools/gradcheck CLI (which prints the full table for humans).

#ifndef NEUTRAJ_EVAL_GRADCHECK_H_
#define NEUTRAJ_EVAL_GRADCHECK_H_

#include <cstddef>
#include <string>
#include <vector>

namespace neutraj::eval {

/// One audited gradient block: a whole parameter, one gate block of a
/// stacked parameter (rows [g*h, (g+1)*h)), or a non-parameter input vector
/// (attention query, loss embedding, layer input).
struct GradAuditRecord {
  std::string case_name;  ///< Battery case, e.g. "sam_lstm/frozen_w1".
  std::string block;      ///< Audited block, e.g. "encoder.sam.Wg[s]".
  size_t checked = 0;     ///< Entries probed (strided when blocks are big).
  double max_rel_err = 0.0;  ///< max |analytic - fd| / max(1, |a|, |fd|).
  double max_abs_grad = 0.0;  ///< max |analytic| — zero means an inert block.
};

struct GradAuditOptions {
  double eps = 1e-6;       ///< Central-difference step.
  size_t max_checks = 32;  ///< Entries probed per block (strided).
};

/// Runs the whole battery and returns one record per audited block.
/// Deterministic: fixed per-case RNG seeds, no global state.
std::vector<GradAuditRecord> RunGradientAudit(const GradAuditOptions& opts = {});

/// Renders the audit as an aligned text table (one record per line, worst
/// offenders are easy to scan for); used by the tools/gradcheck CLI.
std::string FormatGradAuditTable(const std::vector<GradAuditRecord>& records);

}  // namespace neutraj::eval

#endif  // NEUTRAJ_EVAL_GRADCHECK_H_
