#include "eval/protocol.h"

#include <numeric>
#include <stdexcept>

#include "common/random.h"
#include "core/search.h"

namespace neutraj {

DatasetSplit SplitDataset(const TrajectoryDataset& dataset, double seed_fraction,
                          double val_fraction, uint64_t rng_seed) {
  if (seed_fraction < 0 || val_fraction < 0 ||
      seed_fraction + val_fraction > 1.0) {
    throw std::invalid_argument("SplitDataset: bad fractions");
  }
  std::vector<size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), size_t{0});
  Rng rng(rng_seed);
  rng.Shuffle(&order);
  const size_t n_seed = static_cast<size_t>(seed_fraction * static_cast<double>(dataset.size()));
  const size_t n_val = static_cast<size_t>(val_fraction * static_cast<double>(dataset.size()));
  DatasetSplit split;
  for (size_t i = 0; i < order.size(); ++i) {
    const Trajectory& t = dataset.trajectories[order[i]];
    if (i < n_seed) {
      split.seeds.push_back(t);
    } else if (i < n_seed + n_val) {
      split.val.push_back(t);
    } else {
      split.test.push_back(t);
    }
  }
  return split;
}

TopKWorkload::TopKWorkload(std::vector<Trajectory> corpus,
                           const DistanceFn& exact, size_t num_queries,
                           uint64_t rng_seed)
    : corpus_(std::move(corpus)) {
  if (corpus_.empty()) throw std::invalid_argument("TopKWorkload: empty corpus");
  Rng rng(rng_seed);
  if (num_queries == 0 || num_queries >= corpus_.size()) {
    query_ids_.resize(corpus_.size());
    std::iota(query_ids_.begin(), query_ids_.end(), size_t{0});
  } else {
    query_ids_ = rng.SampleIndices(corpus_.size(), num_queries);
  }
  exact_rows_.resize(query_ids_.size());
  for (size_t q = 0; q < query_ids_.size(); ++q) {
    const Trajectory& query = corpus_[query_ids_[q]];
    exact_rows_[q].resize(corpus_.size());
    for (size_t j = 0; j < corpus_.size(); ++j) {
      exact_rows_[q][j] = j == query_ids_[q] ? 0.0 : exact(query, corpus_[j]);
    }
  }
}

TopKQuality TopKWorkload::Evaluate(const RankFn& rank) const {
  std::vector<QueryJudgement> judgements;
  judgements.reserve(query_ids_.size());
  std::vector<std::vector<size_t>> rankings(query_ids_.size());
  for (size_t q = 0; q < query_ids_.size(); ++q) {
    rankings[q] = rank(q);
    QueryJudgement j;
    j.ranked_ids = rankings[q];
    j.exact_dists = &exact_rows_[q];
    j.exclude = static_cast<int64_t>(query_ids_[q]);
    judgements.push_back(std::move(j));
  }
  return EvaluateTopKQuality(judgements);
}

TopKQuality TopKWorkload::EvaluateModel(const NeuTrajModel& model,
                                        size_t k) const {
  const std::vector<nn::Vector> embeds = model.EmbedAll(corpus_);
  return Evaluate([&](size_t query_pos) {
    const size_t qid = query_ids_[query_pos];
    const SearchResult r = EmbeddingTopK(embeds, embeds[qid], k,
                                         static_cast<int64_t>(qid));
    return r.ids;
  });
}

}  // namespace neutraj
