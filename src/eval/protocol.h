// The paper's experimental protocol (Sec. VII-A-2): split a corpus into
// seed / validation / test sets, compute exact ground truth, and evaluate
// top-k search quality of a method's rankings.

#ifndef NEUTRAJ_EVAL_PROTOCOL_H_
#define NEUTRAJ_EVAL_PROTOCOL_H_

#include <functional>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/dataset.h"
#include "eval/metrics.h"

namespace neutraj {

/// Random split of a corpus: 20% seeds (training), 10% validation, 70% test
/// by default, mirroring the paper.
struct DatasetSplit {
  std::vector<Trajectory> seeds;
  std::vector<Trajectory> val;
  std::vector<Trajectory> test;
};

DatasetSplit SplitDataset(const TrajectoryDataset& dataset,
                          double seed_fraction = 0.2,
                          double val_fraction = 0.1, uint64_t rng_seed = 1234);

/// A top-k evaluation workload over a fixed search corpus: queries are
/// corpus members, and the exact distances from each query to the whole
/// corpus are precomputed once (the expensive ground-truth step).
class TopKWorkload {
 public:
  /// Selects `num_queries` query ids at random (all items if 0 or larger
  /// than the corpus) and precomputes their exact distance rows.
  TopKWorkload(std::vector<Trajectory> corpus, const DistanceFn& exact,
               size_t num_queries, uint64_t rng_seed = 99);

  const std::vector<Trajectory>& corpus() const { return corpus_; }
  const std::vector<size_t>& query_ids() const { return query_ids_; }
  const std::vector<double>& ExactRow(size_t query_pos) const {
    return exact_rows_[query_pos];
  }

  /// A ranking function: given the query position (index into query_ids())
  /// returns at least 50 corpus ids, best first, excluding the query.
  using RankFn = std::function<std::vector<size_t>(size_t query_pos)>;

  /// Evaluates a method over all queries.
  TopKQuality Evaluate(const RankFn& rank) const;

  /// Convenience: ranking by model-embedding distance (corpus embedded once).
  TopKQuality EvaluateModel(const NeuTrajModel& model, size_t k = 50) const;

 private:
  std::vector<Trajectory> corpus_;
  std::vector<size_t> query_ids_;
  std::vector<std::vector<double>> exact_rows_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_EVAL_PROTOCOL_H_
