#include "eval/model_cache.h"

#include <cstdio>
#include <sstream>

#include "common/file_util.h"
#include "common/string_util.h"
#include "geo/traj_io.h"

namespace neutraj {

std::string CorpusFingerprint(const std::vector<Trajectory>& trajs) {
  return StrFormat("corpus-%016llx-%zu",
                   static_cast<unsigned long long>(
                       Fnv1aHash(SerializeTrajectories(trajs))),
                   trajs.size());
}

DistanceMatrix CachedPairwiseDistances(const std::vector<Trajectory>& trajs,
                                       Measure m, const std::string& cache_dir) {
  EnsureDirectory(cache_dir);
  const std::string key = StrFormat(
      "dist-%s-%016llx.txt", MeasureName(m).c_str(),
      static_cast<unsigned long long>(
          Fnv1aHash(CorpusFingerprint(trajs) + MeasureName(m))));
  const std::string path = cache_dir + "/" + key;
  if (FileExists(path)) {
    std::istringstream in(ReadFile(path));
    size_t n = 0;
    in >> n;
    if (n == trajs.size()) {
      DistanceMatrix d(n);
      bool ok = true;
      for (size_t i = 0; i < n && ok; ++i) {
        for (size_t j = i + 1; j < n && ok; ++j) {
          double v;
          if (in >> v) {
            d.Set(i, j, v);
          } else {
            ok = false;
          }
        }
      }
      if (ok) return d;
    }
    // Corrupt or stale: fall through and recompute.
    std::fprintf(stderr,
                 "[neutraj] warning: corrupt or stale distance cache entry "
                 "%s; recomputing\n",
                 path.c_str());
  }
  DistanceMatrix d = ComputePairwiseDistances(trajs, m);
  std::ostringstream out;
  out.precision(17);
  out << d.size() << '\n';
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = i + 1; j < d.size(); ++j) out << d.At(i, j) << ' ';
  }
  out << '\n';
  WriteFileAtomic(path, out.str());
  return d;
}

TrainedModel TrainOrLoadModel(const NeuTrajConfig& cfg, const Grid& grid,
                              const std::vector<Trajectory>& seeds,
                              const DistanceMatrix& seed_dists,
                              const std::string& cache_dir,
                              const EpochCallback& callback) {
  EnsureDirectory(cache_dir);
  std::ostringstream grid_sig;
  grid_sig << grid.region().min_x << ',' << grid.region().min_y << ','
           << grid.region().max_x << ',' << grid.region().max_y << ','
           << grid.num_cols() << 'x' << grid.num_rows();
  // kArchVersion invalidates cached models when the cell/encoder
  // architecture changes in ways the config does not capture.
  constexpr int kArchVersion = 2;
  const std::string fingerprint =
      StrFormat("arch=%d|", kArchVersion) + cfg.Fingerprint() + "|" +
      grid_sig.str() + "|" + CorpusFingerprint(seeds);
  const std::string base = StrFormat(
      "model-%s-%016llx", cfg.VariantName().c_str(),
      static_cast<unsigned long long>(Fnv1aHash(fingerprint)));
  const std::string model_path = cache_dir + "/" + base + ".model";
  const std::string stats_path = cache_dir + "/" + base + ".stats";

  if (FileExists(model_path) && FileExists(stats_path)) {
    try {
      TrainedModel out{NeuTrajModel::Load(model_path), TrainResult{}, true};
      std::istringstream in(ReadFile(stats_path));
      size_t epochs = 0;
      in >> out.stats.total_seconds >> out.stats.early_stopped >> epochs;
      out.stats.epochs.resize(epochs);
      for (EpochStats& e : out.stats.epochs) {
        in >> e.epoch >> e.mean_loss >> e.seconds;
      }
      if (in) return out;
      std::fprintf(stderr,
                   "[neutraj] warning: corrupt cached training stats %s; "
                   "retraining\n",
                   stats_path.c_str());
    } catch (const std::exception& e) {
      // Corrupt cache entry: fall back to retraining instead of aborting.
      std::fprintf(stderr,
                   "[neutraj] warning: corrupt cached model %s (%s); "
                   "retraining\n",
                   model_path.c_str(), e.what());
    }
  }

  Trainer trainer(cfg, grid, seeds, seed_dists);
  TrainResult stats = trainer.Train(callback);
  TrainedModel out{trainer.TakeModel(), stats, false};
  out.model.Save(model_path);
  std::ostringstream stats_out;
  stats_out.precision(17);
  stats_out << stats.total_seconds << ' ' << stats.early_stopped << ' '
            << stats.epochs.size() << '\n';
  for (const EpochStats& e : stats.epochs) {
    stats_out << e.epoch << ' ' << e.mean_loss << ' ' << e.seconds << '\n';
  }
  WriteFileAtomic(stats_path, stats_out.str());
  return out;
}

}  // namespace neutraj
