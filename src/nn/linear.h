// Fully-connected layer with manual backward pass.

#ifndef NEUTRAJ_NN_LINEAR_H_
#define NEUTRAJ_NN_LINEAR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "nn/parameter.h"

namespace neutraj::nn {

/// y = W x + b. Stateless between calls: the caller keeps the inputs it
/// needs for the backward pass (tape style), which keeps recurrent unrolling
/// explicit and testable.
class Linear {
 public:
  Linear(const std::string& name, size_t out_dim, size_t in_dim);

  /// Xavier-initializes W and zeroes b.
  void Initialize(Rng* rng);

  /// y = W x + b.
  void Forward(const Vector& x, Vector* y) const;

  /// Given dL/dy and the forward input x, accumulates dL/dW and dL/db, and
  /// adds dL/dx into `dx_accum` (which must be pre-sized to in_dim).
  void Backward(const Vector& x, const Vector& dy, Vector* dx_accum);

  size_t in_dim() const { return weight_.value.cols(); }
  size_t out_dim() const { return weight_.value.rows(); }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::vector<Param*> Params() { return {&weight_, &bias_}; }

 private:
  Param weight_;  // out_dim x in_dim
  Param bias_;    // out_dim x 1
};

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_LINEAR_H_
