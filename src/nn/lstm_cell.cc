#include "nn/lstm_cell.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"

namespace neutraj::nn {

namespace {

inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

LstmCell::LstmCell(const std::string& name, size_t input_dim, size_t hidden_dim)
    : hidden_(hidden_dim),
      wx_(name + ".Wx", 4 * hidden_dim, input_dim),
      wh_(name + ".Wh", 4 * hidden_dim, hidden_dim),
      b_(name + ".b", 4 * hidden_dim, 1) {}

void LstmCell::Initialize(Rng* rng) {
  XavierUniform(&wx_.value, rng);
  // Orthogonal init block-wise on the recurrent weights.
  for (int block = 0; block < 4; ++block) {
    Matrix sub(hidden_, hidden_);
    OrthogonalInit(&sub, rng);
    for (size_t r = 0; r < hidden_; ++r) {
      for (size_t c = 0; c < hidden_; ++c) {
        wh_.value(block * hidden_ + r, c) = sub(r, c);
      }
    }
  }
  ZeroInit(&b_.value);
  // Forget-gate bias 1.0 so early training retains state.
  for (size_t k = 0; k < hidden_; ++k) b_.value(hidden_ + k, 0) = 1.0;
}

void LstmCell::Forward(const Vector& x, const Vector& h_prev,
                       const Vector& c_prev, LstmTape* tape, Vector* h,
                       Vector* c, CellWorkspace* ws) const {
  const size_t d = hidden_;
  NEUTRAJ_DCHECK_MSG(x.size() == input_dim(), "LstmCell::Forward input width");
  NEUTRAJ_DCHECK_MSG(h_prev.size() == d && c_prev.size() == d,
                     "LstmCell::Forward state width");
  NEUTRAJ_DCHECK_FINITE(x);
  Vector local_pre;
  Vector& pre = ws != nullptr ? ws->pre : local_pre;
  pre.resize(4 * d);
  for (size_t k = 0; k < 4 * d; ++k) pre[k] = b_.value(k, 0);
  MatVecAccum(wx_.value, x, &pre);
  MatVecAccum(wh_.value, h_prev, &pre);

  tape->x = x;
  tape->h_prev = h_prev;
  tape->c_prev = c_prev;
  tape->i.resize(d);
  tape->f.resize(d);
  tape->g.resize(d);
  tape->o.resize(d);
  for (size_t k = 0; k < d; ++k) {
    tape->i[k] = Sigmoid(pre[k]);
    tape->f[k] = Sigmoid(pre[d + k]);
    tape->g[k] = std::tanh(pre[2 * d + k]);
    tape->o[k] = Sigmoid(pre[3 * d + k]);
  }
  tape->c.resize(d);
  tape->tanh_c.resize(d);
  h->resize(d);
  for (size_t k = 0; k < d; ++k) {
    tape->c[k] = tape->f[k] * c_prev[k] + tape->i[k] * tape->g[k];
    tape->tanh_c[k] = std::tanh(tape->c[k]);
    (*h)[k] = tape->o[k] * tape->tanh_c[k];
  }
  *c = tape->c;
  NEUTRAJ_DCHECK_FINITE(*h);
  NEUTRAJ_DCHECK_FINITE(*c);
}

void LstmCell::Backward(const LstmTape& tape, const Vector& dh,
                        const Vector& dc_in, Vector* dh_prev_accum,
                        Vector* dc_prev_accum, Vector* dx_accum,
                        GradBuffer* sink, CellWorkspace* ws) {
  const size_t d = hidden_;
  NEUTRAJ_DCHECK_MSG(dh.size() == d && dc_in.size() == d,
                     "LstmCell::Backward gradient width");
  NEUTRAJ_DCHECK_MSG(dh_prev_accum != nullptr && dh_prev_accum->size() == d &&
                         dc_prev_accum != nullptr && dc_prev_accum->size() == d,
                     "LstmCell::Backward accumulators must be pre-sized");
  NEUTRAJ_DCHECK_MSG(dx_accum == nullptr || dx_accum->size() == input_dim(),
                     "LstmCell::Backward dx accumulator must be pre-sized");
  NEUTRAJ_DCHECK_MSG(sink == nullptr || sink->size() == Params().size(),
                     "LstmCell::Backward sink arity");
  Vector local_dc, local_dpre;
  Vector& dc = ws != nullptr ? ws->dc : local_dc;
  Vector& dpre = ws != nullptr ? ws->dpre : local_dpre;
  dc.resize(d);
  dpre.resize(4 * d);
  for (size_t k = 0; k < d; ++k) {
    dc[k] = dc_in[k] + dh[k] * tape.o[k] * (1.0 - tape.tanh_c[k] * tape.tanh_c[k]);
    const double di_post = dc[k] * tape.g[k];
    const double df_post = dc[k] * tape.c_prev[k];
    const double dg_post = dc[k] * tape.i[k];
    const double do_post = dh[k] * tape.tanh_c[k];
    dpre[k] = di_post * tape.i[k] * (1.0 - tape.i[k]);
    dpre[d + k] = df_post * tape.f[k] * (1.0 - tape.f[k]);
    dpre[2 * d + k] = dg_post * (1.0 - tape.g[k] * tape.g[k]);
    dpre[3 * d + k] = do_post * tape.o[k] * (1.0 - tape.o[k]);
    (*dc_prev_accum)[k] += dc[k] * tape.f[k];
  }
  Matrix& gwx = sink != nullptr ? sink->at(kWx) : wx_.grad;
  Matrix& gwh = sink != nullptr ? sink->at(kWh) : wh_.grad;
  Matrix& gb = sink != nullptr ? sink->at(kB) : b_.grad;
  AddOuterProduct(&gwx, dpre, tape.x);
  AddOuterProduct(&gwh, dpre, tape.h_prev);
  for (size_t k = 0; k < 4 * d; ++k) gb(k, 0) += dpre[k];
  MatTVecAccum(wh_.value, dpre, dh_prev_accum);
  if (dx_accum != nullptr) MatTVecAccum(wx_.value, dpre, dx_accum);
}

}  // namespace neutraj::nn
