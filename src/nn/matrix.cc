#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

namespace neutraj::nn {

namespace {

void CheckDim(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("nn shape mismatch: ") + what);
}

}  // namespace

void Matrix::Zero() { std::fill(data_.begin(), data_.end(), 0.0); }

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void MatVec(const Matrix& a, const Vector& x, Vector* y) {
  CheckDim(a.cols() == x.size(), "MatVec x");
  y->assign(a.rows(), 0.0);
  MatVecAccum(a, x, y);
}

// The three dense kernels below process four rows per pass with independent
// accumulators. Without -ffast-math the compiler cannot reassociate the
// naive one-accumulator dot product, so the serial dependency chain caps
// throughput at one FMA per ~4 cycles; four chains keep the FPU pipelines
// full and reuse each loaded x/v entry across four rows. The summation
// order is fixed, so results are deterministic (but differ in low-order
// bits from the single-accumulator kernels they replace).
void MatVecAccum(const Matrix& a, const Vector& x, Vector* y) {
  CheckDim(a.cols() == x.size() && a.rows() == y->size(), "MatVecAccum");
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  const double* xp = x.data();
  double* yp = y->data();
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* r0 = a.Row(r);
    const double* r1 = a.Row(r + 1);
    const double* r2 = a.Row(r + 2);
    const double* r3 = a.Row(r + 3);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t c = 0; c < cols; ++c) {
      const double xc = xp[c];
      s0 += r0[c] * xc;
      s1 += r1[c] * xc;
      s2 += r2[c] * xc;
      s3 += r3[c] * xc;
    }
    yp[r] += s0;
    yp[r + 1] += s1;
    yp[r + 2] += s2;
    yp[r + 3] += s3;
  }
  for (; r < rows; ++r) {
    const double* row = a.Row(r);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      s0 += row[c] * xp[c];
      s1 += row[c + 1] * xp[c + 1];
      s2 += row[c + 2] * xp[c + 2];
      s3 += row[c + 3] * xp[c + 3];
    }
    for (; c < cols; ++c) s0 += row[c] * xp[c];
    yp[r] += (s0 + s1) + (s2 + s3);
  }
  NEUTRAJ_DCHECK_FINITE(*y);
}

void MatTVec(const Matrix& a, const Vector& x, Vector* y) {
  CheckDim(a.rows() == x.size(), "MatTVec x");
  y->assign(a.cols(), 0.0);
  MatTVecAccum(a, x, y);
}

void MatTVecAccum(const Matrix& a, const Vector& x, Vector* y) {
  CheckDim(a.rows() == x.size() && a.cols() == y->size(), "MatTVecAccum");
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  double* yp = y->data();
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double x0 = x[r], x1 = x[r + 1], x2 = x[r + 2], x3 = x[r + 3];
    if (x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0) continue;
    const double* r0 = a.Row(r);
    const double* r1 = a.Row(r + 1);
    const double* r2 = a.Row(r + 2);
    const double* r3 = a.Row(r + 3);
    for (size_t c = 0; c < cols; ++c) {
      yp[c] += (x0 * r0[c] + x1 * r1[c]) + (x2 * r2[c] + x3 * r3[c]);
    }
  }
  for (; r < rows; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = a.Row(r);
    for (size_t c = 0; c < cols; ++c) yp[c] += row[c] * xr;
  }
  NEUTRAJ_DCHECK_FINITE(*y);
}

void AddOuterProduct(Matrix* a, const Vector& u, const Vector& v) {
  CheckDim(a->rows() == u.size() && a->cols() == v.size(), "AddOuterProduct");
  const size_t rows = u.size();
  const size_t cols = v.size();
  const double* vp = v.data();
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double u0 = u[r], u1 = u[r + 1], u2 = u[r + 2], u3 = u[r + 3];
    if (u0 == 0.0 && u1 == 0.0 && u2 == 0.0 && u3 == 0.0) continue;
    double* r0 = a->Row(r);
    double* r1 = a->Row(r + 1);
    double* r2 = a->Row(r + 2);
    double* r3 = a->Row(r + 3);
    for (size_t c = 0; c < cols; ++c) {
      const double vc = vp[c];
      r0[c] += u0 * vc;
      r1[c] += u1 * vc;
      r2[c] += u2 * vc;
      r3[c] += u3 * vc;
    }
  }
  for (; r < rows; ++r) {
    const double ur = u[r];
    if (ur == 0.0) continue;
    double* row = a->Row(r);
    for (size_t c = 0; c < cols; ++c) row[c] += ur * vp[c];
  }
}

void AxpyInPlace(double alpha, const Vector& x, Vector* y) {
  CheckDim(x.size() == y->size(), "AxpyInPlace");
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Hadamard(const Vector& a, const Vector& b, Vector* out) {
  CheckDim(a.size() == b.size(), "Hadamard");
  out->resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] = a[i] * b[i];
}

void HadamardAccum(const Vector& a, const Vector& b, Vector* out) {
  CheckDim(a.size() == b.size() && a.size() == out->size(), "HadamardAccum");
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] += a[i] * b[i];
}

double Dot(const Vector& a, const Vector& b) {
  CheckDim(a.size() == b.size(), "Dot");
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredNorm(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return s;
}

double L2Norm(const Vector& v) { return std::sqrt(SquaredNorm(v)); }

double L2Distance(const Vector& a, const Vector& b) {
  CheckDim(a.size() == b.size(), "L2Distance");
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

void SoftmaxInPlace(Vector* v) {
  if (v->empty()) return;
  const double m = *std::max_element(v->begin(), v->end());
  double total = 0.0;
  for (double& x : *v) {
    x = std::exp(x - m);
    total += x;
  }
  NEUTRAJ_DCHECK_MSG(check_internal::FiniteChecksSuspended() ||
                         (total > 0.0 && std::isfinite(total)),
                     "softmax normalizer must be positive and finite");
  for (double& x : *v) x /= total;
  NEUTRAJ_DCHECK_FINITE(*v);
}

void SigmoidInto(const Vector& x, Vector* out) {
  out->resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) (*out)[i] = 1.0 / (1.0 + std::exp(-x[i]));
}

void TanhInto(const Vector& x, Vector* out) {
  out->resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) (*out)[i] = std::tanh(x[i]);
}

}  // namespace neutraj::nn
