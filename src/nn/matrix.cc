#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

namespace neutraj::nn {

namespace {

void CheckDim(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("nn shape mismatch: ") + what);
}

}  // namespace

void Matrix::Zero() { std::fill(data_.begin(), data_.end(), 0.0); }

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void MatVec(const Matrix& a, const Vector& x, Vector* y) {
  CheckDim(a.cols() == x.size(), "MatVec x");
  y->assign(a.rows(), 0.0);
  MatVecAccum(a, x, y);
}

void MatVecAccum(const Matrix& a, const Vector& x, Vector* y) {
  CheckDim(a.cols() == x.size() && a.rows() == y->size(), "MatVecAccum");
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) acc += row[c] * x[c];
    (*y)[r] += acc;
  }
}

void MatTVec(const Matrix& a, const Vector& x, Vector* y) {
  CheckDim(a.rows() == x.size(), "MatTVec x");
  y->assign(a.cols(), 0.0);
  MatTVecAccum(a, x, y);
}

void MatTVecAccum(const Matrix& a, const Vector& x, Vector* y) {
  CheckDim(a.rows() == x.size() && a.cols() == y->size(), "MatTVecAccum");
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.Row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < a.cols(); ++c) (*y)[c] += row[c] * xr;
  }
}

void AddOuterProduct(Matrix* a, const Vector& u, const Vector& v) {
  CheckDim(a->rows() == u.size() && a->cols() == v.size(), "AddOuterProduct");
  for (size_t r = 0; r < u.size(); ++r) {
    double* row = a->Row(r);
    const double ur = u[r];
    if (ur == 0.0) continue;
    for (size_t c = 0; c < v.size(); ++c) row[c] += ur * v[c];
  }
}

void AxpyInPlace(double alpha, const Vector& x, Vector* y) {
  CheckDim(x.size() == y->size(), "AxpyInPlace");
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Hadamard(const Vector& a, const Vector& b, Vector* out) {
  CheckDim(a.size() == b.size(), "Hadamard");
  out->resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] = a[i] * b[i];
}

void HadamardAccum(const Vector& a, const Vector& b, Vector* out) {
  CheckDim(a.size() == b.size() && a.size() == out->size(), "HadamardAccum");
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] += a[i] * b[i];
}

double Dot(const Vector& a, const Vector& b) {
  CheckDim(a.size() == b.size(), "Dot");
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredNorm(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return s;
}

double L2Norm(const Vector& v) { return std::sqrt(SquaredNorm(v)); }

double L2Distance(const Vector& a, const Vector& b) {
  CheckDim(a.size() == b.size(), "L2Distance");
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

void SoftmaxInPlace(Vector* v) {
  if (v->empty()) return;
  const double m = *std::max_element(v->begin(), v->end());
  double total = 0.0;
  for (double& x : *v) {
    x = std::exp(x - m);
    total += x;
  }
  for (double& x : *v) x /= total;
}

void SigmoidInto(const Vector& x, Vector* out) {
  out->resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) (*out)[i] = 1.0 / (1.0 + std::exp(-x[i]));
}

void TanhInto(const Vector& x, Vector* out) {
  out->resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) (*out)[i] = std::tanh(x[i]);
}

}  // namespace neutraj::nn
