#include "nn/memory_tensor.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace neutraj::nn {

MemoryTensor::MemoryTensor(int32_t num_cols, int32_t num_rows, size_t d)
    : num_cols_(num_cols), num_rows_(num_rows), dim_(d) {
  if (num_cols <= 0 || num_rows <= 0 || d == 0) {
    throw std::invalid_argument("MemoryTensor: non-positive dimensions");
  }
  data_.assign(static_cast<size_t>(num_cols) * num_rows * d, 0.0);
  written_.assign(static_cast<size_t>(num_cols) * num_rows, 0);
}

void MemoryTensor::GatherWindow(const std::vector<GridCell>& cells, Matrix* out,
                                std::vector<char>* written_mask) const {
  if (out->rows() != cells.size() || out->cols() != dim_) {
    *out = Matrix(cells.size(), dim_);
  }
  if (written_mask != nullptr) written_mask->resize(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    std::memcpy(out->Row(i), Slice(cells[i]), dim_ * sizeof(double));
    if (written_mask != nullptr) {
      (*written_mask)[i] = written_[Offset(cells[i]) / dim_];
    }
  }
}

void MemoryTensor::BlendWrite(const GridCell& cell, const Vector& gate,
                              const Vector& value) {
  // Always-on write contract (see header): a malformed or non-finite write
  // would silently corrupt every later attention read of this cell, so these
  // fire in every build type, not just under NEUTRAJ_CHECKS.
  NEUTRAJ_ASSERT_MSG(gate.size() == dim_ && value.size() == dim_,
                     "BlendWrite shape mismatch");
  NEUTRAJ_ASSERT_MSG(cell.px >= 0 && cell.px < num_cols_ && cell.qy >= 0 &&
                         cell.qy < num_rows_,
                     "BlendWrite cell out of bounds");
  NEUTRAJ_ASSERT_MSG(check_internal::AllFinite(gate) &&
                         check_internal::AllFinite(value),
                     "BlendWrite: non-finite SAM memory write");
  double* slot = MutableSlice(cell);
  for (size_t k = 0; k < dim_; ++k) {
    slot[k] = gate[k] * value[k] + (1.0 - gate[k]) * slot[k];
  }
  written_[Offset(cell) / dim_] = 1;
}

void MemoryTensor::ApplyWrites(const std::vector<PendingMemoryWrite>& log) {
  for (const PendingMemoryWrite& w : log) {
    BlendWrite(w.cell, w.gate, w.value);
  }
}

void MemoryTensor::Clear() {
  std::fill(data_.begin(), data_.end(), 0.0);
  std::fill(written_.begin(), written_.end(), 0);
}

void MemoryTensor::RecomputeWrittenFlags() {
  const size_t cells = written_.size();
  for (size_t c = 0; c < cells; ++c) {
    const double* slot = data_.data() + c * dim_;
    char flag = 0;
    for (size_t k = 0; k < dim_; ++k) {
      if (slot[k] != 0.0) {
        flag = 1;
        break;
      }
    }
    written_[c] = flag;
  }
}

int64_t MemoryTensor::CountNonZeroCells() const {
  int64_t count = 0;
  const size_t cells = data_.size() / std::max<size_t>(dim_, 1);
  for (size_t c = 0; c < cells; ++c) {
    const double* slot = data_.data() + c * dim_;
    for (size_t k = 0; k < dim_; ++k) {
      if (slot[k] != 0.0) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace neutraj::nn
