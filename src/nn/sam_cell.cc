#include "nn/sam_cell.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"
#include "obs/trace.h"

namespace neutraj::nn {

namespace {

inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

SamLstmCell::SamLstmCell(const std::string& name, size_t input_dim,
                         size_t hidden_dim)
    : hidden_(hidden_dim),
      wg_(name + ".Wg", 4 * hidden_dim, input_dim),
      ug_(name + ".Ug", 4 * hidden_dim, hidden_dim),
      bg_(name + ".bg", 4 * hidden_dim, 1),
      wc_(name + ".Wc", hidden_dim, input_dim),
      uc_(name + ".Uc", hidden_dim, hidden_dim),
      bc_(name + ".bc", hidden_dim, 1),
      whis_(name + ".Whis", hidden_dim, 2 * hidden_dim),
      bhis_(name + ".bhis", hidden_dim, 1) {}

void SamLstmCell::Initialize(Rng* rng) {
  XavierUniform(&wg_.value, rng);
  XavierUniform(&wc_.value, rng);
  XavierUniform(&whis_.value, rng);
  for (int block = 0; block < 4; ++block) {
    Matrix sub(hidden_, hidden_);
    OrthogonalInit(&sub, rng);
    for (size_t r = 0; r < hidden_; ++r) {
      for (size_t c = 0; c < hidden_; ++c) {
        ug_.value(block * hidden_ + r, c) = sub(r, c);
      }
    }
  }
  {
    Matrix sub(hidden_, hidden_);
    OrthogonalInit(&sub, rng);
    for (size_t r = 0; r < hidden_; ++r) {
      for (size_t c = 0; c < hidden_; ++c) uc_.value(r, c) = sub(r, c);
    }
  }
  ZeroInit(&bg_.value);
  ZeroInit(&bc_.value);
  ZeroInit(&bhis_.value);
  // Forget-gate bias 1.0 (block 0 holds f in the paper's order).
  for (size_t k = 0; k < hidden_; ++k) bg_.value(k, 0) = 1.0;
  // Spatial-gate bias -2.0: the cell starts close to a plain LSTM
  // (sigma(-2) ~ 0.12 of the memory read injected) and learns where the
  // memory is actually useful. Without this, half of the early-training
  // memory noise enters every cell state and optimization degrades — the
  // same transform-gate trick as highway networks. See DESIGN.md.
  for (size_t k = 0; k < hidden_; ++k) bg_.value(2 * hidden_ + k, 0) = -2.0;
}

void SamLstmCell::Forward(const Vector& x, const Vector& h_prev,
                          const Vector& c_prev,
                          const std::vector<GridCell>& window_cells,
                          const GridCell& center, MemoryTensor* memory,
                          bool use_memory, bool update_memory, SamTape* tape,
                          Vector* h, Vector* c, CellWorkspace* ws,
                          MemoryWriteLog* write_log) const {
  const size_t d = hidden_;
  NEUTRAJ_DCHECK_MSG(x.size() == input_dim(), "SamLstmCell::Forward input width");
  NEUTRAJ_DCHECK_MSG(h_prev.size() == d && c_prev.size() == d,
                     "SamLstmCell::Forward state width");
  NEUTRAJ_DCHECK_MSG(!use_memory || (memory != nullptr && memory->dim() == d),
                     "SamLstmCell::Forward memory width must equal hidden_dim");
  NEUTRAJ_DCHECK_MSG(!use_memory || !window_cells.empty(),
                     "SamLstmCell::Forward scan window must be non-empty");
  NEUTRAJ_DCHECK_FINITE(x);
  CellWorkspace local_ws_storage;
  CellWorkspace* w = ws != nullptr ? ws : &local_ws_storage;
  {
    NEUTRAJ_TRACE_FINE_SPAN("nn/sam/gates");
    // Gate pre-activations (Eq. 1).
    Vector& pre = w->pre;
    pre.resize(4 * d);
    for (size_t k = 0; k < 4 * d; ++k) pre[k] = bg_.value(k, 0);
    MatVecAccum(wg_.value, x, &pre);
    MatVecAccum(ug_.value, h_prev, &pre);

    tape->x = x;
    tape->h_prev = h_prev;
    tape->c_prev = c_prev;
    tape->f.resize(d);
    tape->i.resize(d);
    tape->s.resize(d);
    tape->o.resize(d);
    for (size_t k = 0; k < d; ++k) {
      tape->f[k] = Sigmoid(pre[k]);
      tape->i[k] = Sigmoid(pre[d + k]);
      tape->s[k] = Sigmoid(pre[2 * d + k]);
      tape->o[k] = Sigmoid(pre[3 * d + k]);
    }

    // Candidate (Eq. 2).
    Vector& cand_pre = w->cand_pre;
    cand_pre.resize(d);
    for (size_t k = 0; k < d; ++k) cand_pre[k] = bc_.value(k, 0);
    MatVecAccum(wc_.value, x, &cand_pre);
    MatVecAccum(uc_.value, h_prev, &cand_pre);
    TanhInto(cand_pre, &tape->c_tilde);

    // Intermediate cell state (Eq. 3).
    tape->c_hat.resize(d);
    for (size_t k = 0; k < d; ++k) {
      tape->c_hat[k] = tape->f[k] * c_prev[k] + tape->i[k] * tape->c_tilde[k];
    }
  }

  tape->used_memory = use_memory;
  tape->c.resize(d);
  if (use_memory) {
    // Attention read (Sec. IV-C-1): G_t is gathered straight into the tape
    // snapshot. Never-written cells are masked out of the softmax; if the
    // whole window is unvisited the step degenerates to a plain LSTM step.
    std::vector<char>& mask = w->mask;
    {
      NEUTRAJ_TRACE_FINE_SPAN("nn/sam/attention");
      memory->GatherWindow(window_cells, &tape->att.g, &mask);
      AttentionForwardPrefilled(&tape->att, tape->c_hat, &mask);
    }
    if (tape->att.all_masked) {
      tape->used_memory = false;
      tape->c = tape->c_hat;
      if (update_memory) {
        NEUTRAJ_TRACE_FINE_SPAN("nn/sam/memory_write");
        if (write_log != nullptr) {
          write_log->push_back({center, tape->s, tape->c});
        } else {
          memory->BlendWrite(center, tape->s, tape->c);
        }
      }
      tape->tanh_c.resize(d);
      h->resize(d);
      for (size_t k = 0; k < d; ++k) {
        tape->tanh_c[k] = std::tanh(tape->c[k]);
        (*h)[k] = tape->o[k] * tape->tanh_c[k];
      }
      *c = tape->c;
      NEUTRAJ_DCHECK_FINITE(*h);
      NEUTRAJ_DCHECK_FINITE(*c);
      return;
    }
    Vector& ccat = w->ccat;
    ccat.resize(2 * d);
    for (size_t k = 0; k < d; ++k) {
      ccat[k] = tape->c_hat[k];
      ccat[d + k] = tape->att.mix[k];
    }
    Vector& his_pre = w->his_pre;
    his_pre.resize(d);
    for (size_t k = 0; k < d; ++k) his_pre[k] = bhis_.value(k, 0);
    MatVecAccum(whis_.value, ccat, &his_pre);
    TanhInto(his_pre, &tape->c_his);
    // Final cell state (Eq. 4).
    for (size_t k = 0; k < d; ++k) {
      tape->c[k] = tape->c_hat[k] + tape->s[k] * tape->c_his[k];
    }
    // Memory write (Eq. 5) — persistent-state update, no gradient. Deferred
    // into the log when one is supplied, applied in place otherwise.
    if (update_memory) {
      NEUTRAJ_TRACE_FINE_SPAN("nn/sam/memory_write");
      if (write_log != nullptr) {
        write_log->push_back({center, tape->s, tape->c});
      } else {
        memory->BlendWrite(center, tape->s, tape->c);
      }
    }
  } else {
    tape->c = tape->c_hat;
  }

  // Output (Eq. 6).
  tape->tanh_c.resize(d);
  h->resize(d);
  for (size_t k = 0; k < d; ++k) {
    tape->tanh_c[k] = std::tanh(tape->c[k]);
    (*h)[k] = tape->o[k] * tape->tanh_c[k];
  }
  *c = tape->c;
  NEUTRAJ_DCHECK_FINITE(*h);
  NEUTRAJ_DCHECK_FINITE(*c);
}

void SamLstmCell::Backward(const SamTape& tape, const Vector& dh,
                           const Vector& dc_in, Vector* dh_prev_accum,
                           Vector* dc_prev_accum, Vector* dx_accum,
                           GradBuffer* sink, CellWorkspace* ws) {
  const size_t d = hidden_;
  NEUTRAJ_DCHECK_MSG(dh.size() == d && dc_in.size() == d,
                     "SamLstmCell::Backward gradient width");
  NEUTRAJ_DCHECK_MSG(dh_prev_accum != nullptr && dh_prev_accum->size() == d &&
                         dc_prev_accum != nullptr && dc_prev_accum->size() == d,
                     "SamLstmCell::Backward accumulators must be pre-sized");
  NEUTRAJ_DCHECK_MSG(dx_accum == nullptr || dx_accum->size() == input_dim(),
                     "SamLstmCell::Backward dx accumulator must be pre-sized");
  NEUTRAJ_DCHECK_MSG(sink == nullptr || sink->size() == Params().size(),
                     "SamLstmCell::Backward sink arity");
  NEUTRAJ_DCHECK_MSG(!tape.used_memory || tape.att.g.cols() == d,
                     "SamLstmCell::Backward tape window width");
  CellWorkspace local_ws_storage;
  CellWorkspace* w = ws != nullptr ? ws : &local_ws_storage;
  Matrix& gwhis = sink != nullptr ? sink->at(kWhis) : whis_.grad;
  Matrix& gbhis = sink != nullptr ? sink->at(kBhis) : bhis_.grad;
  // dL/dc through h = o (*) tanh(c).
  Vector& dc = w->dc;
  dc.resize(d);
  for (size_t k = 0; k < d; ++k) {
    dc[k] = dc_in[k] + dh[k] * tape.o[k] * (1.0 - tape.tanh_c[k] * tape.tanh_c[k]);
  }

  Vector& dc_hat = w->dc_hat;
  Vector& ds_post = w->ds_post;
  dc_hat.assign(d, 0.0);
  ds_post.assign(d, 0.0);
  if (tape.used_memory) {
    // c = c_hat + s (*) c_his.
    for (size_t k = 0; k < d; ++k) {
      dc_hat[k] = dc[k];
      ds_post[k] = dc[k] * tape.c_his[k];
    }
    // c_his = tanh(Whis [c_hat, mix] + bhis).
    Vector& dz = w->dz;
    dz.resize(d);
    for (size_t k = 0; k < d; ++k) {
      dz[k] = dc[k] * tape.s[k] * (1.0 - tape.c_his[k] * tape.c_his[k]);
    }
    Vector& ccat = w->ccat;
    ccat.resize(2 * d);
    for (size_t k = 0; k < d; ++k) {
      ccat[k] = tape.c_hat[k];
      ccat[d + k] = tape.att.mix[k];
    }
    AddOuterProduct(&gwhis, dz, ccat);
    for (size_t k = 0; k < d; ++k) gbhis(k, 0) += dz[k];
    Vector& dccat = w->dccat;
    dccat.assign(2 * d, 0.0);
    MatTVecAccum(whis_.value, dz, &dccat);
    Vector& dmix = w->dmix;
    dmix.resize(d);
    for (size_t k = 0; k < d; ++k) {
      dc_hat[k] += dccat[k];
      dmix[k] = dccat[d + k];
    }
    // Attention path: adds the gradient of q = c_hat.
    AttentionBackward(tape.att, dmix, nullptr, &dc_hat, &w->att_da, &w->att_du);
  } else {
    dc_hat = dc;
  }

  // c_hat = f (*) c_prev + i (*) c_tilde.
  Vector& dpre = w->dpre;
  Vector& dcand_pre = w->dcand_pre;
  dpre.resize(4 * d);
  dcand_pre.resize(d);
  for (size_t k = 0; k < d; ++k) {
    const double df_post = dc_hat[k] * tape.c_prev[k];
    const double di_post = dc_hat[k] * tape.c_tilde[k];
    const double dctilde = dc_hat[k] * tape.i[k];
    const double do_post = dh[k] * tape.tanh_c[k];
    dpre[k] = df_post * tape.f[k] * (1.0 - tape.f[k]);
    dpre[d + k] = di_post * tape.i[k] * (1.0 - tape.i[k]);
    dpre[2 * d + k] = ds_post[k] * tape.s[k] * (1.0 - tape.s[k]);
    dpre[3 * d + k] = do_post * tape.o[k] * (1.0 - tape.o[k]);
    dcand_pre[k] = dctilde * (1.0 - tape.c_tilde[k] * tape.c_tilde[k]);
    (*dc_prev_accum)[k] += dc_hat[k] * tape.f[k];
  }

  Matrix& gwg = sink != nullptr ? sink->at(kWg) : wg_.grad;
  Matrix& gug = sink != nullptr ? sink->at(kUg) : ug_.grad;
  Matrix& gbg = sink != nullptr ? sink->at(kBg) : bg_.grad;
  Matrix& gwc = sink != nullptr ? sink->at(kWc) : wc_.grad;
  Matrix& guc = sink != nullptr ? sink->at(kUc) : uc_.grad;
  Matrix& gbc = sink != nullptr ? sink->at(kBc) : bc_.grad;
  AddOuterProduct(&gwg, dpre, tape.x);
  AddOuterProduct(&gug, dpre, tape.h_prev);
  for (size_t k = 0; k < 4 * d; ++k) gbg(k, 0) += dpre[k];
  AddOuterProduct(&gwc, dcand_pre, tape.x);
  AddOuterProduct(&guc, dcand_pre, tape.h_prev);
  for (size_t k = 0; k < d; ++k) gbc(k, 0) += dcand_pre[k];

  MatTVecAccum(ug_.value, dpre, dh_prev_accum);
  MatTVecAccum(uc_.value, dcand_pre, dh_prev_accum);
  if (dx_accum != nullptr) {
    MatTVecAccum(wg_.value, dpre, dx_accum);
    MatTVecAccum(wc_.value, dcand_pre, dx_accum);
  }
}

}  // namespace neutraj::nn
