#include "nn/linear.h"

#include "common/check.h"
#include "nn/init.h"

namespace neutraj::nn {

Linear::Linear(const std::string& name, size_t out_dim, size_t in_dim)
    : weight_(name + ".W", out_dim, in_dim), bias_(name + ".b", out_dim, 1) {}

void Linear::Initialize(Rng* rng) {
  XavierUniform(&weight_.value, rng);
  ZeroInit(&bias_.value);
}

void Linear::Forward(const Vector& x, Vector* y) const {
  NEUTRAJ_DCHECK_MSG(x.size() == in_dim(), "Linear::Forward input width");
  MatVec(weight_.value, x, y);
  for (size_t i = 0; i < y->size(); ++i) (*y)[i] += bias_.value(i, 0);
  NEUTRAJ_DCHECK_FINITE(*y);
}

void Linear::Backward(const Vector& x, const Vector& dy, Vector* dx_accum) {
  NEUTRAJ_DCHECK_MSG(x.size() == in_dim() && dy.size() == out_dim(),
                     "Linear::Backward shape mismatch");
  NEUTRAJ_DCHECK_MSG(dx_accum == nullptr || dx_accum->size() == in_dim(),
                     "Linear::Backward dx accumulator must be pre-sized");
  AddOuterProduct(&weight_.grad, dy, x);
  for (size_t i = 0; i < dy.size(); ++i) bias_.grad(i, 0) += dy[i];
  if (dx_accum != nullptr) {
    MatTVecAccum(weight_.value, dy, dx_accum);
  }
}

}  // namespace neutraj::nn
