#include "nn/linear.h"

#include "nn/init.h"

namespace neutraj::nn {

Linear::Linear(const std::string& name, size_t out_dim, size_t in_dim)
    : weight_(name + ".W", out_dim, in_dim), bias_(name + ".b", out_dim, 1) {}

void Linear::Initialize(Rng* rng) {
  XavierUniform(&weight_.value, rng);
  ZeroInit(&bias_.value);
}

void Linear::Forward(const Vector& x, Vector* y) const {
  MatVec(weight_.value, x, y);
  for (size_t i = 0; i < y->size(); ++i) (*y)[i] += bias_.value(i, 0);
}

void Linear::Backward(const Vector& x, const Vector& dy, Vector* dx_accum) {
  AddOuterProduct(&weight_.grad, dy, x);
  for (size_t i = 0; i < dy.size(); ++i) bias_.grad(i, 0) += dy[i];
  if (dx_accum != nullptr) {
    MatTVecAccum(weight_.value, dy, dx_accum);
  }
}

}  // namespace neutraj::nn
