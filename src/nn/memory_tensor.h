// The grid-based spatial memory tensor M of the SAM module.
//
// M stores a d-dimensional embedding per grid cell (R^{P x Q x d}), zero
// initialized, updated by the SAM writer as trajectories are processed.
// As in the reference implementation, M is *persistent state*, not a
// trainable parameter: reads treat its contents as constants for gradient
// purposes and writes are in-place blends.

#ifndef NEUTRAJ_NN_MEMORY_TENSOR_H_
#define NEUTRAJ_NN_MEMORY_TENSOR_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "geo/grid.h"
#include "nn/matrix.h"

namespace neutraj::nn {

/// Dense P x Q x d memory with O(1) cell access.
class MemoryTensor {
 public:
  MemoryTensor() = default;

  /// Allocates a zeroed memory for `num_cols x num_rows` cells of width `d`.
  MemoryTensor(int32_t num_cols, int32_t num_rows, size_t d);

  int32_t num_cols() const { return num_cols_; }
  int32_t num_rows() const { return num_rows_; }
  size_t dim() const { return dim_; }

  /// Pointer to the d-dimensional slice of `cell` (clamped by caller).
  const double* Slice(const GridCell& cell) const {
    return data_.data() + Offset(cell);
  }
  double* MutableSlice(const GridCell& cell) { return data_.data() + Offset(cell); }

  /// Copies the scan-window cell embeddings into a (window_size x d) matrix.
  /// `cells` come from Grid::ScanWindow. If `written_mask` is non-null it is
  /// filled with one flag per row: whether that cell has ever been written
  /// (never-written cells hold zeros and should be masked out of attention).
  void GatherWindow(const std::vector<GridCell>& cells, Matrix* out,
                    std::vector<char>* written_mask = nullptr) const;

  /// True if `cell` has ever been written.
  bool IsWritten(const GridCell& cell) const {
    return written_[Offset(cell) / dim_] != 0;
  }

  /// Blended write of the paper's Eq. (write):
  ///   M(cell) = gate (*) value + (1 - gate) (*) M(cell)
  /// `gate` and `value` are d-dimensional. The write contract is enforced
  /// with always-on NEUTRAJ_ASSERTs (every build type): the cell must be in
  /// bounds, the shapes must match and the written content must be finite —
  /// a non-finite write would silently poison every later read of the cell.
  void BlendWrite(const GridCell& cell, const Vector& gate, const Vector& value);

  /// Replays recorded writes in log order via BlendWrite — the commit step
  /// of the deferred-write protocol used by parallel training (see
  /// MemoryWriteLog below).
  void ApplyWrites(const std::vector<struct PendingMemoryWrite>& log);

  /// Resets all cells to zero (used between training runs).
  void Clear();

  /// Number of cells whose embedding is non-zero (diagnostics/tests).
  int64_t CountNonZeroCells() const;

  /// Raw storage for serialization.
  const std::vector<double>& values() const { return data_; }
  std::vector<double>& values() { return data_; }

  /// Rebuilds the written-cell flags from the current values (a cell counts
  /// as written iff any of its entries is non-zero). Used after
  /// deserializing raw values.
  void RecomputeWrittenFlags();

 private:
  size_t Offset(const GridCell& cell) const {
    NEUTRAJ_DCHECK_MSG(cell.px >= 0 && cell.px < num_cols_ && cell.qy >= 0 &&
                           cell.qy < num_rows_,
                       "memory cell out of bounds");
    return (static_cast<size_t>(cell.qy) * static_cast<size_t>(num_cols_) +
            static_cast<size_t>(cell.px)) *
           dim_;
  }

  int32_t num_cols_ = 0;
  int32_t num_rows_ = 0;
  size_t dim_ = 0;
  std::vector<double> data_;
  std::vector<char> written_;  // One flag per cell.
};

/// One recorded (but not yet applied) SAM memory write.
///
/// Parallel training runs many encodes concurrently against a read-only
/// memory snapshot; each encode records its writes into a MemoryWriteLog
/// instead of mutating M, and the trainer commits all logs in a fixed
/// anchor order after the batch barrier. This makes the memory state a pure
/// function of the batch, independent of thread interleaving.
struct PendingMemoryWrite {
  GridCell cell{0, 0};
  Vector gate;
  Vector value;
};

using MemoryWriteLog = std::vector<PendingMemoryWrite>;

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_MEMORY_TENSOR_H_
