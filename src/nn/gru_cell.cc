#include "nn/gru_cell.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"

namespace neutraj::nn {

namespace {

inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

SamGruCell::SamGruCell(const std::string& name, size_t input_dim,
                       size_t hidden_dim)
    : hidden_(hidden_dim),
      wg_(name + ".Wg", 3 * hidden_dim, input_dim),
      ug_(name + ".Ug", 3 * hidden_dim, hidden_dim),
      bg_(name + ".bg", 3 * hidden_dim, 1),
      wn_(name + ".Wn", hidden_dim, input_dim),
      un_(name + ".Un", hidden_dim, hidden_dim),
      bn_(name + ".bn", hidden_dim, 1),
      whis_(name + ".Whis", hidden_dim, 2 * hidden_dim),
      bhis_(name + ".bhis", hidden_dim, 1) {}

void SamGruCell::Initialize(Rng* rng) {
  XavierUniform(&wg_.value, rng);
  XavierUniform(&wn_.value, rng);
  XavierUniform(&whis_.value, rng);
  for (int block = 0; block < 3; ++block) {
    Matrix sub(hidden_, hidden_);
    OrthogonalInit(&sub, rng);
    for (size_t r = 0; r < hidden_; ++r) {
      for (size_t c = 0; c < hidden_; ++c) {
        ug_.value(block * hidden_ + r, c) = sub(r, c);
      }
    }
  }
  {
    Matrix sub(hidden_, hidden_);
    OrthogonalInit(&sub, rng);
    for (size_t r = 0; r < hidden_; ++r) {
      for (size_t c = 0; c < hidden_; ++c) un_.value(r, c) = sub(r, c);
    }
  }
  ZeroInit(&bg_.value);
  ZeroInit(&bn_.value);
  ZeroInit(&bhis_.value);
  // Spatial-gate warm start (block 2 holds s): see SamLstmCell.
  for (size_t k = 0; k < hidden_; ++k) bg_.value(2 * hidden_ + k, 0) = -2.0;
}

void SamGruCell::Forward(const Vector& x, const Vector& h_prev,
                         const std::vector<GridCell>& window_cells,
                         const GridCell& center, MemoryTensor* memory,
                         bool use_memory, bool update_memory, GruTape* tape,
                         Vector* h, CellWorkspace* ws,
                         MemoryWriteLog* write_log) const {
  const size_t d = hidden_;
  NEUTRAJ_DCHECK_MSG(x.size() == input_dim(), "SamGruCell::Forward input width");
  NEUTRAJ_DCHECK_MSG(h_prev.size() == d, "SamGruCell::Forward state width");
  NEUTRAJ_DCHECK_MSG(!use_memory || (memory != nullptr && memory->dim() == d),
                     "SamGruCell::Forward memory width must equal hidden_dim");
  NEUTRAJ_DCHECK_MSG(!use_memory || !window_cells.empty(),
                     "SamGruCell::Forward scan window must be non-empty");
  NEUTRAJ_DCHECK_FINITE(x);
  CellWorkspace local_ws_storage;
  CellWorkspace* w = ws != nullptr ? ws : &local_ws_storage;
  Vector& pre = w->pre;
  pre.resize(3 * d);
  for (size_t k = 0; k < 3 * d; ++k) pre[k] = bg_.value(k, 0);
  MatVecAccum(wg_.value, x, &pre);
  MatVecAccum(ug_.value, h_prev, &pre);

  tape->x = x;
  tape->h_prev = h_prev;
  tape->r.resize(d);
  tape->z.resize(d);
  tape->s.resize(d);
  for (size_t k = 0; k < d; ++k) {
    tape->r[k] = Sigmoid(pre[k]);
    tape->z[k] = Sigmoid(pre[d + k]);
    tape->s[k] = Sigmoid(pre[2 * d + k]);
  }

  tape->rh.resize(d);
  for (size_t k = 0; k < d; ++k) tape->rh[k] = tape->r[k] * h_prev[k];
  Vector& cand_pre = w->cand_pre;
  cand_pre.resize(d);
  for (size_t k = 0; k < d; ++k) cand_pre[k] = bn_.value(k, 0);
  MatVecAccum(wn_.value, x, &cand_pre);
  MatVecAccum(un_.value, tape->rh, &cand_pre);
  TanhInto(cand_pre, &tape->n_tilde);

  tape->used_memory = use_memory;
  tape->n_prime.resize(d);
  if (use_memory) {
    std::vector<char>& mask = w->mask;
    memory->GatherWindow(window_cells, &tape->att.g, &mask);
    AttentionForwardPrefilled(&tape->att, tape->n_tilde, &mask);
    if (tape->att.all_masked) {
      tape->used_memory = false;
      tape->n_prime = tape->n_tilde;
    } else {
      Vector& ccat = w->ccat;
      ccat.resize(2 * d);
      for (size_t k = 0; k < d; ++k) {
        ccat[k] = tape->n_tilde[k];
        ccat[d + k] = tape->att.mix[k];
      }
      Vector& his_pre = w->his_pre;
      his_pre.resize(d);
      for (size_t k = 0; k < d; ++k) his_pre[k] = bhis_.value(k, 0);
      MatVecAccum(whis_.value, ccat, &his_pre);
      TanhInto(his_pre, &tape->c_his);
      for (size_t k = 0; k < d; ++k) {
        tape->n_prime[k] = tape->n_tilde[k] + tape->s[k] * tape->c_his[k];
      }
    }
  } else {
    tape->n_prime = tape->n_tilde;
  }

  h->resize(d);
  for (size_t k = 0; k < d; ++k) {
    (*h)[k] = (1.0 - tape->z[k]) * tape->n_prime[k] + tape->z[k] * h_prev[k];
  }
  NEUTRAJ_DCHECK_FINITE(*h);
  if (use_memory && update_memory) {
    if (write_log != nullptr) {
      write_log->push_back({center, tape->s, *h});
    } else {
      memory->BlendWrite(center, tape->s, *h);
    }
  }
}

void SamGruCell::Backward(const GruTape& tape, const Vector& dh,
                          Vector* dh_prev_accum, Vector* dx_accum,
                          GradBuffer* sink, CellWorkspace* ws) {
  const size_t d = hidden_;
  NEUTRAJ_DCHECK_MSG(dh.size() == d, "SamGruCell::Backward gradient width");
  NEUTRAJ_DCHECK_MSG(dh_prev_accum != nullptr && dh_prev_accum->size() == d,
                     "SamGruCell::Backward accumulator must be pre-sized");
  NEUTRAJ_DCHECK_MSG(dx_accum == nullptr || dx_accum->size() == input_dim(),
                     "SamGruCell::Backward dx accumulator must be pre-sized");
  NEUTRAJ_DCHECK_MSG(sink == nullptr || sink->size() == Params().size(),
                     "SamGruCell::Backward sink arity");
  NEUTRAJ_DCHECK_MSG(!tape.used_memory || tape.att.g.cols() == d,
                     "SamGruCell::Backward tape window width");
  CellWorkspace local_ws_storage;
  CellWorkspace* w = ws != nullptr ? ws : &local_ws_storage;
  // h = (1-z) (*) n' + z (*) h_prev.
  Vector& dn_prime = w->dc;
  Vector& dz_post = w->dz_post;
  dn_prime.resize(d);
  dz_post.resize(d);
  for (size_t k = 0; k < d; ++k) {
    dn_prime[k] = dh[k] * (1.0 - tape.z[k]);
    dz_post[k] = dh[k] * (tape.h_prev[k] - tape.n_prime[k]);
    (*dh_prev_accum)[k] += dh[k] * tape.z[k];
  }

  Vector& dn_tilde = w->dc_hat;
  Vector& ds_post = w->ds_post;
  dn_tilde.assign(d, 0.0);
  ds_post.assign(d, 0.0);
  if (tape.used_memory) {
    for (size_t k = 0; k < d; ++k) {
      dn_tilde[k] = dn_prime[k];
      ds_post[k] = dn_prime[k] * tape.c_his[k];
    }
    Vector& dz_his = w->dz;
    dz_his.resize(d);
    for (size_t k = 0; k < d; ++k) {
      dz_his[k] =
          dn_prime[k] * tape.s[k] * (1.0 - tape.c_his[k] * tape.c_his[k]);
    }
    Vector& ccat = w->ccat;
    ccat.resize(2 * d);
    for (size_t k = 0; k < d; ++k) {
      ccat[k] = tape.n_tilde[k];
      ccat[d + k] = tape.att.mix[k];
    }
    Matrix& gwhis = sink != nullptr ? sink->at(kWhis) : whis_.grad;
    Matrix& gbhis = sink != nullptr ? sink->at(kBhis) : bhis_.grad;
    AddOuterProduct(&gwhis, dz_his, ccat);
    for (size_t k = 0; k < d; ++k) gbhis(k, 0) += dz_his[k];
    Vector& dccat = w->dccat;
    dccat.assign(2 * d, 0.0);
    MatTVecAccum(whis_.value, dz_his, &dccat);
    Vector& dmix = w->dmix;
    dmix.resize(d);
    for (size_t k = 0; k < d; ++k) {
      dn_tilde[k] += dccat[k];
      dmix[k] = dccat[d + k];
    }
    AttentionBackward(tape.att, dmix, nullptr, &dn_tilde, &w->att_da,
                      &w->att_du);
  } else {
    dn_tilde = dn_prime;
  }

  // n~ = tanh(Wn x + Un (r (*) h_prev) + bn).
  Vector& dcand_pre = w->dcand_pre;
  dcand_pre.resize(d);
  for (size_t k = 0; k < d; ++k) {
    dcand_pre[k] = dn_tilde[k] * (1.0 - tape.n_tilde[k] * tape.n_tilde[k]);
  }
  Matrix& gwn = sink != nullptr ? sink->at(kWn) : wn_.grad;
  Matrix& gun = sink != nullptr ? sink->at(kUn) : un_.grad;
  Matrix& gbn = sink != nullptr ? sink->at(kBn) : bn_.grad;
  AddOuterProduct(&gwn, dcand_pre, tape.x);
  AddOuterProduct(&gun, dcand_pre, tape.rh);
  for (size_t k = 0; k < d; ++k) gbn(k, 0) += dcand_pre[k];
  Vector& drh = w->drh;
  drh.assign(d, 0.0);
  MatTVecAccum(un_.value, dcand_pre, &drh);

  Vector& dpre = w->dpre;
  dpre.resize(3 * d);
  for (size_t k = 0; k < d; ++k) {
    const double dr_post = drh[k] * tape.h_prev[k];
    (*dh_prev_accum)[k] += drh[k] * tape.r[k];
    dpre[k] = dr_post * tape.r[k] * (1.0 - tape.r[k]);
    dpre[d + k] = dz_post[k] * tape.z[k] * (1.0 - tape.z[k]);
    dpre[2 * d + k] = ds_post[k] * tape.s[k] * (1.0 - tape.s[k]);
  }
  Matrix& gwg = sink != nullptr ? sink->at(kWg) : wg_.grad;
  Matrix& gug = sink != nullptr ? sink->at(kUg) : ug_.grad;
  Matrix& gbg = sink != nullptr ? sink->at(kBg) : bg_.grad;
  AddOuterProduct(&gwg, dpre, tape.x);
  AddOuterProduct(&gug, dpre, tape.h_prev);
  for (size_t k = 0; k < 3 * d; ++k) gbg(k, 0) += dpre[k];
  MatTVecAccum(ug_.value, dpre, dh_prev_accum);
  if (dx_accum != nullptr) {
    MatTVecAccum(wg_.value, dpre, dx_accum);
    MatTVecAccum(wn_.value, dcand_pre, dx_accum);
  }
}

}  // namespace neutraj::nn
