#include "nn/init.h"

#include <cmath>

namespace neutraj::nn {

void XavierUniform(Matrix* m, Rng* rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(m->rows() + m->cols()));
  for (double& v : m->values()) v = rng->Uniform(-bound, bound);
}

void GaussianInit(Matrix* m, double stddev, Rng* rng) {
  for (double& v : m->values()) v = rng->Gaussian(0.0, stddev);
}

void OrthogonalInit(Matrix* m, Rng* rng) {
  // Work on the transposed view if cols > rows so the rows being
  // orthonormalized are the short side.
  const bool transpose = m->cols() > m->rows();
  const size_t r = transpose ? m->cols() : m->rows();
  const size_t c = transpose ? m->rows() : m->cols();
  Matrix a(r, c);
  GaussianInit(&a, 1.0, rng);
  // Modified Gram-Schmidt on the columns of a (c <= r so they can be
  // orthonormalized).
  for (size_t j = 0; j < c; ++j) {
    for (size_t k = 0; k < j; ++k) {
      double dot = 0.0;
      for (size_t i = 0; i < r; ++i) dot += a(i, j) * a(i, k);
      for (size_t i = 0; i < r; ++i) a(i, j) -= dot * a(i, k);
    }
    double norm = 0.0;
    for (size_t i = 0; i < r; ++i) norm += a(i, j) * a(i, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate column (essentially impossible with Gaussian draws);
      // re-seed it with a unit basis vector.
      for (size_t i = 0; i < r; ++i) a(i, j) = (i == j % r) ? 1.0 : 0.0;
    } else {
      for (size_t i = 0; i < r; ++i) a(i, j) /= norm;
    }
  }
  for (size_t i = 0; i < m->rows(); ++i) {
    for (size_t j = 0; j < m->cols(); ++j) {
      (*m)(i, j) = transpose ? a(j, i) : a(i, j);
    }
  }
}

void ZeroInit(Matrix* m) { m->Zero(); }

}  // namespace neutraj::nn
