// SAM-augmented LSTM cell (paper Sec. IV-B / IV-C).
//
// Extends the LSTM recurrence with a spatial gate s_t and a grid-based
// external memory M:
//
//   (f, i, s, o) = sigmoid(Wg x + Ug h_{t-1} + bg)          (Eq. 1)
//   c~           = tanh(Wc x + Uc h_{t-1} + bc)             (Eq. 2)
//   c^           = f (*) c_{t-1} + i (*) c~                 (Eq. 3)
//   c_his        = tanh(W_his [c^, mix] + b_his)  with
//                  A = softmax(G_t c^), mix = G_t^T A        (read)
//   c            = c^ + s (*) c_his                         (Eq. 4)
//   M(cell)      = s (*) c + (1 - s) (*) M(cell)            (Eq. 5, write)
//   h            = o (*) tanh(c)                            (Eq. 6)
//
// `G_t` holds the (2w+1)^2 scan-window slices of M around the current grid
// cell. As in the reference implementation, M is persistent state: reads
// treat G_t as a constant (gradients flow through the attention weights and
// c^, not into M) and writes are non-differentiable in-place blends. The
// paper's write equation applies sigma() to the already-sigmoid gate; we use
// the gate directly (see DESIGN.md, "Deviations").
//
// With `use_memory == false` the cell degenerates to a standard LSTM whose
// spatial-gate weights are inert — this is exactly the NT-No-SAM ablation.

#ifndef NEUTRAJ_NN_SAM_CELL_H_
#define NEUTRAJ_NN_SAM_CELL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "geo/grid.h"
#include "nn/attention.h"
#include "nn/memory_tensor.h"
#include "nn/parameter.h"
#include "nn/workspace.h"

namespace neutraj::nn {

/// Per-step activations saved by Forward for the backward pass.
struct SamTape {
  Vector x;           ///< Coordinate input X_t^c (normalized).
  Vector h_prev;      ///< Previous hidden state.
  Vector c_prev;      ///< Previous cell state.
  Vector f, i, s, o;  ///< Post-activation gates (paper order).
  Vector c_tilde;     ///< Candidate state.
  Vector c_hat;       ///< Intermediate cell state (Eq. 3).
  bool used_memory = false;
  AttentionTape att;  ///< Read tape (G_t snapshot, A, mix).
  Vector c_his;       ///< Spatial attention cell state.
  Vector c;           ///< Final cell state.
  Vector tanh_c;      ///< tanh(c).
};

/// The SAM-augmented LSTM cell of NeuTraj.
class SamLstmCell {
 public:
  /// `input_dim` is 2 (normalized coordinates) in NeuTraj, kept generic for
  /// reuse/testing.
  SamLstmCell(const std::string& name, size_t input_dim, size_t hidden_dim);

  /// Xavier input weights, orthogonal recurrent blocks, forget bias = 1.
  void Initialize(Rng* rng);

  /// One recurrent step.
  ///
  /// `window_cells` is the scan window around the current grid cell (from
  /// Grid::ScanWindow) and `center` is the cell being visited; they are
  /// ignored when `use_memory` is false. When `update_memory` is true the
  /// writer blends the new cell state into `memory` at `center` — unless
  /// `write_log` is non-null, in which case the write is *recorded* there
  /// instead of applied, leaving `memory` untouched (the deferred-write
  /// protocol of parallel training; see MemoryWriteLog). `ws` (optional)
  /// supplies reusable scratch so the hot path does not allocate per step.
  void Forward(const Vector& x, const Vector& h_prev, const Vector& c_prev,
               const std::vector<GridCell>& window_cells, const GridCell& center,
               MemoryTensor* memory, bool use_memory, bool update_memory,
               SamTape* tape, Vector* h, Vector* c, CellWorkspace* ws = nullptr,
               MemoryWriteLog* write_log = nullptr) const;

  /// Backward through one step; mirror of LstmCell::Backward. When `sink` is
  /// non-null, parameter gradients accumulate there (aligned with Params()
  /// order) instead of the cell's own Param::grad.
  void Backward(const SamTape& tape, const Vector& dh, const Vector& dc_in,
                Vector* dh_prev_accum, Vector* dc_prev_accum, Vector* dx_accum,
                GradBuffer* sink = nullptr, CellWorkspace* ws = nullptr);

  size_t input_dim() const { return wg_.value.cols(); }
  size_t hidden_dim() const { return hidden_; }
  std::vector<Param*> Params() {
    return {&wg_, &ug_, &bg_, &wc_, &uc_, &bc_, &whis_, &bhis_};
  }

  /// Indices into Params() / a matching GradBuffer.
  static constexpr size_t kWg = 0, kUg = 1, kBg = 2, kWc = 3, kUc = 4, kBc = 5,
                          kWhis = 6, kBhis = 7;

 private:
  size_t hidden_;
  Param wg_;    // 4h x input: stacked (f, i, s, o) input weights.
  Param ug_;    // 4h x h: stacked recurrent weights.
  Param bg_;    // 4h x 1.
  Param wc_;    // h x input: candidate input weights.
  Param uc_;    // h x h.
  Param bc_;    // h x 1.
  Param whis_;  // h x 2h: attention fusion layer.
  Param bhis_;  // h x 1.
};

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_SAM_CELL_H_
