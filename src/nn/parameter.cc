#include "nn/parameter.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace neutraj::nn {

GradBuffer::GradBuffer(const std::vector<Param*>& params) {
  mats_.reserve(params.size());
  for (const Param* p : params) {
    NEUTRAJ_DCHECK_MSG(p->grad.rows() == p->value.rows() &&
                           p->grad.cols() == p->value.cols(),
                       "Param grad/value shape mismatch");
    mats_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void GradBuffer::Zero() {
  for (Matrix& m : mats_) m.Zero();
}

void GradBuffer::AddTo(const std::vector<Param*>& params) const {
  if (params.size() != mats_.size()) {
    throw std::invalid_argument("GradBuffer::AddTo: parameter count mismatch");
  }
  for (size_t i = 0; i < mats_.size(); ++i) {
    const Matrix& src = mats_[i];
    Matrix& dst = params[i]->grad;
    if (src.rows() != dst.rows() || src.cols() != dst.cols()) {
      throw std::invalid_argument("GradBuffer::AddTo: shape mismatch for " +
                                  params[i]->name);
    }
    const auto& sv = src.values();
    auto& dv = dst.values();
    for (size_t k = 0; k < sv.size(); ++k) dv[k] += sv[k];
  }
}

void ZeroGrads(const std::vector<Param*>& params) {
  for (Param* p : params) p->ZeroGrad();
}

double GradNorm(const std::vector<Param*>& params) {
  double s = 0.0;
  for (const Param* p : params) s += p->grad.SquaredNorm();
  return std::sqrt(s);
}

double ClipGradNorm(const std::vector<Param*>& params, double max_norm) {
  NEUTRAJ_DCHECK_MSG(max_norm > 0.0, "ClipGradNorm: max_norm must be positive");
  const double norm = GradNorm(params);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Param* p : params) {
      for (double& g : p->grad.values()) g *= scale;
    }
  }
  return norm;
}

bool HasNonFiniteValues(const std::vector<Param*>& params) {
  for (const Param* p : params) {
    for (double v : p->value.values()) {
      if (!std::isfinite(v)) return true;
    }
  }
  return false;
}

std::string SerializeParams(const std::vector<const Param*>& params) {
  std::ostringstream out;
  out.precision(17);
  for (const Param* p : params) {
    out << p->name << ' ' << p->value.rows() << ' ' << p->value.cols() << '\n';
    const auto& v = p->value.values();
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out << ' ';
      out << v[i];
    }
    out << '\n';
  }
  return out.str();
}

void DeserializeParams(const std::string& text,
                       const std::vector<Param*>& params) {
  std::istringstream in(text);
  for (Param* p : params) {
    std::string name;
    size_t rows = 0, cols = 0;
    if (!(in >> name >> rows >> cols)) {
      throw std::runtime_error("DeserializeParams: truncated header for " + p->name);
    }
    if (name != p->name || rows != p->value.rows() || cols != p->value.cols()) {
      throw std::runtime_error("DeserializeParams: mismatch, expected " + p->name +
                               " got " + name);
    }
    for (double& v : p->value.values()) {
      if (!(in >> v)) {
        throw std::runtime_error("DeserializeParams: truncated values for " + p->name);
      }
    }
    NEUTRAJ_DCHECK_FINITE(p->value.values());
  }
}

}  // namespace neutraj::nn
