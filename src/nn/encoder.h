// RNN trajectory encoder: unrolls an (optionally SAM-augmented) recurrent
// cell over a trajectory and returns the final hidden state as the
// embedding E (paper Sec. V-A). Supports truncated-to-full BPTT via an
// explicit tape.

#ifndef NEUTRAJ_NN_ENCODER_H_
#define NEUTRAJ_NN_ENCODER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "geo/grid.h"
#include "nn/gru_cell.h"
#include "nn/lstm_cell.h"
#include "nn/memory_tensor.h"
#include "nn/sam_cell.h"

namespace neutraj::nn {

/// Which recurrent backbone the encoder unrolls.
enum class Backbone {
  kLstm,     ///< Standard LSTM (Siamese baseline, NT-No-SAM ablation).
  kSamLstm,  ///< SAM-augmented LSTM (full NeuTraj).
  kGru,      ///< Standard GRU.
  kSamGru,   ///< SAM-augmented GRU (the paper's "any RNN" claim).
};

/// Full unrolled tape of one encoded trajectory.
struct EncodeTape {
  std::vector<LstmTape> lstm_steps;
  std::vector<SamTape> sam_steps;
  std::vector<GruTape> gru_steps;
  size_t length = 0;
};

/// Trajectory -> R^d encoder.
///
/// Owns the recurrent cell, the grid discretizer and (for the SAM backbone)
/// the spatial memory tensor. The memory is training-time state: call
/// ResetMemory() before a fresh training run; inference encodes read-only.
class Encoder {
 public:
  /// Builds an encoder over `grid` with hidden width `hidden_dim`.
  /// `scan_width` is the SAM window half-width w (ignored for kLstm).
  Encoder(Backbone backbone, const Grid& grid, size_t hidden_dim,
          int32_t scan_width);

  void Initialize(Rng* rng);

  /// Encodes `traj`; writes the unrolled activations into `tape` if non-null
  /// (required for Backward). `update_memory` enables the SAM writer — true
  /// while training over seeds, false for inference.
  ///
  /// `ws` (optional) supplies reusable scratch so repeated encodes do not
  /// allocate per step; one workspace serves one thread. `write_log`
  /// (optional) defers SAM memory writes: instead of mutating the memory
  /// tensor, writes are appended to the log for a later ordered
  /// MemoryTensor::ApplyWrites — the deferred-write protocol that makes
  /// parallel training batches independent of thread interleaving.
  /// Throws std::invalid_argument on an empty trajectory.
  Vector Encode(const Trajectory& traj, bool update_memory,
                EncodeTape* tape = nullptr, CellWorkspace* ws = nullptr,
                MemoryWriteLog* write_log = nullptr);

  /// Backpropagates dL/dE through the unrolled steps, accumulating
  /// parameter gradients — into `sink` (aligned with Params() order) when
  /// non-null, so concurrent backward passes over one shared encoder never
  /// race; into the cell's own Param::grad otherwise. `ws` as in Encode.
  void Backward(const EncodeTape& tape, const Vector& d_embedding,
                GradBuffer* sink = nullptr, CellWorkspace* ws = nullptr);

  std::vector<Param*> Params();

  Backbone backbone() const { return backbone_; }
  size_t hidden_dim() const { return hidden_; }
  int32_t scan_width() const { return scan_width_; }
  const Grid& grid() const { return grid_; }
  bool has_memory() const { return memory_.has_value(); }
  MemoryTensor& memory() { return *memory_; }
  const MemoryTensor& memory() const { return *memory_; }

  /// Zeroes the spatial memory (no-op for the LSTM backbone).
  void ResetMemory();

 private:
  Backbone backbone_;
  Grid grid_;
  size_t hidden_;
  int32_t scan_width_;
  std::optional<LstmCell> lstm_;
  std::optional<SamLstmCell> sam_;
  std::optional<SamGruCell> gru_;
  std::optional<MemoryTensor> memory_;
};

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_ENCODER_H_
