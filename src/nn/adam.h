// Adam stochastic optimizer (Kingma & Ba, 2015) — the optimizer the paper
// uses for NeuTraj training.

#ifndef NEUTRAJ_NN_ADAM_H_
#define NEUTRAJ_NN_ADAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/parameter.h"

namespace neutraj::nn {

/// Adam hyperparameters.
struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Global gradient-norm clip applied before each step (<= 0 disables).
  double clip_norm = 5.0;
};

/// Adam over a fixed set of parameters. The parameter set is captured at
/// construction; the caller guarantees the Param objects outlive the
/// optimizer.
class Adam {
 public:
  Adam(std::vector<Param*> params, const AdamOptions& opts = {});

  /// Applies one update from the currently-accumulated gradients, then
  /// leaves gradients untouched (call ZeroGrads separately).
  /// Returns the pre-clip global gradient norm.
  double Step();

  int64_t step_count() const { return step_; }
  const AdamOptions& options() const { return opts_; }
  void set_learning_rate(double lr) { opts_.learning_rate = lr; }

  /// Serializes the optimizer state (step counter + both moment estimates)
  /// for training checkpoints. Hyperparameters are not included; they come
  /// from the config that reconstructs the optimizer.
  std::string SerializeState() const;

  /// Restores state produced by SerializeState over the same parameter set.
  /// Throws std::runtime_error on truncation or a shape mismatch.
  void DeserializeState(const std::string& text);

 private:
  std::vector<Param*> params_;
  AdamOptions opts_;
  std::vector<Matrix> m_;  // First-moment estimates, aligned with params_.
  std::vector<Matrix> v_;  // Second-moment estimates.
  int64_t step_ = 0;
};

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_ADAM_H_
