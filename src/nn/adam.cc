#include "nn/adam.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace neutraj::nn {

Adam::Adam(std::vector<Param*> params, const AdamOptions& opts)
    : params_(std::move(params)), opts_(opts) {
  NEUTRAJ_DCHECK_MSG(opts_.learning_rate > 0.0 && opts_.beta1 >= 0.0 &&
                         opts_.beta1 < 1.0 && opts_.beta2 >= 0.0 &&
                         opts_.beta2 < 1.0 && opts_.epsilon > 0.0,
                     "Adam: hyperparameters out of range");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

double Adam::Step() {
  double norm = GradNorm(params_);
  NEUTRAJ_DCHECK_FINITE(norm);
  if (opts_.clip_norm > 0.0) {
    ClipGradNorm(params_, opts_.clip_norm);
  }
  ++step_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i]->value.values();
    const auto& grad = params_[i]->grad.values();
    auto& m = m_[i].values();
    auto& v = v_[i].values();
    for (size_t k = 0; k < value.size(); ++k) {
      const double g = grad[k];
      m[k] = opts_.beta1 * m[k] + (1.0 - opts_.beta1) * g;
      v[k] = opts_.beta2 * v[k] + (1.0 - opts_.beta2) * g * g;
      const double mhat = m[k] / bc1;
      const double vhat = v[k] / bc2;
      value[k] -= opts_.learning_rate * mhat / (std::sqrt(vhat) + opts_.epsilon);
    }
    NEUTRAJ_DCHECK_FINITE(value);
  }
  return norm;
}

std::string Adam::SerializeState() const {
  std::ostringstream out;
  out.precision(17);
  out << "ADAM " << step_ << ' ' << m_.size() << '\n';
  for (size_t i = 0; i < m_.size(); ++i) {
    out << m_[i].size() << '\n';
    const auto& m = m_[i].values();
    const auto& v = v_[i].values();
    for (size_t k = 0; k < m.size(); ++k) out << (k > 0 ? " " : "") << m[k];
    out << '\n';
    for (size_t k = 0; k < v.size(); ++k) out << (k > 0 ? " " : "") << v[k];
    out << '\n';
  }
  return out.str();
}

void Adam::DeserializeState(const std::string& text) {
  std::istringstream in(text);
  std::string tag;
  int64_t step = 0;
  size_t n = 0;
  if (!(in >> tag >> step >> n) || tag != "ADAM") {
    throw std::runtime_error("Adam::DeserializeState: bad header");
  }
  if (n != m_.size()) {
    throw std::runtime_error("Adam::DeserializeState: parameter count mismatch");
  }
  std::vector<Matrix> m = m_;
  std::vector<Matrix> v = v_;
  for (size_t i = 0; i < n; ++i) {
    size_t size = 0;
    if (!(in >> size) || size != m[i].size()) {
      throw std::runtime_error("Adam::DeserializeState: moment shape mismatch");
    }
    for (double& x : m[i].values()) {
      if (!(in >> x)) {
        throw std::runtime_error("Adam::DeserializeState: truncated first moments");
      }
    }
    for (double& x : v[i].values()) {
      if (!(in >> x)) {
        throw std::runtime_error("Adam::DeserializeState: truncated second moments");
      }
    }
  }
  step_ = step;
  m_ = std::move(m);
  v_ = std::move(v);
}

}  // namespace neutraj::nn
