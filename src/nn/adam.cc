#include "nn/adam.h"

#include <cmath>

namespace neutraj::nn {

Adam::Adam(std::vector<Param*> params, const AdamOptions& opts)
    : params_(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

double Adam::Step() {
  double norm = GradNorm(params_);
  if (opts_.clip_norm > 0.0) {
    ClipGradNorm(params_, opts_.clip_norm);
  }
  ++step_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i]->value.values();
    const auto& grad = params_[i]->grad.values();
    auto& m = m_[i].values();
    auto& v = v_[i].values();
    for (size_t k = 0; k < value.size(); ++k) {
      const double g = grad[k];
      m[k] = opts_.beta1 * m[k] + (1.0 - opts_.beta1) * g;
      v[k] = opts_.beta2 * v[k] + (1.0 - opts_.beta2) * g * g;
      const double mhat = m[k] / bc1;
      const double vhat = v[k] / bc2;
      value[k] -= opts_.learning_rate * mhat / (std::sqrt(vhat) + opts_.epsilon);
    }
  }
  return norm;
}

}  // namespace neutraj::nn
