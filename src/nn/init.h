// Weight initialization schemes.

#ifndef NEUTRAJ_NN_INIT_H_
#define NEUTRAJ_NN_INIT_H_

#include "common/random.h"
#include "nn/matrix.h"

namespace neutraj::nn {

/// Xavier/Glorot uniform: U(-b, b) with b = sqrt(6 / (fan_in + fan_out)).
void XavierUniform(Matrix* m, Rng* rng);

/// Gaussian N(0, stddev^2).
void GaussianInit(Matrix* m, double stddev, Rng* rng);

/// Orthogonal initialization (Gram-Schmidt on a Gaussian matrix); commonly
/// used for recurrent weights to keep gradients well-conditioned.
/// Requires rows >= cols or cols >= rows; the smaller side is orthonormal.
void OrthogonalInit(Matrix* m, Rng* rng);

/// All zeros (biases).
void ZeroInit(Matrix* m);

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_INIT_H_
