// Trainable parameter container and serialization.

#ifndef NEUTRAJ_NN_PARAMETER_H_
#define NEUTRAJ_NN_PARAMETER_H_

#include <string>
#include <vector>

#include "nn/matrix.h"

namespace neutraj::nn {

/// A named trainable tensor (matrix or, with cols == 1, a bias vector)
/// paired with its gradient accumulator.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;

  Param() = default;
  Param(std::string n, size_t rows, size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.Zero(); }
};

/// A detached gradient accumulator shaped like a parameter set.
///
/// Parallel training gives every in-flight anchor its own GradBuffer so
/// backward passes never touch the shared Param::grad matrices; the trainer
/// reduces the buffers into the shared gradients in a fixed anchor order,
/// which makes the batch gradient independent of thread interleaving.
class GradBuffer {
 public:
  GradBuffer() = default;
  /// Allocates zeroed buffers matching the shapes of `params`.
  explicit GradBuffer(const std::vector<Param*>& params);

  size_t size() const { return mats_.size(); }
  bool empty() const { return mats_.empty(); }
  Matrix& at(size_t i) { return mats_[i]; }
  const Matrix& at(size_t i) const { return mats_[i]; }

  void Zero();

  /// params[i]->grad += buffer[i]. Throws std::invalid_argument on a shape
  /// or arity mismatch.
  void AddTo(const std::vector<Param*>& params) const;

 private:
  std::vector<Matrix> mats_;
};

/// Zeroes the gradients of all `params`.
void ZeroGrads(const std::vector<Param*>& params);

/// Global L2 norm of all gradients (for clipping diagnostics).
double GradNorm(const std::vector<Param*>& params);

/// Scales all gradients so their global norm is at most `max_norm`.
/// Returns the pre-clip norm.
double ClipGradNorm(const std::vector<Param*>& params, double max_norm);

/// True if any parameter *value* is NaN or Inf — the divergence watchdog's
/// post-optimizer-step scan.
bool HasNonFiniteValues(const std::vector<Param*>& params);

/// Serializes parameter values (not grads) to a text block:
///   name rows cols\n v v v ...\n per param.
std::string SerializeParams(const std::vector<const Param*>& params);

/// Restores values into `params` (matched by order; names/shapes verified).
/// Throws std::runtime_error on mismatch or parse failure.
void DeserializeParams(const std::string& text, const std::vector<Param*>& params);

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_PARAMETER_H_
