// GRU cell, optionally augmented with the spatial attention memory.
//
// The paper presents SAM on an LSTM backbone but states the module
// "augments existing recurrent neural networks (GRU, LSTM)". This cell
// realizes the GRU instantiation. The GRU has no separate cell state, so
// the SAM read attaches to the candidate state n~ (the natural analog of
// the LSTM's intermediate cell state c^):
//
//   (r, z, s) = sigmoid(Wg x + Ug h_{t-1} + bg)
//   n~        = tanh(Wn x + Un (r (*) h_{t-1}) + bn)
//   c_his     = tanh(W_his [n~, mix] + b_his),
//                 A = softmax(G_t n~), mix = G_t^T A       (read)
//   n'        = n~ + s (*) c_his
//   h_t       = (1 - z) (*) n' + z (*) h_{t-1}
//   M(cell)   = s (*) h_t + (1 - s) (*) M(cell)            (write)
//
// With use_memory == false this is a standard GRU with an inert s gate.
// Memory semantics follow SamLstmCell: reads treat G_t as constant, writes
// are non-differentiable state updates, never-written cells are masked.

#ifndef NEUTRAJ_NN_GRU_CELL_H_
#define NEUTRAJ_NN_GRU_CELL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "geo/grid.h"
#include "nn/attention.h"
#include "nn/memory_tensor.h"
#include "nn/parameter.h"
#include "nn/workspace.h"

namespace neutraj::nn {

/// Per-step activations saved by Forward for the backward pass.
struct GruTape {
  Vector x;          ///< Step input.
  Vector h_prev;     ///< Previous hidden state.
  Vector r, z, s;    ///< Post-activation gates.
  Vector rh;         ///< r (*) h_prev (input of the candidate).
  Vector n_tilde;    ///< Candidate state.
  bool used_memory = false;
  AttentionTape att;
  Vector c_his;
  Vector n_prime;    ///< Candidate after the memory injection.
};

/// GRU recurrence with optional SAM augmentation.
class SamGruCell {
 public:
  SamGruCell(const std::string& name, size_t input_dim, size_t hidden_dim);

  /// Xavier input weights, orthogonal recurrent blocks, spatial-gate bias
  /// -2 (same warm-start as SamLstmCell).
  void Initialize(Rng* rng);

  /// One recurrent step; see SamLstmCell::Forward for the contract
  /// (including the `ws` scratch and `write_log` deferred-write options).
  void Forward(const Vector& x, const Vector& h_prev,
               const std::vector<GridCell>& window_cells, const GridCell& center,
               MemoryTensor* memory, bool use_memory, bool update_memory,
               GruTape* tape, Vector* h, CellWorkspace* ws = nullptr,
               MemoryWriteLog* write_log = nullptr) const;

  /// Backward through one step: accumulates parameter gradients (into `sink`
  /// when non-null, aligned with Params() order), adds dL/dh_{t-1} into
  /// `dh_prev_accum` and optionally dL/dx into `dx_accum`.
  void Backward(const GruTape& tape, const Vector& dh, Vector* dh_prev_accum,
                Vector* dx_accum, GradBuffer* sink = nullptr,
                CellWorkspace* ws = nullptr);

  size_t input_dim() const { return wg_.value.cols(); }
  size_t hidden_dim() const { return hidden_; }
  std::vector<Param*> Params() {
    return {&wg_, &ug_, &bg_, &wn_, &un_, &bn_, &whis_, &bhis_};
  }

  /// Indices into Params() / a matching GradBuffer.
  static constexpr size_t kWg = 0, kUg = 1, kBg = 2, kWn = 3, kUn = 4, kBn = 5,
                          kWhis = 6, kBhis = 7;

 private:
  size_t hidden_;
  Param wg_;    // 3h x input: stacked (r, z, s) input weights.
  Param ug_;    // 3h x h.
  Param bg_;    // 3h x 1.
  Param wn_;    // h x input: candidate input weights.
  Param un_;    // h x h.
  Param bn_;    // h x 1.
  Param whis_;  // h x 2h: attention fusion layer.
  Param bhis_;  // h x 1.
};

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_GRU_CELL_H_
