// Reusable per-worker scratch for the recurrent hot paths.
//
// Every recurrent step used to allocate ~10 short-lived vectors (gate
// pre-activations, candidate pre-activations, concatenations, attention
// gather buffers, ...). A CellWorkspace owns all of them once; the cells'
// Forward/Backward resize-in-place, so after the first step of the first
// trajectory the steady state is allocation-free. One workspace serves one
// thread: concurrent encodes must each bring their own.

#ifndef NEUTRAJ_NN_WORKSPACE_H_
#define NEUTRAJ_NN_WORKSPACE_H_

#include <vector>

#include "geo/grid.h"
#include "nn/matrix.h"

namespace neutraj::nn {

/// Scratch buffers shared by LstmCell / SamLstmCell / SamGruCell and the
/// Encoder's unroll loop. Members keep their capacity across steps,
/// trajectories and anchors.
struct CellWorkspace {
  // -- Forward scratch --------------------------------------------------------
  Vector pre;       ///< Stacked gate pre-activations (4h or 3h).
  Vector cand_pre;  ///< Candidate pre-activations (h).
  Vector ccat;      ///< [state, attention mix] concatenation (2h).
  Vector his_pre;   ///< Attention-fusion pre-activations (h).
  Vector x;         ///< Normalized step input (2).
  std::vector<char> mask;           ///< Written-cell mask of the scan window.
  std::vector<GridCell> window;     ///< Scan-window cells around the step.

  // -- Backward scratch -------------------------------------------------------
  Vector dc;         ///< dL/dc of the current step (h).
  Vector dc_hat;     ///< dL/dc^ (h).
  Vector ds_post;    ///< Post-activation spatial-gate gradient (h).
  Vector dpre;       ///< Stacked pre-activation gradients (4h or 3h).
  Vector dcand_pre;  ///< Candidate pre-activation gradients (h).
  Vector dccat;      ///< Gradient of the concatenation (2h).
  Vector dmix;       ///< Gradient of the attention mix (h).
  Vector dz;         ///< Fusion-layer pre-activation gradient (h).
  Vector dz_post;    ///< Post-activation update-gate gradient (GRU only, h).
  Vector drh;        ///< Gradient of r (*) h_prev (GRU only, h).
  Vector att_da;     ///< Attention logits gradient ((2w+1)^2).
  Vector att_du;     ///< Attention softmax input gradient ((2w+1)^2).

  // -- Encoder unroll state ---------------------------------------------------
  Vector h, c, h_next, c_next;  ///< Hidden/cell state double buffers.
  Vector dh, dc_in, dh_prev, dc_prev;  ///< BPTT state double buffers.
};

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_WORKSPACE_H_
