// Dense matrix/vector kernels for the hand-written neural substrate.
//
// The library deliberately avoids external BLAS/ML dependencies: all
// embedding models in this repo train on modest CPU-scale corpora, and the
// simple row-major kernels below auto-vectorize well under -O3. We use
// double precision so the backward passes can be validated against central
// finite differences to tight tolerances.

#ifndef NEUTRAJ_NN_MATRIX_H_
#define NEUTRAJ_NN_MATRIX_H_

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/check.h"

namespace neutraj::nn {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t r, size_t c) {
    NEUTRAJ_DCHECK_MSG(r < rows_ && c < cols_, "Matrix index out of bounds");
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    NEUTRAJ_DCHECK_MSG(r < rows_ && c < cols_, "Matrix index out of bounds");
    return data_[r * cols_ + c];
  }

  double* Row(size_t r) {
    NEUTRAJ_DCHECK_MSG(r < rows_, "Matrix row out of bounds");
    return data_.data() + r * cols_;
  }
  const double* Row(size_t r) const {
    NEUTRAJ_DCHECK_MSG(r < rows_, "Matrix row out of bounds");
    return data_.data() + r * cols_;
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  const std::vector<double>& values() const { return data_; }
  std::vector<double>& values() { return data_; }

  /// Sets every entry to zero.
  void Zero();

  /// Frobenius norm squared.
  double SquaredNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Matrix-vector kernels ------------------------------------------------
// All kernels check shapes and throw std::invalid_argument on mismatch.

/// y = A * x.
void MatVec(const Matrix& a, const Vector& x, Vector* y);

/// y += A * x.
void MatVecAccum(const Matrix& a, const Vector& x, Vector* y);

/// y = A^T * x.
void MatTVec(const Matrix& a, const Vector& x, Vector* y);

/// y += A^T * x.
void MatTVecAccum(const Matrix& a, const Vector& x, Vector* y);

/// A += u * v^T (rank-1 update; used for weight gradients).
void AddOuterProduct(Matrix* a, const Vector& u, const Vector& v);

// ---- Vector kernels -------------------------------------------------------

/// y += x.
void AxpyInPlace(double alpha, const Vector& x, Vector* y);

/// out = a (elementwise*) b.
void Hadamard(const Vector& a, const Vector& b, Vector* out);

/// out += a (elementwise*) b.
void HadamardAccum(const Vector& a, const Vector& b, Vector* out);

/// Dot product.
double Dot(const Vector& a, const Vector& b);

/// Squared L2 norm.
double SquaredNorm(const Vector& v);

/// Euclidean (L2) norm.
double L2Norm(const Vector& v);

/// Euclidean distance between two equal-length vectors.
double L2Distance(const Vector& a, const Vector& b);

/// In-place numerically-stable softmax.
void SoftmaxInPlace(Vector* v);

/// Elementwise sigmoid / tanh applied out-of-place.
void SigmoidInto(const Vector& x, Vector* out);
void TanhInto(const Vector& x, Vector* out);

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_MATRIX_H_
