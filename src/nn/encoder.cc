#include "nn/encoder.h"

#include <stdexcept>

#include "common/check.h"
#include "obs/trace.h"

namespace neutraj::nn {

namespace {

bool HasSam(Backbone b) {
  return b == Backbone::kSamLstm || b == Backbone::kSamGru;
}

}  // namespace

Encoder::Encoder(Backbone backbone, const Grid& grid, size_t hidden_dim,
                 int32_t scan_width)
    : backbone_(backbone),
      grid_(grid),
      hidden_(hidden_dim),
      scan_width_(scan_width) {
  if (hidden_dim == 0) throw std::invalid_argument("Encoder: hidden_dim == 0");
  if (scan_width < 0) throw std::invalid_argument("Encoder: scan_width < 0");
  switch (backbone) {
    case Backbone::kLstm:
      lstm_.emplace("encoder.lstm", /*input_dim=*/2, hidden_dim);
      break;
    case Backbone::kSamLstm:
      sam_.emplace("encoder.sam", /*input_dim=*/2, hidden_dim);
      break;
    case Backbone::kGru:
    case Backbone::kSamGru:
      gru_.emplace("encoder.gru", /*input_dim=*/2, hidden_dim);
      break;
  }
  if (HasSam(backbone)) {
    memory_.emplace(grid_.num_cols(), grid_.num_rows(), hidden_dim);
  }
}

void Encoder::Initialize(Rng* rng) {
  if (lstm_) lstm_->Initialize(rng);
  if (sam_) sam_->Initialize(rng);
  if (gru_) gru_->Initialize(rng);
  ResetMemory();
}

Vector Encoder::Encode(const Trajectory& traj, bool update_memory,
                       EncodeTape* tape, CellWorkspace* ws,
                       MemoryWriteLog* write_log) {
  NEUTRAJ_TRACE_SPAN("nn/encode");
  if (traj.empty()) throw std::invalid_argument("Encode: empty trajectory");
  const size_t len = traj.size();
  if (tape != nullptr) {
    tape->length = len;
    // Resize without clear(): clearing would destroy the per-step tapes and
    // with them the capacity of every vector inside. Shrink-resizing keeps
    // surviving steps (and their buffers) alive for in-place reuse, so a
    // tape recycled across anchors stops allocating after warm-up.
    if (backbone_ == Backbone::kLstm) {
      tape->lstm_steps.resize(len);
      tape->sam_steps.clear();
      tape->gru_steps.clear();
    } else if (backbone_ == Backbone::kSamLstm) {
      tape->sam_steps.resize(len);
      tape->lstm_steps.clear();
      tape->gru_steps.clear();
    } else {
      tape->gru_steps.resize(len);
      tape->lstm_steps.clear();
      tape->sam_steps.clear();
    }
  }

  const bool use_sam = HasSam(backbone_);
  CellWorkspace local_ws_storage;
  CellWorkspace* w = ws != nullptr ? ws : &local_ws_storage;
  Vector& h = w->h;
  Vector& c = w->c;
  Vector& h_next = w->h_next;
  Vector& c_next = w->c_next;
  h.assign(hidden_, 0.0);
  c.assign(hidden_, 0.0);
  Vector& x = w->x;
  x.resize(2);
  std::vector<GridCell>& window = w->window;
  LstmTape scratch_lstm;
  SamTape scratch_sam;
  GruTape scratch_gru;
  for (size_t t = 0; t < len; ++t) {
    const Point norm = grid_.Normalize(traj[t]);
    x[0] = norm.x;
    x[1] = norm.y;
    GridCell center{0, 0};
    if (use_sam) {
      center = grid_.CellOf(traj[t]);
      grid_.ScanWindowInto(center, scan_width_, &window);
    }
    switch (backbone_) {
      case Backbone::kLstm: {
        LstmTape* step = tape ? &tape->lstm_steps[t] : &scratch_lstm;
        lstm_->Forward(x, h, c, step, &h_next, &c_next, w);
        c.swap(c_next);
        break;
      }
      case Backbone::kSamLstm: {
        SamTape* step = tape ? &tape->sam_steps[t] : &scratch_sam;
        sam_->Forward(x, h, c, window, center, &*memory_, /*use_memory=*/true,
                      update_memory, step, &h_next, &c_next, w, write_log);
        c.swap(c_next);
        break;
      }
      case Backbone::kGru:
      case Backbone::kSamGru: {
        GruTape* step = tape ? &tape->gru_steps[t] : &scratch_gru;
        gru_->Forward(x, h, window, center, memory_ ? &*memory_ : nullptr,
                      /*use_memory=*/backbone_ == Backbone::kSamGru,
                      update_memory, step, &h_next, w, write_log);
        break;
      }
    }
    h.swap(h_next);
  }
  NEUTRAJ_DCHECK_FINITE(h);
  return h;
}

void Encoder::Backward(const EncodeTape& tape, const Vector& d_embedding,
                       GradBuffer* sink, CellWorkspace* ws) {
  NEUTRAJ_TRACE_SPAN("nn/backward");
  if (d_embedding.size() != hidden_) {
    throw std::invalid_argument("Backward: gradient dimension mismatch");
  }
  NEUTRAJ_DCHECK_MSG(
      tape.length == (backbone_ == Backbone::kLstm ? tape.lstm_steps.size()
                      : backbone_ == Backbone::kSamLstm
                          ? tape.sam_steps.size()
                          : tape.gru_steps.size()),
      "Encoder::Backward: tape length does not match recorded steps");
  CellWorkspace local_ws_storage;
  CellWorkspace* w = ws != nullptr ? ws : &local_ws_storage;
  Vector& dh = w->dh;
  Vector& dc = w->dc_in;
  Vector& dh_prev = w->dh_prev;
  Vector& dc_prev = w->dc_prev;
  dh = d_embedding;
  dc.assign(hidden_, 0.0);
  dh_prev.resize(hidden_);
  dc_prev.resize(hidden_);
  for (size_t t = tape.length; t-- > 0;) {
    std::fill(dh_prev.begin(), dh_prev.end(), 0.0);
    std::fill(dc_prev.begin(), dc_prev.end(), 0.0);
    switch (backbone_) {
      case Backbone::kLstm:
        lstm_->Backward(tape.lstm_steps[t], dh, dc, &dh_prev, &dc_prev, nullptr,
                        sink, w);
        dc.swap(dc_prev);
        break;
      case Backbone::kSamLstm:
        sam_->Backward(tape.sam_steps[t], dh, dc, &dh_prev, &dc_prev, nullptr,
                       sink, w);
        dc.swap(dc_prev);
        break;
      case Backbone::kGru:
      case Backbone::kSamGru:
        gru_->Backward(tape.gru_steps[t], dh, &dh_prev, nullptr, sink, w);
        break;
    }
    dh.swap(dh_prev);
  }
}

std::vector<Param*> Encoder::Params() {
  switch (backbone_) {
    case Backbone::kLstm:
      return lstm_->Params();
    case Backbone::kSamLstm:
      return sam_->Params();
    case Backbone::kGru:
    case Backbone::kSamGru:
      return gru_->Params();
  }
  return {};
}

void Encoder::ResetMemory() {
  if (memory_) memory_->Clear();
}

}  // namespace neutraj::nn
