// Standard LSTM cell with a hand-written backward pass.
//
// Used as the backbone of the Siamese baseline (Pei et al. instantiated with
// LSTM, as in the paper's experiments) and as the reference point for the
// SAM-augmented cell. Gate layout in the stacked weight matrices is
// [input i, forget f, candidate g, output o], each block of `hidden` rows.

#ifndef NEUTRAJ_NN_LSTM_CELL_H_
#define NEUTRAJ_NN_LSTM_CELL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "nn/parameter.h"
#include "nn/workspace.h"

namespace neutraj::nn {

/// Per-step activations saved by Forward for the backward pass.
struct LstmTape {
  Vector x;       ///< Step input.
  Vector h_prev;  ///< Previous hidden state.
  Vector c_prev;  ///< Previous cell state.
  Vector i, f, g, o;  ///< Post-activation gates / candidate.
  Vector c;       ///< New cell state.
  Vector tanh_c;  ///< tanh(c), reused by backward.
};

/// LSTM recurrence: c_t = f (*) c_{t-1} + i (*) g;  h_t = o (*) tanh(c_t).
class LstmCell {
 public:
  LstmCell(const std::string& name, size_t input_dim, size_t hidden_dim);

  /// Xavier input weights, orthogonal recurrent weights, forget bias = 1.
  void Initialize(Rng* rng);

  /// One recurrent step. Writes activations into `tape` and outputs h/c.
  /// `ws` (optional) supplies reusable scratch buffers so the hot path does
  /// not allocate per step.
  void Forward(const Vector& x, const Vector& h_prev, const Vector& c_prev,
               LstmTape* tape, Vector* h, Vector* c,
               CellWorkspace* ws = nullptr) const;

  /// Backward through one step. `dh` and `dc_in` are the incoming gradients
  /// of h_t and c_t; accumulates parameter gradients and adds gradients
  /// into `dh_prev_accum` / `dc_prev_accum` (both pre-sized to hidden_dim)
  /// and, if non-null, `dx_accum` (pre-sized to input_dim).
  /// When `sink` is non-null, parameter gradients go into it (aligned with
  /// Params() order) instead of the cell's own Param::grad, so concurrent
  /// backward passes over one shared cell never race. `ws` as in Forward.
  void Backward(const LstmTape& tape, const Vector& dh, const Vector& dc_in,
                Vector* dh_prev_accum, Vector* dc_prev_accum, Vector* dx_accum,
                GradBuffer* sink = nullptr, CellWorkspace* ws = nullptr);

  size_t input_dim() const { return wx_.value.cols(); }
  size_t hidden_dim() const { return hidden_; }
  std::vector<Param*> Params() { return {&wx_, &wh_, &b_}; }

  /// Indices into Params() / a matching GradBuffer.
  static constexpr size_t kWx = 0, kWh = 1, kB = 2;

 private:
  size_t hidden_;
  Param wx_;  // 4h x input
  Param wh_;  // 4h x h
  Param b_;   // 4h x 1
};

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_LSTM_CELL_H_
