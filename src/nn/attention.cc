#include "nn/attention.h"

#include <limits>

#include "common/check.h"

namespace neutraj::nn {

namespace {

constexpr double kMaskedLogit = -std::numeric_limits<double>::infinity();

}  // namespace

void AttentionForward(const Matrix& g, const Vector& q, AttentionTape* tape,
                      const std::vector<char>* mask) {
  tape->g = g;
  AttentionForwardPrefilled(tape, q, mask);
}

void AttentionForwardPrefilled(AttentionTape* tape, const Vector& q,
                               const std::vector<char>* mask) {
  const Matrix& g = tape->g;
  NEUTRAJ_DCHECK_MSG(g.cols() == q.size(), "attention query width mismatch");
  NEUTRAJ_DCHECK_MSG(mask == nullptr || mask->size() == g.rows(),
                     "attention mask must have one flag per window row");
  NEUTRAJ_DCHECK_FINITE(q);
  MatVec(g, q, &tape->a);
  tape->all_masked = false;
  if (mask != nullptr) {
    bool any = false;
    for (size_t i = 0; i < tape->a.size(); ++i) {
      if ((*mask)[i]) {
        any = true;
      } else {
        tape->a[i] = kMaskedLogit;
      }
    }
    if (!any) {
      tape->all_masked = true;
      tape->a.assign(tape->a.size(), 0.0);
      tape->mix.assign(g.cols(), 0.0);
      return;
    }
  }
  SoftmaxInPlace(&tape->a);
  MatTVec(g, tape->a, &tape->mix);
  NEUTRAJ_DCHECK_FINITE(tape->mix);
}

void AttentionBackward(const AttentionTape& tape, const Vector& dmix,
                       const Vector* da_direct, Vector* dq_accum,
                       Vector* da_scratch, Vector* du_scratch) {
  if (tape.all_masked) return;  // mix was constant zero; no query gradient.
  NEUTRAJ_DCHECK_MSG(dmix.size() == tape.g.cols(),
                     "attention dmix width mismatch");
  NEUTRAJ_DCHECK_MSG(da_direct == nullptr || da_direct->size() == tape.a.size(),
                     "attention da_direct length mismatch");
  NEUTRAJ_DCHECK_MSG(dq_accum != nullptr && dq_accum->size() == tape.g.cols(),
                     "attention dq accumulator must be pre-sized");
  Vector local_da, local_du;
  Vector& da = da_scratch != nullptr ? *da_scratch : local_da;
  Vector& du = du_scratch != nullptr ? *du_scratch : local_du;
  // mix = G^T A  =>  dA = G * dmix.
  MatVec(tape.g, dmix, &da);
  if (da_direct != nullptr) {
    AxpyInPlace(1.0, *da_direct, &da);
  }
  // A = softmax(u): du = A (*) (dA - <A, dA>).
  const double inner = Dot(tape.a, da);
  du.resize(da.size());
  for (size_t i = 0; i < da.size(); ++i) du[i] = tape.a[i] * (da[i] - inner);
  // u = G q  =>  dq += G^T du.
  MatTVecAccum(tape.g, du, dq_accum);
}

}  // namespace neutraj::nn
