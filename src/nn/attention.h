// Soft-attention read over a window of memory slots.
//
// Forward (paper Sec. IV-C-1):
//   A   = softmax(G * q)        -- attention over window rows
//   mix = G^T * A               -- attended summary
// Backward: gradients flow into the query q only; G (the memory contents)
// is treated as constant, matching the reference implementation.

#ifndef NEUTRAJ_NN_ATTENTION_H_
#define NEUTRAJ_NN_ATTENTION_H_

#include "nn/matrix.h"

namespace neutraj::nn {

/// Saved activations of one attention read, needed for its backward pass.
struct AttentionTape {
  Matrix g;    ///< Window embeddings (k x d) snapshotted at read time.
  Vector a;    ///< Attention weights (k); zero on masked rows.
  Vector mix;  ///< Attended summary (d); all-zero when every row is masked.
  bool all_masked = false;
};

/// Computes A = softmax(G q) and mix = G^T A; fills `tape` (including a copy
/// of G, since memory contents change between steps).
///
/// `mask` (optional, one flag per row of G) restricts the softmax to rows
/// with a non-zero flag — used to exclude never-written memory cells, whose
/// zero embeddings would otherwise soak up attention mass. When every row
/// is masked, A and mix are zero and `all_masked` is set.
void AttentionForward(const Matrix& g, const Vector& q, AttentionTape* tape,
                      const std::vector<char>* mask = nullptr);

/// Hot-path variant: assumes `tape->g` has already been filled in place
/// (e.g. gathered straight from the memory tensor), skipping the extra
/// window copy that AttentionForward makes.
void AttentionForwardPrefilled(AttentionTape* tape, const Vector& q,
                               const std::vector<char>* mask);

/// Given dL/dmix and (optionally) a direct dL/dA, accumulates dL/dq.
/// `da_direct` may be nullptr. `da_scratch` / `du_scratch` (optional) are
/// caller-owned buffers that kill the per-step allocations of the hot path.
void AttentionBackward(const AttentionTape& tape, const Vector& dmix,
                       const Vector* da_direct, Vector* dq_accum,
                       Vector* da_scratch = nullptr, Vector* du_scratch = nullptr);

}  // namespace neutraj::nn

#endif  // NEUTRAJ_NN_ATTENTION_H_
