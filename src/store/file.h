// Checked file I/O for the durability layer.
//
// Every byte the write-ahead log and snapshot writer persist flows through
// this interface, for two reasons:
//
//   1. Checked syscalls. A dropped write()/fsync() return value in a
//      durability path silently loses acknowledged data; File methods
//      either complete fully or throw StoreError (tools/lint.sh rule 6
//      bans raw POSIX I/O everywhere else in src/store).
//   2. Fault injection. FileFactory is the seam the fault-injection
//      harness (store/faulty_file.h) plugs into: tests swap the posix
//      factory for one that fails, short-writes, or "crashes" at the Nth
//      I/O operation, so crash-recovery invariants are provable in-process
//      without actually killing anything.

#ifndef NEUTRAJ_STORE_FILE_H_
#define NEUTRAJ_STORE_FILE_H_

#include <memory>
#include <stdexcept>
#include <string>

namespace neutraj::store {

/// A durability-layer I/O failure (open/write/fsync/rename). The store
/// reacts by entering read-only degraded mode; the serving layer maps it to
/// the typed kDegraded wire error.
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

/// One writable file. All methods throw StoreError on failure; none return
/// status codes, so a call site cannot forget to check.
class File {
 public:
  virtual ~File() = default;

  /// Appends all of `bytes` (retrying short writes and EINTR).
  virtual void Append(const std::string& bytes) = 0;

  /// Flushes written data to stable storage (fsync).
  virtual void Sync() = 0;

  /// Truncates the file to zero length and syncs the truncation.
  virtual void Truncate() = 0;
};

/// Creates Files and performs the path-level operations (rename, directory
/// sync) an atomic-replace protocol needs. The default implementation is
/// Posix(); tests inject FaultyFileFactory.
class FileFactory {
 public:
  virtual ~FileFactory() = default;

  /// Opens `path` for appending, creating it if absent.
  virtual std::unique_ptr<File> OpenAppend(const std::string& path) = 0;

  /// Opens `path` truncated to empty, creating it if absent.
  virtual std::unique_ptr<File> CreateTruncate(const std::string& path) = 0;

  /// Atomically renames `from` onto `to`.
  virtual void Rename(const std::string& from, const std::string& to) = 0;

  /// Syncs the directory entry metadata of `dir` so a completed rename
  /// survives a crash.
  virtual void SyncDirectory(const std::string& dir) = 0;

  /// The process-wide real-POSIX factory.
  static FileFactory& Posix();
};

}  // namespace neutraj::store

#endif  // NEUTRAJ_STORE_FILE_H_
