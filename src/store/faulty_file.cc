#include "store/faulty_file.h"

#include <utility>

namespace neutraj::store {

namespace {

/// Wraps one File, routing every operation through the factory's counter.
class FaultyFile : public File {
 public:
  FaultyFile(std::unique_ptr<File> base, FaultyFileFactory* factory)
      : base_(std::move(base)), factory_(factory) {}

  void Append(const std::string& bytes) override {
    // A torn crash must persist the first half *before* the throw, so the
    // trigger check runs first and decides what reaches the file.
    FaultPlan* plan = factory_->plan();
    const bool fires = plan->ops_seen + 1 == plan->fault_at_op &&
                       plan->action == FaultAction::kTornCrash;
    if (fires && !bytes.empty()) {
      base_->Append(bytes.substr(0, bytes.size() / 2));
    }
    factory_->CountOp("write");
    base_->Append(bytes);
  }

  void Sync() override {
    factory_->CountOp("sync");
    // Not forwarded: see the header. The harness re-reads from the same
    // process, so page-cache contents are what recovery observes anyway.
  }

  void Truncate() override {
    factory_->CountOp("truncate");
    base_->Truncate();
  }

 private:
  std::unique_ptr<File> base_;
  FaultyFileFactory* factory_;
};

}  // namespace

FaultyFileFactory::FaultyFileFactory(FileFactory* base, FaultPlan* plan)
    : base_(base), plan_(plan) {}

void FaultyFileFactory::CountOp(const char* what) {
  ++plan_->ops_seen;
  if (plan_->ops_seen < plan_->fault_at_op) return;
  switch (plan_->action) {
    case FaultAction::kFailOp:
      throw StoreError(std::string("injected I/O failure at op ") +
                       std::to_string(plan_->ops_seen) + " (" + what + ")");
    case FaultAction::kCrash:
    case FaultAction::kTornCrash:
      // Only the trigger op crashes; a test that keeps running after
      // catching SimulatedCrash (recovery phase) must see a healthy disk.
      if (plan_->ops_seen == plan_->fault_at_op) throw SimulatedCrash();
      break;
  }
}

std::unique_ptr<File> FaultyFileFactory::OpenAppend(const std::string& path) {
  return std::make_unique<FaultyFile>(base_->OpenAppend(path), this);
}

std::unique_ptr<File> FaultyFileFactory::CreateTruncate(
    const std::string& path) {
  return std::make_unique<FaultyFile>(base_->CreateTruncate(path), this);
}

void FaultyFileFactory::Rename(const std::string& from, const std::string& to) {
  CountOp("rename");
  base_->Rename(from, to);
}

void FaultyFileFactory::SyncDirectory(const std::string& dir) {
  CountOp("dirsync");
  // Like Sync(): counted as a crash point, not forwarded.
  (void)dir;
}

}  // namespace neutraj::store
