#include "store/durable_store.h"

#include <filesystem>
#include <utility>

#include "common/check.h"
#include "common/file_util.h"
#include "common/framing.h"
#include "common/stopwatch.h"

namespace neutraj::store {

namespace {

constexpr char kSnapshotName[] = "snapshot.embdb";
constexpr char kWalName[] = "wal.log";
constexpr char kSnapshotTmpSuffix[] = ".tmp";

}  // namespace

DurableStore::DurableStore(EmbeddingDatabase* db, Options opts)
    : db_(db),
      opts_(std::move(opts)),
      files_(opts_.files != nullptr ? opts_.files : &FileFactory::Posix()),
      snapshot_path_(opts_.data_dir + "/" + kSnapshotName),
      wal_path_(opts_.data_dir + "/" + kWalName) {
  if (db_ == nullptr) {
    throw std::invalid_argument("DurableStore: null EmbeddingDatabase");
  }
  if (opts_.data_dir.empty()) {
    throw std::invalid_argument("DurableStore: empty data_dir");
  }
  AttachMetrics(&obs::MetricsRegistry::Global());
}

void DurableStore::AttachMetrics(obs::MetricsRegistry* registry) {
  append_us_ = &registry->GetHistogram("wal/append_us");
  compact_us_ = &registry->GetHistogram("store/compact_us");
  recovery_us_ = &registry->GetHistogram("store/recovery_us");
  wal_appends_ = &registry->GetCounter("wal/records");
  wal_bytes_ = &registry->GetCounter("wal/bytes");
  compactions_ = &registry->GetCounter("store/compactions");
  recovered_records_ = &registry->GetCounter("store/recovered_records");
  replay_skipped_ = &registry->GetCounter("store/replay_skipped");
  tail_truncations_ = &registry->GetCounter("store/tail_truncations");
  degraded_gauge_ = &registry->GetGauge("store/degraded");
  live_wal_records_ = &registry->GetGauge("store/wal_records");
  degraded_gauge_->Set(degraded_.load() ? 1.0 : 0.0);
}

std::string DurableStore::degraded_reason() const {
  MutexLock lock(mu_);
  return degraded_reason_;
}

size_t DurableStore::wal_records() const {
  MutexLock lock(mu_);
  return wal_records_;
}

void DurableStore::DegradeLocked(const std::string& reason) {
  if (!degraded_.load()) {
    degraded_reason_ = reason;
    degraded_.store(true);
    degraded_gauge_->Set(1.0);
  }
}

DurableStore::RecoveryInfo DurableStore::Open() {
  Stopwatch sw;
  MutexLock lock(mu_);
  if (opened_) throw StoreError("DurableStore: already opened");
  if (!EnsureDirectory(opts_.data_dir)) {
    throw StoreError("DurableStore: cannot create data dir " + opts_.data_dir);
  }
  // A crash during a previous compaction can leave a half-written snapshot
  // temp file; it was never renamed into place, so it is dead weight.
  {
    std::error_code ec;
    std::filesystem::remove(snapshot_path_ + kSnapshotTmpSuffix, ec);
  }

  RecoveryInfo info;
  const bool has_snapshot = FileExists(snapshot_path_);
  std::string wal_bytes;
  if (FileExists(wal_path_)) wal_bytes = ReadFile(wal_path_);

  if ((has_snapshot || !wal_bytes.empty()) && !db_->empty()) {
    throw StoreError(
        "DurableStore: data dir " + opts_.data_dir +
        " already holds a corpus but the database is not empty — recover "
        "into an empty database or point at a fresh directory");
  }

  if (has_snapshot) {
    // CorruptionError propagates: a damaged snapshot must never be served.
    *db_ = EmbeddingDatabase::Load(snapshot_path_);
    info.snapshot_records = db_->size();
  }

  if (!wal_bytes.empty()) {
    const WalReplayResult r = ReplayWal(wal_bytes, db_);
    info.replayed = r.applied;
    info.skipped = r.skipped;
    info.tail = r.tail;
    info.tail_detail = r.detail;
    recovered_records_->Add(r.applied);
    replay_skipped_->Add(r.skipped);
    if (r.tail != WalTail::kClean) tail_truncations_->Increment();
  }

  wal_ = std::make_unique<WalWriter>(wal_path_, files_, opts_.sync_writes);
  wal_records_ = 0;
  opened_ = true;

  if (!wal_bytes.empty()) {
    // Fold the replayed tail into a fresh snapshot and truncate the log:
    // torn/corrupt trailing bytes must not precede future appends, and a
    // crash inside THIS compaction is safe by replay idempotence.
    CompactLocked();
  } else if (!db_->empty() && !has_snapshot) {
    // Pre-seeded database (corpus built from --data) over a fresh
    // directory: make it durable before the first request.
    CompactLocked();
  }
  recovery_us_->Record(sw.ElapsedMillis() * 1e3);
  return info;
}

size_t DurableStore::Insert(const nn::Vector& embedding,
                            obs::RequestTrace* trace) {
  Stopwatch sw;
  MutexLock lock(mu_);
  if (!opened_) throw StoreError("DurableStore: Insert before Open");
  if (degraded_.load()) {
    throw StoreError("DurableStore: store is read-only (degraded): " +
                     degraded_reason_);
  }
  // All corpus mutations are serialized through mu_, so the id the
  // database will assign is its current size.
  const uint64_t seq = db_->size();
  obs::StageSpan wal_span(trace, "wal");
  try {
    wal_->Append({seq, embedding});
  } catch (const StoreError& e) {
    // Not logged => must not be applied or acknowledged.
    DegradeLocked(e.what());
    throw;
  }
  wal_span.Stop();
  const size_t id = db_->Insert(embedding);
  NEUTRAJ_ASSERT_MSG(id == seq, "DurableStore: WAL seq diverged from corpus id");
  ++wal_records_;
  append_us_->Record(sw.ElapsedMillis() * 1e3);
  wal_appends_->Increment();
  wal_bytes_->Add(kWireHeaderSize + 12 + 8 * embedding.size());
  live_wal_records_->Set(static_cast<double>(wal_records_));

  if (opts_.compact_every > 0 && wal_records_ >= opts_.compact_every) {
    try {
      CompactLocked();
    } catch (const StoreError& e) {
      // The insert itself is durable and applied; only future writes are
      // in doubt, so degrade but still acknowledge this id.
      DegradeLocked(e.what());
    }
  }
  return id;
}

void DurableStore::Compact() {
  MutexLock lock(mu_);
  if (!opened_) throw StoreError("DurableStore: Compact before Open");
  if (degraded_.load()) {
    throw StoreError("DurableStore: store is read-only (degraded): " +
                     degraded_reason_);
  }
  try {
    CompactLocked();
  } catch (const StoreError& e) {
    DegradeLocked(e.what());
    throw;
  }
}

void DurableStore::CompactLocked() {
  Stopwatch sw;
  // Atomic-replace with the same discipline as WriteFileAtomic, but routed
  // through the (injectable, checked) FileFactory: write the full snapshot
  // to a temp file, fsync it, rename over the live name, fsync the
  // directory, and only then truncate the log. Every prefix of this
  // sequence leaves a recoverable directory.
  const std::string tmp = snapshot_path_ + kSnapshotTmpSuffix;
  const std::string bytes = db_->Serialize();
  {
    std::unique_ptr<File> f = files_->CreateTruncate(tmp);
    f->Append(bytes);
    f->Sync();
  }
  files_->Rename(tmp, snapshot_path_);
  files_->SyncDirectory(opts_.data_dir);
  wal_->Reset();
  wal_records_ = 0;
  live_wal_records_->Set(0.0);
  compactions_->Increment();
  compact_us_->Record(sw.ElapsedMillis() * 1e3);
}

}  // namespace neutraj::store
