// Write-ahead log for the serving corpus.
//
// The WAL is a flat file of binary records, each one a CRC-framed wire
// frame (common/framing.h — the exact format the serving sockets use, so
// framing, checksums and torn-tail detection are one battle-tested code
// path). One record type exists today:
//
//   kWalInsert (type 1), payload:
//     offset  size  field
//     0       8     seq    — corpus id this embedding was assigned
//     8       4     dim    — embedding width
//     12      8*dim IEEE-754 doubles, little-endian bit patterns
//
// Append discipline: a record is written and fsync'd *before* the insert
// it describes is applied to the in-memory database or acknowledged to the
// client, so the log is always a superset of acknowledged state.
//
// Replay discipline: records apply in file order. A record whose seq is
// below the database's current size is a duplicate of already-snapshotted
// state and is skipped — this makes replay idempotent, which is what lets
// compaction crash between writing the snapshot and truncating the log
// without corrupting anything. Replay stops (rather than throwing) at the
// first undecodable frame: a truncated tail (kill mid-write) or a
// bit-flipped record ends recovery at the last consistent prefix.

#ifndef NEUTRAJ_STORE_WAL_H_
#define NEUTRAJ_STORE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/embedding_db.h"
#include "nn/matrix.h"
#include "store/file.h"

namespace neutraj::store {

/// Wire-frame type of an insert record.
inline constexpr uint16_t kWalInsert = 1;

struct WalRecord {
  uint64_t seq = 0;
  nn::Vector embedding;
};

/// Renders one record as a framed byte string ready to append.
std::string EncodeWalRecord(const WalRecord& rec);

/// Decodes a kWalInsert payload; false on truncation, trailing garbage, or
/// an implausible dimension.
bool ParseWalRecord(const std::string& payload, WalRecord* out);

/// Why replay stopped consuming the log.
enum class WalTail {
  kClean,      ///< Every byte decoded as a valid record.
  kTorn,       ///< Trailing bytes form an incomplete frame (kill mid-write).
  kCorrupt,    ///< A frame failed magic/version/CRC checks.
  kBadRecord,  ///< A frame decoded but its payload was invalid (unknown
               ///< type, malformed payload, sequence gap, dim mismatch).
};

const char* WalTailName(WalTail t);

struct WalReplayResult {
  size_t applied = 0;      ///< Records inserted into the database.
  size_t skipped = 0;      ///< Duplicates of snapshotted state (idempotence).
  size_t valid_bytes = 0;  ///< Prefix length consumed as valid records.
  WalTail tail = WalTail::kClean;
  std::string detail;      ///< Human-readable stop reason when not kClean.
};

/// Replays `bytes` (a WAL file's contents) into `db`. Never throws on log
/// corruption — it stops at the last valid prefix and reports how.
WalReplayResult ReplayWal(const std::string& bytes, EmbeddingDatabase* db);

/// Appender over one WAL file. Not thread-safe; DurableStore serializes.
class WalWriter {
 public:
  /// Opens `path` for appending via `factory`. `sync` false skips the
  /// per-record fsync (test harness; production keeps it on).
  WalWriter(std::string path, FileFactory* factory, bool sync);

  /// Appends one record durably (write + fsync). Throws StoreError on any
  /// I/O failure, in which case nothing may be acknowledged.
  void Append(const WalRecord& rec);

  /// Truncates the log to empty (post-compaction). Throws StoreError.
  void Reset();

  uint64_t appended_records() const { return appended_records_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::unique_ptr<File> file_;
  bool sync_;
  uint64_t appended_records_ = 0;
  uint64_t appended_bytes_ = 0;
};

}  // namespace neutraj::store

#endif  // NEUTRAJ_STORE_WAL_H_
