#include "store/wal.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/framing.h"

namespace neutraj::store {

namespace {

void PutLe32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutLe64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint32_t GetLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetLe64(const unsigned char* p) {
  return static_cast<uint64_t>(GetLe32(p)) |
         static_cast<uint64_t>(GetLe32(p + 4)) << 32;
}

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& rec) {
  if (rec.embedding.empty()) {
    throw std::invalid_argument("EncodeWalRecord: empty embedding");
  }
  std::string payload;
  payload.reserve(12 + 8 * rec.embedding.size());
  PutLe64(&payload, rec.seq);
  PutLe32(&payload, static_cast<uint32_t>(rec.embedding.size()));
  for (const double v : rec.embedding) PutLe64(&payload, DoubleBits(v));
  return EncodeWireFrame(kWalInsert, payload);
}

bool ParseWalRecord(const std::string& payload, WalRecord* out) {
  if (payload.size() < 12) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  const uint64_t seq = GetLe64(p);
  const uint32_t dim = GetLe32(p + 8);
  if (dim == 0 || payload.size() != 12 + 8 * static_cast<size_t>(dim)) {
    return false;
  }
  out->seq = seq;
  out->embedding.resize(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    out->embedding[i] = BitsDouble(GetLe64(p + 12 + 8 * static_cast<size_t>(i)));
  }
  return true;
}

const char* WalTailName(WalTail t) {
  switch (t) {
    case WalTail::kClean: return "clean";
    case WalTail::kTorn: return "torn";
    case WalTail::kCorrupt: return "corrupt";
    case WalTail::kBadRecord: return "bad-record";
  }
  return "unknown";
}

WalReplayResult ReplayWal(const std::string& bytes, EmbeddingDatabase* db) {
  WalReplayResult result;
  size_t offset = 0;
  while (offset < bytes.size()) {
    WireFrame frame;
    const FrameStatus status = DecodeWireFrame(bytes, &offset, &frame);
    if (status == FrameStatus::kIncomplete) {
      result.tail = WalTail::kTorn;
      result.detail = "incomplete record at byte " + std::to_string(offset) +
                      " (" + std::to_string(bytes.size() - offset) +
                      " trailing bytes)";
      break;
    }
    if (status != FrameStatus::kOk) {
      result.tail = WalTail::kCorrupt;
      result.detail = std::string("undecodable record at byte ") +
                      std::to_string(offset) + ": " + FrameStatusName(status);
      break;
    }
    WalRecord rec;
    if (frame.type != kWalInsert || !ParseWalRecord(frame.payload, &rec)) {
      result.tail = WalTail::kBadRecord;
      result.detail = "malformed record payload (type " +
                      std::to_string(frame.type) + ")";
      break;
    }
    const size_t size = db->size();
    if (rec.seq < size) {
      // Already covered by the snapshot (or an earlier duplicate): the
      // skip is what makes replaying the same tail twice a no-op.
      ++result.skipped;
      result.valid_bytes = offset;
      continue;
    }
    if (rec.seq > size) {
      result.tail = WalTail::kBadRecord;
      result.detail = "sequence gap: record seq " + std::to_string(rec.seq) +
                      " but corpus has " + std::to_string(size);
      break;
    }
    try {
      db->Insert(rec.embedding);
    } catch (const std::invalid_argument& e) {
      result.tail = WalTail::kBadRecord;
      result.detail = std::string("record rejected: ") + e.what();
      break;
    }
    ++result.applied;
    result.valid_bytes = offset;
  }
  return result;
}

WalWriter::WalWriter(std::string path, FileFactory* factory, bool sync)
    : path_(std::move(path)),
      file_(factory->OpenAppend(path_)),
      sync_(sync) {}

void WalWriter::Append(const WalRecord& rec) {
  const std::string bytes = EncodeWalRecord(rec);
  file_->Append(bytes);
  if (sync_) file_->Sync();
  ++appended_records_;
  appended_bytes_ += bytes.size();
}

void WalWriter::Reset() {
  file_->Truncate();
  appended_records_ = 0;
  appended_bytes_ = 0;
}

}  // namespace neutraj::store
