// Crash-durable persistence under the serving corpus.
//
// DurableStore wraps a live EmbeddingDatabase with a write-ahead log plus
// periodic compacted snapshots, both living in one data directory:
//
//   <data_dir>/snapshot.embdb   — compacted corpus (the EmbeddingDatabase
//                                 container format, written atomically via
//                                 tmp + fsync + rename)
//   <data_dir>/wal.log          — CRC-framed insert records appended (and
//                                 fsync'd) since the last snapshot
//
// Invariants, in the order they matter:
//
//   1. WAL-before-ack. Insert() appends and syncs the record before the
//      embedding enters the in-memory database, so anything a client saw
//      acknowledged is on stable storage. A kill at any instant recovers a
//      corpus that contains every acknowledged insert and is a prefix of
//      the submitted sequence (the at-most-one in-flight record may or may
//      not survive; nothing later can).
//   2. Idempotent replay. WAL records carry their corpus id; recovery
//      skips records already covered by the snapshot. Compaction can
//      therefore crash anywhere between "snapshot renamed" and "log
//      truncated" — the stale log records are skipped on the next replay,
//      never double-applied.
//   3. Tolerant tail, strict body. Recovery stops cleanly at a truncated
//      or bit-flipped log record (the expected shape of a crash) and
//      truncates it away; a corrupt *snapshot* is typed CorruptionError —
//      serving corrupt vectors is never an option.
//   4. Degrade, don't lie. If the log device fails mid-flight the store
//      flips to read-only: the failed insert and all later ones throw
//      StoreError (the serving layer answers kDegraded), while queries
//      over the already-durable corpus keep working.

#ifndef NEUTRAJ_STORE_DURABLE_STORE_H_
#define NEUTRAJ_STORE_DURABLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/sync.h"
#include "core/embedding_db.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "store/file.h"
#include "store/wal.h"

namespace neutraj::store {

class DurableStore {
 public:
  struct Options {
    std::string data_dir;
    /// WAL records that trigger an automatic compaction from Insert();
    /// 0 compacts only on explicit Compact() / Open().
    size_t compact_every = 1024;
    /// fsync each WAL append. Production default; the fault harness turns
    /// it off because FaultyFile intercepts syncs anyway.
    bool sync_writes = true;
    /// I/O seam; nullptr uses FileFactory::Posix().
    FileFactory* files = nullptr;
  };

  /// What recovery found. Returned by Open() and echoed by the server log.
  struct RecoveryInfo {
    size_t snapshot_records = 0;  ///< Embeddings restored from the snapshot.
    size_t replayed = 0;          ///< WAL records applied on top.
    size_t skipped = 0;           ///< Duplicate records ignored (idempotence).
    WalTail tail = WalTail::kClean;
    std::string tail_detail;      ///< Stop reason when tail != kClean.
  };

  /// `db` must outlive the store; all mutations of `db` must go through
  /// Insert() once the store owns it (readers are unrestricted).
  DurableStore(EmbeddingDatabase* db, Options opts);

  /// Recovers snapshot + WAL tail into the database and opens the log for
  /// appending. If the directory holds prior state the database must be
  /// empty (recovery IS the corpus); if the database already has rows and
  /// the directory is fresh, they are snapshotted immediately so a corpus
  /// built from --data is durable from request one. Ends with a compaction
  /// whenever the log had content, so torn tails never linger. Throws
  /// StoreError on I/O failure and CorruptionError on a corrupt snapshot.
  RecoveryInfo Open() NEUTRAJ_EXCLUDES(mu_);

  /// Durably logs and applies one insert; returns the assigned corpus id.
  /// Throws StoreError (without applying) if the store is degraded or the
  /// append fails — an insert that was not logged is never acknowledged.
  /// WAL-then-db ordering is enforced under mu_: the record is appended and
  /// synced before EmbeddingDatabase::Insert runs (store rank < db rank).
  /// `trace` (nullable) gets a "wal" span around the append + sync —
  /// recording is lock-free, so it is safe under mu_.
  size_t Insert(const nn::Vector& embedding,
                obs::RequestTrace* trace = nullptr) NEUTRAJ_EXCLUDES(mu_);

  /// Snapshots the corpus and truncates the WAL. Throws StoreError.
  void Compact() NEUTRAJ_EXCLUDES(mu_);

  /// True once a log/snapshot I/O failure has flipped the store read-only.
  bool read_only() const { return degraded_.load(); }
  std::string degraded_reason() const NEUTRAJ_EXCLUDES(mu_);

  /// Live WAL records since the last compaction.
  size_t wal_records() const NEUTRAJ_EXCLUDES(mu_);

  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& wal_path() const { return wal_path_; }

  /// Re-points the store's telemetry (wal/* and store/* metrics) at
  /// `registry`; same contract as EmbeddingDatabase::AttachMetrics.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  void CompactLocked() NEUTRAJ_REQUIRES(mu_);
  void DegradeLocked(const std::string& reason) NEUTRAJ_REQUIRES(mu_);

  EmbeddingDatabase* db_;
  Options opts_;
  FileFactory* files_;
  std::string snapshot_path_;
  std::string wal_path_;

  /// Serializes all mutations; ranked below the database lock because
  /// Insert/Compact call into the EmbeddingDatabase while holding it
  /// (the WAL-then-db ordering seam).
  mutable Mutex mu_{lock_rank::kStore};
  std::unique_ptr<WalWriter> wal_ NEUTRAJ_GUARDED_BY(mu_)
      NEUTRAJ_PT_GUARDED_BY(mu_);
  size_t wal_records_ NEUTRAJ_GUARDED_BY(mu_) = 0;
  bool opened_ NEUTRAJ_GUARDED_BY(mu_) = false;
  std::string degraded_reason_ NEUTRAJ_GUARDED_BY(mu_);
  std::atomic<bool> degraded_{false};

  // Registry-owned; re-resolved by AttachMetrics.
  obs::ConcurrentHistogram* append_us_ = nullptr;
  obs::ConcurrentHistogram* compact_us_ = nullptr;
  obs::ConcurrentHistogram* recovery_us_ = nullptr;
  obs::Counter* wal_appends_ = nullptr;
  obs::Counter* wal_bytes_ = nullptr;
  obs::Counter* compactions_ = nullptr;
  obs::Counter* recovered_records_ = nullptr;
  obs::Counter* replay_skipped_ = nullptr;
  obs::Counter* tail_truncations_ = nullptr;
  obs::Gauge* degraded_gauge_ = nullptr;
  obs::Gauge* live_wal_records_ = nullptr;
};

}  // namespace neutraj::store

#endif  // NEUTRAJ_STORE_DURABLE_STORE_H_
