#include "store/file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "common/string_util.h"

namespace neutraj::store {

namespace {

// The only sanctioned raw-syscall call sites in src/store (lint.sh rule 6):
// every return value below is checked and converted to StoreError.

class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void Append(const std::string& bytes) override {
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::write(fd_, bytes.data() + written, bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw StoreError("write failed on " + path_ + ": " +
                         ErrnoMessage(errno));
      }
      written += static_cast<size_t>(n);
    }
  }

  void Sync() override {
    if (::fsync(fd_) != 0) {
      throw StoreError("fsync failed on " + path_ + ": " +
                       ErrnoMessage(errno));
    }
  }

  void Truncate() override {
    if (::ftruncate(fd_, 0) != 0) {
      throw StoreError("ftruncate failed on " + path_ + ": " +
                       ErrnoMessage(errno));
    }
    Sync();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileFactory : public FileFactory {
 public:
  std::unique_ptr<File> OpenAppend(const std::string& path) override {
    return Open(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  std::unique_ptr<File> CreateTruncate(const std::string& path) override {
    return Open(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  void Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      throw StoreError("rename " + from + " -> " + to + " failed: " +
                       ErrnoMessage(errno));
    }
  }

  void SyncDirectory(const std::string& dir) override {
    const std::string d = dir.empty() ? "." : dir;
    const int fd = ::open(d.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      throw StoreError("cannot open directory " + d + " for sync: " +
                       ErrnoMessage(errno));
    }
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) {
      throw StoreError("directory fsync failed on " + d + ": " +
                       ErrnoMessage(err));
    }
  }

 private:
  static std::unique_ptr<File> Open(const std::string& path, int flags) {
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      throw StoreError("cannot open " + path + ": " + ErrnoMessage(errno));
    }
    return std::make_unique<PosixFile>(fd, path);
  }
};

}  // namespace

FileFactory& FileFactory::Posix() {
  static PosixFileFactory factory;
  return factory;
}

}  // namespace neutraj::store
