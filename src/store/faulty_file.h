// Deterministic fault injection for the durability layer.
//
// FaultyFileFactory wraps another FileFactory and counts every mutating
// I/O operation (write, sync, truncate, rename) across all files it has
// opened. At the Nth operation it triggers the configured fault:
//
//   kFailOp     — the operation throws StoreError without touching the
//                 underlying file, and every later operation fails too
//                 (a dead log device). The store reacts by degrading to
//                 read-only mode.
//   kCrash      — the operation throws SimulatedCrash without touching
//                 the file. Everything persisted before the crash point
//                 stays on disk, exactly like a SIGKILL between syscalls.
//   kTornCrash  — for a write, the first half of the bytes reach the
//                 underlying file before SimulatedCrash is thrown — a torn
//                 record, like a kill mid-write or a partial sector flush.
//                 For non-write operations this behaves like kCrash.
//
// Sync is counted as an operation but not forwarded: the harness re-reads
// the files from the same process, so real fsyncs would only slow the
// kill-grid down without changing what recovery can observe.

#ifndef NEUTRAJ_STORE_FAULTY_FILE_H_
#define NEUTRAJ_STORE_FAULTY_FILE_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <string>

#include "store/file.h"

namespace neutraj::store {

/// Thrown at an injected crash point. Deliberately NOT derived from
/// StoreError: a real crash gives the code under test no chance to react,
/// so nothing in src/store may catch and absorb it.
class SimulatedCrash : public std::exception {
 public:
  const char* what() const noexcept override { return "simulated crash"; }
};

enum class FaultAction {
  kFailOp,     ///< Throw StoreError at (and after) the trigger op.
  kCrash,      ///< Throw SimulatedCrash at the trigger op.
  kTornCrash,  ///< Half-write, then throw SimulatedCrash.
};

/// Shared fault schedule. `fault_at_op` is 1-based: the Nth counted
/// operation triggers the fault; SIZE_MAX (default) never triggers.
struct FaultPlan {
  size_t fault_at_op = std::numeric_limits<size_t>::max();
  FaultAction action = FaultAction::kCrash;
  size_t ops_seen = 0;  ///< Updated by the factory; read by tests.
};

/// FileFactory decorator that applies a FaultPlan to every file it opens.
/// `plan` and `base` must outlive the factory and all files created by it.
class FaultyFileFactory : public FileFactory {
 public:
  FaultyFileFactory(FileFactory* base, FaultPlan* plan);

  std::unique_ptr<File> OpenAppend(const std::string& path) override;
  std::unique_ptr<File> CreateTruncate(const std::string& path) override;
  void Rename(const std::string& from, const std::string& to) override;
  void SyncDirectory(const std::string& dir) override;

  /// Counts one operation; throws per the plan when the trigger is hit.
  /// Exposed for FaultyFile; not part of the FileFactory interface.
  void CountOp(const char* what);

  /// True once the trigger operation has been reached.
  bool triggered() const { return plan_->ops_seen >= plan_->fault_at_op; }

  FaultPlan* plan() { return plan_; }

 private:
  FileFactory* base_;
  FaultPlan* plan_;
};

}  // namespace neutraj::store

#endif  // NEUTRAJ_STORE_FAULTY_FILE_H_
