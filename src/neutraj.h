// Umbrella header for the NeuTraj C++ library.
//
// Quickstart:
//
//   #include "neutraj.h"
//
//   neutraj::TrajectoryDataset db =
//       neutraj::GeneratePortoLike(neutraj::PortoLikeConfig());
//   neutraj::DatasetSplit split = neutraj::SplitDataset(db);
//
//   neutraj::NeuTrajConfig cfg = neutraj::NeuTrajConfig::NeuTraj();
//   cfg.measure = neutraj::Measure::kFrechet;
//   neutraj::DistanceMatrix d =
//       neutraj::ComputePairwiseDistances(split.seeds, cfg.measure);
//   neutraj::Grid grid(db.region, /*cell_size=*/50.0);
//   neutraj::Trainer trainer(cfg, grid, split.seeds, d);
//   trainer.Train();
//   neutraj::NeuTrajModel model = trainer.TakeModel();
//
//   double s = model.Similarity(t1, t2);   // O(|t1| + |t2|)

#ifndef NEUTRAJ_NEUTRAJ_H_
#define NEUTRAJ_NEUTRAJ_H_

#include "approx/approx_registry.h"
#include "approx/fast_dtw.h"
#include "approx/frechet_approx.h"
#include "approx/grid_snap.h"
#include "approx/hausdorff_embed.h"
#include "cluster/dbscan.h"
#include "cluster/metrics.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/string_util.h"
#include "core/config.h"
#include "core/embedding_db.h"
#include "core/loss.h"
#include "core/model.h"
#include "core/sampler.h"
#include "core/search.h"
#include "core/similarity.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/road_network.h"
#include "distance/measures.h"
#include "distance/pairwise.h"
#include "eval/metrics.h"
#include "eval/model_cache.h"
#include "eval/protocol.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "geo/preprocess.h"
#include "geo/traj_io.h"
#include "geo/trajectory.h"
#include "index/frechet_lsh.h"
#include "index/inverted_grid.h"
#include "index/rtree.h"
#include "index/vp_tree.h"
#include "obs/flight_recorder.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "retrieval/backend.h"
#include "retrieval/ivf_index.h"
#include "retrieval/kernels.h"
#include "retrieval/quantized.h"
#include "retrieval/sharded_db.h"
#include "serve/client.h"
#include "serve/micro_batcher.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/stats.h"
#include "store/durable_store.h"
#include "store/wal.h"

#endif  // NEUTRAJ_NEUTRAJ_H_
