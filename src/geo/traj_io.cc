#include "geo/traj_io.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/file_util.h"
#include "common/string_util.h"

namespace neutraj {

std::string SerializeTrajectories(const std::vector<Trajectory>& trajs) {
  std::ostringstream out;
  char buf[64];
  for (const Trajectory& t : trajs) {
    for (size_t i = 0; i < t.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.6f,%.6f", t[i].x, t[i].y);
      if (i > 0) out << ';';
      out << buf;
    }
    out << '\n';
  }
  return out.str();
}

std::vector<Trajectory> ParseTrajectories(const std::string& text) {
  std::vector<Trajectory> trajs;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = Trim(line);
    if (line.empty()) continue;
    Trajectory t;
    for (const std::string& pair : Split(line, ';')) {
      const auto fields = Split(pair, ',');
      if (fields.size() != 2) {
        throw std::runtime_error("ParseTrajectories: bad point on line " +
                                 std::to_string(line_no));
      }
      double x = 0.0, y = 0.0;
      try {
        x = std::stod(fields[0]);
        y = std::stod(fields[1]);
      } catch (const std::exception&) {
        throw std::runtime_error("ParseTrajectories: bad number on line " +
                                 std::to_string(line_no));
      }
      // std::stod happily parses "nan" and "inf"; such coordinates poison
      // every downstream distance, so reject them here with a location.
      if (!std::isfinite(x) || !std::isfinite(y)) {
        throw std::runtime_error(
            "ParseTrajectories: non-finite coordinate on line " +
            std::to_string(line_no));
      }
      t.Append(Point(x, y));
    }
    trajs.push_back(std::move(t));
  }
  return trajs;
}

void SaveTrajectories(const std::string& path,
                      const std::vector<Trajectory>& trajs) {
  WriteFileAtomic(path, SerializeTrajectories(trajs));
}

std::vector<Trajectory> LoadTrajectories(const std::string& path) {
  return ParseTrajectories(ReadFile(path));
}

}  // namespace neutraj
