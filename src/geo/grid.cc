#include "geo/grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neutraj {

Grid::Grid(const BoundingBox& region, double cell_size) : region_(region) {
  if (region.IsEmpty()) throw std::invalid_argument("Grid: empty region");
  if (cell_size <= 0.0) throw std::invalid_argument("Grid: cell_size <= 0");
  num_cols_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(region.Width() / cell_size)));
  num_rows_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(region.Height() / cell_size)));
  cell_w_ = region.Width() > 0 ? region.Width() / num_cols_ : cell_size;
  cell_h_ = region.Height() > 0 ? region.Height() / num_rows_ : cell_size;
}

Grid::Grid(const BoundingBox& region, int32_t num_cols, int32_t num_rows)
    : region_(region), num_cols_(num_cols), num_rows_(num_rows) {
  if (region.IsEmpty()) throw std::invalid_argument("Grid: empty region");
  if (num_cols <= 0 || num_rows <= 0) {
    throw std::invalid_argument("Grid: non-positive cell counts");
  }
  cell_w_ = region.Width() > 0 ? region.Width() / num_cols_ : 1.0;
  cell_h_ = region.Height() > 0 ? region.Height() / num_rows_ : 1.0;
}

GridCell Grid::CellOf(const Point& p) const {
  auto clamp = [](int64_t v, int64_t hi) {
    return static_cast<int32_t>(std::clamp<int64_t>(v, 0, hi));
  };
  const int64_t px = static_cast<int64_t>((p.x - region_.min_x) / cell_w_);
  const int64_t qy = static_cast<int64_t>((p.y - region_.min_y) / cell_h_);
  return GridCell{clamp(px, num_cols_ - 1), clamp(qy, num_rows_ - 1)};
}

Point Grid::CellCenter(const GridCell& c) const {
  return Point(region_.min_x + (c.px + 0.5) * cell_w_,
               region_.min_y + (c.qy + 0.5) * cell_h_);
}

GridSequence Grid::Discretize(const Trajectory& t) const {
  GridSequence seq;
  seq.reserve(t.size());
  for (const Point& p : t) seq.push_back(CellOf(p));
  return seq;
}

Point Grid::Normalize(const Point& p) const {
  const double w = region_.Width() > 0 ? region_.Width() : 1.0;
  const double h = region_.Height() > 0 ? region_.Height() : 1.0;
  return Point((p.x - region_.min_x) / w, (p.y - region_.min_y) / h);
}

std::vector<GridCell> Grid::ScanWindow(const GridCell& c, int32_t w) const {
  std::vector<GridCell> cells;
  ScanWindowInto(c, w, &cells);
  return cells;
}

void Grid::ScanWindowInto(const GridCell& c, int32_t w,
                          std::vector<GridCell>* out) const {
  const int32_t side = 2 * w + 1;
  out->clear();
  out->reserve(static_cast<size_t>(side) * side);
  for (int32_t dy = -w; dy <= w; ++dy) {
    for (int32_t dx = -w; dx <= w; ++dx) {
      GridCell g{std::clamp(c.px + dx, 0, num_cols_ - 1),
                 std::clamp(c.qy + dy, 0, num_rows_ - 1)};
      out->push_back(g);
    }
  }
}

}  // namespace neutraj
