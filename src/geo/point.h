// 2-D point primitives.
//
// The paper works on two-dimensional trajectories (time ignored); all
// coordinates in this library are planar doubles. When simulating city-scale
// data we interpret one coordinate unit as one meter, matching the paper's
// reporting of distortions in meters.

#ifndef NEUTRAJ_GEO_POINT_H_
#define NEUTRAJ_GEO_POINT_H_

#include <cmath>

namespace neutraj {

/// A planar point (x, y) in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared Euclidean distance between two points.
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between two points.
inline double EuclideanDistance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace neutraj

#endif  // NEUTRAJ_GEO_POINT_H_
