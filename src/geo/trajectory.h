// Trajectory container and basic geometric summaries.

#ifndef NEUTRAJ_GEO_TRAJECTORY_H_
#define NEUTRAJ_GEO_TRAJECTORY_H_

#include <cstddef>
#include <vector>

#include "geo/point.h"

namespace neutraj {

/// Axis-aligned bounding box.
struct BoundingBox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  /// An "empty" box that any Extend() call will snap onto.
  static BoundingBox Empty();

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  /// Grows the box to include `p`.
  void Extend(const Point& p);

  /// Grows the box to include another box.
  void Extend(const BoundingBox& other);

  /// Grows the box by `margin` on every side.
  BoundingBox Inflated(double margin) const;

  bool Contains(const Point& p) const;
  bool Intersects(const BoundingBox& other) const;

  /// Minimum distance from `p` to the box (0 if inside).
  double MinDistance(const Point& p) const;

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }
  Point Center() const { return Point((min_x + max_x) / 2, (min_y + max_y) / 2); }
};

/// A trajectory: an ordered polyline of 2-D sample points.
///
/// Thin wrapper over std::vector<Point> adding geometric summaries used by
/// the distance measures and spatial indexes.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<Point> points) : points_(std::move(points)) {}

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Point& operator[](size_t i) const { return points_[i]; }
  Point& operator[](size_t i) { return points_[i]; }
  const std::vector<Point>& points() const { return points_; }

  void Append(const Point& p) { points_.push_back(p); }
  void Clear() { points_.clear(); }

  auto begin() const { return points_.begin(); }
  auto end() const { return points_.end(); }

  /// Axis-aligned bounding box of all points (Empty() if no points).
  BoundingBox Bounds() const;

  /// Total polyline length (sum of segment lengths).
  double PathLength() const;

  /// Arithmetic mean of the points; undefined when empty.
  Point Centroid() const;

  /// Returns a copy downsampled to at most `max_points` points, always
  /// keeping the first and last point. No-op copy if already short enough.
  Trajectory Downsampled(size_t max_points) const;

  friend bool operator==(const Trajectory& a, const Trajectory& b) {
    return a.points_ == b.points_;
  }

 private:
  std::vector<Point> points_;
};

}  // namespace neutraj

#endif  // NEUTRAJ_GEO_TRAJECTORY_H_
