// Trajectory corpus I/O in a simple line-based CSV format.
//
// Format: one trajectory per line, `x1,y1;x2,y2;...` — human-diffable and
// sufficient for the corpus sizes this library targets.

#ifndef NEUTRAJ_GEO_TRAJ_IO_H_
#define NEUTRAJ_GEO_TRAJ_IO_H_

#include <string>
#include <vector>

#include "geo/trajectory.h"

namespace neutraj {

/// Serializes a corpus to the line-based CSV format.
std::string SerializeTrajectories(const std::vector<Trajectory>& trajs);

/// Parses a corpus from the line-based CSV format.
/// Throws std::runtime_error on malformed input.
std::vector<Trajectory> ParseTrajectories(const std::string& text);

/// Convenience wrappers reading/writing a file.
void SaveTrajectories(const std::string& path, const std::vector<Trajectory>& trajs);
std::vector<Trajectory> LoadTrajectories(const std::string& path);

}  // namespace neutraj

#endif  // NEUTRAJ_GEO_TRAJ_IO_H_
