// Trajectory preprocessing utilities: simplification, resampling and
// smoothing. Standard tools of trajectory pipelines — used here to prepare
// corpora (the paper's datasets are cleaned similarly) and as alternative
// sketch builders for the approximate baselines.

#ifndef NEUTRAJ_GEO_PREPROCESS_H_
#define NEUTRAJ_GEO_PREPROCESS_H_

#include <cstddef>
#include <vector>

#include "geo/trajectory.h"

namespace neutraj {

/// Corpus-ingestion guard: returns `trajs` with empty trajectories removed.
/// The encoder (rightly) throws on an empty trajectory; dropping them at
/// load time turns a mid-training crash into a skipped input. If
/// `num_dropped` is non-null it receives the number of removed entries.
std::vector<Trajectory> DropEmptyTrajectories(std::vector<Trajectory> trajs,
                                              size_t* num_dropped = nullptr);

/// Distance from point `p` to the segment [a, b].
double PointToSegmentDistance(const Point& p, const Point& a, const Point& b);

/// Douglas–Peucker polyline simplification: keeps the subset of points such
/// that the dropped ones are within `tolerance` of the simplified polyline.
/// Endpoints are always kept. Throws std::invalid_argument on tolerance < 0.
Trajectory DouglasPeucker(const Trajectory& t, double tolerance);

/// Resamples the polyline at (approximately) uniform arc-length `spacing`,
/// by linear interpolation; the first and last points are preserved.
/// Throws std::invalid_argument on spacing <= 0 or an empty input.
Trajectory ResampleUniform(const Trajectory& t, double spacing);

/// Centered moving-average smoothing with window half-width `w` points
/// (window size 2w+1, truncated at the ends). w = 0 is a copy.
Trajectory MovingAverageSmooth(const Trajectory& t, size_t w);

}  // namespace neutraj

#endif  // NEUTRAJ_GEO_PREPROCESS_H_
