#include "geo/preprocess.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neutraj {

std::vector<Trajectory> DropEmptyTrajectories(std::vector<Trajectory> trajs,
                                              size_t* num_dropped) {
  const size_t before = trajs.size();
  trajs.erase(std::remove_if(trajs.begin(), trajs.end(),
                             [](const Trajectory& t) { return t.empty(); }),
              trajs.end());
  if (num_dropped != nullptr) *num_dropped = before - trajs.size();
  return trajs;
}

double PointToSegmentDistance(const Point& p, const Point& a, const Point& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 <= 0.0) return EuclideanDistance(p, a);
  // Projection parameter clamped to the segment.
  double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return EuclideanDistance(p, Point(a.x + t * dx, a.y + t * dy));
}

namespace {

void DouglasPeuckerRecurse(const Trajectory& t, size_t lo, size_t hi,
                           double tolerance, std::vector<char>* keep) {
  if (hi <= lo + 1) return;
  double max_d = -1.0;
  size_t max_i = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = PointToSegmentDistance(t[i], t[lo], t[hi]);
    if (d > max_d) {
      max_d = d;
      max_i = i;
    }
  }
  if (max_d > tolerance) {
    (*keep)[max_i] = 1;
    DouglasPeuckerRecurse(t, lo, max_i, tolerance, keep);
    DouglasPeuckerRecurse(t, max_i, hi, tolerance, keep);
  }
}

}  // namespace

Trajectory DouglasPeucker(const Trajectory& t, double tolerance) {
  if (tolerance < 0.0) throw std::invalid_argument("DouglasPeucker: tolerance < 0");
  if (t.size() <= 2) return t;
  std::vector<char> keep(t.size(), 0);
  keep.front() = 1;
  keep.back() = 1;
  DouglasPeuckerRecurse(t, 0, t.size() - 1, tolerance, &keep);
  Trajectory out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (keep[i]) out.Append(t[i]);
  }
  return out;
}

Trajectory ResampleUniform(const Trajectory& t, double spacing) {
  if (spacing <= 0.0) throw std::invalid_argument("ResampleUniform: spacing <= 0");
  if (t.empty()) throw std::invalid_argument("ResampleUniform: empty input");
  Trajectory out;
  out.Append(t[0]);
  if (t.size() == 1) return out;
  double carry = 0.0;  // Arc length already covered toward the next sample.
  for (size_t i = 1; i < t.size(); ++i) {
    const Point& a = t[i - 1];
    const Point& b = t[i];
    const double seg = EuclideanDistance(a, b);
    if (seg <= 0.0) continue;
    double along = spacing - carry;
    while (along < seg) {
      const double frac = along / seg;
      out.Append(Point(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)));
      along += spacing;
    }
    carry = seg - (along - spacing);
  }
  // Always keep the final point (unless it coincides with the last sample).
  const Point& last = t[t.size() - 1];
  if (!(out[out.size() - 1] == last)) out.Append(last);
  return out;
}

Trajectory MovingAverageSmooth(const Trajectory& t, size_t w) {
  if (w == 0 || t.size() <= 2) return t;
  Trajectory out;
  const int64_t n = static_cast<int64_t>(t.size());
  const int64_t hw = static_cast<int64_t>(w);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = std::max<int64_t>(0, i - hw);
    const int64_t hi = std::min<int64_t>(n - 1, i + hw);
    Point mean;
    for (int64_t k = lo; k <= hi; ++k) {
      mean.x += t[static_cast<size_t>(k)].x;
      mean.y += t[static_cast<size_t>(k)].y;
    }
    const double count = static_cast<double>(hi - lo + 1);
    out.Append(Point(mean.x / count, mean.y / count));
  }
  return out;
}

}  // namespace neutraj
