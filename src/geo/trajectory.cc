#include "geo/trajectory.h"

#include <algorithm>
#include <limits>

namespace neutraj {

BoundingBox BoundingBox::Empty() {
  BoundingBox b;
  b.min_x = b.min_y = std::numeric_limits<double>::infinity();
  b.max_x = b.max_y = -std::numeric_limits<double>::infinity();
  return b;
}

void BoundingBox::Extend(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void BoundingBox::Extend(const BoundingBox& other) {
  if (other.IsEmpty()) return;
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

BoundingBox BoundingBox::Inflated(double margin) const {
  BoundingBox b = *this;
  b.min_x -= margin;
  b.min_y -= margin;
  b.max_x += margin;
  b.max_y += margin;
  return b;
}

bool BoundingBox::Contains(const Point& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  return !(other.min_x > max_x || other.max_x < min_x || other.min_y > max_y ||
           other.max_y < min_y);
}

double BoundingBox::MinDistance(const Point& p) const {
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

BoundingBox Trajectory::Bounds() const {
  BoundingBox b = BoundingBox::Empty();
  for (const Point& p : points_) b.Extend(p);
  return b;
}

double Trajectory::PathLength() const {
  double total = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    total += EuclideanDistance(points_[i - 1], points_[i]);
  }
  return total;
}

Point Trajectory::Centroid() const {
  Point c;
  if (points_.empty()) return c;
  for (const Point& p : points_) {
    c.x += p.x;
    c.y += p.y;
  }
  c.x /= static_cast<double>(points_.size());
  c.y /= static_cast<double>(points_.size());
  return c;
}

Trajectory Trajectory::Downsampled(size_t max_points) const {
  if (max_points < 2 || points_.size() <= max_points) return *this;
  std::vector<Point> out;
  out.reserve(max_points);
  const double step = static_cast<double>(points_.size() - 1) /
                      static_cast<double>(max_points - 1);
  for (size_t i = 0; i < max_points; ++i) {
    size_t idx = static_cast<size_t>(std::llround(step * static_cast<double>(i)));
    idx = std::min(idx, points_.size() - 1);
    out.push_back(points_[idx]);
  }
  return Trajectory(std::move(out));
}

}  // namespace neutraj
