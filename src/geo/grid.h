// Grid discretization of the plane.
//
// The SAM module stores one embedding per grid cell; the paper uses 50m x 50m
// cells over a city's center area. `Grid` maps continuous coordinates to
// integer cells and provides the scan window used by the spatial attention
// reader, as well as normalized coordinates used as RNN inputs.

#ifndef NEUTRAJ_GEO_GRID_H_
#define NEUTRAJ_GEO_GRID_H_

#include <cstdint>
#include <vector>

#include "geo/trajectory.h"

namespace neutraj {

/// Integer grid cell coordinates (column px along x, row qy along y).
struct GridCell {
  int32_t px = 0;
  int32_t qy = 0;

  friend bool operator==(const GridCell& a, const GridCell& b) {
    return a.px == b.px && a.qy == b.qy;
  }
};

/// A trajectory mapped to grid space: one cell index per sample point.
using GridSequence = std::vector<GridCell>;

/// Uniform P x Q grid over a bounding region.
///
/// Points outside the region are clamped to the border cells, mirroring the
/// paper's preprocessing that restricts trajectories to the city center.
class Grid {
 public:
  /// Builds a grid of `cell_size`-sized cells covering `region`.
  Grid(const BoundingBox& region, double cell_size);

  /// Builds a grid with explicit cell counts covering `region`.
  Grid(const BoundingBox& region, int32_t num_cols, int32_t num_rows);

  int32_t num_cols() const { return num_cols_; }  ///< P: cells along x.
  int32_t num_rows() const { return num_rows_; }  ///< Q: cells along y.
  const BoundingBox& region() const { return region_; }
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }

  /// Maps a point to its (clamped) grid cell.
  GridCell CellOf(const Point& p) const;

  /// Center coordinates of a cell.
  Point CellCenter(const GridCell& c) const;

  /// Flattened index of a cell in row-major order: qy * num_cols + px.
  int64_t FlatIndex(const GridCell& c) const {
    return static_cast<int64_t>(c.qy) * num_cols_ + c.px;
  }

  int64_t NumCells() const {
    return static_cast<int64_t>(num_cols_) * num_rows_;
  }

  /// Maps every point of a trajectory to a grid cell.
  GridSequence Discretize(const Trajectory& t) const;

  /// Normalizes a point into [0,1]^2 relative to the grid region; used as
  /// the coordinate input X_t^c of the RNN so training is scale-free.
  Point Normalize(const Point& p) const;

  /// Enumerates the (2w+1)^2 cells of the scan window centered at `c`,
  /// clamped to the grid. Cells are listed row-major; cells that fall
  /// outside the grid are clamped to the border (duplicates possible, as a
  /// border effect of the paper's fixed-size window).
  std::vector<GridCell> ScanWindow(const GridCell& c, int32_t w) const;

  /// Allocation-free variant: fills `out` (cleared first) with the same
  /// cells as ScanWindow, reusing its capacity across calls.
  void ScanWindowInto(const GridCell& c, int32_t w,
                      std::vector<GridCell>* out) const;

 private:
  BoundingBox region_;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  int32_t num_cols_ = 1;
  int32_t num_rows_ = 1;
};

}  // namespace neutraj

#endif  // NEUTRAJ_GEO_GRID_H_
