// Exact trajectory distance measures.
//
// These are the f(.,.) functions NeuTraj learns to approximate, and also the
// "BruteForce" baseline of the paper's efficiency study. Each is the
// textbook O(n*m) algorithm:
//   - DTW:       Yi et al., ICDE'98 (dynamic time warping, L2 point cost)
//   - Fréchet:   discrete Fréchet distance (Eiter & Mannila formulation of
//                Alt & Godau's measure on sampled curves)
//   - Hausdorff: symmetric point-set Hausdorff distance
//   - ERP:       Chen & Ng, VLDB'04 (edit distance with real penalty; the
//                gap point defaults to the origin of the normalized space)

#ifndef NEUTRAJ_DISTANCE_MEASURES_H_
#define NEUTRAJ_DISTANCE_MEASURES_H_

#include <functional>
#include <string>
#include <vector>

#include "geo/trajectory.h"

namespace neutraj {

/// Trajectory distance measures. The first four are the ones evaluated in
/// the paper; EDR and LCSS are classic threshold-based measures included to
/// exercise NeuTraj's genericity claim ("accommodates any existing
/// measure") beyond the paper's selection.
enum class Measure {
  kFrechet,
  kHausdorff,
  kErp,
  kDtw,
  kEdr,   ///< Edit Distance on Real sequences (Chen et al., SIGMOD'05).
  kLcss,  ///< Longest Common Subsequence distance (Vlachos et al., ICDE'02).
};

/// Short lower-case name ("frechet", "hausdorff", "erp", "dtw").
std::string MeasureName(Measure m);

/// Parses a measure name; throws std::invalid_argument on unknown names.
Measure MeasureFromName(const std::string& name);

/// The paper's four measures, in its reporting order.
const std::vector<Measure>& AllMeasures();

/// All supported measures (the paper's four plus EDR and LCSS).
const std::vector<Measure>& ExtendedMeasures();

/// Dynamic time warping distance with Euclidean point cost.
/// Throws std::invalid_argument if either trajectory is empty.
double DtwDistance(const Trajectory& a, const Trajectory& b);

/// Discrete Fréchet distance.
/// Throws std::invalid_argument if either trajectory is empty.
double FrechetDistance(const Trajectory& a, const Trajectory& b);

/// Symmetric Hausdorff distance between the two point sets.
/// Throws std::invalid_argument if either trajectory is empty.
double HausdorffDistance(const Trajectory& a, const Trajectory& b);

/// Edit distance with real penalty; `gap` is the constant reference point g.
/// Throws std::invalid_argument if either trajectory is empty.
double ErpDistance(const Trajectory& a, const Trajectory& b,
                   const Point& gap = Point(0.0, 0.0));

/// Edit Distance on Real sequences: the minimum number of point
/// insert/delete/replace edits, where two points "match" (free) when both
/// coordinate gaps are within `epsilon`. Integer-valued, returned as double.
/// Throws std::invalid_argument on empty inputs or epsilon <= 0.
double EdrDistance(const Trajectory& a, const Trajectory& b, double epsilon);

/// LCSS distance: 1 - |LCSS(a, b)| / min(|a|, |b|), where points match when
/// both coordinate gaps are within `epsilon` (no temporal window, matching
/// the paper's shape-only setting). In [0, 1].
/// Throws std::invalid_argument on empty inputs or epsilon <= 0.
double LcssDistance(const Trajectory& a, const Trajectory& b, double epsilon);

/// Type-erased distance function over a trajectory pair.
using DistanceFn = std::function<double(const Trajectory&, const Trajectory&)>;

/// Per-measure parameters of the exact functions.
struct MeasureParams {
  Point erp_gap = Point(0.0, 0.0);  ///< ERP reference point g.
  double match_epsilon = 100.0;     ///< EDR/LCSS matching threshold (meters).
};

/// Returns the exact distance function for `m`.
DistanceFn ExactDistanceFn(Measure m, const MeasureParams& params = {});

}  // namespace neutraj

#endif  // NEUTRAJ_DISTANCE_MEASURES_H_
