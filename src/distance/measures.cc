#include "distance/measures.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/string_util.h"

namespace neutraj {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void CheckNonEmpty(const Trajectory& a, const Trajectory& b, const char* who) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty trajectory");
  }
}

}  // namespace

std::string MeasureName(Measure m) {
  switch (m) {
    case Measure::kFrechet:
      return "frechet";
    case Measure::kHausdorff:
      return "hausdorff";
    case Measure::kErp:
      return "erp";
    case Measure::kDtw:
      return "dtw";
    case Measure::kEdr:
      return "edr";
    case Measure::kLcss:
      return "lcss";
  }
  return "unknown";
}

Measure MeasureFromName(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "frechet") return Measure::kFrechet;
  if (n == "hausdorff") return Measure::kHausdorff;
  if (n == "erp") return Measure::kErp;
  if (n == "dtw") return Measure::kDtw;
  if (n == "edr") return Measure::kEdr;
  if (n == "lcss") return Measure::kLcss;
  throw std::invalid_argument("Unknown measure: " + name);
}

const std::vector<Measure>& AllMeasures() {
  static const std::vector<Measure> kAll = {
      Measure::kFrechet, Measure::kHausdorff, Measure::kErp, Measure::kDtw};
  return kAll;
}

const std::vector<Measure>& ExtendedMeasures() {
  static const std::vector<Measure> kAll = {
      Measure::kFrechet, Measure::kHausdorff, Measure::kErp,
      Measure::kDtw,     Measure::kEdr,       Measure::kLcss};
  return kAll;
}

double DtwDistance(const Trajectory& a, const Trajectory& b) {
  CheckNonEmpty(a, b, "DtwDistance");
  const size_t n = a.size();
  const size_t m = b.size();
  // Rolling single-row DP: dp[j] = cost of aligning a[0..i] with b[0..j].
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      const double cost = EuclideanDistance(a[i - 1], b[j - 1]);
      curr[j] = cost + std::min({prev[j], curr[j - 1], prev[j - 1]});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double FrechetDistance(const Trajectory& a, const Trajectory& b) {
  CheckNonEmpty(a, b, "FrechetDistance");
  const size_t n = a.size();
  const size_t m = b.size();
  // dp[j] for row i: max over the best coupling reaching (i, j).
  std::vector<double> prev(m);
  std::vector<double> curr(m);
  prev[0] = EuclideanDistance(a[0], b[0]);
  for (size_t j = 1; j < m; ++j) {
    prev[j] = std::max(prev[j - 1], EuclideanDistance(a[0], b[j]));
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = std::max(prev[0], EuclideanDistance(a[i], b[0]));
    for (size_t j = 1; j < m; ++j) {
      const double reach = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = std::max(reach, EuclideanDistance(a[i], b[j]));
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

double HausdorffDistance(const Trajectory& a, const Trajectory& b) {
  CheckNonEmpty(a, b, "HausdorffDistance");
  // Directed Hausdorff in both directions with early-break on the inner
  // minimum (classic early-abandoning scan).
  auto directed = [](const Trajectory& u, const Trajectory& v, double best) {
    double h = best;
    for (const Point& p : u) {
      double min_d2 = kInf;
      const double h2 = h * h;
      for (const Point& q : v) {
        const double d2 = SquaredDistance(p, q);
        if (d2 < min_d2) {
          min_d2 = d2;
          if (min_d2 <= h2) break;  // Cannot raise the running max.
        }
      }
      if (min_d2 > h2) h = std::sqrt(min_d2);
    }
    return h;
  };
  double h = directed(a, b, 0.0);
  h = directed(b, a, h);
  return h;
}

double ErpDistance(const Trajectory& a, const Trajectory& b, const Point& gap) {
  CheckNonEmpty(a, b, "ErpDistance");
  const size_t n = a.size();
  const size_t m = b.size();
  // Precompute gap penalties.
  std::vector<double> gap_a(n), gap_b(m);
  for (size_t i = 0; i < n; ++i) gap_a[i] = EuclideanDistance(a[i], gap);
  for (size_t j = 0; j < m; ++j) gap_b[j] = EuclideanDistance(b[j], gap);

  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  for (size_t j = 1; j <= m; ++j) prev[j] = prev[j - 1] + gap_b[j - 1];
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = prev[0] + gap_a[i - 1];
    for (size_t j = 1; j <= m; ++j) {
      const double match = prev[j - 1] + EuclideanDistance(a[i - 1], b[j - 1]);
      const double del_a = prev[j] + gap_a[i - 1];
      const double del_b = curr[j - 1] + gap_b[j - 1];
      curr[j] = std::min({match, del_a, del_b});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double EdrDistance(const Trajectory& a, const Trajectory& b, double epsilon) {
  CheckNonEmpty(a, b, "EdrDistance");
  if (epsilon <= 0.0) throw std::invalid_argument("EdrDistance: epsilon <= 0");
  const size_t n = a.size();
  const size_t m = b.size();
  auto match = [&](const Point& p, const Point& q) {
    return std::abs(p.x - q.x) <= epsilon && std::abs(p.y - q.y) <= epsilon;
  };
  std::vector<double> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      const double subcost = match(a[i - 1], b[j - 1]) ? 0.0 : 1.0;
      curr[j] = std::min({prev[j - 1] + subcost, prev[j] + 1.0, curr[j - 1] + 1.0});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double LcssDistance(const Trajectory& a, const Trajectory& b, double epsilon) {
  CheckNonEmpty(a, b, "LcssDistance");
  if (epsilon <= 0.0) throw std::invalid_argument("LcssDistance: epsilon <= 0");
  const size_t n = a.size();
  const size_t m = b.size();
  auto match = [&](const Point& p, const Point& q) {
    return std::abs(p.x - q.x) <= epsilon && std::abs(p.y - q.y) <= epsilon;
  };
  std::vector<double> prev(m + 1, 0.0), curr(m + 1, 0.0);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = 0.0;
    for (size_t j = 1; j <= m; ++j) {
      if (match(a[i - 1], b[j - 1])) {
        curr[j] = prev[j - 1] + 1.0;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  const double lcss = prev[m];
  return 1.0 - lcss / static_cast<double>(std::min(n, m));
}

DistanceFn ExactDistanceFn(Measure m, const MeasureParams& params) {
  switch (m) {
    case Measure::kFrechet:
      return [](const Trajectory& a, const Trajectory& b) {
        return FrechetDistance(a, b);
      };
    case Measure::kHausdorff:
      return [](const Trajectory& a, const Trajectory& b) {
        return HausdorffDistance(a, b);
      };
    case Measure::kErp:
      return [gap = params.erp_gap](const Trajectory& a, const Trajectory& b) {
        return ErpDistance(a, b, gap);
      };
    case Measure::kDtw:
      return [](const Trajectory& a, const Trajectory& b) {
        return DtwDistance(a, b);
      };
    case Measure::kEdr:
      return [eps = params.match_epsilon](const Trajectory& a,
                                          const Trajectory& b) {
        return EdrDistance(a, b, eps);
      };
    case Measure::kLcss:
      return [eps = params.match_epsilon](const Trajectory& a,
                                          const Trajectory& b) {
        return LcssDistance(a, b, eps);
      };
  }
  throw std::invalid_argument("ExactDistanceFn: bad measure");
}

}  // namespace neutraj
