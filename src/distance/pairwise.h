// Pair-wise distance matrix computation over a corpus.
//
// This is the seed-preparation step of NeuTraj (and the 6.5-hour bottleneck
// the paper motivates with): for N seed trajectories it computes the
// symmetric N x N matrix D of exact distances.

#ifndef NEUTRAJ_DISTANCE_PAIRWISE_H_
#define NEUTRAJ_DISTANCE_PAIRWISE_H_

#include <cstddef>
#include <vector>

#include "distance/measures.h"

namespace neutraj {

/// Dense symmetric distance matrix with zero diagonal.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(size_t n) : n_(n), data_(n * n, 0.0) {}

  size_t size() const { return n_; }

  double At(size_t i, size_t j) const { return data_[i * n_ + j]; }

  /// Sets both (i,j) and (j,i).
  void Set(size_t i, size_t j, double d) {
    data_[i * n_ + j] = d;
    data_[j * n_ + i] = d;
  }

  /// Row i as a contiguous span start (length size()).
  const double* Row(size_t i) const { return data_.data() + i * n_; }

  /// Largest entry (0 for an empty matrix).
  double Max() const;

  /// Mean of the strictly-upper-triangle entries (0 if n < 2).
  double MeanOffDiagonal() const;

 private:
  size_t n_ = 0;
  std::vector<double> data_;
};

/// Computes all pair-wise distances of `trajs` under `fn`.
/// `fn` must be symmetric; only the upper triangle is evaluated.
DistanceMatrix ComputePairwiseDistances(const std::vector<Trajectory>& trajs,
                                        const DistanceFn& fn);

/// Convenience overload using the exact function for `m`.
DistanceMatrix ComputePairwiseDistances(const std::vector<Trajectory>& trajs,
                                        Measure m);

/// Parallel variant: rows of the upper triangle are distributed over
/// `num_threads` workers. `fn` must be thread-safe (the exact measures
/// are). Results are identical to the serial driver.
DistanceMatrix ComputePairwiseDistancesParallel(
    const std::vector<Trajectory>& trajs, const DistanceFn& fn,
    size_t num_threads);

}  // namespace neutraj

#endif  // NEUTRAJ_DISTANCE_PAIRWISE_H_
