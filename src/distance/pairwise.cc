#include "distance/pairwise.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace neutraj {

double DistanceMatrix::Max() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, v);
  return m;
}

double DistanceMatrix::MeanOffDiagonal() const {
  if (n_ < 2) return 0.0;
  double total = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      total += At(i, j);
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

DistanceMatrix ComputePairwiseDistances(const std::vector<Trajectory>& trajs,
                                        const DistanceFn& fn) {
  DistanceMatrix d(trajs.size());
  for (size_t i = 0; i < trajs.size(); ++i) {
    for (size_t j = i + 1; j < trajs.size(); ++j) {
      d.Set(i, j, fn(trajs[i], trajs[j]));
    }
  }
  return d;
}

DistanceMatrix ComputePairwiseDistances(const std::vector<Trajectory>& trajs,
                                        Measure m) {
  return ComputePairwiseDistances(trajs, ExactDistanceFn(m));
}

DistanceMatrix ComputePairwiseDistancesParallel(
    const std::vector<Trajectory>& trajs, const DistanceFn& fn,
    size_t num_threads) {
  DistanceMatrix d(trajs.size());
  // One task per row; Set writes (i,j) and (j,i), which are distinct cells
  // owned by row i's task (j > i), so rows never race.
  ParallelFor(trajs.size(), num_threads, [&](size_t i) {
    for (size_t j = i + 1; j < trajs.size(); ++j) {
      d.Set(i, j, fn(trajs[i], trajs[j]));
    }
  });
  return d;
}

}  // namespace neutraj
