// IVF (inverted-file) ANN index over corpus embeddings.
//
// The exact serving scan is O(N * d) per query; at millions of rows that is
// the latency floor. This index buys back most of it with the classic IVF
// recipe: a coarse k-means quantizer partitions the corpus into `nlist`
// cells, each cell keeps a posting list of (id, int8 code), and a query
// scans only the `nprobe` cells whose centroids are nearest. Scanned
// postings are ranked by the integer quantized proxy distance
// (retrieval/quantized.h) and the best max(k, rerank) ids are surfaced as
// CANDIDATES — the caller re-ranks them with the exact float distance
// (EmbeddingDatabase::TopKOf), so every score the user sees is bit-identical
// to the exact path; only recall (which ids make the cut) is approximate.
//
// Determinism. The build is a pure function of (rows, Options): seeded
// sampling, seeded initial centroids, a fixed number of Lloyd iterations
// with ties broken toward the lower list id and empty cells keeping their
// previous centroid, and an assignment pass whose result is independent of
// the thread count. Queries are deterministic for a fixed (index, nprobe):
// centroid ranking ties break toward the lower list id and the posting scan
// ranks by exact integer arithmetic with ties toward the lower row id.
//
// Concurrency. Centroids, postings, and row count live behind a SharedMutex
// at lock_rank::kRetrieval (below the kDb corpus lock, so a caller may hold
// this index's lock into the exact re-rank). Candidates() takes the reader
// lock, Insert() the writer lock. The quantizer and options are fixed by
// Build() before the index serves traffic and are read without locking.

#ifndef NEUTRAJ_RETRIEVAL_IVF_INDEX_H_
#define NEUTRAJ_RETRIEVAL_IVF_INDEX_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/sync.h"
#include "nn/matrix.h"
#include "retrieval/quantized.h"

namespace neutraj::retrieval {

/// Coarse-quantized inverted-file index with int8-coded posting lists.
class IvfIndex {
 public:
  struct Options {
    /// Target cell count; clamped to the corpus size at build time.
    size_t nlist = 64;
    /// Rows sampled (seeded, without replacement) to train k-means.
    size_t train_sample = 16384;
    /// Lloyd iterations; fixed count, no convergence test (determinism).
    size_t kmeans_iters = 8;
    /// Seed for sampling and centroid initialization.
    uint64_t seed = 42;
    /// Cells probed when the caller passes nprobe = 0.
    size_t default_nprobe = 8;
    /// Candidates() surfaces at least this many ids (when available) so the
    /// exact re-rank has slack beyond k to fix proxy-ranking mistakes.
    size_t rerank = 64;
  };

  IvfIndex() : IvfIndex(Options{}) {}
  explicit IvfIndex(Options options) : options_(options) {}

  IvfIndex(const IvfIndex&) = delete;
  IvfIndex& operator=(const IvfIndex&) = delete;

  /// Builds the index from `rows` (typically EmbeddingDatabase::embeddings()
  /// on a quiesced database; row index == corpus id). Deterministic for a
  /// fixed (rows, Options) at every `threads` value. Throws
  /// std::invalid_argument on an empty corpus or ragged rows and
  /// std::logic_error if already built.
  void Build(const std::vector<nn::Vector>& rows, size_t threads = 1);

  bool built() const { return built_.load(std::memory_order_acquire); }

  /// Embedding width (0 before Build).
  size_t dim() const { return quantizer_.dim(); }

  /// Actual cell count after clamping (0 before Build).
  size_t nlist() const NEUTRAJ_EXCLUDES(mu_);

  /// Indexed rows (build rows + live inserts).
  size_t size() const NEUTRAJ_EXCLUDES(mu_);

  /// Adds row `id` to the cell with the nearest centroid. The id is the
  /// caller's corpus id (the serve layer passes the database insert id).
  /// Throws std::logic_error before Build and std::invalid_argument on a
  /// dimension mismatch.
  void Insert(size_t id, const nn::Vector& embedding) NEUTRAJ_EXCLUDES(mu_);

  struct CandidateSet {
    /// Candidate ids in ascending (proxy distance, id) order.
    std::vector<size_t> ids;
    /// Postings visited across the probed cells.
    size_t scanned = 0;
    /// Cells probed (min(nprobe, nlist)).
    size_t probed = 0;
  };

  /// Candidate ids for an exact re-rank: probes the `nprobe` cells nearest
  /// to `query` (0 = Options::default_nprobe; clamped to [1, nlist]) and
  /// returns the max(k, Options::rerank) best ids by the integer proxy
  /// distance. Deterministic for a fixed (index, query, k, nprobe).
  CandidateSet Candidates(const nn::Vector& query, size_t k,
                          size_t nprobe = 0) const NEUTRAJ_EXCLUDES(mu_);

  /// The trained int8 tier (immutable after Build).
  const Int8Quantizer& quantizer() const { return quantizer_; }

  const Options& options() const { return options_; }

 private:
  struct Cell {
    std::vector<size_t> ids;
    /// Flat int8 codes: posting p occupies [p * dim, (p + 1) * dim).
    std::vector<int8_t> codes;
  };

  const Options options_;
  Int8Quantizer quantizer_;  ///< Fixed by Build before serving.
  std::atomic<bool> built_{false};

  mutable SharedMutex mu_{lock_rank::kRetrieval};
  std::vector<nn::Vector> centroids_ NEUTRAJ_GUARDED_BY(mu_);
  std::vector<Cell> cells_ NEUTRAJ_GUARDED_BY(mu_);
  size_t rows_ NEUTRAJ_GUARDED_BY(mu_) = 0;
};

}  // namespace neutraj::retrieval

#endif  // NEUTRAJ_RETRIEVAL_IVF_INDEX_H_
