#include "retrieval/ivf_index.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "retrieval/kernels.h"

namespace neutraj::retrieval {

namespace {

/// Nearest centroid by exact squared L2, ties toward the lower list id
/// (the scan order makes the tie-break implicit: strict < keeps the first).
size_t NearestCentroid(const std::vector<nn::Vector>& centroids,
                       const double* row, size_t dim) {
  size_t best = 0;
  double best_dist = ExactSquaredL2(centroids[0].data(), row, dim);
  for (size_t c = 1; c < centroids.size(); ++c) {
    const double dist = ExactSquaredL2(centroids[c].data(), row, dim);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

/// Worst-first ordering for the bounded candidate heap, by (proxy, id) —
/// exact integer comparisons, so eviction order is fully deterministic.
bool ProxyWorseThan(const std::pair<int64_t, size_t>& a,
                    const std::pair<int64_t, size_t>& b) {
  if (a.first != b.first) return a.first < b.first;
  return a.second < b.second;
}

}  // namespace

void IvfIndex::Build(const std::vector<nn::Vector>& rows, size_t threads) {
  if (built()) {
    throw std::logic_error("IvfIndex::Build: index already built");
  }
  if (rows.empty()) {
    throw std::invalid_argument("IvfIndex::Build: empty corpus");
  }
  const size_t n = rows.size();
  const size_t dim = rows.front().size();
  if (dim == 0) {
    throw std::invalid_argument("IvfIndex::Build: zero-dimension rows");
  }
  for (const nn::Vector& row : rows) {
    if (row.size() != dim) {
      throw std::invalid_argument("IvfIndex::Build: ragged corpus rows");
    }
    NEUTRAJ_DCHECK_FINITE(row);
  }

  // The quantizer trains on the full corpus (one O(n * d) max pass), so no
  // build-time row ever clamps; only live inserts beyond the built range do.
  quantizer_ = Int8Quantizer::Train(rows);

  // Seeded k-means over a sample: deterministic init, fixed Lloyd
  // iterations, empty cells keep their previous centroid.
  Rng rng(options_.seed);
  std::vector<size_t> sample;
  if (n <= options_.train_sample) {
    sample.resize(n);
    for (size_t i = 0; i < n; ++i) sample[i] = i;
  } else {
    sample = rng.SampleIndices(n, options_.train_sample);
  }
  const size_t nlist = std::max<size_t>(
      1, std::min(options_.nlist, sample.size()));

  std::vector<nn::Vector> centroids;
  centroids.reserve(nlist);
  for (const size_t idx : rng.SampleIndices(sample.size(), nlist)) {
    centroids.push_back(rows[sample[idx]]);
  }
  std::vector<size_t> assign(sample.size(), 0);
  std::vector<nn::Vector> sums(nlist);
  std::vector<size_t> counts(nlist);
  for (size_t iter = 0; iter < options_.kmeans_iters; ++iter) {
    for (size_t s = 0; s < sample.size(); ++s) {
      assign[s] = NearestCentroid(centroids, rows[sample[s]].data(), dim);
    }
    for (size_t c = 0; c < nlist; ++c) {
      sums[c].assign(dim, 0.0);
      counts[c] = 0;
    }
    for (size_t s = 0; s < sample.size(); ++s) {
      const nn::Vector& row = rows[sample[s]];
      nn::Vector& sum = sums[assign[s]];
      for (size_t d = 0; d < dim; ++d) sum[d] += row[d];
      ++counts[assign[s]];
    }
    for (size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;  // Empty cell keeps its old centroid.
      for (size_t d = 0; d < dim; ++d) {
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  // Assignment pass over the full corpus. Each slot is written exactly once,
  // so the parallel chunking cannot change the result.
  std::vector<size_t> full_assign(n);
  ParallelFor(n, threads, [&](size_t i) {
    full_assign[i] = NearestCentroid(centroids, rows[i].data(), dim);
  });

  std::vector<Cell> cells(nlist);
  for (size_t c = 0; c < nlist; ++c) counts[c] = 0;
  for (size_t i = 0; i < n; ++i) ++counts[full_assign[i]];
  for (size_t c = 0; c < nlist; ++c) {
    cells[c].ids.reserve(counts[c]);
    cells[c].codes.reserve(counts[c] * dim);
  }
  for (size_t i = 0; i < n; ++i) {
    Cell& cell = cells[full_assign[i]];
    cell.ids.push_back(i);
    quantizer_.EncodeAppend(rows[i], &cell.codes);
  }

  {
    WriterLock lock(mu_);
    centroids_ = std::move(centroids);
    cells_ = std::move(cells);
    rows_ = n;
  }
  built_.store(true, std::memory_order_release);
}

size_t IvfIndex::nlist() const {
  ReaderLock lock(mu_);
  return centroids_.size();
}

size_t IvfIndex::size() const {
  ReaderLock lock(mu_);
  return rows_;
}

void IvfIndex::Insert(size_t id, const nn::Vector& embedding) {
  if (!built()) {
    throw std::logic_error("IvfIndex::Insert: index not built");
  }
  if (embedding.size() != dim()) {
    throw std::invalid_argument(
        "IvfIndex::Insert: embedding dimension " +
        std::to_string(embedding.size()) + " != index dimension " +
        std::to_string(dim()));
  }
  NEUTRAJ_DCHECK_FINITE(embedding);
  WriterLock lock(mu_);
  Cell& cell =
      cells_[NearestCentroid(centroids_, embedding.data(), embedding.size())];
  cell.ids.push_back(id);
  quantizer_.EncodeAppend(embedding, &cell.codes);
  ++rows_;
}

IvfIndex::CandidateSet IvfIndex::Candidates(const nn::Vector& query, size_t k,
                                            size_t nprobe) const {
  if (!built()) {
    throw std::logic_error("IvfIndex::Candidates: index not built");
  }
  if (query.size() != dim()) {
    throw std::invalid_argument(
        "IvfIndex::Candidates: query dimension " +
        std::to_string(query.size()) + " != index dimension " +
        std::to_string(dim()));
  }
  const std::vector<int8_t> query_code = quantizer_.Encode(query);
  const size_t target = std::max(k, options_.rerank);

  CandidateSet out;
  std::vector<std::pair<int64_t, size_t>> heap;  // Worst-first bounded heap.
  heap.reserve(target + 1);
  {
    ReaderLock lock(mu_);
    // Rank cells by exact centroid distance, ties toward the lower list id.
    const size_t probe =
        std::max<size_t>(1, std::min(nprobe == 0 ? options_.default_nprobe
                                                 : nprobe,
                                     centroids_.size()));
    std::vector<std::pair<double, size_t>> order;
    order.reserve(centroids_.size());
    for (size_t c = 0; c < centroids_.size(); ++c) {
      order.emplace_back(
          ExactSquaredL2(centroids_[c].data(), query.data(), query.size()),
          c);
    }
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<ptrdiff_t>(probe),
                      order.end());
    out.probed = probe;

    for (size_t p = 0; p < probe; ++p) {
      const Cell& cell = cells_[order[p].second];
      const size_t d = dim();
      for (size_t i = 0; i < cell.ids.size(); ++i) {
        const int64_t proxy =
            quantizer_.WeightedCodeAccum(query_code.data(),
                                         cell.codes.data() + i * d);
        const std::pair<int64_t, size_t> cand{proxy, cell.ids[i]};
        if (heap.size() < target) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end(), ProxyWorseThan);
        } else if (target > 0 && ProxyWorseThan(cand, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), ProxyWorseThan);
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end(), ProxyWorseThan);
        }
      }
      out.scanned += cell.ids.size();
    }
  }
  std::sort_heap(heap.begin(), heap.end(), ProxyWorseThan);  // Ascending.
  out.ids.reserve(heap.size());
  for (const auto& cand : heap) out.ids.push_back(cand.second);
  return out;
}

}  // namespace neutraj::retrieval
