#include "retrieval/backend.h"

#include "common/stopwatch.h"

namespace neutraj::retrieval {

SearchResult ExactBackend::TopK(const nn::Vector& query, size_t k,
                                int64_t exclude, size_t /*nprobe*/,
                                obs::RequestTrace* trace) {
  obs::StageSpan scan_span(trace, "scan");
  return db_->TopK(query, k, exclude);
}

IvfBackend::IvfBackend(const EmbeddingDatabase* db, IvfIndex::Options options,
                       obs::MetricsRegistry* registry)
    : db_(db), index_(options) {
  AttachMetrics(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global());
}

void IvfBackend::AttachMetrics(obs::MetricsRegistry* registry) {
  probe_us_ = &registry->GetHistogram("retrieval/probe_us");
  rerank_us_ = &registry->GetHistogram("retrieval/rerank_us");
  candidates_scanned_ = &registry->GetCounter("retrieval/candidates_scanned");
  lists_probed_ = &registry->GetCounter("retrieval/lists_probed");
  queries_ = &registry->GetCounter("retrieval/queries");
  proxy_top1_hits_ = &registry->GetCounter("retrieval/proxy_top1_hits");
}

void IvfBackend::Build(size_t threads) {
  index_.Build(db_->embeddings(), threads);
}

void IvfBackend::NotifyInsert(size_t id, const nn::Vector& embedding) {
  index_.Insert(id, embedding);
}

SearchResult IvfBackend::TopK(const nn::Vector& query, size_t k,
                              int64_t exclude, size_t nprobe,
                              obs::RequestTrace* trace) {
  Stopwatch probe_sw;
  obs::StageSpan probe_span(trace, "probe");
  const IvfIndex::CandidateSet candidates =
      index_.Candidates(query, k, nprobe);
  probe_span.Stop();
  probe_us_->Record(probe_sw.ElapsedMillis() * 1e3);
  candidates_scanned_->Add(candidates.scanned);
  lists_probed_->Add(candidates.probed);
  queries_->Increment();

  Stopwatch rerank_sw;
  obs::StageSpan rerank_span(trace, "rerank");
  SearchResult result = db_->TopKOf(query, candidates.ids, k, exclude);
  rerank_span.Stop();
  rerank_us_->Record(rerank_sw.ElapsedMillis() * 1e3);
  // Recall proxy: candidates.ids is ascending by proxy distance, so its
  // front is the quantized tier's best guess; count how often the exact
  // re-rank agrees.
  if (!result.ids.empty() && !candidates.ids.empty() &&
      result.ids.front() == candidates.ids.front()) {
    proxy_top1_hits_->Increment();
  }
  return result;
}

}  // namespace neutraj::retrieval
