#include "retrieval/kernels.h"

#include <atomic>
#include <cmath>
#include <stdexcept>

namespace neutraj::retrieval {

double ExactSquaredL2(const double* a, const double* b, size_t dim) {
  // Same accumulation order as nn::L2Distance: one left-to-right sum of
  // squared diffs. Do not "optimize" into blocked partial sums — the exact
  // tier's contract is bit-identity with the core scan.
  double acc = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

double ExactL2(const double* a, const double* b, size_t dim) {
  return std::sqrt(ExactSquaredL2(a, b, dim));
}

namespace internal {

int64_t WeightedCodeSquaredL2Portable(const int8_t* a, const int8_t* b,
                                      const int32_t* w, size_t dim) {
  // 4-way unrolled so the compiler's auto-vectorizer has independent
  // accumulation chains; every product is exact integer math, so the
  // unroll cannot change the result.
  int64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const int32_t d0 = static_cast<int32_t>(a[d]) - b[d];
    const int32_t d1 = static_cast<int32_t>(a[d + 1]) - b[d + 1];
    const int32_t d2 = static_cast<int32_t>(a[d + 2]) - b[d + 2];
    const int32_t d3 = static_cast<int32_t>(a[d + 3]) - b[d + 3];
    acc0 += w[d] * (d0 * d0);
    acc1 += w[d + 1] * (d1 * d1);
    acc2 += w[d + 2] * (d2 * d2);
    acc3 += w[d + 3] * (d3 * d3);
  }
  int64_t acc = acc0 + acc1 + acc2 + acc3;
  for (; d < dim; ++d) {
    const int32_t diff = static_cast<int32_t>(a[d]) - b[d];
    acc += w[d] * (diff * diff);
  }
  return acc;
}

bool QuantizedAvx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  return QuantizedAvx2CompiledIn() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace internal

namespace {

using WeightedFn = int64_t (*)(const int8_t*, const int8_t*, const int32_t*,
                               size_t);

/// The dispatch slot. Null until first use; resolved lazily (not at static
/// init) so SetQuantizedKernel in a test harness and the cpuid probe
/// cannot race static construction order.
std::atomic<WeightedFn> g_weighted{nullptr};

WeightedFn ResolveAuto() {
  return internal::QuantizedAvx2Available()
             ? &internal::WeightedCodeSquaredL2Avx2
             : &internal::WeightedCodeSquaredL2Portable;
}

WeightedFn ActiveWeighted() {
  WeightedFn fn = g_weighted.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    fn = ResolveAuto();
    g_weighted.store(fn, std::memory_order_relaxed);
  }
  return fn;
}

}  // namespace

void SetQuantizedKernel(QuantizedKernel choice) {
  switch (choice) {
    case QuantizedKernel::kAuto:
      g_weighted.store(ResolveAuto(), std::memory_order_relaxed);
      return;
    case QuantizedKernel::kPortable:
      g_weighted.store(&internal::WeightedCodeSquaredL2Portable,
                       std::memory_order_relaxed);
      return;
    case QuantizedKernel::kAvx2:
      if (!internal::QuantizedAvx2Available()) {
        throw std::runtime_error(
            "SetQuantizedKernel: AVX2 kernel unavailable on this machine");
      }
      g_weighted.store(&internal::WeightedCodeSquaredL2Avx2,
                       std::memory_order_relaxed);
      return;
  }
}

int64_t WeightedCodeSquaredL2(const int8_t* a, const int8_t* b,
                              const int32_t* w, size_t dim) {
  return ActiveWeighted()(a, b, w, dim);
}

int64_t CodeSquaredL2(const int8_t* a, const int8_t* b, size_t dim) {
  int64_t acc = 0;
  for (size_t d = 0; d < dim; ++d) {
    const int32_t diff = static_cast<int32_t>(a[d]) - b[d];
    acc += diff * diff;
  }
  return acc;
}

const char* QuantizedKernelName() {
  return ActiveWeighted() == &internal::WeightedCodeSquaredL2Avx2 ? "avx2"
                                                                  : "portable";
}

}  // namespace neutraj::retrieval
