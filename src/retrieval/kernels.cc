#include "retrieval/kernels.h"

#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace neutraj::retrieval {

double ExactSquaredL2(const double* a, const double* b, size_t dim) {
  // Same accumulation order as nn::L2Distance: one left-to-right sum of
  // squared diffs. Do not "optimize" into blocked partial sums — the exact
  // tier's contract is bit-identity with the core scan.
  double acc = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

double ExactL2(const double* a, const double* b, size_t dim) {
  return std::sqrt(ExactSquaredL2(a, b, dim));
}

namespace {

/// Portable integer kernel: 4-way unrolled so the compiler's auto-vectorizer
/// has independent accumulation chains; every product is exact integer math,
/// so the unroll cannot change the result.
[[maybe_unused]] int64_t WeightedPortable(const int8_t* a, const int8_t* b,
                                          const int32_t* w, size_t dim) {
  int64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const int32_t d0 = static_cast<int32_t>(a[d]) - b[d];
    const int32_t d1 = static_cast<int32_t>(a[d + 1]) - b[d + 1];
    const int32_t d2 = static_cast<int32_t>(a[d + 2]) - b[d + 2];
    const int32_t d3 = static_cast<int32_t>(a[d + 3]) - b[d + 3];
    acc0 += w[d] * (d0 * d0);
    acc1 += w[d + 1] * (d1 * d1);
    acc2 += w[d + 2] * (d2 * d2);
    acc3 += w[d + 3] * (d3 * d3);
  }
  int64_t acc = acc0 + acc1 + acc2 + acc3;
  for (; d < dim; ++d) {
    const int32_t diff = static_cast<int32_t>(a[d]) - b[d];
    acc += w[d] * (diff * diff);
  }
  return acc;
}

#if defined(__AVX2__)
/// AVX2 kernel: widen int8 lanes to i32, diff², multiply by the i32 weights,
/// accumulate in four i64 lanes. Integer end to end — bit-identical to the
/// portable kernel by construction.
int64_t WeightedAvx2(const int8_t* a, const int8_t* b, const int32_t* w,
                     size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m128i a8 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(a + d));
    const __m128i b8 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(b + d));
    const __m256i ai = _mm256_cvtepi8_epi32(a8);
    const __m256i bi = _mm256_cvtepi8_epi32(b8);
    const __m256i diff = _mm256_sub_epi32(ai, bi);
    const __m256i sq = _mm256_mullo_epi32(diff, diff);
    const __m256i wi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w + d));
    const __m256i prod = _mm256_mullo_epi32(sq, wi);
    // Widen the 8 i32 products to i64 in two halves and accumulate.
    const __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod));
    const __m256i hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(prod, 1));
    acc = _mm256_add_epi64(acc, _mm256_add_epi64(lo, hi));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; d < dim; ++d) {
    const int32_t diff = static_cast<int32_t>(a[d]) - b[d];
    total += w[d] * (diff * diff);
  }
  return total;
}
#endif  // __AVX2__

}  // namespace

int64_t WeightedCodeSquaredL2(const int8_t* a, const int8_t* b,
                              const int32_t* w, size_t dim) {
#if defined(__AVX2__)
  return WeightedAvx2(a, b, w, dim);
#else
  return WeightedPortable(a, b, w, dim);
#endif
}

int64_t CodeSquaredL2(const int8_t* a, const int8_t* b, size_t dim) {
  int64_t acc = 0;
  for (size_t d = 0; d < dim; ++d) {
    const int32_t diff = static_cast<int32_t>(a[d]) - b[d];
    acc += diff * diff;
  }
  return acc;
}

const char* QuantizedKernelName() {
#if defined(__AVX2__)
  return "avx2";
#else
  return "portable";
#endif
}

}  // namespace neutraj::retrieval
