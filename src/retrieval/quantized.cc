#include "retrieval/quantized.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "retrieval/kernels.h"

namespace neutraj::retrieval {

namespace {

/// Scales below this are floored so a constant-zero dimension still has a
/// well-defined (if useless) code and no division by zero.
constexpr double kMinScale = 1e-12;

}  // namespace

Int8Quantizer Int8Quantizer::Train(const std::vector<nn::Vector>& sample) {
  if (sample.empty()) {
    throw std::invalid_argument("Int8Quantizer::Train: empty sample");
  }
  const size_t dim = sample.front().size();
  if (dim == 0) {
    throw std::invalid_argument("Int8Quantizer::Train: zero-dimension rows");
  }
  std::vector<double> max_abs(dim, 0.0);
  for (const nn::Vector& v : sample) {
    if (v.size() != dim) {
      throw std::invalid_argument("Int8Quantizer::Train: ragged sample");
    }
    NEUTRAJ_DCHECK_FINITE(v);
    for (size_t d = 0; d < dim; ++d) {
      max_abs[d] = std::max(max_abs[d], std::fabs(v[d]));
    }
  }

  Int8Quantizer q;
  q.scales_.resize(dim);
  q.weights_.resize(dim);
  double s_max = kMinScale;
  for (size_t d = 0; d < dim; ++d) {
    q.scales_[d] = std::max(max_abs[d], kMinScale) / 127.0;
    s_max = std::max(s_max, q.scales_[d]);
  }
  for (size_t d = 0; d < dim; ++d) {
    const double ratio = q.scales_[d] / s_max;
    q.weights_[d] = std::max(
        1, static_cast<int32_t>(std::lround(ratio * ratio * 256.0)));
  }
  q.proxy_to_l2_ = s_max * s_max / 256.0;
  return q;
}

std::vector<int8_t> Int8Quantizer::Encode(const nn::Vector& v) const {
  std::vector<int8_t> code;
  code.reserve(dim());
  EncodeAppend(v, &code);
  return code;
}

void Int8Quantizer::EncodeAppend(const nn::Vector& v,
                                 std::vector<int8_t>* out) const {
  if (v.size() != dim()) {
    throw std::invalid_argument(
        "Int8Quantizer: vector dimension " + std::to_string(v.size()) +
        " != quantizer dimension " + std::to_string(dim()));
  }
  for (size_t d = 0; d < dim(); ++d) {
    const double scaled = v[d] / scales_[d];
    const long q = std::lround(std::clamp(scaled, -127.0, 127.0));
    out->push_back(static_cast<int8_t>(q));
  }
}

nn::Vector Int8Quantizer::Decode(const int8_t* code) const {
  nn::Vector v(dim());
  for (size_t d = 0; d < dim(); ++d) {
    v[d] = scales_[d] * static_cast<double>(code[d]);
  }
  return v;
}

int64_t Int8Quantizer::WeightedCodeAccum(const int8_t* a,
                                         const int8_t* b) const {
  return WeightedCodeSquaredL2(a, b, weights_.data(), dim());
}

double Int8Quantizer::SquaredErrorBound() const {
  double acc = 0.0;
  for (const double s : scales_) {
    acc += (s / 2.0) * (s / 2.0);
  }
  return acc;
}

}  // namespace neutraj::retrieval
