// Distance kernels of the retrieval subsystem — the ONLY sanctioned site
// for distance loops inside src/retrieval/ (tools/lint.sh rule 8).
//
// Two tiers share this header so every caller is explicit about which
// accuracy it is buying:
//
//   - Exact kernels (double): bit-identical to the core scan path
//     (nn::L2Distance), used by k-means training, sharded exact scans and
//     the final re-rank. ExactSquaredL2 is the monotone form (no sqrt) for
//     argmin searches; ExactL2 matches the distances the serving TopK
//     returns.
//
//   - Quantized kernels (int8 codes): integer-only inner loops — subtract,
//     square, weighted i32 products accumulated into i64 — so the candidate
//     scan is cheap, SIMD-friendly and bit-identical between the vector and
//     portable fallback implementations: integer arithmetic has no
//     rounding, so kernel choice can never change which candidates survive
//     to the exact re-rank. The AVX2 path is RUNTIME-dispatched: its
//     translation unit (kernels_avx2.cc) is compiled with -mavx2 whenever
//     the toolchain supports the flag on x86, and engages only when cpuid
//     reports AVX2 — so CI builds and tests it on any x86 runner instead of
//     depending on a compile-time -mavx2 gate nobody sets.
//
// The weighted form implements per-dimension symmetric quantization scales
// (see quantized.h): with codes a_d = round(x_d / s_d) and integer weights
// w_d ∝ s_d², Σ w_d (a_d - b_d)² is proportional to the true squared L2 up
// to quantization error. Weights and codes are both integers, so the whole
// scan is exact integer arithmetic; the caller applies one float factor at
// the end to map the accumulator back to L2 units.

#ifndef NEUTRAJ_RETRIEVAL_KERNELS_H_
#define NEUTRAJ_RETRIEVAL_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace neutraj::retrieval {

/// Σ (a_d - b_d)² in double precision. Same FP operation order as
/// nn::L2Distance minus the final sqrt, so sqrt(ExactSquaredL2(a, b, d))
/// is bit-identical to the core scan's distance.
double ExactSquaredL2(const double* a, const double* b, size_t dim);

/// sqrt(ExactSquaredL2): the distance the serving TopK reports.
double ExactL2(const double* a, const double* b, size_t dim);

/// Σ w_d · (a_d - b_d)² over int8 codes with int32 weights, accumulated in
/// int64. Exact for any dim ≤ 2^31 / (254² · max_w) per partial block —
/// with w_d ≤ 256 a single (a-b)²·w product fits comfortably in i32 and
/// the i64 accumulator never overflows for any realistic dim. Deterministic
/// and identical across the portable and SIMD implementations.
int64_t WeightedCodeSquaredL2(const int8_t* a, const int8_t* b,
                              const int32_t* w, size_t dim);

/// Unweighted Σ (a_d - b_d)² over int8 codes (uniform-scale quantizers).
int64_t CodeSquaredL2(const int8_t* a, const int8_t* b, size_t dim);

/// Name of the active quantized-kernel implementation ("avx2" or
/// "portable") — surfaced in benchmarks so results name their kernel.
/// Reflects the runtime dispatch decision (cpuid) and any SetQuantizedKernel
/// override.
const char* QuantizedKernelName();

/// Quantized-kernel selection for tests and benches. kAuto (the startup
/// state) dispatches on cpuid; kPortable / kAvx2 pin one implementation so
/// the bit-identity test can run both on the same machine and a bench can
/// name which kernel it measured.
enum class QuantizedKernel { kAuto, kPortable, kAvx2 };

/// Overrides the dispatch. Throws std::runtime_error for kAvx2 when the
/// AVX2 kernel is unavailable (not compiled in, or cpuid says no). Not
/// thread-safe against concurrent scans — a test/bench knob, not a serving
/// one.
void SetQuantizedKernel(QuantizedKernel choice);

namespace internal {

/// Portable reference implementation — always available, the bit-identity
/// baseline.
int64_t WeightedCodeSquaredL2Portable(const int8_t* a, const int8_t* b,
                                      const int32_t* w, size_t dim);

/// AVX2 implementation (kernels_avx2.cc, compiled with -mavx2). Call only
/// when QuantizedAvx2Available(); on builds without the AVX2 TU it falls
/// back to the portable kernel.
int64_t WeightedCodeSquaredL2Avx2(const int8_t* a, const int8_t* b,
                                  const int32_t* w, size_t dim);

/// True when the AVX2 translation unit was compiled with AVX2 enabled
/// (irrespective of what the current CPU supports).
bool QuantizedAvx2CompiledIn();

/// True when the AVX2 kernel is both compiled in and supported by the
/// running CPU (cpuid) — the runtime dispatch predicate.
bool QuantizedAvx2Available();

}  // namespace internal

}  // namespace neutraj::retrieval

#endif  // NEUTRAJ_RETRIEVAL_KERNELS_H_
