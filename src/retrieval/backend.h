// Retrieval backends: the strategy seam between the query service and the
// corpus scan.
//
// QueryService answers TopK through a RetrievalBackend. ExactBackend is the
// existing behavior — the full O(N * d) EmbeddingDatabase scan. IvfBackend
// is the ANN path: an IvfIndex prefilter (coarse probe + int8 proxy scan)
// followed by an exact re-rank through EmbeddingDatabase::TopKOf, so its
// scores are bit-identical to the exact path and only recall is
// approximate. Both backends are views over the service's primary
// EmbeddingDatabase — inserts land in the database (and WAL) first, then
// NotifyInsert keeps the backend's index current.
//
// Telemetry (IvfBackend, re-resolved by AttachMetrics):
//   retrieval/probe_us            histogram  coarse probe + proxy scan
//   retrieval/rerank_us           histogram  exact re-rank over candidates
//   retrieval/candidates_scanned  counter    postings visited
//   retrieval/lists_probed        counter    cells probed
//   retrieval/queries             counter    TopK calls served
//   retrieval/proxy_top1_hits     counter    queries whose proxy-best
//                                            candidate survived as the exact
//                                            top-1 — a cheap recall proxy
//                                            (hits / queries ~ recall@1).

#ifndef NEUTRAJ_RETRIEVAL_BACKEND_H_
#define NEUTRAJ_RETRIEVAL_BACKEND_H_

#include <cstdint>

#include "core/embedding_db.h"
#include "core/search.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "retrieval/ivf_index.h"

namespace neutraj::retrieval {

/// Strategy interface for answering embedding top-k queries.
class RetrievalBackend {
 public:
  virtual ~RetrievalBackend() = default;

  /// Stable identifier ("exact", "ivf") for logs and stats.
  virtual const char* name() const = 0;

  /// Top-k for `query`; `exclude` as in EmbeddingDatabase::TopK. `nprobe`
  /// is the ANN breadth knob (0 = backend default); exact backends ignore
  /// it. `trace` (nullable) receives per-stage spans ("probe"/"rerank" for
  /// IVF, "scan" for exact) when the request is sampled; results are
  /// identical either way.
  virtual SearchResult TopK(const nn::Vector& query, size_t k, int64_t exclude,
                            size_t nprobe,
                            obs::RequestTrace* trace = nullptr) = 0;

  /// Called after row `id` has landed in the primary database (and WAL).
  virtual void NotifyInsert(size_t id, const nn::Vector& embedding) = 0;

  /// Re-points backend telemetry at `registry` (no-op for backends without
  /// metrics of their own).
  virtual void AttachMetrics(obs::MetricsRegistry* registry) = 0;
};

/// The full exact scan — delegates straight to EmbeddingDatabase::TopK.
class ExactBackend final : public RetrievalBackend {
 public:
  /// `db` must outlive the backend.
  explicit ExactBackend(const EmbeddingDatabase* db) : db_(db) {}

  const char* name() const override { return "exact"; }
  SearchResult TopK(const nn::Vector& query, size_t k, int64_t exclude,
                    size_t nprobe, obs::RequestTrace* trace = nullptr) override;
  void NotifyInsert(size_t /*id*/, const nn::Vector& /*embedding*/) override {
  }
  void AttachMetrics(obs::MetricsRegistry* /*registry*/) override {}

 private:
  const EmbeddingDatabase* db_;
};

/// IVF prefilter + exact re-rank. Build() must run on a quiesced database
/// before the backend serves traffic; NotifyInsert keeps it current after.
class IvfBackend final : public RetrievalBackend {
 public:
  /// `db` must outlive the backend. Metrics register in `registry`
  /// (nullptr = the process-global registry).
  IvfBackend(const EmbeddingDatabase* db, IvfIndex::Options options,
             obs::MetricsRegistry* registry = nullptr);

  /// Deterministically builds the index from the database's current rows
  /// over `threads` workers (call once, before serving). The database must
  /// be quiesced (uses the unlocked embeddings() accessor) and non-empty.
  void Build(size_t threads = 1);

  const char* name() const override { return "ivf"; }
  SearchResult TopK(const nn::Vector& query, size_t k, int64_t exclude,
                    size_t nprobe, obs::RequestTrace* trace = nullptr) override;
  void NotifyInsert(size_t id, const nn::Vector& embedding) override;
  void AttachMetrics(obs::MetricsRegistry* registry) override;

  const IvfIndex& index() const { return index_; }

 private:
  const EmbeddingDatabase* db_;
  IvfIndex index_;

  // Registry-owned; re-resolved by AttachMetrics.
  obs::ConcurrentHistogram* probe_us_ = nullptr;
  obs::ConcurrentHistogram* rerank_us_ = nullptr;
  obs::Counter* candidates_scanned_ = nullptr;
  obs::Counter* lists_probed_ = nullptr;
  obs::Counter* queries_ = nullptr;
  obs::Counter* proxy_top1_hits_ = nullptr;
};

}  // namespace neutraj::retrieval

#endif  // NEUTRAJ_RETRIEVAL_BACKEND_H_
