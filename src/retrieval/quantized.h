// Int8 symmetric quantization tier for cheap candidate scans.
//
// The paper's online protocol ranks the corpus by embedding-space L2; at
// millions of rows the double-precision scan is memory-bound (64 bytes per
// row at d=8). This tier stores an 8x smaller int8 code per row and scans
// candidates with an integer-only kernel, after which the top survivors are
// re-ranked with the exact float distance — so quantization can only affect
// WHICH candidates reach the re-rank, never the scores the caller sees.
//
// Scheme: symmetric per-dimension scalar quantization. Training scans a
// corpus (or sample) for per-dimension max magnitudes m_d and fixes
//
//   s_d     = max(m_d, epsilon) / 127          (the per-dimension scale)
//   code_d  = clamp(round(x_d / s_d), -127, 127)
//
// so decode(code)_d = s_d * code_d and the per-dimension reconstruction
// error is at most s_d / 2 for in-range inputs (inputs beyond the trained
// range clamp; live inserts therefore inherit the build-time range). The
// scan distance is the integer form of the scale-weighted code L2:
//
//   w_d   = max(1, round((s_d / s_max)² · 256))         (integer weights)
//   D(a,b) = Σ w_d (a_d - b_d)²                          (pure i32/i64)
//   approx squared L2 ≈ D(a,b) · s_max² / 256
//
// which honors per-dimension scales while keeping the inner loop integer —
// see kernels.h. Deterministic everywhere: same corpus → same scales →
// same codes → same candidate ranking, on every machine and kernel.

#ifndef NEUTRAJ_RETRIEVAL_QUANTIZED_H_
#define NEUTRAJ_RETRIEVAL_QUANTIZED_H_

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace neutraj::retrieval {

/// Per-dimension symmetric int8 quantizer + its integer scan distance.
/// Immutable after Train(); safe to share across threads.
class Int8Quantizer {
 public:
  Int8Quantizer() = default;

  /// Fixes scales from the per-dimension max magnitudes of `sample` (must
  /// be non-empty, all rows the same dimension). Throws
  /// std::invalid_argument on an empty sample or ragged rows.
  static Int8Quantizer Train(const std::vector<nn::Vector>& sample);

  bool trained() const { return !scales_.empty(); }
  size_t dim() const { return scales_.size(); }

  /// Quantizes one vector (dimension must match; throws otherwise).
  std::vector<int8_t> Encode(const nn::Vector& v) const;

  /// Appends the code of `v` to `out` (bulk storage without per-row
  /// allocations; `out` grows by dim()).
  void EncodeAppend(const nn::Vector& v, std::vector<int8_t>* out) const;

  /// Reconstruction: decode(code)_d = s_d * code_d.
  nn::Vector Decode(const int8_t* code) const;

  /// Approximate squared L2 between two codes: the integer weighted kernel
  /// mapped back to L2 units. Exceeds/undershoots the true squared L2 only
  /// by quantization + weight-rounding error; ties in the integer
  /// accumulator are exact, so rankings are deterministic.
  double ApproxSquaredL2(const int8_t* a, const int8_t* b) const {
    return proxy_to_l2_ *
           static_cast<double>(WeightedCodeAccum(a, b));
  }

  /// The raw integer accumulator (exposed so callers can rank candidates in
  /// exact integer arithmetic and defer the float mapping entirely).
  int64_t WeightedCodeAccum(const int8_t* a, const int8_t* b) const;

  const std::vector<double>& scales() const { return scales_; }

  /// Worst-case per-vector reconstruction error bound in squared-L2 terms
  /// for in-range inputs: Σ_d (s_d / 2)².
  double SquaredErrorBound() const;

 private:
  std::vector<double> scales_;    ///< s_d.
  std::vector<int32_t> weights_;  ///< w_d in [1, 256].
  double proxy_to_l2_ = 0.0;      ///< s_max² / 256.
};

}  // namespace neutraj::retrieval

#endif  // NEUTRAJ_RETRIEVAL_QUANTIZED_H_
