#include "retrieval/sharded_db.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "retrieval/kernels.h"

namespace neutraj::retrieval {

namespace {

/// Worst-first ordering for the bounded heap: the heap root is the pair the
/// next better candidate evicts. (dist, id) lexicographic — the same total
/// order the core TopKImpl sorts by, so eviction can never drop a pair the
/// final merge would have kept.
bool WorseThan(const std::pair<double, size_t>& a,
               const std::pair<double, size_t>& b) {
  if (a.first != b.first) return a.first < b.first;
  return a.second < b.second;
}

}  // namespace

ShardedEmbeddingDatabase::ShardedEmbeddingDatabase(
    size_t num_shards, obs::MetricsRegistry* registry) {
  const size_t n = std::max<size_t>(1, num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  AttachMetrics(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global());
}

void ShardedEmbeddingDatabase::AttachMetrics(obs::MetricsRegistry* registry) {
  insert_us_ = &registry->GetHistogram("retrieval/sharded_insert_us");
  topk_us_ = &registry->GetHistogram("retrieval/sharded_topk_us");
  shard_rows_.clear();
  shard_rows_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    shard_rows_.push_back(
        &registry->GetGauge("retrieval/shard" + std::to_string(i) + "/rows"));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    size_t filled = 0;
    {
      ReaderLock lock(shards_[i]->mu);
      filled = shards_[i]->filled;
    }
    shard_rows_[i]->Set(static_cast<double>(filled));
  }
}

size_t ShardedEmbeddingDatabase::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    total += shard->filled;
  }
  return total;
}

void ShardedEmbeddingDatabase::BulkLoad(const std::vector<nn::Vector>& rows) {
  if (next_id_.load(std::memory_order_acquire) != 0) {
    throw std::logic_error(
        "ShardedEmbeddingDatabase::BulkLoad: database is not empty");
  }
  const size_t n = shards_.size();
  for (const auto& shard : shards_) {
    WriterLock lock(shard->mu);
    shard->rows.reserve(rows.size() / n + 1);
  }
  for (const nn::Vector& row : rows) Insert(row);
}

size_t ShardedEmbeddingDatabase::Insert(const nn::Vector& embedding) {
  if (embedding.empty()) {
    throw std::invalid_argument(
        "ShardedEmbeddingDatabase::Insert: empty embedding");
  }
  NEUTRAJ_DCHECK_FINITE(embedding);
  size_t expected = dim_.load(std::memory_order_acquire);
  if (expected == 0) {
    size_t zero = 0;
    dim_.compare_exchange_strong(zero, embedding.size(),
                                 std::memory_order_acq_rel);
    expected = dim_.load(std::memory_order_acquire);
  }
  if (embedding.size() != expected) {
    throw std::invalid_argument(
        "ShardedEmbeddingDatabase::Insert: embedding dimension " +
        std::to_string(embedding.size()) + " != database dimension " +
        std::to_string(expected));
  }

  Stopwatch sw;
  // Claim the dense id first, then lock only the owning shard: concurrent
  // inserts to distinct shards never share a lock. The slot may land ahead
  // of a racing neighbor's — the filled prefix hides it until the gap
  // closes.
  const size_t id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  const size_t shard_index = id % shards_.size();
  const size_t slot = id / shards_.size();
  Shard& shard = *shards_[shard_index];
  size_t filled = 0;
  {
    WriterLock lock(shard.mu);
    if (slot >= shard.rows.size()) shard.rows.resize(slot + 1);
    shard.rows[slot] = embedding;
    while (shard.filled < shard.rows.size() &&
           !shard.rows[shard.filled].empty()) {
      ++shard.filled;
    }
    filled = shard.filled;
  }
  insert_us_->Record(sw.ElapsedMillis() * 1e3);
  shard_rows_[shard_index]->Set(static_cast<double>(filled));
  return id;
}

nn::Vector ShardedEmbeddingDatabase::At(size_t id) const {
  const size_t shard_index = id % shards_.size();
  const size_t slot = id / shards_.size();
  const Shard& shard = *shards_[shard_index];
  ReaderLock lock(shard.mu);
  if (slot >= shard.filled) {
    throw std::out_of_range("ShardedEmbeddingDatabase::At: id " +
                            std::to_string(id) + " is not visible");
  }
  return shard.rows[slot];
}

std::vector<std::pair<double, size_t>> ShardedEmbeddingDatabase::ScanShard(
    size_t shard_index, const nn::Vector& query, size_t k,
    int64_t exclude) const {
  const size_t n = shards_.size();
  const Shard& shard = *shards_[shard_index];
  std::vector<std::pair<double, size_t>> heap;  // Worst-first bounded heap.
  heap.reserve(k + 1);
  {
    ReaderLock lock(shard.mu);
    for (size_t slot = 0; slot < shard.filled; ++slot) {
      const size_t id = slot * n + shard_index;
      if (exclude >= 0 && id == static_cast<size_t>(exclude)) continue;
      const double dist =
          ExactL2(shard.rows[slot].data(), query.data(), query.size());
      const std::pair<double, size_t> cand{dist, id};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), WorseThan);
      } else if (k > 0 && WorseThan(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), WorseThan);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), WorseThan);
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end(), WorseThan);  // Ascending.
  return heap;
}

SearchResult ShardedEmbeddingDatabase::TopK(const nn::Vector& query, size_t k,
                                            int64_t exclude, ThreadPool* pool,
                                            obs::RequestTrace* trace) const {
  const size_t expected = dim_.load(std::memory_order_acquire);
  if (expected != 0 && query.size() != expected) {
    throw std::invalid_argument(
        "ShardedEmbeddingDatabase::TopK: query dimension " +
        std::to_string(query.size()) + " != database dimension " +
        std::to_string(expected));
  }
  Stopwatch sw;
  const size_t n = shards_.size();
  std::vector<std::vector<std::pair<double, size_t>>> per_shard(n);
  if (pool != nullptr && n > 1) {
    for (size_t s = 0; s < n; ++s) {
      pool->Submit([this, s, &query, k, exclude, &per_shard, trace] {
        // Recorded from the worker, so the span's tid shows the fan-out;
        // pool->Wait() below orders every Record before the caller can
        // finish the trace.
        obs::StageSpan span(trace, "shard_scan");
        per_shard[s] = ScanShard(s, query, k, exclude);
      });
    }
    pool->Wait();
  } else {
    for (size_t s = 0; s < n; ++s) {
      obs::StageSpan span(trace, "shard_scan");
      per_shard[s] = ScanShard(s, query, k, exclude);
    }
  }

  // Gather: merge N ascending k-bounded lists by (dist, id). The global
  // top-k is a subset of the union, so one sort of <= N*k pairs reproduces
  // the flat scan's order exactly.
  std::vector<std::pair<double, size_t>> merged;
  merged.reserve(n * k);
  for (auto& list : per_shard) {
    merged.insert(merged.end(), list.begin(), list.end());
  }
  std::sort(merged.begin(), merged.end(), WorseThan);
  const size_t kk = std::min(k, merged.size());
  SearchResult r;
  r.ids.reserve(kk);
  r.dists.reserve(kk);
  for (size_t i = 0; i < kk; ++i) {
    r.ids.push_back(merged[i].second);
    r.dists.push_back(merged[i].first);
  }
  topk_us_->Record(sw.ElapsedMillis() * 1e3);
  return r;
}

}  // namespace neutraj::retrieval
