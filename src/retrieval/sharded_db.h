// Sharded embedding corpus: N independently-locked shards, scatter-gather
// top-k, and dense global ids — the scaling replacement for the single
// reader/writer lock the flat EmbeddingDatabase puts in front of a
// million-row corpus.
//
// Layout. Global ids stay dense and insertion-ordered (the serving corpus
// contract): id i lives in shard i % N at slot i / N. Ids are assigned by
// one atomic counter, so concurrent Insert calls on different shards touch
// different writer locks and stop serializing on a single mutex. Because
// the counter is claimed before the shard lock, a slot can be briefly
// written out of order under concurrency; every shard therefore exposes
// only its contiguous filled PREFIX to readers — an insert becomes visible
// once all earlier ids of its shard have landed, which in single-threaded
// use is immediately and under concurrency is as soon as the racing
// neighbors finish (no torn or half-visible rows ever).
//
// TopK. Scatter-gather: each shard scans its prefix with the exact kernel
// (bit-identical distances to the core scan — see retrieval/kernels.h)
// into a bounded k-element heap, and the gather step merges the N bounded
// heaps by (distance, id). Any global top-k element is necessarily in its
// own shard's top-k, so for a quiesced corpus the merged result is
// BIT-IDENTICAL — ids, distances, and the ascending-id tie-break — to
// EmbeddingDatabase::TopK over the same rows, for every shard count. The
// scatter runs on a caller-provided ThreadPool (or inline without one).
//
// Locking. Every shard lock shares rank lock_rank::kDbShard and the
// discipline is one-shard-at-a-time: scatter workers lock only their own
// shard, Insert locks only the target shard, and sequential walkers
// (size(), merge fallback) release each shard before the next. Holding two
// shards at once trips the equal-rank check in NEUTRAJ_CHECKS builds — by
// design, since that is the deadlock shape.

#ifndef NEUTRAJ_RETRIEVAL_SHARDED_DB_H_
#define NEUTRAJ_RETRIEVAL_SHARDED_DB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/search.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"

namespace neutraj::retrieval {

/// N-shard embedding corpus with per-shard locks and scatter-gather TopK.
class ShardedEmbeddingDatabase {
 public:
  /// `num_shards` is clamped to >= 1. Metrics register in `registry`
  /// (nullptr = the process-global registry).
  explicit ShardedEmbeddingDatabase(size_t num_shards,
                                    obs::MetricsRegistry* registry = nullptr);

  ShardedEmbeddingDatabase(const ShardedEmbeddingDatabase&) = delete;
  ShardedEmbeddingDatabase& operator=(const ShardedEmbeddingDatabase&) =
      delete;

  /// Bulk load into an empty database: inserts `rows` in id order (ids
  /// 0..rows.size()-1), reserving shard capacity up front. Throws
  /// std::logic_error if the database already has rows.
  void BulkLoad(const std::vector<nn::Vector>& rows);

  size_t num_shards() const { return shards_.size(); }

  /// Visible rows: the sum of every shard's contiguous filled prefix.
  /// Equals the number of completed Inserts whenever no insert is racing.
  size_t size() const;

  /// Embedding width; 0 until the first insert fixes it.
  size_t dim() const { return dim_.load(std::memory_order_acquire); }

  /// Appends one embedding and returns its dense global id. Thread-safe;
  /// concurrent inserts proceed on distinct shard locks. The first insert
  /// fixes the dimension; later inserts must match it or throw
  /// std::invalid_argument.
  size_t Insert(const nn::Vector& embedding);

  /// Copy of row `id` (throws std::out_of_range if not yet visible).
  nn::Vector At(size_t id) const;

  /// Exact top-k by L2 over all visible rows, ties broken by ascending id —
  /// bit-identical to EmbeddingDatabase::TopK over the same rows for every
  /// shard count. `exclude` (if >= 0) removes one id. The per-shard scans
  /// run on `pool` when given (one task per shard), inline otherwise.
  /// `trace` (nullable) records one "shard_scan" span per shard, from
  /// whichever thread ran the scan — the scatter-gather fan-out made
  /// visible in a request's span tree.
  SearchResult TopK(const nn::Vector& query, size_t k, int64_t exclude = -1,
                    ThreadPool* pool = nullptr,
                    obs::RequestTrace* trace = nullptr) const;

  /// Re-points telemetry (retrieval/sharded_insert_us, _topk_us histograms;
  /// retrieval/shard<i>/rows gauges) at `registry`; same contract as
  /// EmbeddingDatabase::AttachMetrics.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct Shard {
    mutable SharedMutex mu{lock_rank::kDbShard};
    /// Slot s holds global id s * N + shard_index; an empty vector marks a
    /// slot whose racing insert has not landed yet.
    std::vector<nn::Vector> rows NEUTRAJ_GUARDED_BY(mu);
    /// Length of the contiguous non-empty prefix of rows — the part
    /// readers may scan.
    size_t filled NEUTRAJ_GUARDED_BY(mu) = 0;
  };

  /// Bounded top-k scan of one shard; returns ascending (dist, id) pairs.
  std::vector<std::pair<double, size_t>> ScanShard(size_t shard_index,
                                                   const nn::Vector& query,
                                                   size_t k,
                                                   int64_t exclude) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> next_id_{0};
  std::atomic<size_t> dim_{0};

  // Registry-owned; re-resolved by AttachMetrics.
  obs::ConcurrentHistogram* insert_us_ = nullptr;
  obs::ConcurrentHistogram* topk_us_ = nullptr;
  std::vector<obs::Gauge*> shard_rows_;
};

}  // namespace neutraj::retrieval

#endif  // NEUTRAJ_RETRIEVAL_SHARDED_DB_H_
