// The AVX2 quantized-scan kernel, isolated in its own translation unit so
// the build can compile exactly this file with -mavx2 (see src/CMakeLists)
// while the rest of the tree keeps the baseline ISA. Callers never reach
// WeightedCodeSquaredL2Avx2 directly — dispatch in kernels.cc checks
// QuantizedAvx2Available() (compiled-in AND cpuid) first, so a binary built
// here runs correctly on a CPU without AVX2.
//
// When the toolchain cannot target AVX2 at all (non-x86, or a compiler
// without -mavx2), the #else branch keeps the symbols defined:
// QuantizedAvx2CompiledIn() reports false and the Avx2 entry point degrades
// to the portable kernel, which dispatch never selects anyway.

#include "retrieval/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace neutraj::retrieval::internal {

bool QuantizedAvx2CompiledIn() { return true; }

/// Widen int8 lanes to i32, diff², multiply by the i32 weights, accumulate
/// in four i64 lanes. Integer end to end — bit-identical to the portable
/// kernel by construction.
int64_t WeightedCodeSquaredL2Avx2(const int8_t* a, const int8_t* b,
                                  const int32_t* w, size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m128i a8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + d));
    const __m128i b8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + d));
    const __m256i ai = _mm256_cvtepi8_epi32(a8);
    const __m256i bi = _mm256_cvtepi8_epi32(b8);
    const __m256i diff = _mm256_sub_epi32(ai, bi);
    const __m256i sq = _mm256_mullo_epi32(diff, diff);
    const __m256i wi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + d));
    const __m256i prod = _mm256_mullo_epi32(sq, wi);
    // Widen the 8 i32 products to i64 in two halves and accumulate.
    const __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod));
    const __m256i hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(prod, 1));
    acc = _mm256_add_epi64(acc, _mm256_add_epi64(lo, hi));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; d < dim; ++d) {
    const int32_t diff = static_cast<int32_t>(a[d]) - b[d];
    total += w[d] * (diff * diff);
  }
  return total;
}

}  // namespace neutraj::retrieval::internal

#else  // !__AVX2__

namespace neutraj::retrieval::internal {

bool QuantizedAvx2CompiledIn() { return false; }

int64_t WeightedCodeSquaredL2Avx2(const int8_t* a, const int8_t* b,
                                  const int32_t* w, size_t dim) {
  // Unreachable through dispatch (QuantizedAvx2Available() is false); kept
  // defined so the symbol exists on every platform.
  return WeightedCodeSquaredL2Portable(a, b, w, dim);
}

}  // namespace neutraj::retrieval::internal

#endif  // __AVX2__
