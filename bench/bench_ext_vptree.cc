// Extension experiment: sub-linear top-k over the learned embeddings.
// The embedding distance is a metric, so a vantage-point tree can replace
// the flat O(N*d) scan of the paper's protocol. This bench measures
// per-query latency of flat scan vs VP-tree over growing corpora and
// reports the fraction of points the tree actually visits.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "exp_common.h"

namespace {

using namespace neutraj;
using namespace neutraj::bench;

const std::vector<int64_t> kSizes = {1000, 5000, 20000};

struct VpState {
  std::vector<nn::Vector> embeds;
  std::vector<nn::Vector> queries;
  std::map<int64_t, std::unique_ptr<VpTree>> trees;

  static VpState& Get() {
    static VpState* s = Build();
    return *s;
  }

 private:
  static VpState* Build() {
    auto* s = new VpState();
    std::printf("# one-time setup: corpus embeddings + VP-trees\n");
    GeneratorConfig gen = PortoLikeConfig(1.0);
    gen.num_trajectories = static_cast<size_t>(kSizes.back());
    gen.num_popular_routes = 120;
    gen.seed = 31337;
    TrajectoryDataset big = GeneratePortoLike(gen);
    ExperimentContext ctx = MakeContext("porto", Measure::kFrechet);
    TrainedModel tm = GetModel(ctx, VariantConfig("NeuTraj", Measure::kFrechet));
    s->embeds = tm.model.EmbedAll(big.trajectories);
    for (int64_t n : kSizes) {
      s->trees[n] = std::make_unique<VpTree>(std::vector<nn::Vector>(
          s->embeds.begin(), s->embeds.begin() + n));
    }
    for (int i = 0; i < 32; ++i) s->queries.push_back(s->embeds[i * 13]);
    // Report pruning at each size.
    for (int64_t n : kSizes) {
      size_t visits = 0;
      for (const auto& q : s->queries) {
        s->trees[n]->TopK(q, 50);
        visits += s->trees[n]->last_visit_count();
      }
      std::printf("# n=%-6lld mean visited %.0f of %lld (%.1f%%)\n",
                  static_cast<long long>(n),
                  static_cast<double>(visits) / static_cast<double>(s->queries.size()),
                  static_cast<long long>(n),
                  100.0 * static_cast<double>(visits) /
                      (static_cast<double>(s->queries.size()) *
                       static_cast<double>(n)));
    }
    return s;
  }
};

void BM_FlatScan(benchmark::State& state) {
  VpState& s = VpState::Get();
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<nn::Vector> sub(s.embeds.begin(),
                              s.embeds.begin() + static_cast<long>(n));
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EmbeddingTopK(sub, s.queries[qi++ % s.queries.size()], 50));
  }
}

void BM_VpTree(benchmark::State& state) {
  VpState& s = VpState::Get();
  const VpTree& tree = *s.trees.at(state.range(0));
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.TopK(s.queries[qi++ % s.queries.size()], 50));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Extension — flat embedding scan vs VP-tree top-50 search\n");
  for (int64_t n : kSizes) {
    benchmark::RegisterBenchmark("FlatScan", BM_FlatScan)
        ->Arg(n)
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.1);
    benchmark::RegisterBenchmark("VpTree", BM_VpTree)
        ->Arg(n)
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
