// Reproduces Table V: online similarity search *with* spatial indexes
// (bounding-box R-tree and grid-based inverted index) under the Fréchet
// distance. For each corpus size: mean per-query time of BruteForce / AP /
// NeuTraj restricted to the index candidates, plus the number of involved
// trajectories. Expected shape: every method gets faster; NeuTraj stays
// 30x+ faster than AP on the candidates ("elastic" property).

#include <cstdio>
#include <memory>

#include "exp_common.h"

namespace {

using namespace neutraj;
using namespace neutraj::bench;

const std::vector<size_t> kSizes = {1000, 5000, 10000, 20000};
constexpr size_t kNumQueries = 24;
constexpr double kQueryMargin = 2000.0;  // MBR inflation for candidates.

struct Timings {
  double brute_ms = 0.0;
  double ap_ms = 0.0;
  double neutraj_ms = 0.0;
  double involved = 0.0;
};

Timings RunWithCandidates(
    const std::vector<Trajectory>& corpus,
    const std::vector<nn::Vector>& embeds, const NeuTrajModel& model,
    const ApproxDistance& ap,
    const std::vector<std::unique_ptr<ApproxDistance::Sketch>>& sketches,
    const std::vector<Trajectory>& queries,
    const std::function<std::vector<size_t>(const Trajectory&)>& candidates_fn) {
  const DistanceFn exact = ExactDistanceFn(Measure::kFrechet);
  Timings t;
  Stopwatch sw;
  for (const Trajectory& q : queries) {
    const std::vector<size_t> cand = candidates_fn(q);
    t.involved += static_cast<double>(cand.size());

    sw.Restart();
    {
      std::vector<double> dists(cand.size());
      for (size_t i = 0; i < cand.size(); ++i) {
        dists[i] = exact(q, corpus[cand[i]]);
      }
      (void)TopKByDistance(dists, 50);
    }
    t.brute_ms += sw.ElapsedMillis();

    sw.Restart();
    {
      const auto qs = ap.Prepare(q);
      std::vector<double> dists(cand.size());
      for (size_t i = 0; i < cand.size(); ++i) {
        dists[i] = ap.Distance(*qs, *sketches[cand[i]]);
      }
      (void)TopKByDistance(dists, 50);
    }
    t.ap_ms += sw.ElapsedMillis();

    sw.Restart();
    {
      const nn::Vector qe = model.Embed(q);
      std::vector<double> dists(cand.size());
      for (size_t i = 0; i < cand.size(); ++i) {
        dists[i] = nn::L2Distance(qe, embeds[cand[i]]);
      }
      const SearchResult top50 = TopKByDistance(dists, 50);
      std::vector<size_t> ids;
      for (size_t k : top50.ids) ids.push_back(cand[k]);
      (void)RerankByExact(corpus, q, ids, exact, 50);
    }
    t.neutraj_ms += sw.ElapsedMillis();
  }
  const double inv = 1.0 / static_cast<double>(queries.size());
  t.brute_ms *= inv;
  t.ap_ms *= inv;
  t.neutraj_ms *= inv;
  t.involved *= inv;
  return t;
}

}  // namespace

int main() {
  PrintBanner("Table V — online similarity search with index",
              "Frechet; bounding-box R-tree and grid inverted index");

  // Corpus and models shared with the Table IV setup style.
  GeneratorConfig gen = PortoLikeConfig(1.0);
  gen.num_trajectories = kSizes.back();
  gen.num_popular_routes = 120;
  gen.seed = 31337;
  TrajectoryDataset big = GeneratePortoLike(gen);

  ExperimentContext ctx = MakeContext("porto", Measure::kFrechet);
  NeuTrajModel model(
      GetModel(ctx, VariantConfig("NeuTraj", Measure::kFrechet)).model);
  std::printf("# embedding %zu trajectories offline...\n", big.size());
  const std::vector<nn::Vector> embeds = model.EmbedAll(big.trajectories);
  const ApproxParams params = ApproxParams::ForRegion(big.region);
  const auto ap = ApproxDistance::Create(Measure::kFrechet, params);
  const auto sketches = ap->PrepareCorpus(big.trajectories);

  Rng rng(5151);
  std::vector<Trajectory> queries;
  for (size_t i = 0; i < kNumQueries; ++i) {
    queries.push_back(big.trajectories[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kSizes.front()) - 1))]);
  }

  for (size_t n : kSizes) {
    const std::vector<Trajectory> corpus(big.trajectories.begin(),
                                         big.trajectories.begin() +
                                             static_cast<long>(n));
    const std::vector<nn::Vector> sub_embeds(embeds.begin(),
                                             embeds.begin() + static_cast<long>(n));
    std::vector<std::unique_ptr<ApproxDistance::Sketch>> sub_sketches;
    for (size_t i = 0; i < n; ++i) sub_sketches.push_back(ap->Prepare(corpus[i]));

    std::printf("\n--- corpus size %zu ---\n", n);
    {
      const RTree rtree = RTree::ForTrajectories(corpus);
      const Timings t = RunWithCandidates(
          corpus, sub_embeds, model, *ap, sub_sketches, queries,
          [&](const Trajectory& q) {
            return rtree.Query(q.Bounds().Inflated(kQueryMargin));
          });
      std::printf("[R-tree]        BruteForce %8.3fms  AP %8.3fms  NeuTraj %8.3fms"
                  "  involved %.0f\n",
                  t.brute_ms, t.ap_ms, t.neutraj_ms, t.involved);
    }
    {
      const Grid big_grid(big.region.Inflated(50.0), 100.0);
      const InvertedGridIndex inv(big_grid, corpus);
      const Timings t = RunWithCandidates(
          corpus, sub_embeds, model, *ap, sub_sketches, queries,
          [&](const Trajectory& q) { return inv.Query(q, /*expand=*/3); });
      std::printf("[InvertedGrid]  BruteForce %8.3fms  AP %8.3fms  NeuTraj %8.3fms"
                  "  involved %.0f\n",
                  t.brute_ms, t.ap_ms, t.neutraj_ms, t.involved);
    }
  }
  return 0;
}
