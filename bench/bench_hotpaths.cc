// Hot-path microbenchmark: blocked dense kernels, one training epoch, bulk
// corpus encoding at 1/2/4/8 threads, and the observability overhead of
// trace spans on the encode path. Emits BENCH_hotpaths.json with the raw
// timings so perf regressions are diffable across commits.
//
// Two invariants are asserted while timing, not just measured:
//   - the blocked kernels agree with the textbook loops they replaced;
//   - the epoch loss is identical (bit for bit) at every thread count.
// Wall-clock speedups depend on the machine's core count; the JSON records
// the detected hardware_concurrency alongside every timing for context.
//
// The observability section compares encoding with tracing off (the default:
// one relaxed atomic load per instrumented scope) against coarse tracing on
// (clock reads + histogram records per encode). The enabled overhead is
// gated at <= 2%; builds with -DNEUTRAJ_OBS_NOTRACE remove the spans at the
// preprocessor level, so their compiled-out cost is exactly zero by
// construction and needs no measurement.
//
// The request-tracing section measures the per-request span-tree cost at
// the micro-batcher level (the hot serving path): blocking Encode calls
// with no RequestTrace attached versus a live trace on EVERY request —
// two clock reads plus two lock-free slot claims per request (queue_wait
// + encode spans), the worst case the 1-in-N sampler ever pays. Gated at
// <= 2% even for this always-sampled ceiling; the serving-level gates
// (off vs baseline, 1-in-64) live in bench_serving.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "distance/pairwise.h"
#include "neutraj.h"

namespace {

using namespace neutraj;

/// Pre-blocking reference kernels, kept here as the timing baseline.
void NaiveMatVecAccum(const nn::Matrix& a, const nn::Vector& x,
                      nn::Vector* y) {
  for (size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const double* row = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) acc += row[c] * x[c];
    (*y)[r] += acc;
  }
}

void NaiveMatTVecAccum(const nn::Matrix& a, const nn::Vector& x,
                       nn::Vector* y) {
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) (*y)[c] += row[c] * x[r];
  }
}

void NaiveAddOuterProduct(nn::Matrix* a, const nn::Vector& u,
                          const nn::Vector& v) {
  for (size_t r = 0; r < a->rows(); ++r) {
    double* row = a->Row(r);
    for (size_t c = 0; c < a->cols(); ++c) row[c] += u[r] * v[c];
  }
}

nn::Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  nn::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian(0, 1);
  return m;
}

nn::Vector RandomVector(size_t n, Rng* rng) {
  nn::Vector v(n);
  for (double& x : v) x = rng->Gaussian(0, 1);
  return v;
}

struct KernelTiming {
  std::string kernel;
  size_t rows, cols;
  double naive_ns, blocked_ns;
};

/// Times one kernel pair on a gate-shaped (4d x d) matrix. `reps` is scaled
/// so each measurement runs for a meaningful wall-clock slice.
template <typename NaiveFn, typename BlockedFn>
KernelTiming TimeKernel(const std::string& name, size_t rows, size_t cols,
                        size_t reps, NaiveFn naive, BlockedFn blocked) {
  // One warm-up call each, then alternate-free timed loops.
  naive();
  blocked();
  Stopwatch sw;
  for (size_t i = 0; i < reps; ++i) naive();
  const double naive_s = sw.ElapsedSeconds();
  sw.Restart();
  for (size_t i = 0; i < reps; ++i) blocked();
  const double blocked_s = sw.ElapsedSeconds();
  return {name, rows, cols, naive_s / static_cast<double>(reps) * 1e9,
          blocked_s / static_cast<double>(reps) * 1e9};
}

std::vector<KernelTiming> BenchKernels() {
  Rng rng(1234);
  std::vector<KernelTiming> out;
  for (const size_t d : {32ul, 64ul, 128ul}) {
    const size_t rows = 4 * d, cols = d;
    const nn::Matrix a = RandomMatrix(rows, cols, &rng);
    const nn::Vector x = RandomVector(cols, &rng);
    const nn::Vector xr = RandomVector(rows, &rng);
    nn::Vector y(rows), yt(cols);
    nn::Matrix g(rows, cols);
    const size_t reps = 2000000 / d;

    out.push_back(TimeKernel(
        "MatVecAccum", rows, cols, reps,
        [&] { NaiveMatVecAccum(a, x, &y); },
        [&] { nn::MatVecAccum(a, x, &y); }));
    out.push_back(TimeKernel(
        "MatTVecAccum", rows, cols, reps,
        [&] { NaiveMatTVecAccum(a, xr, &yt); },
        [&] { nn::MatTVecAccum(a, xr, &yt); }));
    out.push_back(TimeKernel(
        "AddOuterProduct", rows, cols, reps,
        [&] { NaiveAddOuterProduct(&g, xr, x); },
        [&] { nn::AddOuterProduct(&g, xr, x); }));
  }
  return out;
}

struct ThreadTiming {
  size_t threads;
  double epoch_s;      ///< Mean seconds per training epoch.
  double first_loss;   ///< Epoch-0 loss — must match across thread counts.
  double encode_s;     ///< Seconds to embed the encode corpus.
};

std::vector<ThreadTiming> BenchTraining() {
  GeneratorConfig gen = PortoLikeConfig(0.1);
  gen.num_trajectories = 600;  // Encode corpus; seeds are the first 60.
  gen.seed = 4242;
  const TrajectoryDataset data = GeneratePortoLike(gen);
  std::vector<Trajectory> seeds(data.trajectories.begin(),
                                data.trajectories.begin() +
                                    std::min<size_t>(60, data.trajectories.size()));
  const DistanceMatrix dists =
      ComputePairwiseDistances(seeds, Measure::kFrechet);
  BoundingBox region = BoundingBox::Empty();
  for (const Trajectory& t : data.trajectories) region.Extend(t.Bounds());
  const Grid grid(region.Inflated(10.0), 100.0);

  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = 32;
  cfg.epochs = 3;
  cfg.batch_size = 20;
  cfg.sampling_num = 8;

  std::vector<ThreadTiming> out;
  for (const size_t threads : {1ul, 2ul, 4ul, 8ul}) {
    cfg.threads = threads;
    Trainer trainer(cfg, grid, seeds, dists);
    Stopwatch sw;
    const TrainResult result = trainer.Train();
    const double train_s = sw.ElapsedSeconds();
    const NeuTrajModel model = trainer.TakeModel();

    sw.Restart();
    const EmbeddingDatabase db =
        EmbeddingDatabase::Build(model, data.trajectories, threads);
    const double encode_s = sw.ElapsedSeconds();

    out.push_back({threads, train_s / static_cast<double>(cfg.epochs),
                   result.epochs.front().mean_loss, encode_s});
    std::printf("  threads=%zu  epoch %.3fs  encode %zu trajs %.3fs\n",
                threads, train_s / static_cast<double>(cfg.epochs), db.size(), encode_s);
    if (result.epochs.front().mean_loss != out.front().first_loss) {
      std::fprintf(stderr,
                   "FATAL: loss diverged at threads=%zu — determinism bug\n",
                   threads);
      std::exit(1);
    }
  }
  return out;
}

struct ObsTiming {
  double off_s;       ///< Encode corpus, tracing off (runtime-disabled).
  double coarse_s;    ///< Encode corpus, coarse spans recording.
  double overhead;    ///< coarse_s / off_s - 1.
};

/// Measures the cost of the nn/encode trace span on the serial encode path,
/// best-of-N to shake scheduler noise out of the comparison.
ObsTiming BenchObservability() {
  GeneratorConfig gen = PortoLikeConfig(0.1);
  gen.num_trajectories = 400;
  gen.seed = 777;
  const TrajectoryDataset data = GeneratePortoLike(gen);
  std::vector<Trajectory> seeds(data.trajectories.begin(),
                                data.trajectories.begin() +
                                    std::min<size_t>(40, data.trajectories.size()));
  const DistanceMatrix dists =
      ComputePairwiseDistances(seeds, Measure::kFrechet);
  BoundingBox region = BoundingBox::Empty();
  for (const Trajectory& t : data.trajectories) region.Extend(t.Bounds());
  const Grid grid(region.Inflated(10.0), 100.0);

  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = 32;
  cfg.epochs = 1;
  Trainer trainer(cfg, grid, seeds, dists);
  trainer.Train();
  const NeuTrajModel model = trainer.TakeModel();

  constexpr int kRounds = 5;
  auto best_of = [&](obs::TraceLevel level) {
    obs::SetTraceLevel(level);
    double best = 1e300;
    for (int r = 0; r < kRounds; ++r) {
      Stopwatch sw;
      const auto embeds = model.EmbedAll(data.trajectories);
      best = std::min(best, sw.ElapsedSeconds());
      if (embeds.empty()) std::exit(1);  // Keeps the encode from being DCE'd.
    }
    return best;
  };

  best_of(obs::TraceLevel::kOff);  // Warm-up round set.
  ObsTiming t;
  t.off_s = best_of(obs::TraceLevel::kOff);
  t.coarse_s = best_of(obs::TraceLevel::kCoarse);
  obs::SetTraceLevel(obs::TraceLevel::kOff);
  t.overhead = t.coarse_s / t.off_s - 1.0;
  return t;
}

struct ReqTraceTiming {
  double off_s = 0.0;     ///< Batcher encodes, no RequestTrace attached.
  double traced_s = 0.0;  ///< A live RequestTrace on every request.
  double overhead = 0.0;  ///< traced_s / off_s - 1.
};

/// Measures the span-tree recording cost on the micro-batcher encode path:
/// every request traced (the ceiling — 1-in-N sampling pays 1/N of this).
ReqTraceTiming BenchReqTrace() {
  GeneratorConfig gen = PortoLikeConfig(0.1);
  gen.num_trajectories = 400;
  gen.seed = 778;
  const TrajectoryDataset data = GeneratePortoLike(gen);
  std::vector<Trajectory> seeds(data.trajectories.begin(),
                                data.trajectories.begin() +
                                    std::min<size_t>(40, data.trajectories.size()));
  const DistanceMatrix dists =
      ComputePairwiseDistances(seeds, Measure::kFrechet);
  BoundingBox region = BoundingBox::Empty();
  for (const Trajectory& t : data.trajectories) region.Extend(t.Bounds());
  const Grid grid(region.Inflated(10.0), 100.0);

  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = 32;
  cfg.epochs = 1;
  Trainer trainer(cfg, grid, seeds, dists);
  trainer.Train();
  const NeuTrajModel model = trainer.TakeModel();

  serve::MicroBatcher::Options opts;
  opts.threads = 2;
  opts.max_batch = 1;
  opts.max_wait_micros = 0;  // A blocking caller never has stragglers to
                             // wait for; a window would just add idle time.
  serve::MicroBatcher batcher(model, opts);

  constexpr int kRounds = 5;
  auto best_of = [&](bool traced) {
    double best = 1e300;
    for (int r = 0; r < kRounds; ++r) {
      Stopwatch sw;
      uint64_t id = 1;
      for (const Trajectory& t : data.trajectories) {
        if (traced) {
          obs::RequestTrace trace({id++, /*sampled=*/true}, "encode");
          batcher.Encode(t, &trace);
        } else {
          batcher.Encode(t, nullptr);
        }
      }
      best = std::min(best, sw.ElapsedSeconds());
    }
    return best;
  };

  best_of(false);  // Warm-up round set.
  ReqTraceTiming t;
  t.off_s = best_of(false);
  t.traced_s = best_of(true);
  t.overhead = t.traced_s / t.off_s - 1.0;
  return t;
}

}  // namespace

int main() {
  std::printf("NeuTraj hot-path benchmark\n");
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());

  std::printf("\n[1/4] dense kernels (blocked vs naive)\n");
  const auto kernels = BenchKernels();
  for (const KernelTiming& k : kernels) {
    std::printf("  %-16s %4zux%-4zu  naive %8.1f ns  blocked %8.1f ns  (%.2fx)\n",
                k.kernel.c_str(), k.rows, k.cols, k.naive_ns, k.blocked_ns,
                k.naive_ns / k.blocked_ns);
  }

  std::printf("\n[2/4] training epoch + corpus encoding by thread count\n");
  const auto threads = BenchTraining();

  std::printf("\n[3/4] trace-span overhead on the encode path\n");
  const ObsTiming obs_t = BenchObservability();
  std::printf("  tracing off %.4fs  coarse %.4fs  overhead %+.2f%%\n",
              obs_t.off_s, obs_t.coarse_s, obs_t.overhead * 100.0);
  if (obs_t.overhead > 0.02) {
    std::fprintf(stderr,
                 "FATAL: enabled trace spans cost %.2f%% > 2%% budget\n",
                 obs_t.overhead * 100.0);
    return 1;
  }

  std::printf("\n[4/4] request-trace span recording on the batcher path\n");
  const ReqTraceTiming rt = BenchReqTrace();
  std::printf("  untraced %.4fs  every-request traced %.4fs  "
              "overhead %+.2f%%\n",
              rt.off_s, rt.traced_s, rt.overhead * 100.0);
  if (rt.overhead > 0.02) {
    std::fprintf(stderr,
                 "FATAL: request-trace spans cost %.2f%% > 2%% budget even "
                 "fully sampled\n",
                 rt.overhead * 100.0);
    return 1;
  }

  FILE* f = std::fopen("BENCH_hotpaths.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_hotpaths.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelTiming& k = kernels[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"rows\": %zu, \"cols\": %zu, "
                 "\"naive_ns\": %.1f, \"blocked_ns\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 k.kernel.c_str(), k.rows, k.cols, k.naive_ns, k.blocked_ns,
                 k.naive_ns / k.blocked_ns, i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"training\": [\n");
  for (size_t i = 0; i < threads.size(); ++i) {
    const ThreadTiming& t = threads[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"epoch_seconds\": %.4f, "
                 "\"epoch_speedup_vs_serial\": %.3f, "
                 "\"encode_seconds\": %.4f, "
                 "\"encode_speedup_vs_serial\": %.3f, "
                 "\"first_epoch_loss\": %.17g}%s\n",
                 t.threads, t.epoch_s, threads.front().epoch_s / t.epoch_s,
                 t.encode_s, threads.front().encode_s / t.encode_s,
                 t.first_loss, i + 1 < threads.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"observability\": {\"encode_trace_off_seconds\": %.4f, "
               "\"encode_trace_coarse_seconds\": %.4f, "
               "\"enabled_span_overhead\": %.4f, "
               "\"compiled_out_overhead\": 0.0},\n",
               obs_t.off_s, obs_t.coarse_s, obs_t.overhead);
  std::fprintf(f,
               "  \"reqtrace\": {\"batcher_untraced_seconds\": %.4f, "
               "\"batcher_traced_seconds\": %.4f, "
               "\"fully_sampled_overhead\": %.4f}\n",
               rt.off_s, rt.traced_s, rt.overhead);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_hotpaths.json\n");
  return 0;
}
