// Reproduces Table IV: per-query time of online top-50 similarity search
// without an index, over growing corpus sizes, for BruteForce / AP /
// NT-No-SAM / NeuTraj on all four measures.
//
// Protocol (paper Sec. VII-C-1): corpus embeddings and AP sketches are
// computed offline; a query pays the method's per-corpus-item work. The
// neural methods return a top-50 candidate list that is re-ranked with the
// exact measure. Expected shape: the neural methods' per-query time grows
// only with the O(N*d) scan and sits 50x+ below BruteForce at the larger
// sizes; AP falls in between. ERP has no AP row (no approximate algorithm).
// Absolute numbers differ from the paper's hardware.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "exp_common.h"

namespace {

using namespace neutraj;
using namespace neutraj::bench;

/// Corpus sizes of the scaled experiment (paper: 1k / 5k / 10k / 200k).
const std::vector<int64_t> kSizes = {1000, 5000, 10000, 20000};

/// Shared one-time state: corpus, queries, models, offline embeddings and
/// AP sketches.
struct SearchState {
  std::vector<Trajectory> corpus;
  std::vector<Trajectory> queries;
  BoundingBox region = BoundingBox::Empty();
  std::unique_ptr<NeuTrajModel> neutraj;
  std::unique_ptr<NeuTrajModel> no_sam;
  std::vector<nn::Vector> embeds_neutraj;
  std::vector<nn::Vector> embeds_no_sam;
  std::map<Measure, std::vector<std::unique_ptr<ApproxDistance::Sketch>>> sketches;
  std::map<Measure, std::unique_ptr<ApproxDistance>> ap;

  static SearchState& Get() {
    static SearchState* s = Build();
    return *s;
  }

 private:
  static SearchState* Build() {
    auto* s = new SearchState();
    std::printf("# one-time setup: corpus, models, offline embeddings/sketches\n");
    Stopwatch sw;
    GeneratorConfig gen = PortoLikeConfig(1.0);
    gen.num_trajectories = static_cast<size_t>(kSizes.back());
    gen.num_popular_routes = 120;
    gen.seed = 31337;
    TrajectoryDataset big = GeneratePortoLike(gen);
    s->corpus = std::move(big.trajectories);
    s->region = big.region;

    Rng rng(5150);
    for (int i = 0; i < 16; ++i) {
      s->queries.push_back(
          s->corpus[static_cast<size_t>(rng.UniformInt(0, 999))]);
    }

    // Trained encoders from the standard porto/frechet cell; per-query cost
    // does not depend on the guidance measure.
    ExperimentContext ctx = MakeContext("porto", Measure::kFrechet);
    s->neutraj = std::make_unique<NeuTrajModel>(
        GetModel(ctx, VariantConfig("NeuTraj", Measure::kFrechet)).model);
    s->no_sam = std::make_unique<NeuTrajModel>(
        GetModel(ctx, VariantConfig("NT-No-SAM", Measure::kFrechet)).model);

    s->embeds_neutraj = s->neutraj->EmbedAll(s->corpus);
    s->embeds_no_sam = s->no_sam->EmbedAll(s->corpus);

    const ApproxParams params = ApproxParams::ForRegion(s->region);
    for (Measure m : AllMeasures()) {
      auto ap = ApproxDistance::Create(m, params);
      if (ap == nullptr) continue;
      s->sketches[m] = ap->PrepareCorpus(s->corpus);
      s->ap[m] = std::move(ap);
    }
    std::printf("# setup done in %.1fs\n", sw.ElapsedSeconds());
    return s;
  }
};

void BM_BruteForce(benchmark::State& state, Measure m) {
  SearchState& s = SearchState::Get();
  const size_t n = static_cast<size_t>(state.range(0));
  const DistanceFn exact = ExactDistanceFn(m);
  std::vector<double> dists(n);
  size_t qi = 0;
  for (auto _ : state) {
    const Trajectory& q = s.queries[qi++ % s.queries.size()];
    for (size_t i = 0; i < n; ++i) dists[i] = exact(q, s.corpus[i]);
    benchmark::DoNotOptimize(TopKByDistance(dists, 50));
  }
}

void BM_Ap(benchmark::State& state, Measure m) {
  SearchState& s = SearchState::Get();
  const size_t n = static_cast<size_t>(state.range(0));
  const ApproxDistance& ap = *s.ap.at(m);
  const auto& sketches = s.sketches.at(m);
  std::vector<double> dists(n);
  size_t qi = 0;
  for (auto _ : state) {
    const Trajectory& q = s.queries[qi++ % s.queries.size()];
    const auto qs = ap.Prepare(q);
    for (size_t i = 0; i < n; ++i) dists[i] = ap.Distance(*qs, *sketches[i]);
    benchmark::DoNotOptimize(TopKByDistance(dists, 50));
  }
}

void BM_Neural(benchmark::State& state, Measure m, bool sam) {
  SearchState& s = SearchState::Get();
  const size_t n = static_cast<size_t>(state.range(0));
  const NeuTrajModel& model = sam ? *s.neutraj : *s.no_sam;
  const auto& embeds = sam ? s.embeds_neutraj : s.embeds_no_sam;
  const DistanceFn exact = ExactDistanceFn(m);
  std::vector<double> dists(n);
  size_t qi = 0;
  for (auto _ : state) {
    const Trajectory& q = s.queries[qi++ % s.queries.size()];
    const nn::Vector qe = model.Embed(q);
    for (size_t i = 0; i < n; ++i) dists[i] = nn::L2Distance(qe, embeds[i]);
    const SearchResult top50 = TopKByDistance(dists, 50);
    // Paper protocol: re-rank the 50 candidates with the exact measure.
    benchmark::DoNotOptimize(
        RerankByExact(s.corpus, q, top50.ids, exact, 50));
  }
}

void RegisterAll() {
  for (Measure m : AllMeasures()) {
    const std::string mn = MeasureName(m);
    for (int64_t size : kSizes) {
      benchmark::RegisterBenchmark(("BruteForce/" + mn).c_str(), BM_BruteForce, m)
          ->Arg(size)
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.2);
      if (m != Measure::kErp) {
        benchmark::RegisterBenchmark(("AP/" + mn).c_str(), BM_Ap, m)
            ->Arg(size)
            ->Unit(benchmark::kMillisecond)
            ->MinTime(0.2);
      }
      benchmark::RegisterBenchmark(("NT-No-SAM/" + mn).c_str(), BM_Neural, m,
                                   false)
          ->Arg(size)
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.2);
      benchmark::RegisterBenchmark(("NeuTraj/" + mn).c_str(), BM_Neural, m, true)
          ->Arg(size)
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Table IV — online top-50 search time without index "
              "(per-query, paper sizes 1k/5k/10k/200k scaled to 20k)\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
