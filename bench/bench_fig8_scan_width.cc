// Reproduces Fig. 8: HR@10 of NeuTraj as the SAM scan width w varies
// (porto, all four measures reported; the paper highlights the same shape
// per measure). Expected shape: HR rises from w = 0 (no spatial context
// beyond the current cell) to an optimum around w = 2, then dips as the
// window pulls in non-relevant trajectories.

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Fig. 8 — sensitivity to SAM scan width w",
              "HR@10 of NeuTraj vs w, porto");

  const std::vector<int32_t> widths = {0, 1, 2, 3, 4};
  for (Measure m : {Measure::kFrechet, Measure::kHausdorff}) {
    ExperimentContext ctx = MakeContext("porto", m);
    const TopKWorkload workload = MakeWorkload(ctx);
    std::printf("\n--- %s ---\n", MeasureName(m).c_str());
    std::printf("%-6s %-10s\n", "w", "NeuTraj");
    for (int32_t w : widths) {
      NeuTrajConfig cfg = VariantConfig("NeuTraj", m);
      cfg.scan_width = w;
      Stopwatch sw;
      TrainedModel tm =
          TrainOrLoadModel(cfg, ctx.grid, ctx.split.seeds, ctx.seed_dists);
      std::printf("  [train w=%d: %s %.1fs]\n", w,
                  tm.from_cache ? "cached" : "fresh", sw.ElapsedSeconds());
      std::printf("%-6d %-10.4f\n", w, workload.EvaluateModel(tm.model).hr10);
    }
  }
  return 0;
}
