// Reproduces Table II: top-k search accuracy of AP / Siamese / NeuTraj on
// Fréchet, Hausdorff, ERP and DTW over both datasets.
//
// Metrics per method: HR@10, HR@50, R10@50 and (Fréchet/Hausdorff only in
// the paper's layout) the distance distortions d_H10 / d_R10 in meters.
// Expected shape: NeuTraj > Siamese > AP on every measure; ERP has no AP.

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Table II — performance comparison",
              "AP vs Siamese vs NeuTraj on Frechet/Hausdorff/ERP/DTW");

  for (const std::string dataset : {"porto", "geolife"}) {
    for (Measure m : AllMeasures()) {
      ExperimentContext ctx = MakeContext(dataset, m);
      const TopKWorkload workload = MakeWorkload(ctx);
      const bool distortion =
          m == Measure::kFrechet || m == Measure::kHausdorff;
      std::printf("\n--- %s / %s (gt mean top-10 dist: see rows) ---\n",
                  dataset.c_str(), MeasureName(m).c_str());

      bool ap_ok = false;
      const TopKQuality ap = EvaluateAp(ctx, workload, &ap_ok);
      if (ap_ok) {
        std::printf("%s\n", FormatAccuracyRow("AP", ap, distortion).c_str());
      } else {
        std::printf("%-10s  (no approximate algorithm exists)\n", "AP");
      }

      for (const std::string variant : {"Siamese", "NeuTraj"}) {
        TrainedModel tm = GetModel(ctx, VariantConfig(variant, m));
        const TopKQuality q = workload.EvaluateModel(tm.model);
        std::printf("%s\n", FormatAccuracyRow(variant, q, distortion).c_str());
      }
    }
  }
  return 0;
}
