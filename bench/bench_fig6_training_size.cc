// Reproduces Fig. 6: HR@10 of NeuTraj vs NT-No-SAM as the number of seed
// (training) trajectories grows, on Fréchet, Hausdorff and DTW (porto).
// Expected shape: both methods improve with more seeds and then flatten;
// NeuTraj stays above NT-No-SAM, with the largest gap at the smallest
// training size (the memory compensates for sparse supervision).

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Fig. 6 — sensitivity to training-set size",
              "HR@10 vs #seeds (fractions of the standard pool), porto");

  const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0};
  for (Measure m :
       {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
    ExperimentContext ctx = MakeContext("porto", m);
    const TopKWorkload workload = MakeWorkload(ctx);
    std::printf("\n--- %s ---\n", MeasureName(m).c_str());
    std::printf("%-8s %-10s %-10s\n", "#seeds", "NeuTraj", "NT-No-SAM");
    for (double frac : fractions) {
      const size_t n = static_cast<size_t>(frac * static_cast<double>(ctx.split.seeds.size()));
      const std::vector<Trajectory> seeds(ctx.split.seeds.begin(),
                                          ctx.split.seeds.begin() +
                                              static_cast<long>(n));
      const DistanceMatrix dists = CachedPairwiseDistances(seeds, m);
      double hr[2] = {0, 0};
      int idx = 0;
      for (const std::string variant : {"NeuTraj", "NT-No-SAM"}) {
        NeuTrajConfig cfg = VariantConfig(variant, m);
        Stopwatch sw;
        TrainedModel tm = TrainOrLoadModel(cfg, ctx.grid, seeds, dists);
        std::printf("  [train %s n=%zu: %s %.1fs]\n", variant.c_str(), n,
                    tm.from_cache ? "cached" : "fresh", sw.ElapsedSeconds());
        hr[idx++] = workload.EvaluateModel(tm.model).hr10;
      }
      std::printf("%-8zu %-10.4f %-10.4f\n", n, hr[0], hr[1]);
    }
  }
  return 0;
}
