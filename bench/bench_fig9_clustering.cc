// Reproduces Fig. 9: trajectory clustering with DBSCAN under the Fréchet
// distance (porto) — cluster counts for the exact vs embedding-based
// distance as eps grows, plus the agreement metrics (homogeneity,
// completeness, V-measure, ARI). Expected shape: the two cluster-count
// curves track each other and the best agreement values exceed 0.8.

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Fig. 9 — trajectory clustering",
              "DBSCAN on exact vs embedding distance, porto / Frechet");

  ExperimentContext ctx = MakeContext("porto", Measure::kFrechet);
  TrainedModel tm = GetModel(ctx, VariantConfig("NeuTraj", Measure::kFrechet));

  const auto& corpus = ctx.split.test;
  std::printf("# computing exact pairwise distances over %zu trajectories\n",
              corpus.size());
  const DistanceMatrix exact =
      CachedPairwiseDistances(corpus, Measure::kFrechet);

  const auto embeds = tm.model.EmbedAll(corpus);
  // Calibrate embedding distances to meters via the guidance alpha
  // (training fits ||Ei - Ej|| ~ alpha * D_ij).
  const double scale =
      1.0 / SimilarityMatrix(ctx.seed_dists, VariantConfig("NeuTraj",
                                                           Measure::kFrechet))
                .alpha();
  std::vector<double> approx(corpus.size() * corpus.size(), 0.0);
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = 0; j < corpus.size(); ++j) {
      approx[i * corpus.size() + j] =
          scale * nn::L2Distance(embeds[i], embeds[j]);
    }
  }

  const size_t min_pts = 10;  // Paper fixes minimum points at 10.
  std::printf("\n%-9s %-14s %-14s %-7s %-7s %-7s %-7s\n", "eps(m)",
              "#clust(exact)", "#clust(embed)", "Homog", "Compl", "V-meas",
              "ARI");
  double best_v = 0.0, best_ari = 0.0;
  for (double eps : {200.0, 300.0, 400.0, 600.0, 800.0, 1200.0, 1600.0}) {
    const Clustering truth = Dbscan(exact, eps, min_pts);
    const Clustering pred = Dbscan(approx, corpus.size(), eps, min_pts);
    const ClusterAgreement a = CompareClusterings(truth.labels, pred.labels);
    best_v = std::max(best_v, a.v_measure);
    best_ari = std::max(best_ari, a.adjusted_rand_index);
    std::printf("%-9.0f %-14d %-14d %.3f   %.3f   %.3f   %.3f\n", eps,
                truth.num_clusters, pred.num_clusters, a.homogeneity,
                a.completeness, a.v_measure, a.adjusted_rand_index);
  }
  std::printf("\nbest V-measure %.3f, best ARI %.3f (paper: best metric "
              "values > 0.8)\n",
              best_v, best_ari);
  return 0;
}
