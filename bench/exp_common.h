// Shared experiment harness for the per-table / per-figure bench binaries.
//
// Centralizes the paper's experimental setup so every bench uses identical
// datasets, splits, model configurations and caching:
//   - datasets: PortoLike / GeolifeLike synthetic corpora (see DESIGN.md for
//     the substitution rationale), fixed seeds, scaled by NEUTRAJ_SCALE
//   - protocol: 20% seeds / 10% validation / 70% test (paper Sec. VII-A-2)
//   - model: d = 32, w = 2, n = 10, batch 20 (paper values scaled for one
//     CPU core; set NEUTRAJ_SCALE=paper for larger runs)
//   - caching: trained models and distance matrices under ./neutraj_cache,
//     shared across bench binaries.

#ifndef NEUTRAJ_BENCH_EXP_COMMON_H_
#define NEUTRAJ_BENCH_EXP_COMMON_H_

#include <string>
#include <vector>

#include "neutraj.h"

namespace neutraj::bench {

/// Experiment scale selected by the NEUTRAJ_SCALE environment variable:
/// "small" (default, minutes on one core) or "paper" (hours).
struct Scale {
  std::string name = "small";
  double dataset = 1.0;   ///< Multiplier on corpus sizes.
  size_t epochs = 25;     ///< Training epochs.
  size_t queries = 60;    ///< Queries per top-k evaluation.
  size_t embedding_dim = 32;
};

const Scale& GetScale();

/// The two standard corpora, generated deterministically.
TrajectoryDataset PortoDataset();
TrajectoryDataset GeolifeDataset();

/// Everything shared by one (dataset, measure) experiment cell.
struct ExperimentContext {
  std::string dataset_name;
  Measure measure;
  TrajectoryDataset db;
  DatasetSplit split;
  Grid grid;
  DistanceMatrix seed_dists;

  ExperimentContext(std::string name, Measure m, TrajectoryDataset dataset);
};

/// Builds the context for "porto" or "geolife" under `m`; seed distances
/// come from the cache when available.
ExperimentContext MakeContext(const std::string& dataset, Measure m);

/// The standard model config of this repo's experiments for a given paper
/// variant name ("NeuTraj", "NT-No-SAM", "NT-No-WS", "Siamese").
NeuTrajConfig VariantConfig(const std::string& variant, Measure m);

/// Trains or loads the variant's model for `ctx`.
TrainedModel GetModel(const ExperimentContext& ctx, const NeuTrajConfig& cfg);

/// Builds the standard top-k evaluation workload over ctx.split.test.
TopKWorkload MakeWorkload(const ExperimentContext& ctx);

/// Evaluates the AP (approximate-algorithm) baseline on a workload.
/// Returns false into `ok` when no AP algorithm exists (ERP).
TopKQuality EvaluateAp(const ExperimentContext& ctx, const TopKWorkload& workload,
                       bool* ok);

/// Formats one accuracy row in the paper's table layout.
std::string FormatAccuracyRow(const std::string& method, const TopKQuality& q,
                              bool with_distortion);

/// Prints the standard table banner for a bench binary.
void PrintBanner(const std::string& experiment, const std::string& detail);

}  // namespace neutraj::bench

#endif  // NEUTRAJ_BENCH_EXP_COMMON_H_
