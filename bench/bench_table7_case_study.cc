// Reproduces Table VII: case studies of top-k search under the Fréchet
// distance for one short and one long query. For each query: the top-3
// ground truth vs NeuTraj's top-3 (by id and exact distance), plus HR@10,
// HR@50, R10@50 and the distortions d_H5 / d_H10 / d_R10. Expected shape:
// NeuTraj's lists overlap heavily with the ground truth and preserve rank
// order, with distortions of meters to tens of meters on near-duplicates.

#include <algorithm>
#include <cstdio>

#include "exp_common.h"

namespace {

using namespace neutraj;
using namespace neutraj::bench;

void CaseStudy(const char* tag, size_t query_id,
               const std::vector<Trajectory>& corpus,
               const std::vector<nn::Vector>& embeds, const DistanceFn& exact) {
  const Trajectory& query = corpus[query_id];
  std::vector<double> exact_dists(corpus.size());
  for (size_t j = 0; j < corpus.size(); ++j) {
    exact_dists[j] = j == query_id ? 0.0 : exact(query, corpus[j]);
  }
  const SearchResult gt = TopKByDistance(exact_dists, 50,
                                         static_cast<int64_t>(query_id));
  const SearchResult pred = EmbeddingTopK(embeds, embeds[query_id], 50,
                                          static_cast<int64_t>(query_id));

  QueryJudgement j;
  j.ranked_ids = pred.ids;
  j.exact_dists = &exact_dists;
  j.exclude = static_cast<int64_t>(query_id);
  const TopKQuality q = EvaluateTopKQuality({j});

  std::vector<size_t> pred5(pred.ids.begin(), pred.ids.begin() + 5);
  std::vector<size_t> gt5(gt.ids.begin(), gt.ids.begin() + 5);
  const double d_h5 =
      std::abs(MeanDistanceOf(pred5, exact_dists) - MeanDistanceOf(gt5, exact_dists));

  std::printf("\n=== %s: query T_%zu (length %zu, span %.0fm) ===\n", tag,
              query_id, query.size(), query.Bounds().Width());
  std::printf("HR@10 %.2f  HR@50 %.2f  R10@50 %.2f  dH5 %.0fm  dH10 %.0fm  "
              "dR10 %.0fm\n",
              q.hr10, q.hr50, q.r10_at_50, d_h5, q.delta_h10, q.delta_r10);
  std::printf("%-24s %-24s\n", "top-3 ground truth", "top-3 NeuTraj");
  for (int r = 0; r < 3; ++r) {
    // Rank of the NeuTraj pick within the exact ground-truth order.
    size_t gt_rank = 0;
    for (size_t k = 0; k < gt.ids.size(); ++k) {
      if (gt.ids[k] == pred.ids[r]) gt_rank = k + 1;
    }
    std::printf("T_%-6zu (%6.0fm)       T_%-6zu (%6.0fm, GT rank %zu)\n",
                gt.ids[r], gt.dists[r], pred.ids[r],
                exact_dists[pred.ids[r]], gt_rank);
  }
}

}  // namespace

int main() {
  PrintBanner("Table VII — case studies",
              "porto / Frechet; one short and one long query");

  ExperimentContext ctx = MakeContext("porto", Measure::kFrechet);
  TrainedModel tm = GetModel(ctx, VariantConfig("NeuTraj", Measure::kFrechet));
  const auto& corpus = ctx.split.test;
  const auto embeds = tm.model.EmbedAll(corpus);
  const DistanceFn exact = ExactDistanceFn(Measure::kFrechet);

  // Pick a short and a long representative query deterministically.
  size_t short_q = 0, long_q = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].size() < corpus[short_q].size()) short_q = i;
    if (corpus[i].size() > corpus[long_q].size()) long_q = i;
  }
  CaseStudy("short trajectory", short_q, corpus, embeds, exact);
  CaseStudy("long trajectory", long_q, corpus, embeds, exact);
  return 0;
}
