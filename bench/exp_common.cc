#include "exp_common.h"

#include <cstdio>
#include <cstdlib>

namespace neutraj::bench {

const Scale& GetScale() {
  static const Scale scale = [] {
    Scale s;
    const char* env = std::getenv("NEUTRAJ_SCALE");
    if (env != nullptr && std::string(env) == "paper") {
      s.name = "paper";
      s.dataset = 4.0;
      s.epochs = 30;
      s.queries = 100;
      s.embedding_dim = 64;
    }
    return s;
  }();
  return scale;
}

TrajectoryDataset PortoDataset() {
  return GeneratePortoLike(PortoLikeConfig(GetScale().dataset));
}

TrajectoryDataset GeolifeDataset() {
  return GenerateGeolifeLike(GeolifeLikeConfig(GetScale().dataset));
}

ExperimentContext::ExperimentContext(std::string name, Measure m,
                                     TrajectoryDataset dataset)
    : dataset_name(std::move(name)),
      measure(m),
      db(std::move(dataset)),
      split(SplitDataset(db, 0.2, 0.1)),
      grid(db.region.Inflated(50.0), /*cell_size=*/100.0),
      seed_dists(CachedPairwiseDistances(split.seeds, m)) {}

ExperimentContext MakeContext(const std::string& dataset, Measure m) {
  if (dataset == "porto") return ExperimentContext("porto", m, PortoDataset());
  if (dataset == "geolife") {
    return ExperimentContext("geolife", m, GeolifeDataset());
  }
  throw std::invalid_argument("MakeContext: unknown dataset " + dataset);
}

NeuTrajConfig VariantConfig(const std::string& variant, Measure m) {
  NeuTrajConfig cfg;
  if (variant == "NeuTraj") {
    cfg = NeuTrajConfig::NeuTraj();
  } else if (variant == "NT-No-SAM") {
    cfg = NeuTrajConfig::NoSam();
  } else if (variant == "NT-No-WS") {
    cfg = NeuTrajConfig::NoWs();
  } else if (variant == "Siamese") {
    cfg = NeuTrajConfig::Siamese();
  } else {
    throw std::invalid_argument("VariantConfig: unknown variant " + variant);
  }
  cfg.measure = m;
  cfg.embedding_dim = GetScale().embedding_dim;
  cfg.scan_width = 2;
  cfg.sampling_num = 10;
  cfg.batch_size = 20;
  cfg.epochs = GetScale().epochs;
  cfg.learning_rate = 1e-3;
  return cfg;
}

TrainedModel GetModel(const ExperimentContext& ctx, const NeuTrajConfig& cfg) {
  std::printf("  [%s/%s] %s: ", ctx.dataset_name.c_str(),
              MeasureName(ctx.measure).c_str(), cfg.VariantName().c_str());
  std::fflush(stdout);
  Stopwatch sw;
  TrainedModel m =
      TrainOrLoadModel(cfg, ctx.grid, ctx.split.seeds, ctx.seed_dists);
  std::printf("%s (%.1fs)\n", m.from_cache ? "cached" : "trained",
              sw.ElapsedSeconds());
  return m;
}

TopKWorkload MakeWorkload(const ExperimentContext& ctx) {
  return TopKWorkload(ctx.split.test, ExactDistanceFn(ctx.measure),
                      GetScale().queries, /*rng_seed=*/4242);
}

TopKQuality EvaluateAp(const ExperimentContext& ctx,
                       const TopKWorkload& workload, bool* ok) {
  const ApproxParams params = ApproxParams::ForRegion(ctx.db.region);
  const auto ap = ApproxDistance::Create(ctx.measure, params);
  if (ap == nullptr) {
    *ok = false;
    return TopKQuality{};
  }
  *ok = true;
  const auto sketches = ap->PrepareCorpus(workload.corpus());
  const TopKQuality q = workload.Evaluate([&](size_t pos) {
    const size_t qid = workload.query_ids()[pos];
    return ap
        ->TopK(sketches, workload.corpus()[qid], 50, static_cast<int64_t>(qid))
        .ids;
  });
  return q;
}

std::string FormatAccuracyRow(const std::string& method, const TopKQuality& q,
                              bool with_distortion) {
  if (with_distortion) {
    return StrFormat("%-10s  HR@10 %.4f  HR@50 %.4f  R10@50 %.4f  d_H10/d_R10 %4.0f/%4.0f",
                     method.c_str(), q.hr10, q.hr50, q.r10_at_50, q.delta_h10,
                     q.delta_r10);
  }
  return StrFormat("%-10s  HR@10 %.4f  HR@50 %.4f  R10@50 %.4f", method.c_str(),
                   q.hr10, q.hr50, q.r10_at_50);
}

void PrintBanner(const std::string& experiment, const std::string& detail) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", detail.c_str());
  std::printf("scale=%s (set NEUTRAJ_SCALE=paper for larger runs); cache dir "
              "./neutraj_cache\n",
              GetScale().name.c_str());
  std::printf("==============================================================\n");
}

}  // namespace neutraj::bench
