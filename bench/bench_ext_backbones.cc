// Extension experiment (beyond the paper's tables): the paper states SAM
// "augments existing RNNs (GRU, LSTM)" but only evaluates the LSTM
// instantiation. This bench compares all four backbones — LSTM, SAM-LSTM,
// GRU, SAM-GRU — under the full NeuTraj training recipe on porto/Frechet.
// Expected shape: GRU variants land in the same accuracy band as their
// LSTM counterparts (the SAM module is backbone-agnostic).

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Extension — backbone study",
              "LSTM / SAM-LSTM / GRU / SAM-GRU under the NeuTraj recipe");

  ExperimentContext ctx = MakeContext("porto", Measure::kFrechet);
  const TopKWorkload workload = MakeWorkload(ctx);

  struct Row {
    const char* name;
    nn::Backbone backbone;
  };
  const Row rows[] = {
      {"LSTM", nn::Backbone::kLstm},
      {"SAM-LSTM", nn::Backbone::kSamLstm},
      {"GRU", nn::Backbone::kGru},
      {"SAM-GRU", nn::Backbone::kSamGru},
  };
  std::printf("\n%-10s %-8s %-8s %-8s %-10s\n", "backbone", "HR@10", "HR@50",
              "R10@50", "t_train(s)");
  for (const Row& row : rows) {
    NeuTrajConfig cfg = VariantConfig("NeuTraj", Measure::kFrechet);
    cfg.backbone = row.backbone;
    TrainedModel tm =
        TrainOrLoadModel(cfg, ctx.grid, ctx.split.seeds, ctx.seed_dists);
    const TopKQuality q = workload.EvaluateModel(tm.model);
    std::printf("%-10s %-8.4f %-8.4f %-8.4f %-10.1f\n", row.name, q.hr10,
                q.hr50, q.r10_at_50, tm.stats.total_seconds);
  }
  return 0;
}
