// Reproduces Table III: ablation study — NT-No-WS (random sampling),
// NT-No-SAM (plain LSTM) versus the full NeuTraj, on all four measures and
// both datasets. Expected shape: NeuTraj >= NT-No-SAM >= NT-No-WS on most
// cells.

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Table III — ablation study",
              "NT-No-WS / NT-No-SAM / NeuTraj on all measures");

  for (const std::string dataset : {"porto", "geolife"}) {
    for (Measure m : AllMeasures()) {
      ExperimentContext ctx = MakeContext(dataset, m);
      const TopKWorkload workload = MakeWorkload(ctx);
      const bool distortion =
          m == Measure::kFrechet || m == Measure::kHausdorff;
      std::printf("\n--- %s / %s ---\n", dataset.c_str(),
                  MeasureName(m).c_str());
      for (const std::string variant : {"NT-No-WS", "NT-No-SAM", "NeuTraj"}) {
        TrainedModel tm = GetModel(ctx, VariantConfig(variant, m));
        const TopKQuality q = workload.EvaluateModel(tm.model);
        std::printf("%s\n", FormatAccuracyRow(variant, q, distortion).c_str());
      }
    }
  }
  return 0;
}
