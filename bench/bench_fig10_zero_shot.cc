// Reproduces Fig. 10: zero-shot learning — NeuTraj trained on *simulated*
// seeds (random walks over a road network, interpolated to trajectories)
// and evaluated on real-style trajectories (geolife), against the "Best"
// model trained on real seeds, for all four measures. Expected shape: the
// zero-shot model retains a large fraction of Best's HR@10 and reaches
// ~0.7 R10@50 on every measure.

#include <cstdio>

#include "exp_common.h"

namespace {

using namespace neutraj;
using namespace neutraj::bench;

std::vector<Trajectory> SimulatedSeeds(size_t count, const BoundingBox& region) {
  // A road network over the same area is the only asset the zero-shot
  // setting assumes (paper Sec. VII-G uses the Beijing road network).
  RoadNetworkConfig road;
  road.grid_cols = 16;
  road.grid_rows = 16;
  road.spacing = region.Width() / 15.0;
  road.jitter = road.spacing * 0.25;
  road.seed = 777;
  RoadNetwork network(road);
  Rng rng(778);
  std::vector<Trajectory> seeds;
  while (seeds.size() < count) {
    const auto route =
        network.RandomRoute(static_cast<size_t>(rng.UniformInt(6, 20)), &rng);
    Trajectory t =
        network.RouteToTrajectory(route, 120.0, 25.0, &rng).Downsampled(64);
    if (t.size() >= 10) seeds.push_back(std::move(t));
  }
  return seeds;
}

}  // namespace

int main() {
  PrintBanner("Fig. 10 — zero-shot learning",
              "synthetic road-network seeds vs real seeds, geolife");

  std::printf("\n%-11s %-8s %-8s %-8s %-8s\n", "measure", "BestHR10",
              "ZeroHR10", "BestR10", "ZeroR10");
  for (Measure m : AllMeasures()) {
    ExperimentContext ctx = MakeContext("geolife", m);
    const TopKWorkload workload = MakeWorkload(ctx);

    TrainedModel best = GetModel(ctx, VariantConfig("NeuTraj", m));
    const TopKQuality q_best = workload.EvaluateModel(best.model);

    const std::vector<Trajectory> synth =
        SimulatedSeeds(ctx.split.seeds.size(), ctx.db.region);
    const DistanceMatrix synth_d = CachedPairwiseDistances(synth, m);
    NeuTrajConfig cfg = VariantConfig("NeuTraj", m);
    TrainedModel zero = TrainOrLoadModel(cfg, ctx.grid, synth, synth_d);
    const TopKQuality q_zero = workload.EvaluateModel(zero.model);

    std::printf("%-11s %-8.3f %-8.3f %-8.3f %-8.3f\n",
                MeasureName(m).c_str(), q_best.hr10, q_zero.hr10,
                q_best.r10_at_50, q_zero.r10_at_50);
  }
  return 0;
}
