// Reproduces Fig. 5: training-loss convergence curves of NeuTraj vs
// NT-No-SAM on all four measures (porto). Expected shape: NeuTraj's loss
// falls faster and reaches a lower level within the same epoch budget —
// the SAM memory accelerates convergence.

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Fig. 5 — convergence curves",
              "training loss per epoch, NeuTraj vs NT-No-SAM, porto");

  for (Measure m : AllMeasures()) {
    ExperimentContext ctx = MakeContext("porto", m);
    TrainedModel neutraj = GetModel(ctx, VariantConfig("NeuTraj", m));
    TrainedModel no_sam = GetModel(ctx, VariantConfig("NT-No-SAM", m));

    std::printf("\n--- %s ---\n", MeasureName(m).c_str());
    std::printf("%-7s %-12s %-12s\n", "epoch", "NeuTraj", "NT-No-SAM");
    const size_t epochs = std::max(neutraj.stats.epochs.size(),
                                   no_sam.stats.epochs.size());
    for (size_t e = 0; e < epochs; ++e) {
      auto loss_at = [&](const TrainResult& r) {
        return e < r.epochs.size()
                   ? StrFormat("%.4f", r.epochs[e].mean_loss)
                   : std::string("-");
      };
      std::printf("%-7zu %-12s %-12s\n", e, loss_at(neutraj.stats).c_str(),
                  loss_at(no_sam.stats).c_str());
    }
  }
  return 0;
}
