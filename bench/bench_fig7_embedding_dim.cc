// Reproduces Fig. 7: HR@10 of NeuTraj vs NT-No-SAM as the embedding
// dimension d varies, on Fréchet, Hausdorff and DTW (porto).
// Expected shape: quality rises with d, then flattens / drops slightly once
// the model can overfit the limited seed pool (paper sweeps 8..256; the
// scaled run sweeps 8..64 — the same rise-and-flatten shape).

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Fig. 7 — sensitivity to embedding dimension d",
              "HR@10 vs d, NeuTraj vs NT-No-SAM, porto");

  const std::vector<size_t> dims = {8, 16, 32, 64};
  for (Measure m :
       {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
    ExperimentContext ctx = MakeContext("porto", m);
    const TopKWorkload workload = MakeWorkload(ctx);
    std::printf("\n--- %s ---\n", MeasureName(m).c_str());
    std::printf("%-6s %-10s %-10s\n", "d", "NeuTraj", "NT-No-SAM");
    for (size_t d : dims) {
      double hr[2] = {0, 0};
      int idx = 0;
      for (const std::string variant : {"NeuTraj", "NT-No-SAM"}) {
        NeuTrajConfig cfg = VariantConfig(variant, m);
        cfg.embedding_dim = d;
        Stopwatch sw;
        TrainedModel tm =
            TrainOrLoadModel(cfg, ctx.grid, ctx.split.seeds, ctx.seed_dists);
        std::printf("  [train %s d=%zu: %s %.1fs]\n", variant.c_str(), d,
                    tm.from_cache ? "cached" : "fresh", sw.ElapsedSeconds());
        hr[idx++] = workload.EvaluateModel(tm.model).hr10;
      }
      std::printf("%-6zu %-10.4f %-10.4f\n", d, hr[0], hr[1]);
    }
  }
  return 0;
}
