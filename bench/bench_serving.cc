// Serving benchmark: micro-batched encoding throughput over the wire.
//
// Starts a real loopback server twice against the same model + corpus:
//   - unbatched baseline: max_batch=1, no straggler window, one sequential
//     client issuing single Encode requests back to back — the
//     one-request-at-a-time cost every serving stack starts from;
//   - batched: max_batch=32 with a 200us straggler window and 8 concurrent
//     clients driving the pipelined EncodeMany path, so bursts coalesce
//     into real batches.
// Trajectories are kept short so the per-request transport + dispatch
// overhead — the cost micro-batching amortizes — is visible next to the
// O(L d^2) encode compute; that ratio, not raw model speed, is what this
// benchmark tracks. Emits BENCH_serving.json; exits non-zero unless the
// batched configuration sustains >= 2x the unbatched baseline.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "neutraj.h"

namespace {

using namespace neutraj;

constexpr size_t kEmbeddingDim = 8;
constexpr size_t kMaxTrajLen = 4;
constexpr size_t kPhaseRepeats = 5;  ///< Best-of, after one warm-up run.
const size_t kServerThreads =
    std::max<size_t>(1, std::thread::hardware_concurrency());
constexpr size_t kConcurrentClients = 8;
constexpr size_t kBurstSize = 64;
constexpr size_t kBurstsPerClient = 16;

struct PhaseResult {
  std::string name;
  size_t clients = 0;
  size_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double mean_batch = 0.0;
  uint64_t batches = 0;
};

/// Runs one serving phase: spins up a server with the given batching
/// options, hammers it with `clients` threads, and tears it down.
/// Pipelined clients send EncodeMany bursts; sequential clients send one
/// Encode at a time.
/// One timed pass: `clients` threads, each issuing its share of requests.
double TimedPass(const std::vector<Trajectory>& corpus, uint16_t port,
                 size_t clients, bool pipelined) {
  Stopwatch sw;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  const size_t per_client = kBurstSize * kBurstsPerClient;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      serve::Client client;
      client.Connect("127.0.0.1", port);
      if (pipelined) {
        std::vector<Trajectory> burst(kBurstSize);
        for (size_t b = 0; b < kBurstsPerClient; ++b) {
          for (size_t i = 0; i < kBurstSize; ++i) {
            burst[i] = corpus[(c * per_client + b * kBurstSize + i) %
                              corpus.size()];
          }
          client.EncodeMany(burst);
        }
      } else {
        for (size_t i = 0; i < per_client; ++i) {
          client.Encode(corpus[(c * per_client + i) % corpus.size()]);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return sw.ElapsedSeconds();
}

PhaseResult RunPhase(const std::string& name, const NeuTrajModel& model,
                     EmbeddingDatabase* db,
                     const std::vector<Trajectory>& corpus, size_t clients,
                     bool pipelined,
                     const serve::MicroBatcher::Options& batch_opts) {
  serve::QueryService service(model, db, batch_opts);
  serve::Server server(&service, serve::ServerOptions{});
  server.Start();
  const uint16_t port = server.port();

  const size_t total = clients * kBurstSize * kBurstsPerClient;
  // Warm-up pass (connections, allocator, branch history), then best-of-N
  // timed passes: short loopback runs are scheduler-noisy, and the minimum
  // is the usual way to strip that noise from a throughput figure.
  TimedPass(corpus, port, clients, pipelined);
  double best = TimedPass(corpus, port, clients, pipelined);
  for (size_t rep = 1; rep < kPhaseRepeats; ++rep) {
    best = std::min(best, TimedPass(corpus, port, clients, pipelined));
  }

  const serve::StatsSnapshot snap = service.Snapshot();
  server.Stop();

  PhaseResult r;
  r.name = name;
  r.clients = clients;
  r.requests = total;
  r.seconds = best;
  r.qps = static_cast<double>(total) / best;
  r.mean_batch = snap.mean_batch_size;
  r.batches = snap.batches;
  std::printf("  %-10s %zu clients  %5zu reqs  %6.3fs  %8.1f qps  "
              "(mean batch %.2f over %llu batches)\n",
              r.name.c_str(), r.clients, r.requests, r.seconds, r.qps,
              r.mean_batch, static_cast<unsigned long long>(r.batches));
  return r;
}

}  // namespace

int main() {
  std::printf("NeuTraj serving benchmark\n");
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());

  GeneratorConfig gen_cfg = PortoLikeConfig(0.4);
  gen_cfg.seed = 17;
  TrajectoryDataset data = GeneratePortoLike(gen_cfg);
  for (Trajectory& t : data.trajectories) {
    t = t.Downsampled(kMaxTrajLen);
  }
  data.RecomputeRegion();

  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = kEmbeddingDim;
  Grid grid(data.region.Inflated(50.0), 100.0);
  NeuTrajModel model(cfg, grid);
  Rng rng(29);
  model.InitializeWeights(&rng);

  EmbeddingDatabase db =
      EmbeddingDatabase::Build(model, data.trajectories, kServerThreads);
  std::printf("corpus: %zu trajectories (mean length %.1f, d=%zu)\n\n",
              data.size(), data.MeanLength(), db.dim());

  std::printf("[1/2] unbatched baseline (batch=1, 1 sequential client)\n");
  serve::MicroBatcher::Options unbatched;
  unbatched.threads = kServerThreads;
  unbatched.max_batch = 1;
  unbatched.max_wait_micros = 0;
  const PhaseResult base =
      RunPhase("unbatched", model, &db, data.trajectories, 1,
               /*pipelined=*/false, unbatched);

  std::printf("[2/2] micro-batched (batch=%zu, wait=200us, %zu pipelined "
              "clients)\n",
              kBurstSize, kConcurrentClients);
  serve::MicroBatcher::Options batched;
  batched.threads = kServerThreads;
  batched.max_batch = kBurstSize;
  batched.max_wait_micros = 200;
  const PhaseResult fast =
      RunPhase("batched", model, &db, data.trajectories, kConcurrentClients,
               /*pipelined=*/true, batched);

  const double speedup = fast.qps / base.qps;
  std::printf("\nbatched/unbatched throughput: %.2fx\n", speedup);

  FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"corpus_size\": %zu,\n  \"embedding_dim\": %zu,\n"
               "  \"server_threads\": %zu,\n  \"phases\": [\n",
               data.size(), db.dim(), kServerThreads);
  const PhaseResult* phases[] = {&base, &fast};
  for (size_t i = 0; i < 2; ++i) {
    const PhaseResult& r = *phases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"clients\": %zu, \"requests\": %zu, "
                 "\"seconds\": %.4f, \"qps\": %.1f, \"mean_batch\": %.3f, "
                 "\"batches\": %llu}%s\n",
                 r.name.c_str(), r.clients, r.requests, r.seconds, r.qps,
                 r.mean_batch, static_cast<unsigned long long>(r.batches),
                 i == 0 ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup\": %.3f\n}\n", speedup);
  std::fclose(f);
  std::printf("wrote BENCH_serving.json\n");
  return speedup >= 2.0 ? 0 : 1;
}
