// Serving benchmark: micro-batched encoding throughput over the wire.
//
// Starts a real loopback server twice against the same model + corpus:
//   - unbatched baseline: max_batch=1, no straggler window, one sequential
//     client issuing single Encode requests back to back — the
//     one-request-at-a-time cost every serving stack starts from;
//   - batched: max_batch=32 with a 200us straggler window and 8 concurrent
//     clients driving the pipelined EncodeMany path, so bursts coalesce
//     into real batches.
// Trajectories are kept short so the per-request transport + dispatch
// overhead — the cost micro-batching amortizes — is visible next to the
// O(L d^2) encode compute; that ratio, not raw model speed, is what this
// benchmark tracks. Emits BENCH_serving.json; exits non-zero unless the
// batched configuration sustains >= 2x the unbatched baseline.
//
// A third phase measures the durable-ack insert tax: the same embedding
// sequence appended to a plain in-memory EmbeddingDatabase versus through
// DurableStore (WAL append + fsync before ack). The encode step is excluded
// on purpose — it would dominate and hide the durability cost this phase
// exists to track.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "neutraj.h"

namespace {

using namespace neutraj;

constexpr size_t kEmbeddingDim = 8;
constexpr size_t kMaxTrajLen = 4;
constexpr size_t kPhaseRepeats = 5;  ///< Best-of, after one warm-up run.
const size_t kServerThreads =
    std::max<size_t>(1, std::thread::hardware_concurrency());
constexpr size_t kConcurrentClients = 8;
constexpr size_t kBurstSize = 64;
constexpr size_t kBurstsPerClient = 16;

struct PhaseResult {
  std::string name;
  size_t clients = 0;
  size_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double mean_batch = 0.0;
  uint64_t batches = 0;
};

/// Runs one serving phase: spins up a server with the given batching
/// options, hammers it with `clients` threads, and tears it down.
/// Pipelined clients send EncodeMany bursts; sequential clients send one
/// Encode at a time.
/// One timed pass: `clients` threads, each issuing its share of requests.
double TimedPass(const std::vector<Trajectory>& corpus, uint16_t port,
                 size_t clients, bool pipelined) {
  Stopwatch sw;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  const size_t per_client = kBurstSize * kBurstsPerClient;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      serve::Client client;
      client.Connect("127.0.0.1", port);
      if (pipelined) {
        std::vector<Trajectory> burst(kBurstSize);
        for (size_t b = 0; b < kBurstsPerClient; ++b) {
          for (size_t i = 0; i < kBurstSize; ++i) {
            burst[i] = corpus[(c * per_client + b * kBurstSize + i) %
                              corpus.size()];
          }
          client.EncodeMany(burst);
        }
      } else {
        for (size_t i = 0; i < per_client; ++i) {
          client.Encode(corpus[(c * per_client + i) % corpus.size()]);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return sw.ElapsedSeconds();
}

PhaseResult RunPhase(const std::string& name, const NeuTrajModel& model,
                     EmbeddingDatabase* db,
                     const std::vector<Trajectory>& corpus, size_t clients,
                     bool pipelined,
                     const serve::MicroBatcher::Options& batch_opts) {
  serve::QueryService service(model, db, batch_opts);
  serve::Server server(&service, serve::ServerOptions{});
  server.Start();
  const uint16_t port = server.port();

  const size_t total = clients * kBurstSize * kBurstsPerClient;
  // Warm-up pass (connections, allocator, branch history), then best-of-N
  // timed passes: short loopback runs are scheduler-noisy, and the minimum
  // is the usual way to strip that noise from a throughput figure.
  TimedPass(corpus, port, clients, pipelined);
  double best = TimedPass(corpus, port, clients, pipelined);
  for (size_t rep = 1; rep < kPhaseRepeats; ++rep) {
    best = std::min(best, TimedPass(corpus, port, clients, pipelined));
  }

  const serve::StatsSnapshot snap = service.Snapshot();
  server.Stop();

  PhaseResult r;
  r.name = name;
  r.clients = clients;
  r.requests = total;
  r.seconds = best;
  r.qps = static_cast<double>(total) / best;
  r.mean_batch = snap.mean_batch_size;
  r.batches = snap.batches;
  std::printf("  %-10s %zu clients  %5zu reqs  %6.3fs  %8.1f qps  "
              "(mean batch %.2f over %llu batches)\n",
              r.name.c_str(), r.clients, r.requests, r.seconds, r.qps,
              r.mean_batch, static_cast<unsigned long long>(r.batches));
  return r;
}

struct InsertResult {
  size_t inserts = 0;
  double plain_qps = 0.0;
  double durable_qps = 0.0;
  double overhead = 0.0;  ///< plain_qps / durable_qps (>= 1: the ack tax).
};

/// Phase 3: durable-ack insert overhead, measured without the encode step.
InsertResult RunInsertPhase(const EmbeddingDatabase& source) {
  constexpr size_t kDurableInserts = 1000;
  std::vector<nn::Vector> rows;
  rows.reserve(kDurableInserts);
  for (size_t i = 0; i < kDurableInserts; ++i) {
    rows.push_back(source.embeddings()[i % source.size()]);
  }

  InsertResult r;
  r.inserts = kDurableInserts;
  {
    EmbeddingDatabase plain;
    Stopwatch sw;
    for (const nn::Vector& v : rows) plain.Insert(v);
    r.plain_qps = static_cast<double>(kDurableInserts) / sw.ElapsedSeconds();
  }
  {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "neutraj_bench_store")
            .string();
    std::filesystem::remove_all(dir);
    EmbeddingDatabase db;
    store::DurableStore::Options opts;
    opts.data_dir = dir;
    store::DurableStore durable(&db, opts);
    durable.Open();
    Stopwatch sw;
    for (const nn::Vector& v : rows) durable.Insert(v);
    r.durable_qps = static_cast<double>(kDurableInserts) / sw.ElapsedSeconds();
    std::filesystem::remove_all(dir);
  }
  r.overhead = r.plain_qps / r.durable_qps;
  std::printf("  plain    %6zu inserts  %10.1f qps\n", r.inserts, r.plain_qps);
  std::printf("  durable  %6zu inserts  %10.1f qps  (%.1fx ack tax: "
              "WAL append + fsync)\n",
              r.inserts, r.durable_qps, r.overhead);
  return r;
}

}  // namespace

int main() {
  std::printf("NeuTraj serving benchmark\n");
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());

  GeneratorConfig gen_cfg = PortoLikeConfig(0.4);
  gen_cfg.seed = 17;
  TrajectoryDataset data = GeneratePortoLike(gen_cfg);
  for (Trajectory& t : data.trajectories) {
    t = t.Downsampled(kMaxTrajLen);
  }
  data.RecomputeRegion();

  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = kEmbeddingDim;
  Grid grid(data.region.Inflated(50.0), 100.0);
  NeuTrajModel model(cfg, grid);
  Rng rng(29);
  model.InitializeWeights(&rng);

  EmbeddingDatabase db =
      EmbeddingDatabase::Build(model, data.trajectories, kServerThreads);
  std::printf("corpus: %zu trajectories (mean length %.1f, d=%zu)\n\n",
              data.size(), data.MeanLength(), db.dim());

  std::printf("[1/3] unbatched baseline (batch=1, 1 sequential client)\n");
  serve::MicroBatcher::Options unbatched;
  unbatched.threads = kServerThreads;
  unbatched.max_batch = 1;
  unbatched.max_wait_micros = 0;
  const PhaseResult base =
      RunPhase("unbatched", model, &db, data.trajectories, 1,
               /*pipelined=*/false, unbatched);

  std::printf("[2/3] micro-batched (batch=%zu, wait=200us, %zu pipelined "
              "clients)\n",
              kBurstSize, kConcurrentClients);
  serve::MicroBatcher::Options batched;
  batched.threads = kServerThreads;
  batched.max_batch = kBurstSize;
  batched.max_wait_micros = 200;
  const PhaseResult fast =
      RunPhase("batched", model, &db, data.trajectories, kConcurrentClients,
               /*pipelined=*/true, batched);

  std::printf("[3/3] durable-ack insert overhead (WAL fsync before ack)\n");
  const InsertResult ins = RunInsertPhase(db);

  const double speedup = fast.qps / base.qps;
  std::printf("\nbatched/unbatched throughput: %.2fx\n", speedup);

  FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"corpus_size\": %zu,\n  \"embedding_dim\": %zu,\n"
               "  \"server_threads\": %zu,\n  \"phases\": [\n",
               data.size(), db.dim(), kServerThreads);
  const PhaseResult* phases[] = {&base, &fast};
  for (size_t i = 0; i < 2; ++i) {
    const PhaseResult& r = *phases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"clients\": %zu, \"requests\": %zu, "
                 "\"seconds\": %.4f, \"qps\": %.1f, \"mean_batch\": %.3f, "
                 "\"batches\": %llu}%s\n",
                 r.name.c_str(), r.clients, r.requests, r.seconds, r.qps,
                 r.mean_batch, static_cast<unsigned long long>(r.batches),
                 i == 0 ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f,
               "  \"durable_inserts\": %zu,\n  \"insert_plain_qps\": %.1f,\n"
               "  \"insert_durable_qps\": %.1f,\n"
               "  \"durable_insert_overhead\": %.3f\n}\n",
               ins.inserts, ins.plain_qps, ins.durable_qps, ins.overhead);
  std::fclose(f);
  std::printf("wrote BENCH_serving.json\n");
  return speedup >= 2.0 ? 0 : 1;
}
