// Serving benchmark: micro-batched encoding throughput over the wire, the
// durable-ack insert tax, and million-scale retrieval.
//
// Phases 1-2 start a real loopback server twice against the same model +
// corpus:
//   - unbatched baseline: max_batch=1, no straggler window, one sequential
//     client issuing single Encode requests back to back — the
//     one-request-at-a-time cost every serving stack starts from;
//   - batched: max_batch=32 with a 200us straggler window and 8 concurrent
//     clients driving the pipelined EncodeMany path, so bursts coalesce
//     into real batches.
// Trajectories are kept short so the per-request transport + dispatch
// overhead — the cost micro-batching amortizes — is visible next to the
// O(L d^2) encode compute; that ratio, not raw model speed, is what this
// benchmark tracks. Each phase also reports the server-side p50/p99 encode
// latency from the endpoint histogram snapshot.
//
// Phase 3 measures the durable-ack insert tax: the same embedding sequence
// appended to a plain in-memory EmbeddingDatabase versus through
// DurableStore (WAL append + fsync before ack). The encode step is excluded
// on purpose — it would dominate and hide the durability cost this phase
// exists to track.
//
// Phase 4 is the retrieval subsystem at the scale it was built for: a
// seeded, clustered 1M x dim-8 synthetic corpus queried three ways —
//   - exact: the flat EmbeddingDatabase O(N * d) scan (the baseline and the
//     ground truth for recall);
//   - sharded: ShardedEmbeddingDatabase scatter-gather, which must return
//     BIT-IDENTICAL results to the exact scan (a correctness gate — on one
//     box it is the same total work, the shards buy lock scaling);
//   - ivf: IvfBackend — IVF probe over the int8 quantized tier, then exact
//     float re-rank, so scores match the exact path and only recall is
//     approximate.
// Reports qps and per-query p50/p99 per backend plus recall@10 for the ANN
// path, and records the knobs (shards, nlist, nprobe, rerank, seed, kernel)
// next to the numbers in BENCH_serving.json.
//
// Phase 5 is the request-tracing overhead gate: the batched phase re-run
// with the tracer configured off and again with 1-in-64 head sampling.
// Tracing off must cost <= 1% against the phase-2 baseline (the same
// configuration — this bounds the sampler's fast path, one branch per
// request, at the measurement noise floor) and 1-in-64 sampling <= 2%.
// The phase also pins that served bytes are bit-identical with a sampled
// trace context attached versus none: the serialized replies to the same
// query must match byte for byte.
//
// Exit status is the acceptance gate: batched >= 2x unbatched, the sharded
// scan bit-identical to exact, IVF+int8 >= 10x exact-scan qps at
// recall@10 >= 0.95, tracing overhead within budget, and traced/untraced
// served bytes identical.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "neutraj.h"

namespace {

using namespace neutraj;

constexpr size_t kEmbeddingDim = 8;
constexpr size_t kMaxTrajLen = 4;
constexpr size_t kPhaseRepeats = 5;  ///< Best-of, after one warm-up run.
const size_t kServerThreads =
    std::max<size_t>(1, std::thread::hardware_concurrency());
constexpr size_t kConcurrentClients = 8;
constexpr size_t kBurstSize = 64;
constexpr size_t kBurstsPerClient = 16;

// Phase 4 (retrieval) shape: a clustered corpus — the regime IVF exists
// for — with queries drawn as small perturbations of corpus rows, the way
// trajectory-similarity queries sit near the embedding manifold.
constexpr size_t kRetrievalCorpus = 1000000;
constexpr size_t kRetrievalCenters = 200;
constexpr double kCenterSigma = 4.0;
constexpr double kSpreadSigma = 0.3;
constexpr uint64_t kRetrievalSeed = 97;
constexpr size_t kRetrievalQueries = 64;
constexpr size_t kRetrievalK = 10;
constexpr size_t kRetrievalRepeats = 3;  ///< Best-of, after one warm-up.
constexpr size_t kShards = 8;

struct PhaseResult {
  std::string name;
  size_t clients = 0;
  size_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double mean_batch = 0.0;
  uint64_t batches = 0;
  double p50_micros = 0.0;  ///< Server-side encode endpoint latency.
  double p99_micros = 0.0;
};

/// Runs one serving phase: spins up a server with the given batching
/// options, hammers it with `clients` threads, and tears it down.
/// Pipelined clients send EncodeMany bursts; sequential clients send one
/// Encode at a time.
/// One timed pass: `clients` threads, each issuing its share of requests.
double TimedPass(const std::vector<Trajectory>& corpus, uint16_t port,
                 size_t clients, bool pipelined) {
  Stopwatch sw;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  const size_t per_client = kBurstSize * kBurstsPerClient;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      serve::Client client;
      client.Connect("127.0.0.1", port);
      if (pipelined) {
        std::vector<Trajectory> burst(kBurstSize);
        for (size_t b = 0; b < kBurstsPerClient; ++b) {
          for (size_t i = 0; i < kBurstSize; ++i) {
            burst[i] = corpus[(c * per_client + b * kBurstSize + i) %
                              corpus.size()];
          }
          client.EncodeMany(burst);
        }
      } else {
        for (size_t i = 0; i < per_client; ++i) {
          client.Encode(corpus[(c * per_client + i) % corpus.size()]);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return sw.ElapsedSeconds();
}

PhaseResult RunPhase(const std::string& name, const NeuTrajModel& model,
                     EmbeddingDatabase* db,
                     const std::vector<Trajectory>& corpus, size_t clients,
                     bool pipelined,
                     const serve::MicroBatcher::Options& batch_opts,
                     uint32_t trace_sample_every = 0) {
  serve::QueryService service(model, db, batch_opts);
  if (trace_sample_every > 0) {
    obs::ReqTraceOptions topts;
    topts.sample_every = trace_sample_every;
    service.ConfigureTracing(topts);
  }
  serve::Server server(&service, serve::ServerOptions{});
  server.Start();
  const uint16_t port = server.port();

  const size_t total = clients * kBurstSize * kBurstsPerClient;
  // Warm-up pass (connections, allocator, branch history), then best-of-N
  // timed passes: short loopback runs are scheduler-noisy, and the minimum
  // is the usual way to strip that noise from a throughput figure.
  TimedPass(corpus, port, clients, pipelined);
  double best = TimedPass(corpus, port, clients, pipelined);
  for (size_t rep = 1; rep < kPhaseRepeats; ++rep) {
    best = std::min(best, TimedPass(corpus, port, clients, pipelined));
  }

  const serve::StatsSnapshot snap = service.Snapshot();
  server.Stop();

  PhaseResult r;
  r.name = name;
  r.clients = clients;
  r.requests = total;
  r.seconds = best;
  r.qps = static_cast<double>(total) / best;
  r.mean_batch = snap.mean_batch_size;
  r.batches = snap.batches;
  // The encode endpoint histogram spans warm-up + all passes — it is a
  // latency distribution, where best-of would make no sense anyway.
  for (const serve::EndpointSnapshot& es : snap.endpoints) {
    if (es.name == "encode") {
      r.p50_micros = es.p50_micros;
      r.p99_micros = es.p99_micros;
    }
  }
  std::printf("  %-10s %zu clients  %5zu reqs  %6.3fs  %8.1f qps  "
              "p50 %.0fus  p99 %.0fus  (mean batch %.2f over %llu batches)\n",
              r.name.c_str(), r.clients, r.requests, r.seconds, r.qps,
              r.p50_micros, r.p99_micros, r.mean_batch,
              static_cast<unsigned long long>(r.batches));
  return r;
}

struct InsertResult {
  size_t inserts = 0;
  double plain_qps = 0.0;
  double durable_qps = 0.0;
  double overhead = 0.0;  ///< plain_qps / durable_qps (>= 1: the ack tax).
};

/// Phase 3: durable-ack insert overhead, measured without the encode step.
InsertResult RunInsertPhase(const EmbeddingDatabase& source) {
  constexpr size_t kDurableInserts = 1000;
  std::vector<nn::Vector> rows;
  rows.reserve(kDurableInserts);
  for (size_t i = 0; i < kDurableInserts; ++i) {
    rows.push_back(source.embeddings()[i % source.size()]);
  }

  InsertResult r;
  r.inserts = kDurableInserts;
  {
    EmbeddingDatabase plain;
    Stopwatch sw;
    for (const nn::Vector& v : rows) plain.Insert(v);
    r.plain_qps = static_cast<double>(kDurableInserts) / sw.ElapsedSeconds();
  }
  {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "neutraj_bench_store")
            .string();
    std::filesystem::remove_all(dir);
    EmbeddingDatabase db;
    store::DurableStore::Options opts;
    opts.data_dir = dir;
    store::DurableStore durable(&db, opts);
    durable.Open();
    Stopwatch sw;
    for (const nn::Vector& v : rows) durable.Insert(v);
    r.durable_qps = static_cast<double>(kDurableInserts) / sw.ElapsedSeconds();
    std::filesystem::remove_all(dir);
  }
  r.overhead = r.plain_qps / r.durable_qps;
  std::printf("  plain    %6zu inserts  %10.1f qps\n", r.inserts, r.plain_qps);
  std::printf("  durable  %6zu inserts  %10.1f qps  (%.1fx ack tax: "
              "WAL append + fsync)\n",
              r.inserts, r.durable_qps, r.overhead);
  return r;
}

// ---------------------------------------------------------------------------
// Phase 4: million-scale retrieval.

struct LatencyStats {
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
};

struct RetrievalResult {
  retrieval::IvfIndex::Options ivf;  ///< Knobs, recorded with the numbers.
  double build_seconds = 0.0;
  LatencyStats exact;
  LatencyStats sharded;
  bool sharded_identical = false;
  LatencyStats ivf_stats;
  double recall = 0.0;       ///< recall@kRetrievalK vs the exact scan.
  double ivf_speedup = 0.0;  ///< ivf qps / exact qps.
};

/// Nearest-rank percentile of `micros` (q in (0, 1]).
double Percentile(std::vector<double> micros, double q) {
  if (micros.empty()) return 0.0;
  std::sort(micros.begin(), micros.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(micros.size())));
  return micros[std::min(micros.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Times `run(i)` for i in [0, n): one warm-up pass, then best-of-N passes
/// by total wall time; p50/p99 come from the per-query latencies of the
/// best pass.
LatencyStats MeasureQueries(size_t n, const std::function<void(size_t)>& run) {
  for (size_t i = 0; i < n; ++i) run(i);
  LatencyStats best;
  double best_seconds = 0.0;
  for (size_t rep = 0; rep < kRetrievalRepeats; ++rep) {
    std::vector<double> lat(n);
    Stopwatch total;
    for (size_t i = 0; i < n; ++i) {
      Stopwatch sw;
      run(i);
      lat[i] = sw.ElapsedSeconds() * 1e6;
    }
    const double seconds = total.ElapsedSeconds();
    if (rep == 0 || seconds < best_seconds) {
      best_seconds = seconds;
      best.qps = static_cast<double>(n) / seconds;
      best.p50_micros = Percentile(lat, 0.5);
      best.p99_micros = Percentile(lat, 0.99);
    }
  }
  return best;
}

RetrievalResult RunRetrievalPhase() {
  RetrievalResult r;
  r.ivf.nlist = 256;
  r.ivf.train_sample = 20000;
  r.ivf.kmeans_iters = 6;
  r.ivf.seed = 42;
  r.ivf.default_nprobe = 16;
  r.ivf.rerank = 128;

  // Seeded clustered corpus: centers well separated (sigma 4) next to the
  // in-cluster spread (sigma 0.3); queries perturbed off corpus rows.
  Rng rng(kRetrievalSeed);
  std::vector<nn::Vector> centers(kRetrievalCenters,
                                  nn::Vector(kEmbeddingDim));
  for (nn::Vector& c : centers) {
    for (double& x : c) x = rng.Gaussian(0.0, kCenterSigma);
  }
  std::vector<nn::Vector> rows;
  rows.reserve(kRetrievalCorpus);
  for (size_t i = 0; i < kRetrievalCorpus; ++i) {
    nn::Vector v = centers[i % centers.size()];
    for (double& x : v) x += rng.Gaussian(0.0, kSpreadSigma);
    rows.push_back(std::move(v));
  }
  std::vector<nn::Vector> queries(kRetrievalQueries,
                                  nn::Vector(kEmbeddingDim));
  for (nn::Vector& q : queries) {
    const nn::Vector& base = rows[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(kRetrievalCorpus) - 1))];
    for (size_t d = 0; d < kEmbeddingDim; ++d) {
      q[d] = base[d] + rng.Gaussian(0.0, 0.1);
    }
  }

  EmbeddingDatabase exact_db;
  for (const nn::Vector& v : rows) exact_db.Insert(v);

  // Ground truth (and recall reference): the exact scan's answers.
  std::vector<SearchResult> truth(kRetrievalQueries);
  for (size_t i = 0; i < kRetrievalQueries; ++i) {
    truth[i] = exact_db.TopK(queries[i], kRetrievalK);
  }

  r.exact = MeasureQueries(kRetrievalQueries, [&](size_t i) {
    exact_db.TopK(queries[i], kRetrievalK);
  });
  std::printf("  exact    %8.1f qps  p50 %.0fus  p99 %.0fus  "
              "(flat O(N*d) scan)\n",
              r.exact.qps, r.exact.p50_micros, r.exact.p99_micros);

  // Sharded scatter-gather, scoped so its corpus copy is freed before the
  // IVF build (caps peak memory at two corpus copies).
  {
    retrieval::ShardedEmbeddingDatabase sharded(kShards);
    sharded.BulkLoad(rows);
    ThreadPool pool(kServerThreads);
    r.sharded_identical = true;
    for (size_t i = 0; i < kRetrievalQueries; ++i) {
      const SearchResult got =
          sharded.TopK(queries[i], kRetrievalK, -1, &pool);
      if (got.ids != truth[i].ids || got.dists != truth[i].dists) {
        r.sharded_identical = false;
      }
    }
    r.sharded = MeasureQueries(kRetrievalQueries, [&](size_t i) {
      sharded.TopK(queries[i], kRetrievalK, -1, &pool);
    });
    std::printf("  sharded  %8.1f qps  p50 %.0fus  p99 %.0fus  "
                "(%zu shards, bit-identical: %s)\n",
                r.sharded.qps, r.sharded.p50_micros, r.sharded.p99_micros,
                kShards, r.sharded_identical ? "yes" : "NO");
  }
  std::vector<nn::Vector>().swap(rows);

  retrieval::IvfBackend ivf(&exact_db, r.ivf);
  {
    Stopwatch sw;
    ivf.Build(kServerThreads);
    r.build_seconds = sw.ElapsedSeconds();
  }
  std::printf("  ivf build: %.2fs  (nlist=%zu, sample=%zu, seed=%llu, "
              "kernel=%s)\n",
              r.build_seconds, ivf.index().nlist(), r.ivf.train_sample,
              static_cast<unsigned long long>(r.ivf.seed),
              retrieval::QuantizedKernelName());

  size_t hits = 0;
  for (size_t i = 0; i < kRetrievalQueries; ++i) {
    const SearchResult got = ivf.TopK(queries[i], kRetrievalK, -1, 0);
    for (size_t id : got.ids) {
      if (std::find(truth[i].ids.begin(), truth[i].ids.end(), id) !=
          truth[i].ids.end()) {
        ++hits;
      }
    }
  }
  r.recall = static_cast<double>(hits) /
             static_cast<double>(kRetrievalQueries * kRetrievalK);

  r.ivf_stats = MeasureQueries(kRetrievalQueries, [&](size_t i) {
    ivf.TopK(queries[i], kRetrievalK, -1, 0);
  });
  r.ivf_speedup = r.ivf_stats.qps / r.exact.qps;
  std::printf("  ivf      %8.1f qps  p50 %.0fus  p99 %.0fus  "
              "(nprobe=%zu, rerank=%zu, recall@%zu %.4f, %.1fx exact)\n",
              r.ivf_stats.qps, r.ivf_stats.p50_micros,
              r.ivf_stats.p99_micros, r.ivf.default_nprobe, r.ivf.rerank,
              kRetrievalK, r.recall, r.ivf_speedup);
  return r;
}

}  // namespace

int main() {
  std::printf("NeuTraj serving benchmark\n");
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());

  GeneratorConfig gen_cfg = PortoLikeConfig(0.4);
  gen_cfg.seed = 17;
  TrajectoryDataset data = GeneratePortoLike(gen_cfg);
  for (Trajectory& t : data.trajectories) {
    t = t.Downsampled(kMaxTrajLen);
  }
  data.RecomputeRegion();

  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = kEmbeddingDim;
  Grid grid(data.region.Inflated(50.0), 100.0);
  NeuTrajModel model(cfg, grid);
  Rng rng(29);
  model.InitializeWeights(&rng);

  EmbeddingDatabase db =
      EmbeddingDatabase::Build(model, data.trajectories, kServerThreads);
  std::printf("corpus: %zu trajectories (mean length %.1f, d=%zu)\n\n",
              data.size(), data.MeanLength(), db.dim());

  std::printf("[1/5] unbatched baseline (batch=1, 1 sequential client)\n");
  serve::MicroBatcher::Options unbatched;
  unbatched.threads = kServerThreads;
  unbatched.max_batch = 1;
  unbatched.max_wait_micros = 0;
  const PhaseResult base =
      RunPhase("unbatched", model, &db, data.trajectories, 1,
               /*pipelined=*/false, unbatched);

  std::printf("[2/5] micro-batched (batch=%zu, wait=200us, %zu pipelined "
              "clients)\n",
              kBurstSize, kConcurrentClients);
  serve::MicroBatcher::Options batched;
  batched.threads = kServerThreads;
  batched.max_batch = kBurstSize;
  batched.max_wait_micros = 200;
  const PhaseResult fast =
      RunPhase("batched", model, &db, data.trajectories, kConcurrentClients,
               /*pipelined=*/true, batched);

  std::printf("[3/5] durable-ack insert overhead (WAL fsync before ack)\n");
  const InsertResult ins = RunInsertPhase(db);

  std::printf("[4/5] million-scale retrieval (%zu rows, d=%zu, %zu queries, "
              "k=%zu)\n",
              kRetrievalCorpus, kEmbeddingDim, kRetrievalQueries, kRetrievalK);
  const RetrievalResult ret = RunRetrievalPhase();

  std::printf("[5/5] request-tracing overhead (batched phase re-run)\n");
  const PhaseResult trace_off =
      RunPhase("trace-off", model, &db, data.trajectories,
               kConcurrentClients, /*pipelined=*/true, batched);
  const PhaseResult trace_sampled =
      RunPhase("trace-1/64", model, &db, data.trajectories,
               kConcurrentClients, /*pipelined=*/true, batched,
               /*trace_sample_every=*/64);
  // Overheads are clamped at zero: a re-run beating its baseline is noise,
  // not a negative cost.
  const double off_overhead = std::max(0.0, fast.qps / trace_off.qps - 1.0);
  const double sampled_overhead =
      std::max(0.0, trace_off.qps / trace_sampled.qps - 1.0);

  // Served-bytes identity: the same query answered with a sampled trace
  // context and with none must serialize to the same reply bytes.
  bool served_identical = true;
  {
    serve::QueryService service(model, &db, batched);
    obs::ReqTraceOptions topts;
    topts.sample_every = 1;
    service.ConfigureTracing(topts);
    serve::Server server(&service, serve::ServerOptions{});
    server.Start();
    serve::Client plain;
    serve::Client traced;
    plain.Connect("127.0.0.1", server.port());
    traced.Connect("127.0.0.1", server.port());
    traced.set_trace_context({0x5eed1234, /*sampled=*/true});
    for (size_t i = 0; i < 32; ++i) {
      const Trajectory& t = data.trajectories[i % data.trajectories.size()];
      const std::string a =
          serve::SerializeEncodeResponse({plain.Encode(t)});
      const std::string b =
          serve::SerializeEncodeResponse({traced.Encode(t)});
      if (a != b) served_identical = false;
    }
    plain.Close();
    traced.Close();
    server.Stop();
  }
  std::printf("  trace-off  %8.1f qps  (%.2f%% vs batched baseline)\n",
              trace_off.qps, off_overhead * 100.0);
  std::printf("  trace-1/64 %8.1f qps  (%.2f%% vs trace-off)  "
              "served bytes identical: %s\n",
              trace_sampled.qps, sampled_overhead * 100.0,
              served_identical ? "yes" : "NO");

  const double speedup = fast.qps / base.qps;
  std::printf("\nbatched/unbatched throughput: %.2fx\n", speedup);
  std::printf("ivf/exact retrieval throughput: %.2fx at recall@%zu %.4f\n",
              ret.ivf_speedup, kRetrievalK, ret.recall);

  FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"corpus_size\": %zu,\n  \"embedding_dim\": %zu,\n"
               "  \"server_threads\": %zu,\n  \"phases\": [\n",
               data.size(), db.dim(), kServerThreads);
  const PhaseResult* phases[] = {&base, &fast};
  for (size_t i = 0; i < 2; ++i) {
    const PhaseResult& r = *phases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"clients\": %zu, \"requests\": %zu, "
                 "\"seconds\": %.4f, \"qps\": %.1f, \"p50_micros\": %.1f, "
                 "\"p99_micros\": %.1f, \"mean_batch\": %.3f, "
                 "\"batches\": %llu}%s\n",
                 r.name.c_str(), r.clients, r.requests, r.seconds, r.qps,
                 r.p50_micros, r.p99_micros, r.mean_batch,
                 static_cast<unsigned long long>(r.batches),
                 i == 0 ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f,
               "  \"tracing\": {\"off_qps\": %.1f, \"sampled64_qps\": %.1f, "
               "\"off_overhead\": %.4f, \"sampled64_overhead\": %.4f, "
               "\"served_bytes_identical\": %s},\n",
               trace_off.qps, trace_sampled.qps, off_overhead,
               sampled_overhead, served_identical ? "true" : "false");
  std::fprintf(f,
               "  \"durable_inserts\": %zu,\n  \"insert_plain_qps\": %.1f,\n"
               "  \"insert_durable_qps\": %.1f,\n"
               "  \"durable_insert_overhead\": %.3f,\n",
               ins.inserts, ins.plain_qps, ins.durable_qps, ins.overhead);
  std::fprintf(f,
               "  \"retrieval\": {\n"
               "    \"corpus\": %zu,\n    \"dim\": %zu,\n"
               "    \"queries\": %zu,\n    \"k\": %zu,\n"
               "    \"shards\": %zu,\n    \"nlist\": %zu,\n"
               "    \"nprobe\": %zu,\n    \"rerank\": %zu,\n"
               "    \"seed\": %llu,\n    \"kernel\": \"%s\",\n"
               "    \"build_seconds\": %.3f,\n",
               kRetrievalCorpus, kEmbeddingDim, kRetrievalQueries, kRetrievalK,
               kShards, ret.ivf.nlist, ret.ivf.default_nprobe, ret.ivf.rerank,
               static_cast<unsigned long long>(ret.ivf.seed),
               retrieval::QuantizedKernelName(), ret.build_seconds);
  std::fprintf(f,
               "    \"exact\": {\"qps\": %.1f, \"p50_micros\": %.1f, "
               "\"p99_micros\": %.1f},\n"
               "    \"sharded\": {\"qps\": %.1f, \"p50_micros\": %.1f, "
               "\"p99_micros\": %.1f, \"bit_identical\": %s},\n"
               "    \"ivf\": {\"qps\": %.1f, \"p50_micros\": %.1f, "
               "\"p99_micros\": %.1f},\n"
               "    \"recall_at_k\": %.4f,\n    \"ivf_speedup\": %.3f\n"
               "  }\n}\n",
               ret.exact.qps, ret.exact.p50_micros, ret.exact.p99_micros,
               ret.sharded.qps, ret.sharded.p50_micros,
               ret.sharded.p99_micros,
               ret.sharded_identical ? "true" : "false", ret.ivf_stats.qps,
               ret.ivf_stats.p50_micros, ret.ivf_stats.p99_micros, ret.recall,
               ret.ivf_speedup);
  std::fclose(f);
  std::printf("wrote BENCH_serving.json\n");

  const bool trace_ok = off_overhead <= 0.01 && sampled_overhead <= 0.02 &&
                        served_identical;
  const bool ok = speedup >= 2.0 && ret.sharded_identical &&
                  ret.ivf_speedup >= 10.0 && ret.recall >= 0.95 && trace_ok;
  if (!ok) {
    std::fprintf(stderr,
                 "GATE FAILED: batched %.2fx (need >= 2), sharded identical "
                 "%d, ivf %.2fx (need >= 10) at recall %.4f (need >= 0.95), "
                 "trace off %.2f%% (need <= 1%%), trace 1/64 %.2f%% (need "
                 "<= 2%%), served bytes identical %d\n",
                 speedup, static_cast<int>(ret.sharded_identical),
                 ret.ivf_speedup, ret.recall, off_overhead * 100.0,
                 sampled_overhead * 100.0,
                 static_cast<int>(served_identical));
  }
  return ok ? 0 : 1;
}
