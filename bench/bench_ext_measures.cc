// Extension experiment (beyond the paper's tables): genericity check.
// The paper claims NeuTraj accommodates *any* trajectory measure; this
// bench trains it on two measures outside the paper's evaluation — EDR and
// LCSS (threshold-based edit measures) — and reports the same top-k quality
// metrics. Expected shape: accuracies in the same band as the paper's four
// measures; slightly lower is plausible since both measures are integer /
// coarsely quantized, which flattens the guidance signal.

#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace neutraj;
  using namespace neutraj::bench;
  PrintBanner("Extension — generic measures",
              "NeuTraj trained on EDR and LCSS (not in the paper's tables)");

  std::printf("\n%-8s %-10s %-8s %-8s %-8s\n", "measure", "method", "HR@10",
              "HR@50", "R10@50");
  for (Measure m : {Measure::kEdr, Measure::kLcss}) {
    ExperimentContext ctx = MakeContext("porto", m);
    const TopKWorkload workload = MakeWorkload(ctx);
    for (const std::string variant : {"Siamese", "NeuTraj"}) {
      TrainedModel tm = GetModel(ctx, VariantConfig(variant, m));
      const TopKQuality q = workload.EvaluateModel(tm.model);
      std::printf("%-8s %-10s %-8.4f %-8.4f %-8.4f\n",
                  MeasureName(m).c_str(), variant.c_str(), q.hr10, q.hr50,
                  q.r10_at_50);
    }
  }
  return 0;
}
