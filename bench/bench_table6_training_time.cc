// Reproduces Table VI: offline cost of each neural method on the porto
// dataset under the Fréchet distance — per-epoch training time, epochs to
// converge, total training time, and the time to embed a large corpus with
// the trained model. Expected shape: NeuTraj's epoch is slower than the
// plain-LSTM variants (SAM overhead) but it converges in far fewer epochs
// than Siamese; SAM-based embedding is moderately slower per trajectory.

#include <cstdio>

#include "exp_common.h"

namespace {

using namespace neutraj;
using namespace neutraj::bench;

/// Epochs-to-converge: first epoch whose loss is within 5% of the best
/// loss seen over the whole run (a simple, deterministic convergence
/// criterion applied to the recorded loss curve).
size_t EpochsToConverge(const TrainResult& stats) {
  double best = std::numeric_limits<double>::infinity();
  for (const EpochStats& e : stats.epochs) best = std::min(best, e.mean_loss);
  for (const EpochStats& e : stats.epochs) {
    if (e.mean_loss <= best * 1.05) return e.epoch + 1;
  }
  return stats.epochs.size();
}

}  // namespace

int main() {
  PrintBanner("Table VI — offline training and embedding time",
              "porto / Frechet; embedding corpus scaled from the paper's 200k");

  ExperimentContext ctx = MakeContext("porto", Measure::kFrechet);

  // The embedding corpus (paper: 200k trajectories; scaled here).
  GeneratorConfig gen = PortoLikeConfig(1.0);
  gen.num_trajectories = 20000;
  gen.num_popular_routes = 120;
  gen.seed = 31337;
  TrajectoryDataset big = GeneratePortoLike(gen);

  std::printf("\n%-10s %-12s %-9s %-12s %-16s\n", "Method", "t_epoch(s)",
              "#epoch", "t_total(s)", "embed 20k (s)");
  for (const std::string variant :
       {"Siamese", "NeuTraj", "NT-No-SAM", "NT-No-WS"}) {
    TrainedModel tm = GetModel(ctx, VariantConfig(variant, Measure::kFrechet));
    double epoch_mean = 0.0;
    for (const EpochStats& e : tm.stats.epochs) epoch_mean += e.seconds;
    epoch_mean /= static_cast<double>(std::max<size_t>(1, tm.stats.epochs.size()));

    Stopwatch sw;
    const auto embeds = tm.model.EmbedAll(big.trajectories);
    const double embed_s = sw.ElapsedSeconds();
    (void)embeds;

    std::printf("%-10s %-12.1f %-9zu %-12.1f %-16.1f\n", variant.c_str(),
                epoch_mean, EpochsToConverge(tm.stats),
                tm.stats.total_seconds, embed_s);
  }
  std::printf("\nNote: cached models report the training times recorded when "
              "they were first trained.\n");
  return 0;
}
