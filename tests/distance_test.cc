// Tests for the exact distance measures: closed-form fixtures plus
// property sweeps (metric axioms, known inter-measure inequalities).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "distance/measures.h"
#include "distance/pairwise.h"
#include "test_util.h"

namespace neutraj {
namespace {

Trajectory Line(std::initializer_list<std::pair<double, double>> pts) {
  Trajectory t;
  for (const auto& [x, y] : pts) t.Append(Point(x, y));
  return t;
}

// ---- Closed-form fixtures ---------------------------------------------------

TEST(DtwTest, SinglePointPairs) {
  EXPECT_DOUBLE_EQ(DtwDistance(Line({{0, 0}}), Line({{3, 4}})), 5.0);
}

TEST(DtwTest, IdenticalTrajectoriesAreZero) {
  const Trajectory t = Line({{0, 0}, {1, 1}, {2, 0}});
  EXPECT_DOUBLE_EQ(DtwDistance(t, t), 0.0);
}

TEST(DtwTest, KnownAlignment) {
  // a = [(0,0), (1,0)], b = [(0,0), (1,0), (2,0)].
  // Best warp aligns (0,0)->(0,0), (1,0)->(1,0), (1,0)->(2,0): cost 1.
  EXPECT_DOUBLE_EQ(
      DtwDistance(Line({{0, 0}, {1, 0}}), Line({{0, 0}, {1, 0}, {2, 0}})), 1.0);
}

TEST(DtwTest, StretchingToleratesRepetition) {
  // DTW should ignore repeated samples of the same location.
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = Line({{0, 0}, {0, 0}, {1, 0}, {1, 0}, {2, 0}});
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 0.0);
}

TEST(FrechetTest, SinglePointPairs) {
  EXPECT_DOUBLE_EQ(FrechetDistance(Line({{0, 0}}), Line({{3, 4}})), 5.0);
}

TEST(FrechetTest, ParallelSegments) {
  // Two parallel horizontal 3-point lines 2 apart: Fréchet = 2.
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = Line({{0, 2}, {1, 2}, {2, 2}});
  EXPECT_DOUBLE_EQ(FrechetDistance(a, b), 2.0);
}

TEST(FrechetTest, ManWalksDogAsymmetricLengths) {
  // One curve pauses in the middle; discrete Fréchet stays the endpoint gap.
  const Trajectory a = Line({{0, 0}, {4, 0}});
  const Trajectory b = Line({{0, 1}, {2, 1}, {4, 1}});
  EXPECT_DOUBLE_EQ(FrechetDistance(a, b), std::sqrt(4.0 + 1.0))
      << "a's first point must also cover b's middle point";
}

TEST(FrechetTest, OrderSensitivityVersusHausdorff) {
  // Same point sets, opposite directions: Hausdorff 0-ish, Fréchet large.
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  Trajectory b;
  for (size_t i = a.size(); i-- > 0;) b.Append(a[i]);
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(FrechetDistance(a, b), 3.0);
}

TEST(HausdorffTest, KnownAsymmetricSets) {
  // a inside b's span: directed a->b small, b->a large; symmetric = max.
  const Trajectory a = Line({{0, 0}});
  const Trajectory b = Line({{0, 0}, {5, 0}});
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(b, a), 5.0);
}

TEST(HausdorffTest, ParallelSegments) {
  const Trajectory a = Line({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = Line({{0, 1}, {1, 1}, {2, 1}});
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), 1.0);
}

TEST(ErpTest, EqualLengthReducesToPointSum) {
  const Trajectory a = Line({{0, 0}, {1, 0}});
  const Trajectory b = Line({{0, 1}, {1, 1}});
  // Matching both pairs costs 1 + 1 = 2; any gap is at least as expensive
  // with the default origin gap for these coordinates.
  EXPECT_DOUBLE_EQ(ErpDistance(a, b), 2.0);
}

TEST(ErpTest, GapPenaltyAppliedForExtraPoints) {
  const Trajectory a = Line({{1, 0}});
  const Trajectory b = Line({{1, 0}, {2, 0}});
  // Align (1,0) with (1,0) free, delete (2,0) at gap cost |(2,0)-g| = 2.
  EXPECT_DOUBLE_EQ(ErpDistance(a, b), 2.0);
  // With a custom gap point at (2,0) the deletion is free.
  EXPECT_DOUBLE_EQ(ErpDistance(a, b, Point(2, 0)), 0.0);
}

TEST(ErpTest, IdenticalTrajectoriesAreZero) {
  Rng rng(13);
  const Trajectory t = testing::RandomTrajectory(20, 100.0, &rng);
  EXPECT_DOUBLE_EQ(ErpDistance(t, t), 0.0);
}

TEST(EdrTest, CountsNonMatchingEdits) {
  // Identical up to epsilon: zero edits.
  const Trajectory a = Line({{0, 0}, {10, 0}, {20, 0}});
  const Trajectory b = Line({{1, 1}, {11, -1}, {19, 0}});
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, 2.0), 0.0);
  // One extra point costs one edit.
  const Trajectory c = Line({{0, 0}, {10, 0}, {15, 50}, {20, 0}});
  EXPECT_DOUBLE_EQ(EdrDistance(a, c, 2.0), 1.0);
  // Completely disjoint sequences: every point replaced.
  const Trajectory d = Line({{100, 100}, {110, 100}, {120, 100}});
  EXPECT_DOUBLE_EQ(EdrDistance(a, d, 2.0), 3.0);
}

TEST(EdrTest, EpsilonControlsMatching) {
  const Trajectory a = Line({{0, 0}});
  const Trajectory b = Line({{5, 5}});
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, 5.0), 0.0);
  EXPECT_THROW(EdrDistance(a, b, 0.0), std::invalid_argument);
}

TEST(LcssTest, DistanceIsOneMinusNormalizedLcss) {
  const Trajectory a = Line({{0, 0}, {10, 0}, {20, 0}, {30, 0}});
  const Trajectory b = Line({{0, 0}, {500, 0}, {20, 0}});
  // Matches: (0,0) and (20,0) -> LCSS = 2, min length 3.
  EXPECT_NEAR(LcssDistance(a, b, 1.0), 1.0 - 2.0 / 3.0, 1e-12);
  // Identical trajectories: distance 0.
  EXPECT_DOUBLE_EQ(LcssDistance(a, a, 1.0), 0.0);
  // No matches at all: distance 1.
  const Trajectory c = Line({{1000, 1000}});
  EXPECT_DOUBLE_EQ(LcssDistance(a, c, 1.0), 1.0);
}

TEST(LcssTest, RangeAndValidation) {
  Rng rng(22);
  for (int i = 0; i < 10; ++i) {
    const Trajectory a = testing::RandomTrajectory(10, 300.0, &rng);
    const Trajectory b = testing::RandomTrajectory(14, 300.0, &rng);
    const double d = LcssDistance(a, b, 50.0);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  EXPECT_THROW(LcssDistance(Trajectory(), Trajectory({{0, 0}}), 1.0),
               std::invalid_argument);
}

TEST(ExtendedMeasuresTest, RegistryAndNames) {
  EXPECT_EQ(ExtendedMeasures().size(), 6u);
  EXPECT_EQ(MeasureFromName("edr"), Measure::kEdr);
  EXPECT_EQ(MeasureFromName("lcss"), Measure::kLcss);
  MeasureParams params;
  params.match_epsilon = 10.0;
  const DistanceFn edr = ExactDistanceFn(Measure::kEdr, params);
  const Trajectory a = Line({{0, 0}});
  const Trajectory b = Line({{5, 5}});
  EXPECT_DOUBLE_EQ(edr(a, b), 0.0) << "params.match_epsilon must be honored";
}

TEST(ExtendedMeasuresTest, EdrLcssAreSymmetric) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    const Trajectory a = testing::RandomTrajectory(9, 300.0, &rng);
    const Trajectory b = testing::RandomTrajectory(13, 300.0, &rng);
    EXPECT_DOUBLE_EQ(EdrDistance(a, b, 40.0), EdrDistance(b, a, 40.0));
    EXPECT_DOUBLE_EQ(LcssDistance(a, b, 40.0), LcssDistance(b, a, 40.0));
  }
}

TEST(MeasuresTest, EmptyInputsThrow) {
  const Trajectory empty;
  const Trajectory ok = Line({{0, 0}});
  EXPECT_THROW(DtwDistance(empty, ok), std::invalid_argument);
  EXPECT_THROW(FrechetDistance(ok, empty), std::invalid_argument);
  EXPECT_THROW(HausdorffDistance(empty, empty), std::invalid_argument);
  EXPECT_THROW(ErpDistance(empty, ok), std::invalid_argument);
}

TEST(MeasuresTest, NameRoundtrip) {
  for (Measure m : AllMeasures()) {
    EXPECT_EQ(MeasureFromName(MeasureName(m)), m);
  }
  EXPECT_EQ(MeasureFromName("FRECHET"), Measure::kFrechet);
  EXPECT_THROW(MeasureFromName("nope"), std::invalid_argument);
}

// ---- Property sweeps over random trajectories -------------------------------

class MeasurePropertyTest : public ::testing::TestWithParam<Measure> {};

TEST_P(MeasurePropertyTest, IdentityOfIndiscernibles) {
  Rng rng(14);
  const DistanceFn fn = ExactDistanceFn(GetParam());
  for (int i = 0; i < 10; ++i) {
    const Trajectory t = testing::RandomTrajectory(15, 500.0, &rng);
    EXPECT_NEAR(fn(t, t), 0.0, 1e-9);
  }
}

TEST_P(MeasurePropertyTest, Symmetry) {
  Rng rng(15);
  const DistanceFn fn = ExactDistanceFn(GetParam());
  for (int i = 0; i < 10; ++i) {
    const Trajectory a = testing::RandomTrajectory(12, 500.0, &rng);
    const Trajectory b = testing::RandomTrajectory(17, 500.0, &rng);
    EXPECT_NEAR(fn(a, b), fn(b, a), 1e-9);
  }
}

TEST_P(MeasurePropertyTest, NonNegativity) {
  Rng rng(16);
  const DistanceFn fn = ExactDistanceFn(GetParam());
  for (int i = 0; i < 10; ++i) {
    const Trajectory a = testing::RandomTrajectory(9, 500.0, &rng);
    const Trajectory b = testing::RandomTrajectory(14, 500.0, &rng);
    EXPECT_GE(fn(a, b), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasurePropertyTest,
                         ::testing::ValuesIn(ExtendedMeasures()),
                         [](const ::testing::TestParamInfo<Measure>& param_info) {
                           return MeasureName(param_info.param);
                         });

/// The three metric measures must satisfy the triangle inequality
/// (the paper relies on this; DTW is explicitly excluded).
class MetricTriangleTest : public ::testing::TestWithParam<Measure> {};

TEST_P(MetricTriangleTest, TriangleInequality) {
  Rng rng(17);
  const DistanceFn fn = ExactDistanceFn(GetParam());
  for (int i = 0; i < 30; ++i) {
    const Trajectory a = testing::RandomTrajectory(8, 300.0, &rng);
    const Trajectory b = testing::RandomTrajectory(11, 300.0, &rng);
    const Trajectory c = testing::RandomTrajectory(14, 300.0, &rng);
    EXPECT_LE(fn(a, c), fn(a, b) + fn(b, c) + 1e-9);
  }
}

// Only the paper's three metric measures: DTW, EDR and LCSS all violate the
// triangle inequality (the threshold-based matching of EDR/LCSS is not
// transitive — a property this suite demonstrated empirically).
INSTANTIATE_TEST_SUITE_P(MetricMeasures, MetricTriangleTest,
                         ::testing::Values(Measure::kFrechet,
                                           Measure::kHausdorff, Measure::kErp),
                         [](const ::testing::TestParamInfo<Measure>& param_info) {
                           return MeasureName(param_info.param);
                         });

TEST(MeasureRelationsTest, HausdorffLowerBoundsFrechet) {
  // Any coupling realizing the Fréchet distance covers all points of both
  // curves, so Hausdorff <= discrete Fréchet.
  Rng rng(18);
  for (int i = 0; i < 25; ++i) {
    const Trajectory a = testing::RandomTrajectory(10, 400.0, &rng);
    const Trajectory b = testing::RandomTrajectory(13, 400.0, &rng);
    EXPECT_LE(HausdorffDistance(a, b), FrechetDistance(a, b) + 1e-9);
  }
}

TEST(MeasureRelationsTest, FrechetLowerBoundsDtw) {
  // DTW minimizes a sum over a warping path; the max along the optimal DTW
  // path is at least the Fréchet min-max, and the sum dominates the max.
  Rng rng(19);
  for (int i = 0; i < 25; ++i) {
    const Trajectory a = testing::RandomTrajectory(10, 400.0, &rng);
    const Trajectory b = testing::RandomTrajectory(13, 400.0, &rng);
    EXPECT_LE(FrechetDistance(a, b), DtwDistance(a, b) + 1e-9);
  }
}

// ---- Pairwise matrices -------------------------------------------------------

TEST(PairwiseTest, MatrixIsSymmetricWithZeroDiagonal) {
  Rng rng(20);
  const auto corpus = testing::RandomCorpus(12, 5, 15, 300.0, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  ASSERT_EQ(d.size(), corpus.size());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(d.At(i, i), 0.0);
    for (size_t j = 0; j < d.size(); ++j) {
      EXPECT_DOUBLE_EQ(d.At(i, j), d.At(j, i));
    }
  }
}

TEST(PairwiseTest, MatchesDirectComputation) {
  Rng rng(21);
  const auto corpus = testing::RandomCorpus(8, 5, 12, 300.0, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kDtw);
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = i + 1; j < corpus.size(); ++j) {
      EXPECT_DOUBLE_EQ(d.At(i, j), DtwDistance(corpus[i], corpus[j]));
    }
  }
}

TEST(PairwiseTest, Statistics) {
  DistanceMatrix d(3);
  d.Set(0, 1, 2.0);
  d.Set(0, 2, 4.0);
  d.Set(1, 2, 6.0);
  EXPECT_DOUBLE_EQ(d.Max(), 6.0);
  EXPECT_DOUBLE_EQ(d.MeanOffDiagonal(), 4.0);
  EXPECT_DOUBLE_EQ(DistanceMatrix(1).MeanOffDiagonal(), 0.0);
  EXPECT_DOUBLE_EQ(DistanceMatrix().Max(), 0.0);
}

}  // namespace
}  // namespace neutraj
