// Integration tests: end-to-end training of all four variants, convergence,
// search quality above chance, and model serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/search.h"
#include "core/trainer.h"
#include "data/generators.h"
#include "eval/protocol.h"
#include "test_util.h"

namespace neutraj {
namespace {

/// Small clustered corpus: trajectories around a handful of template routes,
/// so near-duplicates exist and metric learning has signal.
std::vector<Trajectory> ClusteredCorpus(size_t n, Rng* rng) {
  std::vector<Trajectory> templates;
  for (int k = 0; k < 5; ++k) {
    templates.push_back(testing::RandomTrajectory(12, 1000.0, rng));
  }
  std::vector<Trajectory> out;
  for (size_t i = 0; i < n; ++i) {
    const Trajectory& base = templates[i % templates.size()];
    Trajectory t;
    for (size_t j = 0; j < base.size(); ++j) {
      t.Append(Point(base[j].x + rng->Gaussian(0, 15.0),
                     base[j].y + rng->Gaussian(0, 15.0)));
    }
    out.push_back(std::move(t));
  }
  return out;
}

Grid CorpusGrid(const std::vector<Trajectory>& corpus) {
  BoundingBox region = BoundingBox::Empty();
  for (const Trajectory& t : corpus) region.Extend(t.Bounds());
  return Grid(region.Inflated(10.0), 60.0);
}

NeuTrajConfig TinyConfig(NeuTrajConfig base) {
  base.embedding_dim = 12;
  base.scan_width = 1;
  base.sampling_num = 4;
  base.batch_size = 8;
  base.epochs = 4;
  base.learning_rate = 5e-3;
  return base;
}

class VariantTrainingTest
    : public ::testing::TestWithParam<std::pair<const char*, NeuTrajConfig>> {};

TEST_P(VariantTrainingTest, LossDecreasesOverTraining) {
  Rng rng(71);
  const auto corpus = ClusteredCorpus(24, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  NeuTrajConfig cfg = TinyConfig(GetParam().second);
  cfg.epochs = 10;
  Trainer trainer(cfg, CorpusGrid(corpus), corpus, d);
  const TrainResult r = trainer.Train();
  ASSERT_EQ(r.epochs.size(), cfg.epochs);
  // Compare epoch-averaged loss at the start and end; per-epoch loss is
  // noisy for the random-sampling variants (fresh pairs every epoch).
  const double head =
      (r.epochs[0].mean_loss + r.epochs[1].mean_loss) / 2.0;
  const double tail = (r.epochs[cfg.epochs - 2].mean_loss +
                       r.epochs[cfg.epochs - 1].mean_loss) /
                      2.0;
  EXPECT_LT(tail, head) << GetParam().first
                        << " should reduce its training loss";
  EXPECT_GT(r.total_seconds, 0.0);
}

NeuTrajConfig WithBackbone(NeuTrajConfig cfg, nn::Backbone backbone) {
  cfg.backbone = backbone;
  return cfg;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantTrainingTest,
    ::testing::Values(
        std::make_pair("NeuTraj", NeuTrajConfig::NeuTraj()),
        std::make_pair("NoSam", NeuTrajConfig::NoSam()),
        std::make_pair("NoWs", NeuTrajConfig::NoWs()),
        std::make_pair("Siamese", NeuTrajConfig::Siamese()),
        std::make_pair("Gru", WithBackbone(NeuTrajConfig::NeuTraj(),
                                           nn::Backbone::kGru)),
        std::make_pair("SamGru", WithBackbone(NeuTrajConfig::NeuTraj(),
                                              nn::Backbone::kSamGru))),
    [](const auto& param_info) { return std::string(param_info.param.first); });

TEST(TrainerTest, RejectsBadInputs) {
  Rng rng(72);
  const auto corpus = ClusteredCorpus(6, &rng);
  const Grid grid = CorpusGrid(corpus);
  NeuTrajConfig cfg = TinyConfig(NeuTrajConfig::NeuTraj());
  EXPECT_THROW(Trainer(cfg, grid, {corpus[0]}, DistanceMatrix(1)),
               std::invalid_argument);
  EXPECT_THROW(Trainer(cfg, grid, corpus, DistanceMatrix(3)),
               std::invalid_argument);
}

TEST(TrainerTest, EpochCallbackCanStopTraining) {
  Rng rng(73);
  const auto corpus = ClusteredCorpus(12, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kHausdorff);
  NeuTrajConfig cfg = TinyConfig(NeuTrajConfig::NoSam());
  cfg.measure = Measure::kHausdorff;
  cfg.epochs = 10;
  Trainer trainer(cfg, CorpusGrid(corpus), corpus, d);
  size_t calls = 0;
  const TrainResult r = trainer.Train([&](const EpochStats&, NeuTrajModel&) {
    return ++calls < 3;  // Stop after the third epoch.
  });
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(r.epochs.size(), 3u);
  EXPECT_TRUE(r.early_stopped);
}

TEST(TrainerTest, EarlyStoppingOnLossPlateau) {
  Rng rng(74);
  const auto corpus = ClusteredCorpus(12, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  NeuTrajConfig cfg = TinyConfig(NeuTrajConfig::NoSam());
  cfg.epochs = 50;
  cfg.early_stop_tol = 0.9;  // Absurdly strict: stops almost immediately.
  cfg.patience = 2;
  Trainer trainer(cfg, CorpusGrid(corpus), corpus, d);
  const TrainResult r = trainer.Train();
  EXPECT_TRUE(r.early_stopped);
  EXPECT_LT(r.epochs.size(), 50u);
}

/// Pearson correlation between embedding distances and exact distances over
/// all seed pairs — the direct measure of how similarity-preserving the
/// learned metric space is.
double DistanceCorrelation(const NeuTrajModel& model,
                           const std::vector<Trajectory>& corpus,
                           const DistanceMatrix& d) {
  const auto embeds = model.EmbedAll(corpus);
  std::vector<double> x, y;
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = i + 1; j < corpus.size(); ++j) {
      x.push_back(nn::L2Distance(embeds[i], embeds[j]));
      y.push_back(d.At(i, j));
    }
  }
  double mx = 0, my = 0;
  for (size_t k = 0; k < x.size(); ++k) {
    mx += x[k];
    my += y[k];
  }
  mx /= static_cast<double>(x.size());
  my /= static_cast<double>(x.size());
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t k = 0; k < x.size(); ++k) {
    sxy += (x[k] - mx) * (y[k] - my);
    sxx += (x[k] - mx) * (x[k] - mx);
    syy += (y[k] - my) * (y[k] - my);
  }
  return sxy / std::sqrt(sxx * syy + 1e-30);
}

TEST(TrainerTest, TrainingImprovesDistanceCorrelation) {
  // A small city-like corpus: overlapping routes with graded distances, so
  // an untrained random encoder is far from similarity-preserving.
  GeneratorConfig gen = PortoLikeConfig(0.1);  // 50 trajectories.
  gen.max_points = 24;
  TrajectoryDataset db = GeneratePortoLike(gen);
  const auto& corpus = db.trajectories;
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  NeuTrajConfig cfg = TinyConfig(NeuTrajConfig::NeuTraj());
  cfg.epochs = 40;  // Enough to converge on this small pool.
  const Grid grid(db.region.Inflated(10.0), 100.0);

  NeuTrajModel untrained(cfg, grid);
  Rng wrng(1);
  untrained.InitializeWeights(&wrng);
  const double corr_untrained = DistanceCorrelation(untrained, corpus, d);

  Trainer trainer(cfg, grid, corpus, d);
  trainer.Train();
  NeuTrajModel trained = trainer.TakeModel();
  const double corr_trained = DistanceCorrelation(trained, corpus, d);

  EXPECT_GT(corr_trained, corr_untrained)
      << "training must make the embedding space more similarity-preserving";
  EXPECT_GT(corr_trained, 0.9) << "trained metric should strongly correlate "
                                  "with the exact measure on its seed pool";
}

TEST(ModelIoTest, SaveLoadPreservesEmbeddings) {
  Rng rng(76);
  const auto corpus = ClusteredCorpus(16, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  NeuTrajConfig cfg = TinyConfig(NeuTrajConfig::NeuTraj());
  cfg.epochs = 2;
  Trainer trainer(cfg, CorpusGrid(corpus), corpus, d);
  trainer.Train();
  NeuTrajModel model = trainer.TakeModel();

  const auto dir = std::filesystem::temp_directory_path() /
                   ("neutraj_model_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "m.model").string();
  model.Save(path);
  const NeuTrajModel loaded = NeuTrajModel::Load(path);

  EXPECT_EQ(loaded.config().VariantName(), model.config().VariantName());
  EXPECT_EQ(loaded.config().embedding_dim, model.config().embedding_dim);
  EXPECT_EQ(loaded.NumParameters(), model.NumParameters());
  for (const Trajectory& t : corpus) {
    const nn::Vector a = model.Embed(t);
    const nn::Vector b = loaded.Embed(t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_DOUBLE_EQ(a[k], b[k]) << "embedding drift after reload";
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, SaveLoadRoundtripsGruBackbone) {
  Rng rng(78);
  const auto corpus = ClusteredCorpus(12, &rng);
  NeuTrajConfig cfg = TinyConfig(NeuTrajConfig::NeuTraj());
  cfg.backbone = nn::Backbone::kSamGru;
  NeuTrajModel model(cfg, CorpusGrid(corpus));
  Rng wr(2);
  model.InitializeWeights(&wr);
  // Populate the memory so the masked-attention state matters.
  for (const Trajectory& t : corpus) model.encoder().Encode(t, true);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("neutraj_gru_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "g.model").string();
  model.Save(path);
  const NeuTrajModel loaded = NeuTrajModel::Load(path);
  for (const Trajectory& t : corpus) {
    const nn::Vector a = model.Embed(t);
    const nn::Vector b = loaded.Embed(t);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(a[k], b[k]);
  }
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, LoadRejectsCorruptFiles) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("neutraj_badmodel_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bad.model").string();
  {
    std::ofstream out(path);
    out << "NOT-A-MODEL\n";
  }
  EXPECT_THROW(NeuTrajModel::Load(path), std::runtime_error);
  EXPECT_THROW(NeuTrajModel::Load((dir / "missing.model").string()),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(ModelTest, SimilarityIsExpOfDistance) {
  Rng rng(79);
  const auto corpus = ClusteredCorpus(6, &rng);
  NeuTrajConfig cfg = TinyConfig(NeuTrajConfig::NeuTraj());
  NeuTrajModel model(cfg, CorpusGrid(corpus));
  Rng wr(3);
  model.InitializeWeights(&wr);
  for (size_t i = 0; i + 1 < corpus.size(); i += 2) {
    const double s = model.Similarity(corpus[i], corpus[i + 1]);
    const double d = model.Distance(corpus[i], corpus[i + 1]);
    EXPECT_NEAR(s, std::exp(-d), 1e-12);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SearchTest, RerankHandlesSmallCandidateSets) {
  Rng rng(80);
  const auto corpus = testing::RandomCorpus(6, 5, 8, 200.0, &rng);
  const DistanceFn fn = ExactDistanceFn(Measure::kHausdorff);
  // k larger than the candidate list: returns all candidates, ordered.
  const SearchResult r = RerankByExact(corpus, corpus[0], {2, 4}, fn, 10);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_LE(r.dists[0], r.dists[1]);
  // Empty candidate list.
  const SearchResult empty = RerankByExact(corpus, corpus[0], {}, fn, 10);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(SearchTest, TopKByDistanceOrdersAndExcludes) {
  const std::vector<double> dists = {5.0, 1.0, 3.0, 1.0, 4.0};
  const SearchResult r = TopKByDistance(dists, 3, /*exclude=*/1);
  ASSERT_EQ(r.ids.size(), 3u);
  EXPECT_EQ(r.ids[0], 3u) << "tie at 1.0 excluded id 1, id 3 remains";
  EXPECT_EQ(r.ids[1], 2u);
  EXPECT_EQ(r.ids[2], 4u);
  EXPECT_DOUBLE_EQ(r.dists[0], 1.0);
  // k larger than pool.
  const SearchResult all = TopKByDistance(dists, 100, -1);
  EXPECT_EQ(all.ids.size(), 5u);
  EXPECT_EQ(all.ids[0], 1u) << "tie broken by lower id";
}

TEST(SearchTest, ExactAndRerankAgreeWithBruteForce) {
  Rng rng(77);
  const auto corpus = testing::RandomCorpus(20, 5, 12, 500.0, &rng);
  const Trajectory query = testing::RandomTrajectory(8, 500.0, &rng);
  const DistanceFn fn = ExactDistanceFn(Measure::kDtw);
  const SearchResult exact = ExactTopK(corpus, query, fn, 5);
  // Rerank over all candidates must equal exact search.
  std::vector<size_t> all(corpus.size());
  std::iota(all.begin(), all.end(), size_t{0});
  const SearchResult rerank = RerankByExact(corpus, query, all, fn, 5);
  EXPECT_EQ(exact.ids, rerank.ids);
  for (size_t i = 1; i < exact.dists.size(); ++i) {
    EXPECT_LE(exact.dists[i - 1], exact.dists[i]);
  }
}

}  // namespace
}  // namespace neutraj
