// Determinism tests for multi-threaded training and bulk encoding.
//
// The parallel trainer's contract is that thread count is an execution
// detail, not a semantic knob: a batch reads the batch-start state, anchors
// draw from pre-split RNG streams, and gradients/memory writes commit in
// anchor order. These tests pin that contract down — identical loss
// trajectories, checkpoints, and models for every thread count, including
// across an interrupt/resume boundary — and cover the EmbeddingDatabase
// built on top of parallel encoding.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/framing.h"
#include "core/embedding_db.h"
#include "core/trainer.h"
#include "distance/pairwise.h"
#include "test_util.h"

namespace neutraj {
namespace {

/// Small clustered corpus (near-duplicates exist, so training has signal).
std::vector<Trajectory> ClusteredCorpus(size_t n, Rng* rng) {
  std::vector<Trajectory> templates;
  for (int k = 0; k < 4; ++k) {
    templates.push_back(testing::RandomTrajectory(10, 1000.0, rng));
  }
  std::vector<Trajectory> out;
  for (size_t i = 0; i < n; ++i) {
    const Trajectory& base = templates[i % templates.size()];
    Trajectory t;
    for (size_t j = 0; j < base.size(); ++j) {
      t.Append(Point(base[j].x + rng->Gaussian(0, 15.0),
                     base[j].y + rng->Gaussian(0, 15.0)));
    }
    out.push_back(std::move(t));
  }
  return out;
}

Grid CorpusGrid(const std::vector<Trajectory>& corpus) {
  BoundingBox region = BoundingBox::Empty();
  for (const Trajectory& t : corpus) region.Extend(t.Bounds());
  return Grid(region.Inflated(10.0), 60.0);
}

NeuTrajConfig TinyConfig() {
  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = 12;
  cfg.scan_width = 1;
  cfg.sampling_num = 4;
  cfg.batch_size = 8;
  cfg.epochs = 4;
  cfg.learning_rate = 5e-3;
  return cfg;
}

/// Asserts two checkpoints describe the same training state. Every section
/// except "history" must match byte for byte; "history" carries wall-clock
/// seconds per epoch, so it is compared field-wise with seconds ignored.
void ExpectSameTrainingState(const std::string& path_a,
                             const std::string& path_b) {
  const SectionReader a(ReadFile(path_a), "checkpoint", path_a);
  const SectionReader b(ReadFile(path_b), "checkpoint", path_b);
  for (const char* sec : {"run", "progress", "params", "memory", "adam",
                          "rng"}) {
    EXPECT_EQ(a.Get(sec), b.Get(sec)) << "checkpoint section " << sec;
  }

  std::istringstream ha(a.Get("history")), hb(b.Get("history"));
  size_t na = 0, nb = 0;
  ASSERT_TRUE(ha >> na);
  ASSERT_TRUE(hb >> nb);
  ASSERT_EQ(na, nb);
  for (size_t i = 0; i < na; ++i) {
    size_t epoch_a = 0, epoch_b = 0;
    double loss_a = 0, loss_b = 0, seconds = 0;
    ASSERT_TRUE(ha >> epoch_a >> loss_a >> seconds);
    ASSERT_TRUE(hb >> epoch_b >> loss_b >> seconds);
    EXPECT_EQ(epoch_a, epoch_b);
    EXPECT_EQ(loss_a, loss_b) << "epoch " << epoch_a << " loss";
  }
}

class ParallelTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("neutraj_par_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

/// The tentpole acceptance test: a training run is a pure function of the
/// config and data — never of the thread count. Losses must match exactly
/// (not approximately) and the full optimizer state (params, Adam moments,
/// SAM memory, RNG stream) must serialize identically.
TEST_F(ParallelTrainerTest, EpochsAreBitForBitAcrossThreadCounts) {
  Rng rng(71);
  const auto corpus = ClusteredCorpus(16, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  const Grid grid = CorpusGrid(corpus);

  NeuTrajConfig base = TinyConfig();
  TrainResult serial_result;
  std::string serial_ckpt;
  for (const size_t threads : {1ul, 2ul, 4ul}) {
    NeuTrajConfig cfg = base;
    cfg.threads = threads;
    Trainer trainer(cfg, grid, corpus, d);
    const TrainResult result = trainer.Train();
    ASSERT_EQ(result.epochs.size(), cfg.epochs);
    const std::string ckpt =
        dir_ + "/t" + std::to_string(threads) + ".ckpt";
    trainer.SaveCheckpoint(ckpt);

    if (threads == 1) {
      serial_result = result;
      serial_ckpt = ckpt;
      continue;
    }
    for (size_t i = 0; i < result.epochs.size(); ++i) {
      EXPECT_EQ(result.epochs[i].mean_loss, serial_result.epochs[i].mean_loss)
          << "threads=" << threads << " epoch " << i;
    }
    ExpectSameTrainingState(serial_ckpt, ckpt);
  }
}

/// Same contract for the SAM-GRU backbone, whose memory writes also go
/// through the ordered write log.
TEST_F(ParallelTrainerTest, SamGruEpochsAreBitForBitAcrossThreadCounts) {
  Rng rng(72);
  const auto corpus = ClusteredCorpus(12, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kHausdorff);
  const Grid grid = CorpusGrid(corpus);

  NeuTrajConfig cfg = TinyConfig();
  cfg.backbone = nn::Backbone::kSamGru;
  cfg.epochs = 3;

  Trainer serial(cfg, grid, corpus, d);
  serial.Train();
  serial.SaveCheckpoint(dir_ + "/serial.ckpt");

  cfg.threads = 3;
  Trainer parallel(cfg, grid, corpus, d);
  parallel.Train();
  parallel.SaveCheckpoint(dir_ + "/parallel.ckpt");

  ExpectSameTrainingState(dir_ + "/serial.ckpt", dir_ + "/parallel.ckpt");
}

/// Checkpoint/resume composes with threading, in both directions: a run
/// interrupted under threads=1 may resume under threads=4 (and vice versa)
/// and still match the uninterrupted serial run bit for bit.
TEST_F(ParallelTrainerTest, ResumeAcrossThreadCountsIsBitForBit) {
  Rng rng(73);
  const auto corpus = ClusteredCorpus(16, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  const Grid grid = CorpusGrid(corpus);

  NeuTrajConfig cfg = TinyConfig();
  Trainer uninterrupted(cfg, grid, corpus, d);
  const TrainResult full = uninterrupted.Train();
  uninterrupted.SaveCheckpoint(dir_ + "/full.ckpt");

  for (const size_t first : {1ul, 4ul}) {
    const size_t second = first == 1 ? 4 : 1;
    const std::string tag =
        std::to_string(first) + "to" + std::to_string(second);
    const std::string ckpt_dir = dir_ + "/" + tag;
    std::filesystem::create_directories(ckpt_dir);

    NeuTrajConfig cfg1 = cfg;
    cfg1.threads = first;
    cfg1.checkpoint_dir = ckpt_dir;
    Trainer interrupted(cfg1, grid, corpus, d);
    size_t calls = 0;
    interrupted.Train(
        [&](const EpochStats&, NeuTrajModel&) { return ++calls < 2; });
    ASSERT_EQ(calls, 2u);

    NeuTrajConfig cfg2 = cfg;
    cfg2.threads = second;
    Trainer resumed(cfg2, grid, corpus, d);
    resumed.ResumeFrom(ckpt_dir + "/neutraj.ckpt");
    EXPECT_EQ(resumed.next_epoch(), 2u);
    const TrainResult rest = resumed.Train();

    ASSERT_EQ(rest.epochs.size(), full.epochs.size());
    for (size_t i = 0; i < full.epochs.size(); ++i) {
      EXPECT_EQ(rest.epochs[i].mean_loss, full.epochs[i].mean_loss)
          << tag << " epoch " << i;
    }
    resumed.SaveCheckpoint(ckpt_dir + "/final.ckpt");
    ExpectSameTrainingState(dir_ + "/full.ckpt", ckpt_dir + "/final.ckpt");
  }
}

/// The trained models also serialize identically: the model file has no
/// wall-clock content, so it must be byte-for-byte equal across threads.
TEST_F(ParallelTrainerTest, TrainedModelFilesAreByteIdentical) {
  Rng rng(74);
  const auto corpus = ClusteredCorpus(12, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  const Grid grid = CorpusGrid(corpus);

  NeuTrajConfig cfg = TinyConfig();
  cfg.epochs = 2;
  Trainer serial(cfg, grid, corpus, d);
  serial.Train();
  serial.TakeModel().Save(dir_ + "/serial.model");

  cfg.threads = 4;
  Trainer parallel(cfg, grid, corpus, d);
  parallel.Train();
  parallel.TakeModel().Save(dir_ + "/parallel.model");

  EXPECT_EQ(ReadFile(dir_ + "/serial.model"),
            ReadFile(dir_ + "/parallel.model"));
}

class EmbeddingDatabaseTest : public ParallelTrainerTest {
 protected:
  /// A small trained model plus its corpus, shared setup for the DB tests.
  void BuildModel() {
    Rng rng(75);
    corpus_ = ClusteredCorpus(14, &rng);
    const DistanceMatrix d =
        ComputePairwiseDistances(corpus_, Measure::kFrechet);
    NeuTrajConfig cfg = TinyConfig();
    cfg.epochs = 2;
    Trainer trainer(cfg, CorpusGrid(corpus_), corpus_, d);
    trainer.Train();
    model_.emplace(trainer.TakeModel());
  }

  std::vector<Trajectory> corpus_;
  std::optional<NeuTrajModel> model_;
};

TEST_F(EmbeddingDatabaseTest, ParallelBuildMatchesSerialBuild) {
  BuildModel();
  const EmbeddingDatabase serial = EmbeddingDatabase::Build(*model_, corpus_);
  const EmbeddingDatabase parallel =
      EmbeddingDatabase::Build(*model_, corpus_, /*threads=*/4);
  ASSERT_EQ(serial.size(), corpus_.size());
  ASSERT_EQ(parallel.size(), corpus_.size());
  EXPECT_EQ(serial.dim(), parallel.dim());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.at(i), parallel.at(i)) << "embedding " << i;
  }
}

TEST_F(EmbeddingDatabaseTest, TopKMatchesDirectScan) {
  BuildModel();
  const EmbeddingDatabase db = EmbeddingDatabase::Build(*model_, corpus_, 2);
  const nn::Vector query = model_->Embed(corpus_[3]);

  const SearchResult via_db = db.TopK(query, 5, /*exclude=*/3);
  const SearchResult direct = EmbeddingTopK(db.embeddings(), query, 5, 3);
  EXPECT_EQ(via_db.ids, direct.ids);
  EXPECT_EQ(via_db.dists, direct.dists);

  // The trajectory-query overload embeds and delegates.
  const SearchResult by_traj = db.TopK(*model_, corpus_[3], 5, 3);
  EXPECT_EQ(by_traj.ids, via_db.ids);
}

TEST_F(EmbeddingDatabaseTest, TopKRejectsDimensionMismatch) {
  BuildModel();
  const EmbeddingDatabase db = EmbeddingDatabase::Build(*model_, corpus_);
  EXPECT_THROW(db.TopK(nn::Vector(db.dim() + 1), 3), std::invalid_argument);
}

TEST_F(EmbeddingDatabaseTest, SaveLoadRoundTripsExactly) {
  BuildModel();
  const EmbeddingDatabase db = EmbeddingDatabase::Build(*model_, corpus_, 2);
  const std::string path = dir_ + "/corpus.embdb";
  db.Save(path);
  const EmbeddingDatabase loaded = EmbeddingDatabase::Load(path);
  ASSERT_EQ(loaded.size(), db.size());
  EXPECT_EQ(loaded.dim(), db.dim());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded.at(i), db.at(i)) << "embedding " << i;
  }
}

TEST_F(EmbeddingDatabaseTest, LoadRejectsCorruptFile) {
  BuildModel();
  const EmbeddingDatabase db = EmbeddingDatabase::Build(*model_, corpus_);
  const std::string path = dir_ + "/corpus.embdb";
  db.Save(path);

  // Flip one payload byte: the section CRC must catch it.
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x20;
  WriteFileAtomic(path + ".bad", bytes);
  EXPECT_THROW(EmbeddingDatabase::Load(path + ".bad"), std::runtime_error);

  // Truncation is also rejected.
  WriteFileAtomic(path + ".trunc", bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(EmbeddingDatabase::Load(path + ".trunc"), std::runtime_error);
}

}  // namespace
}  // namespace neutraj
