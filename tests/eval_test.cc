// Tests for the evaluation harness: metrics, the split protocol, the top-k
// workload and the disk caches.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>

#include "core/search.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "eval/model_cache.h"
#include "eval/protocol.h"
#include "test_util.h"

namespace neutraj {
namespace {

TEST(EvalMetricsTest, HittingRatioCountsOverlap) {
  EXPECT_DOUBLE_EQ(HittingRatio({1, 2, 3}, {3, 4, 5}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(HittingRatio({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(HittingRatio({9, 8}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(HittingRatio({1}, {}), 0.0);
}

TEST(EvalMetricsTest, RecallOfTruth) {
  // 2 of 3 truth items anywhere in the (larger) result list.
  EXPECT_DOUBLE_EQ(RecallOfTruth({1, 2, 3, 4, 5}, {2, 5, 9}), 2.0 / 3.0);
}

TEST(EvalMetricsTest, MeanDistanceOf) {
  const std::vector<double> d = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(MeanDistanceOf({0, 3}, d), 25.0);
  EXPECT_DOUBLE_EQ(MeanDistanceOf({}, d), 0.0);
}

TEST(EvalMetricsTest, PerfectRankingScoresPerfect) {
  // Corpus of 60 items with exact distances = id (query excluded is 0).
  std::vector<double> exact(60);
  std::iota(exact.begin(), exact.end(), 0.0);
  QueryJudgement j;
  j.exact_dists = &exact;
  j.exclude = 0;
  for (size_t i = 1; i < 60; ++i) j.ranked_ids.push_back(i);
  const TopKQuality q = EvaluateTopKQuality({j});
  EXPECT_DOUBLE_EQ(q.hr10, 1.0);
  EXPECT_DOUBLE_EQ(q.hr50, 1.0);
  EXPECT_DOUBLE_EQ(q.r10_at_50, 1.0);
  EXPECT_DOUBLE_EQ(q.delta_h10, 0.0);
  EXPECT_DOUBLE_EQ(q.delta_r10, 0.0);
  EXPECT_EQ(q.num_queries, 1u);
}

TEST(EvalMetricsTest, ReversedRankingScoresPoorly) {
  std::vector<double> exact(60);
  std::iota(exact.begin(), exact.end(), 0.0);
  QueryJudgement j;
  j.exact_dists = &exact;
  j.exclude = 0;
  for (size_t i = 59; i >= 1; --i) j.ranked_ids.push_back(i);
  const TopKQuality q = EvaluateTopKQuality({j});
  EXPECT_DOUBLE_EQ(q.hr10, 0.0);
  EXPECT_GT(q.delta_h10, 0.0);
  // delta_r10: the best-10 of the (worst) 50 candidates are ids 10..19, so
  // the distortion is exactly mean(10..19) - mean(1..10) = 9.
  EXPECT_DOUBLE_EQ(q.delta_r10, 9.0);
}

TEST(EvalMetricsTest, R10At50RewardsLateHits) {
  // Truth top-10 = ids 1..10; ranking puts them at positions 41..50.
  std::vector<double> exact(60);
  std::iota(exact.begin(), exact.end(), 0.0);
  QueryJudgement j;
  j.exact_dists = &exact;
  j.exclude = 0;
  for (size_t i = 11; i <= 50; ++i) j.ranked_ids.push_back(i);
  for (size_t i = 1; i <= 10; ++i) j.ranked_ids.push_back(i);
  const TopKQuality q = EvaluateTopKQuality({j});
  EXPECT_DOUBLE_EQ(q.hr10, 0.0) << "no truth in the top-10 positions";
  EXPECT_DOUBLE_EQ(q.r10_at_50, 1.0) << "all truth recovered within top-50";
  EXPECT_DOUBLE_EQ(q.delta_r10, 0.0) << "re-ranking the 50 recovers truth";
}

TEST(SplitTest, FractionsRespectedAndDisjoint) {
  GeneratorConfig cfg = PortoLikeConfig(0.2);
  const TrajectoryDataset db = GeneratePortoLike(cfg);
  const DatasetSplit split = SplitDataset(db, 0.2, 0.1, 7);
  EXPECT_EQ(split.seeds.size(), db.size() / 5);
  EXPECT_EQ(split.val.size(), db.size() / 10);
  EXPECT_EQ(split.seeds.size() + split.val.size() + split.test.size(), db.size());
  EXPECT_THROW(SplitDataset(db, 0.8, 0.5), std::invalid_argument);
}

TEST(SplitTest, DeterministicPerSeed) {
  GeneratorConfig cfg = PortoLikeConfig(0.1);
  const TrajectoryDataset db = GeneratePortoLike(cfg);
  const DatasetSplit a = SplitDataset(db, 0.2, 0.1, 7);
  const DatasetSplit b = SplitDataset(db, 0.2, 0.1, 7);
  ASSERT_EQ(a.seeds.size(), b.seeds.size());
  for (size_t i = 0; i < a.seeds.size(); ++i) {
    EXPECT_EQ(a.seeds[i], b.seeds[i]);
  }
  const DatasetSplit c = SplitDataset(db, 0.2, 0.1, 8);
  bool same = a.seeds.size() == c.seeds.size();
  if (same) {
    same = std::equal(a.seeds.begin(), a.seeds.end(), c.seeds.begin());
  }
  EXPECT_FALSE(same) << "different split seed should shuffle differently";
}

TEST(WorkloadTest, ExactRowsMatchDirectComputation) {
  Rng rng(111);
  const auto corpus = testing::RandomCorpus(20, 5, 12, 400.0, &rng);
  const DistanceFn fn = ExactDistanceFn(Measure::kHausdorff);
  const TopKWorkload w(corpus, fn, /*num_queries=*/5, 1);
  ASSERT_EQ(w.query_ids().size(), 5u);
  for (size_t q = 0; q < w.query_ids().size(); ++q) {
    const size_t qid = w.query_ids()[q];
    for (size_t j = 0; j < corpus.size(); ++j) {
      const double expected = j == qid ? 0.0 : fn(corpus[qid], corpus[j]);
      EXPECT_DOUBLE_EQ(w.ExactRow(q)[j], expected);
    }
  }
}

TEST(WorkloadTest, OracleRankingScoresPerfect) {
  Rng rng(112);
  const auto corpus = testing::RandomCorpus(70, 5, 12, 400.0, &rng);
  const TopKWorkload w(corpus, ExactDistanceFn(Measure::kDtw), 10, 2);
  const TopKQuality q = w.Evaluate([&](size_t pos) {
    const SearchResult r =
        TopKByDistance(w.ExactRow(pos), 50,
                       static_cast<int64_t>(w.query_ids()[pos]));
    return r.ids;
  });
  EXPECT_DOUBLE_EQ(q.hr10, 1.0);
  EXPECT_DOUBLE_EQ(q.hr50, 1.0);
  EXPECT_DOUBLE_EQ(q.delta_h10, 0.0);
  EXPECT_GT(q.gt_h10, 0.0);
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("neutraj_cache_test_" + std::to_string(::getpid())))
               .string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CacheTest, PairwiseDistancesRoundtrip) {
  Rng rng(113);
  const auto corpus = testing::RandomCorpus(15, 5, 10, 300.0, &rng);
  const DistanceMatrix fresh =
      CachedPairwiseDistances(corpus, Measure::kFrechet, dir_);
  const DistanceMatrix cached =
      CachedPairwiseDistances(corpus, Measure::kFrechet, dir_);
  ASSERT_EQ(cached.size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    for (size_t j = 0; j < fresh.size(); ++j) {
      EXPECT_DOUBLE_EQ(cached.At(i, j), fresh.At(i, j));
    }
  }
  // Different measure gets a different cache entry.
  const DistanceMatrix dtw = CachedPairwiseDistances(corpus, Measure::kDtw, dir_);
  EXPECT_NE(dtw.At(0, 1), fresh.At(0, 1));
}

TEST_F(CacheTest, ModelTrainingIsCached) {
  Rng rng(114);
  const auto corpus = testing::RandomCorpus(16, 5, 10, 300.0, &rng);
  BoundingBox region = BoundingBox::Empty();
  for (const auto& t : corpus) region.Extend(t.Bounds());
  const Grid grid(region.Inflated(5.0), 50.0);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = 8;
  cfg.scan_width = 1;
  cfg.sampling_num = 3;
  cfg.epochs = 2;

  const TrainedModel first = TrainOrLoadModel(cfg, grid, corpus, d, dir_);
  EXPECT_FALSE(first.from_cache);
  ASSERT_EQ(first.stats.epochs.size(), 2u);

  const TrainedModel second = TrainOrLoadModel(cfg, grid, corpus, d, dir_);
  EXPECT_TRUE(second.from_cache);
  ASSERT_EQ(second.stats.epochs.size(), 2u);
  EXPECT_DOUBLE_EQ(second.stats.epochs[1].mean_loss,
                   first.stats.epochs[1].mean_loss);
  // Same embeddings from the cached model.
  for (const auto& t : corpus) {
    const nn::Vector a = first.model.Embed(t);
    const nn::Vector b = second.model.Embed(t);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(a[k], b[k]);
  }
  // A different config trains fresh.
  cfg.embedding_dim = 10;
  const TrainedModel third = TrainOrLoadModel(cfg, grid, corpus, d, dir_);
  EXPECT_FALSE(third.from_cache);
}

TEST_F(CacheTest, CorruptDistanceCacheIsRecomputed) {
  Rng rng(116);
  const auto corpus = testing::RandomCorpus(8, 5, 8, 200.0, &rng);
  const DistanceMatrix fresh =
      CachedPairwiseDistances(corpus, Measure::kDtw, dir_);
  // Vandalize every cache file, then reload: values must be recomputed
  // (not propagated from the corrupt file).
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "999 garbage";
  }
  const DistanceMatrix again =
      CachedPairwiseDistances(corpus, Measure::kDtw, dir_);
  for (size_t i = 0; i < fresh.size(); ++i) {
    for (size_t j = 0; j < fresh.size(); ++j) {
      EXPECT_DOUBLE_EQ(again.At(i, j), fresh.At(i, j));
    }
  }
}

TEST_F(CacheTest, CorruptModelCacheRetrains) {
  Rng rng(117);
  const auto corpus = testing::RandomCorpus(12, 5, 8, 200.0, &rng);
  BoundingBox region = BoundingBox::Empty();
  for (const auto& t : corpus) region.Extend(t.Bounds());
  const Grid grid(region.Inflated(5.0), 50.0);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = 6;
  cfg.scan_width = 1;
  cfg.sampling_num = 3;
  cfg.epochs = 1;

  const TrainedModel first = TrainOrLoadModel(cfg, grid, corpus, d, dir_);
  ASSERT_FALSE(first.from_cache);
  // Corrupt every cached model file.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".model") {
      std::ofstream out(entry.path(), std::ios::trunc);
      out << "NOT-A-MODEL";
    }
  }
  const TrainedModel second = TrainOrLoadModel(cfg, grid, corpus, d, dir_);
  EXPECT_FALSE(second.from_cache) << "corrupt entries must trigger retraining";
  // Deterministic training: the retrained model matches the original.
  for (const auto& t : corpus) {
    const nn::Vector a = first.model.Embed(t);
    const nn::Vector b = second.model.Embed(t);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(a[k], b[k]);
  }
}

TEST_F(CacheTest, TruncatedModelCacheRetrains) {
  Rng rng(118);
  const auto corpus = testing::RandomCorpus(12, 5, 8, 200.0, &rng);
  BoundingBox region = BoundingBox::Empty();
  for (const auto& t : corpus) region.Extend(t.Bounds());
  const Grid grid(region.Inflated(5.0), 50.0);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = 6;
  cfg.scan_width = 1;
  cfg.sampling_num = 3;
  cfg.epochs = 1;

  const TrainedModel first = TrainOrLoadModel(cfg, grid, corpus, d, dir_);
  ASSERT_FALSE(first.from_cache);
  // Truncate every cached model file to half its size — the framing layer
  // must reject it and the cache must fall back to retraining.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".model") {
      const auto size = std::filesystem::file_size(entry.path());
      std::filesystem::resize_file(entry.path(), size / 2);
    }
  }
  const TrainedModel second = TrainOrLoadModel(cfg, grid, corpus, d, dir_);
  EXPECT_FALSE(second.from_cache) << "truncated entries must trigger retraining";
}

TEST(CorpusFingerprintTest, SensitiveToContent) {
  Rng rng(115);
  const auto a = testing::RandomCorpus(5, 5, 8, 100.0, &rng);
  auto b = a;
  EXPECT_EQ(CorpusFingerprint(a), CorpusFingerprint(b));
  b[0][0].x += 1.0;
  EXPECT_NE(CorpusFingerprint(a), CorpusFingerprint(b));
}

}  // namespace
}  // namespace neutraj
