// Tests for common/ utilities: Rng, string helpers, file helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/file_util.h"
#include "common/framing.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace neutraj {
namespace {

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values of a small range should appear";
}

TEST(RngTest, GaussianMeanAndSpread) {
  Rng rng(3);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(4);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 12000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0) << "zero-weight index must never be drawn";
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(RngTest, CategoricalRejectsDegenerateInput) {
  Rng rng(5);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.Categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(RngTest, WeightedSampleWithoutReplacementIsDistinct) {
  Rng rng(6);
  std::vector<double> w(50, 1.0);
  for (int rep = 0; rep < 20; ++rep) {
    const auto sample = rng.WeightedSampleWithoutReplacement(w, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), sample.size());
  }
}

TEST(RngTest, WeightedSampleSkipsZeroWeights) {
  Rng rng(7);
  std::vector<double> w(20, 0.0);
  w[3] = 1.0;
  w[8] = 1.0;
  const auto sample = rng.WeightedSampleWithoutReplacement(w, 5);
  ASSERT_EQ(sample.size(), 2u) << "only positive-weight items are available";
  EXPECT_TRUE((sample[0] == 3 && sample[1] == 8) ||
              (sample[0] == 8 && sample[1] == 3));
}

TEST(RngTest, WeightedSampleFavorsHeavyItems) {
  Rng rng(8);
  std::vector<double> w(10, 1.0);
  w[0] = 50.0;
  int first_count = 0;
  for (int rep = 0; rep < 500; ++rep) {
    const auto s = rng.WeightedSampleWithoutReplacement(w, 1);
    if (s[0] == 0) ++first_count;
  }
  EXPECT_GT(first_count, 350) << "heavy item should dominate single draws";
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(10);
  const auto s = rng.SampleIndices(30, 12);
  ASSERT_EQ(s.size(), 12u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 12u);
  for (size_t idx : s) EXPECT_LT(idx, 30u);
  EXPECT_THROW(rng.SampleIndices(3, 4), std::invalid_argument);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringUtilTest, Fnv1aHashStableAndDiscriminating) {
  EXPECT_EQ(Fnv1aHash("abc"), Fnv1aHash("abc"));
  EXPECT_NE(Fnv1aHash("abc"), Fnv1aHash("abd"));
  EXPECT_NE(Fnv1aHash(""), Fnv1aHash("a"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("FrEcHeT"), "frechet");
}

class FileUtilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("neutraj_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(FileUtilTest, WriteReadRoundtrip) {
  const std::string path = (dir_ / "f.txt").string();
  WriteFileAtomic(path, "hello\nworld");
  EXPECT_TRUE(FileExists(path));
  EXPECT_EQ(ReadFile(path), "hello\nworld");
}

TEST_F(FileUtilTest, AtomicWriteLeavesNoTempFile) {
  const std::string path = (dir_ / "g.txt").string();
  WriteFileAtomic(path, "data");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FileUtilTest, ReadMissingFileThrows) {
  EXPECT_THROW(ReadFile((dir_ / "missing").string()), std::runtime_error);
}

TEST_F(FileUtilTest, EnsureDirectoryCreatesNested) {
  const std::string nested = (dir_ / "a" / "b" / "c").string();
  EXPECT_TRUE(EnsureDirectory(nested));
  EXPECT_TRUE(std::filesystem::is_directory(nested));
  EXPECT_TRUE(EnsureDirectory(nested)) << "idempotent on existing dirs";
}

TEST_F(FileUtilTest, ConcurrentAtomicWritesLeaveOneIntactFile) {
  const std::string path = (dir_ / "contended.txt").string();
  constexpr int kWriters = 4;
  constexpr int kRounds = 25;
  std::vector<std::string> payloads;
  for (int w = 0; w < kWriters; ++w) {
    // Distinct, large payloads so a torn write would be detectable.
    payloads.push_back(std::string(16384, static_cast<char>('A' + w)));
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kRounds; ++i) WriteFileAtomic(path, payloads[w]);
    });
  }
  for (auto& t : threads) t.join();

  // The survivor is exactly one writer's payload, never a mix.
  const std::string got = ReadFile(path);
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), got), payloads.end());
  // And no temp files leak, even under contention.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << entry.path();
  }
}

TEST(ChecksumTest, Crc32MatchesKnownVectors) {
  // IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(FramingTest, WriteParseRoundtrip) {
  SectionWriter w("model");
  w.Add("alpha", "hello");
  w.Add("beta", std::string("bin\0ary\n", 8));
  const std::string file = w.Finish();

  const SectionReader r(file, "model", "test");
  EXPECT_TRUE(r.Has("alpha"));
  EXPECT_FALSE(r.Has("gamma"));
  EXPECT_EQ(r.Get("alpha"), "hello");
  EXPECT_EQ(r.Get("beta"), std::string("bin\0ary\n", 8));
  EXPECT_THROW(r.Get("gamma"), std::runtime_error);
}

TEST(FramingTest, RejectsWrongKindAndGarbage) {
  SectionWriter w("model");
  w.Add("alpha", "hello");
  const std::string file = w.Finish();
  EXPECT_THROW(SectionReader(file, "checkpoint", "test"), std::runtime_error);
  EXPECT_THROW(SectionReader("not a framed file", "model", "test"),
               std::runtime_error);
}

TEST(FramingTest, DetectsBitFlipWithChecksumError) {
  SectionWriter w("model");
  w.Add("alpha", "the quick brown fox jumps over the lazy dog");
  std::string file = w.Finish();
  file[file.find("quick")] ^= 0x01;
  try {
    SectionReader r(file, "model", "test");
    FAIL() << "bit flip went undetected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(FramingTest, DetectsTruncation) {
  SectionWriter w("model");
  w.Add("alpha", std::string(1000, 'x'));
  const std::string file = w.Finish();
  // Cut inside the payload and right before "END\n" (missing END marker).
  for (const size_t cut : {file.size() / 2, file.size() - 4}) {
    try {
      SectionReader r(file.substr(0, cut), "model", "test");
      FAIL() << "truncation at " << cut << " went undetected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncat"), std::string::npos)
          << e.what();
    }
  }
}

TEST(RngTest, SaveLoadStateResumesStreamExactly) {
  Rng rng(314);
  for (int i = 0; i < 100; ++i) rng.Uniform(0.0, 1.0);
  const std::string state = rng.SaveState();

  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.Gaussian(0.0, 1.0));

  Rng other(999);  // Different seed; LoadState must fully override it.
  other.LoadState(state);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(other.Gaussian(0.0, 1.0), expected[i]);
  }
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  const double first = sw.ElapsedMillis();
  EXPECT_GE(sw.ElapsedMillis(), first);  // Monotone.
  sw.Restart();
  EXPECT_LE(sw.ElapsedSeconds(), first / 1e3 + 1.0);
  (void)sink;
}

}  // namespace
}  // namespace neutraj
