// Tests for the synthetic data substrate: road network, route generation,
// corpus generators and the dataset container.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/generators.h"
#include "data/road_network.h"
#include "distance/measures.h"

namespace neutraj {
namespace {

TEST(RoadNetworkTest, BuildsJitteredLattice) {
  RoadNetworkConfig cfg;
  cfg.grid_cols = 6;
  cfg.grid_rows = 5;
  cfg.spacing = 100.0;
  cfg.jitter = 10.0;
  const RoadNetwork net(cfg);
  EXPECT_EQ(net.NumNodes(), 30u);
  // Nodes stay near their lattice positions.
  for (size_t id = 0; id < net.NumNodes(); ++id) {
    const Point& p = net.NodePosition(id);
    const double lx = static_cast<double>(id % 6) * 100.0;
    const double ly = static_cast<double>(id / 6) * 100.0;
    EXPECT_LE(std::abs(p.x - lx), 10.0);
    EXPECT_LE(std::abs(p.y - ly), 10.0);
  }
  EXPECT_FALSE(net.Bounds().IsEmpty());
  EXPECT_THROW(RoadNetwork(RoadNetworkConfig{.grid_cols = 1}),
               std::invalid_argument);
}

TEST(RoadNetworkTest, AdjacencyIsSymmetric) {
  RoadNetworkConfig cfg;
  cfg.grid_cols = 8;
  cfg.grid_rows = 8;
  const RoadNetwork net(cfg);
  for (size_t u = 0; u < net.NumNodes(); ++u) {
    for (size_t v : net.Neighbors(u)) {
      const auto& back = net.Neighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end())
          << "edge " << u << "-" << v << " missing its reverse";
    }
  }
}

TEST(RoadNetworkTest, RandomRouteFollowsEdges) {
  RoadNetworkConfig cfg;
  cfg.grid_cols = 10;
  cfg.grid_rows = 10;
  cfg.edge_keep_prob = 1.0;
  const RoadNetwork net(cfg);
  Rng rng(101);
  for (int rep = 0; rep < 20; ++rep) {
    const auto route = net.RandomRoute(15, &rng);
    EXPECT_EQ(route.size(), 16u) << "fully connected lattice never gets stuck";
    for (size_t i = 1; i < route.size(); ++i) {
      const auto& nb = net.Neighbors(route[i - 1]);
      EXPECT_NE(std::find(nb.begin(), nb.end(), route[i]), nb.end())
          << "route step must use an existing edge";
    }
  }
}

TEST(RoadNetworkTest, RouteAvoidsImmediateBacktracking) {
  RoadNetworkConfig cfg;
  cfg.grid_cols = 10;
  cfg.grid_rows = 10;
  cfg.edge_keep_prob = 1.0;
  const RoadNetwork net(cfg);
  Rng rng(102);
  for (int rep = 0; rep < 10; ++rep) {
    const auto route = net.RandomRoute(20, &rng);
    for (size_t i = 2; i < route.size(); ++i) {
      // Interior nodes have >= 2 usable neighbors on a full lattice, so the
      // walk never needs to return to where it just came from.
      EXPECT_NE(route[i], route[i - 2]) << "immediate backtrack at " << i;
    }
  }
}

TEST(RoadNetworkTest, RouteToTrajectoryInterpolatesAtRequestedSpacing) {
  RoadNetworkConfig cfg;
  cfg.grid_cols = 5;
  cfg.grid_rows = 5;
  cfg.spacing = 400.0;
  cfg.jitter = 0.0;
  cfg.edge_keep_prob = 1.0;
  const RoadNetwork net(cfg);
  Rng rng(103);
  const auto route = net.RandomRoute(6, &rng);
  const Trajectory t =
      net.RouteToTrajectory(route, /*point_spacing=*/50.0, /*noise=*/0.0, &rng);
  // Noise-free: consecutive samples are at most ~spacing apart and the
  // number of points matches path_length / spacing within rounding.
  ASSERT_GE(t.size(), route.size());
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(EuclideanDistance(t[i - 1], t[i]), 50.0 + 1e-6);
  }
  double route_len = 0.0;
  for (size_t i = 1; i < route.size(); ++i) {
    route_len += EuclideanDistance(net.NodePosition(route[i - 1]),
                                   net.NodePosition(route[i]));
  }
  EXPECT_NEAR(static_cast<double>(t.size()), route_len / 50.0, static_cast<double>(route.size()) + 2.0);
  EXPECT_THROW(net.RouteToTrajectory(route, 0.0, 0.0, &rng),
               std::invalid_argument);
}

TEST(GeneratorTest, ProducesRequestedCorpus) {
  GeneratorConfig cfg = PortoLikeConfig(0.2);  // ~100 trajectories.
  const TrajectoryDataset db = GeneratePortoLike(cfg);
  EXPECT_EQ(db.name, "PortoLike");
  EXPECT_EQ(db.size(), cfg.num_trajectories);
  EXPECT_FALSE(db.region.IsEmpty());
  for (const Trajectory& t : db.trajectories) {
    EXPECT_GE(t.size(), cfg.min_points) << "paper: drop < 10 records";
    EXPECT_LE(t.size(), cfg.max_points);
  }
}

TEST(GeneratorTest, DeterministicForFixedSeed) {
  GeneratorConfig cfg = PortoLikeConfig(0.1);
  const TrajectoryDataset a = GeneratePortoLike(cfg);
  const TrajectoryDataset b = GeneratePortoLike(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.trajectories[i], b.trajectories[i]);
  }
  cfg.seed += 1;
  const TrajectoryDataset c = GeneratePortoLike(cfg);
  EXPECT_FALSE(a.trajectories[0] == c.trajectories[0]);
}

TEST(GeneratorTest, PortoLikeHasNearDuplicates) {
  // The popular-route mechanism must create pairs far more similar than the
  // typical pair — the property the paper's datasets exhibit.
  GeneratorConfig cfg = PortoLikeConfig(0.3);
  const TrajectoryDataset db = GeneratePortoLike(cfg);
  std::vector<double> dists;
  for (size_t i = 0; i < db.size(); ++i) {
    for (size_t j = i + 1; j < db.size(); ++j) {
      dists.push_back(HausdorffDistance(db.trajectories[i], db.trajectories[j]));
    }
  }
  std::sort(dists.begin(), dists.end());
  const double p02 = dists[dists.size() / 500];  // 0.2% quantile.
  const double median = dists[dists.size() / 2];
  EXPECT_LT(p02, median / 10.0)
      << "near-duplicate pairs should be far closer than the median pair";
  EXPECT_LT(dists.front(), 4.0 * cfg.noise_std)
      << "full-route repeats should differ by GPS noise only";
}

TEST(GeneratorTest, GeolifeLikeIsLongerAndLessConcentrated) {
  const TrajectoryDataset porto = GeneratePortoLike(PortoLikeConfig(0.2));
  const TrajectoryDataset geolife = GenerateGeolifeLike(GeolifeLikeConfig(0.2));
  EXPECT_EQ(geolife.name, "GeolifeLike");
  EXPECT_GT(geolife.MeanLength(), porto.MeanLength())
      << "human mobility preset produces longer traces";
}

TEST(DatasetTest, FilterShortAndRegion) {
  TrajectoryDataset db;
  db.trajectories.push_back(Trajectory({{0, 0}}));
  db.trajectories.push_back(Trajectory({{0, 0}, {1, 1}, {2, 2}}));
  db.FilterShort(2);
  ASSERT_EQ(db.size(), 1u);
  db.RecomputeRegion();
  EXPECT_DOUBLE_EQ(db.region.max_x, 2.0);
  EXPECT_DOUBLE_EQ(db.MeanLength(), 3.0);
  db.trajectories.clear();
  EXPECT_DOUBLE_EQ(db.MeanLength(), 0.0);
}

}  // namespace
}  // namespace neutraj
