// Tests for the observability layer (src/obs/): the metrics registry
// (counters, gauges, concurrent log2 histograms), scoped tracing
// (obs/trace.h span macros), the flight_recorder ring buffer, the jsonl
// metrics sink, and the Prometheus text renderer — plus an end-to-end check
// that training telemetry never changes training numerics.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/trainer.h"
#include "distance/pairwise.h"
#include "obs/flight_recorder.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace neutraj::obs {
namespace {

// -- LatencyHistogram --------------------------------------------------------

TEST(LatencyHistogramTest, BucketZeroIsZeroToOneMicrosInclusive) {
  // Pin the documented bucket-0 contract: [0, 1] µs inclusive. Exact zeros
  // (no-op fast paths below timer resolution), sub-µs samples and exactly
  // 1.0 µs all land in bucket 0; the first value strictly above 1 µs lands
  // in bucket 1, whose range is (1, 2].
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(0.5);
  h.Record(1.0);
  EXPECT_EQ(h.buckets()[0], 3u);
  EXPECT_EQ(h.buckets()[1], 0u);
  // Interpolated within bucket 0: the median of {0, 0.5, 1.0} reads as the
  // halfway point of [0, 1], and p100 as the bucket's (== the max's) top.
  EXPECT_EQ(h.PercentileMicros(0.5), 0.5);
  EXPECT_EQ(h.PercentileMicros(1.0), 1.0);
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(0), 1.0);

  h.Record(1.5);
  EXPECT_EQ(h.buckets()[1], 1u);
  // p100 interpolates to bucket 1's top (2.0) but is capped at the tracked
  // max — no percentile ever exceeds an actually observed latency.
  EXPECT_EQ(h.PercentileMicros(1.0), 1.5);
}

TEST(LatencyHistogramTest, NegativeSamplesClampToBucketZero) {
  LatencyHistogram h;
  h.Record(-5.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.max_micros(), 0.0);
  EXPECT_EQ(h.mean_micros(), 0.0);
}

TEST(LatencyHistogramTest, OverflowSamplesLandInTheLastBucket) {
  LatencyHistogram h;
  h.Record(1e12);  // Far beyond the ~134 s top bound.
  EXPECT_EQ(h.buckets()[LatencyHistogram::kNumBuckets - 1], 1u);
  // Interpolation puts the lone sample's p50 at the open-ended last
  // bucket's midpoint (capped at max, which is far above it here).
  const double lower =
      LatencyHistogram::BucketUpperMicros(LatencyHistogram::kNumBuckets - 2);
  const double upper =
      LatencyHistogram::BucketUpperMicros(LatencyHistogram::kNumBuckets - 1);
  EXPECT_EQ(h.PercentileMicros(0.5), 0.5 * (lower + upper));
  EXPECT_EQ(h.max_micros(), 1e12);
}

TEST(LatencyHistogramTest, PercentilesInterpolateInsteadOfSnappingToBucketTop) {
  // Regression pin for the p50 == p99 == 8192 µs artifact: when one log2
  // bucket holds most of the mass, upper-bound snapping made every
  // percentile identical. Interpolation must keep p50 < p99 even though
  // both land in the same (2, 4] bucket.
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(2.0 + 0.02 * i);  // (2.02 .. 4.0].
  EXPECT_EQ(h.buckets()[2], 100u);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(0.5), 3.0);    // 2 + 0.50 * 2.
  EXPECT_DOUBLE_EQ(h.PercentileMicros(0.99), 3.98);  // 2 + 0.99 * 2.
  EXPECT_LT(h.PercentileMicros(0.5), h.PercentileMicros(0.99));
  // A single-sample histogram reports the sample itself, not its bucket's
  // power-of-two ceiling.
  LatencyHistogram one;
  one.Record(3.0);
  EXPECT_DOUBLE_EQ(one.PercentileMicros(0.5), 3.0);
  EXPECT_DOUBLE_EQ(one.PercentileMicros(0.99), 3.0);
}

TEST(ConcurrentHistogramTest, SnapshotMatchesPlainHistogram) {
  ConcurrentHistogram ch;
  LatencyHistogram plain;
  for (const double v : {0.0, 1.0, 3.0, 100.0, 1e7}) {
    ch.Record(v);
    plain.Record(v);
  }
  const LatencyHistogram snap = ch.Snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.buckets(), plain.buckets());
  EXPECT_DOUBLE_EQ(snap.sum_micros(), plain.sum_micros());
  EXPECT_EQ(snap.max_micros(), plain.max_micros());
  EXPECT_EQ(snap.PercentileMicros(0.5), plain.PercentileMicros(0.5));
}

// -- Counter / Gauge / registry ----------------------------------------------

TEST(MetricsRegistryTest, GetReturnsStableReferencesPerName) {
  MetricsRegistry reg;
  Counter& c1 = reg.GetCounter("requests");
  Counter& c2 = reg.GetCounter("requests");
  EXPECT_EQ(&c1, &c2);
  c1.Increment();
  c2.Add(2);
  EXPECT_EQ(c1.Value(), 3u);

  Gauge& g = reg.GetGauge("lr");
  g.Set(0.25);
  g.Add(0.25);
  EXPECT_DOUBLE_EQ(reg.GetGauge("lr").Value(), 0.5);

  ConcurrentHistogram& h = reg.GetHistogram("latency");
  h.Record(3.0);
  EXPECT_EQ(reg.GetHistogram("latency").count(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.GetCounter("x");
  EXPECT_THROW(reg.GetGauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.GetHistogram("x"), std::invalid_argument);
  reg.GetGauge("y");
  EXPECT_THROW(reg.GetCounter("y"), std::invalid_argument);
  reg.GetHistogram("z");
  EXPECT_THROW(reg.GetGauge("z"), std::invalid_argument);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("b/count").Add(2);
  reg.GetCounter("a/count").Add(1);
  reg.GetGauge("z/gauge").Set(9.0);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a/count");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b/count");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "z/gauge");
}

TEST(MetricsSnapshotTest, FlattenExpandsHistogramsAndSorts) {
  MetricsRegistry reg;
  reg.GetHistogram("h").Record(3.0);  // Bucket (2, 4].
  reg.GetCounter("c").Add(7);
  reg.GetGauge("g").Set(2.5);
  const auto flat = reg.Snapshot().Flatten();
  // Single-sample percentiles report the sample (interpolation + max cap),
  // not the bucket's 4.0 upper bound.
  const std::vector<std::pair<std::string, double>> expected = {
      {"c", 7.0},        {"g", 2.5},         {"h/count", 1.0},
      {"h/max_us", 3.0}, {"h/mean_us", 3.0}, {"h/p50_us", 3.0},
      {"h/p99_us", 3.0},
  };
  EXPECT_EQ(flat, expected);
}

// -- Concurrent recording ----------------------------------------------------

TEST(MetricsConcurrencyTest, TotalsAreExactUnderContention) {
  // N threads × M operations against one counter, one gauge and one
  // histogram: every total must be exact (the design promise that lock-free
  // recording is racy only in float rounding, never in counts — and integer
  // gauge increments are exact in double too).
  MetricsRegistry reg;
  Counter& counter = reg.GetCounter("hits");
  Gauge& gauge = reg.GetGauge("acc");
  ConcurrentHistogram& hist = reg.GetHistogram("lat");
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.Increment();
        gauge.Add(1.0);
        hist.Record(i % 2 == 0 ? 0.5 : 3.0);  // Buckets 0 and (2, 4].
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kOpsPerThread;
  EXPECT_EQ(counter.Value(), kTotal);
  EXPECT_DOUBLE_EQ(gauge.Value(), static_cast<double>(kTotal));
  const LatencyHistogram snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), kTotal);
  EXPECT_EQ(snap.buckets()[0], kTotal / 2);
  EXPECT_EQ(snap.buckets()[2], kTotal / 2);
  EXPECT_DOUBLE_EQ(snap.sum_micros(),
                   (kTotal / 2) * 0.5 + (kTotal / 2) * 3.0);
  EXPECT_EQ(snap.max_micros(), 3.0);
}

// -- Tracing -----------------------------------------------------------------

void RunCoarseSpan() { NEUTRAJ_TRACE_SPAN("obs_test/coarse"); }
void RunFineSpan() { NEUTRAJ_TRACE_FINE_SPAN("obs_test/fine"); }

uint64_t SpanCount(const char* metric) {
  return MetricsRegistry::Global().GetHistogram(metric).count();
}

TEST(TraceTest, SpansRecordOnlyAtTheirLevel) {
  SetTraceLevel(TraceLevel::kOff);
  const uint64_t coarse0 = SpanCount("trace/obs_test/coarse_us");
  const uint64_t fine0 = SpanCount("trace/obs_test/fine_us");

  // Off: neither span records.
  RunCoarseSpan();
  RunFineSpan();
  EXPECT_EQ(SpanCount("trace/obs_test/coarse_us"), coarse0);
  EXPECT_EQ(SpanCount("trace/obs_test/fine_us"), fine0);

  // Coarse: NEUTRAJ_TRACE_SPAN records, the per-step FINE span stays silent.
  SetTraceLevel(TraceLevel::kCoarse);
  EXPECT_EQ(trace_level(), TraceLevel::kCoarse);
  RunCoarseSpan();
  RunFineSpan();
  EXPECT_EQ(SpanCount("trace/obs_test/coarse_us"), coarse0 + 1);
  EXPECT_EQ(SpanCount("trace/obs_test/fine_us"), fine0);

  // Fine: both record.
  SetTraceLevel(TraceLevel::kFine);
  RunCoarseSpan();
  RunFineSpan();
  EXPECT_EQ(SpanCount("trace/obs_test/coarse_us"), coarse0 + 2);
  EXPECT_EQ(SpanCount("trace/obs_test/fine_us"), fine0 + 1);

  SetTraceLevel(TraceLevel::kOff);
}

TEST(TraceTest, LevelIsMirroredInTheRegistryGauge) {
  SetTraceLevel(TraceLevel::kFine);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Global().GetGauge("obs/trace_level").Value(),
                   2.0);
  SetTraceLevel(TraceLevel::kOff);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Global().GetGauge("obs/trace_level").Value(),
                   0.0);
}

TEST(TraceTest, FinishedSpansLandInTheFlightRecorder) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  SetTraceLevel(TraceLevel::kCoarse);
  RunCoarseSpan();
  SetTraceLevel(TraceLevel::kOff);
  const std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "obs_test/coarse");
  EXPECT_TRUE(events[0].is_span);
  EXPECT_GE(events[0].value, 0.0);
  rec.Clear();
}

// -- Flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, RingKeepsTheMostRecentEventsInOrder) {
  FlightRecorder rec(/*capacity=*/4);
  rec.RecordEvent("e1", 1.0);
  rec.RecordEvent("e2", 2.0);
  rec.RecordEvent("e3", 3.0);
  EXPECT_EQ(rec.Snapshot().size(), 3u);  // Not yet wrapped: all retained.
  rec.RecordSpan("s4", 4.0);
  rec.RecordEvent("e5", 5.0);
  rec.RecordEvent("e6", 6.0);

  const std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);  // Capacity bound: e1, e2 overwritten.
  EXPECT_STREQ(events[0].name, "e3");
  EXPECT_STREQ(events[1].name, "s4");
  EXPECT_TRUE(events[1].is_span);
  EXPECT_STREQ(events[2].name, "e5");
  EXPECT_STREQ(events[3].name, "e6");
  EXPECT_EQ(events[3].value, 6.0);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_seconds, events[i - 1].t_seconds);
  }
  EXPECT_EQ(rec.total_recorded(), 6u);
}

TEST(FlightRecorderTest, DumpTextListsEventsAndClearEmptiesIt) {
  FlightRecorder rec(8);
  EXPECT_TRUE(rec.DumpText().empty());
  rec.RecordSpan("trainer/epoch", 1500.0);
  rec.RecordEvent("trainer/watchdog_rollback", 3.0);
  const std::string dump = rec.DumpText();
  EXPECT_NE(dump.find("trainer/epoch"), std::string::npos);
  EXPECT_NE(dump.find("span"), std::string::npos);
  EXPECT_NE(dump.find("trainer/watchdog_rollback"), std::string::npos);
  EXPECT_NE(dump.find("event"), std::string::npos);
  rec.Clear();
  EXPECT_TRUE(rec.DumpText().empty());
  EXPECT_EQ(rec.total_recorded(), 0u);
}

// -- Prometheus rendering ----------------------------------------------------

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(PrometheusName("trainer/mean_loss"), "neutraj_trainer_mean_loss");
  EXPECT_EQ(PrometheusName("serve/encode/latency_us"),
            "neutraj_serve_encode_latency_us");
  EXPECT_EQ(PrometheusName("a:b"), "neutraj_a:b");  // Colons are legal.
  EXPECT_EQ(PrometheusName("weird name-1%"), "neutraj_weird_name_1_");
}

TEST(PrometheusTest, GoldenRendering) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total").Add(3);
  reg.GetGauge("corpus/size").Set(42.0);
  ConcurrentHistogram& h = reg.GetHistogram("encode_us");
  h.Record(1.0);  // Bucket 0: [0, 1].
  h.Record(3.0);  // Bucket 2: (2, 4].

  std::string expected =
      "# TYPE neutraj_requests_total counter\n"
      "neutraj_requests_total 3\n"
      "# TYPE neutraj_corpus_size gauge\n"
      "neutraj_corpus_size 42\n"
      "# TYPE neutraj_encode_us histogram\n";
  uint64_t cumulative = 0;
  for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    cumulative += (b == 0 || b == 2) ? 1 : 0;
    expected += StrFormat("neutraj_encode_us_bucket{le=\"%.0f\"} %llu\n",
                          LatencyHistogram::BucketUpperMicros(b),
                          static_cast<unsigned long long>(cumulative));
  }
  expected +=
      "neutraj_encode_us_bucket{le=\"+Inf\"} 2\n"
      "neutraj_encode_us_sum 4\n"
      "neutraj_encode_us_count 2\n";
  EXPECT_EQ(RenderPrometheus(reg.Snapshot()), expected);
}

// -- JSONL sink --------------------------------------------------------------

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(JsonlSinkTest, WritesOneFlushedObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/obs_test_metrics.jsonl";
  JsonlSink sink(path);
  EXPECT_EQ(sink.path(), path);
  sink.Write({{"epoch", 0.0}, {"mean_loss", 0.125}});
  // Flushed after every Write: readable before the sink is destroyed.
  ASSERT_EQ(ReadLines(path).size(), 1u);
  sink.Write({{"epoch", 1.0},
              {"nan_metric", std::nan("")},
              {"inf_metric", HUGE_VAL}});

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"epoch\": 0, \"mean_loss\": 0.125}");
  // NaN / Inf are not representable in JSON and must become null.
  EXPECT_EQ(lines[1],
            "{\"epoch\": 1, \"nan_metric\": null, \"inf_metric\": null}");
  std::remove(path.c_str());
}

TEST(JsonlSinkTest, ThrowsWhenTheFileCannotBeCreated) {
  EXPECT_THROW(JsonlSink("/nonexistent-dir/metrics.jsonl"),
               std::runtime_error);
}

TEST(JsonlSinkTest, JsonEscapeHandlesQuotesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain/name_us"), "plain/name_us");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("l1\nl2\tx"), "l1\\nl2\\tx");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

// -- End to end: training telemetry ------------------------------------------

NeuTrajConfig ObsTinyConfig() {
  NeuTrajConfig cfg = NeuTrajConfig::NeuTraj();
  cfg.embedding_dim = 8;
  cfg.scan_width = 1;
  cfg.sampling_num = 3;
  cfg.batch_size = 5;
  cfg.epochs = 2;
  return cfg;
}

TEST(ObsTrainingTest, JsonlSinkGetsOneEpochLineAndNumericsAreUnchanged) {
  Rng rng(97);
  const std::vector<Trajectory> corpus =
      neutraj::testing::RandomCorpus(10, 5, 9, 200.0, &rng);
  const DistanceMatrix d = ComputePairwiseDistances(corpus, Measure::kFrechet);
  BoundingBox region = BoundingBox::Empty();
  for (const Trajectory& t : corpus) region.Extend(t.Bounds());
  const Grid grid(region.Inflated(10.0), 50.0);
  const NeuTrajConfig cfg = ObsTinyConfig();

  // Run once without telemetry, once with the JSONL sink attached: losses
  // must be bit-identical (the sink only observes; it never perturbs the
  // RNG streams, sampling or gradients).
  Trainer plain(cfg, grid, corpus, d);
  const TrainResult base = plain.Train();

  const std::string path = ::testing::TempDir() + "/obs_test_train.jsonl";
  Trainer instrumented(cfg, grid, corpus, d);
  JsonlSink sink(path);
  instrumented.SetMetricsSink(&sink);
  const TrainResult result = instrumented.Train();

  ASSERT_EQ(result.epochs.size(), base.epochs.size());
  for (size_t e = 0; e < result.epochs.size(); ++e) {
    EXPECT_EQ(result.epochs[e].mean_loss, base.epochs[e].mean_loss)
        << "telemetry changed training numerics at epoch " << e;
  }

  // One parseable line per epoch, carrying the extended telemetry fields.
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), cfg.epochs);
  for (size_t e = 0; e < lines.size(); ++e) {
    EXPECT_EQ(lines[e].front(), '{');
    EXPECT_EQ(lines[e].back(), '}');
    EXPECT_NE(lines[e].find(StrFormat("\"epoch\": %zu", e)),
              std::string::npos);
    for (const char* key :
         {"mean_loss", "grad_norm", "learning_rate", "sampled_pairs",
          "encoded_trajs", "trajs_per_sec", "sampler_fill",
          "sam_attention_entropy"}) {
      EXPECT_NE(lines[e].find('"' + std::string(key) + '"'),
                std::string::npos)
          << "epoch line " << e << " missing key " << key << ": " << lines[e];
    }
  }

  // The epoch stats themselves carry the new telemetry.
  const EpochStats& last = result.epochs.back();
  EXPECT_GT(last.sampled_pairs, 0u);
  EXPECT_GT(last.encoded_trajs, 0u);
  EXPECT_GT(last.learning_rate, 0.0);
  EXPECT_GT(last.sampler_fill, 0.0);
  EXPECT_LE(last.sampler_fill, 1.0);
  EXPECT_GT(last.sam_attention_entropy, 0.0)
      << "SAM read-attention entropy should be positive once memory fills";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neutraj::obs
