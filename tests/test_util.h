// Shared helpers for the test suite: random trajectory generation and
// gradient-check utilities.

#ifndef NEUTRAJ_TESTS_TEST_UTIL_H_
#define NEUTRAJ_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/random.h"
#include "geo/trajectory.h"

namespace neutraj::testing {

/// A random walk trajectory of `len` points inside [0, extent]^2.
inline Trajectory RandomTrajectory(size_t len, double extent, Rng* rng) {
  Trajectory t;
  double x = rng->Uniform(0.2 * extent, 0.8 * extent);
  double y = rng->Uniform(0.2 * extent, 0.8 * extent);
  for (size_t i = 0; i < len; ++i) {
    t.Append(Point(x, y));
    x += rng->Gaussian(0.0, extent * 0.03);
    y += rng->Gaussian(0.0, extent * 0.03);
  }
  return t;
}

/// A corpus of random trajectories with lengths in [min_len, max_len].
inline std::vector<Trajectory> RandomCorpus(size_t n, size_t min_len,
                                            size_t max_len, double extent,
                                            Rng* rng) {
  std::vector<Trajectory> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t len = static_cast<size_t>(rng->UniformInt(
        static_cast<int64_t>(min_len), static_cast<int64_t>(max_len)));
    out.push_back(RandomTrajectory(len, extent, rng));
  }
  return out;
}

}  // namespace neutraj::testing

#endif  // NEUTRAJ_TESTS_TEST_UTIL_H_
