// Finite-difference validation of every hand-written backward pass — the
// highest-risk code in the library. Each case builds a scalar loss, runs
// the analytic backward once, then compares each parameter gradient against
// central differences of the recomputed loss.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "core/loss.h"
#include "core/similarity.h"
#include "eval/gradcheck.h"
#include "geo/grid.h"
#include "nn/attention.h"
#include "nn/encoder.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "nn/memory_tensor.h"
#include "nn/sam_cell.h"
#include "test_util.h"

namespace neutraj::nn {
namespace {

using neutraj::testing::RandomTrajectory;

/// Compares the accumulated analytic gradients of `params` against central
/// finite differences of `loss_fn`. At most `max_checks` entries per
/// parameter are probed (strided deterministically) to keep runtime sane.
void CheckParamGradients(const std::vector<Param*>& params,
                         const std::function<double()>& loss_fn,
                         double eps = 1e-6, double tol = 2e-5,
                         size_t max_checks = 32) {
  for (Param* p : params) {
    auto& value = p->value.values();
    const auto& grad = p->grad.values();
    const size_t stride = std::max<size_t>(1, value.size() / max_checks);
    for (size_t k = 0; k < value.size(); k += stride) {
      const double saved = value[k];
      value[k] = saved + eps;
      const double up = loss_fn();
      value[k] = saved - eps;
      const double down = loss_fn();
      value[k] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = grad[k];
      const double scale = std::max({1.0, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * scale)
          << "param " << p->name << " entry " << k;
    }
  }
}

Grid TestGrid() {
  BoundingBox region = BoundingBox::Empty();
  region.Extend(Point(0, 0));
  region.Extend(Point(1000, 1000));
  return Grid(region, 100.0);  // 10 x 10 cells.
}

TEST(GradCheckTest, LinearLayer) {
  Rng rng(31);
  Linear layer("lin", 4, 3);
  layer.Initialize(&rng);
  const Vector x = {0.3, -0.7, 1.2};
  const Vector target = {0.1, 0.2, -0.3, 0.4};

  auto loss_fn = [&]() {
    Vector y;
    layer.Forward(x, &y);
    double l = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      l += 0.5 * (y[i] - target[i]) * (y[i] - target[i]);
    }
    return l;
  };

  // Analytic pass.
  Vector y;
  layer.Forward(x, &y);
  Vector dy(y.size());
  for (size_t i = 0; i < y.size(); ++i) dy[i] = y[i] - target[i];
  ZeroGrads(layer.Params());
  Vector dx(3, 0.0);
  layer.Backward(x, dy, &dx);
  CheckParamGradients(layer.Params(), loss_fn);

  // dx check: perturb the input.
  const double eps = 1e-6;
  Vector xx = x;
  for (size_t k = 0; k < xx.size(); ++k) {
    const double saved = xx[k];
    auto eval = [&](double v) {
      xx[k] = v;
      Vector yy;
      layer.Forward(xx, &yy);
      double l = 0.0;
      for (size_t i = 0; i < yy.size(); ++i) {
        l += 0.5 * (yy[i] - target[i]) * (yy[i] - target[i]);
      }
      xx[k] = saved;
      return l;
    };
    const double numeric = (eval(saved + eps) - eval(saved - eps)) / (2 * eps);
    EXPECT_NEAR(dx[k], numeric, 1e-6) << "dx entry " << k;
  }
}

TEST(GradCheckTest, AttentionRead) {
  Rng rng(32);
  const size_t k = 9, d = 6;
  Matrix g(k, d);
  for (double& v : g.values()) v = rng.Gaussian(0, 0.5);
  Vector q(d);
  for (double& v : q) v = rng.Gaussian(0, 0.5);
  Vector w(d);
  for (double& v : w) v = rng.Gaussian(0, 1.0);

  auto loss_fn = [&]() {
    AttentionTape tape;
    AttentionForward(g, q, &tape);
    return Dot(tape.mix, w);
  };

  AttentionTape tape;
  AttentionForward(g, q, &tape);
  Vector dq(d, 0.0);
  AttentionBackward(tape, w, nullptr, &dq);

  const double eps = 1e-6;
  for (size_t i = 0; i < d; ++i) {
    const double saved = q[i];
    q[i] = saved + eps;
    const double up = loss_fn();
    q[i] = saved - eps;
    const double down = loss_fn();
    q[i] = saved;
    EXPECT_NEAR(dq[i], (up - down) / (2 * eps), 1e-6) << "dq entry " << i;
  }
}

TEST(GradCheckTest, LstmEncoderSingleTrajectory) {
  Rng rng(33);
  Encoder enc(Backbone::kLstm, TestGrid(), /*hidden=*/5, /*scan_width=*/0);
  enc.Initialize(&rng);
  const Trajectory traj = RandomTrajectory(7, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, /*update_memory=*/false);
    return 0.5 * SquaredNorm(e);
  };

  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);  // dL/dE = E for L = 0.5||E||^2.
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, SamEncoderWithFrozenMemory) {
  Rng rng(34);
  Encoder enc(Backbone::kSamLstm, TestGrid(), /*hidden=*/5, /*scan_width=*/1);
  enc.Initialize(&rng);
  // Seed the memory with nonzero content so the attention path is active;
  // encode read-only so the forward pass is repeatable for finite diffs.
  for (double& v : enc.memory().values()) v = rng.Gaussian(0, 0.3);
  enc.memory().RecomputeWrittenFlags();
  const Trajectory traj = RandomTrajectory(6, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, /*update_memory=*/false);
    return 0.5 * SquaredNorm(e);
  };

  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, SamEncoderZeroScanWidth) {
  // w = 0 (single-cell window) is a boundary case of the attention reader.
  Rng rng(35);
  Encoder enc(Backbone::kSamLstm, TestGrid(), /*hidden=*/4, /*scan_width=*/0);
  enc.Initialize(&rng);
  for (double& v : enc.memory().values()) v = rng.Gaussian(0, 0.3);
  enc.memory().RecomputeWrittenFlags();
  const Trajectory traj = RandomTrajectory(5, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, false);
    return 0.5 * SquaredNorm(e);
  };
  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, GruEncoderSingleTrajectory) {
  Rng rng(38);
  Encoder enc(Backbone::kGru, TestGrid(), /*hidden=*/5, /*scan_width=*/0);
  enc.Initialize(&rng);
  const Trajectory traj = RandomTrajectory(7, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, /*update_memory=*/false);
    return 0.5 * SquaredNorm(e);
  };
  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, SamGruEncoderWithFrozenMemory) {
  Rng rng(39);
  Encoder enc(Backbone::kSamGru, TestGrid(), /*hidden=*/5, /*scan_width=*/1);
  enc.Initialize(&rng);
  for (double& v : enc.memory().values()) v = rng.Gaussian(0, 0.3);
  enc.memory().RecomputeWrittenFlags();
  const Trajectory traj = RandomTrajectory(6, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, /*update_memory=*/false);
    return 0.5 * SquaredNorm(e);
  };
  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, SamLstmCellDirectTwoSteps) {
  // Drives the cell directly (no encoder) through two recurrent steps with
  // an active frozen memory, so the step-to-step (h, c) chain rule is
  // checked without the unroll loop in between.
  Rng rng(51);
  const size_t d = 4;
  SamLstmCell cell("cell", /*input_dim=*/2, d);
  cell.Initialize(&rng);
  MemoryTensor mem(3, 3, d);
  for (double& v : mem.values()) v = rng.Gaussian(0, 0.3);
  mem.RecomputeWrittenFlags();
  std::vector<GridCell> window;
  for (int32_t qy = 0; qy < 3; ++qy) {
    for (int32_t px = 0; px < 3; ++px) window.push_back(GridCell{px, qy});
  }
  const GridCell center{1, 1};
  const Vector x1 = {0.3, -0.4}, x2 = {-0.2, 0.6};

  auto run_forward = [&](Vector* h_out, Vector* c_out, SamTape* t1,
                         SamTape* t2) {
    Vector h1, c1;
    cell.Forward(x1, Vector(d, 0.0), Vector(d, 0.0), window, center, &mem,
                 /*use_memory=*/true, /*update_memory=*/false, t1, &h1, &c1);
    cell.Forward(x2, h1, c1, window, center, &mem, true, false, t2, h_out,
                 c_out);
  };
  auto loss_fn = [&]() {
    Vector h, c;
    SamTape t1, t2;
    run_forward(&h, &c, &t1, &t2);
    return 0.5 * (SquaredNorm(h) + SquaredNorm(c));
  };

  Vector h, c;
  SamTape t1, t2;
  run_forward(&h, &c, &t1, &t2);
  ZeroGrads(cell.Params());
  Vector dh1(d, 0.0), dc1(d, 0.0), dh0(d, 0.0), dc0(d, 0.0);
  cell.Backward(t2, h, c, &dh1, &dc1, nullptr);
  cell.Backward(t1, dh1, dc1, &dh0, &dc0, nullptr);
  CheckParamGradients(cell.Params(), loss_fn);
}

TEST(GradCheckTest, SamGruCellDirectTwoSteps) {
  Rng rng(52);
  const size_t d = 4;
  SamGruCell cell("cell", /*input_dim=*/2, d);
  cell.Initialize(&rng);
  MemoryTensor mem(3, 3, d);
  for (double& v : mem.values()) v = rng.Gaussian(0, 0.3);
  mem.RecomputeWrittenFlags();
  std::vector<GridCell> window;
  for (int32_t qy = 0; qy < 3; ++qy) {
    for (int32_t px = 0; px < 3; ++px) window.push_back(GridCell{px, qy});
  }
  const GridCell center{1, 1};
  const Vector x1 = {0.3, -0.4}, x2 = {-0.2, 0.6};

  auto run_forward = [&](Vector* h_out, GruTape* t1, GruTape* t2) {
    Vector h1;
    cell.Forward(x1, Vector(d, 0.0), window, center, &mem,
                 /*use_memory=*/true, /*update_memory=*/false, t1, &h1);
    cell.Forward(x2, h1, window, center, &mem, true, false, t2, h_out);
  };
  auto loss_fn = [&]() {
    Vector h;
    GruTape t1, t2;
    run_forward(&h, &t1, &t2);
    return 0.5 * SquaredNorm(h);
  };

  Vector h;
  GruTape t1, t2;
  run_forward(&h, &t1, &t2);
  ZeroGrads(cell.Params());
  Vector dh1(d, 0.0), dh0(d, 0.0);
  cell.Backward(t2, h, &dh1, nullptr, nullptr);
  cell.Backward(t1, dh1, &dh0, nullptr, nullptr);
  CheckParamGradients(cell.Params(), loss_fn);
}

TEST(GradCheckTest, PairSimilarityBackprop) {
  Rng rng(36);
  const size_t d = 8;
  Vector ea(d), eb(d);
  for (double& v : ea) v = rng.Gaussian(0, 1);
  for (double& v : eb) v = rng.Gaussian(0, 1);
  const double f = 0.4;
  const double r = 0.7;

  auto loss_fn = [&]() {
    const double g = neutraj::EmbeddingSimilarity(ea, eb);
    return neutraj::SimilarPairLoss(g, f, r).loss;
  };

  const double g = neutraj::EmbeddingSimilarity(ea, eb);
  const neutraj::PairLoss pl = neutraj::SimilarPairLoss(g, f, r);
  Vector dea(d, 0.0), deb(d, 0.0);
  neutraj::BackpropPairSimilarity(ea, eb, g, pl.dg, &dea, &deb);

  const double eps = 1e-6;
  for (size_t k = 0; k < d; ++k) {
    double saved = ea[k];
    ea[k] = saved + eps;
    const double up = loss_fn();
    ea[k] = saved - eps;
    const double down = loss_fn();
    ea[k] = saved;
    EXPECT_NEAR(dea[k], (up - down) / (2 * eps), 1e-6) << "dea " << k;

    saved = eb[k];
    eb[k] = saved + eps;
    const double up2 = loss_fn();
    eb[k] = saved - eps;
    const double down2 = loss_fn();
    eb[k] = saved;
    EXPECT_NEAR(deb[k], (up2 - down2) / (2 * eps), 1e-6) << "deb " << k;
  }
}

TEST(GradCheckTest, EndToEndRankingLossThroughSamEncoder) {
  // Composite check: two trajectories encoded by the SAM encoder, pair
  // similarity, and the dissimilar-pair margin loss in its active branch.
  Rng rng(37);
  Encoder enc(Backbone::kSamLstm, TestGrid(), /*hidden=*/4, /*scan_width=*/1);
  enc.Initialize(&rng);
  for (double& v : enc.memory().values()) v = rng.Gaussian(0, 0.2);
  enc.memory().RecomputeWrittenFlags();
  const Trajectory ta = RandomTrajectory(5, 1000.0, &rng);
  const Trajectory tb = RandomTrajectory(6, 1000.0, &rng);
  const double f = 0.0;  // Forces the margin branch active (g > 0 always).
  const double r = 1.0;

  auto loss_fn = [&]() {
    const Vector ea = enc.Encode(ta, false);
    const Vector eb = enc.Encode(tb, false);
    const double g = neutraj::EmbeddingSimilarity(ea, eb);
    return neutraj::DissimilarPairLoss(g, f, r).loss;
  };

  EncodeTape tape_a, tape_b;
  const Vector ea = enc.Encode(ta, false, &tape_a);
  const Vector eb = enc.Encode(tb, false, &tape_b);
  const double g = neutraj::EmbeddingSimilarity(ea, eb);
  const neutraj::PairLoss pl = neutraj::DissimilarPairLoss(g, f, r);
  ASSERT_GT(pl.loss, 0.0) << "margin branch must be active for this check";
  Vector dea(4, 0.0), deb(4, 0.0);
  neutraj::BackpropPairSimilarity(ea, eb, g, pl.dg, &dea, &deb);
  ZeroGrads(enc.Params());
  enc.Backward(tape_a, dea);
  enc.Backward(tape_b, deb);
  CheckParamGradients(enc.Params(), loss_fn, 1e-6, 5e-5);
}

// -- Exhaustive audit (shared battery, see src/eval/gradcheck.h) ------------

class GradAuditTest : public ::testing::Test {
 protected:
  // The battery is deterministic, so run it once for the whole fixture.
  static void SetUpTestSuite() {
    records_ = new std::vector<eval::GradAuditRecord>(
        eval::RunGradientAudit(eval::GradAuditOptions{}));
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }

  static const std::vector<eval::GradAuditRecord>& records() {
    return *records_;
  }

  /// Max |analytic gradient| over every audited block of `case_name` whose
  /// block label matches `block` exactly; -1 when absent.
  static double BlockSignal(const std::string& case_name,
                            const std::string& block) {
    double found = -1.0;
    for (const auto& r : records()) {
      if (r.case_name == case_name && r.block == block) {
        found = std::max(found, r.max_abs_grad);
      }
    }
    return found;
  }

 private:
  static const std::vector<eval::GradAuditRecord>* records_;
};

const std::vector<eval::GradAuditRecord>* GradAuditTest::records_ = nullptr;

TEST_F(GradAuditTest, EveryBlockUnderTolerance) {
  ASSERT_FALSE(records().empty());
  for (const auto& r : records()) {
    EXPECT_LT(r.max_rel_err, 1e-4)
        << r.case_name << " " << r.block << " (checked " << r.checked << ")";
    EXPECT_GT(r.checked, 0u) << r.case_name << " " << r.block;
  }
}

TEST_F(GradAuditTest, CoversEveryBackboneAndPath) {
  std::set<std::string> cases;
  for (const auto& r : records()) cases.insert(r.case_name);
  for (const char* expected :
       {"linear/4x3", "attention/read", "attention/da_direct", "attention/k1",
        "attention/masked", "loss/similar", "loss/dissimilar", "loss/mse",
        "lstm/len7_h5", "lstm/len1", "lstm/len4_h3", "gru/len7_h5", "gru/len1",
        "sam_lstm/frozen_w1", "sam_lstm/w0", "sam_lstm/len1",
        "sam_lstm/all_masked", "sam_lstm/after_writes", "sam_gru/frozen_w1",
        "sam_gru/w0", "sam_gru/len1", "sam_gru/all_masked",
        "sam_gru/after_writes", "e2e/ranking_sam_lstm"}) {
    EXPECT_TRUE(cases.count(expected)) << "missing audit case " << expected;
  }
}

TEST_F(GradAuditTest, EveryGateOfEveryStackedParamIsAudited) {
  // Per-gate coverage: each stacked parameter of each backbone must appear
  // split into its gate blocks in at least one case.
  const std::map<std::string, std::vector<std::string>> stacks = {
      {"encoder.lstm.Wx", {"i", "f", "g", "o"}},
      {"encoder.lstm.Wh", {"i", "f", "g", "o"}},
      {"encoder.lstm.b", {"i", "f", "g", "o"}},
      {"encoder.sam.Wg", {"f", "i", "s", "o"}},
      {"encoder.sam.Ug", {"f", "i", "s", "o"}},
      {"encoder.sam.bg", {"f", "i", "s", "o"}},
      {"encoder.gru.Wg", {"r", "z", "s"}},
      {"encoder.gru.Ug", {"r", "z", "s"}},
      {"encoder.gru.bg", {"r", "z", "s"}},
  };
  std::set<std::string> blocks;
  for (const auto& r : records()) blocks.insert(r.block);
  for (const auto& [param, gates] : stacks) {
    for (const std::string& gate : gates) {
      EXPECT_TRUE(blocks.count(param + "[" + gate + "]"))
          << "no audited gate block " << param << "[" << gate << "]";
    }
  }
}

TEST_F(GradAuditTest, ActiveMemoryPathsCarryGradientSignal) {
  // The frozen-memory SAM cases are constructed so that every parameter —
  // including the spatial gate and the attention fusion layer — receives a
  // nonzero gradient. A zero here means a silently dead path.
  for (const char* block :
       {"encoder.sam.Wg[f]", "encoder.sam.Wg[i]", "encoder.sam.Wg[s]",
        "encoder.sam.Wg[o]", "encoder.sam.Ug[s]", "encoder.sam.bg[s]",
        "encoder.sam.Wc", "encoder.sam.Uc", "encoder.sam.bc",
        "encoder.sam.Whis", "encoder.sam.bhis"}) {
    EXPECT_GT(BlockSignal("sam_lstm/frozen_w1", block), 0.0) << block;
  }
  for (const char* block :
       {"encoder.gru.Wg[r]", "encoder.gru.Wg[z]", "encoder.gru.Wg[s]",
        "encoder.gru.Wn", "encoder.gru.Un", "encoder.gru.bn",
        "encoder.gru.Whis", "encoder.gru.bhis"}) {
    EXPECT_GT(BlockSignal("sam_gru/frozen_w1", block), 0.0) << block;
  }
}

TEST_F(GradAuditTest, InertPathsStayInert) {
  // Plain GRU (no memory): the spatial gate must be exactly dead weight.
  EXPECT_EQ(BlockSignal("gru/len7_h5", "encoder.gru.Wg[s]"), 0.0);
  EXPECT_EQ(BlockSignal("gru/len7_h5", "encoder.gru.Ug[s]"), 0.0);
  EXPECT_EQ(BlockSignal("gru/len7_h5", "encoder.gru.bg[s]"), 0.0);
  // All-masked windows degrade to the plain cell: the fusion layer and the
  // spatial gate contribute nothing.
  EXPECT_EQ(BlockSignal("sam_lstm/all_masked", "encoder.sam.Whis"), 0.0);
  EXPECT_EQ(BlockSignal("sam_gru/all_masked", "encoder.gru.Whis"), 0.0);
  // Length-1 trajectories: recurrent weights see h_prev = 0 and must have a
  // zero gradient — signal here would mean the initial state leaks.
  EXPECT_EQ(BlockSignal("lstm/len1", "encoder.lstm.Wh[i]"), 0.0);
  EXPECT_EQ(BlockSignal("gru/len1", "encoder.gru.Ug[z]"), 0.0);
}

TEST_F(GradAuditTest, TableRendersEveryRecord) {
  const std::string table = eval::FormatGradAuditTable(records());
  EXPECT_NE(table.find("max rel err"), std::string::npos);
  // One header line + one line per record.
  EXPECT_EQ(static_cast<size_t>(
                std::count(table.begin(), table.end(), '\n')),
            records().size() + 1);
  EXPECT_NE(table.find("e2e/ranking_sam_lstm"), std::string::npos);
}

}  // namespace
}  // namespace neutraj::nn
