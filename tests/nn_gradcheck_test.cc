// Finite-difference validation of every hand-written backward pass — the
// highest-risk code in the library. Each case builds a scalar loss, runs
// the analytic backward once, then compares each parameter gradient against
// central differences of the recomputed loss.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/random.h"
#include "core/loss.h"
#include "core/similarity.h"
#include "geo/grid.h"
#include "nn/attention.h"
#include "nn/encoder.h"
#include "nn/linear.h"
#include "test_util.h"

namespace neutraj::nn {
namespace {

using neutraj::testing::RandomTrajectory;

/// Compares the accumulated analytic gradients of `params` against central
/// finite differences of `loss_fn`. At most `max_checks` entries per
/// parameter are probed (strided deterministically) to keep runtime sane.
void CheckParamGradients(const std::vector<Param*>& params,
                         const std::function<double()>& loss_fn,
                         double eps = 1e-6, double tol = 2e-5,
                         size_t max_checks = 32) {
  for (Param* p : params) {
    auto& value = p->value.values();
    const auto& grad = p->grad.values();
    const size_t stride = std::max<size_t>(1, value.size() / max_checks);
    for (size_t k = 0; k < value.size(); k += stride) {
      const double saved = value[k];
      value[k] = saved + eps;
      const double up = loss_fn();
      value[k] = saved - eps;
      const double down = loss_fn();
      value[k] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = grad[k];
      const double scale = std::max({1.0, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * scale)
          << "param " << p->name << " entry " << k;
    }
  }
}

Grid TestGrid() {
  BoundingBox region = BoundingBox::Empty();
  region.Extend(Point(0, 0));
  region.Extend(Point(1000, 1000));
  return Grid(region, 100.0);  // 10 x 10 cells.
}

TEST(GradCheckTest, LinearLayer) {
  Rng rng(31);
  Linear layer("lin", 4, 3);
  layer.Initialize(&rng);
  const Vector x = {0.3, -0.7, 1.2};
  const Vector target = {0.1, 0.2, -0.3, 0.4};

  auto loss_fn = [&]() {
    Vector y;
    layer.Forward(x, &y);
    double l = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      l += 0.5 * (y[i] - target[i]) * (y[i] - target[i]);
    }
    return l;
  };

  // Analytic pass.
  Vector y;
  layer.Forward(x, &y);
  Vector dy(y.size());
  for (size_t i = 0; i < y.size(); ++i) dy[i] = y[i] - target[i];
  ZeroGrads(layer.Params());
  Vector dx(3, 0.0);
  layer.Backward(x, dy, &dx);
  CheckParamGradients(layer.Params(), loss_fn);

  // dx check: perturb the input.
  const double eps = 1e-6;
  Vector xx = x;
  for (size_t k = 0; k < xx.size(); ++k) {
    const double saved = xx[k];
    auto eval = [&](double v) {
      xx[k] = v;
      Vector yy;
      layer.Forward(xx, &yy);
      double l = 0.0;
      for (size_t i = 0; i < yy.size(); ++i) {
        l += 0.5 * (yy[i] - target[i]) * (yy[i] - target[i]);
      }
      xx[k] = saved;
      return l;
    };
    const double numeric = (eval(saved + eps) - eval(saved - eps)) / (2 * eps);
    EXPECT_NEAR(dx[k], numeric, 1e-6) << "dx entry " << k;
  }
}

TEST(GradCheckTest, AttentionRead) {
  Rng rng(32);
  const size_t k = 9, d = 6;
  Matrix g(k, d);
  for (double& v : g.values()) v = rng.Gaussian(0, 0.5);
  Vector q(d);
  for (double& v : q) v = rng.Gaussian(0, 0.5);
  Vector w(d);
  for (double& v : w) v = rng.Gaussian(0, 1.0);

  auto loss_fn = [&]() {
    AttentionTape tape;
    AttentionForward(g, q, &tape);
    return Dot(tape.mix, w);
  };

  AttentionTape tape;
  AttentionForward(g, q, &tape);
  Vector dq(d, 0.0);
  AttentionBackward(tape, w, nullptr, &dq);

  const double eps = 1e-6;
  for (size_t i = 0; i < d; ++i) {
    const double saved = q[i];
    q[i] = saved + eps;
    const double up = loss_fn();
    q[i] = saved - eps;
    const double down = loss_fn();
    q[i] = saved;
    EXPECT_NEAR(dq[i], (up - down) / (2 * eps), 1e-6) << "dq entry " << i;
  }
}

TEST(GradCheckTest, LstmEncoderSingleTrajectory) {
  Rng rng(33);
  Encoder enc(Backbone::kLstm, TestGrid(), /*hidden=*/5, /*scan_width=*/0);
  enc.Initialize(&rng);
  const Trajectory traj = RandomTrajectory(7, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, /*update_memory=*/false);
    return 0.5 * SquaredNorm(e);
  };

  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);  // dL/dE = E for L = 0.5||E||^2.
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, SamEncoderWithFrozenMemory) {
  Rng rng(34);
  Encoder enc(Backbone::kSamLstm, TestGrid(), /*hidden=*/5, /*scan_width=*/1);
  enc.Initialize(&rng);
  // Seed the memory with nonzero content so the attention path is active;
  // encode read-only so the forward pass is repeatable for finite diffs.
  for (double& v : enc.memory().values()) v = rng.Gaussian(0, 0.3);
  enc.memory().RecomputeWrittenFlags();
  const Trajectory traj = RandomTrajectory(6, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, /*update_memory=*/false);
    return 0.5 * SquaredNorm(e);
  };

  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, SamEncoderZeroScanWidth) {
  // w = 0 (single-cell window) is a boundary case of the attention reader.
  Rng rng(35);
  Encoder enc(Backbone::kSamLstm, TestGrid(), /*hidden=*/4, /*scan_width=*/0);
  enc.Initialize(&rng);
  for (double& v : enc.memory().values()) v = rng.Gaussian(0, 0.3);
  enc.memory().RecomputeWrittenFlags();
  const Trajectory traj = RandomTrajectory(5, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, false);
    return 0.5 * SquaredNorm(e);
  };
  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, GruEncoderSingleTrajectory) {
  Rng rng(38);
  Encoder enc(Backbone::kGru, TestGrid(), /*hidden=*/5, /*scan_width=*/0);
  enc.Initialize(&rng);
  const Trajectory traj = RandomTrajectory(7, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, /*update_memory=*/false);
    return 0.5 * SquaredNorm(e);
  };
  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, SamGruEncoderWithFrozenMemory) {
  Rng rng(39);
  Encoder enc(Backbone::kSamGru, TestGrid(), /*hidden=*/5, /*scan_width=*/1);
  enc.Initialize(&rng);
  for (double& v : enc.memory().values()) v = rng.Gaussian(0, 0.3);
  enc.memory().RecomputeWrittenFlags();
  const Trajectory traj = RandomTrajectory(6, 1000.0, &rng);

  auto loss_fn = [&]() {
    const Vector e = enc.Encode(traj, /*update_memory=*/false);
    return 0.5 * SquaredNorm(e);
  };
  EncodeTape tape;
  const Vector e = enc.Encode(traj, false, &tape);
  ZeroGrads(enc.Params());
  enc.Backward(tape, e);
  CheckParamGradients(enc.Params(), loss_fn);
}

TEST(GradCheckTest, PairSimilarityBackprop) {
  Rng rng(36);
  const size_t d = 8;
  Vector ea(d), eb(d);
  for (double& v : ea) v = rng.Gaussian(0, 1);
  for (double& v : eb) v = rng.Gaussian(0, 1);
  const double f = 0.4;
  const double r = 0.7;

  auto loss_fn = [&]() {
    const double g = neutraj::EmbeddingSimilarity(ea, eb);
    return neutraj::SimilarPairLoss(g, f, r).loss;
  };

  const double g = neutraj::EmbeddingSimilarity(ea, eb);
  const neutraj::PairLoss pl = neutraj::SimilarPairLoss(g, f, r);
  Vector dea(d, 0.0), deb(d, 0.0);
  neutraj::BackpropPairSimilarity(ea, eb, g, pl.dg, &dea, &deb);

  const double eps = 1e-6;
  for (size_t k = 0; k < d; ++k) {
    double saved = ea[k];
    ea[k] = saved + eps;
    const double up = loss_fn();
    ea[k] = saved - eps;
    const double down = loss_fn();
    ea[k] = saved;
    EXPECT_NEAR(dea[k], (up - down) / (2 * eps), 1e-6) << "dea " << k;

    saved = eb[k];
    eb[k] = saved + eps;
    const double up2 = loss_fn();
    eb[k] = saved - eps;
    const double down2 = loss_fn();
    eb[k] = saved;
    EXPECT_NEAR(deb[k], (up2 - down2) / (2 * eps), 1e-6) << "deb " << k;
  }
}

TEST(GradCheckTest, EndToEndRankingLossThroughSamEncoder) {
  // Composite check: two trajectories encoded by the SAM encoder, pair
  // similarity, and the dissimilar-pair margin loss in its active branch.
  Rng rng(37);
  Encoder enc(Backbone::kSamLstm, TestGrid(), /*hidden=*/4, /*scan_width=*/1);
  enc.Initialize(&rng);
  for (double& v : enc.memory().values()) v = rng.Gaussian(0, 0.2);
  enc.memory().RecomputeWrittenFlags();
  const Trajectory ta = RandomTrajectory(5, 1000.0, &rng);
  const Trajectory tb = RandomTrajectory(6, 1000.0, &rng);
  const double f = 0.0;  // Forces the margin branch active (g > 0 always).
  const double r = 1.0;

  auto loss_fn = [&]() {
    const Vector ea = enc.Encode(ta, false);
    const Vector eb = enc.Encode(tb, false);
    const double g = neutraj::EmbeddingSimilarity(ea, eb);
    return neutraj::DissimilarPairLoss(g, f, r).loss;
  };

  EncodeTape tape_a, tape_b;
  const Vector ea = enc.Encode(ta, false, &tape_a);
  const Vector eb = enc.Encode(tb, false, &tape_b);
  const double g = neutraj::EmbeddingSimilarity(ea, eb);
  const neutraj::PairLoss pl = neutraj::DissimilarPairLoss(g, f, r);
  ASSERT_GT(pl.loss, 0.0) << "margin branch must be active for this check";
  Vector dea(4, 0.0), deb(4, 0.0);
  neutraj::BackpropPairSimilarity(ea, eb, g, pl.dg, &dea, &deb);
  ZeroGrads(enc.Params());
  enc.Backward(tape_a, dea);
  enc.Backward(tape_b, deb);
  CheckParamGradients(enc.Params(), loss_fn, 1e-6, 5e-5);
}

}  // namespace
}  // namespace neutraj::nn
