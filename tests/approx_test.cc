// Tests for the approximate-algorithm baselines: grid snapping, FastDTW,
// the Hausdorff distance-transform embedding and the AP registry.

#include <gtest/gtest.h>

#include <cmath>

#include "approx/approx_registry.h"
#include "approx/fast_dtw.h"
#include "approx/frechet_approx.h"
#include "approx/grid_snap.h"
#include "approx/hausdorff_embed.h"
#include "distance/measures.h"
#include "test_util.h"

namespace neutraj {
namespace {

TEST(GridSnapTest, SnapsToCellCentersAndDedupes) {
  Trajectory t({{0.1, 0.1}, {0.2, 0.3}, {0.4, 0.1}, {5.5, 5.5}});
  const Trajectory s = SnapToGrid(t, 1.0);
  // First three points share cell (0,0) -> center (0.5, 0.5); last is (5.5, 5.5).
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].x, 0.5);
  EXPECT_DOUBLE_EQ(s[0].y, 0.5);
  EXPECT_DOUBLE_EQ(s[1].x, 5.5);
  EXPECT_DOUBLE_EQ(s[1].y, 5.5);
}

TEST(GridSnapTest, ShiftMovesTheGrid) {
  Trajectory t({{0.9, 0.9}});
  const Trajectory a = SnapToGrid(t, 1.0);
  const Trajectory b = SnapToGrid(t, 1.0, Point(0.5, 0.5));
  EXPECT_DOUBLE_EQ(a[0].x, 0.5);
  EXPECT_DOUBLE_EQ(b[0].x, 1.0);  // Cell [0.5, 1.5) centered at 1.0.
}

TEST(GridSnapTest, SnapErrorBounded) {
  Rng rng(81);
  const double cell = 10.0;
  for (int i = 0; i < 20; ++i) {
    const Trajectory t = testing::RandomTrajectory(15, 500.0, &rng);
    const Trajectory s = SnapToGrid(t, cell);
    // Every original point is within half a cell diagonal of some snapped point.
    const double bound = cell * std::sqrt(2.0) / 2.0 + 1e-9;
    EXPECT_LE(HausdorffDistance(t, s), bound);
  }
  EXPECT_THROW(SnapToGrid(Trajectory({{0, 0}}), 0.0), std::invalid_argument);
}

TEST(ApproxFrechetTest, ErrorBoundedBySnapResolution) {
  Rng rng(82);
  const double cell = 15.0;
  for (int i = 0; i < 20; ++i) {
    const Trajectory a = testing::RandomTrajectory(20, 600.0, &rng);
    const Trajectory b = testing::RandomTrajectory(25, 600.0, &rng);
    const double exact = FrechetDistance(a, b);
    const double approx = ApproxFrechetDistance(a, b, cell);
    // Snapping moves each point by at most cell*sqrt(2)/2, so the Fréchet
    // value changes by at most cell*sqrt(2).
    EXPECT_NEAR(approx, exact, cell * std::sqrt(2.0) + 1e-9);
  }
}

TEST(FastDtwTest, FullWindowEqualsExactDtw) {
  Rng rng(83);
  for (int i = 0; i < 10; ++i) {
    const Trajectory a = testing::RandomTrajectory(12, 400.0, &rng);
    const Trajectory b = testing::RandomTrajectory(9, 400.0, &rng);
    const DtwResult full = DtwWithPath(a, b);
    EXPECT_NEAR(full.distance, DtwDistance(a, b), 1e-9);
    // Path endpoints and monotonicity.
    ASSERT_FALSE(full.path.empty());
    const auto expected_front = std::make_pair<size_t, size_t>(0, 0);
    const auto expected_back = std::make_pair(a.size() - 1, b.size() - 1);
    EXPECT_EQ(full.path.front(), expected_front);
    EXPECT_EQ(full.path.back(), expected_back);
    for (size_t k = 1; k < full.path.size(); ++k) {
      EXPECT_GE(full.path[k].first, full.path[k - 1].first);
      EXPECT_GE(full.path[k].second, full.path[k - 1].second);
      EXPECT_LE(full.path[k].first - full.path[k - 1].first, 1u);
      EXPECT_LE(full.path[k].second - full.path[k - 1].second, 1u);
    }
  }
}

TEST(FastDtwTest, NeverUnderestimatesAndConvergesWithRadius) {
  Rng rng(84);
  for (int i = 0; i < 15; ++i) {
    const Trajectory a = testing::RandomTrajectory(40, 500.0, &rng);
    const Trajectory b = testing::RandomTrajectory(35, 500.0, &rng);
    const double exact = DtwDistance(a, b);
    double prev = std::numeric_limits<double>::infinity();
    for (int radius : {0, 1, 2, 6}) {
      const double approx = FastDtwDistance(a, b, radius);
      // The refinement window restricts the DP, so FastDTW >= exact DTW.
      EXPECT_GE(approx, exact - 1e-9) << "radius " << radius;
      prev = approx;
    }
    // A generous radius on short inputs recovers the exact value.
    EXPECT_NEAR(FastDtwDistance(a, b, 40), exact, 1e-9);
    (void)prev;
  }
}

TEST(FastDtwTest, ApproximationIsUsuallyTight) {
  Rng rng(85);
  int tight = 0;
  const int reps = 30;
  for (int i = 0; i < reps; ++i) {
    const Trajectory a = testing::RandomTrajectory(50, 500.0, &rng);
    const Trajectory b = testing::RandomTrajectory(45, 500.0, &rng);
    const double exact = DtwDistance(a, b);
    const double approx = FastDtwDistance(a, b, 1);
    if (approx <= exact * 1.1 + 1e-9) ++tight;
  }
  EXPECT_GE(tight, reps * 2 / 3)
      << "FastDTW radius 1 should be within 10% on most random pairs";
}

TEST(BandedDtwTest, FullBandEqualsExactDtw) {
  Rng rng(90);
  for (int i = 0; i < 10; ++i) {
    const Trajectory a = testing::RandomTrajectory(20, 400.0, &rng);
    const Trajectory b = testing::RandomTrajectory(14, 400.0, &rng);
    EXPECT_NEAR(BandedDtwDistance(a, b, 1.0), DtwDistance(a, b), 1e-9);
  }
}

TEST(BandedDtwTest, NarrowBandNeverUnderestimates) {
  Rng rng(91);
  for (int i = 0; i < 15; ++i) {
    const Trajectory a = testing::RandomTrajectory(30, 400.0, &rng);
    const Trajectory b = testing::RandomTrajectory(25, 400.0, &rng);
    const double exact = DtwDistance(a, b);
    double prev = std::numeric_limits<double>::infinity();
    for (double band : {0.05, 0.2, 0.5, 1.0}) {
      const double v = BandedDtwDistance(a, b, band);
      EXPECT_GE(v, exact - 1e-9) << "band " << band;
      EXPECT_LE(v, prev + 1e-9) << "wider bands can only improve";
      prev = v;
    }
  }
}

TEST(BandedDtwTest, ValidatesArguments) {
  const Trajectory ok({{0, 0}, {1, 1}});
  EXPECT_THROW(BandedDtwDistance(Trajectory(), ok, 0.5), std::invalid_argument);
  EXPECT_THROW(BandedDtwDistance(ok, ok, -0.1), std::invalid_argument);
  EXPECT_THROW(BandedDtwDistance(ok, ok, 1.5), std::invalid_argument);
}

TEST(FastDtwTest, RejectsBadInputs) {
  const Trajectory ok({{0, 0}, {1, 1}});
  EXPECT_THROW(FastDtwDistance(Trajectory(), ok, 1), std::invalid_argument);
  EXPECT_THROW(FastDtwDistance(ok, ok, -1), std::invalid_argument);
  std::vector<std::pair<size_t, size_t>> bad_window(1, {0, 5});
  EXPECT_THROW(WindowedDtw(ok, ok, bad_window), std::invalid_argument);
}

Grid EmbedGrid() {
  BoundingBox region = BoundingBox::Empty();
  region.Extend(Point(0, 0));
  region.Extend(Point(600, 600));
  return Grid(region, 25.0);
}

TEST(HausdorffEmbedTest, IdenticalTrajectoriesEmbedIdentically) {
  Rng rng(86);
  const HausdorffEmbedder embedder(EmbedGrid());
  const Trajectory t = testing::RandomTrajectory(15, 600.0, &rng);
  EXPECT_DOUBLE_EQ(embedder.ApproxHausdorff(t, t), 0.0);
}

TEST(HausdorffEmbedTest, EmbeddingIsDistanceTransform) {
  const HausdorffEmbedder embedder(EmbedGrid());
  const Trajectory t({{300, 300}});
  const auto e = embedder.Embed(t);
  const Grid& g = embedder.grid();
  ASSERT_EQ(e.size(), static_cast<size_t>(g.NumCells()));
  // The cell containing the point has (near-)zero value; distant cells grow.
  const GridCell at = g.CellOf(Point(300, 300));
  const double near = e[static_cast<size_t>(g.FlatIndex(at))];
  EXPECT_LT(near, g.cell_width());
  const double far = e[static_cast<size_t>(g.FlatIndex(GridCell{0, 0}))];
  EXPECT_GT(far, 10 * near - 1e-9);
  // Values are capped.
  for (double v : e) EXPECT_LE(v, embedder.cap() + 1e-9);
}

TEST(HausdorffEmbedTest, ChamferApproximatesTrueDistances) {
  // Distance-transform values should approximate true point distances
  // within the chamfer metric's known ~8% overestimate plus grid effects.
  const HausdorffEmbedder embedder(EmbedGrid());
  const Trajectory t({{100, 100}});
  const auto e = embedder.Embed(t);
  const Grid& g = embedder.grid();
  for (int32_t qy = 0; qy < g.num_rows(); qy += 5) {
    for (int32_t px = 0; px < g.num_cols(); px += 5) {
      const Point center = g.CellCenter(GridCell{px, qy});
      const double truth = EuclideanDistance(center, Point(100, 100));
      const double approx = e[static_cast<size_t>(g.FlatIndex(GridCell{px, qy}))];
      if (truth < embedder.cap() * 0.9) {
        EXPECT_NEAR(approx, truth, 0.09 * truth + g.cell_width())
            << "cell " << px << "," << qy;
      }
    }
  }
}

TEST(HausdorffEmbedTest, ApproximatesHausdorffOnRandomPairs) {
  Rng rng(87);
  const HausdorffEmbedder embedder(EmbedGrid());
  for (int i = 0; i < 15; ++i) {
    const Trajectory a = testing::RandomTrajectory(20, 600.0, &rng);
    const Trajectory b = testing::RandomTrajectory(15, 600.0, &rng);
    const double exact = HausdorffDistance(a, b);
    const double approx = embedder.ApproxHausdorff(a, b);
    // Linf of distance transforms lower-bounds Hausdorff (up to grid
    // discretization); it must stay in the right ballpark.
    EXPECT_LE(approx, 1.1 * exact + 2 * embedder.grid().cell_width());
    EXPECT_GE(approx, 0.2 * exact - 2 * embedder.grid().cell_width());
  }
}

TEST(ApproxRegistryTest, FactoryCoversMeasures) {
  ApproxParams params = ApproxParams::ForRegion(EmbedGrid().region());
  EXPECT_NE(ApproxDistance::Create(Measure::kFrechet, params), nullptr);
  EXPECT_NE(ApproxDistance::Create(Measure::kDtw, params), nullptr);
  EXPECT_NE(ApproxDistance::Create(Measure::kHausdorff, params), nullptr);
  EXPECT_EQ(ApproxDistance::Create(Measure::kErp, params), nullptr)
      << "no approximate algorithm exists for ERP (paper Table II)";
  EXPECT_GT(params.frechet_cell_size, 0.0);
}

TEST(ApproxRegistryTest, SketchDistanceMatchesOneShot) {
  Rng rng(88);
  ApproxParams params = ApproxParams::ForRegion(EmbedGrid().region());
  for (Measure m : {Measure::kFrechet, Measure::kDtw, Measure::kHausdorff}) {
    const auto ap = ApproxDistance::Create(m, params);
    const Trajectory a = testing::RandomTrajectory(12, 600.0, &rng);
    const Trajectory b = testing::RandomTrajectory(14, 600.0, &rng);
    const auto sa = ap->Prepare(a);
    const auto sb = ap->Prepare(b);
    EXPECT_DOUBLE_EQ(ap->Distance(*sa, *sb), ap->Distance(a, b))
        << ap->name();
    EXPECT_NEAR(ap->Distance(*sa, *sb), ap->Distance(*sb, *sa), 1e-9)
        << ap->name() << " should be symmetric";
    EXPECT_NEAR(ap->Distance(*sa, *sa), 0.0, 1e-9) << ap->name();
  }
}

TEST(ApproxRegistryTest, TopKReturnsOrderedCandidates) {
  Rng rng(89);
  ApproxParams params = ApproxParams::ForRegion(EmbedGrid().region());
  const auto ap = ApproxDistance::Create(Measure::kFrechet, params);
  const auto corpus = testing::RandomCorpus(25, 8, 16, 600.0, &rng);
  const auto sketches = ap->PrepareCorpus(corpus);
  ASSERT_EQ(sketches.size(), corpus.size());
  const SearchResult r = ap->TopK(sketches, corpus[0], 5, /*exclude=*/0);
  ASSERT_EQ(r.ids.size(), 5u);
  for (size_t i = 1; i < r.dists.size(); ++i) {
    EXPECT_LE(r.dists[i - 1], r.dists[i]);
  }
  for (size_t id : r.ids) EXPECT_NE(id, 0u);
}

}  // namespace
}  // namespace neutraj
