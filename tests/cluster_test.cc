// Tests for DBSCAN and the clustering-agreement metrics.

#include <gtest/gtest.h>

#include "cluster/dbscan.h"
#include "cluster/metrics.h"

#include <cmath>
#include <set>

namespace neutraj {
namespace {

/// Distance matrix with two tight blobs {0,1,2} and {3,4,5} plus an outlier 6.
DistanceMatrix TwoBlobs() {
  DistanceMatrix d(7);
  auto far = 100.0;
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = i + 1; j < 7; ++j) d.Set(i, j, far);
  }
  d.Set(0, 1, 1.0);
  d.Set(0, 2, 1.0);
  d.Set(1, 2, 1.0);
  d.Set(3, 4, 1.0);
  d.Set(3, 5, 1.0);
  d.Set(4, 5, 1.0);
  return d;
}

TEST(DbscanTest, FindsTwoBlobsAndNoise) {
  const Clustering c = Dbscan(TwoBlobs(), /*eps=*/2.0, /*min_pts=*/3);
  EXPECT_EQ(c.num_clusters, 2);
  EXPECT_EQ(c.num_noise, 1u);
  EXPECT_EQ(c.labels[6], kNoise);
  EXPECT_EQ(c.labels[0], c.labels[1]);
  EXPECT_EQ(c.labels[1], c.labels[2]);
  EXPECT_EQ(c.labels[3], c.labels[4]);
  EXPECT_NE(c.labels[0], c.labels[3]);
}

TEST(DbscanTest, EpsControlsMerging) {
  // With a huge eps everything is one cluster.
  const Clustering all = Dbscan(TwoBlobs(), 1000.0, 3);
  EXPECT_EQ(all.num_clusters, 1);
  EXPECT_EQ(all.num_noise, 0u);
  // With a tiny eps everything is noise.
  const Clustering none = Dbscan(TwoBlobs(), 0.1, 3);
  EXPECT_EQ(none.num_clusters, 0);
  EXPECT_EQ(none.num_noise, 7u);
}

TEST(DbscanTest, MinPtsControlsDensity) {
  // min_pts = 4 is denser than either 3-point blob supports.
  const Clustering c = Dbscan(TwoBlobs(), 2.0, 4);
  EXPECT_EQ(c.num_clusters, 0);
}

TEST(DbscanTest, BorderPointsJoinFirstCluster) {
  // Chain: 0-1-2 with 2 close to 1 but not to 0; min_pts 2 makes a chain
  // cluster through density-reachability.
  DistanceMatrix d(3);
  d.Set(0, 1, 1.0);
  d.Set(1, 2, 1.0);
  d.Set(0, 2, 2.0);
  const Clustering c = Dbscan(d, 1.5, 2);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.num_noise, 0u);
}

TEST(DbscanTest, GenericVectorOverloadAndValidation) {
  const std::vector<double> dists = {0, 1, 1, 0};  // 2 points, distance 1.
  const Clustering c = Dbscan(dists, 2, 1.5, 2);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_THROW(Dbscan(dists, 3, 1.0, 2), std::invalid_argument);
  EXPECT_THROW(Dbscan(TwoBlobs(), -1.0, 2), std::invalid_argument);
  EXPECT_THROW(Dbscan(TwoBlobs(), 1.0, 0), std::invalid_argument);
}

TEST(DbscanTest, LabelsAreCompact) {
  // Cluster labels must be exactly 0..num_clusters-1 with no gaps.
  const Clustering c = Dbscan(TwoBlobs(), 2.0, 3);
  std::set<int> labels;
  for (int l : c.labels) {
    if (l != kNoise) labels.insert(l);
  }
  ASSERT_EQ(static_cast<int>(labels.size()), c.num_clusters);
  int expected = 0;
  for (int l : labels) EXPECT_EQ(l, expected++);
}

TEST(ClusterMetricsTest, IdenticalLabelingsScorePerfect) {
  const std::vector<int> labels = {0, 0, 1, 1, 2, -1};
  const ClusterAgreement a = CompareClusterings(labels, labels);
  EXPECT_DOUBLE_EQ(a.homogeneity, 1.0);
  EXPECT_DOUBLE_EQ(a.completeness, 1.0);
  EXPECT_DOUBLE_EQ(a.v_measure, 1.0);
  EXPECT_DOUBLE_EQ(a.adjusted_rand_index, 1.0);
}

TEST(ClusterMetricsTest, LabelPermutationInvariance) {
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<int> renamed = {5, 5, 9, 9, 0, 0};
  const ClusterAgreement a = CompareClusterings(truth, renamed);
  EXPECT_NEAR(a.v_measure, 1.0, 1e-12);
  EXPECT_NEAR(a.adjusted_rand_index, 1.0, 1e-12);
}

TEST(ClusterMetricsTest, SplitClusterIsHomogeneousNotComplete) {
  const std::vector<int> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> split = {0, 0, 1, 1, 2, 2, 3, 3};
  const ClusterAgreement a = CompareClusterings(truth, split);
  EXPECT_NEAR(a.homogeneity, 1.0, 1e-12)
      << "every predicted cluster is pure";
  EXPECT_LT(a.completeness, 1.0) << "true clusters are fragmented";
  EXPECT_LT(a.v_measure, 1.0);
}

TEST(ClusterMetricsTest, MergedClusterIsCompleteNotHomogeneous) {
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<int> merged = {0, 0, 0, 0, 0, 0};
  const ClusterAgreement a = CompareClusterings(truth, merged);
  EXPECT_NEAR(a.completeness, 1.0, 1e-12);
  EXPECT_LT(a.homogeneity, 1.0);
}

TEST(ClusterMetricsTest, RandomLookingDisagreementScoresLow) {
  const std::vector<int> truth = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  const std::vector<int> scrambled = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  const ClusterAgreement a = CompareClusterings(truth, scrambled);
  EXPECT_LT(a.v_measure, 0.2);
  EXPECT_LT(a.adjusted_rand_index, 0.1);
}

TEST(ClusterMetricsTest, KnownAriFixture) {
  // Classic fixture: truth {0,0,1,1}, pred {0,1,1,1}.
  // Contingency: n00=1, n01=1, n11=2. sum_comb_joint = 0+0+1 = 1.
  // a-sums: comb(2)+comb(2) = 1+1 = 2; b-sums: comb(1)+comb(3) = 0+3 = 3.
  // total pairs comb(4) = 6. expected = 2*3/6 = 1. max = 2.5.
  // ARI = (1-1)/(2.5-1) = 0.
  const ClusterAgreement a = CompareClusterings({0, 0, 1, 1}, {0, 1, 1, 1});
  EXPECT_NEAR(a.adjusted_rand_index, 0.0, 1e-12);
}

TEST(ClusterMetricsTest, ValidatesInput) {
  EXPECT_THROW(CompareClusterings({0, 1}, {0}), std::invalid_argument);
  EXPECT_THROW(CompareClusterings({}, {}), std::invalid_argument);
}

TEST(ClusterMetricsTest, NoiseTreatedAsSingletons) {
  // All-noise predicted labeling: perfectly homogeneous (every singleton is
  // pure) but incomplete. Completeness = 1 - H(P|T)/H(P) = 1 - ln3/ln6 here
  // (knowing the true 3-cluster still leaves 3 equally-likely singletons).
  const std::vector<int> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<int> noise = {-1, -1, -1, -1, -1, -1};
  const ClusterAgreement a = CompareClusterings(truth, noise);
  EXPECT_NEAR(a.homogeneity, 1.0, 1e-12);
  EXPECT_NEAR(a.completeness, 1.0 - std::log(3.0) / std::log(6.0), 1e-12);
  EXPECT_LT(a.completeness, 0.5);
}

}  // namespace
}  // namespace neutraj
