// Unit tests for the durability layer: WAL record codec, replay semantics
// (idempotence, torn/corrupt/bad tails), DurableStore recovery and
// compaction, degraded read-only mode, and the typed CorruptionError
// surfaced by a damaged snapshot.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/file_util.h"
#include "common/framing.h"
#include "common/random.h"
#include "core/embedding_db.h"
#include "obs/metrics.h"
#include "store/durable_store.h"
#include "store/faulty_file.h"
#include "store/file.h"
#include "store/wal.h"

namespace neutraj::store {
namespace {

nn::Vector MakeEmbedding(size_t dim, uint64_t seed) {
  Rng rng(seed);
  nn::Vector v(dim);
  for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  return v;
}

/// Overwrites `path` with `bytes` non-atomically (tests corrupt files in
/// place; the production writer is deliberately unable to do this).
void OverwriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("neutraj_store_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// -- WAL record codec --------------------------------------------------------

TEST_F(StoreTest, WalRecordRoundTrip) {
  WalRecord rec;
  rec.seq = 41;
  rec.embedding = MakeEmbedding(16, 7);
  const std::string framed = EncodeWalRecord(rec);

  size_t offset = 0;
  WireFrame frame;
  ASSERT_EQ(DecodeWireFrame(framed, &offset, &frame), FrameStatus::kOk);
  EXPECT_EQ(frame.type, kWalInsert);
  WalRecord back;
  ASSERT_TRUE(ParseWalRecord(frame.payload, &back));
  EXPECT_EQ(back.seq, rec.seq);
  EXPECT_EQ(back.embedding, rec.embedding);  // Bit-exact doubles.
}

TEST_F(StoreTest, WalRecordRejectsMalformedPayloads) {
  WalRecord rec{3, MakeEmbedding(4, 1)};
  size_t offset = 0;
  WireFrame frame;
  ASSERT_EQ(DecodeWireFrame(EncodeWalRecord(rec), &offset, &frame),
            FrameStatus::kOk);

  WalRecord out;
  EXPECT_FALSE(ParseWalRecord("", &out));
  EXPECT_FALSE(ParseWalRecord(frame.payload.substr(0, 11), &out));  // Short.
  EXPECT_FALSE(
      ParseWalRecord(frame.payload.substr(0, frame.payload.size() - 1), &out));
  EXPECT_FALSE(ParseWalRecord(frame.payload + "x", &out));  // Trailing byte.
  std::string zero_dim = frame.payload;
  for (int i = 8; i < 12; ++i) zero_dim[i] = 0;
  EXPECT_FALSE(ParseWalRecord(zero_dim, &out));
  EXPECT_THROW(EncodeWalRecord(WalRecord{0, {}}), std::invalid_argument);
}

// -- Replay semantics --------------------------------------------------------

std::string EncodeLog(const std::vector<WalRecord>& records) {
  std::string bytes;
  for (const WalRecord& r : records) bytes += EncodeWalRecord(r);
  return bytes;
}

TEST_F(StoreTest, ReplayAppliesCleanLog) {
  const std::string log = EncodeLog({{0, MakeEmbedding(8, 1)},
                                     {1, MakeEmbedding(8, 2)},
                                     {2, MakeEmbedding(8, 3)}});
  EmbeddingDatabase db;
  const WalReplayResult r = ReplayWal(log, &db);
  EXPECT_EQ(r.tail, WalTail::kClean);
  EXPECT_EQ(r.applied, 3u);
  EXPECT_EQ(r.skipped, 0u);
  EXPECT_EQ(r.valid_bytes, log.size());
  EXPECT_EQ(db.size(), 3u);
}

TEST_F(StoreTest, ReplayIsIdempotent) {
  const std::string log =
      EncodeLog({{0, MakeEmbedding(8, 1)}, {1, MakeEmbedding(8, 2)}});
  EmbeddingDatabase once;
  ReplayWal(log, &once);

  // The same tail twice — exactly what recovery sees when compaction
  // crashed after the snapshot rename but before the WAL truncate.
  EmbeddingDatabase twice;
  ReplayWal(log, &twice);
  const WalReplayResult second = ReplayWal(log, &twice);
  EXPECT_EQ(second.tail, WalTail::kClean);
  EXPECT_EQ(second.applied, 0u);
  EXPECT_EQ(second.skipped, 2u);
  ASSERT_EQ(twice.size(), once.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(twice.embeddings()[i], once.embeddings()[i]) << "row " << i;
  }
}

TEST_F(StoreTest, ReplayStopsAtTornTail) {
  const std::string full =
      EncodeLog({{0, MakeEmbedding(8, 1)}, {1, MakeEmbedding(8, 2)}});
  const std::string first = EncodeWalRecord({0, MakeEmbedding(8, 1)});
  // Cut mid-way through the second record: a kill mid-write.
  const std::string torn = full.substr(0, first.size() + 9);

  EmbeddingDatabase db;
  const WalReplayResult r = ReplayWal(torn, &db);
  EXPECT_EQ(r.tail, WalTail::kTorn);
  EXPECT_EQ(r.applied, 1u);
  EXPECT_EQ(r.valid_bytes, first.size());
  EXPECT_EQ(db.size(), 1u);
  EXPECT_FALSE(r.detail.empty());
}

TEST_F(StoreTest, ReplayStopsAtBitFlippedRecord) {
  const std::string first = EncodeWalRecord({0, MakeEmbedding(8, 1)});
  std::string log = first + EncodeWalRecord({1, MakeEmbedding(8, 2)});
  log[first.size() + kWireHeaderSize + 3] ^= 0x40;  // Flip a payload bit.

  EmbeddingDatabase db;
  const WalReplayResult r = ReplayWal(log, &db);
  EXPECT_EQ(r.tail, WalTail::kCorrupt);
  EXPECT_EQ(r.applied, 1u);
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(StoreTest, ReplayStopsAtSequenceGap) {
  const std::string log =
      EncodeLog({{0, MakeEmbedding(8, 1)}, {5, MakeEmbedding(8, 2)}});
  EmbeddingDatabase db;
  const WalReplayResult r = ReplayWal(log, &db);
  EXPECT_EQ(r.tail, WalTail::kBadRecord);
  EXPECT_EQ(r.applied, 1u);
  EXPECT_NE(r.detail.find("sequence gap"), std::string::npos);
}

TEST_F(StoreTest, ReplayStopsAtDimMismatch) {
  const std::string log =
      EncodeLog({{0, MakeEmbedding(8, 1)}, {1, MakeEmbedding(4, 2)}});
  EmbeddingDatabase db;
  const WalReplayResult r = ReplayWal(log, &db);
  EXPECT_EQ(r.tail, WalTail::kBadRecord);
  EXPECT_EQ(r.applied, 1u);
  EXPECT_EQ(db.dim(), 8u);
}

// -- WalWriter ---------------------------------------------------------------

TEST_F(StoreTest, WalWriterAppendsAndResets) {
  const std::string path = dir_ + "/wal.log";
  WalWriter writer(path, &FileFactory::Posix(), /*sync=*/true);
  writer.Append({0, MakeEmbedding(8, 1)});
  writer.Append({1, MakeEmbedding(8, 2)});
  EXPECT_EQ(writer.appended_records(), 2u);

  EmbeddingDatabase db;
  EXPECT_EQ(ReplayWal(ReadFile(path), &db).applied, 2u);

  writer.Reset();
  EXPECT_EQ(writer.appended_records(), 0u);
  EXPECT_TRUE(ReadFile(path).empty());

  // Appends after a reset start a fresh, valid log.
  writer.Append({2, MakeEmbedding(8, 3)});
  EmbeddingDatabase db2;
  const WalReplayResult r = ReplayWal(ReadFile(path), &db2);
  EXPECT_EQ(r.tail, WalTail::kBadRecord);  // seq 2 over empty db: gap.
  EXPECT_EQ(r.applied, 0u);
}

// -- DurableStore ------------------------------------------------------------

TEST_F(StoreTest, InsertsSurviveReopen) {
  std::vector<nn::Vector> inserted;
  {
    EmbeddingDatabase db;
    DurableStore store(&db, {.data_dir = dir_});
    store.Open();
    for (uint64_t i = 0; i < 10; ++i) {
      inserted.push_back(MakeEmbedding(8, i));
      EXPECT_EQ(store.Insert(inserted.back()), i);
    }
    EXPECT_EQ(store.wal_records(), 10u);
  }
  EmbeddingDatabase recovered;
  DurableStore store(&recovered, {.data_dir = dir_});
  const DurableStore::RecoveryInfo info = store.Open();
  EXPECT_EQ(info.snapshot_records, 0u);
  EXPECT_EQ(info.replayed, 10u);
  EXPECT_EQ(info.tail, WalTail::kClean);
  ASSERT_EQ(recovered.size(), 10u);
  for (size_t i = 0; i < inserted.size(); ++i) {
    EXPECT_EQ(recovered.embeddings()[i], inserted[i]) << "row " << i;
  }
  // Open() compacted the non-empty log into the snapshot.
  EXPECT_TRUE(FileExists(store.snapshot_path()));
  EXPECT_TRUE(ReadFile(store.wal_path()).empty());
}

TEST_F(StoreTest, AutoCompactionTruncatesWal) {
  EmbeddingDatabase db;
  DurableStore store(&db, {.data_dir = dir_, .compact_every = 4});
  store.Open();
  for (uint64_t i = 0; i < 9; ++i) store.Insert(MakeEmbedding(8, i));
  // 9 inserts with compact_every=4: compactions at 4 and 8, one live record.
  EXPECT_EQ(store.wal_records(), 1u);
  EXPECT_TRUE(FileExists(store.snapshot_path()));

  EmbeddingDatabase recovered;
  DurableStore reopened(&recovered, {.data_dir = dir_});
  const DurableStore::RecoveryInfo info = reopened.Open();
  EXPECT_EQ(info.snapshot_records, 8u);
  EXPECT_EQ(info.replayed, 1u);
  EXPECT_EQ(recovered.size(), 9u);
}

TEST_F(StoreTest, PreSeededDatabaseIsSnapshottedOnOpen) {
  EmbeddingDatabase db;
  db.Insert(MakeEmbedding(8, 1));
  db.Insert(MakeEmbedding(8, 2));
  DurableStore store(&db, {.data_dir = dir_});
  store.Open();
  // Durable before the first request: reopen recovers both rows.
  EmbeddingDatabase recovered;
  DurableStore reopened(&recovered, {.data_dir = dir_});
  const DurableStore::RecoveryInfo info = reopened.Open();
  EXPECT_EQ(info.snapshot_records, 2u);
  EXPECT_EQ(recovered.size(), 2u);
}

TEST_F(StoreTest, OpenRefusesNonEmptyDatabaseOverExistingState) {
  {
    EmbeddingDatabase db;
    DurableStore store(&db, {.data_dir = dir_});
    store.Open();
    store.Insert(MakeEmbedding(8, 1));
  }
  EmbeddingDatabase preloaded;
  preloaded.Insert(MakeEmbedding(8, 2));
  DurableStore store(&preloaded, {.data_dir = dir_});
  EXPECT_THROW(store.Open(), StoreError);
}

TEST_F(StoreTest, RecoveryTruncatesTornTail) {
  {
    EmbeddingDatabase db;
    DurableStore store(&db, {.data_dir = dir_});
    store.Open();
    for (uint64_t i = 0; i < 3; ++i) store.Insert(MakeEmbedding(8, i));
  }
  const std::string wal_path = dir_ + "/wal.log";
  const std::string wal = ReadFile(wal_path);
  ASSERT_FALSE(wal.empty());
  OverwriteFile(wal_path, wal.substr(0, wal.size() - 5));

  EmbeddingDatabase recovered;
  DurableStore store(&recovered, {.data_dir = dir_});
  const DurableStore::RecoveryInfo info = store.Open();
  EXPECT_EQ(info.tail, WalTail::kTorn);
  EXPECT_EQ(info.replayed, 2u);
  EXPECT_EQ(recovered.size(), 2u);
  // The torn bytes were folded away: the log is clean for new appends.
  EXPECT_TRUE(ReadFile(wal_path).empty());
  EXPECT_EQ(store.Insert(MakeEmbedding(8, 9)), 2u);
}

TEST_F(StoreTest, RecoveryStopsAtBitFlippedWalRecord) {
  {
    EmbeddingDatabase db;
    DurableStore store(&db, {.data_dir = dir_});
    store.Open();
    for (uint64_t i = 0; i < 3; ++i) store.Insert(MakeEmbedding(8, i));
  }
  const std::string wal_path = dir_ + "/wal.log";
  std::string wal = ReadFile(wal_path);
  const size_t record = wal.size() / 3;
  wal[2 * record + kWireHeaderSize + 1] ^= 0x10;  // Corrupt the third record.
  OverwriteFile(wal_path, wal);

  EmbeddingDatabase recovered;
  DurableStore store(&recovered, {.data_dir = dir_});
  const DurableStore::RecoveryInfo info = store.Open();
  EXPECT_EQ(info.tail, WalTail::kCorrupt);
  EXPECT_EQ(recovered.size(), 2u);
}

TEST_F(StoreTest, FailedAppendDegradesToReadOnly) {
  FaultPlan plan;
  FaultyFileFactory faulty(&FileFactory::Posix(), &plan);
  EmbeddingDatabase db;
  DurableStore store(&db, {.data_dir = dir_, .files = &faulty});
  store.Open();
  store.Insert(MakeEmbedding(8, 1));

  // Next mutating op fails: the log device died.
  plan.fault_at_op = plan.ops_seen + 1;
  plan.action = FaultAction::kFailOp;
  EXPECT_THROW(store.Insert(MakeEmbedding(8, 2)), StoreError);
  EXPECT_TRUE(store.read_only());
  EXPECT_FALSE(store.degraded_reason().empty());
  // Degraded is sticky — later inserts fail without touching the disk.
  EXPECT_THROW(store.Insert(MakeEmbedding(8, 3)), StoreError);
  EXPECT_THROW(store.Compact(), StoreError);
  // The unacknowledged insert was never applied to the in-memory corpus.
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(StoreTest, MetricsAreRegistered) {
  obs::MetricsRegistry registry;
  EmbeddingDatabase db;
  DurableStore store(&db, {.data_dir = dir_});
  store.AttachMetrics(&registry);
  store.Open();
  store.Insert(MakeEmbedding(8, 1));
  store.Compact();

  const auto metrics = registry.Snapshot().Flatten();
  const auto value = [&](const std::string& name) -> double {
    for (const auto& [k, v] : metrics) {
      if (k == name) return v;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return -1.0;
  };
  EXPECT_EQ(value("wal/records"), 1.0);
  EXPECT_GE(value("store/compactions"), 1.0);
  EXPECT_EQ(value("store/degraded"), 0.0);
  EXPECT_EQ(value("store/wal_records"), 0.0);  // Post-compaction.
}

// -- Snapshot corruption: typed errors ---------------------------------------

TEST_F(StoreTest, LoadReportsTruncatedSnapshot) {
  EmbeddingDatabase db;
  db.Insert(MakeEmbedding(8, 1));
  db.Insert(MakeEmbedding(8, 2));
  const std::string path = dir_ + "/snapshot.embdb";
  db.Save(path);

  const std::string bytes = ReadFile(path);
  OverwriteFile(path, bytes.substr(0, bytes.size() - 20));
  try {
    EmbeddingDatabase::Load(path);
    FAIL() << "expected CorruptionError";
  } catch (const CorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST_F(StoreTest, LoadReportsBitFlippedValues) {
  EmbeddingDatabase db;
  db.Insert(MakeEmbedding(8, 1));
  const std::string path = dir_ + "/snapshot.embdb";
  db.Save(path);

  // Flip a byte inside the embeddings payload: the section CRC must flag
  // the damaged section rather than let a misread value through.
  std::string bytes = ReadFile(path);
  const size_t header = bytes.find("SECTION embeddings");
  ASSERT_NE(header, std::string::npos);
  const size_t payload = bytes.find('\n', header) + 1;
  bytes[payload + 2] ^= 0x04;
  OverwriteFile(path, bytes);
  try {
    EmbeddingDatabase::Load(path);
    FAIL() << "expected CorruptionError";
  } catch (const CorruptionError& e) {
    EXPECT_EQ(e.section(), "embeddings");
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

// A container whose framing is intact (CRCs valid) but whose shape section
// holds nonsense exercises Deserialize's own typed validation, not the CRC.
TEST_F(StoreTest, DeserializeReportsBadShape) {
  SectionWriter w("embdb");
  w.Add("shape", "x y");
  w.Add("embeddings", "");
  try {
    EmbeddingDatabase::Deserialize(w.Finish(), "test");
    FAIL() << "expected CorruptionError";
  } catch (const CorruptionError& e) {
    EXPECT_EQ(e.section(), "shape");
    EXPECT_EQ(e.source(), "test");
  }
}

TEST_F(StoreTest, DeserializeReportsTruncatedValues) {
  // Shape claims 2x3 but only 4 numbers exist — a torn write that somehow
  // kept its CRC would still be caught by the value count.
  SectionWriter w("embdb");
  w.Add("shape", "2 3");
  w.Add("embeddings", "1 2 3\n4\n");
  try {
    EmbeddingDatabase::Deserialize(w.Finish(), "test");
    FAIL() << "expected CorruptionError";
  } catch (const CorruptionError& e) {
    EXPECT_EQ(e.section(), "embeddings");
    EXPECT_EQ(e.offset(), 1u);  // Failure at embedding index 1.
  }
}

// CorruptionError derives std::runtime_error, so pre-existing call sites
// that caught the untyped error keep working.
TEST_F(StoreTest, CorruptionErrorIsARuntimeError) {
  const CorruptionError e("src", "sec", 3, "boom");
  const std::runtime_error& base = e;
  EXPECT_NE(std::string(base.what()).find("sec"), std::string::npos);
  EXPECT_EQ(e.source(), "src");
  EXPECT_EQ(e.section(), "sec");
  EXPECT_EQ(e.offset(), 3u);
}

}  // namespace
}  // namespace neutraj::store
